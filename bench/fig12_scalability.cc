// Figure 12: speedup scaling with the number of join units, for R-tree node
// sizes 8/16/32 (sync traversal, Uniform + OSM-like) and PBSM tile sizes.
// The paper's finding: node size 8 plateaus after ~4 units (random-read
// bound); 32 scales almost linearly to 16 units; PBSM scales better at
// small tiles because it has no intermediate-result traffic.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "grid/hierarchical_partition.h"
#include "hw/accelerator.h"
#include "join/engine.h"
#include "rtree/bulk_load.h"

namespace swiftspatial::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  std::printf("Figure 12 reproduction: join-unit scalability\n");
  TablePrinter table(
      "Fig. 12 -- speedup vs #join units (relative to 1 unit)",
      {"workload", "dataset", "size", "units", "kernel_ms", "speedup"});
  JsonReporter json("fig12_scalability", env);

  const uint64_t scale = env.scales.front();
  const std::vector<int> unit_counts = {1, 2, 4, 8, 16};

  for (const WorkloadShape shape :
       {WorkloadShape::kUniform, WorkloadShape::kOsm}) {
    const JoinInputs in = MakeInputs(shape, JoinKind::kPolygonPolygon, scale);

    for (const int node_size : {8, 16, 32}) {
      BulkLoadOptions bl;
      bl.max_entries = node_size;
      bl.num_threads = env.cpu_threads;
      const PackedRTree rt = StrBulkLoad(in.r, bl);
      const PackedRTree st = StrBulkLoad(in.s, bl);
      double base = 0;
      for (const int units : unit_counts) {
        hw::AcceleratorConfig cfg;
        cfg.num_join_units = units;
        const auto report = hw::Accelerator(cfg).RunSyncTraversal(rt, st);
        if (units == 1) base = report.kernel_seconds;
        table.AddRow({"SyncTraversal", ShapeName(shape),
                      std::to_string(node_size), std::to_string(units),
                      Ms(report.kernel_seconds),
                      Speedup(base, report.kernel_seconds)});
        json.AddRow("SyncTraversal/" + std::string(ShapeName(shape)) +
                        "/size" + std::to_string(node_size) + "/units" +
                        std::to_string(units),
                    {{"kernel_seconds", report.kernel_seconds}});
      }
    }

    if (shape == WorkloadShape::kUniform) {
      for (const int tile_cap : {8, 16, 32}) {
        HierarchicalPartitionOptions hp;
        hp.tile_cap = tile_cap;
        hp.initial_grid = 64;
        const auto partition = PartitionHierarchical(in.r, in.s, hp);
        double base = 0;
        for (const int units : unit_counts) {
          hw::AcceleratorConfig cfg;
          cfg.num_join_units = units;
          const auto report =
              hw::Accelerator(cfg).RunPbsm(in.r, in.s, partition);
          if (units == 1) base = report.kernel_seconds;
          table.AddRow({"PBSM", ShapeName(shape), std::to_string(tile_cap),
                        std::to_string(units), Ms(report.kernel_seconds),
                        Speedup(base, report.kernel_seconds)});
          json.AddRow("PBSM/" + std::string(ShapeName(shape)) + "/size" +
                          std::to_string(tile_cap) + "/units" +
                          std::to_string(units),
                      {{"kernel_seconds", report.kernel_seconds}});
        }
      }
    }
  }
  table.Print();

  // CPU-side thread scaling through the unified engine API: the partitioned
  // driver and the multi-threaded sync traversal at 1/2/4/8 workers.
  // Speedups are relative to each engine's own single-threaded run; the
  // partitioned driver's Plan (grid sharding) is done once per thread count
  // and only Execute is timed, mirroring the join-only accelerator columns.
  TablePrinter cpu_table(
      "Fig. 12 (extension) -- CPU engine speedup vs #threads",
      {"engine", "dataset", "threads", "execute_ms", "speedup", "results"});
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  for (const WorkloadShape shape :
       {WorkloadShape::kUniform, WorkloadShape::kOsm}) {
    const JoinInputs in = MakeInputs(shape, JoinKind::kPolygonPolygon, scale);
    for (const char* name :
         {kPartitionedEngine, kParallelSyncTraversalEngine}) {
      double base = 0;
      for (const std::size_t threads : thread_counts) {
        EngineConfig cfg;
        cfg.num_threads = threads;
        cfg.schedule = Schedule::kDynamic;
        const auto timing = TimeEngine(name, cfg, in.r, in.s, env.reps);
        if (!timing.ok()) {
          SkipRow(name, timing.status());
          continue;
        }
        const double sec = timing->median_execute_seconds;
        if (threads == 1) base = sec;
        cpu_table.AddRow({name, ShapeName(shape), std::to_string(threads),
                          Ms(sec), Speedup(base, sec),
                          std::to_string(timing->results)});
        json.AddRow(std::string(name) + "/" + ShapeName(shape) + "/threads" +
                        std::to_string(threads),
                    {{"execute_seconds", sec},
                     {"results", static_cast<double>(timing->results)}});
      }
    }
  }
  cpu_table.Print();
  std::printf(
      "Expected shape: larger nodes scale closer to linear with units; "
      "small nodes plateau early; PBSM scales better than sync traversal at "
      "equal sizes (paper Fig. 12). CPU engines approach linear speedup "
      "while physical cores last.\n");
  if (!json.WriteIfRequested()) return 1;
  return ExitCode();
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
