// Table 2: one-time index construction / partitioning cost versus the join
// itself (§5.9): parallel STR R-tree bulk load, hierarchical partitioning
// (SwiftSpatial PBSM), and flat one-level partitioning (CPU PBSM), across
// the paper's four ten-million-object workloads (scaled down by default).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "grid/hierarchical_partition.h"
#include "grid/pbsm_partition.h"
#include "hw/accelerator.h"
#include "join/engine.h"
#include "rtree/bulk_load.h"

namespace swiftspatial::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv, /*default_scale=*/300000);
  std::printf(
      "Table 2 reproduction: index construction vs join cost "
      "(threads=%zu; paper uses 10M objects -- pass --full)\n",
      env.cpu_threads);
  TablePrinter table(
      "Table 2 -- construction/partitioning time vs join time",
      {"workload", "scale", "rtree_str_ms", "hier_partition_ms",
       "partition_ms", "cpu_join_ms", "fpga_join_ms"});
  JsonReporter json("table2_index_construction", env);

  const uint64_t scale = env.scales.back();
  for (const WorkloadShape shape :
       {WorkloadShape::kUniform, WorkloadShape::kOsm}) {
    for (const JoinKind kind :
         {JoinKind::kPointPolygon, JoinKind::kPolygonPolygon}) {
      const JoinInputs in = MakeInputs(shape, kind, scale);

      // R-tree construction: parallel STR on both datasets (node size 16).
      BulkLoadOptions bl;
      bl.max_entries = 16;
      bl.num_threads = env.cpu_threads;
      Stopwatch sw;
      const PackedRTree rt = StrBulkLoad(in.r, bl);
      const PackedRTree st = StrBulkLoad(in.s, bl);
      const double rtree_sec = sw.ElapsedSeconds();

      // Hierarchical partition (device PBSM path, tile cap 16).
      HierarchicalPartitionOptions hp;
      hp.tile_cap = 16;
      hp.initial_grid = 64;
      sw.Reset();
      const auto hier = PartitionHierarchical(in.r, in.s, hp);
      const double hier_sec = sw.ElapsedSeconds();

      // Flat 1-D partition (CPU PBSM path).
      sw.Reset();
      const StripePartition stripes = PartitionStripes(in.r, in.s, 1024,
                                                       Axis::kX);
      const double part_sec = sw.ElapsedSeconds();
      (void)stripes;

      // Joins for scale reference.
      EngineConfig ecfg;
      ecfg.num_threads = env.cpu_threads;
      const EngineTiming cpu =
          OrDie(TimeEngine(kParallelSyncTraversalEngine, ecfg, in.r, in.s,
                           env.reps),
                "CPU sync-traversal baseline");
      const double cpu_join = cpu.median_execute_seconds;
      hw::AcceleratorConfig cfg;
      cfg.num_join_units = env.units;
      const auto report = hw::Accelerator(cfg).RunSyncTraversal(rt, st);

      const std::string workload =
          std::string(ShapeName(shape)) + " " + JoinName(kind);
      table.AddRow({workload, std::to_string(scale), Ms(rtree_sec),
                    Ms(hier_sec), Ms(part_sec), Ms(cpu_join),
                    Ms(report.total_seconds)});
      json.AddRow(std::string(ShapeName(shape)) + "/" + JoinName(kind) +
                      "/" + std::to_string(scale),
                  {{"rtree_str_seconds", rtree_sec},
                   {"hier_partition_seconds", hier_sec},
                   {"flat_partition_seconds", part_sec},
                   {"cpu_join_seconds", cpu_join},
                   {"fpga_join_seconds", report.total_seconds}});
      (void)hier;
    }
  }
  table.Print();
  std::printf(
      "Expected shape: R-tree construction > hierarchical partition > flat "
      "partition, and construction costs exceed a single join -- the case "
      "for iterative joins / PBSM for one-off joins (§5.9).\n");
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
