// §5.7: power consumption comparison. The paper measured the CPU via AMD
// RAPL (144.69 W), the GPU via nvidia-smi (95.01 W), and the FPGA via the
// Vivado report (23.48 W); this harness regenerates those operating points
// and the headline ratios from the calibrated power models, and sweeps the
// models across configurations.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "hw/power_model.h"

namespace swiftspatial::bench {
namespace {

using hw::PowerModel;

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  std::printf("§5.7 reproduction: power consumption\n");

  TablePrinter table("Power at the paper's operating points",
                     {"platform", "configuration", "watts", "vs FPGA"});
  const double fpga = PowerModel::FpgaWatts(16);
  const double cpu = PowerModel::CpuWatts(16, 16);
  const double gpu =
      PowerModel::GpuWatts(PowerModel::GpuOccupancyForBatch(20000));
  table.AddRow({"FPGA (U250)", "16 join units @200MHz",
                TablePrinter::Fmt(fpga, 2), "1.00x"});
  table.AddRow({"CPU (EPYC 7313)", "16 threads busy",
                TablePrinter::Fmt(cpu, 2),
                TablePrinter::Fmt(cpu / fpga, 2) + "x"});
  table.AddRow({"GPU (A100)", "cuSpatial, 20K batch",
                TablePrinter::Fmt(gpu, 2),
                TablePrinter::Fmt(gpu / fpga, 2) + "x"});
  table.Print();
  JsonReporter json("table_power", env);
  json.AddRow("fpga_u250_16units", {{"watts", fpga}});
  json.AddRow("cpu_epyc7313_16threads", {{"watts", cpu}});
  json.AddRow("gpu_a100_20k_batch", {{"watts", gpu}});

  TablePrinter sweep("Model sweeps", {"platform", "knob", "value", "watts"});
  for (const int units : {1, 2, 4, 8, 16}) {
    sweep.AddRow({"FPGA", "join units", std::to_string(units),
                  TablePrinter::Fmt(PowerModel::FpgaWatts(units), 2)});
  }
  for (const int threads : {1, 4, 8, 16}) {
    sweep.AddRow({"CPU", "threads", std::to_string(threads),
                  TablePrinter::Fmt(PowerModel::CpuWatts(threads, 16), 2)});
  }
  for (const std::size_t batch : {1000u, 20000u, 200000u}) {
    sweep.AddRow(
        {"GPU", "batch size", std::to_string(batch),
         TablePrinter::Fmt(
             PowerModel::GpuWatts(PowerModel::GpuOccupancyForBatch(batch)),
             2)});
  }
  sweep.Print();
  std::printf(
      "Expected: FPGA 23.48 W; CPU/FPGA = 6.16x; GPU/FPGA = 4.04x (§5.7). "
      "GPU power stays far below its 400 W TDP because the 20K batch cap "
      "under-occupies the SMs.\n");
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
