// Figure 8: end-to-end spatial join latency of SwiftSpatial (simulated,
// sync-traversal and PBSM variants) against the optimized C++ baselines
// (single/multi-threaded synchronous traversal and PBSM), across dataset
// shapes, scales, and geometry kinds.
//
// Paper configuration (§5.2): node/tile size 16, 16 join units, 16 CPU
// threads; FPGA latency includes host transfers; baselines assume data and
// indexes already resident.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "grid/hierarchical_partition.h"
#include "hw/accelerator.h"
#include "join/engine.h"
#include "rtree/bulk_load.h"

namespace swiftspatial::bench {
namespace {

void RunCase(const BenchEnv& env, WorkloadShape shape, JoinKind kind,
             uint64_t scale, TablePrinter* table, JsonReporter* json) {
  const JoinInputs in = MakeInputs(shape, kind, scale);

  BulkLoadOptions bl;
  bl.max_entries = 16;  // optimal per §5.3
  bl.num_threads = env.cpu_threads;
  const PackedRTree rt = StrBulkLoad(in.r, bl);
  const PackedRTree st = StrBulkLoad(in.s, bl);

  HierarchicalPartitionOptions hp;
  hp.tile_cap = 16;  // optimal per §5.4
  hp.initial_grid = 64;
  const auto partition = PartitionHierarchical(in.r, in.s, hp);

  struct Row {
    const char* system;
    double seconds;
    uint64_t results;
  };
  std::vector<Row> rows;

  // --- SwiftSpatial (simulated device; includes PCIe + launch). ---
  {
    hw::AcceleratorConfig cfg;
    cfg.num_join_units = env.units;
    const auto report = hw::Accelerator(cfg).RunSyncTraversal(rt, st);
    rows.push_back({"SwiftSpatial SyncTrav (sim)", report.total_seconds,
                    report.num_results});
  }
  {
    hw::AcceleratorConfig cfg;
    cfg.num_join_units = env.units;
    const auto report = hw::Accelerator(cfg).RunPbsm(in.r, in.s, partition);
    rows.push_back(
        {"SwiftSpatial PBSM (sim)", report.total_seconds, report.num_results});
  }

  // --- CPU baselines through the unified engine registry. As in the paper,
  // the join proper is timed: Plan (index/partition builds) is done once
  // outside the timed region, so MedianSeconds wraps Execute only. ---
  struct CpuBaseline {
    const char* label;
    const char* engine;
    std::size_t threads;
  };
  const CpuBaseline baselines[] = {
      {"C++ MT sync traversal", kParallelSyncTraversalEngine,
       env.cpu_threads},
      {"C++ MT PBSM", kPbsmEngine, env.cpu_threads},
      {"C++ MT partitioned driver", kPartitionedEngine, env.cpu_threads},
      {"C++ ST sync traversal", kSyncTraversalEngine, 1},
      {"C++ ST PBSM", kPbsmEngine, 1},
  };
  for (const CpuBaseline& baseline : baselines) {
    EngineConfig cfg;
    cfg.num_threads = baseline.threads;
    cfg.strategy = TraversalStrategy::kBfs;
    cfg.schedule = Schedule::kDynamic;
    cfg.num_partitions = 1024;
    const auto timing = TimeEngine(baseline.engine, cfg, in.r, in.s, env.reps);
    if (!timing.ok()) {
      SkipRow(baseline.label, timing.status());
      continue;
    }
    rows.push_back(
        {baseline.label, timing->median_execute_seconds, timing->results});
  }

  // Best CPU baseline anchors the speedup column, as in the paper.
  double best_cpu = 1e300;
  for (std::size_t i = 2; i < rows.size(); ++i) {
    best_cpu = std::min(best_cpu, rows[i].seconds);
  }
  for (const Row& row : rows) {
    table->AddRow({ShapeName(shape), JoinName(kind), std::to_string(scale),
                   row.system, Ms(row.seconds),
                   Speedup(best_cpu, row.seconds),
                   std::to_string(row.results)});
    json->AddRow(std::string(ShapeName(shape)) + "/" + JoinName(kind) + "/" +
                     std::to_string(scale) + "/" + row.system,
                 {{"latency_seconds", row.seconds},
                  {"results", static_cast<double>(row.results)}});
  }
}

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  std::printf(
      "Figure 8 reproduction: SwiftSpatial vs optimized C++ baselines\n"
      "(units=%d, threads=%zu; speedups relative to the best CPU baseline)\n",
      env.units, env.cpu_threads);

  TablePrinter table("Fig. 8 -- end-to-end spatial join latency",
                     {"dataset", "join", "scale", "system", "latency_ms",
                      "vs_best_cpu", "results"});
  JsonReporter json("fig08_end_to_end", env);
  for (const uint64_t scale : env.scales) {
    for (const WorkloadShape shape :
         {WorkloadShape::kUniform, WorkloadShape::kOsm}) {
      for (const JoinKind kind :
           {JoinKind::kPointPolygon, JoinKind::kPolygonPolygon}) {
        RunCase(env, shape, kind, scale, &table, &json);
      }
    }
  }
  table.Print();
  if (!json.WriteIfRequested()) return 1;
  return ExitCode();
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
