// Figure 8: end-to-end spatial join latency of SwiftSpatial (simulated,
// sync-traversal and PBSM variants) against the optimized C++ baselines
// (single/multi-threaded synchronous traversal and PBSM), across dataset
// shapes, scales, and geometry kinds.
//
// Paper configuration (§5.2): node/tile size 16, 16 join units, 16 CPU
// threads; FPGA latency includes host transfers; baselines assume data and
// indexes already resident.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "grid/hierarchical_partition.h"
#include "hw/accelerator.h"
#include "join/parallel_sync_traversal.h"
#include "join/pbsm.h"
#include "join/sync_traversal.h"
#include "rtree/bulk_load.h"

namespace swiftspatial::bench {
namespace {

void RunCase(const BenchEnv& env, WorkloadShape shape, JoinKind kind,
             uint64_t scale, TablePrinter* table) {
  const JoinInputs in = MakeInputs(shape, kind, scale);

  BulkLoadOptions bl;
  bl.max_entries = 16;  // optimal per §5.3
  bl.num_threads = env.cpu_threads;
  const PackedRTree rt = StrBulkLoad(in.r, bl);
  const PackedRTree st = StrBulkLoad(in.s, bl);

  HierarchicalPartitionOptions hp;
  hp.tile_cap = 16;  // optimal per §5.4
  hp.initial_grid = 64;
  const auto partition = PartitionHierarchical(in.r, in.s, hp);

  struct Row {
    const char* system;
    double seconds;
    uint64_t results;
  };
  std::vector<Row> rows;

  // --- SwiftSpatial (simulated device; includes PCIe + launch). ---
  {
    hw::AcceleratorConfig cfg;
    cfg.num_join_units = env.units;
    const auto report = hw::Accelerator(cfg).RunSyncTraversal(rt, st);
    rows.push_back({"SwiftSpatial SyncTrav (sim)", report.total_seconds,
                    report.num_results});
  }
  {
    hw::AcceleratorConfig cfg;
    cfg.num_join_units = env.units;
    const auto report = hw::Accelerator(cfg).RunPbsm(in.r, in.s, partition);
    rows.push_back(
        {"SwiftSpatial PBSM (sim)", report.total_seconds, report.num_results});
  }

  // --- CPU baselines (measured wall clock). ---
  uint64_t cpu_results = 0;
  {
    ParallelSyncTraversalOptions opt;
    opt.num_threads = env.cpu_threads;
    opt.strategy = TraversalStrategy::kBfs;
    opt.schedule = Schedule::kDynamic;
    const double sec = MedianSeconds(
        [&] { cpu_results = ParallelSyncTraversal(rt, st, opt).size(); },
        env.reps);
    rows.push_back({"C++ MT sync traversal", sec, cpu_results});
  }
  {
    PbsmOptions opt;
    opt.num_partitions = 1024;
    opt.num_threads = env.cpu_threads;
    const StripePartition stripes = PbsmPartition(in.r, in.s, opt);
    uint64_t n = 0;
    const double sec = MedianSeconds(
        [&] { n = PbsmJoin(in.r, in.s, stripes, opt).size(); }, env.reps);
    rows.push_back({"C++ MT PBSM", sec, n});
  }
  {
    uint64_t n = 0;
    const double sec = MedianSeconds(
        [&] { n = SyncTraversalDfs(rt, st).size(); }, env.reps);
    rows.push_back({"C++ ST sync traversal", sec, n});
  }
  {
    PbsmOptions opt;
    opt.num_partitions = 1024;
    opt.num_threads = 1;
    const StripePartition stripes = PbsmPartition(in.r, in.s, opt);
    uint64_t n = 0;
    const double sec = MedianSeconds(
        [&] { n = PbsmJoin(in.r, in.s, stripes, opt).size(); }, env.reps);
    rows.push_back({"C++ ST PBSM", sec, n});
  }

  // Best CPU baseline anchors the speedup column, as in the paper.
  double best_cpu = 1e300;
  for (std::size_t i = 2; i < rows.size(); ++i) {
    best_cpu = std::min(best_cpu, rows[i].seconds);
  }
  for (const Row& row : rows) {
    table->AddRow({ShapeName(shape), JoinName(kind), std::to_string(scale),
                   row.system, Ms(row.seconds),
                   Speedup(best_cpu, row.seconds),
                   std::to_string(row.results)});
  }
}

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  std::printf(
      "Figure 8 reproduction: SwiftSpatial vs optimized C++ baselines\n"
      "(units=%d, threads=%zu; speedups relative to the best CPU baseline)\n",
      env.units, env.cpu_threads);

  TablePrinter table("Fig. 8 -- end-to-end spatial join latency",
                     {"dataset", "join", "scale", "system", "latency_ms",
                      "vs_best_cpu", "results"});
  for (const uint64_t scale : env.scales) {
    for (const WorkloadShape shape :
         {WorkloadShape::kUniform, WorkloadShape::kOsm}) {
      for (const JoinKind kind :
           {JoinKind::kPointPolygon, JoinKind::kPolygonPolygon}) {
        RunCase(env, shape, kind, scale, &table);
      }
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
