// Figure 13: single join unit microbenchmark. A one-unit fabric (read unit
// + join unit + write unit) is fed R-tree node pairs of varying sizes from
// random DRAM locations; we report total cycles per node-pair join and the
// normalised cycles per predicate evaluation.
//
// Paper findings to reproduce: joins of small nodes (<= 4 entries) are
// bound by random DRAM fetches; for node sizes 8..64 the unit sustains
// 1.02..1.30 cycles per predicate -- near the 1/cycle pipeline ideal.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "hw/config.h"
#include "hw/join_unit.h"
#include "hw/memory_layout.h"
#include "hw/read_unit.h"
#include "hw/sim/fifo.h"
#include "hw/write_unit.h"
#include "rtree/packed_rtree.h"

namespace swiftspatial::bench {
namespace {

using hw::sim::Cycle;

// Serialises `count` random leaf nodes of `node_size` entries each into a
// region image with the standard packed layout.
std::vector<uint8_t> MakeNodeStore(int node_size, int count, uint64_t seed) {
  const std::size_t stride = PackedRTree::StrideFor(node_size);
  std::vector<uint8_t> bytes(stride * count, 0);
  Rng rng(seed);
  for (int n = 0; n < count; ++n) {
    uint8_t* base = bytes.data() + n * stride;
    const uint16_t c = static_cast<uint16_t>(node_size);
    std::memcpy(base, &c, sizeof(c));
    base[2] = 1;  // leaf
    for (int e = 0; e < node_size; ++e) {
      const Coord x = static_cast<Coord>(rng.Uniform(0, 1000));
      const Coord y = static_cast<Coord>(rng.Uniform(0, 1000));
      const PackedEntry entry{Box(x, y, x + 5, y + 5), n * 1000 + e};
      std::memcpy(base + 8 + e * sizeof(PackedEntry), &entry, sizeof(entry));
    }
  }
  return bytes;
}

struct MicroResult {
  Cycle total_cycles;
  double cycles_per_join;
  double cycles_per_predicate;
};

MicroResult RunMicro(int node_size, int num_pairs) {
  hw::AcceleratorConfig config;
  config.num_join_units = 1;

  hw::sim::Simulator sim;
  hw::sim::Dram dram(&sim, config.dram);
  hw::MemoryLayout mem;
  const int store_nodes = 2 * num_pairs;
  const uint64_t base = mem.AddRegion(
      "nodes", MakeNodeStore(node_size, store_nodes, 42 + node_size));
  const uint64_t results_base = mem.AddRegion("results");
  const uint32_t stride =
      static_cast<uint32_t>(PackedRTree::StrideFor(node_size));

  hw::sim::Fifo<hw::ReadCommand> commands(&sim, config.command_queue_depth);
  hw::sim::Fifo<hw::NodePairData> unit_in(&sim, config.unit_queue_depth);
  hw::sim::Fifo<hw::TaskStreamItem> tasks(
      &sim, hw::sim::Fifo<hw::TaskStreamItem>::kUnbounded);
  hw::sim::Fifo<hw::ResultStreamItem> results(&sim, config.stream_fifo_depth);
  hw::sim::Fifo<hw::SyncResponse> wsync(&sim, 1);
  hw::sim::Fifo<hw::DoneToken> done(&sim,
                                    hw::sim::Fifo<hw::DoneToken>::kUnbounded);

  hw::ReadUnit read_unit(&sim, &dram, &mem, &config, &commands, {&unit_in});
  hw::JoinUnit join_unit(0, &sim, &config, &unit_in, &tasks, &results, &done);
  hw::WriteUnit write_unit(&sim, &dram, &mem, &config, results_base, &results,
                           &wsync);

  // Driver: dispatch `num_pairs` random node pairs, await completions, shut
  // down -- the role the on-chip scheduler plays in the full device.
  struct Driver {
    hw::sim::Simulator* sim;
    hw::sim::Fifo<hw::ReadCommand>* commands;
    hw::sim::Fifo<hw::DoneToken>* done;
    hw::sim::Fifo<hw::ResultStreamItem>* results;
    hw::sim::Fifo<hw::SyncResponse>* wsync;
    uint64_t base;
    uint32_t stride;
    int store_nodes;
    int num_pairs;

    hw::sim::Process Run() {
      Rng rng(7);
      for (int i = 0; i < num_pairs; ++i) {
        hw::ReadCommand cmd;
        cmd.unit = 0;
        const int32_t a =
            static_cast<int32_t>(rng.NextBelow(store_nodes));
        const int32_t b =
            static_cast<int32_t>(rng.NextBelow(store_nodes));
        cmd.r_index = a;
        cmd.s_index = b;
        cmd.r_addr = base + static_cast<uint64_t>(a) * stride;
        cmd.s_addr = base + static_cast<uint64_t>(b) * stride;
        cmd.r_bytes = stride;
        cmd.s_bytes = stride;
        co_await commands->Push(std::move(cmd));
      }
      for (int i = 0; i < num_pairs; ++i) {
        (void)co_await done->Pop();
      }
      hw::ResultStreamItem rsync;
      rsync.kind = hw::ResultStreamItem::Kind::kSync;
      co_await results->Push(std::move(rsync));
      (void)co_await wsync->Pop();

      hw::ReadCommand fin;
      fin.kind = hw::ReadCommand::Kind::kFinish;
      co_await commands->Push(std::move(fin));
      hw::ResultStreamItem rfin;
      rfin.kind = hw::ResultStreamItem::Kind::kFinish;
      co_await results->Push(std::move(rfin));
    }
  };
  Driver driver{&sim,    &commands,   &done,      &results, &wsync,
                base,    stride,      store_nodes, num_pairs};

  sim.Spawn(read_unit.Run());
  sim.Spawn(join_unit.Run());
  sim.Spawn(write_unit.Run());
  sim.Spawn(driver.Run());
  const Cycle total = sim.Run();

  MicroResult out;
  out.total_cycles = total;
  out.cycles_per_join = static_cast<double>(total) / num_pairs;
  out.cycles_per_predicate =
      out.cycles_per_join / (static_cast<double>(node_size) * node_size);
  return out;
}

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv, /*default_scale=*/2000);
  const int num_pairs = static_cast<int>(env.scales.front());
  std::printf(
      "Figure 13 reproduction: single join unit microbenchmark "
      "(%d node pairs per size)\n",
      num_pairs);
  TablePrinter table(
      "Fig. 13 -- cycles per node-pair join and per predicate evaluation",
      {"node_size", "cycles_per_join", "cycles_per_predicate"});
  JsonReporter json("fig13_join_unit", env);
  for (const int node_size : {2, 4, 8, 16, 32, 64}) {
    const MicroResult r = RunMicro(node_size, num_pairs);
    table.AddRow({std::to_string(node_size),
                  TablePrinter::Fmt(r.cycles_per_join, 1),
                  TablePrinter::Fmt(r.cycles_per_predicate, 2)});
    json.AddRow("node" + std::to_string(node_size),
                {{"cycles_per_join", r.cycles_per_join},
                 {"cycles_per_predicate", r.cycles_per_predicate},
                 {"total_cycles", static_cast<double>(r.total_cycles)}});
  }
  table.Print();
  std::printf(
      "Expected shape: tiny nodes (<=4) dominated by random DRAM fetches; "
      "sizes 8..64 approach ~1 cycle/predicate (paper: 1.02-1.30).\n");
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
