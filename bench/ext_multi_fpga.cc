// Extension study (§6): joins larger than device memory. The same workload
// runs under shrinking device-memory budgets, comparing the paper's first
// two proposals -- partition across multiple FPGAs (concurrent sub-joins)
// versus one FPGA sweeping the partitions iteratively -- plus the
// un-partitioned reference device with enough memory.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "hw/multi_device.h"

namespace swiftspatial::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  const uint64_t scale = env.scales.front();
  std::printf("§6 extension: larger-than-device-memory joins (scale=%lu)\n",
              static_cast<unsigned long>(scale));

  const JoinInputs in =
      MakeInputs(WorkloadShape::kUniform, JoinKind::kPolygonPolygon, scale);

  TablePrinter table(
      "§6 -- out-of-memory strategies under shrinking device memory",
      {"device_mem", "strategy", "grid", "partitions", "devices", "total_ms",
       "results"});

  struct Budget {
    const char* label;
    uint64_t bytes;
  };
  const Budget budgets[] = {
      {"64 GB (fits)", 64ULL << 30},
      {"8 MB", 8ULL << 20},
      {"2 MB", 2ULL << 20},
      {"1 MB", 1ULL << 20},
  };
  JsonReporter json("ext_multi_fpga", env);
  for (const Budget& budget : budgets) {
    for (const hw::OutOfMemoryStrategy strategy :
         {hw::OutOfMemoryStrategy::kMultipleDevices,
          hw::OutOfMemoryStrategy::kSingleDeviceIterative}) {
      hw::MultiDeviceConfig cfg;
      cfg.device.num_join_units = env.units;
      cfg.device_memory_bytes = budget.bytes;
      cfg.strategy = strategy;
      cfg.max_grid = 128;
      auto report = hw::PartitionedJoin(in.r, in.s, cfg);
      if (!report.ok()) {
        table.AddRow({budget.label, OutOfMemoryStrategyToString(strategy),
                      "-", "-", "-", report.status().ToString(), "-"});
        continue;
      }
      table.AddRow({budget.label, OutOfMemoryStrategyToString(strategy),
                    std::to_string(report->grid_resolution),
                    std::to_string(report->partitions),
                    std::to_string(report->devices),
                    Ms(report->total_seconds),
                    std::to_string(report->num_results)});
      json.AddRow(std::to_string(budget.bytes >> 20) + "MB/" +
                      OutOfMemoryStrategyToString(strategy),
                  {{"total_seconds", report->total_seconds},
                   {"partitions", static_cast<double>(report->partitions)},
                   {"devices", static_cast<double>(report->devices)},
                   {"results", static_cast<double>(report->num_results)}});
    }
  }
  table.Print();
  std::printf(
      "Expected shape: result counts identical across all budgets and "
      "strategies; multi-device latency stays near the in-memory case "
      "(parallel sub-joins) while the iterative single device degrades "
      "roughly with the partition count (§6).\n");
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
