// Table 1: FPGA resource consumption of the SwiftSpatial kernel (1-16 join
// units) and the static shell on the Alveo U250, regenerated from the
// resource model, plus the §5.6 embedded-deployment feasibility analysis
// for the PYNQ-Z2.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "hw/resource_model.h"

namespace swiftspatial::bench {
namespace {

using hw::ResourceModel;
using hw::ResourcePct;

std::string Pct(double v) { return TablePrinter::Fmt(v, 2) + "%"; }

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  std::printf("Table 1 reproduction: FPGA resource consumption\n");

  TablePrinter table("Table 1 -- SwiftSpatial resource usage (U250)",
                     {"configuration", "LUT", "FF", "BRAM", "DSP"});
  JsonReporter json("table1_resources", env);
  for (const int units : {1, 2, 4, 8, 16}) {
    const ResourcePct k = ResourceModel::KernelUsage(units);
    table.AddRow({"Kernel (" + std::to_string(units) + " PE)", Pct(k.lut),
                  Pct(k.ff), Pct(k.bram), Pct(k.dsp)});
    json.AddRow("kernel_pe" + std::to_string(units),
                {{"lut_pct", k.lut},
                 {"ff_pct", k.ff},
                 {"bram_pct", k.bram},
                 {"dsp_pct", k.dsp}});
  }
  const ResourcePct shell = ResourceModel::ShellUsage();
  table.AddRow({"Shell", Pct(shell.lut), Pct(shell.ff), Pct(shell.bram),
                Pct(shell.dsp)});
  const ResourcePct total = ResourceModel::TotalUsage(16);
  table.AddRow({"Shell + Kernel (16 PE)", Pct(total.lut), Pct(total.ff),
                Pct(total.bram), Pct(total.dsp)});
  json.AddRow("shell_plus_kernel_pe16",
              {{"lut_pct", total.lut},
               {"ff_pct", total.ff},
               {"bram_pct", total.bram},
               {"dsp_pct", total.dsp}});
  const auto u250 = ResourceModel::U250().total;
  table.AddRow({"FPGA Total", std::to_string(u250.lut),
                std::to_string(u250.ff), std::to_string(u250.bram),
                std::to_string(u250.dsp)});
  table.Print();

  TablePrinter embedded(
      "§5.6 -- embedded deployment feasibility (60% resource budget)",
      {"device", "FIFO impl", "max join units"});
  const auto z2 = ResourceModel::PynqZ2();
  embedded.AddRow({z2.name, "BRAM FIFOs",
                   std::to_string(ResourceModel::MaxUnitsOn(z2, 0.6, false))});
  embedded.AddRow({z2.name, "shift-register FIFOs",
                   std::to_string(ResourceModel::MaxUnitsOn(z2, 0.6, true))});
  const auto u250dev = ResourceModel::U250();
  embedded.AddRow({u250dev.name, "BRAM FIFOs",
                   std::to_string(ResourceModel::MaxUnitsOn(u250dev, 0.6,
                                                            false))});
  embedded.Print();
  std::printf(
      "Expected: 16-PE kernel stays under 30%% of every resource class "
      "(BRAM highest at 28.05%%); PYNQ-Z2 hosts 1-2 units, ~4 with the "
      "shift-register FIFO optimisation (§5.6).\n");
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
