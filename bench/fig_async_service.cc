// Async execution & serving sweep: the benchmark behind the exec/
// subsystem.
//
// Part 1 -- plan/execute overlap. The synchronous "partitioned" engine pays
// Plan (grid assignment) and Execute (cell joins) strictly in sequence; the
// "async" engine runs the same join through the banded streaming executor,
// where each row band's assignment is a TaskGraph task that spawns its cell
// joins dynamically -- so band k+1 is still partitioning while band k's
// cells already join. On any >= 2-shard workload the async wall-clock must
// come in under sync plan + execute.
//
// Part 2 -- the serving layer. A JoinService with a fixed worker budget
// admits closed bursts of requests at three offered-load levels and from
// 1..8 concurrent tenants, under FCFS and fair-share scheduling; reported
// are sustained throughput, p50/p99 end-to-end latency (submit -> stream
// fully collected), and the pending-queue high-water mark (bounded by
// admission control by construction).
//
//   ./build/bench/fig_async_service [--scale=N] [--threads=N] [--reps=N]
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/percentile.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "exec/service.h"
#include "exec/streaming.h"
#include "join/engine.h"
#include "join/partitioned_driver.h"

namespace swiftspatial::bench {
namespace {

// ---------------------------------------------------------------------------
// Part 1: sync plan+execute vs async (overlapped) wall-clock.
// ---------------------------------------------------------------------------
void RunOverlapSection(const BenchEnv& env, JsonReporter* json) {
  TablePrinter table(
      "Plan/execute overlap: synchronous partitioned engine vs banded "
      "streaming executor",
      {"scale", "shards", "sync_plan_ms", "sync_exec_ms", "sync_total_ms",
       "async_wall_ms", "async_first_ms", "wall_speedup", "first_vs_sync"});

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  bool wall_overlap = true;
  bool first_result_wins = true;
  for (const uint64_t scale : env.scales) {
    const JoinInputs in =
        MakeInputs(WorkloadShape::kUniform, JoinKind::kPolygonPolygon, scale);
    EngineConfig config;
    config.num_threads = env.cpu_threads;

    auto sync = TimeEngine(kPartitionedEngine, config, in.r, in.s, env.reps);
    if (!sync.ok()) {
      std::fprintf(stderr, "sync run failed: %s\n",
                   sync.status().ToString().c_str());
      continue;
    }
    const double sync_total =
        sync->plan_seconds + sync->median_execute_seconds;

    // The streaming executor re-plans on every run (that is the point: its
    // planning is part of the overlapped pipeline), so the async figure is
    // the full wall-clock of stream-and-collect. The first-chunk latency is
    // the pipelining measure: the synchronous path delivers nothing at all
    // until plan + execute have both fully finished.
    exec::StreamOptions stream;
    stream.chunk_pairs = 512;    // stream at cell-group granularity
    stream.queue_capacity = 64;  // don't let the sink throttle the measure
    uint64_t async_results = 0;
    std::vector<double> first_chunk_times;
    bool async_failed = false;
    // Mirror the producer's auto-sharding so the table reports the shard
    // count the run actually used, then pin it via num_shards.
    const int grid_side =
        AutoGridSide(in.r.size() + in.s.size(), kDefaultCellPopulation);
    const int shards = std::min(
        grid_side, std::max(2, static_cast<int>(env.cpu_threads)));
    stream.num_shards = shards;
    const double async_wall = MedianSeconds(
        [&] {
          Stopwatch sw;
          auto handle =
              exec::RunJoinAsync(kAsyncEngine, in.r, in.s, config, stream);
          if (!handle.ok()) {
            std::fprintf(stderr, "async run failed: %s\n",
                         handle.status().ToString().c_str());
            async_failed = true;
            return;
          }
          exec::ResultChunk first;
          std::size_t total = 0;
          if (handle->Next(&first)) {
            first_chunk_times.push_back(sw.ElapsedSeconds());
            total = first.pairs.size();
          }
          exec::StreamSummary rest = handle->Collect();
          if (!rest.status.ok()) {
            std::fprintf(stderr, "async stream failed: %s\n",
                         rest.status.ToString().c_str());
            async_failed = true;
            return;
          }
          async_results = total + rest.run.result.size();
        },
        env.reps);
    if (async_failed) std::exit(1);
    // Median over warmup + reps, matching async_wall's aggregation.
    const double first_chunk_seconds =
        Percentile(first_chunk_times, 0.5);

    if (async_results != sync->results) {
      std::fprintf(stderr,
                   "FATAL: async path diverges (sync=%llu async=%llu)\n",
                   static_cast<unsigned long long>(sync->results),
                   static_cast<unsigned long long>(async_results));
      std::exit(1);
    }
    wall_overlap = wall_overlap && async_wall < sync_total;
    first_result_wins =
        first_result_wins && first_chunk_seconds < sync_total;
    table.AddRow({std::to_string(scale), std::to_string(shards),
                  Ms(sync->plan_seconds), Ms(sync->median_execute_seconds),
                  Ms(sync_total), Ms(async_wall), Ms(first_chunk_seconds),
                  Speedup(sync_total, async_wall),
                  Speedup(sync_total, first_chunk_seconds)});
    json->AddRow("overlap/" + std::to_string(scale),
                 {{"sync_total_seconds", sync_total},
                  {"async_wall_seconds", async_wall},
                  {"first_chunk_seconds", first_chunk_seconds}});
  }
  table.Print();
  if (cores >= 2) {
    std::printf(
        "overlap check (async wall-clock < sync plan+execute on multi-shard "
        "workloads): %s\n\n",
        wall_overlap ? "PASS" : "FAIL");
  } else {
    // With one core there is no parallelism for the overlapped bands to
    // exploit, so wall-clock parity is the ceiling; pipelined delivery is
    // the measurable overlap signal (first results arrive while the
    // sync path would still be planning/joining with nothing to show).
    std::printf(
        "single-core host (hardware_concurrency=%u): wall-clock overlap "
        "needs >= 2 cores; pipelined-delivery check (first streamed chunk "
        "before sync plan+execute completes): %s\n\n",
        cores, first_result_wins ? "PASS" : "FAIL");
  }
}

// ---------------------------------------------------------------------------
// Part 2: JoinService under offered load.
// ---------------------------------------------------------------------------
struct ServiceRunMetrics {
  double wall_seconds = 0;
  double throughput_rps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  std::size_t max_pending_seen = 0;
};

ServiceRunMetrics ServeBurst(const Dataset& r, const Dataset& s,
                             const EngineConfig& config,
                             exec::SchedulingPolicy policy,
                             std::size_t worker_threads, int requests,
                             int tenants) {
  exec::JoinServiceOptions options;
  options.worker_threads = worker_threads;
  options.max_concurrent = 2;
  options.max_pending = static_cast<std::size_t>(requests);  // admit all
  options.policy = policy;
  exec::JoinService service(options);

  std::vector<double> latencies(requests);
  std::vector<std::thread> consumers;
  consumers.reserve(requests);
  Stopwatch wall;
  for (int i = 0; i < requests; ++i) {
    auto handle =
        service.Submit("tenant-" + std::to_string(i % tenants),
                       kPartitionedEngine, r, s, config);
    if (!handle.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   handle.status().ToString().c_str());
      std::exit(1);
    }
    // One consumer per request: latency ends when the stream is fully
    // collected, i.e. queueing + join + streaming.
    consumers.emplace_back(
        [&latencies, i, &wall, h = std::move(*handle)]() mutable {
          exec::StreamSummary summary = h.Collect();
          if (!summary.status.ok()) std::exit(1);
          latencies[i] = wall.ElapsedSeconds();
        });
  }
  for (auto& c : consumers) c.join();
  service.Drain();

  ServiceRunMetrics m;
  m.wall_seconds = wall.ElapsedSeconds();
  m.throughput_rps = requests / m.wall_seconds;
  m.p50_ms = Percentile(latencies, 0.50) * 1e3;
  m.p99_ms = Percentile(latencies, 0.99) * 1e3;
  m.max_pending_seen = service.stats().max_pending_seen;
  return m;
}

void RunServiceSection(const BenchEnv& env, uint64_t scale,
                       JsonReporter* json) {
  const JoinInputs in = MakeInputs(WorkloadShape::kUniform,
                                   JoinKind::kPolygonPolygon, scale,
                                   /*seed_base=*/7);
  EngineConfig config;
  config.num_threads = 2;  // per-request parallelism within the shared pool

  TablePrinter table(
      "JoinService under closed bursts (worker budget " +
          std::to_string(env.cpu_threads) + " threads, 2 concurrent joins)",
      {"policy", "requests", "tenants", "wall_ms", "req_per_s", "p50_ms",
       "p99_ms", "max_pending"});
  for (const auto policy :
       {exec::SchedulingPolicy::kFcfs, exec::SchedulingPolicy::kFairShare}) {
    // Three offered-load levels at a fixed tenant count...
    for (const int requests : {8, 24, 64}) {
      const ServiceRunMetrics m = ServeBurst(
          in.r, in.s, config, policy, env.cpu_threads, requests, 4);
      table.AddRow({SchedulingPolicyToString(policy),
                    std::to_string(requests), "4", Ms(m.wall_seconds),
                    TablePrinter::Fmt(m.throughput_rps, 1),
                    TablePrinter::Fmt(m.p50_ms, 2),
                    TablePrinter::Fmt(m.p99_ms, 2),
                    std::to_string(m.max_pending_seen)});
      json->AddRow("service/" +
                       std::string(SchedulingPolicyToString(policy)) + "/req" +
                       std::to_string(requests) + "/tenants4",
                   {{"wall_seconds", m.wall_seconds},
                    {"p50_seconds", m.p50_ms * 1e-3},
                    {"p99_seconds", m.p99_ms * 1e-3},
                    {"throughput_rps", m.throughput_rps}});
    }
    // ...and a tenant sweep at a fixed load.
    for (const int tenants : {1, 2, 8}) {
      const ServiceRunMetrics m = ServeBurst(
          in.r, in.s, config, policy, env.cpu_threads, 32, tenants);
      table.AddRow({SchedulingPolicyToString(policy), "32",
                    std::to_string(tenants), Ms(m.wall_seconds),
                    TablePrinter::Fmt(m.throughput_rps, 1),
                    TablePrinter::Fmt(m.p50_ms, 2),
                    TablePrinter::Fmt(m.p99_ms, 2),
                    std::to_string(m.max_pending_seen)});
      json->AddRow("service/" +
                       std::string(SchedulingPolicyToString(policy)) +
                       "/req32/tenants" + std::to_string(tenants),
                   {{"wall_seconds", m.wall_seconds},
                    {"p50_seconds", m.p50_ms * 1e-3},
                    {"p99_seconds", m.p99_ms * 1e-3},
                    {"throughput_rps", m.throughput_rps}});
    }
  }
  table.Print();
  std::printf(
      "p50 tracks a single join's service time; p99 is dominated by "
      "queueing behind the worker budget, which fair-share redistributes "
      "across tenants rather than reduces (§4.2's kernel-count trade-off, "
      "served for real instead of simulated).\n");
}

// ---------------------------------------------------------------------------
// Part 3: cold vs warm serving -- the dataset-registry plan cache.
//
// Cold requests re-register a dataset before each submission (the version
// bump invalidates the cached plan, forcing a full re-plan); warm requests
// hit the cache and skip Plan entirely. Exit-code-checked: warm p50 must
// not exceed cold p50, warm plan time must collapse versus cold, and every
// warm result must be bit-identical to the cold one -- warm serving changes
// latency, never answers.
// ---------------------------------------------------------------------------
void RunWarmServingSection(const BenchEnv& env, uint64_t scale,
                           JsonReporter* json) {
  const JoinInputs in = MakeInputs(WorkloadShape::kUniform,
                                   JoinKind::kPolygonPolygon, scale,
                                   /*seed_base=*/13);
  EngineConfig config;
  config.num_threads = env.cpu_threads;

  exec::JoinServiceOptions options;
  options.worker_threads = env.cpu_threads;
  options.max_concurrent = 2;
  options.max_pending = 64;
  exec::JoinService service(options);
  service.RegisterDataset("r", in.r);
  service.RegisterDataset("s", in.s);

  const int samples = std::max(5, env.reps * 3);
  const auto serve_one = [&](const char* tenant, double* latency,
                             double* plan_seconds,
                             JoinResult* result) -> bool {
    Stopwatch sw;
    auto handle =
        service.SubmitNamed(tenant, kPartitionedEngine, "r", "s", config);
    if (!handle.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   handle.status().ToString().c_str());
      return false;
    }
    exec::StreamSummary summary = handle->Collect();
    if (!summary.status.ok()) {
      std::fprintf(stderr, "stream failed: %s\n",
                   summary.status.ToString().c_str());
      return false;
    }
    if (latency != nullptr) *latency = sw.ElapsedSeconds();
    if (plan_seconds != nullptr) {
      *plan_seconds = summary.run.timing.plan_seconds;
    }
    if (result != nullptr) *result = std::move(summary.run.result);
    return true;
  };

  // Cold: every request re-plans (sequential, so queueing never skews p50).
  std::vector<double> cold_lat(samples), cold_plan(samples);
  JoinResult cold_result;
  Stopwatch cold_wall;
  for (int i = 0; i < samples; ++i) {
    service.RegisterDataset("r", in.r);  // version bump: invalidate plans
    if (!serve_one("cold", &cold_lat[i], &cold_plan[i], &cold_result)) {
      std::exit(1);
    }
  }
  const double cold_wall_s = cold_wall.ElapsedSeconds();

  // Warm: one unmeasured request populates the cache for the current
  // dataset versions; every measured request after it is a cache hit.
  if (!serve_one("warmup", nullptr, nullptr, nullptr)) std::exit(1);
  std::vector<double> warm_lat(samples), warm_plan(samples);
  bool results_match = true;
  Stopwatch warm_wall;
  for (int i = 0; i < samples; ++i) {
    JoinResult warm_result;
    if (!serve_one("warm", &warm_lat[i], &warm_plan[i], &warm_result)) {
      std::exit(1);
    }
    results_match =
        results_match && JoinResult::SameMultiset(cold_result, warm_result);
  }
  const double warm_wall_s = warm_wall.ElapsedSeconds();

  const double cold_p50 = Percentile(cold_lat, 0.50) * 1e3;
  const double warm_p50 = Percentile(warm_lat, 0.50) * 1e3;
  const double cold_plan_p50 = Percentile(cold_plan, 0.50) * 1e3;
  const double warm_plan_p50 = Percentile(warm_plan, 0.50) * 1e3;

  TablePrinter table(
      "Cold vs warm serving at scale " + std::to_string(scale) +
          " (cold = version bump forces re-plan; warm = plan-cache hit)",
      {"mode", "requests", "p50_ms", "p99_ms", "plan_p50_ms", "req_per_s"});
  table.AddRow({"cold", std::to_string(samples), TablePrinter::Fmt(cold_p50, 2),
                TablePrinter::Fmt(Percentile(cold_lat, 0.99) * 1e3, 2),
                TablePrinter::Fmt(cold_plan_p50, 3),
                TablePrinter::Fmt(samples / cold_wall_s, 1)});
  table.AddRow({"warm", std::to_string(samples), TablePrinter::Fmt(warm_p50, 2),
                TablePrinter::Fmt(Percentile(warm_lat, 0.99) * 1e3, 2),
                TablePrinter::Fmt(warm_plan_p50, 3),
                TablePrinter::Fmt(samples / warm_wall_s, 1)});
  table.Print();
  json->AddRow("warm_serving/cold",
               {{"p50_seconds", cold_p50 * 1e-3},
                {"plan_p50_seconds", cold_plan_p50 * 1e-3},
                {"throughput_rps", samples / cold_wall_s}});
  json->AddRow("warm_serving/warm",
               {{"p50_seconds", warm_p50 * 1e-3},
                {"plan_p50_seconds", warm_plan_p50 * 1e-3},
                {"throughput_rps", samples / warm_wall_s}});

  const auto cache = service.stats().plan_cache;
  std::printf("plan cache: %zu hits / %zu misses, %zu invalidated, "
              "%zu bytes resident\n",
              cache.hits, cache.misses, cache.invalidated,
              cache.resident_bytes);

  // The exit-code-checked contract (CI smoke-runs this section).
  const bool p50_ok = warm_p50 <= cold_p50;
  const bool plan_ok = warm_plan_p50 <= 0.5 * cold_plan_p50;
  std::printf("warm p50 <= cold p50: %s (%.2fms vs %.2fms)\n",
              p50_ok ? "PASS" : "FAIL", warm_p50, cold_p50);
  std::printf("warm requests skip Plan (plan p50 collapses): %s "
              "(%.3fms vs %.3fms)\n",
              plan_ok ? "PASS" : "FAIL", warm_plan_p50, cold_plan_p50);
  std::printf("warm results bit-identical to cold: %s\n\n",
              results_match ? "PASS" : "FAIL");
  if (!p50_ok || !plan_ok || !results_match) std::exit(1);
}

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv, /*default_scale=*/60000);
  JsonReporter json("fig_async_service", env);
  RunOverlapSection(env, &json);
  // The service section uses smaller per-request joins so a burst of 64
  // stays container-friendly.
  RunServiceSection(env, std::max<uint64_t>(5000, env.scales.front() / 10),
                    &json);
  RunWarmServingSection(env, std::max<uint64_t>(5000, env.scales.front() / 4),
                        &json);
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
