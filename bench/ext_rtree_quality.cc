// Extension study (§2.2): construction-method quality. Compares the four
// R-tree construction paths the paper discusses -- dynamic Guttman
// insertion, dynamic R* insertion, STR bulk load, Hilbert bulk load -- on
// build time, topology metrics, window-query node accesses, and the
// resulting synchronous-traversal join latency on the simulated device.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "hw/accelerator.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"
#include "rtree/stats.h"

namespace swiftspatial::bench {
namespace {

struct Built {
  PackedRTree tree;
  double build_ms;
};

Built Build(const char* method, const Dataset& d, std::size_t threads) {
  Stopwatch sw;
  if (std::string(method) == "guttman") {
    RTreeOptions opt;
    opt.max_entries = 16;
    PackedRTree t = RTree::BuildByInsertion(d, opt).Pack();
    return {std::move(t), sw.ElapsedMillis()};
  }
  if (std::string(method) == "r-star") {
    RTreeOptions opt;
    opt.max_entries = 16;
    opt.policy = InsertionPolicy::kRStar;
    PackedRTree t = RTree::BuildByInsertion(d, opt).Pack();
    return {std::move(t), sw.ElapsedMillis()};
  }
  BulkLoadOptions bl;
  bl.max_entries = 16;
  bl.num_threads = threads;
  PackedRTree t = std::string(method) == "str" ? StrBulkLoad(d, bl)
                                               : HilbertBulkLoad(d, bl);
  return {std::move(t), sw.ElapsedMillis()};
}

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv, /*default_scale=*/50000);
  const uint64_t scale = env.scales.front();
  std::printf("§2.2 extension: R-tree construction quality (scale=%lu)\n",
              static_cast<unsigned long>(scale));

  const JoinInputs in =
      MakeInputs(WorkloadShape::kOsm, JoinKind::kPolygonPolygon, scale);

  Rng rng(77);
  std::vector<Box> windows;
  for (int q = 0; q < 200; ++q) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, 9000));
    const Coord y = static_cast<Coord>(rng.Uniform(0, 9000));
    windows.push_back(Box(x, y, x + 500, y + 500));
  }

  TablePrinter table(
      "Construction method vs topology quality and join latency",
      {"method", "build_ms", "leaf_fill", "leaf_overlap", "node_accesses",
       "device_join_ms"});
  JsonReporter json("ext_rtree_quality", env);
  for (const char* method : {"guttman", "r-star", "str", "hilbert"}) {
    const Built r_built = Build(method, in.r, env.cpu_threads);
    const Built s_built = Build(method, in.s, env.cpu_threads);
    const TreeQualityStats q = ComputeTreeQuality(r_built.tree);

    hw::AcceleratorConfig cfg;
    cfg.num_join_units = env.units;
    const auto report =
        hw::Accelerator(cfg).RunSyncTraversal(r_built.tree, s_built.tree);

    table.AddRow({method, TablePrinter::Fmt(r_built.build_ms + s_built.build_ms, 1),
                  TablePrinter::Fmt(q.avg_leaf_fill, 3),
                  TablePrinter::FmtSci(q.leaf_overlap_area, 2),
                  TablePrinter::Fmt(AvgNodeAccesses(r_built.tree, windows), 1),
                  Ms(report.total_seconds)});
    json.AddRow(method,
                {{"build_seconds", (r_built.build_ms + s_built.build_ms) / 1e3},
                 {"leaf_fill", q.avg_leaf_fill},
                 {"node_accesses", AvgNodeAccesses(r_built.tree, windows)},
                 {"device_join_seconds", report.total_seconds}});
  }
  table.Print();
  std::printf(
      "Expected shape (§2.2): bulk loading (STR/Hilbert) builds faster and "
      "yields fuller, less-overlapping leaves than dynamic insertion; R* "
      "improves on Guttman at a higher insert cost; better topology "
      "translates into fewer node accesses and faster device joins.\n");
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
