// Figure 10: effect of R-tree node size on join performance, for the
// 16-thread CPU synchronous traversal and the 16-join-unit accelerator.
// The paper's finding: both peak at node size 16 -- smaller nodes prune
// better but drown in random DRAM reads; larger nodes waste predicate
// evaluations.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "hw/accelerator.h"
#include "join/engine.h"
#include "rtree/bulk_load.h"

namespace swiftspatial::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  std::printf(
      "Figure 10 reproduction: node-size sweep (threads=%zu, units=%d)\n",
      env.cpu_threads, env.units);
  TablePrinter table(
      "Fig. 10 -- R-tree node size vs join latency (16 threads / 16 units)",
      {"dataset", "scale", "node_size", "cpu_ms", "fpga_ms", "fpga_cycles",
       "predicates"});
  JsonReporter json("fig10_node_sizes", env);

  for (const uint64_t scale : env.scales) {
    for (const WorkloadShape shape :
         {WorkloadShape::kUniform, WorkloadShape::kOsm}) {
      const JoinInputs in =
          MakeInputs(shape, JoinKind::kPolygonPolygon, scale);
      for (const int node_size : {8, 16, 32, 64}) {
        BulkLoadOptions bl;
        bl.max_entries = node_size;
        bl.num_threads = env.cpu_threads;
        const PackedRTree rt = StrBulkLoad(in.r, bl);
        const PackedRTree st = StrBulkLoad(in.s, bl);

        EngineConfig ecfg;
        ecfg.num_threads = env.cpu_threads;
        ecfg.node_capacity = node_size;
        const EngineTiming cpu =
            OrDie(TimeEngine(kParallelSyncTraversalEngine, ecfg, in.r, in.s,
                             env.reps),
                  "CPU sync-traversal baseline");
        const double cpu_sec = cpu.median_execute_seconds;

        hw::AcceleratorConfig cfg;
        cfg.num_join_units = env.units;
        const auto report = hw::Accelerator(cfg).RunSyncTraversal(rt, st);

        table.AddRow({ShapeName(shape), std::to_string(scale),
                      std::to_string(node_size), Ms(cpu_sec),
                      Ms(report.total_seconds),
                      std::to_string(report.kernel_cycles),
                      std::to_string(report.stats.predicate_evaluations)});
        json.AddRow(
            std::string(ShapeName(shape)) + "/" + std::to_string(scale) +
                "/node" + std::to_string(node_size),
            {{"cpu_seconds", cpu_sec},
             {"fpga_seconds", report.total_seconds},
             {"fpga_cycles", static_cast<double>(report.kernel_cycles)},
             {"predicates",
              static_cast<double>(report.stats.predicate_evaluations)}});
      }
    }
  }
  table.Print();
  std::printf(
      "Expected shape: latency is U-shaped in node size with the optimum at "
      "16 for both systems (paper Fig. 10).\n");
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
