// Accelerator-offload engine benchmark: the simulated device behind the
// same RunJoin / RunJoinAsync entry points as every CPU engine.
//
// Two questions, one table each:
//  1. End-to-end: CPU engines (host wall clock) vs accelerator engines
//     (host wall clock to drive the simulation, plus the *modelled* device
//     seconds -- kernel + PCIe + launch -- which is the number comparable
//     to the paper's measurements).
//  2. Streaming: time-to-first-chunk of exec::RunJoinAsync on the native
//     accelerator streams. The write unit's burst flushes surface as chunks
//     while the simulated kernel still runs, so the first chunk lands well
//     before the synchronous run completes -- the host/device overlap
//     signal.
//
// The harness exits non-zero if any engine fails or a streamed result
// diverges from its synchronous run, so CI can smoke-test it.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "exec/streaming.h"
#include "join/accel_engine.h"

namespace swiftspatial::bench {
namespace {

int Main(int argc, char** argv) {
  // Simulation is cycle-accurate and single-threaded: default to a modest
  // scale (override with --scale).
  const BenchEnv env = BenchEnv::Parse(argc, argv, /*default_scale=*/4000);
  std::printf(
      "Accelerator offload engines: CPU vs simulated device end-to-end, "
      "plus streaming time-to-first-chunk\n");

  int failures = 0;
  JsonReporter json("fig_accel_engine", env);
  for (const uint64_t scale : env.scales) {
    // Unit squares on a map sized for ~5 result pairs per object regardless
    // of scale (the paper's fixed 10000-unit map only becomes selective at
    // 1e5+ objects; this bench must stream multi-chunk at smoke sizes too).
    UniformConfig gen;
    gen.count = scale;
    gen.map.map_size =
        std::max(4.0, 2.0 * std::sqrt(static_cast<double>(scale) / 5.0));
    gen.seed = 101;
    JoinInputs in;
    in.r = GenerateUniform(gen);
    gen.seed = 202;
    in.s = GenerateUniform(gen);
    std::printf("\n== scale %llu x %llu (threads=%zu, units=%d) ==\n",
                static_cast<unsigned long long>(in.r.size()),
                static_cast<unsigned long long>(in.s.size()),
                env.cpu_threads, env.units);

    EngineConfig config;
    config.num_threads = env.cpu_threads;
    config.accel_join_units = env.units;

    TablePrinter table(
        "End-to-end (host wall vs device model)",
        {"engine", "plan_ms", "exec_host_ms", "device_model_ms", "results"});

    // First engine's output is the reference; every later engine must
    // produce the identical result multiset (equal counts are not enough:
    // a dedup bug can double-claim one pair and drop another).
    JoinResult reference;
    bool have_reference = false;
    const auto check_result = [&](const char* name, JoinResult result) {
      if (!have_reference) {
        reference = std::move(result);
        have_reference = true;
        return;
      }
      if (!JoinResult::SameMultiset(reference, result)) {
        std::fprintf(stderr,
                     "%s: result multiset diverges from the reference "
                     "(%zu vs %zu pairs)\n",
                     name, result.size(), reference.size());
        ++failures;
      }
    };
    for (const char* name : {kPartitionedEngine, kParallelSyncTraversalEngine,
                             kAccelBfsEngine, kAccelPbsmEngine,
                             kAccelPbsmMultiEngine}) {
      if (IsAccelEngine(name)) {
        auto engine = MakeAccelEngine(name, config);
        if (!engine.ok()) {
          std::fprintf(stderr, "%s: %s\n", name,
                       engine.status().ToString().c_str());
          ++failures;
          continue;
        }
        Stopwatch sw;
        const Status plan = (*engine)->Plan(in.r, in.s);
        const double plan_s = sw.ElapsedSeconds();
        if (!plan.ok()) {
          std::fprintf(stderr, "%s: %s\n", name, plan.ToString().c_str());
          ++failures;
          continue;
        }
        JoinResult out;
        Status exec_status = Status::OK();
        const double exec_s = MedianSeconds(
            [&] {
              Status st = (*engine)->Execute(&out, nullptr);
              if (!st.ok()) exec_status = std::move(st);
            },
            env.reps);
        if (!exec_status.ok()) {
          std::fprintf(stderr, "%s: %s\n", name,
                       exec_status.ToString().c_str());
          ++failures;
          continue;
        }
        const hw::AcceleratorReport& report = (*engine)->last_report();
        table.AddRow({name, Ms(plan_s), Ms(exec_s),
                      Ms(report.total_seconds), std::to_string(out.size())});
        json.AddRow(std::string(name) + "/" + std::to_string(scale),
                    {{"plan_seconds", plan_s},
                     {"execute_seconds", exec_s},
                     {"device_model_seconds", report.total_seconds},
                     {"results", static_cast<double>(out.size())}});
        check_result(name, std::move(out));
      } else {
        JoinResult out;
        auto timing = TimeEngine(name, config, in.r, in.s, env.reps, &out);
        if (!timing.ok()) {
          std::fprintf(stderr, "%s: %s\n", name,
                       timing.status().ToString().c_str());
          ++failures;
          continue;
        }
        table.AddRow({name, Ms(timing->plan_seconds),
                      Ms(timing->median_execute_seconds), "-",
                      std::to_string(timing->results)});
        json.AddRow(std::string(name) + "/" + std::to_string(scale),
                    {{"plan_seconds", timing->plan_seconds},
                     {"execute_seconds", timing->median_execute_seconds},
                     {"results", static_cast<double>(timing->results)}});
        check_result(name, std::move(out));
      }
    }
    table.Print();

    // --- Streaming: time-to-first-chunk vs the synchronous run. ---
    TablePrinter stream_table(
        "RunJoinAsync on the accelerator engines (native streaming)",
        {"engine", "sync_total_ms", "async_total_ms", "first_chunk_ms",
         "chunks", "overlap"});
    for (const char* name :
         {kAccelBfsEngine, kAccelPbsmEngine, kAccelPbsmMultiEngine}) {
      auto sync = RunJoin(name, in.r, in.s, config);
      if (!sync.ok()) {
        std::fprintf(stderr, "%s sync: %s\n", name,
                     sync.status().ToString().c_str());
        ++failures;
        continue;
      }
      const double sync_total = sync->timing.total_seconds();

      Stopwatch sw;
      auto handle = exec::RunJoinAsync(name, in.r, in.s, config);
      if (!handle.ok()) {
        std::fprintf(stderr, "%s async: %s\n", name,
                     handle.status().ToString().c_str());
        ++failures;
        continue;
      }
      exec::ResultChunk chunk;
      double first_chunk_s = -1;
      std::size_t chunks = 0;
      JoinResult streamed;
      while (handle->Next(&chunk)) {
        if (first_chunk_s < 0) first_chunk_s = sw.ElapsedSeconds();
        ++chunks;
        auto& pairs = streamed.mutable_pairs();
        pairs.insert(pairs.end(), chunk.pairs.begin(), chunk.pairs.end());
      }
      const double async_total = sw.ElapsedSeconds();
      const Status final_status = handle->Wait();
      if (!final_status.ok()) {
        std::fprintf(stderr, "%s async: %s\n", name,
                     final_status.ToString().c_str());
        ++failures;
        continue;
      }
      if (!JoinResult::SameMultiset(sync->result, streamed)) {
        std::fprintf(stderr,
                     "%s: streamed multiset (%zu pairs) diverges from the "
                     "synchronous run (%zu pairs)\n",
                     name, streamed.size(), sync->result.size());
        ++failures;
      }
      // The overlap signal: how early the first chunk landed relative to
      // the synchronous end-to-end time.
      const std::string overlap =
          first_chunk_s < 0
              ? "-"
              : TablePrinter::Fmt(sync_total / first_chunk_s, 1) +
                    "x before sync";
      stream_table.AddRow({name, Ms(sync_total), Ms(async_total),
                           first_chunk_s < 0 ? "-" : Ms(first_chunk_s),
                           std::to_string(chunks), overlap});
      json.AddRow("stream/" + std::string(name) + "/" +
                      std::to_string(scale),
                  {{"sync_total_seconds", sync_total},
                   {"async_total_seconds", async_total},
                   {"first_chunk_seconds",
                    first_chunk_s < 0 ? 0.0 : first_chunk_s},
                   {"chunks", static_cast<double>(chunks)}});
    }
    stream_table.Print();
  }

  if (failures > 0) {
    std::fprintf(stderr, "FAIL: %d accelerator-engine check(s) failed\n",
                 failures);
    return 1;
  }
  std::printf(
      "\nPASS. Reading the tables: exec_host_ms is what this host pays to "
      "*simulate* the device cycle-by-cycle; device_model_ms is the modelled "
      "kernel + PCIe + launch time an actual U250 would take, the number "
      "comparable to the paper and to the CPU rows. first_chunk_ms << "
      "sync_total_ms is the host/device overlap: consumers start refining "
      "while the (simulated) kernel is still filtering.\n");
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
