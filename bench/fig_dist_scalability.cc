// Multi-node scalability sweep for the src/dist/ cluster runtime: node
// counts 1/2/4/8/16 x placement policies x uniform-vs-skewed workloads.
//
// Reported per configuration:
//   makespan_ms   max over nodes of summed per-shard execute seconds -- the
//                 cluster completion-time estimate. Busy sums are work
//                 proportional, so the metric is meaningful even when the
//                 benchmark host serialises the "concurrent" nodes.
//   speedup       1-node makespan / this makespan (same workload).
//   straggler     max node busy / mean node busy (1.0 = perfectly
//                 balanced). The number the placement policies compete on:
//                 on the skewed workload, cost-balanced placement should
//                 narrow the gap round-robin leaves.
//   exch_KB/msgs  exchange payload shipped to the merge coordinator, plus
//                 modelled wire milliseconds of the busiest link.
//   replicas      boundary-object replicas the placement implies (locality
//                 placement should cut these).
//
// Every configuration's result multiset is checked against the single-node
// run; any divergence exits non-zero (the CI smoke contract).
#include <cstdio>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dist/dist_join.h"

namespace swiftspatial::bench {
namespace {

using dist::DistJoinOptions;
using dist::DistReport;
using dist::PlacementPolicy;

constexpr PlacementPolicy kPolicies[] = {PlacementPolicy::kRoundRobin,
                                         PlacementPolicy::kCostBalanced,
                                         PlacementPolicy::kLocality};

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv, /*default_scale=*/20000);
  const uint64_t scale = env.scales.front();

  std::printf(
      "Distributed join scalability: %llu x %llu objects per workload, "
      "16x16 shard grid, 1 worker per node\n",
      static_cast<unsigned long long>(scale),
      static_cast<unsigned long long>(scale));

  TablePrinter table(
      "Cluster scalability x placement policy",
      {"workload", "nodes", "placement", "shards", "makespan_ms", "speedup",
       "straggler", "exch_KB", "exch_msgs", "wire_ms", "replicas",
       "wall_ms"});

  bool diverged = false;
  JsonReporter json("fig_dist_scalability", env);
  std::map<std::string, double> uniform_speedup_at;
  double skew_gap_rr8 = 0, skew_gap_cost8 = 0;

  for (const WorkloadShape shape :
       {WorkloadShape::kUniform, WorkloadShape::kOsm}) {
    const JoinInputs inputs =
        MakeInputs(shape, JoinKind::kPolygonPolygon, scale);

    // Single-node baseline: the reference multiset and the speedup
    // denominator (placement is irrelevant at one node).
    DistJoinOptions base;
    base.num_nodes = 1;
    base.grid_cols = 16;
    base.grid_rows = 16;
    JoinResult reference;
    Stopwatch base_sw;
    auto base_report = DistributedJoin(inputs.r, inputs.s, base, &reference);
    const double base_wall = base_sw.ElapsedSeconds();
    if (!base_report.ok()) {
      std::fprintf(stderr, "FATAL: single-node run failed: %s\n",
                   base_report.status().ToString().c_str());
      return 1;
    }
    reference.Sort();
    const double base_makespan = base_report->makespan_seconds;
    table.AddRow({ShapeName(shape), "1", "-",
                  std::to_string(base_report->shards),
                  TablePrinter::Fmt(base_makespan * 1e3, 1), "1.00x", "1.00",
                  TablePrinter::Fmt(
                      static_cast<double>(
                          base_report->exchange_payload_bytes) / 1024.0, 1),
                  std::to_string(base_report->exchange_messages),
                  TablePrinter::Fmt(
                      base_report->exchange_modelled_seconds * 1e3, 2),
                  std::to_string(base_report->replicated_objects),
                  TablePrinter::Fmt(base_wall * 1e3, 1)});
    json.AddRow(std::string(ShapeName(shape)) + "/nodes1",
                {{"makespan_seconds", base_makespan},
                 {"wall_seconds", base_wall},
                 {"straggler_gap", 1.0}});

    for (const int nodes : {2, 4, 8, 16}) {
      for (const PlacementPolicy policy : kPolicies) {
        DistJoinOptions options = base;
        options.num_nodes = nodes;
        options.placement = policy;
        JoinResult got;
        Stopwatch sw;
        auto report = DistributedJoin(inputs.r, inputs.s, options, &got);
        const double wall = sw.ElapsedSeconds();
        if (!report.ok()) {
          std::fprintf(stderr, "FATAL: %s %d-node %s run failed: %s\n",
                       ShapeName(shape), nodes,
                       PlacementPolicyToString(policy),
                       report.status().ToString().c_str());
          return 1;
        }
        got.Sort();
        if (!(got.pairs() == reference.pairs())) {
          std::fprintf(stderr,
                       "FATAL: result divergence on %s at %d nodes (%s): "
                       "%zu pairs vs reference %zu\n",
                       ShapeName(shape), nodes,
                       PlacementPolicyToString(policy), got.size(),
                       reference.size());
          diverged = true;
        }
        const double speedup =
            report->makespan_seconds > 0
                ? base_makespan / report->makespan_seconds
                : 0;
        table.AddRow(
            {ShapeName(shape), std::to_string(nodes),
             PlacementPolicyToString(policy),
             std::to_string(report->shards),
             TablePrinter::Fmt(report->makespan_seconds * 1e3, 1),
             TablePrinter::Fmt(speedup, 2) + "x",
             TablePrinter::Fmt(report->straggler_gap, 2),
             TablePrinter::Fmt(
                 static_cast<double>(report->exchange_payload_bytes) /
                     1024.0, 1),
             std::to_string(report->exchange_messages),
             TablePrinter::Fmt(report->exchange_modelled_seconds * 1e3, 2),
             std::to_string(report->replicated_objects),
             TablePrinter::Fmt(wall * 1e3, 1)});
        json.AddRow(std::string(ShapeName(shape)) + "/nodes" +
                        std::to_string(nodes) + "/" +
                        PlacementPolicyToString(policy),
                    {{"makespan_seconds", report->makespan_seconds},
                     {"wall_seconds", wall},
                     {"straggler_gap", report->straggler_gap},
                     {"exchange_bytes",
                      static_cast<double>(report->exchange_payload_bytes)},
                     {"replicas",
                      static_cast<double>(report->replicated_objects)}});

        if (shape == WorkloadShape::kUniform &&
            policy == PlacementPolicy::kCostBalanced) {
          uniform_speedup_at[std::to_string(nodes)] = speedup;
        }
        if (shape == WorkloadShape::kOsm && nodes == 8) {
          if (policy == PlacementPolicy::kRoundRobin) {
            skew_gap_rr8 = report->straggler_gap;
          } else if (policy == PlacementPolicy::kCostBalanced) {
            skew_gap_cost8 = report->straggler_gap;
          }
        }
      }
    }
  }
  table.Print();

  std::printf(
      "Uniform workload, cost-balanced placement: %.2fx at 8 nodes "
      "(%.2fx at 16).\n",
      uniform_speedup_at["8"], uniform_speedup_at["16"]);
  std::printf(
      "Skewed workload at 8 nodes: straggler gap %.2f (round-robin) vs "
      "%.2f (cost-balanced) -- placement, not the per-shard join, decides "
      "the tail.\n",
      skew_gap_rr8, skew_gap_cost8);
  std::printf("result check: %s\n", diverged ? "DIVERGED" : "all configurations identical");
  if (!json.WriteIfRequested()) return 1;
  return diverged ? 1 : 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
