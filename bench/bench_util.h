// Shared infrastructure for the figure/table reproduction harnesses. Every
// bench binary runs with no arguments at a scaled-down default size
// (container-friendly) and accepts:
//   --full            paper-scale datasets (1e5..1e7 objects)
//   --scale=N         a single explicit dataset scale
//   --threads=N       CPU worker threads (default: hardware concurrency)
//   --units=N         simulated join units (default 16, the paper's config)
//   --reps=N          timed repetitions after one warmup (default 3)
//   --json-out=DIR    additionally write machine-readable telemetry to
//                     DIR/BENCH_<name>.json (see JsonReporter below); the
//                     CI bench-telemetry job diffs these against committed
//                     baselines with tools/perf_compare.py
#ifndef SWIFTSPATIAL_BENCH_BENCH_UTIL_H_
#define SWIFTSPATIAL_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "datagen/generator.h"
#include "join/engine.h"

namespace swiftspatial::bench {

/// Dataset family from the paper's evaluation (§5.1).
enum class WorkloadShape { kUniform, kOsm };

/// Join type from the paper's evaluation.
enum class JoinKind { kPointPolygon, kPolygonPolygon };

inline const char* ShapeName(WorkloadShape s) {
  return s == WorkloadShape::kUniform ? "Uniform" : "OSM-like";
}
inline const char* JoinName(JoinKind k) {
  return k == JoinKind::kPointPolygon ? "Point-Polygon" : "Polygon-Polygon";
}

/// Benchmark environment parsed from the command line.
struct BenchEnv {
  Flags flags;
  bool full = false;
  std::size_t cpu_threads = 1;
  int units = 16;
  int reps = 3;
  std::vector<uint64_t> scales;
  /// Directory for BENCH_<name>.json telemetry; empty disables emission.
  std::string json_dir;

  static BenchEnv Parse(int argc, char** argv,
                        uint64_t default_scale = 100000) {
    BenchEnv env;
    env.flags = Flags::Parse(argc, argv);
    env.full = env.flags.GetBool("full", false);
    env.cpu_threads = static_cast<std::size_t>(env.flags.GetInt(
        "threads",
        std::max<int64_t>(1, std::thread::hardware_concurrency())));
    env.units = static_cast<int>(env.flags.GetInt("units", 16));
    env.reps = static_cast<int>(env.flags.GetInt("reps", 3));
    env.json_dir = env.flags.GetString("json-out", "");
    if (env.flags.Has("scale")) {
      env.scales = {static_cast<uint64_t>(env.flags.GetInt("scale", 100000))};
    } else if (env.full) {
      env.scales = {100000, 1000000, 10000000};
    } else {
      env.scales = {default_scale};
    }
    return env;
  }
};

/// Builds the (R, S) pair for one paper workload. R is the point set for
/// point-polygon joins (cuSpatial-style orientation); both sides are
/// rectangle sets for polygon-polygon.
struct JoinInputs {
  Dataset r;
  Dataset s;
};

inline JoinInputs MakeInputs(WorkloadShape shape, JoinKind kind,
                             uint64_t scale, uint64_t seed_base = 0) {
  JoinInputs out;
  if (shape == WorkloadShape::kUniform) {
    UniformConfig polygons;
    polygons.count = scale;
    polygons.seed = 101 + seed_base;
    UniformConfig other = polygons;
    other.seed = 202 + seed_base;
    if (kind == JoinKind::kPointPolygon) {
      out.r = GenerateUniformPoints(other);
    } else {
      out.r = GenerateUniform(other);
    }
    out.s = GenerateUniform(polygons);
  } else {
    OsmLikeConfig buildings;
    buildings.count = scale;
    buildings.seed = 303 + seed_base;
    OsmLikeConfig other = buildings;
    other.seed = 404 + seed_base;
    if (kind == JoinKind::kPointPolygon) {
      out.r = GenerateOsmLikePoints(other);
    } else {
      out.r = GenerateOsmLike(other);
    }
    out.s = GenerateOsmLike(buildings);
  }
  return out;
}

/// Timing of one engine benchmarked through the unified JoinEngine API.
struct EngineTiming {
  double plan_seconds = 0;            ///< index/partition build (untimed cost)
  double median_execute_seconds = 0;  ///< median of `reps` Execute calls
  uint64_t results = 0;
};

/// One warmup run plus `reps` timed runs; returns the median seconds.
inline double MedianSeconds(const std::function<void()>& fn, int reps = 3) {
  fn();  // warmup (§5.1: "a warmup run followed by three executions")
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    Stopwatch sw;
    fn();
    times.push_back(sw.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Benchmarks engine `name` from the global registry: Plan once (timed
/// separately, as the paper prices index builds apart from the join), then
/// one warmup + `reps` timed Execute calls. The join result of the last run
/// is moved into `last_result` when non-null. Errors (unknown engine,
/// invalid config, unsupported input kind) propagate as Status so harnesses
/// can skip inapplicable rows.
inline Result<EngineTiming> TimeEngine(const std::string& name,
                                       const EngineConfig& config,
                                       const Dataset& r, const Dataset& s,
                                       int reps,
                                       JoinResult* last_result = nullptr) {
  auto engine = EngineRegistry::Global().Create(name, config);
  if (!engine.ok()) return engine.status();
  Stopwatch sw;
  SWIFT_RETURN_IF_ERROR((*engine)->Plan(r, s));
  EngineTiming timing;
  timing.plan_seconds = sw.ElapsedSeconds();
  JoinResult out;
  Status exec_status;
  timing.median_execute_seconds = MedianSeconds(
      [&] {
        Status st = (*engine)->Execute(&out, nullptr);
        if (!st.ok()) exec_status = std::move(st);
      },
      reps);
  SWIFT_RETURN_IF_ERROR(exec_status);
  timing.results = out.size();
  if (last_result != nullptr) *last_result = std::move(out);
  return timing;
}

// --- Checked exits: no partial-table fall-through ---------------------------
//
// A harness that drops a failed row and still exits 0 turns breakage into a
// silently thinner table. Row-production failures split into two classes:
//   * kNotSupported -- the engine declares itself inapplicable to the input
//     (e.g. cuspatial_like on a rectangle probe set). Expected: noted on
//     stderr, exit code unaffected.
//   * anything else -- real breakage: reported on stderr, and the binary
//     exits non-zero (via ExitCode() or OrDie).

inline int& UnexpectedFailures() {
  static int count = 0;
  return count;
}

/// Harnesses that skip rows end their main with `return bench::ExitCode();`.
inline int ExitCode() { return UnexpectedFailures() == 0 ? 0 : 1; }

/// Records a row that could not be produced; see the class split above.
inline void SkipRow(const std::string& label, const Status& status) {
  if (status.code() == StatusCode::kNotSupported) {
    std::fprintf(stderr, "note: %s skipped: %s\n", label.c_str(),
                 status.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "ERROR: %s: %s\n", label.c_str(),
               status.ToString().c_str());
  ++UnexpectedFailures();
}

/// Unwraps a Result whose failure has no expected-skip reading (a baseline
/// engine on an input it supports): prints the status and exits non-zero.
template <typename T>
T OrDie(Result<T> result, const std::string& what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Formats seconds as engineering-readable milliseconds.
inline std::string Ms(double seconds) {
  return TablePrinter::Fmt(seconds * 1e3, seconds < 0.01 ? 3 : 1);
}

/// Formats a speedup factor, e.g. "12.3x".
inline std::string Speedup(double baseline_seconds, double seconds) {
  if (seconds <= 0) return "-";
  return TablePrinter::Fmt(baseline_seconds / seconds, 2) + "x";
}

// --- Machine-readable bench telemetry ---------------------------------------

/// Process CPU time (user + system) from getrusage: the numerator of the
/// per-row CPU utilization metric. 0 where rusage is unavailable.
inline double ProcessCpuSeconds() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + 1e-6 * t.tv_usec;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
#else
  return 0;
#endif
}

/// Emits one BENCH_<name>.json per harness run: a schema-versioned record
/// of every table row as named numeric metrics, plus the machine/run
/// context needed to compare two runs honestly (threads, units, reps,
/// scales, hardware concurrency, git sha). tools/perf_compare.py consumes
/// pairs of these; the CI bench-telemetry job gates on the comparison.
///
///   bench::JsonReporter json("fig08_end_to_end", env);
///   ...
///   json.AddRow(label, {{"execute_seconds", t.median_execute_seconds},
///                       {"results", double(t.results)}});
///   ...
///   if (!json.WriteIfRequested()) return 1;   // before bench::ExitCode()
///
/// Every row additionally records `cpu_utilization`: process CPU time
/// (user+sys, all threads) over wall time, both measured across the
/// interval since the previous AddRow (so warmups and dataset setup done
/// for the row are included). ~1.0 = single-threaded, ~N = N cores busy,
/// << 1 = the row mostly waited.
///
/// Schema (schema_version 1):
///   { "schema_version": 1, "name": "...", "context": {...},
///     "rows": [ { "label": "...", "metrics": { "<metric>": <number> } } ] }
class JsonReporter {
 public:
  JsonReporter(std::string name, const BenchEnv& env)
      : name_(std::move(name)),
        json_dir_(env.json_dir),
        row_wall_(),
        row_cpu_(ProcessCpuSeconds()) {
    context_ = "{";
    context_ += "\"threads\":" + std::to_string(env.cpu_threads);
    context_ += ",\"units\":" + std::to_string(env.units);
    context_ += ",\"reps\":" + std::to_string(env.reps);
    context_ += ",\"full\":" + std::string(env.full ? "true" : "false");
    context_ += ",\"scales\":[";
    for (std::size_t i = 0; i < env.scales.size(); ++i) {
      if (i != 0) context_ += ",";
      context_ += std::to_string(env.scales[i]);
    }
    context_ += "]";
    context_ += ",\"hardware_concurrency\":" +
                std::to_string(std::thread::hardware_concurrency());
#ifdef SWIFTSPATIAL_GIT_SHA
    context_ += ",\"git_sha\":\"" SWIFTSPATIAL_GIT_SHA "\"";
#else
    context_ += ",\"git_sha\":\"unknown\"";
#endif
    context_ += ",\"unix_time\":" +
                std::to_string(static_cast<long long>(std::time(nullptr)));
    context_ += "}";
  }

  /// Records one row. Metric names should be stable snake_case identifiers;
  /// time-like metrics should end in `_seconds` (perf_compare.py treats
  /// them as lower-is-better; counts are compared for drift, not gated).
  void AddRow(const std::string& label,
              std::vector<std::pair<std::string, double>> metrics) {
    const double wall = row_wall_.ElapsedSeconds();
    const double cpu = ProcessCpuSeconds() - row_cpu_;
    if (wall > 0) {
      metrics.emplace_back("cpu_utilization", cpu / wall);
    }
    std::string row = "    {\"label\":\"" + EscapeJson(label) +
                      "\",\"metrics\":{";
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      if (i != 0) row += ",";
      row += "\"" + EscapeJson(metrics[i].first) + "\":" +
             FormatNumber(metrics[i].second);
    }
    row += "}}";
    rows_.push_back(std::move(row));
    row_wall_.Reset();
    row_cpu_ = ProcessCpuSeconds();
  }

  std::string ToJson() const {
    std::string out = "{\n  \"schema_version\": 1,\n  \"name\": \"" +
                      EscapeJson(name_) + "\",\n  \"context\": " + context_ +
                      ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += rows_[i];
      if (i + 1 != rows_.size()) out += ",";
      out += "\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  /// Writes DIR/BENCH_<name>.json when --json-out=DIR was passed; no-op
  /// (returning true) otherwise. Returns false on I/O failure, which
  /// harness mains turn into a non-zero exit -- a telemetry run that
  /// silently wrote nothing would let CI "pass" on stale baselines.
  bool WriteIfRequested() const {
    if (json_dir_.empty()) return true;
    const std::string path = json_dir_ + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ERROR: cannot write %s\n", path.c_str());
      return false;
    }
    const std::string body = ToJson();
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    if (ok) std::fprintf(stderr, "note: wrote %s\n", path.c_str());
    return ok;
  }

 private:
  static std::string EscapeJson(const std::string& v) {
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
      switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
    return out;
  }

  static std::string FormatNumber(double v) {
    if (!std::isfinite(v)) return "0";  // JSON has no inf/nan literals
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
  }

  std::string name_;
  std::string json_dir_;
  std::string context_;
  std::vector<std::string> rows_;
  Stopwatch row_wall_;
  double row_cpu_ = 0;
};

}  // namespace swiftspatial::bench

#endif  // SWIFTSPATIAL_BENCH_BENCH_UTIL_H_
