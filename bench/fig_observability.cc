// Observability overhead gate: the unified metrics + tracing layer must be
// effectively free on the warm serving path.
//
// Part 1 -- the gate. The same batch of warm SubmitNamed requests (plan
// cached after the first submission) is served twice through a JoinService:
// once fully instrumented (private MetricsRegistry + SpanBuffer wired
// through JoinServiceOptions, spans recorded end to end) and once with the
// runtime kill switch thrown (set_enabled(false), no span buffer), which
// reduces every metric mutation to one relaxed atomic load. The bench exits
// non-zero if the instrumented median exceeds the no-op median by more than
// ~3% beyond an absolute jitter floor -- CI smoke-runs this binary
// exit-code-checked, so an accidentally hot instrumentation path fails the
// build rather than a dashboard.
//
// Part 2 -- microcosts. Raw per-op cost of the three instrument types
// (counter increment, gauge set, histogram observe) enabled vs disabled,
// for the curious; informational only, never gating.
//
//   ./build/bench/fig_observability [--scale=N] [--requests=N] [--reps=N]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "exec/service.h"
#include "exec/streaming.h"
#include "join/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace swiftspatial::bench {
namespace {

// Serves `requests` warm joins and returns the median batch seconds over
// env.reps repetitions (plus one warmup that also primes the plan cache).
double TimeServingBatch(bool instrumented, const BenchEnv& env,
                        uint64_t scale, int requests) {
  obs::MetricsRegistry registry;
  obs::SpanBuffer buffer(1 << 16);
  registry.set_enabled(instrumented);
  // The dist/join layers report to the process-global registry (reached
  // through the engine API, which carries no registry pointer), so the
  // kill switch must cover it too for a true no-op baseline.
  obs::MetricsRegistry::Global().set_enabled(instrumented);

  exec::JoinServiceOptions options;
  options.worker_threads = std::max<std::size_t>(1, env.cpu_threads);
  options.metrics = &registry;
  if (instrumented) options.span_buffer = &buffer;
  exec::JoinService service(options);

  const JoinInputs in =
      MakeInputs(WorkloadShape::kUniform, JoinKind::kPolygonPolygon, scale);
  service.RegisterDataset("r", in.r);
  service.RegisterDataset("s", in.s);

  EngineConfig config;
  config.num_threads = env.cpu_threads;
  const auto serve_batch = [&] {
    for (int i = 0; i < requests; ++i) {
      auto handle = service.SubmitNamed("bench", kPartitionedEngine, "r", "s",
                                        config);
      SWIFT_CHECK(handle.ok());
      const exec::StreamSummary summary = handle->Collect();
      SWIFT_CHECK(summary.status.ok());
    }
  };
  const double seconds = MedianSeconds(serve_batch, env.reps);
  obs::MetricsRegistry::Global().set_enabled(true);
  return seconds;
}

void RunMicroSection() {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("swiftspatial_obs_bench_total");
  obs::Gauge* gauge = registry.GetGauge("swiftspatial_obs_bench_depth");
  obs::Histogram* hist =
      registry.GetHistogram("swiftspatial_obs_bench_seconds");
  constexpr int kOps = 2000000;
  TablePrinter table("Microcosts: per-op latency of one handle mutation",
                     {"op", "enabled_ns", "disabled_ns"});
  const auto time_ops = [&](const std::function<void()>& op) {
    Stopwatch sw;
    for (int i = 0; i < kOps; ++i) op();
    return sw.ElapsedSeconds() * 1e9 / kOps;
  };
  const auto row = [&](const char* name, const std::function<void()>& op) {
    registry.set_enabled(true);
    const double on_ns = time_ops(op);
    registry.set_enabled(false);
    const double off_ns = time_ops(op);
    registry.set_enabled(true);
    table.AddRow({name, TablePrinter::Fmt(on_ns, 1),
                  TablePrinter::Fmt(off_ns, 1)});
  };
  row("counter_increment", [&] { counter->Increment(); });
  row("gauge_set", [&] { gauge->Set(42.0); });
  row("histogram_observe", [&] { hist->Observe(0.0042); });
  table.Print();
}

int Main(int argc, char** argv) {
  BenchEnv env = BenchEnv::Parse(argc, argv, /*default_scale=*/20000);
  // A gating bench wants tighter medians than the figure default of 3,
  // especially on one shared CI core; honor an explicit --reps as-is.
  if (!env.flags.Has("reps")) env.reps = 5;
  const int requests =
      static_cast<int>(env.flags.GetInt("requests", 8));
  const uint64_t scale = env.scales.front();

  TablePrinter table(
      "Observability overhead on the warm serving path (" +
          std::to_string(requests) + " warm requests/batch, scale " +
          std::to_string(scale) + ")",
      {"mode", "batch_ms", "per_req_ms", "overhead"});
  JsonReporter json("fig_observability", env);
  // Instrumented first, then baseline: if anything, the ordering hands the
  // baseline the warmer caches, biasing the gate against instrumentation.
  const double on_s = TimeServingBatch(/*instrumented=*/true, env, scale,
                                       requests);
  const double off_s = TimeServingBatch(/*instrumented=*/false, env, scale,
                                        requests);
  const double overhead = off_s > 0 ? (on_s - off_s) / off_s : 0.0;
  table.AddRow({"instrumented", Ms(on_s), Ms(on_s / requests),
                TablePrinter::Fmt(overhead * 100.0, 2) + "%"});
  table.AddRow({"no-op (kill switch)", Ms(off_s), Ms(off_s / requests), "-"});
  table.Print();
  json.AddRow("instrumented", {{"batch_seconds", on_s},
                               {"per_request_seconds", on_s / requests}});
  json.AddRow("noop", {{"batch_seconds", off_s},
                       {"per_request_seconds", off_s / requests}});

  RunMicroSection();

  // The gate: 3% relative, with a 5 ms absolute floor so sub-millisecond
  // jitter on tiny CI batches cannot fail the build spuriously.
  const double slack_seconds = 0.03 * off_s + 0.005;
  if (on_s - off_s > slack_seconds) {
    std::fprintf(stderr,
                 "FAIL: instrumented batch %.3f ms vs no-op %.3f ms "
                 "(+%.1f%%) exceeds the 3%% + 5 ms gate\n",
                 on_s * 1e3, off_s * 1e3, overhead * 100.0);
    return 1;
  }
  std::printf("observability overhead gate: PASS (+%.2f%%)\n",
              overhead * 100.0);
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) {
  return swiftspatial::bench::Main(argc, argv);
}
