// Micro benchmarks on google-benchmark: the primitive operations underlying
// every join -- MBR predicate evaluation, tile-level joins, R-tree window
// queries, Hilbert encoding, and bulk loading.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "datagen/generator.h"
#include "geometry/hilbert.h"
#include "join/nested_loop.h"
#include "join/plane_sweep.h"
#include "join/sync_traversal.h"
#include "rtree/bulk_load.h"

namespace swiftspatial {
namespace {

Dataset MakeTile(int n, double edge, uint64_t seed) {
  Rng rng(seed);
  std::vector<Box> boxes;
  boxes.reserve(n);
  for (int i = 0; i < n; ++i) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, edge));
    const Coord y = static_cast<Coord>(rng.Uniform(0, edge));
    boxes.push_back(Box(x, y, x + 1, y + 1));
  }
  return Dataset("tile", std::move(boxes));
}

std::vector<ObjectId> AllIds(const Dataset& d) {
  std::vector<ObjectId> ids(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) ids[i] = static_cast<ObjectId>(i);
  return ids;
}

void BM_MbrIntersects(benchmark::State& state) {
  Rng rng(1);
  std::vector<Box> boxes;
  for (int i = 0; i < 1024; ++i) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, 100));
    const Coord y = static_cast<Coord>(rng.Uniform(0, 100));
    boxes.push_back(Box(x, y, x + 5, y + 5));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Intersects(boxes[i & 1023], boxes[(i * 7 + 13) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_MbrIntersects);

void BM_NestedLoopTile(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Dataset r = MakeTile(n, std::sqrt(n / 0.5), 2);
  const Dataset s = MakeTile(n, std::sqrt(n / 0.5), 3);
  const auto r_ids = AllIds(r), s_ids = AllIds(s);
  for (auto _ : state) {
    JoinResult out;
    NestedLoopTileJoin(r, s, r_ids, s_ids, nullptr, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_NestedLoopTile)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_PlaneSweepTile(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Dataset r = MakeTile(n, std::sqrt(n / 0.5), 2);
  const Dataset s = MakeTile(n, std::sqrt(n / 0.5), 3);
  const auto r_ids = AllIds(r), s_ids = AllIds(s);
  for (auto _ : state) {
    JoinResult out;
    PlaneSweepTileJoin(r, s, r_ids, s_ids, nullptr, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_PlaneSweepTile)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_RTreeWindowQuery(benchmark::State& state) {
  UniformConfig cfg;
  cfg.count = 100000;
  cfg.seed = 4;
  const Dataset d = GenerateUniform(cfg);
  BulkLoadOptions bl;
  bl.max_entries = static_cast<int>(state.range(0));
  const PackedRTree t = StrBulkLoad(d, bl);
  Rng rng(5);
  for (auto _ : state) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, 9900));
    const Coord y = static_cast<Coord>(rng.Uniform(0, 9900));
    benchmark::DoNotOptimize(t.WindowQuery(Box(x, y, x + 100, y + 100)));
  }
}
BENCHMARK(BM_RTreeWindowQuery)->Arg(8)->Arg(16)->Arg(64);

void BM_HilbertEncode(benchmark::State& state) {
  uint32_t x = 12345, y = 54321;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HilbertD2XYInverse(16, x & 0xffff, y & 0xffff));
    x = x * 1664525 + 1013904223;
    y = y * 22695477 + 1;
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_StrBulkLoad(benchmark::State& state) {
  UniformConfig cfg;
  cfg.count = static_cast<uint64_t>(state.range(0));
  cfg.seed = 6;
  const Dataset d = GenerateUniform(cfg);
  BulkLoadOptions bl;
  bl.max_entries = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(StrBulkLoad(d, bl).num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * cfg.count);
}
BENCHMARK(BM_StrBulkLoad)->Arg(10000)->Arg(100000);

void BM_SyncTraversalDfs(benchmark::State& state) {
  UniformConfig cfg;
  cfg.count = 50000;
  cfg.seed = 7;
  const Dataset r = GenerateUniform(cfg);
  cfg.seed = 8;
  const Dataset s = GenerateUniform(cfg);
  BulkLoadOptions bl;
  bl.max_entries = static_cast<int>(state.range(0));
  const PackedRTree rt = StrBulkLoad(r, bl);
  const PackedRTree st = StrBulkLoad(s, bl);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SyncTraversalDfs(rt, st).size());
  }
}
BENCHMARK(BM_SyncTraversalDfs)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace swiftspatial

BENCHMARK_MAIN();
