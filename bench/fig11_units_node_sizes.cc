// Figure 11: interaction between the number of instantiated join units and
// the R-tree node size (sync traversal) or PBSM tile size, on Uniform and
// OSM-like data. The paper's finding: few units favour small nodes
// (compute-bound, pruning matters); many units favour node size 16+
// (memory-bound, random reads throttle small nodes).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "grid/hierarchical_partition.h"
#include "hw/accelerator.h"
#include "rtree/bulk_load.h"

namespace swiftspatial::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  std::printf("Figure 11 reproduction: units x node/tile size\n");
  TablePrinter table(
      "Fig. 11 -- node/tile size vs #join units (kernel latency)",
      {"workload", "dataset", "units", "size", "fpga_ms", "dram_util"});
  JsonReporter json("fig11_units_node_sizes", env);

  const uint64_t scale = env.scales.front();
  for (const WorkloadShape shape :
       {WorkloadShape::kUniform, WorkloadShape::kOsm}) {
    const JoinInputs in = MakeInputs(shape, JoinKind::kPolygonPolygon, scale);

    // --- Synchronous traversal sweep. ---
    for (const int node_size : {8, 16, 32, 64}) {
      BulkLoadOptions bl;
      bl.max_entries = node_size;
      bl.num_threads = env.cpu_threads;
      const PackedRTree rt = StrBulkLoad(in.r, bl);
      const PackedRTree st = StrBulkLoad(in.s, bl);
      for (const int units : {1, 8, 16}) {
        hw::AcceleratorConfig cfg;
        cfg.num_join_units = units;
        const auto report = hw::Accelerator(cfg).RunSyncTraversal(rt, st);
        table.AddRow({"SyncTraversal", ShapeName(shape),
                      std::to_string(units), std::to_string(node_size),
                      Ms(report.kernel_seconds),
                      TablePrinter::Fmt(report.dram_utilization, 3)});
        json.AddRow("SyncTraversal/" + std::string(ShapeName(shape)) +
                        "/units" + std::to_string(units) + "/size" +
                        std::to_string(node_size),
                    {{"kernel_seconds", report.kernel_seconds},
                     {"dram_utilization", report.dram_utilization}});
      }
    }

    // --- PBSM sweep. ---
    for (const int tile_cap : {8, 16, 32, 64}) {
      HierarchicalPartitionOptions hp;
      hp.tile_cap = tile_cap;
      hp.initial_grid = 64;
      const auto partition = PartitionHierarchical(in.r, in.s, hp);
      for (const int units : {1, 8, 16}) {
        hw::AcceleratorConfig cfg;
        cfg.num_join_units = units;
        const auto report = hw::Accelerator(cfg).RunPbsm(in.r, in.s, partition);
        table.AddRow({"PBSM", ShapeName(shape), std::to_string(units),
                      std::to_string(tile_cap), Ms(report.kernel_seconds),
                      TablePrinter::Fmt(report.dram_utilization, 3)});
        json.AddRow("PBSM/" + std::string(ShapeName(shape)) + "/units" +
                        std::to_string(units) + "/size" +
                        std::to_string(tile_cap),
                    {{"kernel_seconds", report.kernel_seconds},
                     {"dram_utilization", report.dram_utilization}});
      }
    }
  }
  table.Print();
  std::printf(
      "Expected shape: with 1 unit the smallest node/tile size wins; with "
      "8-16 units the optimum moves to 16 as small nodes become "
      "memory-bound (paper Fig. 11).\n");
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
