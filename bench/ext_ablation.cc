// Ablation study of the design choices DESIGN.md calls out:
//   1. burst buffers (§3.5): coalesced result/task writes vs per-pair writes
//   2. burst loading (§3.4.1): scheduler task-cache fills vs one-at-a-time
//   3. PBSM dispatch policy (§3.4.2): static vs dynamic, uniform vs skewed
//   4. per-unit queue depth: double buffering vs none
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "grid/hierarchical_partition.h"
#include "hw/accelerator.h"
#include "rtree/bulk_load.h"

namespace swiftspatial::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  const uint64_t scale = env.scales.front();
  std::printf("Ablation studies (scale=%lu, units=%d)\n",
              static_cast<unsigned long>(scale), env.units);

  // --- Sync traversal ablations on uniform data. ---
  const JoinInputs in =
      MakeInputs(WorkloadShape::kUniform, JoinKind::kPolygonPolygon, scale);
  BulkLoadOptions bl;
  bl.max_entries = 16;
  bl.num_threads = env.cpu_threads;
  const PackedRTree rt = StrBulkLoad(in.r, bl);
  const PackedRTree st = StrBulkLoad(in.s, bl);

  TablePrinter sync_table(
      "Ablation -- memory-path features (sync traversal kernel cycles)",
      {"configuration", "kernel_cycles", "dram_requests", "slowdown"});
  struct Variant {
    const char* name;
    bool burst_buffer;
    bool burst_loading;
    std::size_t queue_depth;
  };
  const Variant variants[] = {
      {"full design", true, true, 2},
      {"no burst buffer", false, true, 2},
      {"no burst loading", true, false, 2},
      {"no double buffering", true, true, 1},
      {"all disabled", false, false, 1},
  };
  uint64_t base_cycles = 0;
  JsonReporter json("ext_ablation", env);
  for (const Variant& v : variants) {
    hw::AcceleratorConfig cfg;
    cfg.num_join_units = env.units;
    cfg.burst_buffer_enabled = v.burst_buffer;
    cfg.burst_loading_enabled = v.burst_loading;
    cfg.unit_queue_depth = v.queue_depth;
    const auto report = hw::Accelerator(cfg).RunSyncTraversal(rt, st);
    if (base_cycles == 0) base_cycles = report.kernel_cycles;
    sync_table.AddRow(
        {v.name, std::to_string(report.kernel_cycles),
         std::to_string(report.dram.num_reads + report.dram.num_writes),
         TablePrinter::Fmt(
             static_cast<double>(report.kernel_cycles) / base_cycles, 2) +
             "x"});
    json.AddRow(v.name,
                {{"kernel_cycles", static_cast<double>(report.kernel_cycles)},
                 {"dram_requests",
                  static_cast<double>(report.dram.num_reads +
                                      report.dram.num_writes)}});
  }
  sync_table.Print();

  // --- PBSM dispatch policy under skew. ---
  TablePrinter pbsm_table(
      "Ablation -- PBSM dispatch policy (kernel cycles)",
      {"dataset", "policy", "kernel_cycles", "unit_utilization"});
  for (const WorkloadShape shape :
       {WorkloadShape::kUniform, WorkloadShape::kOsm}) {
    const JoinInputs pin =
        MakeInputs(shape, JoinKind::kPolygonPolygon, scale);
    HierarchicalPartitionOptions hp;
    hp.tile_cap = 16;
    hp.initial_grid = 64;
    const auto partition = PartitionHierarchical(pin.r, pin.s, hp);
    for (const hw::DispatchPolicy policy :
         {hw::DispatchPolicy::kStatic, hw::DispatchPolicy::kDynamic}) {
      hw::AcceleratorConfig cfg;
      cfg.num_join_units = env.units;
      cfg.pbsm_policy = policy;
      const auto report = hw::Accelerator(cfg).RunPbsm(pin.r, pin.s, partition);
      pbsm_table.AddRow({ShapeName(shape), DispatchPolicyToString(policy),
                         std::to_string(report.kernel_cycles),
                         TablePrinter::Fmt(report.AvgUnitUtilization(), 3)});
      json.AddRow(std::string("pbsm/") + ShapeName(shape) + "/" +
                      DispatchPolicyToString(policy),
                  {{"kernel_cycles",
                    static_cast<double>(report.kernel_cycles)},
                   {"unit_utilization", report.AvgUnitUtilization()}});
    }
  }
  pbsm_table.Print();
  std::printf(
      "Expected: each memory-path feature removed costs cycles (burst "
      "buffering the most); static vs dynamic PBSM dispatch is close on "
      "many-tile workloads, as §3.4.2 observes.\n");
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
