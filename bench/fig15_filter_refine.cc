// Figure 15: share of end-to-end CPU join time spent in the refinement
// phase, on OSM-like data. The paper's finding: filtering usually
// dominates, but the split tracks output cardinality -- polygon-polygon
// joins (many candidates) refine ~23% of the time, point-in-polygon joins
// (few candidates) only ~1.4%.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "join/engine.h"
#include "refine/refinement.h"
#include "rtree/bulk_load.h"

namespace swiftspatial::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  std::printf("Figure 15 reproduction: filtering vs refinement on the CPU\n");
  TablePrinter table(
      "Fig. 15 -- CPU time split between filtering and refinement",
      {"join", "scale", "candidates", "verified", "filter_ms", "refine_ms",
       "refine_share"});
  JsonReporter json("fig15_filter_refine", env);

  for (const uint64_t scale : env.scales) {
    for (const JoinKind kind :
         {JoinKind::kPointPolygon, JoinKind::kPolygonPolygon}) {
      const JoinInputs in = MakeInputs(WorkloadShape::kOsm, kind, scale);
      BulkLoadOptions bl;
      bl.max_entries = 16;
      bl.num_threads = env.cpu_threads;
      const PackedRTree rt = StrBulkLoad(in.r, bl);
      const PackedRTree st = StrBulkLoad(in.s, bl);

      EngineConfig ecfg;
      ecfg.num_threads = env.cpu_threads;
      JoinResult candidates;
      const EngineTiming filter =
          OrDie(TimeEngine(kParallelSyncTraversalEngine, ecfg, in.r, in.s,
                           env.reps, &candidates),
                "CPU filter stage");
      const double filter_sec = filter.median_execute_seconds;

      RefinementOptions ropt;
      ropt.num_threads = env.cpu_threads;
      const GeometryKind r_kind = kind == JoinKind::kPointPolygon
                                      ? GeometryKind::kPoint
                                      : GeometryKind::kPolygon;
      RefinementStats rstats;
      const double refine_sec = MedianSeconds(
          [&] {
            Refine(in.r, r_kind, in.s, GeometryKind::kPolygon,
                   candidates.pairs(), ropt, &rstats);
          },
          env.reps);

      const double share = refine_sec / (filter_sec + refine_sec) * 100.0;
      table.AddRow({JoinName(kind), std::to_string(scale),
                    std::to_string(candidates.size()),
                    std::to_string(rstats.verified), Ms(filter_sec),
                    Ms(refine_sec), TablePrinter::Fmt(share, 1) + "%"});
      json.AddRow(std::string(JoinName(kind)) + "/" + std::to_string(scale),
                  {{"filter_seconds", filter_sec},
                   {"refine_seconds", refine_sec},
                   {"candidates", static_cast<double>(candidates.size())},
                   {"verified", static_cast<double>(rstats.verified)}});
    }
  }
  table.Print();
  std::printf(
      "Expected shape: refinement share tracks candidate cardinality -- "
      "high for polygon-polygon, low for point-in-polygon (paper: ~23%% vs "
      "~1.4%% at 10M).\n");
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
