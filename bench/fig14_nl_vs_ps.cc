// Figure 14: tile-level join latency of software nested loop (NL) and plane
// sweep (PS) versus the hardware join unit, across tile sizes and result
// cardinalities. Cardinality is modulated exactly as in the paper: tiles
// are populated with unit-length rectangles and the tile edge length is
// adjusted (dense tiles -> high cardinality).
//
// Findings to reproduce: software NL beats PS up to moderate tile sizes;
// PS degrades with cardinality (active sets grow); the HW unit is flat
// across cardinalities and fastest until ~128-object tiles.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "hw/config.h"
#include "join/nested_loop.h"
#include "join/plane_sweep.h"

namespace swiftspatial::bench {
namespace {

// Tile of `n` unit squares in an `edge` x `edge` area.
Dataset MakeTile(int n, double edge, uint64_t seed) {
  Rng rng(seed);
  std::vector<Box> boxes;
  boxes.reserve(n);
  for (int i = 0; i < n; ++i) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, edge));
    const Coord y = static_cast<Coord>(rng.Uniform(0, edge));
    boxes.push_back(Box(x, y, x + 1, y + 1));
  }
  return Dataset("tile", std::move(boxes));
}

std::vector<ObjectId> AllIds(const Dataset& d) {
  std::vector<ObjectId> ids(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) ids[i] = static_cast<ObjectId>(i);
  return ids;
}

// HW join unit latency model for one tile pair (§3.3): SRAM fill + one
// predicate per cycle + pipeline fill, at the configured clock. DRAM fetch
// is excluded here to isolate the join itself, mirroring the figure.
double HwSeconds(int tile_size, const hw::AcceleratorConfig& cfg) {
  const uint64_t cycles = static_cast<uint64_t>(tile_size) +
                          static_cast<uint64_t>(tile_size) * tile_size +
                          cfg.pipeline_depth;
  return cfg.SecondsFor(cycles);
}

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  hw::AcceleratorConfig cfg;
  std::printf(
      "Figure 14 reproduction: nested loop vs plane sweep vs HW join unit\n");
  // Clock-normalised columns: wall time divided by the respective clock
  // period. Our host runs ~19x the device clock and auto-vectorizes the
  // predicate loop, so absolute microseconds favour it in a way the paper's
  // measured 3 GHz baseline did not; cycles-per-join isolates the
  // architectural efficiency (the HW unit is exactly 1 predicate/cycle).
  const double cpu_hz = env.flags.GetDouble("cpu_ghz", 3.0) * 1e9;
  TablePrinter table(
      "Fig. 14 -- tile-level join latency per tile pair",
      {"cardinality", "tile_size", "results", "sw_nl_us", "sw_ps_us",
       "hw_unit_us", "nl_cpu_cycles", "ps_cpu_cycles", "hw_cycles"});
  JsonReporter json("fig14_nl_vs_ps", env);

  struct Config {
    const char* name;
    // Tile edge per object count, tuned so "low" yields ~no results at
    // small sizes and "high" yields thousands at 128 (paper: 2170).
    double density;  // objects per unit area
  };
  const Config configs[] = {{"low", 0.02}, {"high", 2.0}};

  for (const Config& c : configs) {
    for (const int tile_size : {8, 16, 32, 64, 128, 256, 512}) {
      const double edge = std::sqrt(tile_size / c.density);
      const Dataset r = MakeTile(tile_size, edge, 900 + tile_size);
      const Dataset s = MakeTile(tile_size, edge, 1900 + tile_size);
      const auto r_ids = AllIds(r), s_ids = AllIds(s);

      uint64_t results = 0;
      // Many repetitions: single tile joins are sub-microsecond.
      const int inner = 2000;
      const double nl_sec = MedianSeconds(
          [&] {
            for (int i = 0; i < inner; ++i) {
              JoinResult out;
              NestedLoopTileJoin(r, s, r_ids, s_ids, nullptr, &out);
              results = out.size();
            }
          },
          env.reps) / inner;
      const double ps_sec = MedianSeconds(
          [&] {
            for (int i = 0; i < inner; ++i) {
              JoinResult out;
              PlaneSweepTileJoin(r, s, r_ids, s_ids, nullptr, &out);
              results = out.size();
            }
          },
          env.reps) / inner;
      const double hw_sec = HwSeconds(tile_size, cfg);
      const uint64_t hw_cycles = static_cast<uint64_t>(tile_size) +
                                 static_cast<uint64_t>(tile_size) * tile_size +
                                 cfg.pipeline_depth;

      table.AddRow({c.name, std::to_string(tile_size),
                    std::to_string(results),
                    TablePrinter::Fmt(nl_sec * 1e6, 3),
                    TablePrinter::Fmt(ps_sec * 1e6, 3),
                    TablePrinter::Fmt(hw_sec * 1e6, 3),
                    TablePrinter::Fmt(nl_sec * cpu_hz, 0),
                    TablePrinter::Fmt(ps_sec * cpu_hz, 0),
                    std::to_string(hw_cycles)});
      json.AddRow(std::string(c.name) + "/tile" + std::to_string(tile_size),
                  {{"nl_seconds", nl_sec},
                   {"ps_seconds", ps_sec},
                   {"hw_seconds", hw_sec},
                   {"results", static_cast<double>(results)}});
    }
  }
  table.Print();
  std::printf(
      "Expected shapes (paper Fig. 14): software NL beats PS up to moderate "
      "tile sizes; PS degrades with result cardinality; the HW unit is flat "
      "across cardinalities. Note on absolutes: this host core runs ~%.0fx "
      "the 200 MHz device clock and vectorizes the predicate loop, so the "
      "wall-clock gap the paper measured against its software baseline does "
      "not reproduce here; clock-for-clock (cycles columns) the unit "
      "sustains 1 predicate/cycle and needs ~2-4x fewer cycles per tile "
      "join than software NL.\n",
      cpu_hz / cfg.clock_hz);
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
