// Scalar-vs-SIMD MBR filter sweep: the microbenchmark behind the BoxBlock /
// simd_filter subsystem. A block of candidate MBRs is filtered by a batch of
// probe boxes three ways --
//   aos_scalar  : per-pair geometry::Intersects over the array-of-structs
//                 Box layout (the pre-SIMD tile-join inner loop),
//   soa_scalar  : the same comparisons over BoxBlock's SoA arrays
//                 (NestedLoopTileJoin's rewired inner loop),
//   simd_kernel : the batched bitmask kernel (FilterBoxBlock; AVX2 when the
//                 binary is compiled with -mavx2/-march=native, otherwise
//                 the auto-vectorized scalar fallback),
//   probe_blocked : the probe-blocked kernel (FilterSoAProbeBlock): both
//                 sides batched, candidate loads amortised across a probe
//                 quad -- the before/after of batching probes as well as
//                 candidates
// -- and predicate throughput (million MBR pairs per second) is reported.
// All four paths must agree on the match count; the sweep aborts if not.
//
// Default: 64 probes x 100k candidates = 6.4M pairs per pass. --scale=N
// changes the candidate count (--scale=1000000 for a 64M-pair sweep);
// --reps=N the timed repetitions.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "geometry/box_block.h"
#include "join/simd_filter.h"

namespace swiftspatial::bench {
namespace {

constexpr int kProbes = 64;

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv, /*default_scale=*/100000);

  std::printf("SIMD filter kernel sweep (backend: %s)\n", SimdFilterBackend());
  TablePrinter table(
      "Batched MBR filter: predicate throughput, one probe vs N candidates",
      {"candidates", "pairs", "matches", "aos_scalar_Mp/s", "soa_scalar_Mp/s",
       "simd_kernel_Mp/s", "probe_blocked_Mp/s", "kernel_vs_aos",
       "blocked_vs_kernel"});

  bool throughput_ok = true;
  JsonReporter json("fig_simd_filter", env);
  double worst_ratio = 1e9;
  double worst_blocked_ratio = 1e9;
  for (const uint64_t scale : env.scales) {
    // Uniform rectangles at a density giving a few matches per probe, so the
    // match-recording branch is exercised but does not dominate.
    UniformConfig cfg;
    cfg.count = scale;
    cfg.map.map_size = 1000.0;
    cfg.min_edge = 0.5;
    cfg.max_edge = 4.0;
    cfg.seed = 7001;
    const Dataset candidates = GenerateUniform(cfg);
    const BoxBlock block = BoxBlock::FromBoxes(candidates.boxes());

    Rng rng(7002);
    std::vector<Box> probes;
    probes.reserve(kProbes);
    for (int p = 0; p < kProbes; ++p) {
      const Coord x = static_cast<Coord>(rng.Uniform(0, 990));
      const Coord y = static_cast<Coord>(rng.Uniform(0, 990));
      probes.push_back(Box(x, y, x + 10, y + 10));
    }

    const uint64_t pairs = static_cast<uint64_t>(kProbes) * scale;
    uint64_t aos_matches = 0, soa_matches = 0, simd_matches = 0;

    const double aos_sec = MedianSeconds(
        [&] {
          uint64_t m = 0;
          for (const Box& probe : probes) {
            for (const Box& c : candidates.boxes()) {
              m += Intersects(probe, c);
            }
          }
          aos_matches = m;
        },
        env.reps);

    const double soa_sec = MedianSeconds(
        [&] {
          uint64_t m = 0;
          const std::size_t n = block.size();
          const Coord* min_x = block.min_x();
          const Coord* min_y = block.min_y();
          const Coord* max_x = block.max_x();
          const Coord* max_y = block.max_y();
          for (const Box& probe : probes) {
            for (std::size_t i = 0; i < n; ++i) {
              m += probe.max_x >= min_x[i] && max_x[i] >= probe.min_x &&
                   probe.max_y >= min_y[i] && max_y[i] >= probe.min_y;
            }
          }
          soa_matches = m;
        },
        env.reps);

    std::vector<uint64_t> mask(FilterMaskWords(block.size()));
    const double simd_sec = MedianSeconds(
        [&] {
          uint64_t m = 0;
          for (const Box& probe : probes) {
            FilterBoxBlock(probe, block, mask.data());
            for (const uint64_t word : mask) {
              m += static_cast<uint64_t>(__builtin_popcountll(word));
            }
          }
          simd_matches = m;
        },
        env.reps);

    // The probe-blocked kernel (both sides batched): probes processed in
    // the same 16-probe tiles SimdTileJoin uses, candidate arrays streamed
    // once per probe quad instead of once per probe.
    uint64_t blocked_matches = 0;
    const BoxBlock probe_block = BoxBlock::FromBoxes(probes);
    constexpr std::size_t kProbeTile = 16;
    const std::size_t words = FilterMaskWords(block.size());
    std::vector<uint64_t> masks(kProbeTile * words);
    const double blocked_sec = MedianSeconds(
        [&] {
          uint64_t m = 0;
          for (std::size_t p0 = 0; p0 < probe_block.size();
               p0 += kProbeTile) {
            const std::size_t np =
                std::min(kProbeTile, probe_block.size() - p0);
            FilterSoAProbeBlock(
                probe_block.min_x() + p0, probe_block.min_y() + p0,
                probe_block.max_x() + p0, probe_block.max_y() + p0, np,
                block.min_x(), block.min_y(), block.max_x(), block.max_y(),
                block.size(), masks.data());
            for (std::size_t w = 0; w < np * words; ++w) {
              m += static_cast<uint64_t>(__builtin_popcountll(masks[w]));
            }
          }
          blocked_matches = m;
        },
        env.reps);

    if (aos_matches != soa_matches || aos_matches != simd_matches ||
        aos_matches != blocked_matches) {
      std::fprintf(stderr,
                   "FATAL: paths disagree (aos=%llu soa=%llu simd=%llu "
                   "probe_blocked=%llu)\n",
                   static_cast<unsigned long long>(aos_matches),
                   static_cast<unsigned long long>(soa_matches),
                   static_cast<unsigned long long>(simd_matches),
                   static_cast<unsigned long long>(blocked_matches));
      return 1;
    }

    const auto mpps = [&](double sec) {
      return static_cast<double>(pairs) / sec / 1e6;
    };
    table.AddRow({std::to_string(scale), std::to_string(pairs),
                  std::to_string(aos_matches),
                  TablePrinter::Fmt(mpps(aos_sec), 0),
                  TablePrinter::Fmt(mpps(soa_sec), 0),
                  TablePrinter::Fmt(mpps(simd_sec), 0),
                  TablePrinter::Fmt(mpps(blocked_sec), 0),
                  Speedup(aos_sec, simd_sec),
                  Speedup(simd_sec, blocked_sec)});
    json.AddRow(std::to_string(scale),
                {{"aos_scalar_seconds", aos_sec},
                 {"soa_scalar_seconds", soa_sec},
                 {"simd_kernel_seconds", simd_sec},
                 {"probe_blocked_seconds", blocked_sec},
                 {"matches", static_cast<double>(aos_matches)}});
    // Throughput pin for the bitmask *pack* path. A scalar-backend
    // regression to a per-bit pack loop (which defeats auto-vectorization
    // of the compare loop) drags kernel throughput down to ~1.0x the
    // strided per-pair AoS baseline; the healthy block-pack kernel
    // measures ~5x (scalar) to ~12x (AVX2). The 1.2x threshold sits above
    // the regression signature with plenty of headroom below the healthy
    // range, so shared-runner timing noise can't flip it.
    worst_ratio = std::min(worst_ratio, aos_sec / simd_sec);
    throughput_ok = throughput_ok && aos_sec / simd_sec >= 1.2;
    // The probe-blocked kernel amortises candidate loads across a probe
    // quad held in registers: ~2x the per-probe kernel on the avx2 backend
    // (load-port bound), parity on the scalar fallback (compute bound --
    // the auto-vectorized compare+pack dominates either way). Guard only
    // against blocking making things *worse*; the generous 0.7x floor sits
    // below both backends' steady state but above a genuinely broken
    // blocking scheme.
    worst_blocked_ratio = std::min(worst_blocked_ratio,
                                   simd_sec / blocked_sec);
    throughput_ok = throughput_ok && simd_sec / blocked_sec >= 0.7;
  }
  table.Print();
  std::printf(
      "Expected shape: the SoA layout alone beats the strided AoS loop, the "
      "batched kernel widens the gap further, and probe-blocking roughly "
      "doubles the avx2 kernel again (scalar backend: parity -- the win is "
      "register-level load amortisation, which auto-vectorized scalar code "
      "cannot express).\n");
  std::printf(
      "throughput assertions (kernel >= 1.2x aos_scalar, worst %.2fx; "
      "probe_blocked >= 0.7x kernel, worst %.2fx): %s\n",
      worst_ratio, worst_blocked_ratio, throughput_ok ? "PASS" : "FAIL");
  if (!json.WriteIfRequested()) return 1;
  return throughput_ok ? 0 : 1;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
