// Figure 16: end-to-end spatial join (filtering + refinement) with and
// without SwiftSpatial. With the accelerator, filtering runs on the
// simulated device and the filtered candidates are refined on the CPU; the
// baseline runs both phases on the CPU. The paper reports 1.4-18.3x
// end-to-end speedups depending on the filtering share.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "hw/accelerator.h"
#include "join/engine.h"
#include "refine/refinement.h"
#include "rtree/bulk_load.h"

namespace swiftspatial::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  std::printf(
      "Figure 16 reproduction: end-to-end pipeline with/without "
      "SwiftSpatial\n");
  TablePrinter table(
      "Fig. 16 -- filtering + refinement latency",
      {"dataset", "join", "scale", "cpu_total_ms", "swift_total_ms",
       "speedup", "final_results"});
  JsonReporter json("fig16_end_to_end_refine", env);

  for (const uint64_t scale : env.scales) {
    for (const WorkloadShape shape :
         {WorkloadShape::kUniform, WorkloadShape::kOsm}) {
      for (const JoinKind kind :
           {JoinKind::kPointPolygon, JoinKind::kPolygonPolygon}) {
        const JoinInputs in = MakeInputs(shape, kind, scale);
        BulkLoadOptions bl;
        bl.max_entries = 16;
        bl.num_threads = env.cpu_threads;
        const PackedRTree rt = StrBulkLoad(in.r, bl);
        const PackedRTree st = StrBulkLoad(in.s, bl);
        const GeometryKind r_kind = kind == JoinKind::kPointPolygon
                                        ? GeometryKind::kPoint
                                        : GeometryKind::kPolygon;
        RefinementOptions ropt;
        ropt.num_threads = env.cpu_threads;

        // --- CPU-only pipeline. ---
        EngineConfig ecfg;
        ecfg.num_threads = env.cpu_threads;
        JoinResult cpu_candidates;
        const EngineTiming cpu =
            OrDie(TimeEngine(kParallelSyncTraversalEngine, ecfg, in.r, in.s,
                             env.reps, &cpu_candidates),
                  "CPU filter stage");
        const double cpu_filter = cpu.median_execute_seconds;
        std::size_t final_results = 0;
        const double cpu_refine = MedianSeconds(
            [&] {
              final_results = Refine(in.r, r_kind, in.s,
                                     GeometryKind::kPolygon,
                                     cpu_candidates.pairs(), ropt)
                                  .size();
            },
            env.reps);

        // --- SwiftSpatial pipeline: simulated filter + CPU refinement. ---
        hw::AcceleratorConfig cfg;
        cfg.num_join_units = env.units;
        JoinResult device_candidates;
        const auto report =
            hw::Accelerator(cfg).RunSyncTraversal(rt, st, &device_candidates);
        const double swift_refine = MedianSeconds(
            [&] {
              Refine(in.r, r_kind, in.s, GeometryKind::kPolygon,
                     device_candidates.pairs(), ropt);
            },
            env.reps);

        const double cpu_total = cpu_filter + cpu_refine;
        const double swift_total = report.total_seconds + swift_refine;
        table.AddRow({ShapeName(shape), JoinName(kind), std::to_string(scale),
                      Ms(cpu_total), Ms(swift_total),
                      Speedup(cpu_total, swift_total),
                      std::to_string(final_results)});
        json.AddRow(std::string(ShapeName(shape)) + "/" + JoinName(kind) +
                        "/" + std::to_string(scale),
                    {{"cpu_total_seconds", cpu_total},
                     {"swift_total_seconds", swift_total},
                     {"final_results", static_cast<double>(final_results)}});
      }
    }
  }
  table.Print();
  std::printf(
      "Expected shape: speedup bounded by the refinement share (Amdahl); "
      "large where filtering dominates, modest where refinement does "
      "(paper: 1.4-18.3x).\n");
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
