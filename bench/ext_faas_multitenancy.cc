// Extension study (§4.2): FPGA-as-a-Service multi-tenancy. One FPGA's 16
// join units are instantiated as one large kernel or several smaller ones;
// a mixed request stream (one heavy analytical join + many interactive
// ones) is served FCFS. Quantifies the fairness-vs-throughput trade-off
// the section describes qualitatively.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "faas/service.h"

namespace swiftspatial::bench {
namespace {

using faas::FaasConfig;
using faas::JoinRequest;
using faas::SpatialJoinService;

std::vector<JoinRequest> MakeMixedStream(int interactive, uint64_t seed) {
  Rng rng(seed);
  std::vector<JoinRequest> reqs;
  // One heavy join: ~10^9 unit-cycles (a 10M-scale join), arriving first.
  JoinRequest heavy;
  heavy.arrival_seconds = 0.0;
  heavy.parallel_unit_cycles = 1000000000ULL;
  heavy.serial_cycles = 2000000;
  reqs.push_back(heavy);
  // Interactive joins: 1-5M unit-cycles, Poisson-ish arrivals over 100 ms.
  for (int i = 0; i < interactive; ++i) {
    JoinRequest r;
    r.arrival_seconds = rng.Uniform(0.0, 0.1);
    r.parallel_unit_cycles = 1000000 + rng.NextBelow(4000000);
    r.serial_cycles = 100000;
    reqs.push_back(r);
  }
  return reqs;
}

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  const int interactive =
      static_cast<int>(env.flags.GetInt("requests", 64));
  std::printf(
      "§4.2 extension: multi-tenancy -- 1 heavy + %d interactive joins on "
      "one 16-unit FPGA\n",
      interactive);

  TablePrinter table(
      "FaaS kernel partitioning trade-off",
      {"kernels", "units_each", "mean_latency_ms", "p99_latency_ms",
       "max_wait_ms", "makespan_ms"});
  const auto requests = MakeMixedStream(interactive, 777);
  JsonReporter json("ext_faas_multitenancy", env);
  for (const int kernels : {1, 2, 4, 8}) {
    FaasConfig cfg;
    cfg.total_units = 16;
    cfg.num_kernels = kernels;
    SpatialJoinService svc(cfg);
    const auto metrics = SpatialJoinService::Summarize(svc.Process(requests));
    table.AddRow({std::to_string(kernels),
                  std::to_string(svc.units_per_kernel()),
                  TablePrinter::Fmt(metrics.mean_latency_seconds * 1e3, 2),
                  TablePrinter::Fmt(metrics.p99_latency_seconds * 1e3, 2),
                  TablePrinter::Fmt(metrics.max_wait_seconds * 1e3, 2),
                  TablePrinter::Fmt(metrics.makespan_seconds * 1e3, 2)});
    json.AddRow("kernels" + std::to_string(kernels),
                {{"mean_latency_seconds", metrics.mean_latency_seconds},
                 {"p99_latency_seconds", metrics.p99_latency_seconds},
                 {"max_wait_seconds", metrics.max_wait_seconds},
                 {"makespan_seconds", metrics.makespan_seconds}});
  }
  table.Print();
  std::printf(
      "Expected shape: more kernels -> sharply lower p99/max-wait for "
      "interactive queries (fairness), at the cost of a longer makespan for "
      "the heavy query (§4.2's trade-off).\n");
  if (!json.WriteIfRequested()) return 1;
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
