// Figure 9: SwiftSpatial versus CPU/GPU spatial data processing *systems*.
// PostGIS, Apache Sedona, SpatialSpark, and cuSpatial cannot run in this
// environment; the mechanism-faithful stand-ins of join/engine_baselines.h
// and join/cuspatial_like.h take their place (see DESIGN.md's substitution
// table). cuSpatial supports only point-in-polygon joins, so -- as in the
// paper -- it appears only in that column.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "hw/accelerator.h"
#include "join/cuspatial_like.h"
#include "join/engine_baselines.h"
#include "join/sync_traversal.h"
#include "rtree/bulk_load.h"

namespace swiftspatial::bench {
namespace {

void RunCase(const BenchEnv& env, WorkloadShape shape, JoinKind kind,
             uint64_t scale, TablePrinter* table) {
  const JoinInputs in = MakeInputs(shape, kind, scale);
  BulkLoadOptions bl;
  bl.max_entries = 16;
  bl.num_threads = env.cpu_threads;
  const PackedRTree rt = StrBulkLoad(in.r, bl);
  const PackedRTree st = StrBulkLoad(in.s, bl);

  struct Row {
    std::string system;
    double seconds;
    uint64_t results;
  };
  std::vector<Row> rows;

  {
    hw::AcceleratorConfig cfg;
    cfg.num_join_units = env.units;
    const auto report = hw::Accelerator(cfg).RunSyncTraversal(rt, st);
    rows.push_back(
        {"SwiftSpatial (sim)", report.total_seconds, report.num_results});
  }
  {
    InterpretedEngineOptions opt;
    opt.num_threads = env.cpu_threads;  // max_parallel_workers analogue
    uint64_t n = 0;
    const double sec = MedianSeconds(
        [&] { n = InterpretedEngineJoin(in.r, in.s, opt).size(); }, env.reps);
    rows.push_back({"PostGIS-like engine", sec, n});
  }
  {
    BigDataFrameworkOptions opt;
    opt.num_partitions = 4 * static_cast<int>(env.cpu_threads);
    opt.num_threads = env.cpu_threads;
    uint64_t n = 0;
    const double sec = MedianSeconds(
        [&] { n = BigDataFrameworkJoin(in.r, in.s, opt).size(); }, env.reps);
    rows.push_back({"Sedona-like framework", sec, n});
  }
  {
    BigDataFrameworkOptions opt;
    opt.num_partitions = 64;  // the paper's tuned SpatialSpark setting
    opt.num_threads = env.cpu_threads;
    uint64_t n = 0;
    const double sec = MedianSeconds(
        [&] { n = BigDataFrameworkJoin(in.r, in.s, opt).size(); }, env.reps);
    rows.push_back({"SpatialSpark-like (64 parts)", sec, n});
  }
  if (kind == JoinKind::kPointPolygon) {
    CuSpatialLikeOptions opt;
    opt.batch_size = 20000;  // the paper's max feasible GPU batch
    opt.num_threads = env.cpu_threads;
    uint64_t n = 0;
    const double sec = MedianSeconds(
        [&] { n = CuSpatialLikeJoin(in.r, in.s, opt).size(); }, env.reps);
    rows.push_back({"cuSpatial-like (CPU port)", sec, n});
  }

  const double swift = rows[0].seconds;
  for (const Row& row : rows) {
    table->AddRow({ShapeName(shape), JoinName(kind), std::to_string(scale),
                   row.system, Ms(row.seconds), Speedup(row.seconds, swift),
                   std::to_string(row.results)});
  }
}

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  std::printf(
      "Figure 9 reproduction: SwiftSpatial vs spatial data systems\n"
      "(system baselines are mechanism-faithful stand-ins; see DESIGN.md)\n");
  TablePrinter table(
      "Fig. 9 -- SwiftSpatial vs CPU- and GPU-based spatial systems",
      {"dataset", "join", "scale", "system", "latency_ms", "swift_speedup",
       "results"});
  for (const uint64_t scale : env.scales) {
    for (const WorkloadShape shape :
         {WorkloadShape::kUniform, WorkloadShape::kOsm}) {
      for (const JoinKind kind :
           {JoinKind::kPointPolygon, JoinKind::kPolygonPolygon}) {
        RunCase(env, shape, kind, scale, &table);
      }
    }
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
