// Figure 9: SwiftSpatial versus CPU/GPU spatial data processing *systems*.
// PostGIS, Apache Sedona, SpatialSpark, and cuSpatial cannot run in this
// environment; the mechanism-faithful stand-ins of join/engine_baselines.h
// and join/cuspatial_like.h take their place (see DESIGN.md's substitution
// table). cuSpatial supports only point-in-polygon joins, so -- as in the
// paper -- it appears only in that column.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "hw/accelerator.h"
#include "join/engine.h"
#include "rtree/bulk_load.h"

namespace swiftspatial::bench {
namespace {

void RunCase(const BenchEnv& env, WorkloadShape shape, JoinKind kind,
             uint64_t scale, TablePrinter* table, JsonReporter* json) {
  const JoinInputs in = MakeInputs(shape, kind, scale);
  BulkLoadOptions bl;
  bl.max_entries = 16;
  bl.num_threads = env.cpu_threads;
  const PackedRTree rt = StrBulkLoad(in.r, bl);
  const PackedRTree st = StrBulkLoad(in.s, bl);

  struct Row {
    std::string system;
    double seconds;
    uint64_t results;
  };
  std::vector<Row> rows;

  {
    hw::AcceleratorConfig cfg;
    cfg.num_join_units = env.units;
    const auto report = hw::Accelerator(cfg).RunSyncTraversal(rt, st);
    rows.push_back(
        {"SwiftSpatial (sim)", report.total_seconds, report.num_results});
  }
  // System stand-ins run through the unified engine registry; each system is
  // one (engine name, configuration) pair. cuSpatial supports only
  // point-in-polygon joins, so its engine appears only in that column (its
  // Plan rejects rectangle probes -- the row is skipped automatically).
  struct SystemCase {
    const char* label;
    const char* engine;
    int num_partitions;
  };
  const SystemCase systems[] = {
      {"PostGIS-like engine", kInterpretedEngineBaseline, 0},
      {"Sedona-like framework", kBigDataFrameworkBaseline,
       4 * static_cast<int>(env.cpu_threads)},
      {"SpatialSpark-like (64 parts)", kBigDataFrameworkBaseline,
       64},  // the paper's tuned SpatialSpark setting
      {"cuSpatial-like (CPU port)", kCuSpatialLikeEngine, 0},
  };
  for (const SystemCase& system : systems) {
    EngineConfig cfg;
    cfg.num_threads = env.cpu_threads;  // max_parallel_workers analogue
    if (system.num_partitions > 0) cfg.num_partitions = system.num_partitions;
    cfg.batch_size = 20000;  // the paper's max feasible GPU batch
    const auto timing = TimeEngine(system.engine, cfg, in.r, in.s, env.reps);
    if (!timing.ok()) {
      // cuSpatial on a rectangle probe set is a NotSupported expected skip;
      // anything else marks the run failed.
      SkipRow(system.label, timing.status());
      continue;
    }
    rows.push_back(
        {system.label, timing->median_execute_seconds, timing->results});
  }

  const double swift = rows[0].seconds;
  for (const Row& row : rows) {
    table->AddRow({ShapeName(shape), JoinName(kind), std::to_string(scale),
                   row.system, Ms(row.seconds), Speedup(row.seconds, swift),
                   std::to_string(row.results)});
    json->AddRow(std::string(ShapeName(shape)) + "/" + JoinName(kind) + "/" +
                     std::to_string(scale) + "/" + row.system,
                 {{"latency_seconds", row.seconds},
                  {"results", static_cast<double>(row.results)}});
  }
}

int Main(int argc, char** argv) {
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  std::printf(
      "Figure 9 reproduction: SwiftSpatial vs spatial data systems\n"
      "(system baselines are mechanism-faithful stand-ins; see DESIGN.md)\n");
  TablePrinter table(
      "Fig. 9 -- SwiftSpatial vs CPU- and GPU-based spatial systems",
      {"dataset", "join", "scale", "system", "latency_ms", "swift_speedup",
       "results"});
  JsonReporter json("fig09_systems", env);
  for (const uint64_t scale : env.scales) {
    for (const WorkloadShape shape :
         {WorkloadShape::kUniform, WorkloadShape::kOsm}) {
      for (const JoinKind kind :
           {JoinKind::kPointPolygon, JoinKind::kPolygonPolygon}) {
        RunCase(env, shape, kind, scale, &table, &json);
      }
    }
  }
  table.Print();
  if (!json.WriteIfRequested()) return 1;
  return ExitCode();
}

}  // namespace
}  // namespace swiftspatial::bench

int main(int argc, char** argv) { return swiftspatial::bench::Main(argc, argv); }
