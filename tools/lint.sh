#!/usr/bin/env bash
# Repo lint, run in CI (see .github/workflows/ci.yml) and locally via
#   tools/lint.sh
#
# Six checks. The first two keep the compile-time concurrency
# verification honest (src/common/sync.h); the third keeps the metric
# namespace coherent (src/obs/); the next two keep the error-path
# verification honest (src/common/status.h); the last keeps library
# diagnostics flowing through the structured logger (src/obs/log.h):
#
#  1. Raw synchronization primitives are banned outside src/common/sync.h.
#     Code that locks through std::mutex / std::lock_guard /
#     std::unique_lock / std::condition_variable is invisible to Clang
#     Thread Safety Analysis -- the annotated Mutex/MutexLock/CondVar
#     wrappers are the only sanctioned vocabulary. (std::once_flag /
#     std::call_once and std::atomic are fine: they carry no capability to
#     track.)
#
#  2. NO_THREAD_SAFETY_ANALYSIS escapes must be on the documented allowlist
#     below. Each allowlisted site must carry a justification comment; new
#     escapes require editing this file, which puts them in front of a
#     reviewer.
#
#  3. Metric names registered through MetricsRegistry::Get{Counter,Gauge,
#     Histogram} must match swiftspatial_<layer>_<name> with a known layer,
#     counters must end in _total and histograms in _seconds (README
#     "Observability" documents the convention). Registration sites keep
#     the name literal on the same line as the Get* call so this check can
#     see it.
#
#  4. Status::IgnoreError() escapes must be on the documented allowlist
#     below and carry a justification comment at the call site. Status and
#     Result<T> are [[nodiscard]] (CI builds with -Werror=unused-result);
#     IgnoreError() is the one sanctioned way to drop an error, and adding
#     a site means editing this file, which puts it in front of a reviewer.
#
#  5. `(void)`-casting a call expression is banned everywhere: it is the
#     anonymous way to defeat [[nodiscard]] on a Status/Result return and
#     is invisible to the allowlist above. `(void)name;` (silencing an
#     unused parameter/variable) stays legal, as does `(void)co_await`
#     (the hw/sim coroutine drain idiom: the discarded FIFO element is
#     data, not an error).
#
#  6. Raw stderr diagnostics (`fprintf(stderr, ...)` / `std::cerr`) are
#     banned in src/: library code reports through SWIFT_LOG (src/obs/log.h,
#     leveled, rate-controllable, trace-correlated, OBS_OFF-eraseable) or
#     returns a Status -- never by writing to the process's stderr behind
#     the embedding application's back. Allowlisted: common/logging.h's
#     CheckFailed (the SWIFT_CHECK death path fires when invariants are
#     already gone -- the logger may be the broken component) and
#     obs/log.cc itself (stderr is the logger's *default sink*, which is
#     the application-visible, SetStreamSink-overridable contract, not a
#     side channel). Tests, benches, and examples are main()-owning
#     programs: their stderr belongs to them, so the check covers src/
#     only.
set -u
cd "$(dirname "$0")/.."

fail=0

# --- Check 1: raw sync primitives confined to src/common/sync.h ------------
banned='std::mutex\b|std::recursive_mutex\b|std::timed_mutex\b|std::shared_mutex\b|std::lock_guard\b|std::unique_lock\b|std::scoped_lock\b|std::shared_lock\b|std::condition_variable\b'
raw_hits=$(grep -rnE "$banned" src tests examples bench \
  --include='*.h' --include='*.cc' --include='*.cpp' \
  | grep -v '^src/common/sync\.h:' || true)
if [ -n "$raw_hits" ]; then
  echo "FAIL: raw synchronization primitives outside src/common/sync.h."
  echo "Use swiftspatial::Mutex / MutexLock / CondVar (common/sync.h) so"
  echo "Clang Thread Safety Analysis can check the locking:"
  echo
  echo "$raw_hits"
  echo
  fail=1
fi

# --- Check 2: NO_THREAD_SAFETY_ANALYSIS allowlist --------------------------
# Allowlisted escape sites, one per line as <file>:<symbol-or-reason>.
# Keep this list at three entries or fewer; every entry must point at a
# justification comment next to the attribute. Currently empty: the whole
# tree analyzes cleanly.
allowlist='
'
escape_hits=$(grep -rn 'NO_THREAD_SAFETY_ANALYSIS' src tests examples bench \
  --include='*.h' --include='*.cc' --include='*.cpp' \
  | grep -v '^src/common/sync\.h:' || true)
if [ -n "$escape_hits" ]; then
  while IFS= read -r hit; do
    file=${hit%%:*}
    if ! printf '%s\n' "$allowlist" | grep -qF "$file"; then
      echo "FAIL: NO_THREAD_SAFETY_ANALYSIS escape not on the allowlist in"
      echo "tools/lint.sh (add it with a justification, max 3 entries):"
      echo "  $hit"
      echo
      fail=1
    fi
  done <<EOF
$escape_hits
EOF
fi

allowed_count=$(printf '%s\n' "$allowlist" | grep -c ':' || true)
if [ "$allowed_count" -gt 3 ]; then
  echo "FAIL: NO_THREAD_SAFETY_ANALYSIS allowlist has $allowed_count entries (max 3)."
  fail=1
fi

# --- Check 3: metric-name convention ---------------------------------------
# swiftspatial_<layer>_<name>, lower_snake, layer from the documented set;
# counters end _total, histograms end _seconds (latency histograms are
# always in base seconds). src/obs/ itself defines the registry and
# registers nothing, so every hit below is an instrumentation site.
metric_name_re='^swiftspatial_(service|cache|stream|join|dist|obs)_[a-z0-9_]+$'
bad_metrics=$(grep -rnoE 'Get(Counter|Gauge|Histogram)\("[^"]+"' src tests examples bench \
  --include='*.h' --include='*.cc' --include='*.cpp' \
  | while IFS= read -r hit; do
      loc=${hit%%:Get*}
      kind=$(printf '%s' "$hit" | sed -E 's/.*:Get(Counter|Gauge|Histogram)\(.*/\1/')
      name=$(printf '%s' "$hit" | sed -E 's/.*\("([^"]+)"$/\1/')
      reason=''
      if ! printf '%s' "$name" | grep -qE "$metric_name_re"; then
        reason='name must be swiftspatial_<layer>_<lower_snake> with layer in service|cache|stream|join|dist|obs'
      elif [ "$kind" = Counter ] && ! printf '%s' "$name" | grep -q '_total$'; then
        reason='counter names must end in _total'
      elif [ "$kind" = Histogram ] && ! printf '%s' "$name" | grep -q '_seconds$'; then
        reason='histogram names must end in _seconds'
      fi
      if [ -n "$reason" ]; then
        echo "  $loc: $name ($reason)"
      fi
    done)
if [ -n "$bad_metrics" ]; then
  echo "FAIL: metric names off the swiftspatial_<layer>_<name> convention"
  echo "(see the Observability section of README.md):"
  echo
  echo "$bad_metrics"
  echo
  fail=1
fi

# --- Check 4: Status::IgnoreError() allowlist ------------------------------
# Allowlisted escape sites, one per line as <file>:<symbol-or-reason>.
# Keep this list at five entries or fewer; every entry must point at a
# justification comment next to the call (same line or the two lines
# above it -- the check verifies the comment exists).
ignore_allowlist='
tests/common/status_test.cc: pins that the escape hatch compiles and is a no-op
'
ignore_hits=$(grep -rn '\.IgnoreError()' src tests examples bench \
  --include='*.h' --include='*.cc' --include='*.cpp' \
  | grep -v '^src/common/status\.h:' || true)
if [ -n "$ignore_hits" ]; then
  while IFS= read -r hit; do
    file=${hit%%:*}
    rest=${hit#*:}
    lineno=${rest%%:*}
    if ! printf '%s\n' "$ignore_allowlist" | grep -qF "$file"; then
      echo "FAIL: Status::IgnoreError() escape not on the allowlist in"
      echo "tools/lint.sh (add it with a justification, max 5 entries):"
      echo "  $hit"
      echo
      fail=1
    fi
    # Justification comment: the call line or one of the two lines above
    # it must contain a // comment.
    start=$((lineno - 2))
    [ "$start" -lt 1 ] && start=1
    if ! sed -n "${start},${lineno}p" "$file" | grep -q '//'; then
      echo "FAIL: Status::IgnoreError() call without a justification comment"
      echo "(on the call line or the two lines above it):"
      echo "  $hit"
      echo
      fail=1
    fi
  done <<EOF
$ignore_hits
EOF
fi

ignore_count=$(printf '%s\n' "$ignore_allowlist" | grep -c ':' || true)
if [ "$ignore_count" -gt 5 ]; then
  echo "FAIL: IgnoreError allowlist has $ignore_count entries (max 5)."
  fail=1
fi

# --- Check 5: no (void)-cast of call expressions ---------------------------
# `(void)SomeCall(...)` silently defeats [[nodiscard]] on Status/Result and
# bypasses the IgnoreError allowlist above, so it is banned outright for
# *any* call; `(void)name;` (unused parameter/variable) and
# `(void)co_await ...` (hw/sim FIFO drain: the discarded element is data,
# not an error) remain legal.
void_hits=$(grep -rnE '(^|[[:space:](;{])\(void\) ?[A-Za-z_:~][A-Za-z0-9_:.>-]*\(' \
  src tests examples bench \
  --include='*.h' --include='*.cc' --include='*.cpp' \
  | grep -v 'co_await' || true)
if [ -n "$void_hits" ]; then
  echo "FAIL: (void)-cast call expressions (the anonymous [[nodiscard]]"
  echo "defeat). Propagate the status, check it, or use"
  echo "Status::IgnoreError() with a justification (tools/lint.sh check 4):"
  echo
  echo "$void_hits"
  echo
  fail=1
fi

# --- Check 6: no raw stderr diagnostics in library code --------------------
# Library code logs through SWIFT_LOG or returns a Status; writing to the
# process's stderr is the application's prerogative. common/logging.h's
# CheckFailed (death path) and obs/log.cc (stderr is the logger's default,
# overridable sink) are the two sanctioned sites.
stderr_hits=$(grep -rnE 'fprintf\(stderr|std::cerr' src \
  --include='*.h' --include='*.cc' \
  | grep -v '^src/common/logging\.h:' \
  | grep -v '^src/obs/log\.cc:' || true)
if [ -n "$stderr_hits" ]; then
  echo "FAIL: raw stderr diagnostics in src/. Library code reports through"
  echo "SWIFT_LOG (src/obs/log.h) or a returned Status, not by printing to"
  echo "the embedding application's stderr:"
  echo
  echo "$stderr_hits"
  echo
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "lint OK: no raw sync primitives outside src/common/sync.h,"
  echo "no unlisted NO_THREAD_SAFETY_ANALYSIS escapes, all metric"
  echo "names follow swiftspatial_<layer>_<name>, no unlisted or"
  echo "uncommented Status::IgnoreError() escapes, no (void)-cast"
  echo "call expressions, and no raw stderr diagnostics in src/."
fi
exit "$fail"
