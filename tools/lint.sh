#!/usr/bin/env bash
# Repo lint, run in CI (see .github/workflows/ci.yml) and locally via
#   tools/lint.sh
#
# Three checks. The first two keep the compile-time concurrency
# verification honest (src/common/sync.h); the third keeps the metric
# namespace coherent (src/obs/):
#
#  1. Raw synchronization primitives are banned outside src/common/sync.h.
#     Code that locks through std::mutex / std::lock_guard /
#     std::unique_lock / std::condition_variable is invisible to Clang
#     Thread Safety Analysis -- the annotated Mutex/MutexLock/CondVar
#     wrappers are the only sanctioned vocabulary. (std::once_flag /
#     std::call_once and std::atomic are fine: they carry no capability to
#     track.)
#
#  2. NO_THREAD_SAFETY_ANALYSIS escapes must be on the documented allowlist
#     below. Each allowlisted site must carry a justification comment; new
#     escapes require editing this file, which puts them in front of a
#     reviewer.
#
#  3. Metric names registered through MetricsRegistry::Get{Counter,Gauge,
#     Histogram} must match swiftspatial_<layer>_<name> with a known layer,
#     counters must end in _total and histograms in _seconds (README
#     "Observability" documents the convention). Registration sites keep
#     the name literal on the same line as the Get* call so this check can
#     see it.
set -u
cd "$(dirname "$0")/.."

fail=0

# --- Check 1: raw sync primitives confined to src/common/sync.h ------------
banned='std::mutex\b|std::recursive_mutex\b|std::timed_mutex\b|std::shared_mutex\b|std::lock_guard\b|std::unique_lock\b|std::scoped_lock\b|std::shared_lock\b|std::condition_variable\b'
raw_hits=$(grep -rnE "$banned" src tests examples bench \
  --include='*.h' --include='*.cc' --include='*.cpp' \
  | grep -v '^src/common/sync\.h:' || true)
if [ -n "$raw_hits" ]; then
  echo "FAIL: raw synchronization primitives outside src/common/sync.h."
  echo "Use swiftspatial::Mutex / MutexLock / CondVar (common/sync.h) so"
  echo "Clang Thread Safety Analysis can check the locking:"
  echo
  echo "$raw_hits"
  echo
  fail=1
fi

# --- Check 2: NO_THREAD_SAFETY_ANALYSIS allowlist --------------------------
# Allowlisted escape sites, one per line as <file>:<symbol-or-reason>.
# Keep this list at three entries or fewer; every entry must point at a
# justification comment next to the attribute. Currently empty: the whole
# tree analyzes cleanly.
allowlist='
'
escape_hits=$(grep -rn 'NO_THREAD_SAFETY_ANALYSIS' src tests examples bench \
  --include='*.h' --include='*.cc' --include='*.cpp' \
  | grep -v '^src/common/sync\.h:' || true)
if [ -n "$escape_hits" ]; then
  while IFS= read -r hit; do
    file=${hit%%:*}
    if ! printf '%s\n' "$allowlist" | grep -qF "$file"; then
      echo "FAIL: NO_THREAD_SAFETY_ANALYSIS escape not on the allowlist in"
      echo "tools/lint.sh (add it with a justification, max 3 entries):"
      echo "  $hit"
      echo
      fail=1
    fi
  done <<EOF
$escape_hits
EOF
fi

allowed_count=$(printf '%s\n' "$allowlist" | grep -c ':' || true)
if [ "$allowed_count" -gt 3 ]; then
  echo "FAIL: NO_THREAD_SAFETY_ANALYSIS allowlist has $allowed_count entries (max 3)."
  fail=1
fi

# --- Check 3: metric-name convention ---------------------------------------
# swiftspatial_<layer>_<name>, lower_snake, layer from the documented set;
# counters end _total, histograms end _seconds (latency histograms are
# always in base seconds). src/obs/ itself defines the registry and
# registers nothing, so every hit below is an instrumentation site.
metric_name_re='^swiftspatial_(service|cache|stream|join|dist|obs)_[a-z0-9_]+$'
bad_metrics=$(grep -rnoE 'Get(Counter|Gauge|Histogram)\("[^"]+"' src tests examples bench \
  --include='*.h' --include='*.cc' --include='*.cpp' \
  | while IFS= read -r hit; do
      loc=${hit%%:Get*}
      kind=$(printf '%s' "$hit" | sed -E 's/.*:Get(Counter|Gauge|Histogram)\(.*/\1/')
      name=$(printf '%s' "$hit" | sed -E 's/.*\("([^"]+)"$/\1/')
      reason=''
      if ! printf '%s' "$name" | grep -qE "$metric_name_re"; then
        reason='name must be swiftspatial_<layer>_<lower_snake> with layer in service|cache|stream|join|dist|obs'
      elif [ "$kind" = Counter ] && ! printf '%s' "$name" | grep -q '_total$'; then
        reason='counter names must end in _total'
      elif [ "$kind" = Histogram ] && ! printf '%s' "$name" | grep -q '_seconds$'; then
        reason='histogram names must end in _seconds'
      fi
      if [ -n "$reason" ]; then
        echo "  $loc: $name ($reason)"
      fi
    done)
if [ -n "$bad_metrics" ]; then
  echo "FAIL: metric names off the swiftspatial_<layer>_<name> convention"
  echo "(see the Observability section of README.md):"
  echo
  echo "$bad_metrics"
  echo
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "lint OK: no raw sync primitives outside src/common/sync.h,"
  echo "no unlisted NO_THREAD_SAFETY_ANALYSIS escapes, and all metric"
  echo "names follow swiftspatial_<layer>_<name>."
fi
exit "$fail"
