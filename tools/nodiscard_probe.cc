// Negative-compilation probe for the [[nodiscard]] Status contract, driven
// by the try_compile pair in CMakeLists.txt ("Error-path static
// verification" in README.md):
//
//   - compiled WITHOUT defines, this file drops a returned Status on the
//     floor and must FAIL to compile under -Werror=unused-result (the flag
//     every CI build uses). If it compiles, the contract is broken --
//     someone removed [[nodiscard]] from Status or the flag from the build
//     -- and configuration aborts.
//   - compiled with -DSWIFTSPATIAL_PROBE_CONSUME, the status is consumed
//     and the file must COMPILE. This positive control proves the probe's
//     include paths and flags are sound, so the negative result above
//     means "the warning fired", not "the probe is broken".
//
// Self-contained on purpose: only the header is needed (no status.cc
// symbols are referenced), so try_compile's link step cannot fail for
// unrelated reasons.
#include "common/status.h"

namespace {

swiftspatial::Status MakeProbeError() {
  return swiftspatial::Status::Internal("nodiscard probe");
}

}  // namespace

int main() {
#ifdef SWIFTSPATIAL_PROBE_CONSUME
  const swiftspatial::Status s = MakeProbeError();
  return s.ok() ? 0 : 1;
#else
  MakeProbeError();  // dropped Status: must not compile
  return 0;
#endif
}
