#!/usr/bin/env python3
"""Compare two directories of BENCH_<name>.json telemetry (schema_version 1).

Usage:
  tools/perf_compare.py BASELINE_DIR CANDIDATE_DIR [options]

Every bench harness emits machine-readable telemetry with --json-out=DIR
(see bench/bench_util.h, JsonReporter). This script diffs a candidate run
against a committed or archived baseline and exits non-zero on regression,
so CI can gate on it. Three metric classes, gated differently:

  *_seconds       Wall/CPU timings: lower is better, noisy. A row regresses
                  only if candidate > baseline * (1 + --threshold) +
                  --abs-floor-seconds. The absolute floor keeps micro-
                  second-level jitter on tiny smoke runs from failing the
                  build; the relative threshold absorbs shared-runner noise.
                  Cross-machine comparisons (committed baseline from a
                  different host) should pass a generous --threshold: the
                  committed baseline then pins schema, coverage, and the
                  deterministic counts tightly while still catching
                  order-of-magnitude timing cliffs.

  integral counts Result/candidate/cycle/message counts: the simulators and
                  join engines are deterministic, so a metric that is
                  integral on both sides must match exactly (allow slack
                  with --count-drift). A drifted count is a correctness
                  signal, not noise.

  other floats    Ratios, utilizations, watts: reported for information,
                  never gated (cpu_utilization in particular is pure noise
                  at smoke scales).

Structural checks always gate: a baseline bench/row/metric missing from the
candidate is a telemetry regression (a harness stopped emitting data);
candidate-only benches/rows are reported but pass, so adding coverage never
requires touching the baseline first.
"""

import argparse
import glob
import json
import math
import os
import sys

SCHEMA_VERSION = 1

# Floats that look integral but are not deterministic counts.
NEVER_COUNT = {"cpu_utilization"}


def load_dir(path):
    """Return {bench_name: parsed_json} for every BENCH_*.json under path."""
    out = {}
    for file in sorted(glob.glob(os.path.join(path, "BENCH_*.json"))):
        with open(file, "r", encoding="utf-8") as f:
            doc = json.load(f)
        problems = validate(doc)
        if problems:
            raise SystemExit(
                "%s: schema violation(s):\n  %s" % (file, "\n  ".join(problems))
            )
        out[doc["name"]] = doc
    return out


def validate(doc):
    problems = []
    if doc.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            "schema_version %r != %d" % (doc.get("schema_version"), SCHEMA_VERSION)
        )
    if not isinstance(doc.get("name"), str) or not doc["name"]:
        problems.append("missing or empty name")
    if not isinstance(doc.get("context"), dict):
        problems.append("missing context object")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows must be a non-empty list")
        return problems
    seen = set()
    for i, row in enumerate(rows):
        if not isinstance(row.get("label"), str) or not row["label"]:
            problems.append("rows[%d]: missing label" % i)
            continue
        if row["label"] in seen:
            problems.append("rows[%d]: duplicate label %r" % (i, row["label"]))
        seen.add(row["label"])
        metrics = row.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            problems.append("rows[%d] (%s): empty metrics" % (i, row["label"]))
            continue
        for key, value in metrics.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(
                    "rows[%d] (%s): metric %s is not a number" % (i, row["label"], key)
                )
    return problems


def is_count(name, base, cand):
    if name in NEVER_COUNT or name.endswith("_seconds"):
        return False
    return float(base).is_integer() and float(cand).is_integer()


def compare(baselines, candidates, opts):
    failures = []
    notes = []
    timing_checked = 0
    counts_checked = 0

    for name in sorted(candidates):
        if name not in baselines:
            notes.append("%s: no baseline; skipping (new bench?)" % name)
            continue
        base_rows = {r["label"]: r["metrics"] for r in baselines[name]["rows"]}
        cand_rows = {r["label"]: r["metrics"] for r in candidates[name]["rows"]}

        for label in sorted(base_rows):
            if label not in cand_rows:
                failures.append("%s: row %r vanished from the candidate" % (name, label))
                continue
            base_m, cand_m = base_rows[label], cand_rows[label]
            for metric in sorted(base_m):
                if metric not in cand_m:
                    failures.append(
                        "%s [%s]: metric %s vanished from the candidate"
                        % (name, label, metric)
                    )
                    continue
                b, c = float(base_m[metric]), float(cand_m[metric])
                if metric.endswith("_seconds"):
                    timing_checked += 1
                    limit = b * (1.0 + opts.threshold) + opts.abs_floor_seconds
                    if c > limit:
                        failures.append(
                            "%s [%s]: %s regressed %.6gs -> %.6gs "
                            "(limit %.6gs = baseline +%d%% +%.3gs)"
                            % (
                                name,
                                label,
                                metric,
                                b,
                                c,
                                limit,
                                round(opts.threshold * 100),
                                opts.abs_floor_seconds,
                            )
                        )
                elif is_count(metric, b, c):
                    counts_checked += 1
                    drift = abs(c - b) / b if b != 0 else (0.0 if c == 0 else math.inf)
                    if drift > opts.count_drift:
                        failures.append(
                            "%s [%s]: count %s drifted %g -> %g "
                            "(deterministic metric; allowed drift %g)"
                            % (name, label, metric, b, c, opts.count_drift)
                        )
        extra_rows = sorted(set(cand_rows) - set(base_rows))
        if extra_rows:
            notes.append(
                "%s: %d candidate-only row(s), e.g. %r"
                % (name, len(extra_rows), extra_rows[0])
            )

    for name in sorted(set(baselines) - set(candidates)):
        failures.append(
            "bench %s present in the baseline but missing from the candidate" % name
        )
    return failures, notes, timing_checked, counts_checked


def main(argv):
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json telemetry directories; "
        "exit 1 on regression."
    )
    parser.add_argument("baseline_dir")
    parser.add_argument("candidate_dir")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.35,
        help="relative slowdown allowed on *_seconds metrics (default 0.35; "
        "raise it, e.g. 2.0, when baseline and candidate ran on different "
        "hosts)",
    )
    parser.add_argument(
        "--abs-floor-seconds",
        type=float,
        default=0.010,
        help="absolute jitter floor added to every timing limit (default 0.010)",
    )
    parser.add_argument(
        "--count-drift",
        type=float,
        default=0.0,
        help="relative drift allowed on deterministic integral metrics "
        "(default 0: exact match)",
    )
    opts = parser.parse_args(argv)

    for d in (opts.baseline_dir, opts.candidate_dir):
        if not os.path.isdir(d):
            raise SystemExit("not a directory: %s" % d)
    baselines = load_dir(opts.baseline_dir)
    candidates = load_dir(opts.candidate_dir)
    if not candidates:
        raise SystemExit("no BENCH_*.json files in %s" % opts.candidate_dir)
    if not baselines:
        print(
            "perf_compare: no baseline files in %s; nothing to gate (PASS)"
            % opts.baseline_dir
        )
        return 0

    failures, notes, timings, counts = compare(baselines, candidates, opts)
    for note in notes:
        print("note: %s" % note)
    if failures:
        print(
            "perf_compare: FAIL -- %d regression(s) across %d bench(es):"
            % (len(failures), len(candidates))
        )
        for failure in failures:
            print("  " + failure)
        return 1
    print(
        "perf_compare: PASS -- %d bench(es), %d timing metric(s) within "
        "+%d%%+%.3gs, %d deterministic count(s) exact"
        % (
            len(candidates),
            timings,
            round(opts.threshold * 100),
            opts.abs_floor_seconds,
            counts,
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
