#!/usr/bin/env bash
# Local static-analysis run matching the CI clang-tidy job: the repo
# .clang-tidy baseline (bugprone/concurrency/performance plus the Clang
# Static Analyzer classes -- clang-analyzer-core/cplusplus/deadcode/optin
# and the selected misc-*/cert-* checks) over every .cc under src/, against
# an exported compile_commands.json. CI scopes PR runs to changed layers;
# this script always runs the full tree, so a clean exit here means the CI
# job is green no matter what the PR touched.
#
# Usage:
#   tools/analyze.sh                # configure build-tidy/ and analyze src/
#   BUILD_DIR=build tools/analyze.sh  # reuse an existing build dir's
#                                     # compile_commands.json
#
# Requires clang-tidy (and clang for configuring the default build dir);
# exits 2 with a hint when the toolchain is missing rather than failing
# cryptically, since the sweep is also enforced in CI.
set -u
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tidy}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tools/analyze.sh: clang-tidy not found on PATH." >&2
  echo "Install clang-tidy (apt-get install clang clang-tidy) or rely on" >&2
  echo "the CI clang-tidy job, which runs this same sweep." >&2
  exit 2
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "tools/analyze.sh: no $BUILD_DIR/compile_commands.json and no" >&2
    echo "clang++ to configure one. Point BUILD_DIR at an existing build" >&2
    echo "directory (compile_commands.json is always exported) or install" >&2
    echo "clang." >&2
    exit 2
  fi
  # Library-only configure, exactly like CI: no test/bench/example deps
  # needed to analyze src/.
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
      -DSWIFTSPATIAL_BUILD_TESTS=OFF -DSWIFTSPATIAL_BUILD_BENCH=OFF \
      -DSWIFTSPATIAL_BUILD_EXAMPLES=OFF || exit 1
fi

files=$(find src -name '*.cc' | sort)
if command -v run-clang-tidy >/dev/null 2>&1; then
  # run-clang-tidy parallelizes across files and aggregates the exit code.
  run-clang-tidy -p "$BUILD_DIR" -quiet $files
else
  status=0
  for f in $files; do
    clang-tidy -p "$BUILD_DIR" --quiet "$f" || status=1
  done
  exit $status
fi
