// Resident datasets & warm serving: the steady-state request path.
//
// A serving deployment joins the same base tables over and over -- only the
// probe side or the engine config changes between requests. Re-running Plan
// (grid assignment, R-tree packing, shard placement) on every request throws
// away work the dataset's lifetime already paid for. The DatasetRegistry
// (src/exec/dataset_registry.h) makes datasets resident: register once under
// a name, submit by name, and every request after the first fetches the
// cached PreparedPlan and goes straight to execution.
//
// This example walks the full lifecycle end to end:
//   1. register "buildings" and "roads" once;
//   2. a cold request pays Plan and populates the cache;
//   3. warm requests skip Plan (plan_ms collapses, identical results);
//   4. updating a dataset bumps its version and invalidates stale plans --
//      the next request re-plans over the new data, never serves stale;
//   5. a deadline-bound request shows post-admission enforcement riding on
//      the same stream machinery.
//
//   ./build/examples/warm_serving [--scale=N] [--requests=N]
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "datagen/generator.h"
#include "exec/service.h"
#include "join/engine.h"

using namespace swiftspatial;

namespace {

Dataset Uniform(uint64_t count, uint64_t seed) {
  UniformConfig cfg;
  cfg.map.map_size = 1000.0;  // dense enough that joins visibly match
  cfg.count = count;
  cfg.seed = seed;
  cfg.max_edge = 8.0;
  return GenerateUniform(cfg);
}

// Submits one named request and reports end-to-end and plan latency.
bool ServeOnce(exec::JoinService& service, const EngineConfig& config,
               const char* label) {
  Stopwatch sw;
  auto handle = service.SubmitNamed("demo", kPartitionedEngine, "buildings",
                                    "roads", config);
  if (!handle.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 handle.status().ToString().c_str());
    return false;
  }
  exec::StreamSummary summary = handle->Collect();
  if (!summary.status.ok()) {
    std::fprintf(stderr, "stream failed: %s\n",
                 summary.status.ToString().c_str());
    return false;
  }
  std::printf("  %-22s %8zu pairs   total %6.2f ms   plan %6.3f ms\n", label,
              summary.run.result.size(), sw.ElapsedMillis(),
              summary.run.timing.plan_seconds * 1e3);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const uint64_t scale =
      static_cast<uint64_t>(flags.GetInt("scale", 20000));
  const int requests = static_cast<int>(flags.GetInt("requests", 4));

  exec::JoinServiceOptions options;
  options.worker_threads = 4;
  options.max_concurrent = 2;
  exec::JoinService service(options);

  EngineConfig config;
  config.num_threads = 4;

  // 1. Register once. The service's DatasetRegistry copies the data into a
  // resident, versioned entry; requests reference it by name from here on.
  service.RegisterDataset("buildings", Uniform(scale, 1));
  service.RegisterDataset("roads", Uniform(scale, 2));

  // 2 + 3. The first request is the cache miss that pays Plan; every
  // request after it is a hit that skips Plan entirely.
  std::printf("cold request, then %d warm requests:\n", requests);
  if (!ServeOnce(service, config, "cold (cache miss)")) return 1;
  for (int i = 0; i < requests; ++i) {
    if (!ServeOnce(service, config, "warm (cache hit)")) return 1;
  }

  // 4. Updating a dataset bumps its version and drops every cached plan
  // built over the old bytes -- warm serving never returns stale answers.
  std::printf("\nafter re-registering \"roads\" (version bump):\n");
  service.RegisterDataset("roads", Uniform(scale, 3));
  if (!ServeOnce(service, config, "cold again (invalidated)")) return 1;
  if (!ServeOnce(service, config, "warm again")) return 1;

  // 5. Deadlines are enforced after admission too: a request whose budget
  // expires while queued or mid-run is cancelled with DeadlineExceeded
  // instead of occupying a dispatcher to the end.
  exec::RequestOptions hurried;
  hurried.deadline_seconds = 1e-6;
  auto doomed = service.SubmitNamed("demo", kPartitionedEngine, "buildings",
                                    "roads", config, hurried);
  if (doomed.ok()) {
    const Status verdict = doomed->Wait();
    std::printf("\n1us deadline request finished with: %s\n",
                verdict.ToString().c_str());
  } else {
    std::printf("\n1us deadline request rejected at admission: %s\n",
                doomed.status().ToString().c_str());
  }

  const exec::JoinServiceStats stats = service.stats();
  std::printf("\nplan cache: %zu hits / %zu misses, %zu invalidated, "
              "%zu bytes resident across %zu entries\n",
              stats.plan_cache.hits, stats.plan_cache.misses,
              stats.plan_cache.invalidated, stats.plan_cache.resident_bytes,
              stats.plan_cache.entries);
  return 0;
}
