// Quickstart: the smallest end-to-end SwiftSpatial program.
//
//   1. generate two rectangle datasets,
//   2. join them on the CPU through the unified JoinEngine API,
//   3. join them again on the simulated accelerator,
//   4. verify both agree and print the performance report.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "datagen/generator.h"
#include "hw/accelerator.h"
#include "join/engine.h"
#include "rtree/bulk_load.h"

using namespace swiftspatial;

int main() {
  // 1. Two synthetic datasets: 50K unit squares each on a 10K x 10K map.
  UniformConfig config;
  config.count = 50000;
  config.seed = 1;
  const Dataset r = GenerateUniform(config);
  config.seed = 2;
  const Dataset s = GenerateUniform(config);
  std::printf("datasets: %zu x %zu rectangles\n", r.size(), s.size());

  // 2. CPU reference through the engine registry: synchronous R-tree
  //    traversal (Alg. 1-2). Plan bulk-loads the trees; Execute joins.
  //    Any name from EngineRegistry::Global().Names() works here.
  EngineConfig ecfg;
  ecfg.node_capacity = 16;  // the paper's optimum
  auto cpu = RunJoin(kSyncTraversalEngine, r, s, ecfg);
  if (!cpu.ok()) {
    std::printf("ERROR: %s\n", cpu.status().ToString().c_str());
    return 1;
  }
  std::printf("CPU sync traversal: %zu results in %.2f ms "
              "(plan %.2f ms + execute %.2f ms)\n",
              cpu->result.size(), cpu->timing.total_seconds() * 1e3,
              cpu->timing.plan_seconds * 1e3,
              cpu->timing.execute_seconds * 1e3);

  // 3. Simulated SwiftSpatial accelerator: 16 join units at 200 MHz, on the
  //    same packed R-tree layout.
  BulkLoadOptions bl;
  bl.max_entries = 16;
  const PackedRTree rt = StrBulkLoad(r, bl);
  const PackedRTree st = StrBulkLoad(s, bl);
  std::printf("R-trees: height %d / %d, %zu / %zu nodes\n", rt.height(),
              st.height(), rt.num_nodes(), st.num_nodes());

  hw::AcceleratorConfig acfg;
  acfg.num_join_units = 16;
  hw::Accelerator accelerator(acfg);
  JoinResult device;
  const hw::AcceleratorReport report =
      accelerator.RunSyncTraversal(rt, st, &device);

  std::printf(
      "SwiftSpatial (simulated): %llu results, %llu kernel cycles = %.3f ms "
      "kernel + %.3f ms PCIe -> %.3f ms total\n",
      static_cast<unsigned long long>(report.num_results),
      static_cast<unsigned long long>(report.kernel_cycles),
      report.kernel_seconds * 1e3, report.host_transfer_seconds * 1e3,
      report.total_seconds * 1e3);
  std::printf("  join-unit utilization: %.1f%%, DRAM utilization: %.1f%%\n",
              report.AvgUnitUtilization() * 100, report.dram_utilization * 100);

  // 4. The simulated device computes the real join: verify it.
  if (!JoinResult::SameMultiset(cpu->result, device)) {
    std::printf("ERROR: device result differs from CPU result!\n");
    return 1;
  }
  std::printf("verified: device result matches the CPU join. Speedup vs this "
              "CPU baseline: %.1fx\n",
              cpu->timing.execute_seconds * 1e3 / (report.total_seconds * 1e3));
  return 0;
}
