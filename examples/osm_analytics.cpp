// OSM-style analytics: "which sensor readings fall inside which building?"
//
// The workload the paper's introduction motivates: a skewed, city-like map
// of building footprints joined against a large stream of point readings.
// The full pipeline runs: accelerator-filtered candidates, then exact
// point-in-polygon refinement on the CPU (§5.8), then a per-district
// aggregation over the verified pairs.
//
//   ./build/examples/osm_analytics [--readings=N] [--buildings=N]
#include <algorithm>
#include <cstdio>
#include <map>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "datagen/generator.h"
#include "hw/accelerator.h"
#include "refine/refinement.h"
#include "rtree/bulk_load.h"

using namespace swiftspatial;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const uint64_t readings = flags.GetInt("readings", 200000);
  const uint64_t buildings = flags.GetInt("buildings", 100000);

  // City-like data: clustered buildings, sensor readings following the same
  // population density.
  OsmLikeConfig bcfg;
  bcfg.count = buildings;
  bcfg.seed = 11;
  bcfg.min_edge = 5.0;
  bcfg.max_edge = 30.0;  // building footprints
  const Dataset footprints = GenerateOsmLike(bcfg);

  OsmLikeConfig pcfg = bcfg;
  pcfg.count = readings;
  pcfg.seed = 12;
  const Dataset sensors = GenerateOsmLikePoints(pcfg);
  std::printf("map: %llu buildings, %llu sensor readings\n",
              static_cast<unsigned long long>(buildings),
              static_cast<unsigned long long>(readings));

  // Host maintains the indexes; the accelerator joins them.
  Stopwatch sw;
  BulkLoadOptions bl;
  bl.max_entries = 16;
  bl.num_threads = 2;
  const PackedRTree sensor_tree = StrBulkLoad(sensors, bl);
  const PackedRTree building_tree = StrBulkLoad(footprints, bl);
  std::printf("index construction: %.1f ms (one-time cost, §5.9)\n",
              sw.ElapsedMillis());

  hw::AcceleratorConfig acfg;
  acfg.num_join_units = 16;
  JoinResult candidates;
  const auto report = hw::Accelerator(acfg).RunSyncTraversal(
      sensor_tree, building_tree, &candidates);
  std::printf("filter (simulated accelerator): %zu candidate pairs in %.3f "
              "ms modelled device time\n",
              candidates.size(), report.total_seconds * 1e3);

  // Refinement: exact point-in-polygon against the building geometry.
  sw.Reset();
  RefinementOptions ropt;
  ropt.num_threads = 2;
  RefinementStats rstats;
  const JoinResult verified =
      Refine(sensors, GeometryKind::kPoint, footprints, GeometryKind::kPolygon,
             candidates.pairs(), ropt, &rstats);
  std::printf(
      "refine (CPU): %zu verified pairs (%zu MBR false positives removed) "
      "in %.1f ms\n",
      rstats.verified, rstats.false_positives, sw.ElapsedMillis());

  // Analytics: readings per building, top-5 densest buildings.
  std::map<ObjectId, int> per_building;
  for (const ResultPair& p : verified.pairs()) ++per_building[p.s];
  std::vector<std::pair<int, ObjectId>> ranked;
  ranked.reserve(per_building.size());
  for (const auto& [building, count] : per_building) {
    ranked.push_back({count, building});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("%zu buildings contain at least one reading; top-5 by "
              "occupancy:\n",
              per_building.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i) {
    const Box& b = footprints.box(static_cast<std::size_t>(ranked[i].second));
    std::printf("  building %6d at (%.0f, %.0f): %d readings\n",
                ranked[i].second, static_cast<double>(b.Center().x),
                static_cast<double>(b.Center().y), ranked[i].first);
  }
  return 0;
}
