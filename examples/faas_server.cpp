// Spatial-join-as-a-service (§4.2), served for real: a JoinService
// (src/exec/service.h) multiplexes a fixed worker budget across tenants,
// actually executing every join through the streaming executor -- where the
// paper's FaaS section and the analytic model in src/faas/service.h predict
// queueing behaviour, this example measures it end to end.
//
// A bursty mix of request classes arrives from several tenants:
// interactive tenants submit small joins, one analytical tenant submits
// large ones. Under FCFS the analytical burst monopolises the dispatchers
// and interactive p99 explodes; fair-share scheduling restores interactive
// latency at the cost of the analytical tenant's completion time -- the
// same trade-off the paper makes by instantiating several smaller FPGA
// kernels instead of one large one.
//
//   ./build/examples/faas_server [--interactive=N] [--analytical=N]
//                                [--metrics] [--trace-file=PATH]
//                                [--serve-metrics=PORT]
//
// --metrics dumps the Prometheus text exposition of the service's
// MetricsRegistry after each policy run; --trace-file writes a Chrome
// trace_event JSON of every request's span tree (load it in
// chrome://tracing or https://ui.perfetto.dev); --serve-metrics starts a
// live HTTP scrape endpoint on 127.0.0.1:PORT (0 = ephemeral) exposing
// /metrics, /healthz, and /readyz for the duration of the run -- e.g.
// `curl localhost:PORT/metrics` while the burst is in flight.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/percentile.h"
#include "common/stopwatch.h"
#include "common/sync.h"
#include "common/table_printer.h"
#include "datagen/generator.h"
#include "exec/service.h"
#include "join/engine.h"
#include "obs/exposition_server.h"
#include "obs/trace.h"

using namespace swiftspatial;

namespace {

Dataset Uniform(uint64_t count, uint64_t seed) {
  UniformConfig cfg;
  cfg.count = count;
  cfg.seed = seed;
  return GenerateUniform(cfg);
}

struct ClassMetrics {
  double mean_ms = 0;
  double p99_ms = 0;
};

ClassMetrics Summarize(std::vector<double> latencies) {
  ClassMetrics m;
  if (latencies.empty()) return m;
  for (const double l : latencies) m.mean_ms += l * 1e3;
  m.mean_ms /= static_cast<double>(latencies.size());
  m.p99_ms = Percentile(std::move(latencies), 0.99) * 1e3;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const int interactive = static_cast<int>(flags.GetInt("interactive", 20));
  const int analytical = static_cast<int>(flags.GetInt("analytical", 4));
  const bool dump_metrics = flags.GetBool("metrics", false);
  const std::string trace_file = flags.GetString("trace-file", "");
  const int serve_metrics = static_cast<int>(flags.GetInt("serve-metrics", -1));

  // Live scrape endpoint over the Global registry (which the services below
  // use, since JoinServiceOptions::metrics stays null). Readiness flips once
  // the first policy run begins submitting work.
  std::optional<obs::ExpositionServer> exposition;
  std::atomic<bool> serving{false};
  if (serve_metrics >= 0) {
    obs::ExpositionServer::Options server_options;
    server_options.port = serve_metrics;
    server_options.ready = [&serving] {
      return serving.load(std::memory_order_acquire);
    };
    exposition.emplace(std::move(server_options));
    const Status started = exposition->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "--serve-metrics failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::printf("metrics endpoint: http://127.0.0.1:%d/metrics "
                "(/healthz, /readyz)\n",
                exposition->port());
    // Scripts scrape this line for the ephemeral port; when stdout is a
    // pipe or file the default full buffering would hold it until exit.
    std::fflush(stdout);
  }

  // Two request classes, sized so one analytical join costs roughly an
  // order of magnitude more than an interactive one.
  const Dataset small_r = Uniform(20000, 31);
  const Dataset small_s = Uniform(20000, 32);
  const Dataset large_r = Uniform(200000, 41);
  const Dataset large_s = Uniform(200000, 42);

  std::printf(
      "serving %d interactive + %d analytical requests per policy...\n",
      interactive, analytical);
  TablePrinter table(
      "JoinService: one worker budget, interactive tenants vs an analytical "
      "burst",
      {"policy", "inter_mean_ms", "inter_p99_ms", "anal_mean_ms",
       "anal_p99_ms", "makespan_ms"});

  for (const auto policy :
       {exec::SchedulingPolicy::kFcfs, exec::SchedulingPolicy::kFairShare}) {
    exec::JoinServiceOptions options;
    options.worker_threads =
        std::max(2u, std::thread::hardware_concurrency());
    options.max_concurrent = 2;
    options.max_pending = static_cast<std::size_t>(interactive + analytical);
    options.policy = policy;
    if (!trace_file.empty()) {
      options.span_buffer = &obs::SpanBuffer::Global();
    }
    exec::JoinService service(options);
    serving.store(true, std::memory_order_release);

    EngineConfig config;
    config.num_threads = 2;

    // The analytical burst lands first -- the worst case for interactive
    // tenants under FCFS -- then interactive requests trickle in from
    // three tenants.
    std::vector<double> inter_latency, anal_latency;
    std::vector<std::thread> consumers;
    swiftspatial::Mutex latency_mu;
    Stopwatch wall;
    auto submit = [&](const std::string& tenant, const Dataset& r,
                      const Dataset& s, std::vector<double>* sink) {
      auto handle = service.Submit(tenant, kPartitionedEngine, r, s, config);
      if (!handle.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     handle.status().ToString().c_str());
        std::exit(1);
      }
      consumers.emplace_back(
          [&wall, &latency_mu, sink, h = std::move(*handle)]() mutable {
            exec::StreamSummary summary = h.Collect();
            if (!summary.status.ok()) {
              std::fprintf(stderr, "collect failed: %s\n",
                           summary.status.ToString().c_str());
              std::exit(1);
            }
            swiftspatial::MutexLock lock(&latency_mu);
            sink->push_back(wall.ElapsedSeconds());
          });
    };
    for (int i = 0; i < analytical; ++i) {
      submit("analytics", large_r, large_s, &anal_latency);
    }
    for (int i = 0; i < interactive; ++i) {
      submit("interactive-" + std::to_string(i % 3), small_r, small_s,
             &inter_latency);
    }
    for (auto& c : consumers) c.join();
    service.Drain();
    const double makespan = wall.ElapsedSeconds();

    const ClassMetrics inter = Summarize(inter_latency);
    const ClassMetrics anal = Summarize(anal_latency);
    table.AddRow({exec::SchedulingPolicyToString(policy),
                  TablePrinter::Fmt(inter.mean_ms, 2),
                  TablePrinter::Fmt(inter.p99_ms, 2),
                  TablePrinter::Fmt(anal.mean_ms, 2),
                  TablePrinter::Fmt(anal.p99_ms, 2),
                  TablePrinter::Fmt(makespan * 1e3, 2)});
    if (dump_metrics) {
      std::printf("--- metrics (%s) ---\n%s",
                  exec::SchedulingPolicyToString(policy),
                  service.MetricsText().c_str());
    }
  }
  table.Print();
  if (!trace_file.empty()) {
    std::ofstream out(trace_file);
    out << obs::SpanBuffer::Global().ChromeTraceJson();
    std::printf("wrote %zu spans to %s (open in chrome://tracing)\n",
                obs::SpanBuffer::Global().size(), trace_file.c_str());
  }
  std::printf(
      "fair-share pulls interactive requests ahead of the analytical burst "
      "(lower interactive mean/p99) while total makespan stays put -- the "
      "multi-kernel fairness result of §4.2, measured on a live service "
      "instead of the analytic model (which remains in src/faas/service.h "
      "for device-scale what-ifs).\n");
  return 0;
}
