// FPGA-as-a-Service host (§4.2): a spatial-join service multiplexing one
// FPGA across tenants. Demonstrates sizing real requests by running a
// representative join through the unified JoinEngine API, then exploring
// single-kernel vs multi-kernel instantiation under a bursty arrival
// pattern.
//
//   ./build/examples/faas_server [--tenants=N]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "datagen/generator.h"
#include "faas/service.h"
#include "join/engine.h"

using namespace swiftspatial;

namespace {

// Runs one representative join through the engine registry and converts its
// stats into a FaaS request profile (parallel unit-cycles + serial cycles).
faas::JoinRequest ProfileJoin(uint64_t scale, uint64_t seed) {
  UniformConfig cfg;
  cfg.count = scale;
  cfg.seed = seed;
  const Dataset r = GenerateUniform(cfg);
  cfg.seed = seed + 1;
  const Dataset s = GenerateUniform(cfg);

  EngineConfig ecfg;
  ecfg.node_capacity = 16;
  auto req = faas::ProfileRequest(kSyncTraversalEngine, r, s,
                                  /*arrival_seconds=*/0.0, ecfg);
  if (!req.ok()) {
    // A zero-cost request would make the whole simulation nonsense.
    std::fprintf(stderr, "profiling failed: %s\n",
                 req.status().ToString().c_str());
    std::exit(1);
  }
  return *req;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const int tenants = static_cast<int>(flags.GetInt("tenants", 24));

  std::printf("profiling request classes on the device model...\n");
  const faas::JoinRequest small = ProfileJoin(20000, 31);
  const faas::JoinRequest large = ProfileJoin(200000, 41);
  std::printf(
      "  interactive class: %.1fM unit-cycles; analytical class: %.1fM\n",
      small.parallel_unit_cycles / 1e6, large.parallel_unit_cycles / 1e6);

  // Bursty tenant mix: mostly interactive, a few analytical.
  Rng rng(51);
  std::vector<faas::JoinRequest> requests;
  for (int i = 0; i < tenants; ++i) {
    faas::JoinRequest req = (i % 8 == 0) ? large : small;
    req.arrival_seconds = rng.Uniform(0.0, 0.02);
    requests.push_back(req);
  }

  TablePrinter table("FaaS instantiation choices for one U250 (16 units)",
                     {"kernels", "units_each", "mean_ms", "p99_ms",
                      "max_wait_ms", "makespan_ms"});
  for (const int kernels : {1, 2, 4}) {
    faas::FaasConfig cfg;
    cfg.total_units = 16;
    cfg.num_kernels = kernels;
    faas::SpatialJoinService service(cfg);
    const auto metrics =
        faas::SpatialJoinService::Summarize(service.Process(requests));
    table.AddRow({std::to_string(kernels),
                  std::to_string(service.units_per_kernel()),
                  TablePrinter::Fmt(metrics.mean_latency_seconds * 1e3, 2),
                  TablePrinter::Fmt(metrics.p99_latency_seconds * 1e3, 2),
                  TablePrinter::Fmt(metrics.max_wait_seconds * 1e3, 2),
                  TablePrinter::Fmt(metrics.makespan_seconds * 1e3, 2)});
  }
  table.Print();
  std::printf(
      "multi-kernel instantiation trades per-query speed for fairness: "
      "interactive tenants stop queueing behind analytical joins (§4.2).\n");
  return 0;
}
