// Choosing the right control flow: PBSM for one-off joins, R-tree
// synchronous traversal for iterative joins (§5.9's conclusion).
//
// This example runs the same workload both ways and accounts for the
// one-time preprocessing cost:
//   * one-off join:    partition + PBSM-join           (cheap preprocessing)
//   * iterative join:  bulk-load once + K joins with a handful of updates
//                      between rounds (the R-tree amortises construction)
//
//   ./build/examples/pbsm_vs_rtree [--scale=N] [--rounds=K]
#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "datagen/generator.h"
#include "grid/hierarchical_partition.h"
#include "hw/accelerator.h"
#include "join/engine.h"
#include "rtree/bulk_load.h"
#include "rtree/rtree.h"

using namespace swiftspatial;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const uint64_t scale = flags.GetInt("scale", 100000);
  const int rounds = static_cast<int>(flags.GetInt("rounds", 5));

  UniformConfig cfg;
  cfg.count = scale;
  cfg.seed = 21;
  Dataset r = GenerateUniform(cfg);
  cfg.seed = 22;
  const Dataset s = GenerateUniform(cfg);

  hw::AcceleratorConfig acfg;
  acfg.num_join_units = 16;
  hw::Accelerator accelerator(acfg);

  // ---------------- One-off join: PBSM. ----------------
  Stopwatch sw;
  HierarchicalPartitionOptions hp;
  hp.tile_cap = 16;
  hp.initial_grid = 64;
  const auto partition = PartitionHierarchical(r, s, hp);
  const double partition_ms = sw.ElapsedMillis();
  const auto pbsm_report = accelerator.RunPbsm(r, s, partition);
  std::printf(
      "one-off PBSM:      %.1f ms partition (host) + %.3f ms join (device) "
      "-> %llu results\n",
      partition_ms, pbsm_report.total_seconds * 1e3,
      static_cast<unsigned long long>(pbsm_report.num_results));

  // ---------------- Iterative join: R-tree sync traversal. ----------------
  sw.Reset();
  RTreeOptions ropt;
  ropt.max_entries = 16;
  RTree dynamic_tree = RTree::BuildByInsertion(r, ropt);
  BulkLoadOptions bl;
  bl.max_entries = 16;
  const PackedRTree st = StrBulkLoad(s, bl);
  const double build_ms = sw.ElapsedMillis();
  std::printf("iterative R-tree:  %.1f ms construction (one time)\n",
              build_ms);

  Rng rng(23);
  double total_device_ms = 0;
  for (int round = 0; round < rounds; ++round) {
    // A trickle of updates between joins (moving objects).
    sw.Reset();
    for (int k = 0; k < 100; ++k) {
      const std::size_t i = rng.NextBelow(r.size());
      const Box old_box = r.box(i);
      if (!dynamic_tree.Delete(static_cast<ObjectId>(i), old_box).ok()) {
        continue;
      }
      Box moved = old_box;
      const Coord dx = static_cast<Coord>(rng.Uniform(-5, 5));
      moved.min_x += dx;
      moved.max_x += dx;
      r.mutable_boxes()[i] = moved;
      dynamic_tree.Insert(static_cast<ObjectId>(i), moved);
    }
    const double update_ms = sw.ElapsedMillis();

    const auto report = accelerator.RunSyncTraversal(dynamic_tree.Pack(), st);
    total_device_ms += report.total_seconds * 1e3;
    std::printf(
        "  round %d: 100 updates in %.2f ms, join %.3f ms -> %llu results\n",
        round, update_ms, report.total_seconds * 1e3,
        static_cast<unsigned long long>(report.num_results));
  }

  std::printf(
      "\nsummary: PBSM pays %.1f ms preprocessing per join; the R-tree pays "
      "%.1f ms once and %.3f ms per join thereafter -- prefer PBSM for "
      "one-off joins, synchronous traversal when joins repeat (§5.9).\n",
      partition_ms, build_ms, total_device_ms / rounds);

  // The same trade-off on the CPU, through the unified engine API: the
  // StageTiming split makes the plan (preprocessing) vs execute (join)
  // costs of each control flow directly comparable.
  std::printf("\nCPU engines (plan = preprocessing, execute = join):\n");
  int failures = 0;
  for (const char* name :
       {kPbsmEngine, kPartitionedEngine, kSyncTraversalEngine}) {
    auto run = RunJoin(name, r, s);
    if (!run.ok()) {
      std::fprintf(stderr, "  %-24s FAILED: %s\n", name,
                   run.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("  %-24s plan %8.1f ms + execute %8.1f ms -> %zu results\n",
                name, run->timing.plan_seconds * 1e3,
                run->timing.execute_seconds * 1e3, run->result.size());
  }
  return failures == 0 ? 0 : 1;
}
