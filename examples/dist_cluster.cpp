// Distributed execution through the unified engine API: the in-process
// simulated cluster is just another engine name.
//
//   1. join on one machine ("partitioned") and on an 8-node cluster
//      ("dist-pbsm") through the same RunJoin call, compare results,
//   2. inspect the cluster report through the typed handle: per-node load,
//      straggler gap, exchange traffic, placement quality,
//   3. survive a node failure mid-join: shard re-execution on survivors
//      yields the identical result,
//   4. stream committed shards with exec::RunJoinAsync while the cluster
//      is still joining.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/dist_cluster [--metrics] [--trace-file=PATH]
//
// --metrics dumps the swiftspatial_dist_* Prometheus exposition at the end;
// --trace-file writes a Chrome trace_event JSON of the traced cluster run
// (merge/shard/commit spans, one track per node) for chrome://tracing or
// https://ui.perfetto.dev.
#include <cstdio>
#include <fstream>
#include <string>

#include "common/flags.h"
#include "datagen/generator.h"
#include "dist/dist_engine.h"
#include "exec/streaming.h"
#include "join/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace swiftspatial;

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  const bool dump_metrics = flags.GetBool("metrics", false);
  const std::string trace_file = flags.GetString("trace-file", "");
  OsmLikeConfig config;  // spatially skewed: placement policy matters
  config.count = 30000;
  config.seed = 21;
  const Dataset r = GenerateOsmLike(config);
  config.seed = 22;
  const Dataset s = GenerateOsmLike(config);
  std::printf("datasets: %zu x %zu skewed rectangles\n", r.size(), s.size());

  // 1. Same entry point, one machine vs a cluster.
  EngineConfig ecfg;
  ecfg.num_threads = 8;
  ecfg.dist_nodes = 8;
  ecfg.dist_placement = dist::PlacementPolicy::kCostBalanced;
  auto local = RunJoin(kPartitionedEngine, r, s, ecfg);
  auto cluster = RunJoin(kDistPbsmEngine, r, s, ecfg);
  if (!local.ok() || !cluster.ok()) {
    std::printf("ERROR: %s\n",
                (!local.ok() ? local : cluster).status().ToString().c_str());
    return 1;
  }
  if (!JoinResult::SameMultiset(local->result, cluster->result)) {
    std::printf("ERROR: cluster result differs from single-machine join!\n");
    return 1;
  }
  std::printf("single machine: %zu pairs in %.1f ms; 8-node cluster agrees\n",
              local->result.size(), local->timing.total_seconds() * 1e3);

  // 2. The cluster report through the typed handle; with --trace-file this
  // run is traced end to end (merge span, per-node shard spans, commits).
  obs::ScopedSpan root;
  if (!trace_file.empty()) {
    root = obs::ScopedSpan(
        obs::TraceContext::StartTrace(&obs::SpanBuffer::Global()), "request");
    ecfg.trace = root.context();
  }
  auto engine = dist::MakeDistEngine(kDistPbsmEngine, ecfg);
  if (!engine.ok()) return 1;
  JoinResult out;
  if (!(*engine)->Plan(r, s).ok() ||
      !(*engine)->Execute(&out, nullptr).ok()) {
    return 1;
  }
  root.End();
  const dist::DistReport& report = (*engine)->last_report();
  std::printf(
      "cluster: %zu shards on %zu nodes, makespan %.2f ms, straggler gap "
      "%.2f, exchange %.1f KB in %llu messages, %zu boundary replicas\n",
      report.shards, report.nodes, report.makespan_seconds * 1e3,
      report.straggler_gap,
      static_cast<double>(report.exchange_payload_bytes) / 1024.0,
      static_cast<unsigned long long>(report.exchange_messages),
      report.replicated_objects);
  for (std::size_t n = 0; n < report.node_stats.size(); ++n) {
    const dist::NodeStats& ns = report.node_stats[n];
    std::printf("  node %zu: %zu shards, %llu pairs, busy %.2f ms\n", n,
                ns.shards_executed,
                static_cast<unsigned long long>(ns.pairs_emitted),
                ns.busy_seconds * 1e3);
  }

  // 3. Fault tolerance: node 2 dies mid-join; survivors re-execute its
  // shards and the merged result is identical.
  dist::DistJoinOptions options;
  options.num_nodes = 8;
  options.fault.fail_node = 2;
  options.fault.fail_after_shards = 3;
  JoinResult with_failure;
  auto faulty = dist::DistributedJoin(r, s, options, &with_failure);
  if (!faulty.ok()) {
    std::printf("ERROR: %s\n", faulty.status().ToString().c_str());
    return 1;
  }
  if (!JoinResult::SameMultiset(cluster->result, with_failure)) {
    std::printf("ERROR: result after node failure diverged!\n");
    return 1;
  }
  std::printf(
      "node 2 failed after 3 shards: %zu shards re-executed on survivors, "
      "result identical\n",
      faulty->retried_shards);

  // 4. Streaming: committed shards surface while the cluster still joins.
  exec::StreamOptions stream;
  stream.chunk_pairs = 4096;
  auto handle = exec::RunJoinAsync(kDistPbsmEngine, r, s, ecfg, stream);
  if (!handle.ok()) return 1;
  exec::ResultChunk chunk;
  std::size_t chunks = 0, pairs = 0;
  while (handle->Next(&chunk)) {
    ++chunks;
    pairs += chunk.pairs.size();
  }
  if (!handle->Wait().ok()) return 1;
  std::printf("streamed the cluster join: %zu pairs in %zu chunks\n", pairs,
              chunks);

  if (dump_metrics) {
    std::printf("--- metrics ---\n%s",
                obs::MetricsRegistry::Global().TextExposition().c_str());
  }
  if (!trace_file.empty()) {
    std::ofstream trace_out(trace_file);
    trace_out << obs::SpanBuffer::Global().ChromeTraceJson();
    std::printf("wrote %zu spans to %s (open in chrome://tracing)\n",
                obs::SpanBuffer::Global().size(), trace_file.c_str());
  }
  return 0;
}
