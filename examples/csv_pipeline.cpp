// External-data pipeline: load rectangle datasets from CSV (the format real
// OSM extracts ship in), run a containment join on the device model, and
// write the result back out. Demonstrates datagen/csv_io.h and
// join/predicates.h together.
//
//   ./build/examples/csv_pipeline [--r=path.csv --s=path.csv]
//
// Without arguments, the example writes two small CSV files first so it is
// runnable out of the box.
#include <cstdio>

#include "common/flags.h"
#include "datagen/csv_io.h"
#include "datagen/generator.h"
#include "join/predicates.h"

using namespace swiftspatial;

namespace {

// Creates demo CSVs when no inputs are given: parcels (large rectangles)
// and buildings (small ones).
std::string MakeDemoFile(const char* name, double max_edge, uint64_t seed) {
  UniformConfig cfg;
  cfg.map.map_size = 2000.0;
  cfg.count = 20000;
  cfg.min_edge = max_edge / 4;
  cfg.max_edge = max_edge;
  cfg.seed = seed;
  const Dataset d = GenerateUniform(cfg);
  const std::string path = std::string("/tmp/swiftspatial_") + name + ".csv";
  const Status st = SaveCsvDataset(d, path);
  if (!st.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 st.ToString().c_str());
    std::exit(1);
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  std::string r_path = flags.GetString("r", "");
  std::string s_path = flags.GetString("s", "");
  if (r_path.empty() || s_path.empty()) {
    std::printf("no --r/--s given; generating demo CSVs under /tmp\n");
    r_path = MakeDemoFile("parcels", 40.0, 61);
    s_path = MakeDemoFile("buildings", 6.0, 62);
  }

  auto r = LoadCsvDataset(r_path);
  if (!r.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", r_path.c_str(),
                 r.status().ToString().c_str());
    return 1;
  }
  auto s = LoadCsvDataset(s_path);
  if (!s.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", s_path.c_str(),
                 s.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu parcels, %zu buildings\n", r->size(), s->size());

  // Which buildings are fully inside which parcel?
  JoinStats stats;
  const JoinResult contained =
      PredicateJoin(*r, *s, SpatialPredicate::kContains, &stats);
  std::printf(
      "contains-join: %zu (parcel, building) pairs "
      "(%llu filter predicate evaluations)\n",
      contained.size(),
      static_cast<unsigned long long>(stats.predicate_evaluations));

  // Persist the pairs as CSV for downstream tools.
  const std::string out_path = "/tmp/swiftspatial_contained_pairs.csv";
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "parcel_id,building_id\n");
  for (const ResultPair& p : contained.pairs()) {
    std::fprintf(out, "%d,%d\n", p.r, p.s);
  }
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
