// Accelerator offload through the unified engine API: the simulated
// SwiftSpatial device is just another engine name.
//
//   1. join on the CPU ("partitioned") and on the device ("accel-pbsm")
//      through the same RunJoin call, compare results and timings,
//   2. read the device performance model (kernel cycles, PCIe, launch)
//      through the typed accelerator handle,
//   3. stream the device join with exec::RunJoinAsync: chunks arrive while
//      the simulated kernel is still running (time-to-first-chunk), which
//      is how a host would overlap refinement with device filtering.
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/examples/accel_offload
#include <cstdio>

#include "datagen/generator.h"
#include "exec/streaming.h"
#include "common/stopwatch.h"
#include "join/accel_engine.h"

using namespace swiftspatial;

int main() {
  UniformConfig config;
  config.count = 20000;
  config.map.map_size = 3000.0;
  config.max_edge = 8.0;
  config.seed = 11;
  const Dataset r = GenerateUniform(config);
  config.seed = 12;
  const Dataset s = GenerateUniform(config);
  std::printf("datasets: %zu x %zu rectangles\n", r.size(), s.size());

  // 1. Same entry point, CPU and device: only the engine name changes.
  EngineConfig ecfg;
  ecfg.num_threads = 4;
  ecfg.accel_join_units = 16;
  auto cpu = RunJoin(kPartitionedEngine, r, s, ecfg);
  if (!cpu.ok()) {
    std::printf("ERROR: %s\n", cpu.status().ToString().c_str());
    return 1;
  }
  auto dev = RunJoin(kAccelPbsmEngine, r, s, ecfg);
  if (!dev.ok()) {
    std::printf("ERROR: %s\n", dev.status().ToString().c_str());
    return 1;
  }
  if (!JoinResult::SameMultiset(cpu->result, dev->result)) {
    std::printf("ERROR: device result differs from CPU result!\n");
    return 1;
  }
  std::printf(
      "CPU partitioned:   %zu results in %.2f ms host wall\n"
      "accel-pbsm:        %zu results in %.2f ms host wall (simulating)\n",
      cpu->result.size(), cpu->timing.total_seconds() * 1e3,
      dev->result.size(), dev->timing.total_seconds() * 1e3);

  // 2. The device performance model behind the engine: what an actual U250
  //    would take for this join.
  auto accel = MakeAccelEngine(kAccelPbsmEngine, ecfg);
  if (!accel.ok() || !(*accel)->Plan(r, s).ok()) {
    std::printf("ERROR: accel plan failed\n");
    return 1;
  }
  JoinResult out;
  if (!(*accel)->Execute(&out, nullptr).ok()) {
    std::printf("ERROR: accel execute failed\n");
    return 1;
  }
  const hw::AcceleratorReport& report = (*accel)->last_report();
  std::printf(
      "device model:      %.3f ms kernel (%llu cycles @ 200 MHz) + %.3f ms "
      "PCIe (%llu B in / %llu B out) + %.3f ms launch = %.3f ms\n",
      report.kernel_seconds * 1e3,
      static_cast<unsigned long long>(report.kernel_cycles),
      report.host_transfer_seconds * 1e3,
      static_cast<unsigned long long>(report.bytes_to_device),
      static_cast<unsigned long long>(report.bytes_from_device),
      report.launch_seconds * 1e3, report.total_seconds * 1e3);
  std::printf("  unit utilization %.1f%%; planned transfer matched: %s\n",
              report.AvgUnitUtilization() * 100,
              report.bytes_to_device == (*accel)->planned_bytes_to_device()
                  ? "yes"
                  : "no");

  // 3. Stream the device join: the write unit's burst flushes surface as
  //    chunks while the simulated kernel is still running.
  Stopwatch sw;
  exec::StreamOptions stream;
  stream.chunk_pairs = 512;  // small chunks so the overlap is visible here
  auto handle = exec::RunJoinAsync(kAccelPbsmEngine, r, s, ecfg, stream);
  if (!handle.ok()) {
    std::printf("ERROR: %s\n", handle.status().ToString().c_str());
    return 1;
  }
  exec::ResultChunk chunk;
  double first_chunk_ms = -1;
  std::size_t chunks = 0, streamed = 0;
  while (handle->Next(&chunk)) {
    if (first_chunk_ms < 0) first_chunk_ms = sw.ElapsedSeconds() * 1e3;
    ++chunks;
    streamed += chunk.pairs.size();
  }
  const double total_ms = sw.ElapsedSeconds() * 1e3;
  if (!handle->Wait().ok() || streamed != dev->result.size()) {
    std::printf("ERROR: streamed result diverged\n");
    return 1;
  }
  std::printf(
      "streaming:         first chunk after %.2f ms, %zu chunks / %zu pairs "
      "in %.2f ms total (first chunk %.1fx before stream end)\n",
      first_chunk_ms, chunks, streamed, total_ms, total_ms / first_chunk_ms);
  return 0;
}
