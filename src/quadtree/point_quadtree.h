// Point quadtree in the style of cuSpatial's index (§5.1 of the paper):
// only the *point* dataset is indexed; polygons are evaluated against it as
// batched window queries. Leaf capacity defaults to 128, the value the paper
// tuned for cuSpatial.
#ifndef SWIFTSPATIAL_QUADTREE_POINT_QUADTREE_H_
#define SWIFTSPATIAL_QUADTREE_POINT_QUADTREE_H_

#include <cstdint>
#include <vector>

#include "datagen/dataset.h"
#include "geometry/box.h"
#include "geometry/point.h"

namespace swiftspatial {

struct QuadtreeOptions {
  /// Split a node when it holds more than this many points.
  int leaf_capacity = 128;
  /// Hard recursion limit (guards against coincident points).
  int max_depth = 16;
};

/// Immutable PR quadtree over a point dataset.
class PointQuadtree {
 public:
  /// Builds over `points` (each box must be degenerate; its min corner is
  /// used as the point).
  static PointQuadtree Build(const Dataset& points,
                             const QuadtreeOptions& options = {});

  /// Ids of all points inside `window` (closed boundaries).
  std::vector<ObjectId> WindowQuery(const Box& window) const;

  /// Calls `fn(id, point)` for every point inside `window`.
  template <typename Fn>
  void ForEachInWindow(const Box& window, Fn&& fn) const;

  std::size_t num_points() const { return points_.size(); }
  std::size_t num_nodes() const { return nodes_.size(); }
  int height() const { return height_; }

 private:
  struct Node {
    Box bounds;
    // Children node indices (quadrant order SW, SE, NW, NE); -1 when absent.
    int32_t child[4] = {-1, -1, -1, -1};
    // Leaf payload: range [begin, end) into points_/ids_.
    uint32_t begin = 0;
    uint32_t end = 0;
    bool is_leaf = true;
  };

  void BuildNode(int32_t node_index, uint32_t begin, uint32_t end, int depth,
                 int leaf_capacity, int max_depth);

  std::vector<Node> nodes_;
  std::vector<Point> points_;  // permuted into build order
  std::vector<ObjectId> ids_;  // parallel to points_
  int height_ = 0;
};

template <typename Fn>
void PointQuadtree::ForEachInWindow(const Box& window, Fn&& fn) const {
  if (nodes_.empty()) return;
  std::vector<int32_t> stack = {0};
  while (!stack.empty()) {
    const Node& n = nodes_[stack.back()];
    stack.pop_back();
    if (!Intersects(n.bounds, window)) continue;
    if (n.is_leaf) {
      for (uint32_t i = n.begin; i < n.end; ++i) {
        if (ContainsPoint(window, points_[i])) fn(ids_[i], points_[i]);
      }
    } else {
      for (int c = 0; c < 4; ++c) {
        if (n.child[c] >= 0) stack.push_back(n.child[c]);
      }
    }
  }
}

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_QUADTREE_POINT_QUADTREE_H_
