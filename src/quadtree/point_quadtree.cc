#include "quadtree/point_quadtree.h"

#include <algorithm>

#include "common/logging.h"

namespace swiftspatial {

PointQuadtree PointQuadtree::Build(const Dataset& points,
                                   const QuadtreeOptions& options) {
  SWIFT_CHECK_GE(options.leaf_capacity, 1);
  PointQuadtree tree;
  tree.points_.reserve(points.size());
  tree.ids_.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Box& b = points.box(i);
    tree.points_.push_back(Point{b.min_x, b.min_y});
    tree.ids_.push_back(static_cast<ObjectId>(i));
  }

  Node root;
  root.bounds = points.Extent();
  root.begin = 0;
  root.end = static_cast<uint32_t>(tree.points_.size());
  tree.nodes_.push_back(root);
  tree.height_ = 1;
  if (!tree.points_.empty()) {
    tree.BuildNode(0, 0, static_cast<uint32_t>(tree.points_.size()), 1,
                   options.leaf_capacity, options.max_depth);
  }
  return tree;
}

void PointQuadtree::BuildNode(int32_t node_index, uint32_t begin, uint32_t end,
                              int depth, int leaf_capacity, int max_depth) {
  height_ = std::max(height_, depth);
  Node& node = nodes_[node_index];
  node.begin = begin;
  node.end = end;
  if (end - begin <= static_cast<uint32_t>(leaf_capacity) ||
      depth >= max_depth) {
    node.is_leaf = true;
    return;
  }
  node.is_leaf = false;

  const Point c = node.bounds.Center();
  const Box bounds = node.bounds;

  // In-place partition into quadrants: first by y (south/north), then by x.
  auto first = points_.begin() + begin;
  auto last = points_.begin() + end;
  auto id_first = ids_.begin() + begin;

  // Keep ids aligned with points through the partitions: permute both via an
  // index sort of the range (simpler than a dual-pivot partition and the
  // range is small relative to the whole build).
  const uint32_t n = end - begin;
  std::vector<uint32_t> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  auto quadrant_of = [&](const Point& p) {
    const int east = p.x > c.x ? 1 : 0;
    const int north = p.y > c.y ? 1 : 0;
    return north * 2 + east;  // SW=0, SE=1, NW=2, NE=3
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     return quadrant_of(first[a]) < quadrant_of(first[b]);
                   });
  std::vector<Point> tmp_points(first, last);
  std::vector<ObjectId> tmp_ids(id_first, id_first + n);
  for (uint32_t i = 0; i < n; ++i) {
    first[i] = tmp_points[order[i]];
    id_first[i] = tmp_ids[order[i]];
  }

  // Quadrant sizes.
  uint32_t counts[4] = {0, 0, 0, 0};
  for (uint32_t i = 0; i < n; ++i) ++counts[quadrant_of(first[i])];

  uint32_t child_begin = begin;
  for (int q = 0; q < 4; ++q) {
    if (counts[q] == 0) continue;
    Node child;
    switch (q) {
      case 0:
        child.bounds = Box(bounds.min_x, bounds.min_y, c.x, c.y);
        break;
      case 1:
        child.bounds = Box(c.x, bounds.min_y, bounds.max_x, c.y);
        break;
      case 2:
        child.bounds = Box(bounds.min_x, c.y, c.x, bounds.max_y);
        break;
      default:
        child.bounds = Box(c.x, c.y, bounds.max_x, bounds.max_y);
        break;
    }
    const int32_t child_index = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(child);
    nodes_[node_index].child[q] = child_index;
    BuildNode(child_index, child_begin, child_begin + counts[q], depth + 1,
              leaf_capacity, max_depth);
    child_begin += counts[q];
  }
}

std::vector<ObjectId> PointQuadtree::WindowQuery(const Box& window) const {
  std::vector<ObjectId> out;
  ForEachInWindow(window, [&out](ObjectId id, const Point&) {
    out.push_back(id);
  });
  return out;
}

}  // namespace swiftspatial
