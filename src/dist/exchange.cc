#include "dist/exchange.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace swiftspatial::dist {

namespace {
/// Fixed per-message framing overhead (kind, node, shard, attempt, length).
constexpr uint64_t kHeaderBytes = 24;
/// Wait tick: the external CancellationToken has no condition variable to
/// notify, so blocked calls poll it at this granularity.
constexpr auto kCancelTick = std::chrono::milliseconds(2);
}  // namespace

namespace {
obs::MetricsRegistry& ResolveMetrics(obs::MetricsRegistry* metrics) {
  return metrics != nullptr ? *metrics : obs::MetricsRegistry::Global();
}
}  // namespace

Exchange::Exchange(std::size_t num_nodes, const LinkConfig& config,
                   exec::CancellationToken cancel,
                   obs::MetricsRegistry* metrics)
    : config_(config),
      external_cancel_(std::move(cancel)),
      m_messages_(ResolveMetrics(metrics).GetCounter("swiftspatial_dist_exchange_messages_total", {}, "Messages enqueued on node->coordinator links")),
      m_payload_bytes_(ResolveMetrics(metrics).GetCounter("swiftspatial_dist_exchange_payload_bytes_total", {}, "Result-pair payload bytes shipped over exchange links")),
      m_stalls_(ResolveMetrics(metrics).GetCounter("swiftspatial_dist_exchange_stalls_total", {}, "Sends that blocked on a full link (backpressure)")),
      num_links_(num_nodes),
      links_(num_nodes),
      open_links_(num_nodes) {
  SWIFT_CHECK_GE(num_nodes, 1u);
}

uint64_t Exchange::MessageBytes(const Message& msg) const {
  return kHeaderBytes + msg.pairs.size() * sizeof(ResultPair);
}

bool Exchange::Send(Message msg) {
  const auto node = static_cast<std::size_t>(msg.node);
  SWIFT_CHECK_LT(node, num_links_);
  const bool terminal = msg.kind == Message::Kind::kNodeDone ||
                        msg.kind == Message::Kind::kNodeFailed;
  MutexLock lock(&mu_);
  Link& link = links_[node];
  SWIFT_CHECK(!link.closed);
  if (link.queue.size() >= config_.queue_capacity) {
    // One stall per blocking Send, however many wakeups it takes.
    link.stats.stalls += 1;
    m_stalls_->Increment();
  }
  while (link.queue.size() >= config_.queue_capacity) {
    if (cancelled_ || external_cancel_.cancelled()) return false;
    cv_space_.WaitFor(&mu_, kCancelTick);
  }
  if (cancelled_ || external_cancel_.cancelled()) return false;

  const uint64_t bytes = MessageBytes(msg);
  link.stats.messages += 1;
  link.stats.payload_bytes += msg.pairs.size() * sizeof(ResultPair);
  m_messages_->Increment();
  m_payload_bytes_->Increment(msg.pairs.size() * sizeof(ResultPair));
  link.stats.modelled_seconds +=
      config_.latency_seconds +
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
  link.queue.push_back(std::move(msg));
  link.stats.max_depth = std::max(link.stats.max_depth, link.queue.size());
  if (terminal) {
    link.closed = true;
    SWIFT_CHECK_GE(open_links_, 1u);
    --open_links_;
  }
  cv_data_.NotifyOne();
  return true;
}

bool Exchange::Recv(Message* out) {
  MutexLock lock(&mu_);
  for (;;) {
    if (cancelled_ || external_cancel_.cancelled()) return false;
    // Round-robin over links so one chatty node cannot starve the rest.
    for (std::size_t k = 0; k < links_.size(); ++k) {
      const std::size_t i = (next_link_ + k) % links_.size();
      Link& link = links_[i];
      if (link.queue.empty()) continue;
      *out = std::move(link.queue.front());
      link.queue.pop_front();
      next_link_ = (i + 1) % links_.size();
      cv_space_.NotifyAll();
      return true;
    }
    if (open_links_ == 0) return false;  // all closed and drained
    cv_data_.WaitFor(&mu_, kCancelTick);
  }
}

void Exchange::Cancel() {
  {
    MutexLock lock(&mu_);
    cancelled_ = true;
  }
  cv_data_.NotifyAll();
  cv_space_.NotifyAll();
}

bool Exchange::cancelled() const {
  MutexLock lock(&mu_);
  return cancelled_ || external_cancel_.cancelled();
}

LinkStats Exchange::link_stats(std::size_t node) const {
  MutexLock lock(&mu_);
  SWIFT_CHECK_LT(node, links_.size());
  return links_[node].stats;
}

uint64_t Exchange::total_payload_bytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const Link& link : links_) total += link.stats.payload_bytes;
  return total;
}

uint64_t Exchange::total_messages() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const Link& link : links_) total += link.stats.messages;
  return total;
}

double Exchange::max_link_seconds() const {
  MutexLock lock(&mu_);
  double worst = 0;
  for (const Link& link : links_) {
    worst = std::max(worst, link.stats.modelled_seconds);
  }
  return worst;
}

}  // namespace swiftspatial::dist
