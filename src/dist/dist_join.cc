#include "dist/dist_join.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "grid/hierarchical_partition.h"
#include "hw/accelerator.h"
#include "obs/log.h"

namespace swiftspatial::dist {

namespace {

Status ValidateOptions(const DistJoinOptions& options) {
  if (options.num_nodes < 1) {
    return Status::InvalidArgument("num_nodes must be >= 1");
  }
  if (options.chunk_pairs < 1) {
    return Status::InvalidArgument("chunk_pairs must be >= 1");
  }
  if (options.use_accel && options.accel_tile_cap < 1) {
    return Status::InvalidArgument("accel_tile_cap must be >= 1");
  }
  if (options.use_accel && options.accel_join_units < 0) {
    return Status::InvalidArgument("accel_join_units must be >= 0");
  }
  return Status::OK();
}

// CPU shard execution: the same tile-join dispatch every partition driver
// uses, with the shard's dedup tile enforcing the cross-node convention.
ShardExecutor MakeCpuExecutor(const Dataset& r, const Dataset& s,
                              TileJoin tile_join) {
  return [&r, &s, tile_join](const Shard& shard,
                             std::vector<ResultPair>* pairs, JoinStats* stats,
                             double* device_seconds) -> Status {
    (void)device_seconds;
    JoinResult local;
    RunTileJoin(tile_join, r, s, shard.r_ids, shard.s_ids, &shard.dedup_tile,
                &local, stats);
    *pairs = std::move(local.mutable_pairs());
    return Status::OK();
  };
}

// Accelerator shard execution: the node fronts a simulated device. Per
// shard: local-id sub-datasets, hierarchical sub-partition, device PBSM
// flow, then host-side reference-point dedup against the shard tile --
// hw/multi_device's per-partition recipe, generalised from the fixed 2x2
// grid to arbitrary shard placement.
ShardExecutor MakeAccelExecutor(const Dataset& r, const Dataset& s,
                                const DistJoinOptions& options) {
  hw::AcceleratorConfig device;
  if (options.accel_join_units > 0) {
    device.num_join_units = options.accel_join_units;
  }
  const int tile_cap = options.accel_tile_cap;
  return [&r, &s, device, tile_cap](const Shard& shard,
                                    std::vector<ResultPair>* pairs,
                                    JoinStats* stats,
                                    double* device_seconds) -> Status {
    std::vector<Box> r_boxes, s_boxes;
    r_boxes.reserve(shard.r_ids.size());
    for (ObjectId id : shard.r_ids) {
      r_boxes.push_back(r.box(static_cast<std::size_t>(id)));
    }
    s_boxes.reserve(shard.s_ids.size());
    for (ObjectId id : shard.s_ids) {
      s_boxes.push_back(s.box(static_cast<std::size_t>(id)));
    }
    const Dataset sub_r("shard_r", std::move(r_boxes));
    const Dataset sub_s("shard_s", std::move(s_boxes));

    HierarchicalPartitionOptions hp;
    hp.tile_cap = tile_cap;
    // Scale the inner grid to the shard population so hierarchical
    // splitting stays shallow (as hw/multi_device does per partition).
    hp.initial_grid = std::clamp(
        static_cast<int>(std::max(sub_r.size(), sub_s.size()) / 64), 4, 64);
    const auto partition = PartitionHierarchical(sub_r, sub_s, hp);

    JoinResult local;
    hw::Accelerator dev(device);
    const hw::AcceleratorReport report =
        dev.RunPbsm(sub_r, sub_s, partition, &local);
    if (device_seconds != nullptr) *device_seconds += report.total_seconds;
    if (stats != nullptr) *stats += report.stats;

    // Map device-local ids back to global ids and keep only the pairs this
    // shard claims under the reference-point convention.
    pairs->reserve(local.size());
    for (const ResultPair& p : local.pairs()) {
      const ObjectId gr = shard.r_ids[static_cast<std::size_t>(p.r)];
      const ObjectId gs = shard.s_ids[static_cast<std::size_t>(p.s)];
      const Box& rb = r.box(static_cast<std::size_t>(gr));
      const Box& sb = s.box(static_cast<std::size_t>(gs));
      if (!ReferencePointInTile(rb, sb, shard.dedup_tile)) continue;
      pairs->push_back(ResultPair{gr, gs});
    }
    return Status::OK();
  };
}

}  // namespace

Result<DistReport> RunPlannedJoin(const Dataset& r, const Dataset& s,
                                  const ShardPlan& plan,
                                  const DistJoinOptions& options,
                                  JoinResult* result, JoinStats* stats,
                                  const ShardSink& sink,
                                  exec::CancellationToken cancel) {
  SWIFT_RETURN_IF_ERROR(ValidateOptions(options));
  if (result != nullptr) *result = JoinResult();

  // Coordinator wall clock (satellite: wall_seconds). Spans the whole run
  // -- cluster spin-up, merge loop, drain, join -- unlike the modelled
  // makespan, which only sums node work.
  Stopwatch wall;
  // The merge span parents every node shard span and commit span.
  obs::ScopedSpan merge_span(options.trace, "merge");

  DistReport report;
  report.grid_cols = plan.grid_cols;
  report.grid_rows = plan.grid_rows;
  report.shards = plan.shards.size();
  report.nodes = static_cast<std::size_t>(options.num_nodes);
  report.placement = plan.placement;
  report.replicated_objects = plan.replicated_objects;
  report.input_bytes = plan.input_bytes;
  report.node_stats.resize(report.nodes);
  report.link_stats.resize(report.nodes);
  if (plan.shards.empty()) {
    report.wall_seconds = wall.ElapsedSeconds();
    return report;
  }

  Exchange exchange(report.nodes, options.link, cancel, options.metrics);
  NodeOptions node_options;
  node_options.worker_threads =
      std::max<std::size_t>(1, options.node_worker_threads);
  node_options.trace = merge_span.context();
  node_options.metrics = options.metrics;
  ShardExecutor executor = options.use_accel
                               ? MakeAccelExecutor(r, s, options)
                               : MakeCpuExecutor(r, s, options.tile_join);
  Cluster cluster(report.nodes, node_options, &plan.shards, &exchange,
                  std::move(executor), options.chunk_pairs, options.fault,
                  cancel);

  // Initial placement.
  for (std::size_t i = 0; i < plan.shards.size(); ++i) {
    cluster.node(static_cast<std::size_t>(plan.owner[i]))
        .Enqueue(ShardRef{static_cast<int>(i), 0});
  }

  // --- Merge coordinator. ---
  // Concurrency note (checked by the thread-safety analysis by absence):
  // every piece of coordinator state below -- the committed[] set,
  // expected_attempt[], the per-shard chunk buffers, owner/load/alive
  // bookkeeping -- is function-local and touched only by this thread.
  // Nodes never share it; their results arrive as messages through the
  // Exchange (whose own queue is mutex-guarded), and the per-link FIFO
  // order makes the committed set exact at the moment a failure message is
  // processed. Single ownership, not locks, is the invariant here; keep it
  // that way rather than annotating this state into a lock hierarchy.
  const std::size_t num_shards = plan.shards.size();
  std::vector<uint64_t> expected_attempt(num_shards, 0);
  std::vector<bool> committed(num_shards, false);
  std::vector<std::vector<ResultPair>> buffer(num_shards);
  std::vector<int> owner = plan.owner;            // retries move shards
  std::vector<uint64_t> node_load = plan.node_cost;
  std::vector<bool> node_alive(report.nodes, true);
  std::size_t committed_count = 0;
  Status fatal;

  Message msg;
  while (committed_count < num_shards && fatal.ok() && exchange.Recv(&msg)) {
    const auto shard_index = static_cast<std::size_t>(std::max(0, msg.shard));
    switch (msg.kind) {
      case Message::Kind::kShardChunk: {
        if (committed[shard_index] ||
            msg.attempt != expected_attempt[shard_index]) {
          break;  // stale attempt: a failed node's orphaned transmission
        }
        auto& buf = buffer[shard_index];
        if (buf.empty()) {
          buf = std::move(msg.pairs);
        } else {
          buf.insert(buf.end(), msg.pairs.begin(), msg.pairs.end());
        }
        break;
      }
      case Message::Kind::kShardDone: {
        if (committed[shard_index] ||
            msg.attempt != expected_attempt[shard_index]) {
          break;
        }
        committed[shard_index] = true;
        ++committed_count;
        // Commit span: parented to the sending shard-attempt span through
        // the message's trace context, so the tree stays connected across
        // the node boundary. Covers the merge + sink delivery work.
        obs::ScopedSpan commit(msg.trace, "commit");
        commit.AddAttr("shard", std::to_string(plan.shards[shard_index].id));
        std::vector<ResultPair> pairs = std::move(buffer[shard_index]);
        report.num_results += pairs.size();
        if (result != nullptr) {
          auto& out = result->mutable_pairs();
          out.insert(out.end(), pairs.begin(), pairs.end());
        }
        if (sink && !pairs.empty()) {
          sink(plan.shards[shard_index].id, std::move(pairs));
        }
        break;
      }
      case Message::Kind::kNodeFailed: {
        const auto dead = static_cast<std::size_t>(msg.node);
        node_alive[dead] = false;
        ++report.failed_nodes;
        SWIFT_LOG(Warn, "dist", "cluster node failed; rerouting its uncommitted shards").With("node", msg.node).With("committed_shards", committed_count).With("total_shards", num_shards);
        // Re-execute every uncommitted shard the dead node owned --
        // including retries routed to it before this message arrived -- on
        // the least-loaded survivor. FIFO ordering guarantees the
        // committed[] set is exact at this point.
        for (std::size_t i = 0; i < num_shards && fatal.ok(); ++i) {
          if (committed[i] || owner[i] != msg.node) continue;
          buffer[i].clear();
          ++expected_attempt[i];
          std::size_t survivor = report.nodes;
          uint64_t best = std::numeric_limits<uint64_t>::max();
          for (std::size_t n = 0; n < report.nodes; ++n) {
            if (node_alive[n] && node_load[n] < best) {
              best = node_load[n];
              survivor = n;
            }
          }
          if (survivor == report.nodes) {
            SWIFT_LOG(Error, "dist", "every cluster node failed; aborting join").With("uncommitted_shard", plan.shards[i].id);
            fatal = Status::Internal(
                "every cluster node failed before shard " +
                std::to_string(plan.shards[i].id) + " committed");
            break;
          }
          owner[i] = static_cast<int>(survivor);
          node_load[survivor] += plan.shards[i].EstimatedCost();
          ++report.retried_shards;
          SWIFT_LOG(Info, "dist", "shard rerouted to survivor").With("shard", plan.shards[i].id).With("survivor", static_cast<uint64_t>(survivor)).With("attempt", expected_attempt[i]);
          cluster.node(survivor).Enqueue(
              ShardRef{static_cast<int>(i), expected_attempt[i]});
        }
        break;
      }
      case Message::Kind::kNodeDone:
        break;
    }
  }

  const bool was_cancelled = cancel.cancelled() || exchange.cancelled();
  if (fatal.ok() && !was_cancelled && committed_count < num_shards) {
    fatal = Status::Internal(
        "cluster retired with " +
        std::to_string(num_shards - committed_count) +
        " uncommitted shards");
  }

  // Shutdown: stop feeding nodes, unblock anything in flight, drain the
  // remaining terminal messages so node runtimes retire, then join.
  cluster.CloseAllInputs();
  if (!fatal.ok() || was_cancelled) {
    exchange.Cancel();
  }
  while (exchange.Recv(&msg)) {
  }
  cluster.JoinAll();

  for (std::size_t n = 0; n < report.nodes; ++n) {
    report.node_stats[n] = cluster.node(n).stats();
    report.link_stats[n] = exchange.link_stats(n);
    if (stats != nullptr) *stats += cluster.node(n).join_stats();
  }
  if (was_cancelled) {
    return Status::Aborted("distributed join cancelled mid-exchange");
  }
  if (!fatal.ok()) return fatal;

  double total_busy = 0;
  for (const NodeStats& ns : report.node_stats) {
    report.makespan_seconds = std::max(report.makespan_seconds,
                                       ns.busy_seconds);
    total_busy += ns.busy_seconds;
  }
  report.mean_busy_seconds = total_busy / static_cast<double>(report.nodes);
  report.straggler_gap = report.mean_busy_seconds > 0
                             ? report.makespan_seconds /
                                   report.mean_busy_seconds
                             : 0;
  report.exchange_payload_bytes = exchange.total_payload_bytes();
  report.exchange_messages = exchange.total_messages();
  report.exchange_modelled_seconds = exchange.max_link_seconds();
  report.wall_seconds = wall.ElapsedSeconds();

  // Export the run-level signals. Gauges reflect the latest run; counters
  // accumulate across runs.
  auto& metrics = options.metrics != nullptr ? *options.metrics
                                             : obs::MetricsRegistry::Global();
  metrics.GetGauge("swiftspatial_dist_wall_seconds", {}, "End-to-end coordinator wall seconds of the last distributed run")->Set(report.wall_seconds);
  metrics.GetGauge("swiftspatial_dist_makespan_seconds", {}, "Modelled makespan (max node busy seconds) of the last distributed run")->Set(report.makespan_seconds);
  metrics.GetGauge("swiftspatial_dist_straggler_gap", {}, "Makespan / mean node busy seconds of the last distributed run")->Set(report.straggler_gap);
  metrics.GetCounter("swiftspatial_dist_runs_total", {}, "Completed distributed joins")->Increment();
  metrics.GetCounter("swiftspatial_dist_failed_nodes_total", {}, "Node failures observed by the merge coordinator")->Increment(report.failed_nodes);
  metrics.GetCounter("swiftspatial_dist_retried_shards_total", {}, "Shard re-executions scheduled by fault recovery")->Increment(report.retried_shards);
  for (std::size_t n = 0; n < report.nodes; ++n) {
    metrics.GetGauge("swiftspatial_dist_node_busy_seconds", {{"node", std::to_string(n)}}, "Busy seconds per node in the last distributed run")->Set(report.node_stats[n].busy_seconds);
  }
  return report;
}

Result<DistReport> DistributedJoin(const Dataset& r, const Dataset& s,
                                   const DistJoinOptions& options,
                                   JoinResult* result, JoinStats* stats,
                                   const ShardSink& sink,
                                   exec::CancellationToken cancel) {
  SWIFT_RETURN_IF_ERROR(ValidateOptions(options));
  if (options.validate_inputs) {
    SWIFT_RETURN_IF_ERROR(r.ValidateBoxes());
    SWIFT_RETURN_IF_ERROR(s.ValidateBoxes());
  }
  auto plan = PlanShards(r, s, options.grid_cols, options.grid_rows,
                         options.num_nodes, options.placement);
  if (!plan.ok()) return plan.status();
  return RunPlannedJoin(r, s, *plan, options, result, stats, sink, cancel);
}

}  // namespace swiftspatial::dist
