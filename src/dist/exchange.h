// Exchange: the message-passing layer between cluster nodes and the merge
// coordinator. Each node owns one FIFO link to the coordinator -- a bounded
// queue (per-link backpressure: a node whose consumer lags blocks on *its
// own* link, never on another node's) with a bandwidth/latency cost model
// charged per message, so benches can report exchange bytes and modelled
// wire seconds alongside compute.
//
// The per-link FIFO order is the correctness backbone of fault recovery: a
// node sends result chunks, then per-shard completion markers, and -- on
// failure -- a final kNodeFailed, so by the time the coordinator processes
// the failure message it has already seen every result the node ever
// shipped, making "which shards committed before the crash" an exact set
// rather than a race.
#ifndef SWIFTSPATIAL_DIST_EXCHANGE_H_
#define SWIFTSPATIAL_DIST_EXCHANGE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/sync.h"
#include "exec/task_graph.h"
#include "join/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace swiftspatial::dist {

/// Per-link wire model. The defaults approximate one 10 GbE NIC per node.
struct LinkConfig {
  double bandwidth_bytes_per_sec = 1.25e9;
  double latency_seconds = 50e-6;
  /// Maximum buffered messages per link before Send blocks (backpressure).
  std::size_t queue_capacity = 64;
};

/// Accounting per link, stable once the link closes.
struct LinkStats {
  uint64_t messages = 0;
  uint64_t payload_bytes = 0;
  /// Modelled seconds on the wire: per-message latency + bytes / bandwidth.
  double modelled_seconds = 0;
  /// High-water mark of buffered messages (bounded by queue_capacity).
  std::size_t max_depth = 0;
  /// Times a Send found the link full and had to block (backpressure
  /// stalls; counted once per blocking Send, not per wakeup).
  uint64_t stalls = 0;
};

/// One message on a node -> coordinator link.
struct Message {
  enum class Kind {
    /// A batch of result pairs for (shard, attempt). A shard's chunks
    /// always precede its kShardDone on the link.
    kShardChunk,
    /// (shard, attempt) finished; every one of its chunks has been sent.
    /// The coordinator commits the shard on this marker.
    kShardDone,
    /// Terminal: the node retired cleanly. Closes the link.
    kNodeDone,
    /// Terminal: the node failed mid-join. Ordered after every message the
    /// node ever sent (see file comment). Closes the link.
    kNodeFailed,
  };

  Kind kind = Kind::kShardChunk;
  int node = 0;
  /// Index into the ShardPlan's shard array (not the stable Shard::id; the
  /// coordinator translates for sinks).
  int shard = -1;
  /// Re-execution attempt; the coordinator drops stale-attempt messages.
  uint64_t attempt = 0;
  std::vector<ResultPair> pairs;
  /// Trace context of the sending shard-attempt span (inactive when the
  /// run is untraced). The coordinator parents its commit spans here, so
  /// the span tree stays connected across the node boundary.
  obs::TraceContext trace;
};

/// N bounded FIFO links feeding one coordinator. Thread-safe: any node
/// thread may Send on its own link while the coordinator Recvs.
class Exchange {
 public:
  /// `cancel` is the external kill switch (e.g. a streaming consumer's
  /// Cancel): blocked Send/Recv calls observe it and return false.
  /// `metrics` feeds the swiftspatial_dist_exchange_* counters; nullptr
  /// selects obs::MetricsRegistry::Global().
  Exchange(std::size_t num_nodes, const LinkConfig& config,
           exec::CancellationToken cancel = {},
           obs::MetricsRegistry* metrics = nullptr);

  /// Enqueues `msg` on link msg.node, blocking while that link is full.
  /// Terminal messages (kNodeDone / kNodeFailed) close the link behind
  /// them. Returns false (dropping the message) once cancelled -- nodiscard
  /// because a dropped false is a silently lost message: callers must
  /// either stop producing or record why the loss is benign.
  [[nodiscard]] bool Send(Message msg) EXCLUDES(mu_);

  /// Pops the next message from any open link, scanning links round-robin
  /// for fairness. Blocks while all links are open but empty; returns false
  /// once cancelled, or when every link has closed and drained.
  [[nodiscard]] bool Recv(Message* out) EXCLUDES(mu_);

  /// Makes every blocked Send/Recv return false. Idempotent.
  void Cancel() EXCLUDES(mu_);
  bool cancelled() const EXCLUDES(mu_);

  std::size_t num_links() const { return num_links_; }
  LinkStats link_stats(std::size_t node) const EXCLUDES(mu_);
  /// Sums / maxima over links, for report aggregation.
  uint64_t total_payload_bytes() const EXCLUDES(mu_);
  uint64_t total_messages() const EXCLUDES(mu_);
  double max_link_seconds() const EXCLUDES(mu_);

 private:
  struct Link {
    std::deque<Message> queue;
    LinkStats stats;
    bool closed = false;
  };

  uint64_t MessageBytes(const Message& msg) const;

  const LinkConfig config_;
  exec::CancellationToken external_cancel_;
  // Pre-resolved process-wide counters (lock-free to bump).
  obs::Counter* const m_messages_;
  obs::Counter* const m_payload_bytes_;
  obs::Counter* const m_stalls_;
  /// Link count, fixed at construction (the lock-free num_links answer).
  const std::size_t num_links_;

  mutable Mutex mu_;
  CondVar cv_data_;   // coordinator: message or all-closed
  CondVar cv_space_;  // senders: space on their link
  std::vector<Link> links_ GUARDED_BY(mu_);
  std::size_t open_links_ GUARDED_BY(mu_);
  std::size_t next_link_ GUARDED_BY(mu_) = 0;  // round-robin scan position
  bool cancelled_ GUARDED_BY(mu_) = false;
};

}  // namespace swiftspatial::dist

#endif  // SWIFTSPATIAL_DIST_EXCHANGE_H_
