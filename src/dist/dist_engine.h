// The distributed cluster behind the unified JoinEngine interface: two
// engines registered in EngineRegistry::Global(), so the equivalence
// oracle, the streaming Collect-vs-sync oracle, benches, and JoinService
// reach the multi-node path by name.
//
//   dist-pbsm   N-node cluster, CPU tile joins per shard (the partitioned
//               driver's grid shards distributed over nodes).
//   dist-accel  each node fronts a simulated device: accel-pbsm-4x
//               generalised from the fixed 2x2 grid / 4 devices to N nodes
//               x M-unit devices over arbitrary shard placement.
//
// Plan runs the ShardPlanner (grid + placement); Execute spins the
// in-process cluster and merges. Beyond the JoinEngine contract the typed
// handle exposes ExecuteStreaming -- committed shards surface through a
// ShardSink as they merge, with a cancellation token that stops the cluster
// mid-exchange -- and last_report(), the DistReport of the most recent run.
#ifndef SWIFTSPATIAL_DIST_DIST_ENGINE_H_
#define SWIFTSPATIAL_DIST_DIST_ENGINE_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "dist/dist_join.h"
#include "join/engine.h"

namespace swiftspatial::dist {

/// JoinEngine extended with the cluster's streaming face and run report.
/// Lifecycle as JoinEngine: Plan once (shard planning + placement), then
/// Execute / ExecuteStreaming any number of times -- each run spins a fresh
/// cluster over the same immutable plan.
class DistJoinEngine : public JoinEngine {
 public:
  /// Like Execute, but hands each committed shard's pairs to `sink` as the
  /// merge coordinator commits it (stable shard ids; commit order).
  /// `cancel` stops the cluster mid-exchange: delivered shards remain a
  /// well-defined prefix and the call returns Aborted.
  virtual Status ExecuteStreaming(const ShardSink& sink, JoinStats* stats,
                                  exec::CancellationToken cancel) = 0;

  /// Report of the most recent Execute/ExecuteStreaming.
  const DistReport& last_report() const { return report_; }

  /// The immutable shard plan (valid after Plan).
  virtual const ShardPlan& plan() const = 0;

 protected:
  DistReport report_;
};

/// True for the engine names backed by the cluster runtime.
bool IsDistEngine(const std::string& name);

/// Data-independent config checks shared by Plan and the streaming layer's
/// fail-fast path.
Status ValidateDistConfig(const EngineConfig& config);

/// Instantiates one of the distributed engines directly -- the typed handle
/// (ExecuteStreaming, last_report) the plain registry interface erases.
/// NotFound for names IsDistEngine rejects.
Result<std::unique_ptr<DistJoinEngine>> MakeDistEngine(
    const std::string& name, const EngineConfig& config);

}  // namespace swiftspatial::dist

#endif  // SWIFTSPATIAL_DIST_DIST_ENGINE_H_
