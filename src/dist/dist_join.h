// Distributed spatial join over the in-process simulated cluster: the §6
// out-of-memory path with "device" replaced by "node", as the ROADMAP's
// multi-node item calls for.
//
//   dist::DistJoinOptions options;
//   options.num_nodes = 8;
//   options.placement = dist::PlacementPolicy::kCostBalanced;
//   JoinResult result;
//   auto report = dist::DistributedJoin(r, s, options, &result);
//
// Execution: PlanShards grids the join and places shards on nodes; each
// node joins its shards on its own worker budget (CPU tile joins, or one
// simulated accelerator per shard for the dist-accel flavour) and streams
// chunked results over its Exchange link; the merge coordinator commits a
// shard when its completion marker arrives, releasing the shard's pairs
// downstream in one piece. Cross-node dedup needs no merge-side predicate
// work: every node claims pairs through the shared CloseLastTile
// reference-point convention (Shard::dedup_tile), so committed shards are
// disjoint by construction and their union is exactly the global join.
//
// Fault handling: when a node fails mid-join (injected via FaultPlan, or an
// executor error), its kNodeFailed message -- FIFO-ordered after everything
// it ever sent -- tells the coordinator precisely which shards committed.
// Uncommitted shards are re-executed on the least-loaded survivor under a
// bumped attempt number; stale-attempt stragglers are dropped, partial
// buffers discarded. Shards already delivered downstream stay a well-defined
// prefix, and the final multiset is identical to a failure-free run.
#ifndef SWIFTSPATIAL_DIST_DIST_JOIN_H_
#define SWIFTSPATIAL_DIST_DIST_JOIN_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "datagen/dataset.h"
#include "dist/cluster.h"
#include "dist/exchange.h"
#include "dist/shard_planner.h"
#include "exec/task_graph.h"
#include "join/pbsm.h"
#include "join/result.h"

namespace swiftspatial::dist {

struct DistJoinOptions {
  int num_nodes = 4;
  PlacementPolicy placement = PlacementPolicy::kCostBalanced;
  /// Per-node worker budget (ThreadPool size).
  std::size_t node_worker_threads = 1;
  /// Shard grid; 0 = auto-size like PartitionedDriver.
  int grid_cols = 0;
  int grid_rows = 0;
  /// CPU tile-level join within each shard (dist-pbsm).
  TileJoin tile_join = TileJoin::kPlaneSweep;
  /// dist-accel: each shard runs on a simulated device fronted by its node
  /// (hierarchical sub-partition + device PBSM flow, reference-point dedup
  /// on the host side, exactly the hw/multi_device per-partition recipe).
  bool use_accel = false;
  /// Simulated join units per device (0 = the AcceleratorConfig default).
  int accel_join_units = 0;
  /// Hierarchical-partition tile cap inside each accel shard.
  int accel_tile_cap = 16;
  /// Wire model for the node -> coordinator links.
  LinkConfig link;
  /// Result pairs per exchange chunk message.
  std::size_t chunk_pairs = 4096;
  /// Failure injection (tests / the resilience bench row).
  FaultPlan fault;
  /// Reject NaN/inf/inverted boxes before planning.
  bool validate_inputs = true;
  /// Trace context for the coordinator's merge span (and, through it, the
  /// node shard spans and commit spans). Inactive = untraced run.
  obs::TraceContext trace;
  /// Metrics sink for the swiftspatial_dist_* series; nullptr selects
  /// obs::MetricsRegistry::Global().
  obs::MetricsRegistry* metrics = nullptr;
};

/// Everything a finished distributed run reports.
struct DistReport {
  int grid_cols = 0;
  int grid_rows = 0;
  std::size_t shards = 0;
  std::size_t nodes = 0;
  PlacementPolicy placement = PlacementPolicy::kCostBalanced;
  uint64_t num_results = 0;

  // Placement quality.
  std::size_t replicated_objects = 0;
  uint64_t input_bytes = 0;

  // Fault recovery.
  std::size_t failed_nodes = 0;
  std::size_t retried_shards = 0;

  // Load balance. Busy seconds sum per-shard execute wall on each node, so
  // makespan = max over nodes is a work-proportional cluster time estimate
  // that holds even when the host serialises the "concurrent" nodes.
  double makespan_seconds = 0;
  double mean_busy_seconds = 0;
  /// End-to-end coordinator wall clock for the run (cluster spin-up through
  /// merge completion), stamped by the coordinator. On a host that truly
  /// runs nodes in parallel this is what an operator experiences; comparing
  /// it against makespan_seconds (work-proportional model) bounds how much
  /// the single-host simulation serialises the cluster.
  double wall_seconds = 0;
  /// max node busy / mean node busy; 1.0 = perfectly balanced. The
  /// straggler gap the placement policies compete on.
  double straggler_gap = 0;

  // Exchange accounting.
  uint64_t exchange_payload_bytes = 0;
  uint64_t exchange_messages = 0;
  /// Modelled wire seconds of the busiest link.
  double exchange_modelled_seconds = 0;

  std::vector<NodeStats> node_stats;
  std::vector<LinkStats> link_stats;
};

/// Receives each committed shard's pairs, in commit order, identified by the
/// shard's stable id (Shard::id, the grid tile index). Called from the
/// coordinator thread only; delivered shards form a well-defined prefix of
/// the join under cancellation or failure.
using ShardSink = std::function<void(int shard_id,
                                     std::vector<ResultPair> pairs)>;

/// Runs a previously planned join on a fresh cluster. The plan is not
/// consumed (repeated runs are idempotent); `result`/`stats` may be null;
/// `sink` (when set) receives committed shards as they merge. Returns
/// Aborted when `cancel` fires mid-run, Internal when every node died.
Result<DistReport> RunPlannedJoin(const Dataset& r, const Dataset& s,
                                  const ShardPlan& plan,
                                  const DistJoinOptions& options,
                                  JoinResult* result, JoinStats* stats,
                                  const ShardSink& sink = nullptr,
                                  exec::CancellationToken cancel = {});

/// Plan + run in one call.
Result<DistReport> DistributedJoin(const Dataset& r, const Dataset& s,
                                   const DistJoinOptions& options,
                                   JoinResult* result,
                                   JoinStats* stats = nullptr,
                                   const ShardSink& sink = nullptr,
                                   exec::CancellationToken cancel = {});

}  // namespace swiftspatial::dist

#endif  // SWIFTSPATIAL_DIST_DIST_JOIN_H_
