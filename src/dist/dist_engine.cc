#include "dist/dist_engine.h"

#include <algorithm>
#include <utility>

#include "join/partitioned_driver.h"

namespace swiftspatial::dist {

namespace {

DistJoinOptions OptionsFromConfig(const EngineConfig& config,
                                  bool use_accel) {
  DistJoinOptions options;
  options.num_nodes = config.dist_nodes;
  options.placement = config.dist_placement;
  options.node_worker_threads =
      config.dist_node_threads > 0
          ? config.dist_node_threads
          : std::max<std::size_t>(
                1, config.num_threads /
                       static_cast<std::size_t>(
                           std::max(1, config.dist_nodes)));
  options.grid_cols = config.grid_cols;
  options.grid_rows = config.grid_rows;
  options.tile_join = config.tile_join;
  options.use_accel = use_accel;
  options.accel_join_units = config.accel_join_units;
  options.accel_tile_cap = config.accel_tile_cap;
  // The engine validates geometry once, at Plan.
  options.validate_inputs = false;
  options.trace = config.trace;
  return options;
}

// The cached artifact of distributed planning: the immutable ShardPlan plus
// the cluster options it was planned under. RunPlannedJoin spins a fresh
// cluster per call and never mutates the plan, so one cached ShardPlan
// serves concurrent warm executions.
class DistPreparedPlan : public PreparedPlan {
 public:
  using PreparedPlan::PreparedPlan;

  std::size_t MemoryBytes() const override {
    std::size_t bytes = shard_plan.shards.capacity() * sizeof(Shard) +
                        shard_plan.owner.capacity() * sizeof(int) +
                        shard_plan.node_cost.capacity() * sizeof(uint64_t);
    for (const Shard& shard : shard_plan.shards) {
      bytes +=
          (shard.r_ids.capacity() + shard.s_ids.capacity()) * sizeof(ObjectId);
    }
    return bytes;
  }

  DistJoinOptions options;
  ShardPlan shard_plan;
};

class DistEngineImpl : public DistJoinEngine {
 public:
  DistEngineImpl(std::string name, const EngineConfig& config, bool use_accel)
      : name_(std::move(name)), config_(config), use_accel_(use_accel) {}

  const std::string& name() const override { return name_; }

  Result<std::shared_ptr<const PreparedPlan>> Prepare(
      std::shared_ptr<const Dataset> r,
      std::shared_ptr<const Dataset> s) override {
    SWIFT_RETURN_IF_ERROR(ValidateDistConfig(config_));
    if (config_.validate_inputs) {
      SWIFT_RETURN_IF_ERROR(r->ValidateBoxes());
      SWIFT_RETURN_IF_ERROR(s->ValidateBoxes());
    }
    auto plan = std::make_shared<DistPreparedPlan>(name_, r, s);
    plan->options = OptionsFromConfig(config_, use_accel_);
    auto shard_plan =
        PlanShards(*r, *s, plan->options.grid_cols, plan->options.grid_rows,
                   plan->options.num_nodes, plan->options.placement);
    if (!shard_plan.ok()) return shard_plan.status();
    plan->shard_plan = std::move(*shard_plan);
    return std::shared_ptr<const PreparedPlan>(std::move(plan));
  }

  Status ExecutePrepared(const PreparedPlan& plan, JoinResult* out,
                         JoinStats* stats) override {
    if (out == nullptr) {
      return Status::InvalidArgument(
          "ExecutePrepared requires a non-null result");
    }
    if (plan.engine() != name_) {
      return Status::InvalidArgument("prepared plan belongs to engine \"" +
                                     plan.engine() + "\", not \"" + name_ +
                                     "\"");
    }
    const auto* typed = dynamic_cast<const DistPreparedPlan*>(&plan);
    if (typed == nullptr) {
      return Status::Internal("prepared plan type mismatch for engine " +
                              name_);
    }
    *out = JoinResult();
    // The cached options froze the PREPARING request's trace context; a
    // warm execution must carry its own, so override from this engine
    // instance's config (one engine instance per request).
    DistJoinOptions options = typed->options;
    options.trace = config_.trace;
    auto report = RunPlannedJoin(plan.r(), plan.s(), typed->shard_plan,
                                 options, out, stats);
    if (!report.ok()) return report.status();
    report_ = std::move(*report);
    return Status::OK();
  }

  Status Plan(const Dataset& r, const Dataset& s) override {
    SWIFT_RETURN_IF_ERROR(ValidateDistConfig(config_));
    if (config_.validate_inputs) {
      SWIFT_RETURN_IF_ERROR(r.ValidateBoxes());
      SWIFT_RETURN_IF_ERROR(s.ValidateBoxes());
    }
    options_ = OptionsFromConfig(config_, use_accel_);
    auto plan = PlanShards(r, s, options_.grid_cols, options_.grid_rows,
                           options_.num_nodes, options_.placement);
    if (!plan.ok()) return plan.status();
    plan_ = std::move(*plan);
    r_ = &r;
    s_ = &s;
    planned_ = true;
    return Status::OK();
  }

  Status Execute(JoinResult* out, JoinStats* stats) override {
    if (!planned_) {
      return Status::Internal("Execute called before a successful Plan");
    }
    if (out == nullptr) {
      return Status::InvalidArgument("Execute requires a non-null result");
    }
    *out = JoinResult();
    auto report = RunPlannedJoin(*r_, *s_, plan_, options_, out, stats);
    if (!report.ok()) return report.status();
    report_ = std::move(*report);
    return Status::OK();
  }

  Status ExecuteStreaming(const ShardSink& sink, JoinStats* stats,
                          exec::CancellationToken cancel) override {
    if (!planned_) {
      return Status::Internal(
          "ExecuteStreaming called before a successful Plan");
    }
    if (!sink) {
      return Status::InvalidArgument(
          "ExecuteStreaming requires a callable sink");
    }
    auto report = RunPlannedJoin(*r_, *s_, plan_, options_,
                                 /*result=*/nullptr, stats, sink,
                                 std::move(cancel));
    if (!report.ok()) return report.status();
    report_ = std::move(*report);
    return Status::OK();
  }

  const ShardPlan& plan() const override { return plan_; }

 private:
  std::string name_;
  EngineConfig config_;
  bool use_accel_;
  DistJoinOptions options_;
  ShardPlan plan_;
  const Dataset* r_ = nullptr;
  const Dataset* s_ = nullptr;
  bool planned_ = false;
};

}  // namespace

bool IsDistEngine(const std::string& name) {
  return name == kDistPbsmEngine || name == kDistAccelEngine;
}

Status ValidateDistConfig(const EngineConfig& config) {
  if (config.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (config.dist_nodes < 1) {
    return Status::InvalidArgument("dist_nodes must be >= 1");
  }
  SWIFT_RETURN_IF_ERROR(
      ValidateGridConfig(config.grid_cols, config.grid_rows));
  if (config.accel_join_units < 0) {
    return Status::InvalidArgument("accel_join_units must be >= 0");
  }
  if (config.accel_tile_cap < 1) {
    return Status::InvalidArgument("accel_tile_cap must be >= 1");
  }
  return Status::OK();
}

Result<std::unique_ptr<DistJoinEngine>> MakeDistEngine(
    const std::string& name, const EngineConfig& config) {
  if (name == kDistPbsmEngine) {
    return std::unique_ptr<DistJoinEngine>(std::make_unique<DistEngineImpl>(
        name, config, /*use_accel=*/false));
  }
  if (name == kDistAccelEngine) {
    return std::unique_ptr<DistJoinEngine>(std::make_unique<DistEngineImpl>(
        name, config, /*use_accel=*/true));
  }
  return Status::NotFound("not a distributed engine: " + name);
}

}  // namespace swiftspatial::dist
