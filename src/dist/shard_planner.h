// ShardPlanner: turns one spatial join into node-placed shards.
//
// Both inputs are sharded onto a uniform grid exactly as the single-machine
// PartitionedDriver does (multi-assignment, reference-point dedup tiles via
// UniformGrid::DedupTileByIndex), so a shard is the same unit the banded
// streaming planner and hw/multi_device already use -- here it becomes the
// unit of *distribution*. Each populated grid cell is one Shard carrying a
// stable id (its grid tile index: a pure function of the grid geometry, so a
// shard re-executed after a node failure reports the same id), its dedup
// tile, and the per-side object id lists. The planner then maps shards onto
// nodes under one of the PlacementPolicy strategies and accounts the
// boundary-object replicas that placement implies: an object whose MBR spans
// cells owned by k distinct nodes must be shipped to all k.
#ifndef SWIFTSPATIAL_DIST_SHARD_PLANNER_H_
#define SWIFTSPATIAL_DIST_SHARD_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "datagen/dataset.h"
#include "dist/placement.h"
#include "geometry/box.h"

namespace swiftspatial::dist {

/// One distributable unit of join work: a populated grid cell.
struct Shard {
  /// Stable identity: the owning grid tile index (row-major). Deterministic
  /// under re-planning and re-execution -- the fault-recovery dedup key.
  int id = 0;
  /// Reference-point dedup tile (grid cell closed at the global extent max
  /// per the CloseLastTile convention), identical to the single-machine
  /// drivers' so cross-node dedup agrees with every other engine.
  Box dedup_tile;
  std::vector<ObjectId> r_ids;
  std::vector<ObjectId> s_ids;

  /// Estimated tile-pair work, the cost-balancing unit.
  uint64_t EstimatedCost() const {
    return static_cast<uint64_t>(r_ids.size()) *
           static_cast<uint64_t>(s_ids.size());
  }
};

/// A placed shard plan: which node owns which shard, plus the replication
/// bill the placement implies.
struct ShardPlan {
  int grid_cols = 0;
  int grid_rows = 0;
  PlacementPolicy placement = PlacementPolicy::kCostBalanced;
  std::vector<Shard> shards;
  /// owner[i] = node index executing shards[i] (initial assignment; fault
  /// recovery may move a shard to a survivor at run time).
  std::vector<int> owner;
  /// Estimated per-node load (sum of EstimatedCost over owned shards).
  std::vector<uint64_t> node_cost;
  /// Boundary-object replicas: sum over objects of (distinct owner nodes
  /// the object's cells map to) - 1. Zero when every object's cells land on
  /// one node.
  std::size_t replicated_objects = 0;
  /// Modelled bytes to ship shard inputs to their nodes: every (object,
  /// node) placement pairs costs one box + id; replicas are what placement
  /// policy can reduce.
  uint64_t input_bytes = 0;
};

/// Plans `num_nodes`-way placement of the (r, s) join. Grid dimensions of 0
/// auto-size exactly like PartitionedDriver (AutoGridSide over the combined
/// cardinality). Fails with InvalidArgument on bad grid dimensions or
/// num_nodes < 1. Empty inputs yield an empty plan.
Result<ShardPlan> PlanShards(const Dataset& r, const Dataset& s,
                             int grid_cols, int grid_rows, int num_nodes,
                             PlacementPolicy placement);

}  // namespace swiftspatial::dist

#endif  // SWIFTSPATIAL_DIST_SHARD_PLANNER_H_
