#include "dist/shard_planner.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "geometry/hilbert.h"
#include "grid/uniform_grid.h"
#include "join/partitioned_driver.h"

namespace swiftspatial::dist {

const char* PlacementPolicyToString(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kRoundRobin:
      return "round-robin";
    case PlacementPolicy::kCostBalanced:
      return "cost-balanced";
    case PlacementPolicy::kLocality:
      return "locality";
  }
  return "unknown";
}

namespace {

/// Bytes to ship one placed object: its box plus its id.
constexpr uint64_t kObjectBytes = sizeof(Box) + sizeof(ObjectId);

// Assigns shards[i] -> owner[i] per the policy. Shards arrive in grid
// (row-major) order.
void Place(const std::vector<Shard>& shards, int num_nodes,
           PlacementPolicy placement, int grid_cols, int grid_rows,
           std::vector<int>* owner, std::vector<uint64_t>* node_cost) {
  owner->assign(shards.size(), 0);
  node_cost->assign(static_cast<std::size_t>(num_nodes), 0);
  if (shards.empty()) return;

  switch (placement) {
    case PlacementPolicy::kRoundRobin: {
      for (std::size_t i = 0; i < shards.size(); ++i) {
        (*owner)[i] = static_cast<int>(i % num_nodes);
        (*node_cost)[i % num_nodes] += shards[i].EstimatedCost();
      }
      break;
    }
    case PlacementPolicy::kCostBalanced: {
      // LPT greedy: heaviest shard first onto the least-loaded node. Ties
      // break on shard id / node index for determinism.
      std::vector<std::size_t> order(shards.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  const uint64_t ca = shards[a].EstimatedCost();
                  const uint64_t cb = shards[b].EstimatedCost();
                  if (ca != cb) return ca > cb;
                  return shards[a].id < shards[b].id;
                });
      for (std::size_t i : order) {
        std::size_t best = 0;
        for (std::size_t n = 1; n < node_cost->size(); ++n) {
          if ((*node_cost)[n] < (*node_cost)[best]) best = n;
        }
        (*owner)[i] = static_cast<int>(best);
        (*node_cost)[best] += shards[i].EstimatedCost();
      }
      break;
    }
    case PlacementPolicy::kLocality: {
      // Order shards along the Hilbert curve of their grid cells, then cut
      // the sequence into num_nodes contiguous runs of ~equal cumulative
      // cost: compact per-node regions, cost-aware boundaries.
      uint32_t order_bits = 1;
      while ((1 << order_bits) < std::max(grid_cols, grid_rows)) ++order_bits;
      std::vector<std::size_t> order(shards.size());
      std::iota(order.begin(), order.end(), 0);
      std::vector<uint64_t> hilbert(shards.size());
      for (std::size_t i = 0; i < shards.size(); ++i) {
        const int tx = shards[i].id % grid_cols;
        const int ty = shards[i].id / grid_cols;
        hilbert[i] = HilbertD2XYInverse(order_bits,
                                        static_cast<uint32_t>(tx),
                                        static_cast<uint32_t>(ty));
      }
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  if (hilbert[a] != hilbert[b]) return hilbert[a] < hilbert[b];
                  return shards[a].id < shards[b].id;
                });
      uint64_t total = 0;
      for (const Shard& s : shards) total += s.EstimatedCost();
      // Cut after a run's cumulative cost reaches its fair share; every
      // node keeps at least the chance of one shard.
      uint64_t cum = 0;
      int node = 0;
      for (std::size_t k = 0; k < order.size(); ++k) {
        const std::size_t i = order[k];
        (*owner)[i] = node;
        (*node_cost)[static_cast<std::size_t>(node)] +=
            shards[i].EstimatedCost();
        cum += shards[i].EstimatedCost();
        const uint64_t fair =
            total * static_cast<uint64_t>(node + 1) /
            static_cast<uint64_t>(num_nodes);
        if (cum >= fair && node + 1 < num_nodes) ++node;
      }
      break;
    }
  }
}

// Counts boundary-object replicas and the input-shipping bill for one side:
// each object is shipped once per distinct node its populated cells map to.
// An object's node set is tiny (its MBR spans few cells), so a per-object
// unsorted list dedup beats any set structure.
void AccountReplicas(const std::vector<Shard>& shards,
                     const std::vector<int>& owner, std::size_t num_objects,
                     bool r_side, ShardPlan* plan) {
  std::vector<std::vector<int>> nodes_of(num_objects);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const int node = owner[i];
    for (ObjectId id : r_side ? shards[i].r_ids : shards[i].s_ids) {
      auto& nodes = nodes_of[static_cast<std::size_t>(id)];
      if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
        nodes.push_back(node);
      }
    }
  }
  for (const auto& nodes : nodes_of) {
    if (nodes.size() > 1) plan->replicated_objects += nodes.size() - 1;
    plan->input_bytes += static_cast<uint64_t>(nodes.size()) * kObjectBytes;
  }
}

}  // namespace

Result<ShardPlan> PlanShards(const Dataset& r, const Dataset& s,
                             int grid_cols, int grid_rows, int num_nodes,
                             PlacementPolicy placement) {
  if (num_nodes < 1) {
    return Status::InvalidArgument("num_nodes must be >= 1");
  }
  SWIFT_RETURN_IF_ERROR(ValidateGridConfig(grid_cols, grid_rows));

  ShardPlan plan;
  plan.placement = placement;
  plan.node_cost.assign(static_cast<std::size_t>(num_nodes), 0);
  if (r.empty() || s.empty()) return plan;

  // One shared grid decision (DeriveJoinGrid) keeps shard ids -- grid tile
  // indexes -- stable across the single-machine drivers and this planner.
  const JoinGridSpec spec = DeriveJoinGrid(r, s, grid_cols, grid_rows);
  if (!spec.has_grid) return plan;
  const int cols = spec.cols;
  const int rows = spec.rows;
  plan.grid_cols = cols;
  plan.grid_rows = rows;

  const UniformGrid grid(spec.extent, cols, rows);
  auto r_assign = grid.Assign(r);
  auto s_assign = grid.Assign(s);

  for (int t = 0; t < grid.num_tiles(); ++t) {
    if (r_assign[t].empty() || s_assign[t].empty()) continue;
    Shard shard;
    shard.id = t;
    shard.dedup_tile = grid.DedupTileByIndex(t);
    shard.r_ids = std::move(r_assign[t]);
    shard.s_ids = std::move(s_assign[t]);
    plan.shards.push_back(std::move(shard));
  }

  Place(plan.shards, num_nodes, placement, cols, rows, &plan.owner,
        &plan.node_cost);

  AccountReplicas(plan.shards, plan.owner, r.size(), /*r_side=*/true, &plan);
  AccountReplicas(plan.shards, plan.owner, s.size(), /*r_side=*/false, &plan);
  return plan;
}

}  // namespace swiftspatial::dist
