// Shard-placement policies for the distributed join subsystem (src/dist/).
// Kept in a dependency-free header so join/engine.h can expose the knob in
// EngineConfig without pulling the cluster runtime into every engine user.
//
// SOLAR and Tsitsigkos et al. both find that shard *placement* -- not the
// per-shard join -- dominates distributed spatial-join cost once data is
// skewed, so the policy is a first-class, measurable choice
// (bench/fig_dist_scalability sweeps all three).
#ifndef SWIFTSPATIAL_DIST_PLACEMENT_H_
#define SWIFTSPATIAL_DIST_PLACEMENT_H_

namespace swiftspatial::dist {

/// How the ShardPlanner maps grid shards onto cluster nodes.
enum class PlacementPolicy {
  /// Shard i goes to node i mod N, in grid (row-major) order. The naive
  /// baseline: ignores both shard cost and spatial locality.
  kRoundRobin,
  /// Longest-processing-time greedy: shards sorted by estimated tile-pair
  /// work (|R_shard| * |S_shard|), each assigned to the least-loaded node.
  /// Best load balance; scatters neighbouring shards across nodes, so
  /// boundary objects replicate to more nodes.
  kCostBalanced,
  /// Hilbert-clustered: shards ordered along the Hilbert curve of their
  /// grid cells, then cut into N contiguous runs of roughly equal
  /// estimated cost. Each node owns one compact spatial region, minimising
  /// boundary-object replication while staying cost-aware.
  kLocality,
};

const char* PlacementPolicyToString(PlacementPolicy p);

}  // namespace swiftspatial::dist

#endif  // SWIFTSPATIAL_DIST_PLACEMENT_H_
