#include "dist/cluster.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace swiftspatial::dist {

namespace {
obs::MetricsRegistry& ResolveMetrics(const NodeOptions& options) {
  return options.metrics != nullptr ? *options.metrics
                                    : obs::MetricsRegistry::Global();
}
}  // namespace

Node::Node(int id, const NodeOptions& options,
           const std::vector<Shard>* shards, Exchange* exchange,
           ShardExecutor executor, std::size_t chunk_pairs,
           const FaultPlan& fault, exec::CancellationToken cancel)
    : id_(id),
      shards_(shards),
      exchange_(exchange),
      executor_(std::move(executor)),
      chunk_pairs_(std::max<std::size_t>(1, chunk_pairs)),
      fault_injected_(fault.fail_node == id),
      fail_after_(fault.fail_after_shards),
      cancel_(std::move(cancel)),
      trace_(options.trace),
      m_shard_seconds_(ResolveMetrics(options).GetHistogram("swiftspatial_dist_shard_run_seconds", {}, {}, "Per-shard execute wall seconds across cluster nodes")),
      m_shards_executed_(ResolveMetrics(options).GetCounter("swiftspatial_dist_shards_executed_total", {}, "Shards whose results a node shipped completely")),
      m_shards_retried_(ResolveMetrics(options).GetCounter("swiftspatial_dist_shards_retried_total", {}, "Committed shards that were fault-recovery retries")),
      pool_(std::max<std::size_t>(1, options.worker_threads)),
      runtime_([this] { RuntimeLoop(); }) {}

Node::~Node() {
  CloseInput();
  Join();
}

void Node::Enqueue(ShardRef ref) {
  {
    MutexLock lock(&mu_);
    if (input_closed_) return;
    commands_.push_back(ref);
  }
  cv_cmd_.NotifyOne();
}

void Node::CloseInput() {
  {
    MutexLock lock(&mu_);
    input_closed_ = true;
  }
  cv_cmd_.NotifyAll();
}

void Node::Join() {
  // call_once rather than a guarded bool: every concurrent caller must
  // block until the one performing runtime_.join() finishes, and none may
  // join the thread twice. The old `if (joined_) return;` fast path did
  // neither when JoinAll raced ~Node.
  std::call_once(join_once_, [this] { runtime_.join(); });
}

NodeStats Node::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

JoinStats Node::join_stats() const {
  MutexLock lock(&mu_);
  return join_stats_;
}

void Node::RuntimeLoop() {
  for (;;) {
    ShardRef ref;
    {
      MutexLock lock(&mu_);
      while (!input_closed_ && !failed_ && commands_.empty()) {
        cv_cmd_.Wait(&mu_);
      }
      // A failed node stops accepting work immediately: the coordinator
      // needs its kNodeFailed promptly to start re-executing shards on
      // survivors -- waiting for CloseInput here would deadlock the run.
      if (failed_) break;
      if (commands_.empty()) break;  // input closed and drained
      ref = commands_.front();
      commands_.pop_front();
    }
    pool_.Submit([this, ref] { RunShard(ref); });
  }
  // Every in-flight shard finishes its sends before the terminal message,
  // preserving the Exchange FIFO invariant fault recovery depends on.
  pool_.Wait();
  Message terminal;
  terminal.node = id_;
  {
    MutexLock lock(&mu_);
    terminal.kind = failed_ ? Message::Kind::kNodeFailed
                            : Message::Kind::kNodeDone;
  }
  if (!exchange_->Send(std::move(terminal))) {
    // Cancelled: the coordinator stopped receiving, so the lost terminal
    // cannot strand it -- nothing more to do on this node.
    return;
  }
}

void Node::RunShard(ShardRef ref) {
  if (cancel_.cancelled() || exchange_->cancelled()) return;
  {
    MutexLock lock(&mu_);
    if (failed_) return;  // dead nodes drop queued work silently
  }
  const Shard& shard = (*shards_)[static_cast<std::size_t>(ref.shard_index)];

  // One span per shard-attempt, on this node's track; its context rides
  // the outgoing messages so the coordinator's commit span links back.
  obs::ScopedSpan span;
  if (trace_.active()) {
    span = obs::ScopedSpan(trace_, "shard", id_ + 1);
    span.AddAttr("shard", std::to_string(shard.id));
    span.AddAttr("attempt", std::to_string(ref.attempt));
    span.AddAttr("node", std::to_string(id_));
  }

  Stopwatch sw;
  std::vector<ResultPair> pairs;
  JoinStats stats;
  double device_seconds = 0;
  const Status st = executor_(shard, &pairs, &stats, &device_seconds);
  const double seconds = sw.ElapsedSeconds();
  m_shard_seconds_->Observe(seconds);

  bool die_mid_transmission = false;
  bool executor_crashed = false;
  {
    MutexLock lock(&mu_);
    join_stats_ += stats;
    stats_.busy_seconds += seconds;
    stats_.device_seconds += device_seconds;
    if (failed_) return;  // a concurrent shard already killed the node
    if (!st.ok()) {
      // Executor error: node-crash semantics, results dropped; the
      // coordinator re-executes the shard on a survivor.
      failed_ = true;
      stats_.failed = true;
      executor_crashed = true;
    } else if (fault_injected_ && stats_.shards_executed >= fail_after_) {
      // Injected failure: this shard dies mid-transmission below.
      failed_ = true;
      stats_.failed = true;
      die_mid_transmission = true;
    } else {
      stats_.shards_executed += 1;
      if (ref.attempt > 0) stats_.shards_retried += 1;
      stats_.pairs_emitted += pairs.size();
    }
  }
  if (executor_crashed) {
    span.AddAttr("outcome", "executor_error");
    cv_cmd_.NotifyAll();  // wake the runtime loop to emit kNodeFailed
    return;
  }
  if (!die_mid_transmission) {
    m_shards_executed_->Increment();
    if (ref.attempt > 0) m_shards_retried_->Increment();
  }
  const obs::TraceContext msg_trace = span.context();

  // Ship result chunks, then the completion marker. A node dying
  // mid-transmission sends at most its first chunk and never the marker:
  // the coordinator is left with a partial, uncommitted buffer to discard.
  std::size_t off = 0;
  while (off < pairs.size()) {
    const std::size_t end = std::min(off + chunk_pairs_, pairs.size());
    Message msg;
    msg.kind = Message::Kind::kShardChunk;
    msg.node = id_;
    msg.shard = ref.shard_index;
    msg.attempt = ref.attempt;
    msg.pairs.assign(pairs.begin() + off, pairs.begin() + end);
    msg.trace = msg_trace;
    if (!exchange_->Send(std::move(msg))) return;  // cancelled
    off = end;
    if (die_mid_transmission) break;  // crash after the first chunk
  }
  if (die_mid_transmission) {
    span.AddAttr("outcome", "failed_mid_transmission");
    cv_cmd_.NotifyAll();
    return;
  }
  Message done;
  done.kind = Message::Kind::kShardDone;
  done.node = id_;
  done.shard = ref.shard_index;
  done.attempt = ref.attempt;
  done.trace = msg_trace;
  if (!exchange_->Send(std::move(done))) {
    // Cancelled: the shard stays uncommitted at the coordinator, which is
    // the correct outcome for a cancelled run (commit markers must never
    // be assumed delivered past a cancellation).
    return;
  }
}

Cluster::Cluster(std::size_t num_nodes, const NodeOptions& node_options,
                 const std::vector<Shard>* shards, Exchange* exchange,
                 ShardExecutor executor, std::size_t chunk_pairs,
                 const FaultPlan& fault, exec::CancellationToken cancel) {
  SWIFT_CHECK_GE(num_nodes, 1u);
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(
        static_cast<int>(i), node_options, shards, exchange, executor,
        chunk_pairs, fault, cancel));
  }
}

void Cluster::CloseAllInputs() {
  for (auto& node : nodes_) node->CloseInput();
}

void Cluster::JoinAll() {
  for (auto& node : nodes_) node->Join();
}

}  // namespace swiftspatial::dist
