#include "dist/cluster.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace swiftspatial::dist {

Node::Node(int id, const NodeOptions& options,
           const std::vector<Shard>* shards, Exchange* exchange,
           ShardExecutor executor, std::size_t chunk_pairs,
           const FaultPlan& fault, exec::CancellationToken cancel)
    : id_(id),
      shards_(shards),
      exchange_(exchange),
      executor_(std::move(executor)),
      chunk_pairs_(std::max<std::size_t>(1, chunk_pairs)),
      fault_injected_(fault.fail_node == id),
      fail_after_(fault.fail_after_shards),
      cancel_(std::move(cancel)),
      pool_(std::max<std::size_t>(1, options.worker_threads)),
      runtime_([this] { RuntimeLoop(); }) {}

Node::~Node() {
  CloseInput();
  Join();
}

void Node::Enqueue(ShardRef ref) {
  {
    MutexLock lock(&mu_);
    if (input_closed_) return;
    commands_.push_back(ref);
  }
  cv_cmd_.NotifyOne();
}

void Node::CloseInput() {
  {
    MutexLock lock(&mu_);
    input_closed_ = true;
  }
  cv_cmd_.NotifyAll();
}

void Node::Join() {
  // call_once rather than a guarded bool: every concurrent caller must
  // block until the one performing runtime_.join() finishes, and none may
  // join the thread twice. The old `if (joined_) return;` fast path did
  // neither when JoinAll raced ~Node.
  std::call_once(join_once_, [this] { runtime_.join(); });
}

NodeStats Node::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

JoinStats Node::join_stats() const {
  MutexLock lock(&mu_);
  return join_stats_;
}

void Node::RuntimeLoop() {
  for (;;) {
    ShardRef ref;
    {
      MutexLock lock(&mu_);
      while (!input_closed_ && !failed_ && commands_.empty()) {
        cv_cmd_.Wait(&mu_);
      }
      // A failed node stops accepting work immediately: the coordinator
      // needs its kNodeFailed promptly to start re-executing shards on
      // survivors -- waiting for CloseInput here would deadlock the run.
      if (failed_) break;
      if (commands_.empty()) break;  // input closed and drained
      ref = commands_.front();
      commands_.pop_front();
    }
    pool_.Submit([this, ref] { RunShard(ref); });
  }
  // Every in-flight shard finishes its sends before the terminal message,
  // preserving the Exchange FIFO invariant fault recovery depends on.
  pool_.Wait();
  Message terminal;
  terminal.node = id_;
  {
    MutexLock lock(&mu_);
    terminal.kind = failed_ ? Message::Kind::kNodeFailed
                            : Message::Kind::kNodeDone;
  }
  exchange_->Send(std::move(terminal));  // false only when cancelled
}

void Node::RunShard(ShardRef ref) {
  if (cancel_.cancelled() || exchange_->cancelled()) return;
  {
    MutexLock lock(&mu_);
    if (failed_) return;  // dead nodes drop queued work silently
  }
  const Shard& shard = (*shards_)[static_cast<std::size_t>(ref.shard_index)];

  Stopwatch sw;
  std::vector<ResultPair> pairs;
  JoinStats stats;
  double device_seconds = 0;
  const Status st = executor_(shard, &pairs, &stats, &device_seconds);
  const double seconds = sw.ElapsedSeconds();

  bool die_mid_transmission = false;
  bool executor_crashed = false;
  {
    MutexLock lock(&mu_);
    join_stats_ += stats;
    stats_.busy_seconds += seconds;
    stats_.device_seconds += device_seconds;
    if (failed_) return;  // a concurrent shard already killed the node
    if (!st.ok()) {
      // Executor error: node-crash semantics, results dropped; the
      // coordinator re-executes the shard on a survivor.
      failed_ = true;
      stats_.failed = true;
      executor_crashed = true;
    } else if (fault_injected_ && stats_.shards_executed >= fail_after_) {
      // Injected failure: this shard dies mid-transmission below.
      failed_ = true;
      stats_.failed = true;
      die_mid_transmission = true;
    } else {
      stats_.shards_executed += 1;
      if (ref.attempt > 0) stats_.shards_retried += 1;
      stats_.pairs_emitted += pairs.size();
    }
  }
  if (executor_crashed) {
    cv_cmd_.NotifyAll();  // wake the runtime loop to emit kNodeFailed
    return;
  }

  // Ship result chunks, then the completion marker. A node dying
  // mid-transmission sends at most its first chunk and never the marker:
  // the coordinator is left with a partial, uncommitted buffer to discard.
  std::size_t off = 0;
  while (off < pairs.size()) {
    const std::size_t end = std::min(off + chunk_pairs_, pairs.size());
    Message msg;
    msg.kind = Message::Kind::kShardChunk;
    msg.node = id_;
    msg.shard = ref.shard_index;
    msg.attempt = ref.attempt;
    msg.pairs.assign(pairs.begin() + off, pairs.begin() + end);
    if (!exchange_->Send(std::move(msg))) return;  // cancelled
    off = end;
    if (die_mid_transmission) break;  // crash after the first chunk
  }
  if (die_mid_transmission) {
    cv_cmd_.NotifyAll();
    return;
  }
  Message done;
  done.kind = Message::Kind::kShardDone;
  done.node = id_;
  done.shard = ref.shard_index;
  done.attempt = ref.attempt;
  exchange_->Send(std::move(done));
}

Cluster::Cluster(std::size_t num_nodes, const NodeOptions& node_options,
                 const std::vector<Shard>* shards, Exchange* exchange,
                 ShardExecutor executor, std::size_t chunk_pairs,
                 const FaultPlan& fault, exec::CancellationToken cancel) {
  SWIFT_CHECK_GE(num_nodes, 1u);
  nodes_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(
        static_cast<int>(i), node_options, shards, exchange, executor,
        chunk_pairs, fault, cancel));
  }
}

void Cluster::CloseAllInputs() {
  for (auto& node : nodes_) node->CloseInput();
}

void Cluster::JoinAll() {
  for (auto& node : nodes_) node->Join();
}

}  // namespace swiftspatial::dist
