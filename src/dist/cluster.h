// The in-process simulated cluster runtime: N dist::Nodes, each owning a
// worker budget (its own ThreadPool slice) and one Exchange link to the
// merge coordinator.
//
// A Node is driven by shard assignments (ShardRef = plan index + attempt)
// arriving on its command queue -- the initial placement up front, fault-
// recovery retries later. Its runtime thread fans each assignment out to
// the node pool, so a node joins as many shards concurrently as it has
// workers; every shard's result ships over the node's link as bounded
// chunk messages followed by a completion marker.
//
// Failure model (test/bench hook): a node configured to fail after K
// completed shards sends the *first* chunk of its (K+1)-th shard and then
// goes silent -- the partial transmission a real crash leaves behind --
// finally emitting kNodeFailed once its in-flight tasks have drained, so
// the failure message is ordered after everything the node ever sent
// (the Exchange FIFO invariant fault recovery relies on).
#ifndef SWIFTSPATIAL_DIST_CLUSTER_H_
#define SWIFTSPATIAL_DIST_CLUSTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>  // std::once_flag / std::call_once (not a banned primitive)
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "dist/exchange.h"
#include "dist/shard_planner.h"
#include "exec/task_graph.h"
#include "join/result.h"

namespace swiftspatial::dist {

/// One shard assignment on a node's command queue.
struct ShardRef {
  int shard_index = 0;  // index into the ShardPlan's shard array
  uint64_t attempt = 0;
};

struct NodeOptions {
  /// The node's worker budget: its private ThreadPool size.
  std::size_t worker_threads = 1;
  /// Trace context for shard-attempt spans (typically the coordinator's
  /// merge span); inactive = untraced. Shard spans land on track id+1.
  obs::TraceContext trace;
  /// Metrics sink for the swiftspatial_dist_shard* series; nullptr selects
  /// obs::MetricsRegistry::Global().
  obs::MetricsRegistry* metrics = nullptr;
};

/// Failure injection for fault-recovery tests and the resilience bench.
struct FaultPlan {
  /// Node index that fails, or -1 for a failure-free run.
  int fail_node = -1;
  /// The node completes this many shards, then dies mid-transmission of the
  /// next one.
  std::size_t fail_after_shards = 0;
};

/// Per-node outcome accounting.
struct NodeStats {
  /// Shards whose results this node shipped completely (committed work).
  std::size_t shards_executed = 0;
  /// Of those, how many were fault-recovery retries (attempt > 0).
  std::size_t shards_retried = 0;
  uint64_t pairs_emitted = 0;
  /// Sum of per-shard execute wall seconds -- the node's busy time, the
  /// makespan/straggler unit (max over nodes = modelled cluster makespan,
  /// valid on any host because it sums work rather than timing overlap).
  double busy_seconds = 0;
  /// dist-accel: modelled simulated-device seconds (kernel + transfer).
  double device_seconds = 0;
  bool failed = false;
};

/// Joins one shard, appending the shard's deduplicated global-id pairs.
/// `device_seconds` accumulates modelled accelerator time (0 for CPU
/// execution). Must be thread-safe across concurrent shards.
using ShardExecutor =
    std::function<Status(const Shard& shard, std::vector<ResultPair>* pairs,
                         JoinStats* stats, double* device_seconds)>;

/// One cluster node. Construction starts the runtime thread; Enqueue feeds
/// assignments; CloseInput ends the stream; Join waits for retirement (the
/// node sends its terminal message and closes its link on the way out).
class Node {
 public:
  Node(int id, const NodeOptions& options, const std::vector<Shard>* shards,
       Exchange* exchange, ShardExecutor executor, std::size_t chunk_pairs,
       const FaultPlan& fault, exec::CancellationToken cancel);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Thread-safe; no-op after CloseInput.
  void Enqueue(ShardRef ref) EXCLUDES(mu_);
  void CloseInput() EXCLUDES(mu_);
  /// Blocks until the runtime thread has retired. Idempotent and safe to
  /// call concurrently (e.g. Cluster::JoinAll racing ~Node): exactly one
  /// caller performs the underlying thread join, the rest wait on it.
  void Join();

  int id() const { return id_; }
  NodeStats stats() const EXCLUDES(mu_);
  /// Work counters from every shard this node executed (including attempts
  /// whose results were dropped by failure injection -- work happened).
  JoinStats join_stats() const EXCLUDES(mu_);

 private:
  void RuntimeLoop() EXCLUDES(mu_);
  void RunShard(ShardRef ref) EXCLUDES(mu_);

  const int id_;
  const std::vector<Shard>* shards_;
  Exchange* exchange_;
  const ShardExecutor executor_;
  const std::size_t chunk_pairs_;
  const bool fault_injected_;
  const std::size_t fail_after_;
  exec::CancellationToken cancel_;
  const obs::TraceContext trace_;
  // Pre-resolved metric handles (lock-free to update).
  obs::Histogram* const m_shard_seconds_;
  obs::Counter* const m_shards_executed_;
  obs::Counter* const m_shards_retried_;

  ThreadPool pool_;

  mutable Mutex mu_;
  CondVar cv_cmd_;
  std::deque<ShardRef> commands_ GUARDED_BY(mu_);
  bool input_closed_ GUARDED_BY(mu_) = false;
  bool failed_ GUARDED_BY(mu_) = false;
  NodeStats stats_ GUARDED_BY(mu_);
  JoinStats join_stats_ GUARDED_BY(mu_);

  std::thread runtime_;
  /// Serializes the runtime_.join() so concurrent Join() calls (JoinAll
  /// racing ~Node) cannot double-join or return before retirement. A plain
  /// guarded flag is not enough: the "already joined" fast path would have
  /// to read it without blocking on the slow path's join.
  std::once_flag join_once_;
};

/// Owns the node set over one shared Exchange. The merge coordinator keeps
/// running the show: it assigns shards (initial placement + retries), and
/// closes inputs once every shard has committed.
class Cluster {
 public:
  Cluster(std::size_t num_nodes, const NodeOptions& node_options,
          const std::vector<Shard>* shards, Exchange* exchange,
          ShardExecutor executor, std::size_t chunk_pairs,
          const FaultPlan& fault, exec::CancellationToken cancel);

  std::size_t num_nodes() const { return nodes_.size(); }
  Node& node(std::size_t i) { return *nodes_[i]; }

  void CloseAllInputs();
  void JoinAll();

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace swiftspatial::dist

#endif  // SWIFTSPATIAL_DIST_CLUSTER_H_
