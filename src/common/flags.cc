#include "common/flags.h"

#include <cstdlib>
#include <cstring>

namespace swiftspatial {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) continue;
    std::string body(arg + 2);
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      flags.values_[body] = "true";
    } else {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
  return flags;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second;
}

}  // namespace swiftspatial
