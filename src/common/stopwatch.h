// Wall-clock timing helper used by all benchmark harnesses.
#ifndef SWIFTSPATIAL_COMMON_STOPWATCH_H_
#define SWIFTSPATIAL_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace swiftspatial {

/// Monotonic stopwatch. Starts running at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_COMMON_STOPWATCH_H_
