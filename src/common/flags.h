// Minimal command-line flag parsing for benchmark and example binaries.
// Supports --name=value and boolean --name forms. Unknown flags are
// reported but non-fatal so the harness `for b in bench/*; do $b; done`
// never aborts on shared flags.
#ifndef SWIFTSPATIAL_COMMON_FLAGS_H_
#define SWIFTSPATIAL_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace swiftspatial {

/// Parsed command-line flags.
class Flags {
 public:
  /// Parses argv. Non-flag arguments are ignored.
  static Flags Parse(int argc, char** argv);

  /// Returns the flag value or `def` if absent.
  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;
  std::string GetString(const std::string& name, const std::string& def) const;

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_COMMON_FLAGS_H_
