// Fixed-width table formatting for the benchmark harnesses. Every figure /
// table reproduction prints its rows through this class so bench output has
// a uniform, diffable format.
#ifndef SWIFTSPATIAL_COMMON_TABLE_PRINTER_H_
#define SWIFTSPATIAL_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace swiftspatial {

/// Prints a header row followed by data rows, right-padding each cell to the
/// widest entry in its column. Rows are buffered and emitted by Print().
class TablePrinter {
 public:
  /// `title` is printed above the table; pass "" to omit.
  explicit TablePrinter(std::string title, std::vector<std::string> headers);

  /// Appends one data row; the number of cells must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Formats a double with `digits` fractional digits.
  static std::string Fmt(double v, int digits = 2);

  /// Formats a double in engineering style, e.g. "1.23e+06".
  static std::string FmtSci(double v, int digits = 2);

  /// Renders the buffered table to `out` (default stdout).
  void Print(std::FILE* out = stdout) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_COMMON_TABLE_PRINTER_H_
