// Status and Result<T>: lightweight, exception-free error propagation in the
// style of RocksDB's rocksdb::Status. Library code returns Status (or
// Result<T>) from any operation that can fail for reasons other than
// programmer error; programmer errors are handled with CHECK macros
// (see common/logging.h).
//
// Both types are class-level [[nodiscard]]: a caller that drops a returned
// Status or Result<T> on the floor fails the build (CI compiles with
// -Werror=unused-result; see the nodiscard probe in CMakeLists.txt). The
// only sanctioned ways to consume one are
//   - propagation: SWIFT_RETURN_IF_ERROR / SWIFT_ASSIGN_OR_RETURN or an
//     explicit `if (!s.ok())` branch,
//   - a CHECK on paths where failure is a programmer error, or
//   - Status::IgnoreError(), the explicit, greppable escape hatch. Every
//     IgnoreError() call site must carry a justification comment and be
//     allowlisted in tools/lint.sh (same policy as the thread-safety
//     analysis escape attribute).
#ifndef SWIFTSPATIAL_COMMON_STATUS_H_
#define SWIFTSPATIAL_COMMON_STATUS_H_

#include <string>
#include <type_traits>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace swiftspatial {

/// Error/success code carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruption,
  kIOError,
  kNotSupported,
  kOutOfRange,
  kAborted,
  kInternal,
  kDeadlineExceeded,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A Status encapsulates the result of an operation: success, or an error
/// code plus a message describing the failure.
///
/// Typical use:
///
///   Status s = dataset.SaveTo(path);
///   if (!s.ok()) return s;
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Explicitly discards this status. The escape hatch from [[nodiscard]]:
  /// use only where dropping the error is a considered decision, never as a
  /// convenience. Call sites must carry a justification comment and appear
  /// on the allowlist in tools/lint.sh, which also bans the anonymous
  /// `(void)` cast alternative.
  void IgnoreError() const {}

 private:
  StatusCode code_;
  std::string msg_;
};

/// Result<T> is either a value of type T or an error Status. It mirrors the
/// common StatusOr pattern. Like Status it is [[nodiscard]], and accessing
/// the value of an error Result is a programmer error that CHECK-fails with
/// the carried status (not a std::bad_variant_access from deep inside
/// std::variant).
template <typename T>
class [[nodiscard]] Result {
  // Result<Status> is ambiguous (both alternatives are a Status; the
  // converting constructors collide) -- return plain Status instead.
  static_assert(!std::is_same_v<std::decay_t<T>, Status>,
                "Result<Status> is ill-formed: return Status directly");

 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from an error status. `status.ok()` must be false.
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    SWIFT_CHECK(!std::get<Status>(v_).ok())
        << "Result<T> constructed from an OK status carries no value";
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }

  /// Accesses the value. Calling this on an error Result is a programmer
  /// error: it CHECK-fails with the carried status message.
  T& value() & {
    CheckOk();
    return std::get<T>(v_);
  }
  const T& value() const& {
    CheckOk();
    return std::get<T>(v_);
  }
  /// Rvalue access, so `SWIFT_ASSIGN_OR_RETURN` and
  /// `std::move(result).value()` move the value out instead of copying.
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(v_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &(this->value()); }
  const T* operator->() const { return &(this->value()); }

 private:
  void CheckOk() const {
    SWIFT_CHECK(ok()) << "Result<T>::value() called on error result: "
                      << std::get<Status>(v_).ToString();
  }

  std::variant<T, Status> v_;
};

// Token-pasting helpers for macro-unique local names: two expansions on the
// same line would collide, but the macros below each expand exactly once per
// statement, so __LINE__ uniquification is sufficient.
#define SWIFT_STATUS_CONCAT_IMPL(a, b) a##b
#define SWIFT_STATUS_CONCAT(a, b) SWIFT_STATUS_CONCAT_IMPL(a, b)

// Propagates a non-OK status to the caller. `expr` is evaluated exactly
// once; the macro body is a do-while so the temporary cannot shadow or be
// shadowed by caller locals across statements.
#define SWIFT_RETURN_IF_ERROR(expr)                                       \
  do {                                                                    \
    ::swiftspatial::Status SWIFT_STATUS_CONCAT(_swift_status_,            \
                                               __LINE__) = (expr);        \
    if (!SWIFT_STATUS_CONCAT(_swift_status_, __LINE__).ok())              \
      return SWIFT_STATUS_CONCAT(_swift_status_, __LINE__);               \
  } while (0)

// Evaluates `rexpr` (a Result<T>, exactly once); on error returns the
// status to the caller, otherwise moves the value into `lhs`. `lhs` may be
// a declaration (`auto v`) or an existing lvalue. The temporary holding the
// Result is line-uniquified so nested use across lines cannot shadow, and
// deliberately not named after `lhs` so `SWIFT_ASSIGN_OR_RETURN(auto x,
// F(x))` reads the *outer* x when evaluating F (no surprise
// self-capture). Not an expression: like its Abseil namesake it cannot be
// used where a value is expected (`if (SWIFT_ASSIGN_OR_RETURN(...))`).
#define SWIFT_ASSIGN_OR_RETURN(lhs, rexpr)                                \
  SWIFT_ASSIGN_OR_RETURN_IMPL_(                                           \
      SWIFT_STATUS_CONCAT(_swift_result_, __LINE__), lhs, rexpr)

#define SWIFT_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                 \
  if (!result.ok()) return result.status();              \
  lhs = std::move(result).value()

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_COMMON_STATUS_H_
