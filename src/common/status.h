// Status and Result<T>: lightweight, exception-free error propagation in the
// style of RocksDB's rocksdb::Status. Library code returns Status (or
// Result<T>) from any operation that can fail for reasons other than
// programmer error; programmer errors are handled with CHECK macros
// (see common/logging.h).
#ifndef SWIFTSPATIAL_COMMON_STATUS_H_
#define SWIFTSPATIAL_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace swiftspatial {

/// Error/success code carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruption,
  kIOError,
  kNotSupported,
  kOutOfRange,
  kAborted,
  kInternal,
  kDeadlineExceeded,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A Status encapsulates the result of an operation: success, or an error
/// code plus a message describing the failure.
///
/// Typical use:
///
///   Status s = dataset.SaveTo(path);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Result<T> is either a value of type T or an error Status. It mirrors the
/// common StatusOr pattern.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from an error status. `status.ok()` must be false.
  Result(Status status) : v_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(v_);
  }

  /// Accesses the value. Must only be called when ok().
  T& value() { return std::get<T>(v_); }
  const T& value() const { return std::get<T>(v_); }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> v_;
};

// Propagates a non-OK status to the caller.
#define SWIFT_RETURN_IF_ERROR(expr)              \
  do {                                           \
    ::swiftspatial::Status _st = (expr);         \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_COMMON_STATUS_H_
