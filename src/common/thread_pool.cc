#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace swiftspatial {

const char* ScheduleToString(Schedule s) {
  switch (s) {
    case Schedule::kStatic:
      return "static";
    case Schedule::kDynamic:
      return "dynamic";
  }
  return "unknown";
}

namespace {

// Identity of the pool worker running the current thread, if any. Written
// once per worker thread at startup; lets CurrentWorkerIndex distinguish
// "one of my workers" from "some other pool's worker" without a registry.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  std::size_t index = ThreadPool::kNotAWorker;
};
thread_local WorkerIdentity t_worker;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  SWIFT_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_task_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push(std::move(task));
    ++outstanding_;
  }
  cv_task_.NotifyOne();
}

void ThreadPool::Wait() {
  // Waiting from a worker can never finish: the calling task is itself part
  // of the outstanding count.
  SWIFT_CHECK(CurrentWorkerIndex() == kNotAWorker);
  MutexLock lock(&mu_);
  while (outstanding_ != 0) cv_done_.Wait(&mu_);
}

std::size_t ThreadPool::CurrentWorkerIndex() const {
  return t_worker.pool == this ? t_worker.index : kNotAWorker;
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  t_worker.pool = this;
  t_worker.index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_task_.Wait(&mu_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(&mu_);
      --outstanding_;
      if (outstanding_ == 0) cv_done_.NotifyAll();
    }
  }
}

namespace {

void RunParallel(
    std::size_t n, std::size_t num_threads, Schedule schedule,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t chunk) {
  if (n == 0) return;
  SWIFT_CHECK_GE(chunk, 1u);
  num_threads = std::max<std::size_t>(1, std::min(num_threads, n));
  if (num_threads == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  if (schedule == Schedule::kStatic) {
    // Contiguous blocks, sized as evenly as possible.
    const std::size_t base = n / num_threads;
    const std::size_t rem = n % num_threads;
    std::size_t begin = 0;
    for (std::size_t t = 0; t < num_threads; ++t) {
      const std::size_t len = base + (t < rem ? 1 : 0);
      const std::size_t end = begin + len;
      threads.emplace_back([&body, begin, end, t] {
        for (std::size_t i = begin; i < end; ++i) body(i, t);
      });
      begin = end;
    }
  } else {
    auto counter = std::make_shared<std::atomic<std::size_t>>(0);
    for (std::size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back([&body, counter, n, chunk, t] {
        for (;;) {
          const std::size_t begin = counter->fetch_add(chunk);
          if (begin >= n) return;
          const std::size_t end = std::min(begin + chunk, n);
          for (std::size_t i = begin; i < end; ++i) body(i, t);
        }
      });
    }
  }
  for (auto& th : threads) th.join();
}

}  // namespace

void ParallelFor(std::size_t n, std::size_t num_threads, Schedule schedule,
                 const std::function<void(std::size_t)>& body,
                 std::size_t chunk) {
  RunParallel(
      n, num_threads, schedule,
      [&body](std::size_t i, std::size_t) { body(i); }, chunk);
}

void ParallelForWorker(
    std::size_t n, std::size_t num_threads, Schedule schedule,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t chunk) {
  RunParallel(n, num_threads, schedule, body, chunk);
}

}  // namespace swiftspatial
