// Fixed-size worker pool plus parallel-for helpers with the two OpenMP-style
// scheduling policies the paper evaluates for its multi-threaded CPU
// baselines (§5.1): static (equal contiguous chunks per thread) and dynamic
// (work-stealing from a shared atomic counter).
#ifndef SWIFTSPATIAL_COMMON_THREAD_POOL_H_
#define SWIFTSPATIAL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace swiftspatial {

/// Task scheduling policy for ParallelFor, mirroring OpenMP's
/// schedule(static) and schedule(dynamic).
enum class Schedule {
  kStatic,
  kDynamic,
};

const char* ScheduleToString(Schedule s);

/// A fixed-size thread pool executing void() tasks.
///
/// The pool is started at construction and joined at destruction. Submit()
/// enqueues a task; Wait() blocks until all submitted tasks have completed.
///
/// Concurrency contract (relied on by exec::TaskGraph):
///  - Submit() is thread-safe and may be called from worker threads, i.e.
///    from inside a running task. A task submitted by a running task is
///    always covered by any Wait() that covers the submitting task: the
///    child is counted as outstanding before its parent retires, so the
///    outstanding count cannot touch zero between the two.
///  - Wait() may be called concurrently with Submit() and from several
///    threads at once. It returns at an instant when the outstanding count
///    (queued + running tasks) is zero. Tasks submitted by *other external
///    threads* while Wait() blocks may or may not be covered; callers that
///    need a submission covered must order it before Wait() themselves
///    (or submit it from inside a covered task, per the previous rule).
///  - Wait() must not be called from a worker thread: the calling task is
///    itself outstanding, so the wait could never finish. This is a checked
///    programmer error (SWIFT_CHECK).
class ThreadPool {
 public:
  /// Sentinel returned by CurrentWorkerIndex() off the pool's threads.
  static constexpr std::size_t kNotAWorker = static_cast<std::size_t>(-1);

  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until every previously submitted task has finished (see the
  /// class comment for the exact contract). Must not be called from one of
  /// this pool's own workers.
  void Wait() EXCLUDES(mu_);

  std::size_t num_threads() const { return workers_.size(); }

  /// Index of the calling thread within this pool (0..num_threads-1), or
  /// kNotAWorker when the caller is not one of this pool's workers. Lets
  /// task code keep per-worker accumulators without sharing or locking.
  std::size_t CurrentWorkerIndex() const;

 private:
  void WorkerLoop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_task_;
  CondVar cv_done_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mu_);
  std::size_t outstanding_ GUARDED_BY(mu_) = 0;  // queued + running tasks
  bool stop_ GUARDED_BY(mu_) = false;
};

/// Runs `body(i)` for every i in [0, n) on `num_threads` threads.
///
/// With Schedule::kStatic each thread receives one contiguous range of
/// indices; with Schedule::kDynamic threads repeatedly claim chunks of
/// `chunk` indices from a shared counter until the range is exhausted.
/// The call blocks until all iterations are complete. `num_threads == 1`
/// executes inline without spawning threads.
void ParallelFor(std::size_t n, std::size_t num_threads, Schedule schedule,
                 const std::function<void(std::size_t)>& body,
                 std::size_t chunk = 1);

/// Variant that also tells the body which worker (0..num_threads-1) runs it,
/// so callers can maintain per-thread accumulators without sharing.
void ParallelForWorker(
    std::size_t n, std::size_t num_threads, Schedule schedule,
    const std::function<void(std::size_t index, std::size_t worker)>& body,
    std::size_t chunk = 1);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_COMMON_THREAD_POOL_H_
