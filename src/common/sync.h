// Annotated synchronization primitives: the one place in the repo where the
// raw std::mutex / std::condition_variable vocabulary is allowed
// (tools/lint.sh enforces this). Everything concurrent builds on these
// wrappers so that Clang Thread Safety Analysis can prove lock discipline at
// compile time -- which members a mutex guards (GUARDED_BY), which functions
// require it held (REQUIRES), and which acquire/release it (ACQUIRE /
// RELEASE). The CI clang job compiles the tree with -Wthread-safety
// promoted to errors; on GCC and other toolchains every annotation expands
// to nothing and the wrappers are zero-cost forwarding shims.
//
// Usage pattern:
//
//   class Account {
//    public:
//     void Deposit(int n) EXCLUDES(mu_) {
//       MutexLock lock(&mu_);
//       balance_ += n;
//       cv_.NotifyAll();
//     }
//     void WaitForFunds() EXCLUDES(mu_) {
//       MutexLock lock(&mu_);
//       while (balance_ == 0) cv_.Wait(&mu_);   // explicit loop, not a
//     }                                         // predicate lambda (below)
//    private:
//     Mutex mu_;
//     CondVar cv_;
//     int balance_ GUARDED_BY(mu_) = 0;
//   };
//
// Condition waits are written as explicit while-loops around CondVar::Wait
// rather than std::condition_variable-style predicate lambdas: the analysis
// checks a lambda body as a separate function, where the captured guarded
// members would appear unprotected. The loop form keeps every guarded read
// lexically inside the locked scope (and is exactly what the predicate
// overloads expand to anyway).
#ifndef SWIFTSPATIAL_COMMON_SYNC_H_
#define SWIFTSPATIAL_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Capability attribute macros. Clang-only: every other compiler sees empty
// expansions, so annotated code stays portable. The names follow the Clang
// documentation (and Abseil's thread_annotations.h) so the analysis docs
// read 1:1 against this codebase.
// ---------------------------------------------------------------------------
#if defined(__clang__) && !defined(SWIG)
#define SWIFT_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SWIFT_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Declares a class to be a lockable capability (e.g. "mutex").
#define CAPABILITY(x) SWIFT_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class whose lifetime holds a capability.
#define SCOPED_CAPABILITY SWIFT_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define GUARDED_BY(x) SWIFT_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex.
#define PT_GUARDED_BY(x) SWIFT_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function acquires the capability (held on exit, not on entry).
#define ACQUIRE(...) SWIFT_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on exit).
#define RELEASE(...) SWIFT_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function attempts the capability; first arg is the success return value.
#define TRY_ACQUIRE(...) \
  SWIFT_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability for the duration of the call.
#define REQUIRES(...) \
  SWIFT_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (documents non-reentrancy: the
/// function acquires it internally).
#define EXCLUDES(...) SWIFT_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts (to the analysis, not at runtime) that the calling thread holds
/// the capability -- the escape hatch for facts established out of band.
#define ASSERT_EXCLUSIVE_LOCK(...) \
  SWIFT_THREAD_ANNOTATION__(assert_exclusive_lock(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) SWIFT_THREAD_ANNOTATION__(lock_returned(x))

/// Disables the analysis for one function. Every use outside this header
/// must carry a justification comment and be listed in the tools/lint.sh
/// allowlist -- unexplained escapes fail CI.
#define NO_THREAD_SAFETY_ANALYSIS \
  SWIFT_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace swiftspatial {

/// An annotated exclusive mutex over std::mutex. Prefer MutexLock for
/// scoped acquisition; Lock/Unlock exist for the rare manually-paired use
/// and for the analysis to model the RAII types.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis the calling thread holds this mutex (no runtime
  /// effect). For code reached only while a caller holds the lock through a
  /// path the analysis cannot follow.
  void AssertHeld() const ASSERT_EXCLUSIVE_LOCK() {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex; the direct analogue of std::lock_guard.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to Mutex. Every Wait* overload REQUIRES the
/// mutex: it is atomically released while blocked and re-held on return,
/// which matches the capability state the analysis tracks (held at entry,
/// held at exit). Callers loop over their predicate explicitly (see the
/// header comment for why there are no predicate-lambda overloads).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible -- always loop).
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  /// Blocks until notified or `rel_time` elapsed.
  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex* mu,
                         const std::chrono::duration<Rep, Period>& rel_time)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, rel_time);
    lock.release();
    return status;
  }

  /// Blocks until notified or the absolute `deadline` passed.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex* mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_COMMON_SYNC_H_
