// Nearest-rank percentile, the single definition shared by every latency
// report in the library (the FaaS analytic model, the JoinService benches,
// and the examples) so their p50/p99 columns stay comparable.
#ifndef SWIFTSPATIAL_COMMON_PERCENTILE_H_
#define SWIFTSPATIAL_COMMON_PERCENTILE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace swiftspatial {

/// Nearest-rank percentile over an unsorted sample (sorts its copy):
/// Percentile(v, 0.99) is the smallest sample x such that at least 99% of
/// samples are <= x. Returns 0 for an empty sample.
inline double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(values.size())));
  return values[std::min(rank == 0 ? 0 : rank - 1, values.size() - 1)];
}

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_COMMON_PERCENTILE_H_
