// Deterministic random number generation. All dataset generators and
// randomized tests take explicit seeds so every experiment is reproducible
// bit-for-bit across runs and machines.
#ifndef SWIFTSPATIAL_COMMON_RNG_H_
#define SWIFTSPATIAL_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <numbers>

namespace swiftspatial {

/// xoshiro256** PRNG (Blackman & Vigna), seeded via SplitMix64.
///
/// Chosen over std::mt19937_64 because its output sequence is specified by
/// the algorithm (not the standard library implementation), keeping
/// generated datasets identical across toolchains.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the four state words.
    for (auto& word : s_) {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) {
    // Multiply-shift rejection-free mapping; bias is negligible for n << 2^64
    // and acceptable for data generation.
    return static_cast<uint64_t>((static_cast<__uint128_t>(Next()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Log-normal sample: exp(N(mu, sigma)).
  double LogNormal(double mu, double sigma) {
    return std::exp(Gaussian(mu, sigma));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_COMMON_RNG_H_
