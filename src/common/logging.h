// Assertion macros for programmer-error checking. Unlike Status (recoverable
// failures), a failed CHECK indicates a bug and aborts the process with a
// source location and message.
#ifndef SWIFTSPATIAL_COMMON_LOGGING_H_
#define SWIFTSPATIAL_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace swiftspatial {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& extra) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr,
               extra.c_str());
  std::abort();
}

// Stream sink used by SWIFT_CHECK's trailing << messages.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessage() { CheckFailed(file_, line_, expr_, ss_.str()); }
  template <typename T>
  CheckMessage& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream ss_;
};

}  // namespace internal
}  // namespace swiftspatial

// Always-on assertion. Usage: SWIFT_CHECK(a < b) << "detail " << a;
#define SWIFT_CHECK(cond)                                                 \
  if (cond) {                                                             \
  } else                                                                  \
    ::swiftspatial::internal::CheckMessage(__FILE__, __LINE__, #cond)

#define SWIFT_CHECK_EQ(a, b) SWIFT_CHECK((a) == (b))
#define SWIFT_CHECK_NE(a, b) SWIFT_CHECK((a) != (b))
#define SWIFT_CHECK_LT(a, b) SWIFT_CHECK((a) < (b))
#define SWIFT_CHECK_LE(a, b) SWIFT_CHECK((a) <= (b))
#define SWIFT_CHECK_GT(a, b) SWIFT_CHECK((a) > (b))
#define SWIFT_CHECK_GE(a, b) SWIFT_CHECK((a) >= (b))

// Debug-only assertion (compiled out in NDEBUG builds).
#ifdef NDEBUG
#define SWIFT_DCHECK(cond) \
  if (true) {              \
  } else                   \
    ::swiftspatial::internal::CheckMessage(__FILE__, __LINE__, #cond)
#else
#define SWIFT_DCHECK(cond) SWIFT_CHECK(cond)
#endif

#endif  // SWIFTSPATIAL_COMMON_LOGGING_H_
