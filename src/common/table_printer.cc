#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace swiftspatial {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  SWIFT_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SWIFT_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::FmtSci(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits, v);
  return buf;
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    std::fputs("| ", out);
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s |%s", static_cast<int>(widths[c]), row[c].c_str(),
                   c + 1 == row.size() ? "\n" : " ");
    }
  };
  auto print_rule = [&] {
    std::fputc('+', out);
    for (std::size_t c = 0; c < widths.size(); ++c) {
      for (std::size_t i = 0; i < widths[c] + 2; ++i) std::fputc('-', out);
      std::fputc('+', out);
    }
    std::fputc('\n', out);
  };

  if (!title_.empty()) std::fprintf(out, "\n== %s ==\n", title_.c_str());
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
  std::fflush(out);
}

}  // namespace swiftspatial
