// Burst buffer (§3.5): sits after every join unit and coalesces small
// 8-byte result/task writes into large sequential bursts. A burst is
// emitted when the accumulated data reaches `burst_bytes` (default 4 KB) or
// at the end of joining a node pair. The ablation switch turns coalescing
// off, making every pair its own DRAM request (bench/ext_ablation).
#ifndef SWIFTSPATIAL_HW_BURST_BUFFER_H_
#define SWIFTSPATIAL_HW_BURST_BUFFER_H_

#include <cstdint>
#include <vector>

namespace swiftspatial::hw {

class BurstBuffer {
 public:
  /// `item_bytes` is the size of one buffered element (8 for id pairs).
  BurstBuffer(std::size_t burst_bytes, std::size_t item_bytes, bool enabled);

  /// Splits `items` elements produced by one node-pair join into flush
  /// chunks: full bursts plus the end-of-node remainder (or single-item
  /// chunks when coalescing is disabled). Updates flush statistics.
  std::vector<std::size_t> ChunkSizes(std::size_t items);

  std::size_t items_per_burst() const { return items_per_burst_; }
  uint64_t flushes() const { return flushes_; }
  uint64_t items_out() const { return items_out_; }

 private:
  std::size_t items_per_burst_;
  uint64_t flushes_ = 0;
  uint64_t items_out_ = 0;
};

}  // namespace swiftspatial::hw

#endif  // SWIFTSPATIAL_HW_BURST_BUFFER_H_
