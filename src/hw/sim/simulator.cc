#include "hw/sim/simulator.h"

#include <utility>

namespace swiftspatial::hw::sim {

void Simulator::Schedule(Cycle delay, Callback fn) {
  queue_.push(Event{now_ + delay, seq_++, std::move(fn)});
}

void Simulator::Spawn(Process p) {
  const auto handle = p.handle;
  Schedule(0, [handle] { handle.resume(); });
}

Cycle Simulator::Run() {
  while (!queue_.empty()) {
    // Moving out of a priority_queue top requires a const_cast; copy the
    // small members and move the callback.
    const Event& top = queue_.top();
    now_ = top.time;
    Callback fn = std::move(const_cast<Event&>(top).fn);
    queue_.pop();
    fn();
  }
  return now_;
}

}  // namespace swiftspatial::hw::sim
