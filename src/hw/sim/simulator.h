// Discrete-event simulation engine used by the SwiftSpatial accelerator
// model. Hardware function units (join units, scheduler, memory managers)
// are C++20 coroutines that advance simulated time by awaiting Delay /
// WaitUntil and exchange data through sim::Fifo channels, mirroring the
// FIFO-connected dataflow architecture of the real design (Fig. 2).
//
// The engine is cycle-based: one time unit = one accelerator clock cycle.
#ifndef SWIFTSPATIAL_HW_SIM_SIMULATOR_H_
#define SWIFTSPATIAL_HW_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"

namespace swiftspatial::hw::sim {

/// Simulated clock cycle count.
using Cycle = uint64_t;

/// Fire-and-forget coroutine representing one hardware process. The frame
/// self-destroys when the process returns; processes must therefore be
/// driven to completion (e.g. by finish tokens) before the Simulator is
/// destroyed.
class Process {
 public:
  struct promise_type {
    Process get_return_object() {
      return Process{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  std::coroutine_handle<promise_type> handle;
};

/// Event-queue simulator.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` to run `delay` cycles from now.
  void Schedule(Cycle delay, Callback fn);

  /// Starts a process: its body runs from the current simulation time.
  void Spawn(Process p);

  /// Runs until the event queue is empty. Returns the final time.
  Cycle Run();

  Cycle now() const { return now_; }

  /// Awaitable: resume `d` cycles later.
  auto Delay(Cycle d) {
    struct Awaiter {
      Simulator* sim;
      Cycle d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->Schedule(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  /// Awaitable: resume at absolute time `t` (immediately if t <= now).
  auto WaitUntil(Cycle t) {
    const Cycle d = t > now_ ? t - now_ : 0;
    return Delay(d);
  }

 private:
  struct Event {
    Cycle time;
    uint64_t seq;  // FIFO tie-break for same-cycle events
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Cycle now_ = 0;
  uint64_t seq_ = 0;
};

}  // namespace swiftspatial::hw::sim

#endif  // SWIFTSPATIAL_HW_SIM_SIMULATOR_H_
