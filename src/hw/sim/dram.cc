#include "hw/sim/dram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace swiftspatial::hw::sim {

Dram::Dram(Simulator* sim, const DramConfig& config)
    : sim_(sim), config_(config) {
  SWIFT_CHECK_GE(config_.num_channels, 1);
  SWIFT_CHECK_GT(config_.bytes_per_cycle_per_channel, 0.0);
  SWIFT_CHECK_GE(config_.banks_per_channel, 1);
  channel_free_.assign(config_.num_channels, 0);
  channel_open_rows_.assign(
      config_.num_channels,
      std::vector<uint64_t>(config_.banks_per_channel, ~0ULL));
  channel_row_victim_.assign(config_.num_channels, 0);
}

Cycle Dram::Issue(uint64_t addr, uint64_t bytes, bool is_write) {
  SWIFT_CHECK_GT(bytes, 0u);
  if (is_write) {
    ++stats_.num_writes;
    stats_.bytes_written += bytes;
  } else {
    ++stats_.num_reads;
    stats_.bytes_read += bytes;
  }

  // Split at interleave boundaries; sub-requests proceed in parallel on
  // their channels, and the request completes when the last one does.
  Cycle complete = 0;
  uint64_t remaining = bytes;
  uint64_t cursor = addr;
  while (remaining > 0) {
    const uint64_t in_line =
        config_.interleave_bytes - (cursor % config_.interleave_bytes);
    const uint64_t chunk = std::min<uint64_t>(remaining, in_line);
    const int channel = static_cast<int>((cursor / config_.interleave_bytes) %
                                         config_.num_channels);
    const Cycle transfer = static_cast<Cycle>(
        std::ceil(chunk / config_.bytes_per_cycle_per_channel));
    auto& open_rows = channel_open_rows_[channel];
    bool row_hit = false;
    for (uint64_t& row : open_rows) {
      if (row == cursor) {
        row = cursor + chunk;
        row_hit = true;
        break;
      }
    }
    if (row_hit) {
      ++stats_.row_hits;
    } else {
      ++stats_.row_misses;
      int& victim = channel_row_victim_[channel];
      open_rows[victim] = cursor + chunk;
      victim = (victim + 1) % config_.banks_per_channel;
    }
    const Cycle overhead = row_hit ? config_.sequential_overhead_cycles
                                   : config_.request_overhead_cycles;
    const Cycle busy = overhead + transfer;
    const Cycle start = std::max(sim_->now(), channel_free_[channel]);
    channel_free_[channel] = start + busy;
    stats_.busy_cycles += busy;
    complete = std::max(complete, start + busy + config_.extra_latency_cycles);
    cursor += chunk;
    remaining -= chunk;
  }
  return complete;
}

double Dram::Utilization() const {
  const Cycle elapsed = sim_->now();
  if (elapsed == 0) return 0.0;
  return static_cast<double>(stats_.busy_cycles) /
         (static_cast<double>(elapsed) * config_.num_channels);
}

}  // namespace swiftspatial::hw::sim
