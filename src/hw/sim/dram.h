// DRAM timing model for the accelerator's 4-channel DDR4 subsystem
// (Alveo U250: 4 x 16 GB DDR4-2400, ~19.2 GB/s per channel).
//
// Each request occupies one channel for
//     request_overhead_cycles + ceil(bytes / bytes_per_cycle)
// cycles (row activation + command overhead, then burst transfer), and the
// data arrives extra_latency_cycles after the channel finishes (pipelined
// controller/PHY latency that does not occupy the channel). Requests
// crossing the channel-interleave boundary are split. Channels serve
// requests in issue order; queueing delay emerges from `channel_free_`.
//
// This is the mechanism behind the paper's observations that small R-tree
// nodes make the join memory-bound (Figs. 11-13): per-request overhead
// dominates short transfers, capping the node-pair fetch rate.
#ifndef SWIFTSPATIAL_HW_SIM_DRAM_H_
#define SWIFTSPATIAL_HW_SIM_DRAM_H_

#include <cstdint>
#include <vector>

#include "hw/sim/simulator.h"

namespace swiftspatial::hw::sim {

struct DramConfig {
  int num_channels = 4;
  /// 19.2 GB/s per channel at 200 MHz kernel clock = 96 bytes/cycle.
  double bytes_per_cycle_per_channel = 96.0;
  /// Channel occupancy per request before the transfer: row
  /// activate/precharge plus controller command overhead for a random
  /// access. Calibration constant (see DESIGN.md).
  Cycle request_overhead_cycles = 25;
  /// Reduced overhead when a request continues exactly where one of the
  /// channel's open rows ended (row-buffer hit): sequential streams --
  /// PBSM tile blocks, task-queue bursts, result writes -- pay this
  /// instead. Each channel tracks `banks_per_channel` open rows, so several
  /// interleaved sequential streams can coexist (DDR4 has 16 banks).
  Cycle sequential_overhead_cycles = 4;
  int banks_per_channel = 8;
  /// Additional pipelined latency until data reaches the requester.
  Cycle extra_latency_cycles = 30;
  /// Address-interleave granularity across channels.
  uint64_t interleave_bytes = 4096;
};

struct DramStats {
  uint64_t num_reads = 0;
  uint64_t num_writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  /// Total channel-busy cycles (sum over channels).
  uint64_t busy_cycles = 0;
  /// Sub-requests served at the open-row (sequential) overhead.
  uint64_t row_hits = 0;
  /// Sub-requests that paid the full random-access overhead.
  uint64_t row_misses = 0;
};

/// Arithmetic multi-channel DRAM model (see file comment).
class Dram {
 public:
  Dram(Simulator* sim, const DramConfig& config);

  /// Issues a request at the current simulation time and returns the cycle
  /// at which the data transfer completes (including latency). The caller
  /// decides whether to wait (reads) or continue (posted writes).
  Cycle Issue(uint64_t addr, uint64_t bytes, bool is_write);

  const DramStats& stats() const { return stats_; }
  const DramConfig& config() const { return config_; }

  /// Aggregate utilisation in [0, 1] over the elapsed simulation time.
  double Utilization() const;

 private:
  Simulator* sim_;
  DramConfig config_;
  DramStats stats_;
  std::vector<Cycle> channel_free_;
  /// Per channel: one "address one past the previous request" entry per
  /// bank row buffer; a request starting at any of them is an open-row hit.
  std::vector<std::vector<uint64_t>> channel_open_rows_;
  std::vector<int> channel_row_victim_;  // round-robin replacement cursor
};

}  // namespace swiftspatial::hw::sim

#endif  // SWIFTSPATIAL_HW_SIM_DRAM_H_
