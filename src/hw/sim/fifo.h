// Bounded FIFO channel connecting simulated hardware processes, the
// modelling analogue of the on-chip FIFOs ("akin to pipes in a software
// context", §3.2). push() suspends the producer while the FIFO is full --
// back-pressure -- and pop() suspends the consumer while it is empty.
// Transfers themselves are zero-latency; pipeline timing is charged
// explicitly by the components.
#ifndef SWIFTSPATIAL_HW_SIM_FIFO_H_
#define SWIFTSPATIAL_HW_SIM_FIFO_H_

#include <coroutine>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"
#include "hw/sim/simulator.h"

namespace swiftspatial::hw::sim {

template <typename T>
class Fifo {
 public:
  /// `capacity` is the maximum number of buffered items; pass
  /// Fifo::kUnbounded for an unbounded channel (used where hardware would
  /// use a wide status bus rather than a real FIFO, e.g. done signals).
  static constexpr std::size_t kUnbounded = static_cast<std::size_t>(-1);

  Fifo(Simulator* sim, std::size_t capacity, std::string name = "")
      : sim_(sim), capacity_(capacity), name_(std::move(name)) {
    SWIFT_CHECK_GE(capacity_, 1u);
  }

  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;

  struct [[nodiscard]] PushAwaiter {
    Fifo* f;
    T value;
    std::coroutine_handle<> handle;

    bool await_ready() {
      if (f->items_.size() < f->capacity_ || !f->poppers_.empty()) {
        f->Deliver(std::move(value));
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      f->pushers_.push_back(this);
    }
    void await_resume() {}
  };

  struct [[nodiscard]] PopAwaiter {
    Fifo* f;
    std::optional<T> value;
    std::coroutine_handle<> handle;

    bool await_ready() {
      if (!f->items_.empty()) {
        value = std::move(f->items_.front());
        f->items_.pop_front();
        f->AdmitWaitingPusher();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      f->poppers_.push_back(this);
    }
    T await_resume() { return std::move(*value); }
  };

  /// Awaitable producer operation.
  PushAwaiter Push(T value) { return PushAwaiter{this, std::move(value), {}}; }

  /// Awaitable consumer operation.
  PopAwaiter Pop() { return PopAwaiter{this, std::nullopt, {}}; }

  /// Non-suspending pop; returns false when empty.
  bool TryPop(T* out) {
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    AdmitWaitingPusher();
    return true;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const std::string& name() const { return name_; }

  /// High-water mark of buffered items (occupancy statistics).
  std::size_t max_occupancy() const { return max_occupancy_; }

 private:
  // Places a value into the channel: directly into a waiting consumer if one
  // exists, otherwise into the buffer.
  void Deliver(T value) {
    if (!poppers_.empty()) {
      PopAwaiter* p = poppers_.front();
      poppers_.pop_front();
      p->value = std::move(value);
      const auto h = p->handle;
      sim_->Schedule(0, [h] { h.resume(); });
      return;
    }
    items_.push_back(std::move(value));
    if (items_.size() > max_occupancy_) max_occupancy_ = items_.size();
  }

  // Called when buffer space frees up: completes one suspended producer.
  void AdmitWaitingPusher() {
    if (pushers_.empty()) return;
    PushAwaiter* p = pushers_.front();
    pushers_.pop_front();
    Deliver(std::move(p->value));
    const auto h = p->handle;
    sim_->Schedule(0, [h] { h.resume(); });
  }

  Simulator* sim_;
  std::size_t capacity_;
  std::string name_;
  std::deque<T> items_;
  std::deque<PushAwaiter*> pushers_;
  std::deque<PopAwaiter*> poppers_;
  std::size_t max_occupancy_ = 0;
};

}  // namespace swiftspatial::hw::sim

#endif  // SWIFTSPATIAL_HW_SIM_FIFO_H_
