// Power models reproducing §5.7 of the paper. The paper *measured* 144.69 W
// on the 16-core EPYC 7313 (AMD RAPL), 95.01 W on the A100 running
// cuSpatial (nvidia-smi), and 23.48 W for the accelerator (Vivado report);
// we cannot re-run those meters, so utilisation-scaled analytic models are
// calibrated to reproduce exactly those operating points and to extrapolate
// sensibly to other configurations (thread counts, unit counts, GPU
// occupancies). All constants are documented inline in the .cc.
#ifndef SWIFTSPATIAL_HW_POWER_MODEL_H_
#define SWIFTSPATIAL_HW_POWER_MODEL_H_

#include <cstddef>

namespace swiftspatial::hw {

class PowerModel {
 public:
  /// Accelerator power (shell static + per-join-unit dynamic).
  static double FpgaWatts(int num_units);

  /// CPU package power for `active_threads` busy threads out of `cores`.
  static double CpuWatts(int active_threads, int cores = 16);

  /// GPU board power at a given SM occupancy in [0, 1].
  static double GpuWatts(double occupancy);

  /// cuSpatial SM occupancy estimate for a polygon batch size: the batch is
  /// the only source of thread-level parallelism, so occupancy saturates at
  /// the device's concurrent-query capacity.
  static double GpuOccupancyForBatch(std::size_t batch_size);

  // Reference operating points from the paper (§5.7).
  static constexpr double kPaperCpuWatts = 144.69;
  static constexpr double kPaperGpuWatts = 95.01;
  static constexpr double kPaperFpgaWatts = 23.48;
};

}  // namespace swiftspatial::hw

#endif  // SWIFTSPATIAL_HW_POWER_MODEL_H_
