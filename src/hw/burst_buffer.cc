#include "hw/burst_buffer.h"

#include "common/logging.h"

namespace swiftspatial::hw {

BurstBuffer::BurstBuffer(std::size_t burst_bytes, std::size_t item_bytes,
                         bool enabled) {
  SWIFT_CHECK_GE(item_bytes, 1u);
  items_per_burst_ = enabled ? std::max<std::size_t>(1, burst_bytes / item_bytes)
                             : 1;
}

std::vector<std::size_t> BurstBuffer::ChunkSizes(std::size_t items) {
  std::vector<std::size_t> chunks;
  while (items > 0) {
    const std::size_t take = items < items_per_burst_ ? items : items_per_burst_;
    chunks.push_back(take);
    items -= take;
  }
  flushes_ += chunks.size();
  for (const std::size_t c : chunks) items_out_ += c;
  return chunks;
}

}  // namespace swiftspatial::hw
