// Physical address space management (§3.5): SwiftSpatial manages DRAM
// directly, with no page tables or dynamic allocation. The address space is
// a set of named regions at fixed base addresses (tree images, ping/pong
// task queues, result buffer); write cursors only ever increment
// (self-incrementing counters).
//
// The layout doubles as the *functional* memory: every simulated DRAM write
// stores real bytes and every read returns them, so the simulated
// accelerator computes the true join result while the Dram model charges
// the time.
#ifndef SWIFTSPATIAL_HW_MEMORY_LAYOUT_H_
#define SWIFTSPATIAL_HW_MEMORY_LAYOUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace swiftspatial::hw {

/// Named, physically-addressed memory regions with functional backing.
class MemoryLayout {
 public:
  /// Regions are spaced this far apart, so a region can grow without ever
  /// overlapping its neighbour (the simulated device has 64 GB; region
  /// *usage* is checked against it at the end of a run).
  static constexpr uint64_t kRegionStride = 1ULL << 33;  // 8 GB

  /// Region bases are additionally staggered by one channel-interleave line
  /// each, so concurrent streams over different regions (e.g. the R and S
  /// tile stores) start on different DRAM channels -- the simulated
  /// counterpart of assigning each buffer its own DDR bank on the U250.
  static constexpr uint64_t kChannelStagger = 4096;

  /// Creates an empty region; returns its base address.
  uint64_t AddRegion(std::string name);

  /// Creates a region pre-loaded with `bytes` (e.g. a PackedRTree image).
  uint64_t AddRegion(std::string name, std::vector<uint8_t> bytes);

  /// Functional write; grows the region as needed.
  void Write(uint64_t addr, const void* src, std::size_t n);

  /// Functional read; reading beyond written bytes is a bug (checked).
  void Read(uint64_t addr, void* dst, std::size_t n) const;

  /// Bytes currently stored in the region that starts at `base`.
  std::size_t RegionSize(uint64_t base) const;

  /// Total bytes across all regions (device memory footprint).
  uint64_t TotalBytes() const;

  std::size_t num_regions() const { return regions_.size(); }
  const std::string& RegionName(std::size_t i) const {
    return regions_[i].name;
  }

 private:
  struct Region {
    std::string name;
    uint64_t base;
    std::vector<uint8_t> bytes;
  };

  const Region& RegionFor(uint64_t addr) const;
  Region& RegionFor(uint64_t addr);

  std::vector<Region> regions_;
};

}  // namespace swiftspatial::hw

#endif  // SWIFTSPATIAL_HW_MEMORY_LAYOUT_H_
