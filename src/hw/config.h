// Accelerator configuration: every timing/architecture constant of the
// simulated SwiftSpatial device, with the values used in the paper's
// prototype as defaults (Alveo U250, 200 MHz, 16 join units, 4 x DDR4).
#ifndef SWIFTSPATIAL_HW_CONFIG_H_
#define SWIFTSPATIAL_HW_CONFIG_H_

#include <cstdint>

#include "hw/sim/dram.h"

namespace swiftspatial::hw {

/// PBSM task dispatch policy (§3.4.2).
enum class DispatchPolicy {
  kStatic,   ///< task i -> unit (i mod N), regardless of idleness
  kDynamic,  ///< task -> first join unit with a free slot
};

const char* DispatchPolicyToString(DispatchPolicy p);

struct AcceleratorConfig {
  /// Instantiated join units (paper sweeps 1..16).
  int num_join_units = 16;

  /// Kernel clock (§3.6: Vitis HLS at 200 MHz).
  double clock_hz = 200e6;

  sim::DramConfig dram;

  /// Host link: effective PCIe gen3 x16 bandwidth for index/result
  /// transfers, and per-invocation launch overhead.
  double pcie_gbytes_per_sec = 12.0;
  double kernel_launch_seconds = 30e-6;

  /// Join-unit pipeline depth (Fig. 3: read -> evaluate -> emit).
  int pipeline_depth = 3;

  /// Scheduler overhead per dispatched task (round-robin bookkeeping and
  /// command emission, §3.4.1).
  int dispatch_cycles = 1;

  /// Read-unit command processing overhead per node-pair fetch.
  int read_issue_cycles = 2;

  /// Burst buffer flush threshold in bytes (§3.5: "e.g., 4 KB").
  std::size_t burst_bytes = 4096;
  /// Ablation switch: disable result/task write bursting (each 8-byte pair
  /// becomes its own DRAM request).
  bool burst_buffer_enabled = true;

  /// Scheduler task-cache capacity in tasks (§3.4.1 "burst loading");
  /// 512 tasks = one 4 KB burst.
  std::size_t scheduler_cache_tasks = 512;
  /// Ablation switch: disable burst loading (scheduler fetches tasks one at
  /// a time).
  bool burst_loading_enabled = true;

  /// Per-unit input queue depth (double buffering).
  std::size_t unit_queue_depth = 2;
  /// Shared stream FIFO depths (bursts).
  std::size_t stream_fifo_depth = 64;
  /// Scheduler -> read unit command queue depth.
  std::size_t command_queue_depth = 16;

  /// PBSM dispatch policy.
  DispatchPolicy pbsm_policy = DispatchPolicy::kDynamic;
  /// Max in-flight tasks per unit for dynamic dispatch.
  int max_inflight_per_unit = 2;

  /// Seconds represented by `cycles` at the configured clock.
  double SecondsFor(uint64_t cycles) const {
    return static_cast<double>(cycles) / clock_hz;
  }
  /// Host transfer time for `bytes` over PCIe.
  double PcieSeconds(uint64_t bytes) const {
    return static_cast<double>(bytes) / (pcie_gbytes_per_sec * 1e9);
  }
};

}  // namespace swiftspatial::hw

#endif  // SWIFTSPATIAL_HW_CONFIG_H_
