// SwiftSpatial accelerator: the top-level device model. Assembles the
// simulated fabric of Fig. 2 -- N join units, read unit, burst buffers,
// task queue manager, result write unit, and an on-chip scheduler -- runs a
// join, and reports both the *functional* result (the true join output) and
// the *performance* estimate (kernel cycles, DRAM traffic, host transfer
// time).
//
// Two control flows are supported, matching the paper:
//   RunSyncTraversal  -- BFS R-tree synchronous traversal (§3.4.1)
//   RunPbsm           -- tile-pair join over a hierarchical partition
//                        (§3.4.2)
#ifndef SWIFTSPATIAL_HW_ACCELERATOR_H_
#define SWIFTSPATIAL_HW_ACCELERATOR_H_

#include <cstdint>
#include <vector>

#include "datagen/dataset.h"
#include "grid/hierarchical_partition.h"
#include "hw/config.h"
#include "hw/scheduler.h"
#include "hw/sim/dram.h"
#include "hw/write_unit.h"
#include "join/result.h"
#include "rtree/packed_rtree.h"

namespace swiftspatial::hw {

/// Outcome of one accelerator run.
struct AcceleratorReport {
  // Timing.
  uint64_t kernel_cycles = 0;
  double kernel_seconds = 0;
  double host_transfer_seconds = 0;  ///< PCIe: indexes in, results out
  double launch_seconds = 0;
  double total_seconds = 0;

  // Functional outcome and work counters.
  uint64_t num_results = 0;
  JoinStats stats;

  // Memory system.
  sim::DramStats dram;
  double dram_utilization = 0;
  uint64_t bytes_to_device = 0;
  uint64_t bytes_from_device = 0;
  uint64_t device_bytes_used = 0;

  // Execution shape.
  std::vector<LevelTrace> levels;
  std::vector<uint64_t> unit_busy_cycles;
  std::vector<uint64_t> unit_tasks;

  /// Mean fraction of kernel time the join units spent busy.
  double AvgUnitUtilization() const;
};

/// Exact size of the device memory image RunPbsm serialises for
/// `partition` (both tile block stores plus the task table) -- the
/// Plan-phase bytes_to_device accounting, equal to the report's
/// bytes_to_device of the eventual run. Lives beside RunPbsm's
/// serialisation so the two cannot drift; the equality is pinned by
/// tests/join/accel_engine_test.cc (ReportAndPlanAccounting).
uint64_t PbsmDeviceImageBytes(const HierarchicalPartition& partition);

/// The simulated device. Stateless between runs; every Run* call builds a
/// fresh memory layout and fabric.
class Accelerator {
 public:
  explicit Accelerator(const AcceleratorConfig& config = AcceleratorConfig());

  const AcceleratorConfig& config() const { return config_; }

  /// Joins two packed R-trees with BFS synchronous traversal. If `result`
  /// is non-null, the device's result buffer is copied into it. A non-null
  /// `sink` observes result bursts/level syncs as they retire, letting the
  /// host stream results out while the kernel still runs (see ResultSink).
  AcceleratorReport RunSyncTraversal(const PackedRTree& r, const PackedRTree& s,
                                     JoinResult* result = nullptr,
                                     const ResultSink* sink = nullptr);

  /// Joins two datasets over a pre-built hierarchical PBSM partition.
  /// Over-cap tiles are split into block pairs of at most
  /// `partition.tile_cap` objects per side. `sink` as in RunSyncTraversal
  /// (PBSM retires one burst per flushed tile batch and a single final
  /// sync).
  AcceleratorReport RunPbsm(const Dataset& r, const Dataset& s,
                            const HierarchicalPartition& partition,
                            JoinResult* result = nullptr,
                            const ResultSink* sink = nullptr);

 private:
  AcceleratorConfig config_;
};

}  // namespace swiftspatial::hw

#endif  // SWIFTSPATIAL_HW_ACCELERATOR_H_
