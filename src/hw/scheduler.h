// On-chip schedulers (§3.4). Executing the control flow on chip is the
// paper's answer to host-driven scheduling overhead: the scheduler talks
// only to the other function units through FIFOs.
//
//  * SyncTraversalScheduler (§3.4.1, Fig. 5): BFS synchronous traversal.
//    Per level it announces the level's write region to the task queue
//    manager, burst-loads the previous level's qualifying pairs into its
//    task cache, dispatches tasks round-robin to the join units via the
//    read unit, and barriers on the units' done tokens before advancing.
//
//  * PbsmScheduler (§3.4.2): dispatches a pre-partitioned tile-pair task
//    table, either statically (task i -> unit i mod N) or dynamically
//    (first unit with a free slot).
#ifndef SWIFTSPATIAL_HW_SCHEDULER_H_
#define SWIFTSPATIAL_HW_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "hw/config.h"
#include "hw/messages.h"
#include "hw/sim/fifo.h"
#include "hw/sim/simulator.h"
#include "rtree/packed_rtree.h"

namespace swiftspatial::hw {

/// Location of one packed tree (or tile-block store) in device memory.
struct TreeRef {
  uint64_t base = 0;       ///< region base address
  uint32_t stride = 0;     ///< bytes per node/block
  NodeIndex root = 0;      ///< root node index (trees only)
};

/// Per-level progress record (BFS levels; PBSM runs emit one record).
struct LevelTrace {
  int level = 0;
  uint64_t tasks = 0;
  sim::Cycle end_cycle = 0;
};

/// PBSM task-table entry as stored in device memory.
struct PbsmTaskDesc {
  int32_t r_block = 0;
  int32_t s_block = 0;
  Box tile;
};
static_assert(sizeof(PbsmTaskDesc) == 24, "descriptor must match DRAM layout");

/// Channels shared by both scheduler variants.
struct SchedulerPorts {
  sim::Fifo<ReadCommand>* read_commands = nullptr;
  sim::Fifo<TaskFetchRequest>* fetch_requests = nullptr;
  sim::Fifo<TaskFetchResponse>* fetch_responses = nullptr;
  sim::Fifo<TaskStreamItem>* task_stream = nullptr;
  sim::Fifo<ResultStreamItem>* result_stream = nullptr;
  sim::Fifo<SyncResponse>* tqm_sync = nullptr;
  sim::Fifo<SyncResponse>* write_sync = nullptr;
  sim::Fifo<DoneToken>* done = nullptr;
};

class SyncTraversalScheduler {
 public:
  SyncTraversalScheduler(sim::Simulator* sim, const AcceleratorConfig* config,
                         SchedulerPorts ports, TreeRef r_tree, TreeRef s_tree,
                         uint64_t task_region_a, uint64_t task_region_b);

  /// The scheduler's process body; spawn on the simulator.
  sim::Process Run();

  uint64_t total_results() const { return total_results_; }
  const std::vector<LevelTrace>& levels() const { return levels_; }

 private:
  sim::Simulator* sim_;
  const AcceleratorConfig* config_;
  SchedulerPorts ports_;
  TreeRef r_tree_;
  TreeRef s_tree_;
  uint64_t task_regions_[2];

  uint64_t total_results_ = 0;
  std::vector<LevelTrace> levels_;
};

class PbsmScheduler {
 public:
  PbsmScheduler(sim::Simulator* sim, const AcceleratorConfig* config,
                SchedulerPorts ports, TreeRef r_blocks, TreeRef s_blocks,
                uint64_t task_table_base, uint64_t num_tasks);

  /// The scheduler's process body; spawn on the simulator.
  sim::Process Run();

  uint64_t total_results() const { return total_results_; }
  const std::vector<LevelTrace>& levels() const { return levels_; }

 private:
  sim::Simulator* sim_;
  const AcceleratorConfig* config_;
  SchedulerPorts ports_;
  TreeRef r_blocks_;
  TreeRef s_blocks_;
  uint64_t task_table_base_;
  uint64_t num_tasks_;

  uint64_t total_results_ = 0;
  std::vector<LevelTrace> levels_;
};

}  // namespace swiftspatial::hw

#endif  // SWIFTSPATIAL_HW_SCHEDULER_H_
