#include "hw/task_queue_manager.h"

#include <utility>

#include "common/logging.h"

namespace swiftspatial::hw {

TaskQueueManager::TaskQueueManager(
    sim::Simulator* sim, sim::Dram* dram, MemoryLayout* mem,
    const AcceleratorConfig* config, sim::Fifo<TaskStreamItem>* task_stream,
    sim::Fifo<SyncResponse>* sync_out,
    sim::Fifo<TaskFetchRequest>* fetch_requests,
    sim::Fifo<TaskFetchResponse>* fetch_responses)
    : sim_(sim),
      dram_(dram),
      mem_(mem),
      config_(config),
      task_stream_(task_stream),
      sync_out_(sync_out),
      fetch_requests_(fetch_requests),
      fetch_responses_(fetch_responses) {}

sim::Process TaskQueueManager::RunWriter() {
  for (;;) {
    TaskStreamItem item = co_await task_stream_->Pop();
    switch (item.kind) {
      case TaskStreamItem::Kind::kLevelStart:
        write_cursor_ = item.write_base;
        level_pairs_ = 0;
        break;
      case TaskStreamItem::Kind::kBurst: {
        if (item.tasks.empty()) break;
        // Tasks are 8-byte (int32, int32) pairs, written sequentially --
        // the self-incrementing-counter write path of §3.5.
        static_assert(sizeof(NodePairTask) == 8);
        const uint64_t bytes = item.tasks.size() * sizeof(NodePairTask);
        mem_->Write(write_cursor_, item.tasks.data(), bytes);
        last_write_complete_ = dram_->Issue(write_cursor_, bytes,
                                            /*is_write=*/true);
        write_cursor_ += bytes;
        level_pairs_ += item.tasks.size();
        total_pairs_written_ += item.tasks.size();
        bursts_written_ += 1;
        // Posted write: the manager only spends the handshake cycles; the
        // channel time is tracked by the DRAM model.
        co_await sim_->Delay(1);
        break;
      }
      case TaskStreamItem::Kind::kSync:
        // Level barrier: all of this level's bursts are already in the FIFO
        // ahead of the sync marker; wait for the last write to land so the
        // next level reads consistent data.
        co_await sim_->WaitUntil(last_write_complete_);
        co_await sync_out_->Push(SyncResponse{level_pairs_});
        break;
      case TaskStreamItem::Kind::kFinish:
        co_return;
    }
  }
}

sim::Process TaskQueueManager::RunReader() {
  for (;;) {
    TaskFetchRequest req = co_await fetch_requests_->Pop();
    if (req.kind == TaskFetchRequest::Kind::kFinish) co_return;
    SWIFT_CHECK_GT(req.bytes, 0u);
    TaskFetchResponse resp;
    resp.ready_at = dram_->Issue(req.addr, req.bytes, /*is_write=*/false);
    resp.bytes.resize(req.bytes);
    mem_->Read(req.addr, resp.bytes.data(), req.bytes);
    co_await fetch_responses_->Push(std::move(resp));
  }
}

}  // namespace swiftspatial::hw
