// Larger-than-device-memory joins (§6 "Handling datasets larger than FPGA
// memory"). The paper sketches three solutions; this module implements the
// first two:
//
//  * kMultipleDevices -- partition the data spatially and give each
//    partition's sub-join to its own FPGA; sub-joins run concurrently and
//    results are aggregated (the paper's "handled by multiple FPGAs before
//    the results are aggregated").
//  * kSingleDeviceIterative -- one FPGA processes all partitions in
//    sequence ("a single FPGA can process all data partitions
//    iteratively"), paying the per-partition transfer each time.
//
// Partitioning uses a uniform grid with multi-assignment plus the
// reference-point rule, so the union of sub-join results is exactly the
// global join (no duplicates, nothing lost). Within each partition the
// device runs its PBSM flow over a hierarchical sub-partition.
//
// A device memory capacity (bytes) models the constraint: the planner
// raises the grid resolution until every partition's working set fits.
#ifndef SWIFTSPATIAL_HW_MULTI_DEVICE_H_
#define SWIFTSPATIAL_HW_MULTI_DEVICE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "datagen/dataset.h"
#include "hw/accelerator.h"

namespace swiftspatial::hw {

/// Execution strategy for out-of-memory joins (§6).
enum class OutOfMemoryStrategy {
  kMultipleDevices,
  kSingleDeviceIterative,
};

const char* OutOfMemoryStrategyToString(OutOfMemoryStrategy s);

struct MultiDeviceConfig {
  AcceleratorConfig device;
  /// Per-device DRAM capacity in bytes. The real U250 has 64 GB; tests and
  /// benches use small values to force partitioning.
  uint64_t device_memory_bytes = 64ULL << 30;
  OutOfMemoryStrategy strategy = OutOfMemoryStrategy::kMultipleDevices;
  /// Hierarchical-partition tile cap used inside each partition.
  int tile_cap = 16;
  /// Upper bound on the partition search (grid cells per axis).
  int max_grid = 64;
  /// Lower bound on the partition search: forces at least min_grid^2 grid
  /// cells even when one device could hold everything. This is how the
  /// sharded path is exercised deliberately (e.g. the "accel-pbsm-4x"
  /// engine pins a 2x2 grid = up to 4 concurrent devices).
  int min_grid = 1;
  /// Streaming hook: when set, each partition's *deduplicated, global-id*
  /// results are handed over as that partition's sub-join retires, instead
  /// of only accumulating into the final JoinResult. `shard_id` is the
  /// partition's outer grid tile index -- a pure function of the grid
  /// geometry, NOT the enumeration order of populated partitions -- so a
  /// shard re-executed later (e.g. by the dist/ fault-recovery path after
  /// a node failure) reports the same id and downstream dedup can match
  /// retried output to the original deterministically. Because streamed
  /// pairs cannot be recalled, a run that would need a grid-refinement
  /// retry (actual footprint overrunning device memory) fails with
  /// InvalidArgument rather than re-streaming duplicates; size
  /// device_memory_bytes generously when streaming.
  std::function<void(int shard_id, std::vector<ResultPair>)> partition_sink;
};

/// Outcome of a partitioned join.
struct MultiDeviceReport {
  /// Partitions actually used (grid cells with work).
  std::size_t partitions = 0;
  int grid_resolution = 0;
  /// Devices employed (= partitions for kMultipleDevices, 1 otherwise).
  std::size_t devices = 0;
  /// Modelled end-to-end seconds. Multiple devices: max over concurrent
  /// sub-joins; iterative: sum over sequential ones.
  double total_seconds = 0;
  /// Largest per-partition device footprint (must fit device memory).
  uint64_t max_partition_bytes = 0;
  uint64_t num_results = 0;
  /// Per-partition device reports, in grid order.
  std::vector<AcceleratorReport> sub_reports;
};

/// Joins r and s under a device-memory constraint (see file comment).
/// Fails with InvalidArgument when even the finest grid cannot fit a
/// partition into device memory.
Result<MultiDeviceReport> PartitionedJoin(const Dataset& r, const Dataset& s,
                                          const MultiDeviceConfig& config,
                                          JoinResult* result = nullptr);

}  // namespace swiftspatial::hw

#endif  // SWIFTSPATIAL_HW_MULTI_DEVICE_H_
