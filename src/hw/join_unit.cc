#include "hw/join_unit.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "geometry/box.h"

namespace swiftspatial::hw {

JoinUnit::JoinUnit(int id, sim::Simulator* sim,
                   const AcceleratorConfig* config,
                   sim::Fifo<NodePairData>* input,
                   sim::Fifo<TaskStreamItem>* tasks_out,
                   sim::Fifo<ResultStreamItem>* results_out,
                   sim::Fifo<DoneToken>* done_out)
    : id_(id),
      sim_(sim),
      config_(config),
      input_(input),
      tasks_out_(tasks_out),
      results_out_(results_out),
      done_out_(done_out),
      burst_(config->burst_bytes, sizeof(ResultPair),
             config->burst_buffer_enabled) {}

sim::Process JoinUnit::Run() {
  for (;;) {
    NodePairData d = co_await input_->Pop();
    if (d.finish) co_return;

    // The read unit issued the DRAM fetch; data is usable at ready_at.
    co_await sim_->WaitUntil(d.ready_at);
    const sim::Cycle start = sim_->now();

    const int rc = static_cast<int>(d.r_entries.size());
    const int sc = static_cast<int>(d.s_entries.size());

    // --- Functional join. ---
    std::vector<ResultPair> results;
    std::vector<NodePairTask> next_tasks;
    uint64_t predicates = 0;

    const bool emit_results = d.pbsm || (d.r_leaf && d.s_leaf);
    if (emit_results) {
      predicates = static_cast<uint64_t>(rc) * sc;
      for (const PackedEntry& re : d.r_entries) {
        for (const PackedEntry& se : d.s_entries) {
          if (!Intersects(re.box, se.box)) continue;
          if (d.pbsm && !ReferencePointInTile(re.box, se.box, d.tile)) continue;
          results.push_back({re.id, se.id});
        }
      }
    } else if (!d.r_leaf && !d.s_leaf) {
      predicates = static_cast<uint64_t>(rc) * sc;
      for (const PackedEntry& re : d.r_entries) {
        for (const PackedEntry& se : d.s_entries) {
          if (Intersects(re.box, se.box)) next_tasks.push_back({re.id, se.id});
        }
      }
    } else if (d.r_leaf) {
      // Mixed heights: keep the leaf fixed, descend the directory (Alg. 2).
      Box r_mbr = Box::Empty();
      for (const PackedEntry& re : d.r_entries) r_mbr.Expand(re.box);
      predicates = static_cast<uint64_t>(sc);
      for (const PackedEntry& se : d.s_entries) {
        if (Intersects(r_mbr, se.box)) next_tasks.push_back({d.r_index, se.id});
      }
    } else {
      Box s_mbr = Box::Empty();
      for (const PackedEntry& se : d.s_entries) s_mbr.Expand(se.box);
      predicates = static_cast<uint64_t>(rc);
      for (const PackedEntry& re : d.r_entries) {
        if (Intersects(re.box, s_mbr)) next_tasks.push_back({re.id, d.s_index});
      }
    }

    // --- Timing: SRAM fill + pipelined predicate evaluation. ---
    const sim::Cycle load_cycles = static_cast<sim::Cycle>(std::max(rc, sc));
    co_await sim_->Delay(load_cycles + predicates + config_->pipeline_depth);

    // --- Emit through the burst buffer. ---
    std::size_t offset = 0;
    for (const std::size_t chunk : burst_.ChunkSizes(results.size())) {
      ResultStreamItem item;
      item.kind = ResultStreamItem::Kind::kBurst;
      item.pairs.assign(results.begin() + offset,
                        results.begin() + offset + chunk);
      offset += chunk;
      co_await results_out_->Push(std::move(item));
    }
    offset = 0;
    for (const std::size_t chunk : burst_.ChunkSizes(next_tasks.size())) {
      TaskStreamItem item;
      item.kind = TaskStreamItem::Kind::kBurst;
      item.tasks.assign(next_tasks.begin() + offset,
                        next_tasks.begin() + offset + chunk);
      offset += chunk;
      co_await tasks_out_->Push(std::move(item));
    }

    tasks_joined_ += 1;
    predicate_evaluations_ += predicates;
    results_emitted_ += results.size();
    intermediate_pairs_ += next_tasks.size();
    busy_cycles_ += sim_->now() - start;

    co_await done_out_->Push(DoneToken{id_});
  }
}

}  // namespace swiftspatial::hw
