// Task queue manager (§3.5, Fig. 6): persists intermediate node pairs
// (future tasks) to DRAM and serves the scheduler's burst task loads. The
// manager is modelled as two cooperating processes sharing the DRAM:
//
//  * the writer drains the shared task stream, appending bursts at the
//    level's write cursor and counting pairs; level-start and sync markers
//    arrive through the same FIFO, which guarantees they are ordered with
//    respect to the join units' bursts;
//  * the reader answers TaskFetchRequests with raw task bytes (the
//    scheduler's "burst loading" cache fills, §3.4.1).
#ifndef SWIFTSPATIAL_HW_TASK_QUEUE_MANAGER_H_
#define SWIFTSPATIAL_HW_TASK_QUEUE_MANAGER_H_

#include <cstdint>

#include "hw/config.h"
#include "hw/memory_layout.h"
#include "hw/messages.h"
#include "hw/sim/dram.h"
#include "hw/sim/fifo.h"
#include "hw/sim/simulator.h"

namespace swiftspatial::hw {

class TaskQueueManager {
 public:
  TaskQueueManager(sim::Simulator* sim, sim::Dram* dram, MemoryLayout* mem,
                   const AcceleratorConfig* config,
                   sim::Fifo<TaskStreamItem>* task_stream,
                   sim::Fifo<SyncResponse>* sync_out,
                   sim::Fifo<TaskFetchRequest>* fetch_requests,
                   sim::Fifo<TaskFetchResponse>* fetch_responses);

  /// Writer process: task stream -> DRAM.
  sim::Process RunWriter();

  /// Reader process: fetch requests -> DRAM -> task bytes.
  sim::Process RunReader();

  uint64_t total_pairs_written() const { return total_pairs_written_; }
  uint64_t bursts_written() const { return bursts_written_; }

 private:
  sim::Simulator* sim_;
  sim::Dram* dram_;
  MemoryLayout* mem_;
  const AcceleratorConfig* config_;
  sim::Fifo<TaskStreamItem>* task_stream_;
  sim::Fifo<SyncResponse>* sync_out_;
  sim::Fifo<TaskFetchRequest>* fetch_requests_;
  sim::Fifo<TaskFetchResponse>* fetch_responses_;

  uint64_t write_cursor_ = 0;
  uint64_t level_pairs_ = 0;
  uint64_t total_pairs_written_ = 0;
  uint64_t bursts_written_ = 0;
  sim::Cycle last_write_complete_ = 0;
};

}  // namespace swiftspatial::hw

#endif  // SWIFTSPATIAL_HW_TASK_QUEUE_MANAGER_H_
