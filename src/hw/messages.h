// Message types flowing between the simulated function units. Each struct
// corresponds to one on-chip FIFO payload in Fig. 2 of the paper.
#ifndef SWIFTSPATIAL_HW_MESSAGES_H_
#define SWIFTSPATIAL_HW_MESSAGES_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "join/result.h"
#include "join/sync_traversal.h"
#include "rtree/packed_rtree.h"
#include "hw/sim/simulator.h"

namespace swiftspatial::hw {

/// Scheduler -> read unit: fetch a node (or tile block) pair and forward it
/// to a join unit.
struct ReadCommand {
  enum class Kind { kJoin, kFinish };
  Kind kind = Kind::kJoin;
  int unit = 0;
  // Node/block indices (written into intermediate task pairs) and their
  // physical addresses/sizes.
  int32_t r_index = 0;
  int32_t s_index = 0;
  uint64_t r_addr = 0;
  uint64_t s_addr = 0;
  uint32_t r_bytes = 0;
  uint32_t s_bytes = 0;
  /// PBSM mode: every qualifying pair is a result, deduplicated against
  /// `tile` by the reference-point rule.
  bool pbsm = false;
  Box tile;
};

/// Read unit -> join unit: a fetched node pair. `ready_at` is the cycle the
/// DRAM data arrives; the join unit may not consume it earlier.
struct NodePairData {
  bool finish = false;
  sim::Cycle ready_at = 0;
  int32_t r_index = 0;
  int32_t s_index = 0;
  bool r_leaf = true;
  bool s_leaf = true;
  bool pbsm = false;
  Box tile;
  std::vector<PackedEntry> r_entries;
  std::vector<PackedEntry> s_entries;
};

/// Join units -> task queue manager stream.
struct TaskStreamItem {
  enum class Kind { kLevelStart, kBurst, kSync, kFinish };
  Kind kind = Kind::kBurst;
  /// kLevelStart: base address for this level's intermediate results.
  uint64_t write_base = 0;
  /// kBurst: qualifying directory pairs (future tasks).
  std::vector<NodePairTask> tasks;
};

/// Join units -> result write unit stream.
struct ResultStreamItem {
  enum class Kind { kBurst, kSync, kFinish };
  Kind kind = Kind::kBurst;
  std::vector<ResultPair> pairs;
};

/// Scheduler -> task queue manager (read side): burst-load task descriptors.
struct TaskFetchRequest {
  enum class Kind { kFetch, kFinish };
  Kind kind = Kind::kFetch;
  uint64_t addr = 0;
  uint32_t bytes = 0;
};

/// Task queue manager -> scheduler: raw task bytes plus data-arrival time.
struct TaskFetchResponse {
  std::vector<uint8_t> bytes;
  sim::Cycle ready_at = 0;
};

/// Task queue manager / write unit -> scheduler sync acknowledgement.
struct SyncResponse {
  /// Pairs written since the last level start (TQM) or in total (write
  /// unit).
  uint64_t pairs_written = 0;
};

/// Join unit -> scheduler completion token.
struct DoneToken {
  int unit = 0;
};

}  // namespace swiftspatial::hw

#endif  // SWIFTSPATIAL_HW_MESSAGES_H_
