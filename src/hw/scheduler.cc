#include "hw/scheduler.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <utility>

#include "common/logging.h"
#include "join/sync_traversal.h"

namespace swiftspatial::hw {

const char* DispatchPolicyToString(DispatchPolicy p) {
  switch (p) {
    case DispatchPolicy::kStatic:
      return "static";
    case DispatchPolicy::kDynamic:
      return "dynamic";
  }
  return "unknown";
}

SyncTraversalScheduler::SyncTraversalScheduler(
    sim::Simulator* sim, const AcceleratorConfig* config, SchedulerPorts ports,
    TreeRef r_tree, TreeRef s_tree, uint64_t task_region_a,
    uint64_t task_region_b)
    : sim_(sim),
      config_(config),
      ports_(ports),
      r_tree_(r_tree),
      s_tree_(s_tree),
      task_regions_{task_region_a, task_region_b} {}

sim::Process SyncTraversalScheduler::Run() {
  const int num_units = config_->num_join_units;
  // Level 0's single task (the root pair) lives directly in the scheduler's
  // SRAM; deeper levels are burst-loaded from the task queue regions.
  std::deque<NodePairTask> cache = {{r_tree_.root, s_tree_.root}};
  uint64_t level_tasks = 1;
  int level = 0;

  for (;;) {
    // Announce where this level's intermediate pairs (= next level's tasks)
    // will be written. Goes through the task stream so it is ordered before
    // the join units' bursts.
    TaskStreamItem start;
    start.kind = TaskStreamItem::Kind::kLevelStart;
    start.write_base = task_regions_[(level + 1) % 2];
    co_await ports_.task_stream->Push(std::move(start));

    const uint64_t read_base = task_regions_[level % 2];
    uint64_t fetched = level == 0 ? 1 : 0;  // the root pair is pre-cached
    uint64_t dispatched = 0;
    const std::size_t cache_capacity =
        config_->burst_loading_enabled ? config_->scheduler_cache_tasks : 1;

    while (dispatched < level_tasks) {
      if (cache.empty()) {
        // Burst-load the next run of tasks into the cache (§3.4.1).
        const uint64_t want = std::min<uint64_t>(cache_capacity,
                                                 level_tasks - fetched);
        TaskFetchRequest req;
        req.addr = read_base + fetched * sizeof(NodePairTask);
        req.bytes = static_cast<uint32_t>(want * sizeof(NodePairTask));
        co_await ports_.fetch_requests->Push(std::move(req));
        TaskFetchResponse resp = co_await ports_.fetch_responses->Pop();
        co_await sim_->WaitUntil(resp.ready_at);
        SWIFT_CHECK_EQ(resp.bytes.size(), want * sizeof(NodePairTask));
        for (uint64_t i = 0; i < want; ++i) {
          NodePairTask t;
          std::memcpy(&t, resp.bytes.data() + i * sizeof(t), sizeof(t));
          cache.push_back(t);
        }
        fetched += want;
      }
      const NodePairTask task = cache.front();
      cache.pop_front();

      ReadCommand cmd;
      cmd.kind = ReadCommand::Kind::kJoin;
      cmd.unit = static_cast<int>(dispatched % num_units);  // round robin
      cmd.r_index = task.r;
      cmd.s_index = task.s;
      cmd.r_addr = r_tree_.base + static_cast<uint64_t>(task.r) * r_tree_.stride;
      cmd.s_addr = s_tree_.base + static_cast<uint64_t>(task.s) * s_tree_.stride;
      cmd.r_bytes = r_tree_.stride;
      cmd.s_bytes = s_tree_.stride;
      co_await sim_->Delay(config_->dispatch_cycles);
      co_await ports_.read_commands->Push(std::move(cmd));
      ++dispatched;
    }

    // Level barrier: every dispatched task acknowledges completion.
    for (uint64_t i = 0; i < dispatched; ++i) {
      (void)co_await ports_.done->Pop();
    }

    // Ask the task queue manager how many pairs the level produced; its
    // reply also guarantees the writes have landed.
    TaskStreamItem sync;
    sync.kind = TaskStreamItem::Kind::kSync;
    co_await ports_.task_stream->Push(std::move(sync));
    const SyncResponse tqm = co_await ports_.tqm_sync->Pop();

    levels_.push_back(LevelTrace{level, level_tasks, sim_->now()});
    level_tasks = tqm.pairs_written;
    ++level;
    if (level_tasks == 0) break;
  }

  // Collect the final result count, then shut the fabric down.
  ResultStreamItem rsync;
  rsync.kind = ResultStreamItem::Kind::kSync;
  co_await ports_.result_stream->Push(std::move(rsync));
  const SyncResponse wr = co_await ports_.write_sync->Pop();
  total_results_ = wr.pairs_written;

  ReadCommand fin;
  fin.kind = ReadCommand::Kind::kFinish;
  co_await ports_.read_commands->Push(std::move(fin));
  TaskStreamItem tfin;
  tfin.kind = TaskStreamItem::Kind::kFinish;
  co_await ports_.task_stream->Push(std::move(tfin));
  ResultStreamItem rfin;
  rfin.kind = ResultStreamItem::Kind::kFinish;
  co_await ports_.result_stream->Push(std::move(rfin));
  TaskFetchRequest ffin;
  ffin.kind = TaskFetchRequest::Kind::kFinish;
  co_await ports_.fetch_requests->Push(std::move(ffin));
}

PbsmScheduler::PbsmScheduler(sim::Simulator* sim,
                             const AcceleratorConfig* config,
                             SchedulerPorts ports, TreeRef r_blocks,
                             TreeRef s_blocks, uint64_t task_table_base,
                             uint64_t num_tasks)
    : sim_(sim),
      config_(config),
      ports_(ports),
      r_blocks_(r_blocks),
      s_blocks_(s_blocks),
      task_table_base_(task_table_base),
      num_tasks_(num_tasks) {}

sim::Process PbsmScheduler::Run() {
  const int num_units = config_->num_join_units;
  std::deque<PbsmTaskDesc> cache;
  uint64_t fetched = 0;
  uint64_t dispatched = 0;
  uint64_t completed = 0;
  std::vector<int> inflight(num_units, 0);
  const std::size_t cache_capacity =
      config_->burst_loading_enabled ? config_->scheduler_cache_tasks : 1;

  while (dispatched < num_tasks_) {
    if (cache.empty()) {
      const uint64_t want =
          std::min<uint64_t>(cache_capacity, num_tasks_ - fetched);
      TaskFetchRequest req;
      req.addr = task_table_base_ + fetched * sizeof(PbsmTaskDesc);
      req.bytes = static_cast<uint32_t>(want * sizeof(PbsmTaskDesc));
      co_await ports_.fetch_requests->Push(std::move(req));
      TaskFetchResponse resp = co_await ports_.fetch_responses->Pop();
      co_await sim_->WaitUntil(resp.ready_at);
      for (uint64_t i = 0; i < want; ++i) {
        PbsmTaskDesc d;
        std::memcpy(&d, resp.bytes.data() + i * sizeof(d), sizeof(d));
        cache.push_back(d);
      }
      fetched += want;
    }
    const PbsmTaskDesc desc = cache.front();
    cache.pop_front();

    // Drain completion tokens opportunistically (they free unit slots).
    DoneToken token;
    while (ports_.done->TryPop(&token)) {
      --inflight[token.unit];
      ++completed;
    }

    int unit;
    if (config_->pbsm_policy == DispatchPolicy::kStatic) {
      unit = static_cast<int>(dispatched % num_units);
    } else {
      // Dynamic: first unit with a free slot; if none, wait for a done
      // token (§3.4.2 "allocated to the first available idle join unit").
      for (;;) {
        unit = -1;
        for (int u = 0; u < num_units; ++u) {
          const int candidate =
              static_cast<int>((dispatched + u) % num_units);
          if (inflight[candidate] < config_->max_inflight_per_unit) {
            unit = candidate;
            break;
          }
        }
        if (unit >= 0) break;
        token = co_await ports_.done->Pop();
        --inflight[token.unit];
        ++completed;
      }
    }
    ++inflight[unit];

    ReadCommand cmd;
    cmd.kind = ReadCommand::Kind::kJoin;
    cmd.unit = unit;
    cmd.r_index = desc.r_block;
    cmd.s_index = desc.s_block;
    cmd.r_addr =
        r_blocks_.base + static_cast<uint64_t>(desc.r_block) * r_blocks_.stride;
    cmd.s_addr =
        s_blocks_.base + static_cast<uint64_t>(desc.s_block) * s_blocks_.stride;
    cmd.r_bytes = r_blocks_.stride;
    cmd.s_bytes = s_blocks_.stride;
    cmd.pbsm = true;
    cmd.tile = desc.tile;
    co_await sim_->Delay(config_->dispatch_cycles);
    co_await ports_.read_commands->Push(std::move(cmd));
    ++dispatched;
  }

  while (completed < dispatched) {
    (void)co_await ports_.done->Pop();
    ++completed;
  }

  ResultStreamItem rsync;
  rsync.kind = ResultStreamItem::Kind::kSync;
  co_await ports_.result_stream->Push(std::move(rsync));
  const SyncResponse wr = co_await ports_.write_sync->Pop();
  total_results_ = wr.pairs_written;
  levels_.push_back(LevelTrace{0, num_tasks_, sim_->now()});

  ReadCommand fin;
  fin.kind = ReadCommand::Kind::kFinish;
  co_await ports_.read_commands->Push(std::move(fin));
  ResultStreamItem rfin;
  rfin.kind = ResultStreamItem::Kind::kFinish;
  co_await ports_.result_stream->Push(std::move(rfin));
  TaskFetchRequest ffin;
  ffin.kind = TaskFetchRequest::Kind::kFinish;
  co_await ports_.fetch_requests->Push(std::move(ffin));
}

}  // namespace swiftspatial::hw
