#include "hw/accelerator.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "hw/join_unit.h"
#include "hw/memory_layout.h"
#include "hw/messages.h"
#include "hw/read_unit.h"
#include "hw/sim/fifo.h"
#include "hw/sim/simulator.h"
#include "hw/task_queue_manager.h"
#include "hw/write_unit.h"

namespace swiftspatial::hw {

namespace {

// All channels and function units of one device instance. Groups ownership
// so both Run* entry points share the assembly/teardown logic.
struct Fabric {
  sim::Simulator sim;
  std::unique_ptr<sim::Dram> dram;
  MemoryLayout mem;

  std::unique_ptr<sim::Fifo<ReadCommand>> read_commands;
  std::vector<std::unique_ptr<sim::Fifo<NodePairData>>> unit_inputs;
  std::unique_ptr<sim::Fifo<TaskStreamItem>> task_stream;
  std::unique_ptr<sim::Fifo<ResultStreamItem>> result_stream;
  std::unique_ptr<sim::Fifo<TaskFetchRequest>> fetch_requests;
  std::unique_ptr<sim::Fifo<TaskFetchResponse>> fetch_responses;
  std::unique_ptr<sim::Fifo<SyncResponse>> tqm_sync;
  std::unique_ptr<sim::Fifo<SyncResponse>> write_sync;
  std::unique_ptr<sim::Fifo<DoneToken>> done;

  std::unique_ptr<ReadUnit> read_unit;
  std::vector<std::unique_ptr<JoinUnit>> join_units;
  std::unique_ptr<TaskQueueManager> tqm;
  std::unique_ptr<WriteUnit> write_unit;

  explicit Fabric(const AcceleratorConfig& config) {
    dram = std::make_unique<sim::Dram>(&sim, config.dram);
    read_commands = std::make_unique<sim::Fifo<ReadCommand>>(
        &sim, config.command_queue_depth, "read_cmds");
    for (int u = 0; u < config.num_join_units; ++u) {
      unit_inputs.push_back(std::make_unique<sim::Fifo<NodePairData>>(
          &sim, config.unit_queue_depth, "unit_in"));
    }
    task_stream = std::make_unique<sim::Fifo<TaskStreamItem>>(
        &sim, config.stream_fifo_depth, "task_stream");
    result_stream = std::make_unique<sim::Fifo<ResultStreamItem>>(
        &sim, config.stream_fifo_depth, "result_stream");
    fetch_requests =
        std::make_unique<sim::Fifo<TaskFetchRequest>>(&sim, 1, "fetch_req");
    fetch_responses =
        std::make_unique<sim::Fifo<TaskFetchResponse>>(&sim, 1, "fetch_resp");
    tqm_sync = std::make_unique<sim::Fifo<SyncResponse>>(&sim, 1, "tqm_sync");
    write_sync =
        std::make_unique<sim::Fifo<SyncResponse>>(&sim, 1, "write_sync");
    done = std::make_unique<sim::Fifo<DoneToken>>(
        &sim, sim::Fifo<DoneToken>::kUnbounded, "done");
  }

  // Builds the units shared by both control flows. `results_base` is the
  // write unit's self-incrementing counter start; `sink` (nullable) observes
  // the write unit's result bursts.
  void BuildUnits(const AcceleratorConfig& config, uint64_t results_base,
                  const ResultSink* sink) {
    std::vector<sim::Fifo<NodePairData>*> inputs;
    for (auto& f : unit_inputs) inputs.push_back(f.get());
    read_unit = std::make_unique<ReadUnit>(&sim, dram.get(), &mem, &config,
                                           read_commands.get(), inputs);
    for (int u = 0; u < config.num_join_units; ++u) {
      join_units.push_back(std::make_unique<JoinUnit>(
          u, &sim, &config, unit_inputs[u].get(), task_stream.get(),
          result_stream.get(), done.get()));
    }
    tqm = std::make_unique<TaskQueueManager>(
        &sim, dram.get(), &mem, &config, task_stream.get(), tqm_sync.get(),
        fetch_requests.get(), fetch_responses.get());
    write_unit = std::make_unique<WriteUnit>(&sim, dram.get(), &mem, &config,
                                             results_base,
                                             result_stream.get(),
                                             write_sync.get(), sink);
  }

  SchedulerPorts Ports() {
    SchedulerPorts p;
    p.read_commands = read_commands.get();
    p.fetch_requests = fetch_requests.get();
    p.fetch_responses = fetch_responses.get();
    p.task_stream = task_stream.get();
    p.result_stream = result_stream.get();
    p.tqm_sync = tqm_sync.get();
    p.write_sync = write_sync.get();
    p.done = done.get();
    return p;
  }
};

// Collects counters common to both control flows into the report.
void FillReport(const AcceleratorConfig& config, Fabric& fabric,
                uint64_t total_results, const std::vector<LevelTrace>& levels,
                uint64_t results_base, JoinResult* result,
                AcceleratorReport* report) {
  report->kernel_cycles = fabric.sim.now();
  report->kernel_seconds = config.SecondsFor(report->kernel_cycles);
  report->num_results = total_results;
  report->levels = levels;

  for (const auto& ju : fabric.join_units) {
    report->stats.tasks += ju->tasks_joined();
    report->stats.predicate_evaluations += ju->predicate_evaluations();
    report->stats.intermediate_pairs += ju->intermediate_pairs();
    report->unit_busy_cycles.push_back(ju->busy_cycles());
    report->unit_tasks.push_back(ju->tasks_joined());
  }
  report->dram = fabric.dram->stats();
  report->dram_utilization = fabric.dram->Utilization();
  report->device_bytes_used = fabric.mem.TotalBytes();

  report->bytes_from_device = total_results * sizeof(ResultPair);
  report->host_transfer_seconds =
      config.PcieSeconds(report->bytes_to_device + report->bytes_from_device);
  report->launch_seconds = config.kernel_launch_seconds;
  report->total_seconds = report->kernel_seconds +
                          report->host_transfer_seconds +
                          report->launch_seconds;

  if (result != nullptr) {
    result->mutable_pairs().resize(total_results);
    if (total_results > 0) {
      fabric.mem.Read(results_base, result->mutable_pairs().data(),
                      total_results * sizeof(ResultPair));
    }
  }
}

}  // namespace

uint64_t PbsmDeviceImageBytes(const HierarchicalPartition& partition) {
  // The same arithmetic RunPbsm's serialisation below performs: tile
  // populations chunked to at most tile_cap per side, block strides padded
  // to the node layout, one descriptor per block cross product.
  const std::size_t cap =
      static_cast<std::size_t>(std::max(1, partition.tile_cap));
  uint64_t r_blocks = 0, s_blocks = 0, descs = 0;
  std::size_t max_r = 1, max_s = 1;
  for (const TileTask& task : partition.tasks) {
    const uint64_t nr = (task.r_objects.size() + cap - 1) / cap;
    const uint64_t ns = (task.s_objects.size() + cap - 1) / cap;
    r_blocks += nr;
    s_blocks += ns;
    descs += nr * ns;
    max_r = std::max(max_r, std::min(cap, task.r_objects.size()));
    max_s = std::max(max_s, std::min(cap, task.s_objects.size()));
  }
  return r_blocks * PackedRTree::StrideFor(static_cast<int>(max_r)) +
         s_blocks * PackedRTree::StrideFor(static_cast<int>(max_s)) +
         descs * sizeof(PbsmTaskDesc);
}

double AcceleratorReport::AvgUnitUtilization() const {
  if (unit_busy_cycles.empty() || kernel_cycles == 0) return 0.0;
  double sum = 0;
  for (const uint64_t busy : unit_busy_cycles) {
    sum += static_cast<double>(busy) / kernel_cycles;
  }
  return sum / unit_busy_cycles.size();
}

Accelerator::Accelerator(const AcceleratorConfig& config) : config_(config) {
  SWIFT_CHECK_GE(config_.num_join_units, 1);
}

AcceleratorReport Accelerator::RunSyncTraversal(const PackedRTree& r,
                                                const PackedRTree& s,
                                                JoinResult* result,
                                                const ResultSink* sink) {
  Fabric fabric(config_);
  AcceleratorReport report;

  // Device memory image: both trees, ping/pong task queues, result buffer.
  const uint64_t r_base = fabric.mem.AddRegion("tree_r", r.bytes());
  const uint64_t s_base = fabric.mem.AddRegion("tree_s", s.bytes());
  const uint64_t task_a = fabric.mem.AddRegion("task_queue_a");
  const uint64_t task_b = fabric.mem.AddRegion("task_queue_b");
  const uint64_t results_base = fabric.mem.AddRegion("results");
  report.bytes_to_device = r.bytes().size() + s.bytes().size();

  fabric.BuildUnits(config_, results_base, sink);

  TreeRef r_ref{r_base, static_cast<uint32_t>(r.node_stride()), r.root()};
  TreeRef s_ref{s_base, static_cast<uint32_t>(s.node_stride()), s.root()};
  SyncTraversalScheduler scheduler(&fabric.sim, &config_, fabric.Ports(),
                                   r_ref, s_ref, task_a, task_b);

  fabric.sim.Spawn(fabric.read_unit->Run());
  for (auto& ju : fabric.join_units) fabric.sim.Spawn(ju->Run());
  fabric.sim.Spawn(fabric.tqm->RunWriter());
  fabric.sim.Spawn(fabric.tqm->RunReader());
  fabric.sim.Spawn(fabric.write_unit->Run());
  fabric.sim.Spawn(scheduler.Run());
  fabric.sim.Run();

  FillReport(config_, fabric, scheduler.total_results(), scheduler.levels(),
             results_base, result, &report);
  return report;
}

AcceleratorReport Accelerator::RunPbsm(const Dataset& r, const Dataset& s,
                                       const HierarchicalPartition& partition,
                                       JoinResult* result,
                                       const ResultSink* sink) {
  SWIFT_CHECK_GT(partition.tile_cap, 0)
      << "partition must be built by PartitionHierarchical";
  Fabric fabric(config_);
  AcceleratorReport report;

  // --- Host-side serialisation of tile blocks and the task table. ---
  // Over-cap tiles are split into chunks of at most tile_cap objects per
  // side; the cross product of chunk pairs preserves the join (the
  // reference-point rule keeps deduplication correct since the tile box is
  // unchanged).
  const std::size_t cap = static_cast<std::size_t>(partition.tile_cap);
  struct Block {
    std::vector<PackedEntry> entries;
  };
  std::vector<Block> r_blocks, s_blocks;
  std::vector<PbsmTaskDesc> descs;

  auto make_chunks = [cap](const std::vector<ObjectId>& ids,
                           const Dataset& data, std::vector<Block>* out) {
    std::vector<int32_t> indices;
    for (std::size_t begin = 0; begin < ids.size(); begin += cap) {
      const std::size_t end = std::min(begin + cap, ids.size());
      Block block;
      for (std::size_t i = begin; i < end; ++i) {
        block.entries.push_back(
            {data.box(static_cast<std::size_t>(ids[i])), ids[i]});
      }
      indices.push_back(static_cast<int32_t>(out->size()));
      out->push_back(std::move(block));
    }
    return indices;
  };

  std::size_t max_r = 1, max_s = 1;
  for (const TileTask& task : partition.tasks) {
    const auto r_idx = make_chunks(task.r_objects, r, &r_blocks);
    const auto s_idx = make_chunks(task.s_objects, s, &s_blocks);
    for (const int32_t ri : r_idx) {
      max_r = std::max(max_r, r_blocks[ri].entries.size());
      for (const int32_t si : s_idx) {
        max_s = std::max(max_s, s_blocks[si].entries.size());
        descs.push_back(PbsmTaskDesc{ri, si, task.tile});
      }
    }
  }

  const uint32_t r_stride =
      static_cast<uint32_t>(PackedRTree::StrideFor(static_cast<int>(max_r)));
  const uint32_t s_stride =
      static_cast<uint32_t>(PackedRTree::StrideFor(static_cast<int>(max_s)));

  auto serialize_blocks = [](const std::vector<Block>& blocks,
                             uint32_t stride) {
    std::vector<uint8_t> bytes(blocks.size() * stride, 0);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      uint8_t* base = bytes.data() + b * stride;
      const uint16_t count = static_cast<uint16_t>(blocks[b].entries.size());
      std::memcpy(base, &count, sizeof(count));
      base[2] = 1;  // tile blocks behave as leaves
      std::memcpy(base + 8, blocks[b].entries.data(),
                  blocks[b].entries.size() * sizeof(PackedEntry));
    }
    return bytes;
  };
  std::vector<uint8_t> table_bytes(descs.size() * sizeof(PbsmTaskDesc));
  if (!descs.empty()) {
    std::memcpy(table_bytes.data(), descs.data(), table_bytes.size());
  }

  const uint64_t r_base =
      fabric.mem.AddRegion("tiles_r", serialize_blocks(r_blocks, r_stride));
  const uint64_t s_base =
      fabric.mem.AddRegion("tiles_s", serialize_blocks(s_blocks, s_stride));
  const uint64_t table_base =
      fabric.mem.AddRegion("task_table", std::move(table_bytes));
  const uint64_t results_base = fabric.mem.AddRegion("results");
  report.bytes_to_device = fabric.mem.TotalBytes();

  fabric.BuildUnits(config_, results_base, sink);

  TreeRef r_ref{r_base, r_stride, 0};
  TreeRef s_ref{s_base, s_stride, 0};
  PbsmScheduler scheduler(&fabric.sim, &config_, fabric.Ports(), r_ref, s_ref,
                          table_base, descs.size());

  fabric.sim.Spawn(fabric.read_unit->Run());
  for (auto& ju : fabric.join_units) fabric.sim.Spawn(ju->Run());
  // PBSM produces no intermediate tasks: the TQM writer is not spawned
  // (nothing pushes to the task stream), only the reader serving the
  // scheduler's task-table fetches.
  fabric.sim.Spawn(fabric.tqm->RunReader());
  fabric.sim.Spawn(fabric.write_unit->Run());
  fabric.sim.Spawn(scheduler.Run());
  fabric.sim.Run();

  FillReport(config_, fabric, scheduler.total_results(), scheduler.levels(),
             results_base, result, &report);
  return report;
}

}  // namespace swiftspatial::hw
