#include "hw/resource_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace swiftspatial::hw {

namespace {

// Measured kernel utilisation from Table 1 (percent of U250).
struct TablePoint {
  int units;
  ResourcePct pct;
};
constexpr int kNumPoints = 5;
const TablePoint kKernelTable[kNumPoints] = {
    {1, {0.67, 0.44, 2.46, 0.16}},
    {2, {0.87, 0.55, 3.65, 0.21}},
    {4, {1.24, 0.75, 6.03, 0.34}},
    {8, {1.96, 1.13, 10.79, 0.60}},
    {16, {3.35, 1.60, 28.05, 1.12}},
};

double Lerp(double x0, double y0, double x1, double y1, double x) {
  return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
}

ResourcePct Interpolate(int units) {
  SWIFT_CHECK_GE(units, 1);
  if (units <= kKernelTable[0].units) return kKernelTable[0].pct;
  for (int i = 1; i < kNumPoints; ++i) {
    if (units <= kKernelTable[i].units) {
      const auto& lo = kKernelTable[i - 1];
      const auto& hi = kKernelTable[i];
      ResourcePct out;
      out.lut = Lerp(lo.units, lo.pct.lut, hi.units, hi.pct.lut, units);
      out.ff = Lerp(lo.units, lo.pct.ff, hi.units, hi.pct.ff, units);
      out.bram = Lerp(lo.units, lo.pct.bram, hi.units, hi.pct.bram, units);
      out.dsp = Lerp(lo.units, lo.pct.dsp, hi.units, hi.pct.dsp, units);
      return out;
    }
  }
  // Extrapolate beyond 16 units with the last segment's slope.
  const auto& lo = kKernelTable[kNumPoints - 2];
  const auto& hi = kKernelTable[kNumPoints - 1];
  ResourcePct out;
  out.lut = Lerp(lo.units, lo.pct.lut, hi.units, hi.pct.lut, units);
  out.ff = Lerp(lo.units, lo.pct.ff, hi.units, hi.pct.ff, units);
  out.bram = Lerp(lo.units, lo.pct.bram, hi.units, hi.pct.bram, units);
  out.dsp = Lerp(lo.units, lo.pct.dsp, hi.units, hi.pct.dsp, units);
  return out;
}

}  // namespace

ResourcePct ResourceModel::KernelUsage(int num_units) {
  return Interpolate(num_units);
}

ResourcePct ResourceModel::ShellUsage() {
  return {10.89, 9.21, 14.96, 0.11};
}

ResourcePct ResourceModel::TotalUsage(int num_units) {
  return KernelUsage(num_units) + ShellUsage();
}

DeviceSpec ResourceModel::U250() {
  return {"Alveo U250", {1728000, 3456000, 2688, 12288}};
}

DeviceSpec ResourceModel::PynqZ2() {
  return {"PYNQ-Z2", {53200, 106400, 140, 110}};
}

ResourceCount ResourceModel::KernelAbsolute(int num_units,
                                            bool optimize_bram) {
  const ResourcePct pct = KernelUsage(num_units);
  const ResourceCount u250 = U250().total;
  ResourceCount out;
  out.lut = static_cast<uint64_t>(std::ceil(pct.lut / 100.0 * u250.lut));
  out.ff = static_cast<uint64_t>(std::ceil(pct.ff / 100.0 * u250.ff));
  double bram = pct.bram / 100.0 * u250.bram;
  if (optimize_bram) bram *= kBramOptimizationFactor;
  out.bram = static_cast<uint64_t>(std::ceil(bram));
  out.dsp = static_cast<uint64_t>(std::ceil(pct.dsp / 100.0 * u250.dsp));
  return out;
}

int ResourceModel::MaxUnitsOn(const DeviceSpec& device, double budget_fraction,
                              bool optimize_bram) {
  SWIFT_CHECK_GT(budget_fraction, 0.0);
  int best = 0;
  for (int units = 1; units <= 64; ++units) {
    const ResourceCount need = KernelAbsolute(units, optimize_bram);
    const bool fits =
        need.lut <= budget_fraction * device.total.lut &&
        need.ff <= budget_fraction * device.total.ff &&
        need.bram <= budget_fraction * device.total.bram &&
        need.dsp <= budget_fraction * device.total.dsp;
    if (fits) {
      best = units;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace swiftspatial::hw
