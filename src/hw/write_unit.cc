#include "hw/write_unit.h"

namespace swiftspatial::hw {

WriteUnit::WriteUnit(sim::Simulator* sim, sim::Dram* dram, MemoryLayout* mem,
                     const AcceleratorConfig* config, uint64_t results_base,
                     sim::Fifo<ResultStreamItem>* result_stream,
                     sim::Fifo<SyncResponse>* sync_out,
                     const ResultSink* sink)
    : sim_(sim),
      dram_(dram),
      mem_(mem),
      config_(config),
      cursor_(results_base),
      result_stream_(result_stream),
      sync_out_(sync_out),
      sink_(sink) {}

sim::Process WriteUnit::Run() {
  for (;;) {
    ResultStreamItem item = co_await result_stream_->Pop();
    switch (item.kind) {
      case ResultStreamItem::Kind::kBurst: {
        if (item.pairs.empty()) break;
        const uint64_t bytes = item.pairs.size() * sizeof(ResultPair);
        mem_->Write(cursor_, item.pairs.data(), bytes);
        last_write_complete_ = dram_->Issue(cursor_, bytes, /*is_write=*/true);
        cursor_ += bytes;
        total_results_ += item.pairs.size();
        bursts_written_ += 1;
        if (sink_ != nullptr && *sink_) (*sink_)(item.pairs);
        co_await sim_->Delay(1);
        break;
      }
      case ResultStreamItem::Kind::kSync:
        co_await sim_->WaitUntil(last_write_complete_);
        co_await sync_out_->Push(SyncResponse{total_results_});
        break;
      case ResultStreamItem::Kind::kFinish:
        co_return;
    }
  }
}

}  // namespace swiftspatial::hw
