#include "hw/memory_layout.h"

#include <cstring>
#include <utility>

namespace swiftspatial::hw {

uint64_t MemoryLayout::AddRegion(std::string name) {
  return AddRegion(std::move(name), {});
}

uint64_t MemoryLayout::AddRegion(std::string name, std::vector<uint8_t> bytes) {
  const uint64_t base = kRegionStride * (regions_.size() + 1) +
                        kChannelStagger * regions_.size();
  regions_.push_back(Region{std::move(name), base, std::move(bytes)});
  return base;
}

const MemoryLayout::Region& MemoryLayout::RegionFor(uint64_t addr) const {
  const uint64_t index = addr / kRegionStride;
  SWIFT_CHECK(index >= 1 && index <= regions_.size())
      << "address outside any region: " << addr;
  return regions_[index - 1];
}

MemoryLayout::Region& MemoryLayout::RegionFor(uint64_t addr) {
  return const_cast<Region&>(
      static_cast<const MemoryLayout*>(this)->RegionFor(addr));
}

void MemoryLayout::Write(uint64_t addr, const void* src, std::size_t n) {
  Region& region = RegionFor(addr);
  const uint64_t offset = addr - region.base;
  SWIFT_CHECK_LT(offset + n, kRegionStride)
      << "write overruns region " << region.name;
  if (region.bytes.size() < offset + n) region.bytes.resize(offset + n);
  std::memcpy(region.bytes.data() + offset, src, n);
}

void MemoryLayout::Read(uint64_t addr, void* dst, std::size_t n) const {
  const Region& region = RegionFor(addr);
  const uint64_t offset = addr - region.base;
  SWIFT_CHECK_LE(offset + n, region.bytes.size())
      << "read of unwritten memory in region " << region.name;
  std::memcpy(dst, region.bytes.data() + offset, n);
}

std::size_t MemoryLayout::RegionSize(uint64_t base) const {
  return RegionFor(base).bytes.size();
}

uint64_t MemoryLayout::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& r : regions_) total += r.bytes.size();
  return total;
}

}  // namespace swiftspatial::hw
