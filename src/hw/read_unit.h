// Read unit: fetches node (or tile block) pairs from DRAM on behalf of the
// scheduler and streams them to the addressed join unit (§3.4.1, Fig. 5
// "send the node pair and join unit ID to the read unit"). Reads are issued
// back-to-back (the memory controller pipelines them); each join unit's
// payload carries the cycle its data lands so downstream timing stays
// faithful without blocking the read unit.
#ifndef SWIFTSPATIAL_HW_READ_UNIT_H_
#define SWIFTSPATIAL_HW_READ_UNIT_H_

#include <cstdint>
#include <vector>

#include "hw/config.h"
#include "hw/memory_layout.h"
#include "hw/messages.h"
#include "hw/sim/dram.h"
#include "hw/sim/fifo.h"
#include "hw/sim/simulator.h"

namespace swiftspatial::hw {

class ReadUnit {
 public:
  ReadUnit(sim::Simulator* sim, sim::Dram* dram, MemoryLayout* mem,
           const AcceleratorConfig* config, sim::Fifo<ReadCommand>* commands,
           std::vector<sim::Fifo<NodePairData>*> unit_outputs);

  /// The unit's process body; spawn on the simulator.
  sim::Process Run();

  uint64_t nodes_fetched() const { return nodes_fetched_; }

 private:
  // Functionally parses a packed node at `addr` into entries/metadata.
  void ParseNode(uint64_t addr, std::vector<PackedEntry>* entries,
                 bool* is_leaf) const;

  sim::Simulator* sim_;
  sim::Dram* dram_;
  MemoryLayout* mem_;
  const AcceleratorConfig* config_;
  sim::Fifo<ReadCommand>* commands_;
  std::vector<sim::Fifo<NodePairData>*> unit_outputs_;
  uint64_t nodes_fetched_ = 0;
};

}  // namespace swiftspatial::hw

#endif  // SWIFTSPATIAL_HW_READ_UNIT_H_
