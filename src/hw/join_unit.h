// Join unit (§3.3, Figs. 3-4): joins one node/tile pair per task with a
// nested-loop join. The hybrid-parallelism timing model charges:
//
//   max(|R|, |S|)             cycles to stream the pair into the SRAM slices
//   (#predicate evaluations)  cycles for the pipelined nested loop
//                             (one pair enters the pipeline per cycle)
//   pipeline_depth            cycles of fill/drain
//
// Functionally the unit evaluates the real MBR predicates and emits the
// qualifying pairs: object pairs (results) when both inputs are leaves or in
// PBSM mode, node pairs (future tasks) otherwise. Output flows through the
// per-unit burst buffer into the shared task/result streams; a full stream
// back-pressures the unit, modelling pipeline stalls.
#ifndef SWIFTSPATIAL_HW_JOIN_UNIT_H_
#define SWIFTSPATIAL_HW_JOIN_UNIT_H_

#include <cstdint>

#include "hw/burst_buffer.h"
#include "hw/config.h"
#include "hw/messages.h"
#include "hw/sim/fifo.h"
#include "hw/sim/simulator.h"

namespace swiftspatial::hw {

class JoinUnit {
 public:
  JoinUnit(int id, sim::Simulator* sim, const AcceleratorConfig* config,
           sim::Fifo<NodePairData>* input, sim::Fifo<TaskStreamItem>* tasks_out,
           sim::Fifo<ResultStreamItem>* results_out,
           sim::Fifo<DoneToken>* done_out);

  /// The unit's process body; spawn on the simulator.
  sim::Process Run();

  int id() const { return id_; }
  uint64_t tasks_joined() const { return tasks_joined_; }
  uint64_t predicate_evaluations() const { return predicate_evaluations_; }
  uint64_t results_emitted() const { return results_emitted_; }
  uint64_t intermediate_pairs() const { return intermediate_pairs_; }
  /// Cycles spent from task data arrival to output completion.
  uint64_t busy_cycles() const { return busy_cycles_; }

 private:
  int id_;
  sim::Simulator* sim_;
  const AcceleratorConfig* config_;
  sim::Fifo<NodePairData>* input_;
  sim::Fifo<TaskStreamItem>* tasks_out_;
  sim::Fifo<ResultStreamItem>* results_out_;
  sim::Fifo<DoneToken>* done_out_;
  BurstBuffer burst_;

  uint64_t tasks_joined_ = 0;
  uint64_t predicate_evaluations_ = 0;
  uint64_t results_emitted_ = 0;
  uint64_t intermediate_pairs_ = 0;
  uint64_t busy_cycles_ = 0;
};

}  // namespace swiftspatial::hw

#endif  // SWIFTSPATIAL_HW_JOIN_UNIT_H_
