// Result write unit (§3.5): drains the shared result stream and appends
// final join results to the result region with a self-incrementing counter,
// so join units never manage write addresses. A sync marker (pushed by the
// scheduler after the last level completes) is answered with the total
// result count once all posted writes have landed.
#ifndef SWIFTSPATIAL_HW_WRITE_UNIT_H_
#define SWIFTSPATIAL_HW_WRITE_UNIT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/config.h"
#include "hw/memory_layout.h"
#include "hw/messages.h"
#include "hw/sim/dram.h"
#include "hw/sim/fifo.h"
#include "hw/sim/simulator.h"
#include "join/result.h"

namespace swiftspatial::hw {

/// Host-side observer of the write unit: the hook through which the
/// accelerator becomes a *streaming* result producer instead of a
/// run-to-completion one. Invoked with each result burst as it lands in
/// the result region (the device's write-unit flush granularity). Runs on
/// the host thread driving the simulation and must not touch simulator
/// state.
using ResultSink = std::function<void(const std::vector<ResultPair>&)>;

class WriteUnit {
 public:
  WriteUnit(sim::Simulator* sim, sim::Dram* dram, MemoryLayout* mem,
            const AcceleratorConfig* config, uint64_t results_base,
            sim::Fifo<ResultStreamItem>* result_stream,
            sim::Fifo<SyncResponse>* sync_out,
            const ResultSink* sink = nullptr);

  /// The unit's process body; spawn on the simulator.
  sim::Process Run();

  uint64_t total_results() const { return total_results_; }
  uint64_t bursts_written() const { return bursts_written_; }

 private:
  sim::Simulator* sim_;
  sim::Dram* dram_;
  MemoryLayout* mem_;
  const AcceleratorConfig* config_;
  uint64_t cursor_;
  sim::Fifo<ResultStreamItem>* result_stream_;
  sim::Fifo<SyncResponse>* sync_out_;
  const ResultSink* sink_;

  uint64_t total_results_ = 0;
  uint64_t bursts_written_ = 0;
  sim::Cycle last_write_complete_ = 0;
};

}  // namespace swiftspatial::hw

#endif  // SWIFTSPATIAL_HW_WRITE_UNIT_H_
