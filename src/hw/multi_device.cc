#include "hw/multi_device.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "geometry/box.h"
#include "grid/hierarchical_partition.h"
#include "grid/uniform_grid.h"

namespace swiftspatial::hw {

const char* OutOfMemoryStrategyToString(OutOfMemoryStrategy s) {
  switch (s) {
    case OutOfMemoryStrategy::kMultipleDevices:
      return "multiple-devices";
    case OutOfMemoryStrategy::kSingleDeviceIterative:
      return "single-device-iterative";
  }
  return "unknown";
}

namespace {

// Conservative device-footprint estimate for planning: tile stores (entry
// plus packing slack per side), task table, and result slack.
uint64_t EstimatePartitionBytes(std::size_t nr, std::size_t ns) {
  return 64ULL * (nr + ns) + (1ULL << 16);
}

struct SubJoinInput {
  int tile = 0;    // outer grid tile index: the stable shard id
  Box outer_tile;  // closed at the global extent max (dedup across tiles)
  Dataset r;
  Dataset s;
  std::vector<ObjectId> r_map;  // local -> global ids
  std::vector<ObjectId> s_map;
};

// Extracts the per-tile sub-datasets with local ids.
std::vector<SubJoinInput> BuildSubInputs(const Dataset& r, const Dataset& s,
                                         const UniformGrid& grid) {
  const auto r_assign = grid.Assign(r);
  const auto s_assign = grid.Assign(s);
  std::vector<SubJoinInput> out;
  for (int t = 0; t < grid.num_tiles(); ++t) {
    if (r_assign[t].empty() || s_assign[t].empty()) continue;
    SubJoinInput sub;
    sub.tile = t;
    sub.outer_tile = grid.DedupTileByIndex(t);
    std::vector<Box> r_boxes, s_boxes;
    r_boxes.reserve(r_assign[t].size());
    for (ObjectId id : r_assign[t]) {
      r_boxes.push_back(r.box(static_cast<std::size_t>(id)));
      sub.r_map.push_back(id);
    }
    s_boxes.reserve(s_assign[t].size());
    for (ObjectId id : s_assign[t]) {
      s_boxes.push_back(s.box(static_cast<std::size_t>(id)));
      sub.s_map.push_back(id);
    }
    sub.r = Dataset("sub_r", std::move(r_boxes));
    sub.s = Dataset("sub_s", std::move(s_boxes));
    out.push_back(std::move(sub));
  }
  return out;
}

}  // namespace

Result<MultiDeviceReport> PartitionedJoin(const Dataset& r, const Dataset& s,
                                          const MultiDeviceConfig& config,
                                          JoinResult* result) {
  SWIFT_CHECK_GE(config.max_grid, 1);
  SWIFT_CHECK_GE(config.min_grid, 1);
  SWIFT_CHECK_LE(config.min_grid, config.max_grid);
  MultiDeviceReport report;
  if (result != nullptr) result->mutable_pairs().clear();
  if (r.empty() || s.empty()) return report;

  Box extent = r.Extent();
  extent.Expand(s.Extent());

  // --- Plan: smallest power-of-two grid (>= min_grid per axis) whose
  // partitions fit the device. --
  int grid_res = config.min_grid;
  for (;; grid_res *= 2) {
    const UniformGrid grid(extent, grid_res, grid_res);
    const auto r_assign = grid.Assign(r);
    const auto s_assign = grid.Assign(s);
    uint64_t worst = 0;
    for (int t = 0; t < grid.num_tiles(); ++t) {
      worst = std::max(worst, EstimatePartitionBytes(r_assign[t].size(),
                                                     s_assign[t].size()));
    }
    if (worst <= config.device_memory_bytes) break;
    if (grid_res >= config.max_grid) {
      return Status::InvalidArgument(
          "cannot fit partitions into device memory even at grid " +
          std::to_string(grid_res) + " (worst partition needs ~" +
          std::to_string(worst) + " bytes, capacity " +
          std::to_string(config.device_memory_bytes) + ")");
    }
  }

  Accelerator device(config.device);

  // --- Execute, refining the grid if a partition's *actual* footprint
  // (block stores grow with multi-assignment and over-cap splitting)
  // overruns the device. ---
  for (;; grid_res *= 2) {
    report = MultiDeviceReport{};
    if (result != nullptr) result->mutable_pairs().clear();
    report.grid_resolution = grid_res;

    const UniformGrid grid(extent, grid_res, grid_res);
    auto subs = BuildSubInputs(r, s, grid);
    report.partitions = subs.size();
    report.devices = config.strategy == OutOfMemoryStrategy::kMultipleDevices
                         ? subs.size()
                         : (subs.empty() ? 0 : 1);

    HierarchicalPartitionOptions hp;
    hp.tile_cap = config.tile_cap;

    for (const SubJoinInput& sub : subs) {
      // Scale the inner grid to the partition population to keep
      // hierarchical splitting shallow.
      hp.initial_grid = std::clamp(
          static_cast<int>(std::max(sub.r.size(), sub.s.size()) / 64), 4, 64);
      const auto partition = PartitionHierarchical(sub.r, sub.s, hp);

      JoinResult local;
      AcceleratorReport sub_report =
          device.RunPbsm(sub.r, sub.s, partition, &local);
      report.max_partition_bytes =
          std::max(report.max_partition_bytes, sub_report.device_bytes_used);

      // Cross-partition dedup: multi-assigned pairs are claimed only by the
      // grid tile holding their reference point.
      std::vector<ResultPair> kept;
      for (const ResultPair& p : local.pairs()) {
        const ObjectId gr = sub.r_map[static_cast<std::size_t>(p.r)];
        const ObjectId gs = sub.s_map[static_cast<std::size_t>(p.s)];
        const Box& rb = r.box(static_cast<std::size_t>(gr));
        const Box& sb = s.box(static_cast<std::size_t>(gs));
        if (!ReferencePointInTile(rb, sb, sub.outer_tile)) continue;
        kept.push_back(ResultPair{gr, gs});
      }
      report.num_results += kept.size();
      if (result != nullptr) {
        auto& pairs = result->mutable_pairs();
        pairs.insert(pairs.end(), kept.begin(), kept.end());
      }
      // Deduped pairs are final members of the global join result, so they
      // may stream out before later partitions run: the delivered sequence
      // stays a genuine prefix even if a later partition fails.
      if (config.partition_sink && !kept.empty()) {
        config.partition_sink(sub.tile, std::move(kept));
      }

      if (config.strategy == OutOfMemoryStrategy::kMultipleDevices) {
        report.total_seconds =
            std::max(report.total_seconds, sub_report.total_seconds);
      } else {
        report.total_seconds += sub_report.total_seconds;
      }
      report.sub_reports.push_back(std::move(sub_report));
    }

    if (report.max_partition_bytes <= config.device_memory_bytes) {
      return report;
    }
    if (config.partition_sink) {
      // A retry would re-run every partition and re-stream already-delivered
      // pairs as duplicates; fail instead (see MultiDeviceConfig).
      return Status::InvalidArgument(
          "streaming multi-device join needs a grid refinement (partition "
          "footprint " + std::to_string(report.max_partition_bytes) +
          " bytes exceeds device memory " +
          std::to_string(config.device_memory_bytes) +
          "); raise device_memory_bytes or min_grid");
    }
    if (grid_res >= config.max_grid) {
      return Status::InvalidArgument(
          "a partition footprint of " +
          std::to_string(report.max_partition_bytes) +
          " bytes exceeds device memory (" +
          std::to_string(config.device_memory_bytes) + ") even at grid " +
          std::to_string(grid_res));
    }
  }
}

}  // namespace swiftspatial::hw
