#include "hw/power_model.h"

#include <algorithm>

namespace swiftspatial::hw {

namespace {

// FPGA: the U250 shell (DDR4 + PCIe controllers, clocking) draws a constant
// floor; each join unit with its FIFOs and burst buffer adds a small dynamic
// increment. 15.0 + 16 * 0.53 = 23.48 W, the paper's Vivado figure.
constexpr double kFpgaStaticWatts = 15.0;
constexpr double kFpgaPerUnitWatts = 0.53;

// CPU: EPYC 7313, TDP 155 W. The paper measures 144.69 W with all 16 cores
// busy; idle package power assumed 60 W (typical for this class of part).
constexpr double kCpuIdleWatts = 60.0;
constexpr double kCpuPeakWatts = 144.69;

// GPU: A100 SXM4, TDP 400 W, idle ~55 W. cuSpatial's measured 95.01 W
// corresponds to the low occupancy forced by its 20K batch cap.
constexpr double kGpuIdleWatts = 55.0;
constexpr double kGpuTdpWatts = 400.0;

// Concurrent-query capacity used by the occupancy estimate: 108 SMs x 1600
// resident query slots. Chosen so a 20,000-polygon batch yields the
// occupancy that reproduces the measured 95.01 W.
constexpr double kGpuConcurrentQueries = 172480.0;

}  // namespace

double PowerModel::FpgaWatts(int num_units) {
  return kFpgaStaticWatts + kFpgaPerUnitWatts * std::max(0, num_units);
}

double PowerModel::CpuWatts(int active_threads, int cores) {
  const double utilization =
      std::clamp(static_cast<double>(active_threads) / std::max(1, cores), 0.0,
                 1.0);
  return kCpuIdleWatts + (kCpuPeakWatts - kCpuIdleWatts) * utilization;
}

double PowerModel::GpuWatts(double occupancy) {
  occupancy = std::clamp(occupancy, 0.0, 1.0);
  return kGpuIdleWatts + (kGpuTdpWatts - kGpuIdleWatts) * occupancy;
}

double PowerModel::GpuOccupancyForBatch(std::size_t batch_size) {
  return std::min(1.0, static_cast<double>(batch_size) /
                           kGpuConcurrentQueries);
}

}  // namespace swiftspatial::hw
