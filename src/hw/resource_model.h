// FPGA resource model reproducing Table 1 of the paper. The measured Vivado
// utilisation percentages for 1/2/4/8/16 join units (kernel) and the shell
// are encoded directly; other unit counts interpolate or extrapolate
// piecewise-linearly. Absolute counts use the U250 totals the paper lists,
// which also drive the embedded-deployment feasibility analysis of §5.6
// (PYNQ-Z2 with and without the shift-register FIFO optimisation).
#ifndef SWIFTSPATIAL_HW_RESOURCE_MODEL_H_
#define SWIFTSPATIAL_HW_RESOURCE_MODEL_H_

#include <cstdint>
#include <string>

namespace swiftspatial::hw {

/// Utilisation as a percentage of the Alveo U250's resources.
struct ResourcePct {
  double lut = 0;
  double ff = 0;
  double bram = 0;
  double dsp = 0;

  ResourcePct operator+(const ResourcePct& o) const {
    return {lut + o.lut, ff + o.ff, bram + o.bram, dsp + o.dsp};
  }
};

/// Absolute resource counts.
struct ResourceCount {
  uint64_t lut = 0;
  uint64_t ff = 0;
  uint64_t bram = 0;
  uint64_t dsp = 0;
};

/// A target FPGA device.
struct DeviceSpec {
  std::string name;
  ResourceCount total;
};

class ResourceModel {
 public:
  /// Kernel utilisation (percent of U250) for `num_units` join units.
  static ResourcePct KernelUsage(int num_units);

  /// Static shell utilisation (memory/PCIe controllers etc.).
  static ResourcePct ShellUsage();

  /// Shell + kernel.
  static ResourcePct TotalUsage(int num_units);

  /// Kernel utilisation in absolute element counts. `optimize_bram` applies
  /// the §5.6 shift-register FIFO optimisation (BRAM use scaled down).
  static ResourceCount KernelAbsolute(int num_units,
                                      bool optimize_bram = false);

  /// Largest join-unit count whose kernel fits within
  /// `budget_fraction` of `device`'s resources.
  static int MaxUnitsOn(const DeviceSpec& device, double budget_fraction,
                        bool optimize_bram = false);

  /// Alveo U250 (data-center card of the paper's prototype).
  static DeviceSpec U250();

  /// PYNQ-Z2 (low-end CPU-FPGA SoC discussed in §5.6).
  static DeviceSpec PynqZ2();

  /// BRAM scale factor of the shift-register optimisation.
  static constexpr double kBramOptimizationFactor = 0.4;
};

}  // namespace swiftspatial::hw

#endif  // SWIFTSPATIAL_HW_RESOURCE_MODEL_H_
