#include "hw/read_unit.h"

#include <algorithm>
#include <utility>

namespace swiftspatial::hw {

ReadUnit::ReadUnit(sim::Simulator* sim, sim::Dram* dram, MemoryLayout* mem,
                   const AcceleratorConfig* config,
                   sim::Fifo<ReadCommand>* commands,
                   std::vector<sim::Fifo<NodePairData>*> unit_outputs)
    : sim_(sim),
      dram_(dram),
      mem_(mem),
      config_(config),
      commands_(commands),
      unit_outputs_(std::move(unit_outputs)) {}

void ReadUnit::ParseNode(uint64_t addr, std::vector<PackedEntry>* entries,
                         bool* is_leaf) const {
  uint16_t count = 0;
  uint8_t leaf = 0;
  mem_->Read(addr, &count, sizeof(count));
  mem_->Read(addr + 2, &leaf, sizeof(leaf));
  *is_leaf = leaf != 0;
  entries->resize(count);
  if (count > 0) {
    mem_->Read(addr + 8, entries->data(), count * sizeof(PackedEntry));
  }
}

sim::Process ReadUnit::Run() {
  for (;;) {
    ReadCommand cmd = co_await commands_->Pop();
    if (cmd.kind == ReadCommand::Kind::kFinish) {
      for (auto* out : unit_outputs_) {
        NodePairData fin;
        fin.finish = true;
        co_await out->Push(std::move(fin));
      }
      co_return;
    }

    // Command decode / issue overhead.
    co_await sim_->Delay(config_->read_issue_cycles);

    // Both node reads go out back to back; the pair is usable when the
    // later one lands.
    const sim::Cycle r_done = dram_->Issue(cmd.r_addr, cmd.r_bytes, false);
    const sim::Cycle s_done = dram_->Issue(cmd.s_addr, cmd.s_bytes, false);
    nodes_fetched_ += 2;

    NodePairData data;
    data.ready_at = std::max(r_done, s_done);
    data.r_index = cmd.r_index;
    data.s_index = cmd.s_index;
    data.pbsm = cmd.pbsm;
    data.tile = cmd.tile;
    ParseNode(cmd.r_addr, &data.r_entries, &data.r_leaf);
    ParseNode(cmd.s_addr, &data.s_entries, &data.s_leaf);
    co_await unit_outputs_[cmd.unit]->Push(std::move(data));
  }
}

}  // namespace swiftspatial::hw
