#include "datagen/dataset.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>

namespace swiftspatial {

namespace {

constexpr uint32_t kMagic = 0x53575354;  // "SWST"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Box Dataset::Extent() const {
  Box out = Box::Empty();
  for (const Box& b : boxes_) out.Expand(b);
  return out;
}

Status Dataset::ValidateBoxes() const {
  for (std::size_t i = 0; i < boxes_.size(); ++i) {
    const Box& b = boxes_[i];
    if (!std::isfinite(b.min_x) || !std::isfinite(b.min_y) ||
        !std::isfinite(b.max_x) || !std::isfinite(b.max_y)) {
      return Status::InvalidArgument(
          "dataset \"" + name_ + "\": box " + std::to_string(i) +
          " has a non-finite coordinate: " + b.ToString());
    }
    if (b.min_x > b.max_x || b.min_y > b.max_y) {
      return Status::InvalidArgument(
          "dataset \"" + name_ + "\": box " + std::to_string(i) +
          " is inverted (min > max): " + b.ToString());
    }
  }
  return Status::OK();
}

bool Dataset::IsPointDataset() const {
  for (const Box& b : boxes_) {
    if (b.min_x != b.max_x || b.min_y != b.max_y) return false;
  }
  return true;
}

Status Dataset::SaveTo(const std::string& path) const {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IOError("cannot open for writing: " + path);

  const uint64_t count = boxes_.size();
  const uint32_t header[2] = {kMagic, kVersion};
  if (std::fwrite(header, sizeof(header), 1, f.get()) != 1 ||
      std::fwrite(&count, sizeof(count), 1, f.get()) != 1) {
    return Status::IOError("short write on header: " + path);
  }
  static_assert(sizeof(Box) == 4 * sizeof(Coord),
                "Box must be 4 packed coordinates for serialisation");
  if (count > 0 &&
      std::fwrite(boxes_.data(), sizeof(Box), count, f.get()) != count) {
    return Status::IOError("short write on boxes: " + path);
  }
  // stdio buffers writes; the data only reaches the file system at close.
  // Letting the FileCloser destructor eat fclose's return value here turned
  // a full disk into a silent Status::OK() -- close explicitly and check.
  if (std::fclose(f.release()) != 0) {
    return Status::IOError("close failed (buffered write lost): " + path);
  }
  return Status::OK();
}

Result<Dataset> Dataset::LoadFrom(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IOError("cannot open for reading: " + path);

  uint32_t header[2] = {0, 0};
  uint64_t count = 0;
  if (std::fread(header, sizeof(header), 1, f.get()) != 1 ||
      std::fread(&count, sizeof(count), 1, f.get()) != 1) {
    return Status::Corruption("truncated header: " + path);
  }
  if (header[0] != kMagic) return Status::Corruption("bad magic: " + path);
  if (header[1] != kVersion) {
    return Status::NotSupported("unsupported dataset version " +
                                std::to_string(header[1]));
  }
  std::vector<Box> boxes(count);
  if (count > 0 &&
      std::fread(boxes.data(), sizeof(Box), count, f.get()) != count) {
    return Status::Corruption("truncated boxes: " + path);
  }
  return Dataset(path, std::move(boxes));
}

}  // namespace swiftspatial
