#include "datagen/generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace swiftspatial {

namespace {

// Clamps a rectangle into the map so every object lies inside the extent.
Box ClampToMap(double cx, double cy, double w, double h, double map_size) {
  double min_x = cx - w / 2, max_x = cx + w / 2;
  double min_y = cy - h / 2, max_y = cy + h / 2;
  min_x = std::clamp(min_x, 0.0, map_size);
  max_x = std::clamp(max_x, 0.0, map_size);
  min_y = std::clamp(min_y, 0.0, map_size);
  max_y = std::clamp(max_y, 0.0, map_size);
  return Box(static_cast<Coord>(min_x), static_cast<Coord>(min_y),
             static_cast<Coord>(max_x), static_cast<Coord>(max_y));
}

std::vector<Box> UniformBoxes(const UniformConfig& config, bool points) {
  SWIFT_CHECK_GE(config.max_edge, config.min_edge);
  Rng rng(config.seed);
  std::vector<Box> boxes;
  boxes.reserve(config.count);
  const double m = config.map.map_size;
  for (uint64_t i = 0; i < config.count; ++i) {
    const double cx = rng.Uniform(0, m);
    const double cy = rng.Uniform(0, m);
    if (points) {
      boxes.push_back(Box(static_cast<Coord>(cx), static_cast<Coord>(cy),
                          static_cast<Coord>(cx), static_cast<Coord>(cy)));
    } else {
      const double w = rng.Uniform(config.min_edge, config.max_edge);
      const double h = rng.Uniform(config.min_edge, config.max_edge);
      boxes.push_back(ClampToMap(cx, cy, w, h, m));
    }
  }
  return boxes;
}

std::vector<Box> OsmLikeBoxes(const OsmLikeConfig& config, bool points) {
  SWIFT_CHECK_GE(config.num_clusters, 1u);
  SWIFT_CHECK(config.background_fraction >= 0 &&
              config.background_fraction <= 1);
  Rng rng(config.seed);
  const double m = config.map.map_size;

  // Cluster centers uniform over the map; populations log-normal.
  struct Cluster {
    double cx, cy, radius;
    double weight;
  };
  std::vector<Cluster> clusters(config.num_clusters);
  double total_weight = 0;
  for (auto& c : clusters) {
    c.cx = rng.Uniform(0, m);
    c.cy = rng.Uniform(0, m);
    // City footprint also varies: bigger cities spread a bit wider.
    c.weight = rng.LogNormal(0.0, config.size_sigma);
    c.radius = m * config.cluster_radius_frac * (0.5 + std::sqrt(c.weight));
    total_weight += c.weight;
  }
  // Cumulative distribution for cluster selection.
  std::vector<double> cdf(clusters.size());
  double acc = 0;
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    acc += clusters[i].weight / total_weight;
    cdf[i] = acc;
  }

  std::vector<Box> boxes;
  boxes.reserve(config.count);
  for (uint64_t i = 0; i < config.count; ++i) {
    double cx, cy;
    if (rng.NextDouble() < config.background_fraction) {
      cx = rng.Uniform(0, m);
      cy = rng.Uniform(0, m);
    } else {
      const double u = rng.NextDouble();
      const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
      const auto& c = clusters[std::min<std::size_t>(
          static_cast<std::size_t>(it - cdf.begin()), clusters.size() - 1)];
      cx = std::clamp(rng.Gaussian(c.cx, c.radius), 0.0, m);
      cy = std::clamp(rng.Gaussian(c.cy, c.radius), 0.0, m);
    }
    if (points) {
      boxes.push_back(Box(static_cast<Coord>(cx), static_cast<Coord>(cy),
                          static_cast<Coord>(cx), static_cast<Coord>(cy)));
    } else {
      const double w = rng.Uniform(config.min_edge, config.max_edge);
      const double h = rng.Uniform(config.min_edge, config.max_edge);
      boxes.push_back(ClampToMap(cx, cy, w, h, m));
    }
  }
  return boxes;
}

}  // namespace

Dataset GenerateUniform(const UniformConfig& config) {
  return Dataset("uniform-" + std::to_string(config.count),
                 UniformBoxes(config, /*points=*/false));
}

Dataset GenerateUniformPoints(const UniformConfig& config) {
  return Dataset("uniform-points-" + std::to_string(config.count),
                 UniformBoxes(config, /*points=*/true));
}

Dataset GenerateOsmLike(const OsmLikeConfig& config) {
  return Dataset("osmlike-" + std::to_string(config.count),
                 OsmLikeBoxes(config, /*points=*/false));
}

Dataset GenerateOsmLikePoints(const OsmLikeConfig& config) {
  return Dataset("osmlike-points-" + std::to_string(config.count),
                 OsmLikeBoxes(config, /*points=*/true));
}

}  // namespace swiftspatial
