#include "datagen/csv_io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

namespace swiftspatial {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Splits a CSV line into up to 5 float fields. Returns the field count or
// -1 on a parse error.
int ParseFields(const char* line, float out[4]) {
  int count = 0;
  const char* p = line;
  while (*p != '\0' && *p != '\n' && *p != '\r') {
    if (count == 4) return -1;  // too many fields
    char* end = nullptr;
    const float v = std::strtof(p, &end);
    if (end == p) return -1;  // not a number
    out[count++] = v;
    p = end;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == ',') {
      ++p;
    } else if (*p != '\0' && *p != '\n' && *p != '\r') {
      return -1;
    }
  }
  return count;
}

}  // namespace

Result<Dataset> LoadCsvDataset(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::IOError("cannot open for reading: " + path);

  std::vector<Box> boxes;
  char line[512];
  std::size_t line_no = 0;
  bool first_data_line = true;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++line_no;
    // Skip blanks and comments.
    const char* p = line;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0' || *p == '\n' || *p == '\r' || *p == '#') continue;

    float v[4];
    const int fields = ParseFields(p, v);
    if (fields < 0 && first_data_line) {
      // Tolerate a non-numeric header row.
      first_data_line = false;
      continue;
    }
    first_data_line = false;
    if (fields == 2) {
      boxes.push_back(Box(v[0], v[1], v[0], v[1]));
    } else if (fields == 4) {
      if (v[0] > v[2] || v[1] > v[3]) {
        return Status::Corruption("inverted rectangle at line " +
                                  std::to_string(line_no) + " of " + path);
      }
      boxes.push_back(Box(v[0], v[1], v[2], v[3]));
    } else {
      return Status::Corruption("malformed row at line " +
                                std::to_string(line_no) + " of " + path);
    }
  }
  return Dataset(path, std::move(boxes));
}

Status SaveCsvDataset(const Dataset& dataset, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IOError("cannot open for writing: " + path);
  if (std::fprintf(f.get(), "min_x,min_y,max_x,max_y\n") < 0) {
    return Status::IOError("write failed: " + path);
  }
  for (const Box& b : dataset.boxes()) {
    if (std::fprintf(f.get(), "%.9g,%.9g,%.9g,%.9g\n",
                     static_cast<double>(b.min_x), static_cast<double>(b.min_y),
                     static_cast<double>(b.max_x),
                     static_cast<double>(b.max_y)) < 0) {
      return Status::IOError("write failed: " + path);
    }
  }
  // stdio buffers writes; the data only reaches the file system at close.
  // Letting the FileCloser destructor eat fclose's return value here turned
  // a full disk into a silent Status::OK() -- close explicitly and check.
  if (std::fclose(f.release()) != 0) {
    return Status::IOError("close failed (buffered write lost): " + path);
  }
  return Status::OK();
}

}  // namespace swiftspatial
