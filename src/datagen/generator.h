// Workload generators reproducing the paper's evaluation datasets (§5.1):
//
//  * Uniform: a 10K x 10K map in which unit squares (or points) are placed
//    uniformly at random.
//  * OSM-like: the paper uses OpenStreetMap buildings (as MBRs) and nodes
//    (points). We do not ship OSM data; this generator synthesizes the OSM
//    property the evaluation depends on -- heavy spatial skew -- by placing
//    objects in log-normal-sized Gaussian clusters ("cities") over the map,
//    with a uniform rural background. See DESIGN.md, substitution table.
#ifndef SWIFTSPATIAL_DATAGEN_GENERATOR_H_
#define SWIFTSPATIAL_DATAGEN_GENERATOR_H_

#include <cstdint>

#include "datagen/dataset.h"

namespace swiftspatial {

/// Parameters shared by all generators.
struct MapConfig {
  /// Map side length; the paper uses a 10,000 x 10,000 map.
  double map_size = 10000.0;
};

/// Uniform rectangle dataset: `count` axis-aligned rectangles whose centers
/// are uniform over the map. Edge lengths are uniform in
/// [min_edge, max_edge]; the paper's synthetic workload uses unit squares
/// (min_edge == max_edge == 1).
struct UniformConfig {
  MapConfig map;
  uint64_t count = 0;
  double min_edge = 1.0;
  double max_edge = 1.0;
  uint64_t seed = 1;
};

/// OSM-like skewed dataset (see file comment). About `background_fraction`
/// of the objects are uniform over the map; the rest belong to Gaussian
/// clusters whose sizes follow a log-normal distribution.
struct OsmLikeConfig {
  MapConfig map;
  uint64_t count = 0;
  /// Expected number of clusters ("cities").
  uint32_t num_clusters = 64;
  /// Log-normal sigma of cluster populations; larger = more skew.
  double size_sigma = 1.6;
  /// Cluster radius as a fraction of map size (one standard deviation).
  double cluster_radius_frac = 0.01;
  /// Fraction of objects placed uniformly (rural background).
  double background_fraction = 0.1;
  /// Rectangle edge lengths, uniform in [min_edge, max_edge]. Buildings in
  /// OSM are small relative to the map.
  double min_edge = 0.5;
  double max_edge = 4.0;
  uint64_t seed = 2;
};

/// Generates uniform rectangles.
Dataset GenerateUniform(const UniformConfig& config);

/// Generates uniform points (degenerate boxes).
Dataset GenerateUniformPoints(const UniformConfig& config);

/// Generates OSM-like skewed rectangles.
Dataset GenerateOsmLike(const OsmLikeConfig& config);

/// Generates OSM-like skewed points (degenerate boxes), e.g. the "all
/// nodes" subset the paper joins against buildings.
Dataset GenerateOsmLikePoints(const OsmLikeConfig& config);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_DATAGEN_GENERATOR_H_
