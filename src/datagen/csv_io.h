// CSV ingestion for real-world data. The paper's OSM datasets ship as text
// extracts; this reader loads rectangle datasets from files with one object
// per line:
//
//   min_x,min_y,max_x,max_y        (rectangles / MBRs)
//   x,y                            (points; stored as degenerate boxes)
//
// Blank lines and lines starting with '#' are ignored; a header line whose
// first field is not numeric is skipped automatically.
#ifndef SWIFTSPATIAL_DATAGEN_CSV_IO_H_
#define SWIFTSPATIAL_DATAGEN_CSV_IO_H_

#include <string>

#include "common/status.h"
#include "datagen/dataset.h"

namespace swiftspatial {

/// Reads a dataset from `path` (see file comment for the accepted formats).
/// Fails with IOError if unreadable and Corruption on malformed rows,
/// identifying the offending line number.
Result<Dataset> LoadCsvDataset(const std::string& path);

/// Writes `dataset` as min_x,min_y,max_x,max_y rows (with a header).
Status SaveCsvDataset(const Dataset& dataset, const std::string& path);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_DATAGEN_CSV_IO_H_
