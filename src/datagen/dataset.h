// Dataset container used by every index, join algorithm, and benchmark.
// An object is an (implicit) id in [0, size) plus its MBR; point datasets
// use degenerate boxes. Binary (de)serialisation allows benchmarks to cache
// generated datasets on disk.
#ifndef SWIFTSPATIAL_DATAGEN_DATASET_H_
#define SWIFTSPATIAL_DATAGEN_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/box.h"

namespace swiftspatial {

/// Object identifier. 32-bit signed to match the accelerator's 8-byte result
/// pair format (two int32 ids, §3.5 of the paper).
using ObjectId = int32_t;

/// A named collection of spatial objects. Object `i` has id `i` and MBR
/// `boxes()[i]`.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, std::vector<Box> boxes)
      : name_(std::move(name)), boxes_(std::move(boxes)) {}

  const std::string& name() const { return name_; }
  const std::vector<Box>& boxes() const { return boxes_; }
  std::vector<Box>& mutable_boxes() { return boxes_; }
  std::size_t size() const { return boxes_.size(); }
  bool empty() const { return boxes_.empty(); }
  const Box& box(std::size_t i) const { return boxes_[i]; }

  /// MBR of the whole dataset (empty box for an empty dataset).
  Box Extent() const;

  /// True if every box is a point (zero width and height).
  bool IsPointDataset() const;

  /// OK iff every box is well-formed: all four coordinates finite and
  /// min <= max on both axes. Engines enforce this at Plan time
  /// (EngineConfig::validate_inputs); indexes and the reference-point dedup
  /// rule are only specified for valid boxes.
  Status ValidateBoxes() const;

  /// Writes the dataset to `path` in a little-endian binary format:
  /// magic, version, count, then count * 4 float32 coordinates.
  Status SaveTo(const std::string& path) const;

  /// Reads a dataset previously written by SaveTo.
  static Result<Dataset> LoadFrom(const std::string& path);

 private:
  std::string name_;
  std::vector<Box> boxes_;
};

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_DATAGEN_DATASET_H_
