#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/logging.h"
#include "common/rng.h"

namespace swiftspatial {

Box Polygon::Mbr() const {
  Box out = Box::Empty();
  for (const Point& p : vertices_) out.Expand(Box::FromPoint(p));
  return out;
}

bool Polygon::IsConvexCcw() const {
  const std::size_t n = vertices_.size();
  if (n < 3) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    const Point& c = vertices_[(i + 2) % n];
    if (Cross(a, b, c) < 0) return false;
  }
  return true;
}

double Polygon::SignedArea() const {
  const std::size_t n = vertices_.size();
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    acc += static_cast<double>(a.x) * b.y - static_cast<double>(b.x) * a.y;
  }
  return acc / 2.0;
}

bool PointInPolygon(const Point& p, const Polygon& poly) {
  const auto& v = poly.vertices();
  const std::size_t n = v.size();
  if (n < 3) return false;
  bool inside = false;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    // Boundary counts as inside: check if p lies on edge (v[j], v[i]).
    const double cr = Cross(v[j], v[i], p);
    if (cr == 0 && std::min(v[j].x, v[i].x) <= p.x &&
        p.x <= std::max(v[j].x, v[i].x) && std::min(v[j].y, v[i].y) <= p.y &&
        p.y <= std::max(v[j].y, v[i].y)) {
      return true;
    }
    // Crossing-number ray cast to the right.
    if ((v[i].y > p.y) != (v[j].y > p.y)) {
      const double t = (static_cast<double>(p.y) - v[i].y) /
                       (static_cast<double>(v[j].y) - v[i].y);
      const double xx = v[i].x + t * (static_cast<double>(v[j].x) - v[i].x);
      if (p.x < xx) inside = !inside;
    }
  }
  return inside;
}

bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2) {
  auto sgn = [](double v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); };
  const int d1 = sgn(Cross(b1, b2, a1));
  const int d2 = sgn(Cross(b1, b2, a2));
  const int d3 = sgn(Cross(a1, a2, b1));
  const int d4 = sgn(Cross(a1, a2, b2));
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  auto on_segment = [](const Point& p, const Point& q, const Point& r) {
    return std::min(p.x, r.x) <= q.x && q.x <= std::max(p.x, r.x) &&
           std::min(p.y, r.y) <= q.y && q.y <= std::max(p.y, r.y);
  };
  if (d1 == 0 && on_segment(b1, a1, b2)) return true;
  if (d2 == 0 && on_segment(b1, a2, b2)) return true;
  if (d3 == 0 && on_segment(a1, b1, a2)) return true;
  if (d4 == 0 && on_segment(a1, b2, a2)) return true;
  return false;
}

bool PolygonsIntersect(const Polygon& a, const Polygon& b) {
  const auto& va = a.vertices();
  const auto& vb = b.vertices();
  if (va.size() < 3 || vb.size() < 3) return false;
  // Quick reject on MBRs.
  if (!Intersects(a.Mbr(), b.Mbr())) return false;
  // Any edge crossing?
  for (std::size_t i = 0; i < va.size(); ++i) {
    const Point& a1 = va[i];
    const Point& a2 = va[(i + 1) % va.size()];
    for (std::size_t j = 0; j < vb.size(); ++j) {
      const Point& b1 = vb[j];
      const Point& b2 = vb[(j + 1) % vb.size()];
      if (SegmentsIntersect(a1, a2, b1, b2)) return true;
    }
  }
  // Full containment (no edge crossings): test one vertex each way.
  if (PointInPolygon(va[0], b)) return true;
  if (PointInPolygon(vb[0], a)) return true;
  return false;
}

Polygon MakeConvexPolygon(uint64_t id, const Box& mbr, int num_vertices) {
  SWIFT_CHECK_GE(num_vertices, 4);
  // All vertices lie on the ellipse inscribed in the MBR. Distinct angles on
  // a convex curve, sorted, always produce a convex CCW ring. The four
  // axis-extreme angles (0, pi/2, pi, 3pi/2) are always included and emitted
  // with exact edge-midpoint coordinates, so the polygon's MBR equals `mbr`
  // (the filter works with tight MBRs).
  Rng rng(id * 0x9e3779b97f4a7c15ULL + 1);
  constexpr double kTau = 2.0 * std::numbers::pi;
  std::vector<double> angles = {0.0, kTau / 4, kTau / 2, 3 * kTau / 4};
  const int extra = num_vertices - 4;
  for (int i = 0; i < extra; ++i) {
    // Keep jittered angles strictly inside a quadrant so they never collide
    // with the pinned axis angles.
    const int quadrant = i % 4;
    const double frac = 0.1 + 0.8 * rng.NextDouble();
    angles.push_back((quadrant + frac) * (kTau / 4));
  }
  std::sort(angles.begin(), angles.end());

  const double cx = (static_cast<double>(mbr.min_x) + mbr.max_x) / 2;
  const double cy = (static_cast<double>(mbr.min_y) + mbr.max_y) / 2;
  const double rx = (static_cast<double>(mbr.max_x) - mbr.min_x) / 2;
  const double ry = (static_cast<double>(mbr.max_y) - mbr.min_y) / 2;

  std::vector<Point> pts;
  pts.reserve(angles.size());
  for (double a : angles) {
    if (a == 0.0) {
      pts.push_back(Point{mbr.max_x, static_cast<Coord>(cy)});
    } else if (a == kTau / 4) {
      pts.push_back(Point{static_cast<Coord>(cx), mbr.max_y});
    } else if (a == kTau / 2) {
      pts.push_back(Point{mbr.min_x, static_cast<Coord>(cy)});
    } else if (a == 3 * kTau / 4) {
      pts.push_back(Point{static_cast<Coord>(cx), mbr.min_y});
    } else {
      pts.push_back(Point{static_cast<Coord>(cx + rx * std::cos(a)),
                          static_cast<Coord>(cy + ry * std::sin(a))});
    }
  }
  return Polygon(std::move(pts));
}

}  // namespace swiftspatial
