// Axis-aligned minimum bounding rectangle (MBR) and the spatial predicates
// the filtering phase evaluates. The Intersects test is the exact four-way
// boundary comparison the SwiftSpatial join unit implements in hardware
// (r.right >= s.left && s.right >= r.left && r.top >= s.bottom &&
//  s.top >= r.bottom, Fig. 3 of the paper).
#ifndef SWIFTSPATIAL_GEOMETRY_BOX_H_
#define SWIFTSPATIAL_GEOMETRY_BOX_H_

#include <algorithm>
#include <limits>
#include <string>

#include "geometry/point.h"

namespace swiftspatial {

/// Axis-aligned rectangle [min_x, max_x] x [min_y, max_y] with closed
/// boundaries (objects touching at an edge intersect).
struct Box {
  Coord min_x = 0;
  Coord min_y = 0;
  Coord max_x = 0;
  Coord max_y = 0;

  Box() = default;
  Box(Coord mnx, Coord mny, Coord mxx, Coord mxy)
      : min_x(mnx), min_y(mny), max_x(mxx), max_y(mxy) {}

  /// Degenerate box representing a single point.
  static Box FromPoint(const Point& p) { return Box(p.x, p.y, p.x, p.y); }

  /// An "empty" box that is the identity for Expand().
  static Box Empty() {
    constexpr Coord kInf = std::numeric_limits<Coord>::infinity();
    return Box(kInf, kInf, -kInf, -kInf);
  }

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  Coord Width() const { return max_x - min_x; }
  Coord Height() const { return max_y - min_y; }
  double Area() const {
    if (IsEmpty()) return 0.0;
    return static_cast<double>(Width()) * Height();
  }
  double Perimeter() const {
    if (IsEmpty()) return 0.0;
    return 2.0 * (static_cast<double>(Width()) + Height());
  }
  Point Center() const {
    return Point{static_cast<Coord>((min_x + max_x) / 2),
                 static_cast<Coord>((min_y + max_y) / 2)};
  }

  /// Grows this box to cover `other`.
  void Expand(const Box& other) {
    min_x = std::min(min_x, other.min_x);
    min_y = std::min(min_y, other.min_y);
    max_x = std::max(max_x, other.max_x);
    max_y = std::max(max_y, other.max_y);
  }

  /// Area increase if this box were expanded to cover `other`.
  double Enlargement(const Box& other) const {
    Box merged = *this;
    merged.Expand(other);
    return merged.Area() - Area();
  }

  std::string ToString() const {
    return "[" + std::to_string(min_x) + "," + std::to_string(min_y) + " - " +
           std::to_string(max_x) + "," + std::to_string(max_y) + "]";
  }

  friend bool operator==(const Box& a, const Box& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

/// MBR intersection test: the predicate evaluated by the hardware join unit.
inline bool Intersects(const Box& r, const Box& s) {
  return r.max_x >= s.min_x && s.max_x >= r.min_x && r.max_y >= s.min_y &&
         s.max_y >= r.min_y;
}

/// True iff `outer` fully contains `inner` (closed boundaries).
inline bool Contains(const Box& outer, const Box& inner) {
  return outer.min_x <= inner.min_x && outer.max_x >= inner.max_x &&
         outer.min_y <= inner.min_y && outer.max_y >= inner.max_y;
}

/// True iff the point lies inside or on the boundary of `b`.
inline bool ContainsPoint(const Box& b, const Point& p) {
  return b.min_x <= p.x && p.x <= b.max_x && b.min_y <= p.y && p.y <= b.max_y;
}

/// Intersection rectangle of two boxes (empty box if disjoint).
inline Box Intersection(const Box& r, const Box& s) {
  Box out(std::max(r.min_x, s.min_x), std::max(r.min_y, s.min_y),
          std::min(r.max_x, s.max_x), std::min(r.max_y, s.max_y));
  return out;
}

/// PBSM duplicate-avoidance rule (Dittrich & Seeger [20], §2.3 of the paper):
/// a qualifying pair is reported by a tile only if the reference point of the
/// intersection region -- its bottom-left corner -- lies inside the tile.
/// Every intersecting pair has exactly one such tile, so each result is
/// emitted exactly once across all tiles.
inline bool ReferencePointInTile(const Box& r, const Box& s, const Box& tile) {
  const Box ix = Intersection(r, s);
  // The reference corner lies on tile boundaries when objects straddle tile
  // edges; the half-open test below assigns it to exactly one tile.
  return ix.min_x >= tile.min_x && ix.min_x < tile.max_x &&
         ix.min_y >= tile.min_y && ix.min_y < tile.max_y;
}

/// Prepares a tile for use with ReferencePointInTile: the max edge of the
/// last tile along each axis is pushed to +infinity, because the half-open
/// rule would otherwise drop pairs whose reference point sits exactly on the
/// global boundary (no tile to the right/above exists to claim them). The
/// caller states which tile is last (partitioners know their structure);
/// deciding by comparing coordinates against the extent max instead would
/// open EVERY tile whose float-rounded max edge collides with the extent max
/// -- overlapping half-open ranges that double-claim pairs.
inline Box CloseLastTile(Box tile, bool last_x, bool last_y) {
  constexpr Coord kInf = std::numeric_limits<Coord>::infinity();
  if (last_x) tile.max_x = kInf;
  if (last_y) tile.max_y = kInf;
  return tile;
}

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_GEOMETRY_BOX_H_
