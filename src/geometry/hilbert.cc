#include "geometry/hilbert.h"

#include "common/logging.h"

namespace swiftspatial {

namespace {

// Rotates/flips a quadrant so the curve orientation is preserved.
void Rot(uint64_t n, uint32_t* x, uint32_t* y, uint64_t rx, uint64_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = static_cast<uint32_t>(n - 1 - *x);
      *y = static_cast<uint32_t>(n - 1 - *y);
    }
    uint32_t t = *x;
    *x = *y;
    *y = t;
  }
}

}  // namespace

uint64_t HilbertD2XYInverse(uint32_t order, uint32_t x, uint32_t y) {
  SWIFT_CHECK(order >= 1 && order <= 31);
  const uint64_t n = 1ULL << order;
  SWIFT_CHECK(x < n && y < n);
  uint64_t d = 0;
  for (uint64_t s = n / 2; s > 0; s /= 2) {
    const uint64_t rx = (x & s) > 0 ? 1 : 0;
    const uint64_t ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    Rot(n, &x, &y, rx, ry);
  }
  return d;
}

void HilbertD2XY(uint32_t order, uint64_t d, uint32_t* x, uint32_t* y) {
  SWIFT_CHECK(order >= 1 && order <= 31);
  const uint64_t n = 1ULL << order;
  SWIFT_CHECK(d < n * n);
  uint32_t cx = 0, cy = 0;
  uint64_t t = d;
  for (uint64_t s = 1; s < n; s *= 2) {
    const uint64_t rx = 1 & (t / 2);
    const uint64_t ry = 1 & (t ^ rx);
    Rot(s, &cx, &cy, rx, ry);
    cx += static_cast<uint32_t>(s * rx);
    cy += static_cast<uint32_t>(s * ry);
    t /= 4;
  }
  *x = cx;
  *y = cy;
}

}  // namespace swiftspatial
