// Simple polygons for the refinement phase (§5.8). The filtering phase works
// purely on MBRs; refinement re-checks candidate pairs against the actual
// geometries. We synthesize convex polygons deterministically from an
// object's id and MBR, so refinement can run without storing geometries in
// the index -- mirroring how the paper's pipeline refines on the CPU after
// the FPGA filter.
#ifndef SWIFTSPATIAL_GEOMETRY_POLYGON_H_
#define SWIFTSPATIAL_GEOMETRY_POLYGON_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/point.h"

namespace swiftspatial {

/// A polygon as a counter-clockwise vertex ring (no closing duplicate).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices)
      : vertices_(std::move(vertices)) {}

  const std::vector<Point>& vertices() const { return vertices_; }
  std::size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }

  /// Minimum bounding rectangle of the vertex ring.
  Box Mbr() const;

  /// True if the ring is convex and counter-clockwise.
  bool IsConvexCcw() const;

  /// Signed area (positive for counter-clockwise rings).
  double SignedArea() const;

 private:
  std::vector<Point> vertices_;
};

/// True iff point `p` is inside or on the boundary of `poly` (crossing
/// number with boundary inclusion; works for any simple polygon).
bool PointInPolygon(const Point& p, const Polygon& poly);

/// True iff segments (a1,a2) and (b1,b2) intersect (including touching).
bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2);

/// Exact intersection test for two simple polygons: true if any edges cross
/// or one polygon contains the other.
bool PolygonsIntersect(const Polygon& a, const Polygon& b);

/// Deterministically materializes a convex polygon inscribed in `mbr`.
/// The shape depends only on (id, vertex count), so refinement can rebuild
/// the geometry of object `id` at any time. The polygon touches all four
/// MBR edges, making the MBR tight.
Polygon MakeConvexPolygon(uint64_t id, const Box& mbr, int num_vertices = 8);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_GEOMETRY_POLYGON_H_
