// Hilbert space-filling curve encoding, used by the Hilbert R-tree bulk
// loader (Kamel & Faloutsos [41]).
#ifndef SWIFTSPATIAL_GEOMETRY_HILBERT_H_
#define SWIFTSPATIAL_GEOMETRY_HILBERT_H_

#include <cstdint>

namespace swiftspatial {

/// Maps 2-D cell coordinates (x, y) in a 2^order x 2^order grid to the
/// distance along the Hilbert curve. `order` must be in [1, 31].
uint64_t HilbertD2XYInverse(uint32_t order, uint32_t x, uint32_t y);

/// Inverse mapping: curve distance -> (x, y).
void HilbertD2XY(uint32_t order, uint64_t d, uint32_t* x, uint32_t* y);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_GEOMETRY_HILBERT_H_
