// 2-D point type. SwiftSpatial stores coordinates as 32-bit floats, matching
// the accelerator's 20-byte node entry layout (4 x float32 MBR + int32 id).
#ifndef SWIFTSPATIAL_GEOMETRY_POINT_H_
#define SWIFTSPATIAL_GEOMETRY_POINT_H_

#include <cmath>

namespace swiftspatial {

/// Coordinate type used throughout the library (see file comment).
using Coord = float;

/// A point in the plane.
struct Point {
  Coord x = 0;
  Coord y = 0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance between two points.
inline double Distance(const Point& a, const Point& b) {
  const double dx = static_cast<double>(a.x) - b.x;
  const double dy = static_cast<double>(a.y) - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Signed twice-area of triangle (a, b, c): > 0 if counter-clockwise.
inline double Cross(const Point& a, const Point& b, const Point& c) {
  return (static_cast<double>(b.x) - a.x) * (static_cast<double>(c.y) - a.y) -
         (static_cast<double>(b.y) - a.y) * (static_cast<double>(c.x) - a.x);
}

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_GEOMETRY_POINT_H_
