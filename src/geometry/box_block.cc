#include "geometry/box_block.h"

namespace swiftspatial {

BoxBlock BoxBlock::FromBoxes(const std::vector<Box>& boxes) {
  BoxBlock block;
  block.Reserve(boxes.size());
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    block.Add(boxes[i], static_cast<ObjectId>(i));
  }
  return block;
}

BoxBlock BoxBlock::FromSubset(const Dataset& dataset,
                              const std::vector<ObjectId>& ids) {
  BoxBlock block;
  block.Reserve(ids.size());
  for (ObjectId id : ids) {
    block.Add(dataset.box(static_cast<std::size_t>(id)), id);
  }
  return block;
}

void BoxBlock::Reserve(std::size_t n) {
  min_x_.reserve(n);
  min_y_.reserve(n);
  max_x_.reserve(n);
  max_y_.reserve(n);
  ids_.reserve(n);
}

void BoxBlock::Add(const Box& b, ObjectId id) {
  min_x_.push_back(b.min_x);
  min_y_.push_back(b.min_y);
  max_x_.push_back(b.max_x);
  max_y_.push_back(b.max_y);
  ids_.push_back(id);
}

void BoxBlock::Clear() {
  min_x_.clear();
  min_y_.clear();
  max_x_.clear();
  max_y_.clear();
  ids_.clear();
}

}  // namespace swiftspatial
