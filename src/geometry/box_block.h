// BoxBlock: a structure-of-arrays MBR layout for batched predicate
// evaluation. Where Box stores one rectangle's four coordinates together
// (array-of-structures), BoxBlock keeps xmin/ymin/xmax/ymax in four separate
// contiguous arrays so a vectorized filter kernel (join/simd_filter.h) can
// load one coordinate of W candidates with a single aligned-width read --
// the CPU-side analogue of the parallel comparator banks in the SwiftSpatial
// join unit. Each slot also carries the object id it was built from, so
// blocks can represent arbitrary subsets (per-cell id lists) of a Dataset.
#ifndef SWIFTSPATIAL_GEOMETRY_BOX_BLOCK_H_
#define SWIFTSPATIAL_GEOMETRY_BOX_BLOCK_H_

#include <cstddef>
#include <vector>

#include "datagen/dataset.h"
#include "geometry/box.h"

namespace swiftspatial {

/// Structure-of-arrays block of MBRs plus their object ids.
class BoxBlock {
 public:
  BoxBlock() = default;

  /// Block over all of `boxes`, slot i carrying id i.
  static BoxBlock FromBoxes(const std::vector<Box>& boxes);

  /// Block over the subset of `dataset` named by `ids`, in `ids` order; slot
  /// i carries ids[i].
  static BoxBlock FromSubset(const Dataset& dataset,
                             const std::vector<ObjectId>& ids);

  void Reserve(std::size_t n);
  void Add(const Box& b, ObjectId id);
  void Clear();

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  ObjectId id(std::size_t i) const { return ids_[i]; }
  Box BoxAt(std::size_t i) const {
    return Box(min_x_[i], min_y_[i], max_x_[i], max_y_[i]);
  }

  // Contiguous coordinate arrays (each size() long).
  const Coord* min_x() const { return min_x_.data(); }
  const Coord* min_y() const { return min_y_.data(); }
  const Coord* max_x() const { return max_x_.data(); }
  const Coord* max_y() const { return max_y_.data(); }
  const std::vector<ObjectId>& ids() const { return ids_; }

 private:
  std::vector<Coord> min_x_;
  std::vector<Coord> min_y_;
  std::vector<Coord> max_x_;
  std::vector<Coord> max_y_;
  std::vector<ObjectId> ids_;
};

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_GEOMETRY_BOX_BLOCK_H_
