#include "exec/service.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "obs/log.h"
#include "obs/self_metrics.h"

namespace swiftspatial::exec {

const char* SchedulingPolicyToString(SchedulingPolicy p) {
  switch (p) {
    case SchedulingPolicy::kFcfs:
      return "fcfs";
    case SchedulingPolicy::kFairShare:
      return "fair-share";
  }
  return "unknown";
}

namespace {
obs::MetricsRegistry& ResolveMetrics(const JoinServiceOptions& options) {
  return options.metrics != nullptr ? *options.metrics
                                    : obs::MetricsRegistry::Global();
}
DatasetRegistryOptions RegistryOptionsFor(const JoinServiceOptions& options) {
  DatasetRegistryOptions ro;
  ro.metrics = options.metrics;
  return ro;
}
void AccumulateUsage(const obs::ResourceUsage& u, obs::ResourceUsage* agg) {
  agg->wall_seconds += u.wall_seconds;
  agg->cpu_seconds += u.cpu_seconds;
  agg->queue_wait_seconds += u.queue_wait_seconds;
  agg->tasks += u.tasks;
  agg->chunks += u.chunks;
  agg->pairs += u.pairs;
  agg->bytes += u.bytes;
  agg->retries += u.retries;
}
}  // namespace

JoinService::JoinService(const JoinServiceOptions& options)
    : options_(options),
      metrics_(&ResolveMetrics(options)),
      registry_(options.registry
                    ? options.registry
                    : std::make_shared<DatasetRegistry>(
                          RegistryOptionsFor(options))),
      pool_(std::max<std::size_t>(1, options.worker_threads)),
      m_admitted_(metrics_->GetCounter("swiftspatial_service_admitted_total", {}, "Requests past admission control")),
      m_rejected_(metrics_->GetCounter("swiftspatial_service_rejected_total", {}, "Submissions bounced by admission control")),
      m_rejected_deadline_(metrics_->GetCounter("swiftspatial_service_rejected_deadline_total", {}, "Rejections due to estimated wait exceeding the deadline")),
      m_completed_(metrics_->GetCounter("swiftspatial_service_completed_total", {}, "Requests that ran to completion")),
      m_abandoned_(metrics_->GetCounter("swiftspatial_service_abandoned_total", {}, "Requests closed Aborted without running")),
      m_expired_queued_(metrics_->GetCounter("swiftspatial_service_expired_queued_total", {}, "Deadlines expired while queued")),
      m_expired_running_(metrics_->GetCounter("swiftspatial_service_expired_running_total", {}, "Deadlines expired mid-run (cooperative cancellation)")),
      m_degraded_(metrics_->GetCounter("swiftspatial_service_degraded_total", {}, "Mid-run expiries closed OK with a partial result")),
      m_request_cpu_(metrics_->GetHistogram("swiftspatial_service_request_cpu_seconds", {}, {}, "Thread-CPU time summed over one request's task bodies")),
      m_result_pairs_(metrics_->GetCounter("swiftspatial_service_result_pairs_total", {}, "Result pairs streamed by finished requests")),
      m_result_bytes_(metrics_->GetCounter("swiftspatial_service_result_bytes_total", {}, "Result bytes streamed by finished requests")),
      m_tasks_(metrics_->GetCounter("swiftspatial_service_tasks_total", {}, "TaskGraph tasks executed for finished requests")),
      m_shard_retries_(metrics_->GetCounter("swiftspatial_service_shard_retries_total", {}, "Distributed shard retries triggered by finished requests")) {
  const std::size_t dispatchers =
      std::max<std::size_t>(1, options_.max_concurrent);
  dispatchers_.reserve(dispatchers);
  for (std::size_t i = 0; i < dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
  deadline_watchdog_ = std::thread([this] { DeadlineLoop(); });
}

JoinService::~JoinService() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
    if (!pending_.empty()) {
      SWIFT_LOG(Info, "service", "shutdown abandoning queued requests")
          .With("queued", pending_.size());
    }
    // Queued requests never run; their consumers see a clean Aborted end.
    for (Job& job : pending_) {
      job.abandon(Status::Aborted("service shutting down"));
      ++stats_.abandoned;
      m_abandoned_->Increment();
    }
    pending_.clear();
  }
  cv_job_.NotifyAll();
  cv_deadline_.NotifyAll();
  for (std::thread& d : dispatchers_) d.join();
  deadline_watchdog_.join();
}

Result<AsyncJoinHandle> JoinService::Submit(const std::string& tenant,
                                            const std::string& engine,
                                            const Dataset& r, const Dataset& s,
                                            const EngineConfig& config,
                                            const RequestOptions& request) {
  auto span = StartRequestSpan(tenant, engine);
  EngineConfig cfg = config;
  if (span) cfg.trace = span->context();
  StreamOptions stream = options_.stream;
  stream.metrics = metrics_;
  auto deferred = MakeJoinStream(engine, r, s, cfg, stream, &pool_);
  if (!deferred.ok()) return deferred.status();
  return Admit(std::move(*deferred), tenant, request, std::move(span));
}

Result<AsyncJoinHandle> JoinService::SubmitNamed(const std::string& tenant,
                                                 const std::string& engine,
                                                 const std::string& r_name,
                                                 const std::string& s_name,
                                                 const EngineConfig& config,
                                                 const RequestOptions& request) {
  auto span = StartRequestSpan(tenant, engine);
  EngineConfig cfg = config;
  if (span) cfg.trace = span->context();
  StreamOptions stream = options_.stream;
  stream.metrics = metrics_;
  auto deferred = MakeRegisteredJoinStream(registry_.get(), engine, r_name,
                                           s_name, cfg, stream);
  if (!deferred.ok()) return deferred.status();
  return Admit(std::move(*deferred), tenant, request, std::move(span));
}

DatasetHandle JoinService::RegisterDataset(std::string name, Dataset dataset) {
  return registry_->Put(std::move(name), std::move(dataset));
}

std::shared_ptr<obs::ScopedSpan> JoinService::StartRequestSpan(
    const std::string& tenant, const std::string& engine) const {
  if (options_.span_buffer == nullptr) return nullptr;
  auto span = std::make_shared<obs::ScopedSpan>(
      obs::TraceContext::StartTrace(options_.span_buffer), "request");
  span->AddAttr("tenant", tenant);
  span->AddAttr("engine", engine);
  return span;
}

void JoinService::TenantHistsLocked(const std::string& tenant, Job* job) {
  auto it = tenant_hists_.find(tenant);
  if (it == tenant_hists_.end()) {
    obs::Histogram* wait = metrics_->GetHistogram("swiftspatial_service_queue_wait_seconds", {{"tenant", tenant}}, {}, "Admission-to-dispatcher-pickup latency");
    obs::Histogram* run = metrics_->GetHistogram("swiftspatial_service_run_seconds", {{"tenant", tenant}}, {}, "Producer wall time (plan + execute + streaming)");
    it = tenant_hists_.emplace(tenant, std::make_pair(wait, run)).first;
  }
  job->queue_wait_hist = it->second.first;
  job->run_hist = it->second.second;
}

Result<AsyncJoinHandle> JoinService::Admit(
    DeferredStream deferred, const std::string& tenant,
    const RequestOptions& request,
    std::shared_ptr<obs::ScopedSpan> request_span) {
  const bool has_deadline = request.deadline_seconds > 0;
  // Stamped before the lock: the budget runs from submission, not from
  // whenever admission control gets scheduled.
  const auto deadline_tp =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              has_deadline ? request.deadline_seconds : 0));
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      ++stats_.rejected;
      m_rejected_->Increment();
      if (request_span) request_span->AddAttr("outcome", "rejected");
      SWIFT_LOG(Info, "service", "request rejected: shutting down")
          .With("tenant", tenant);
      deferred.abandon(Status::Aborted("service shutting down"));
      return Status::Aborted("service shutting down");
    }
    if (pending_.size() >= options_.max_pending) {
      ++stats_.rejected;
      m_rejected_->Increment();
      if (request_span) request_span->AddAttr("outcome", "rejected");
      SWIFT_LOG(Warn, "service", "request rejected: admission queue full")
          .With("tenant", tenant)
          .With("pending", pending_.size())
          .With("max_pending", options_.max_pending);
      deferred.abandon(
          Status::Aborted("admission queue full (max_pending=" +
                          std::to_string(options_.max_pending) + ")"));
      return Status::Aborted("admission queue full (max_pending=" +
                             std::to_string(options_.max_pending) + ")");
    }
    if (has_deadline) {
      const double wait = EstimatedQueueWaitLocked();
      if (wait > request.deadline_seconds) {
        ++stats_.rejected;
        ++stats_.rejected_deadline;
        m_rejected_->Increment();
        m_rejected_deadline_->Increment();
        if (request_span) {
          request_span->AddAttr("outcome", "rejected_deadline");
        }
        SWIFT_LOG(Warn, "service",
                  "request rejected: estimated wait exceeds deadline")
            .With("tenant", tenant)
            .With("estimated_wait_seconds", wait)
            .With("deadline_seconds", request.deadline_seconds);
        const std::string msg =
            "estimated queue wait " + std::to_string(wait) +
            "s already exceeds the request deadline " +
            std::to_string(request.deadline_seconds) + "s";
        deferred.abandon(Status::DeadlineExceeded(msg));
        return Status::DeadlineExceeded(msg);
      }
    }
    Job job;
    job.sequence = next_sequence_++;
    job.tenant = tenant;
    job.producer = std::move(deferred.producer);
    job.abandon = std::move(deferred.abandon);
    job.cancel_with = std::move(deferred.cancel_with);
    job.cancel = deferred.cancel;
    job.usage = std::move(deferred.usage);
    job.has_deadline = has_deadline;
    job.degrade = request.degrade_on_deadline;
    job.deadline_tp = deadline_tp;
    job.submit_seconds = NowSeconds();
    TenantHistsLocked(tenant, &job);
    if (request_span) {
      // The queued span covers admission -> dispatcher pickup (or abandon);
      // the request span stays open until the producer finishes, so the
      // whole request life is one bar in the trace with queue time nested.
      auto queued_span = std::make_shared<obs::ScopedSpan>(
          request_span->context(), "queued");
      const uint64_t trace_id = request_span->context().trace_id();
      const uint64_t span_id = request_span->span_id();
      job.producer = [producer = std::move(job.producer), request_span,
                      queued_span, trace_id, span_id] {
        queued_span->End();
        // Everything the producer logs on this thread -- admission already
        // happened, so this covers plan/execute/close -- joins the
        // request's trace.
        obs::ScopedLogTrace log_trace(trace_id, span_id);
        producer();
        request_span->End();
      };
      job.abandon = [abandon = std::move(job.abandon), request_span,
                     queued_span](Status status) {
        queued_span->End();
        abandon(std::move(status));
        request_span->AddAttr("outcome", "abandoned");
        request_span->End();
      };
    }
    pending_.push_back(std::move(job));
    ++stats_.admitted;
    m_admitted_->Increment();
    stats_.max_pending_seen =
        std::max(stats_.max_pending_seen, pending_.size());
  }
  cv_job_.NotifyOne();
  // A new deadline may now be the earliest; re-aim the watchdog.
  if (has_deadline) cv_deadline_.NotifyAll();
  return std::move(deferred.handle);
}

JoinService::Job JoinService::TakeNextJobLocked() {
  SWIFT_CHECK(!pending_.empty());
  std::size_t pick = 0;
  if (options_.policy == SchedulingPolicy::kFairShare) {
    // Least-served tenant first (jobs running + completed), FCFS within a
    // tenant. The deque is arrival-ordered, so the first hit for the
    // minimal tenant is also that tenant's oldest request.
    std::size_t best_load = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      const std::string& tenant = pending_[i].tenant;
      const auto in_flight = in_flight_per_tenant_.find(tenant);
      const auto served = served_per_tenant_.find(tenant);
      const std::size_t load =
          (in_flight == in_flight_per_tenant_.end() ? 0 : in_flight->second) +
          (served == served_per_tenant_.end() ? 0 : served->second);
      if (load < best_load) {
        best_load = load;
        pick = i;
      }
    }
  }
  Job job = std::move(pending_[pick]);
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(pick));
  return job;
}

void JoinService::DispatcherLoop() {
  for (;;) {
    Job job;
    bool abandoned = false;
    bool expired_at_pickup = false;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && pending_.empty()) cv_job_.Wait(&mu_);
      if (pending_.empty()) return;  // stopping_ and nothing left to serve
      job = TakeNextJobLocked();
      ++running_;
      ++in_flight_per_tenant_[job.tenant];
      abandoned = job.cancel.cancelled();
      expired_at_pickup =
          !abandoned && job.has_deadline &&
          std::chrono::steady_clock::now() >= job.deadline_tp;
      if (!abandoned && !expired_at_pickup && job.has_deadline) {
        // Hand the running job to the watchdog before the join starts, so
        // there is no window where an expired deadline goes unenforced.
        running_deadlines_[job.sequence] =
            RunningDeadline{job.deadline_tp, job.cancel_with, job.degrade};
        cv_deadline_.NotifyAll();
      }
    }

    double job_seconds = 0;
    obs::ResourceUsage usage;
    if (abandoned) {
      // The consumer gave up while the request queued: close the stream
      // without running the join.
      SWIFT_LOG(Info, "service", "queued request abandoned by its consumer")
          .With("tenant", job.tenant);
      job.abandon(Status::Aborted("join cancelled mid-stream"));
    } else if (expired_at_pickup) {
      // The deadline passed while the request queued but before the
      // watchdog fired (or with no watchdog wakeup in between): same
      // outcome, the join never runs.
      SWIFT_LOG(Warn, "service", "deadline expired while queued")
          .With("tenant", job.tenant);
      job.abandon(Status::DeadlineExceeded("deadline expired while queued"));
    } else {
      const double start = NowSeconds();
      const double queue_wait = start - job.submit_seconds;
      if (job.queue_wait_hist != nullptr) {
        job.queue_wait_hist->Observe(queue_wait);
      }
      // The service-side admission wait joins the pool-side task waits the
      // TaskGraph feeds in: queue_wait_seconds is all time the request
      // spent runnable-but-waiting, at either level.
      if (job.usage != nullptr) job.usage->AddQueueWaitSeconds(queue_wait);
      job.producer();  // blocking: runs the join, streams, closes
      job_seconds = NowSeconds() - start;
      if (job.run_hist != nullptr) job.run_hist->Observe(job_seconds);
      if (job.usage != nullptr) {
        usage = job.usage->Snapshot();
        m_request_cpu_->Observe(usage.cpu_seconds);
        m_result_pairs_->Increment(usage.pairs);
        m_result_bytes_->Increment(usage.bytes);
        m_tasks_->Increment(usage.tasks);
        m_shard_retries_->Increment(usage.retries);
      }
      SWIFT_LOG(Debug, "service", "request finished")
          .With("tenant", job.tenant)
          .With("run_seconds", job_seconds)
          .With("cpu_seconds", usage.cpu_seconds)
          .With("pairs", usage.pairs)
          .With("tasks", usage.tasks);
    }

    {
      MutexLock lock(&mu_);
      --running_;
      --in_flight_per_tenant_[job.tenant];
      if (abandoned) {
        // Never ran: not served, not completed -- charging it to the
        // tenant would let cancelled requests skew fair-share ordering.
        ++stats_.abandoned;
        m_abandoned_->Increment();
      } else if (expired_at_pickup) {
        ++stats_.expired_queued;
        m_expired_queued_->Increment();
      } else {
        const auto rd = running_deadlines_.find(job.sequence);
        const bool expired_mid_run =
            job.has_deadline && rd == running_deadlines_.end();
        if (rd != running_deadlines_.end()) running_deadlines_.erase(rd);
        // The tenant consumed a dispatcher slot either way, so fair-share
        // charges it; but an expired run is not a completion -- its result
        // is a prefix (or nothing), and feeding its truncated duration to
        // the EWMA would teach admission that jobs are faster than they
        // are.
        ++served_per_tenant_[job.tenant];
        // Resource accounting covers expired runs too: the partial work
        // was still paid for, and cost visibility is the point.
        AccumulateUsage(usage, &stats_.resources);
        if (!expired_mid_run) {
          ++stats_.completed;
          m_completed_->Increment();
          completion_order_.push_back(job.tenant);
          // Feed the deadline-admission estimate. Alpha 0.3: reactive
          // enough to track load shifts, stable enough that one outlier
          // join does not swing admissions.
          if (have_measurement_) {
            ewma_job_seconds_ = 0.7 * ewma_job_seconds_ + 0.3 * job_seconds;
          } else {
            ewma_job_seconds_ = job_seconds;
            have_measurement_ = true;
          }
          last_completion_seconds_ = NowSeconds();
        }
      }
      // Under the lock: a Drain()er may tear the service down once it sees
      // the idle state, which must not overlap the notify call.
      cv_idle_.NotifyAll();
    }
  }
}

void JoinService::DeadlineLoop() {
  MutexLock lock(&mu_);
  for (;;) {
    if (stopping_) return;
    // Earliest deadline across queued and running jobs.
    auto earliest = std::chrono::steady_clock::time_point::max();
    bool have = false;
    for (const Job& job : pending_) {
      if (job.has_deadline && job.deadline_tp < earliest) {
        earliest = job.deadline_tp;
        have = true;
      }
    }
    for (const auto& [sequence, rd] : running_deadlines_) {
      if (rd.deadline_tp < earliest) {
        earliest = rd.deadline_tp;
        have = true;
      }
    }
    if (!have) {
      cv_deadline_.Wait(&mu_);
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now < earliest) {
      cv_deadline_.WaitUntil(&mu_, earliest);
      continue;
    }

    // Queued expirations: the join never runs. abandon() only touches the
    // stream's own mutex (never mu_), so calling it under the lock is safe
    // and keeps the removal + close atomic against dispatchers.
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->has_deadline && it->deadline_tp <= now) {
        Job job = std::move(*it);
        it = pending_.erase(it);
        ++stats_.expired_queued;
        m_expired_queued_->Increment();
        SWIFT_LOG(Warn, "service", "deadline expired while queued")
            .With("tenant", job.tenant);
        job.abandon(
            Status::DeadlineExceeded("deadline expired while queued"));
      } else {
        ++it;
      }
    }
    // Mid-run expirations: cooperative cancellation with the right terminal
    // status. The producer keeps running until it observes the token; the
    // dispatcher sees the erased entry at completion and skips the
    // completed/EWMA accounting.
    for (auto it = running_deadlines_.begin();
         it != running_deadlines_.end();) {
      if (it->second.deadline_tp <= now) {
        ++stats_.expired_running;
        m_expired_running_->Increment();
        SWIFT_LOG(Warn, "service", "deadline expired mid-run; cancelling")
            .With("sequence", it->first)
            .With("degrade", it->second.degrade);
        if (it->second.degrade) {
          ++stats_.degraded;
          m_degraded_->Increment();
          it->second.cancel_with(Status::OK());
        } else {
          it->second.cancel_with(
              Status::DeadlineExceeded("deadline expired mid-run"));
        }
        it = running_deadlines_.erase(it);
      } else {
        ++it;
      }
    }
    cv_idle_.NotifyAll();
  }
}

double JoinService::NowSeconds() const {
  if (options_.clock_for_testing) return options_.clock_for_testing();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double JoinService::EffectiveJobSecondsLocked() const {
  if (!have_measurement_) return options_.initial_job_seconds_estimate;
  const double halflife = options_.ewma_idle_halflife_seconds;
  if (halflife <= 0) return ewma_job_seconds_;
  const double idle = NowSeconds() - last_completion_seconds_;
  if (idle <= 0) return ewma_job_seconds_;
  // Exponential idle decay: stale measurements stop vetoing admissions a
  // few half-lives after the load that produced them went away.
  return ewma_job_seconds_ * std::exp2(-idle / halflife);
}

double JoinService::EstimatedQueueWaitLocked() const {
  const double per_job = EffectiveJobSecondsLocked();
  const std::size_t slots = std::max<std::size_t>(1, options_.max_concurrent);
  // Jobs that must finish before a request submitted now can start: with a
  // free dispatcher slot the request runs immediately (zero queue wait),
  // so only the load beyond the remaining slot capacity queues ahead of it.
  const std::size_t load = pending_.size() + running_;
  const std::size_t ahead = load >= slots ? load - (slots - 1) : 0;
  return static_cast<double>(ahead) / static_cast<double>(slots) * per_job;
}

double JoinService::EstimatedQueueWaitSeconds() const {
  MutexLock lock(&mu_);
  return EstimatedQueueWaitLocked();
}

void JoinService::Drain() {
  MutexLock lock(&mu_);
  while (!pending_.empty() || running_ != 0) cv_idle_.Wait(&mu_);
}

JoinServiceStats JoinService::Snapshot() const {
  // Both reads happen under mu_ so the service counters and the plan-cache
  // counters cannot tear against a concurrent request. Lock order: service
  // mu_ -> registry internal lock. The registry never calls back into the
  // service, so the order is acyclic and this nesting is safe.
  MutexLock lock(&mu_);
  JoinServiceStats snapshot = stats_;
  snapshot.plan_cache = registry_->plan_cache_stats();
  return snapshot;
}

std::string JoinService::MetricsText() const {
  SyncServiceGauges();
  return metrics_->TextExposition();
}

std::string JoinService::MetricsJson() const {
  SyncServiceGauges();
  return metrics_->JsonSnapshot();
}

void JoinService::SyncServiceGauges() const {
  std::size_t pending = 0;
  std::size_t running = 0;
  std::size_t max_pending_seen = 0;
  {
    MutexLock lock(&mu_);
    pending = pending_.size();
    running = running_;
    max_pending_seen = stats_.max_pending_seen;
  }
  metrics_->GetGauge("swiftspatial_service_pending", {}, "Requests queued behind admission right now")->Set(static_cast<double>(pending));
  metrics_->GetGauge("swiftspatial_service_running", {}, "Requests holding a dispatcher slot right now")->Set(static_cast<double>(running));
  metrics_->GetGauge("swiftspatial_service_max_pending_seen", {}, "High-water mark of the pending queue")->Set(static_cast<double>(max_pending_seen));
  // The obs layer's own health counters ride along on every exposition so
  // a scrape can tell whether span/log telemetry was truncated.
  obs::ExportSelfMetrics(metrics_, options_.span_buffer);
}

std::vector<std::string> JoinService::completion_order() const {
  MutexLock lock(&mu_);
  return completion_order_;
}

}  // namespace swiftspatial::exec
