#include "exec/service.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace swiftspatial::exec {

const char* SchedulingPolicyToString(SchedulingPolicy p) {
  switch (p) {
    case SchedulingPolicy::kFcfs:
      return "fcfs";
    case SchedulingPolicy::kFairShare:
      return "fair-share";
  }
  return "unknown";
}

JoinService::JoinService(const JoinServiceOptions& options)
    : options_(options),
      registry_(options.registry ? options.registry
                                 : std::make_shared<DatasetRegistry>()),
      pool_(std::max<std::size_t>(1, options.worker_threads)) {
  const std::size_t dispatchers =
      std::max<std::size_t>(1, options_.max_concurrent);
  dispatchers_.reserve(dispatchers);
  for (std::size_t i = 0; i < dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
  deadline_watchdog_ = std::thread([this] { DeadlineLoop(); });
}

JoinService::~JoinService() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
    // Queued requests never run; their consumers see a clean Aborted end.
    for (Job& job : pending_) {
      job.abandon(Status::Aborted("service shutting down"));
      ++stats_.abandoned;
    }
    pending_.clear();
  }
  cv_job_.NotifyAll();
  cv_deadline_.NotifyAll();
  for (std::thread& d : dispatchers_) d.join();
  deadline_watchdog_.join();
}

Result<AsyncJoinHandle> JoinService::Submit(const std::string& tenant,
                                            const std::string& engine,
                                            const Dataset& r, const Dataset& s,
                                            const EngineConfig& config,
                                            const RequestOptions& request) {
  auto deferred =
      MakeJoinStream(engine, r, s, config, options_.stream, &pool_);
  if (!deferred.ok()) return deferred.status();
  return Admit(std::move(*deferred), tenant, request);
}

Result<AsyncJoinHandle> JoinService::SubmitNamed(const std::string& tenant,
                                                 const std::string& engine,
                                                 const std::string& r_name,
                                                 const std::string& s_name,
                                                 const EngineConfig& config,
                                                 const RequestOptions& request) {
  auto deferred = MakeRegisteredJoinStream(registry_.get(), engine, r_name,
                                           s_name, config, options_.stream);
  if (!deferred.ok()) return deferred.status();
  return Admit(std::move(*deferred), tenant, request);
}

DatasetHandle JoinService::RegisterDataset(std::string name, Dataset dataset) {
  return registry_->Put(std::move(name), std::move(dataset));
}

Result<AsyncJoinHandle> JoinService::Admit(DeferredStream deferred,
                                           const std::string& tenant,
                                           const RequestOptions& request) {
  const bool has_deadline = request.deadline_seconds > 0;
  // Stamped before the lock: the budget runs from submission, not from
  // whenever admission control gets scheduled.
  const auto deadline_tp =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(
              has_deadline ? request.deadline_seconds : 0));
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      ++stats_.rejected;
      deferred.abandon(Status::Aborted("service shutting down"));
      return Status::Aborted("service shutting down");
    }
    if (pending_.size() >= options_.max_pending) {
      ++stats_.rejected;
      deferred.abandon(
          Status::Aborted("admission queue full (max_pending=" +
                          std::to_string(options_.max_pending) + ")"));
      return Status::Aborted("admission queue full (max_pending=" +
                             std::to_string(options_.max_pending) + ")");
    }
    if (has_deadline) {
      const double wait = EstimatedQueueWaitLocked();
      if (wait > request.deadline_seconds) {
        ++stats_.rejected;
        ++stats_.rejected_deadline;
        const std::string msg =
            "estimated queue wait " + std::to_string(wait) +
            "s already exceeds the request deadline " +
            std::to_string(request.deadline_seconds) + "s";
        deferred.abandon(Status::DeadlineExceeded(msg));
        return Status::DeadlineExceeded(msg);
      }
    }
    Job job;
    job.sequence = next_sequence_++;
    job.tenant = tenant;
    job.producer = std::move(deferred.producer);
    job.abandon = std::move(deferred.abandon);
    job.cancel_with = std::move(deferred.cancel_with);
    job.cancel = deferred.cancel;
    job.has_deadline = has_deadline;
    job.degrade = request.degrade_on_deadline;
    job.deadline_tp = deadline_tp;
    pending_.push_back(std::move(job));
    ++stats_.admitted;
    stats_.max_pending_seen =
        std::max(stats_.max_pending_seen, pending_.size());
  }
  cv_job_.NotifyOne();
  // A new deadline may now be the earliest; re-aim the watchdog.
  if (has_deadline) cv_deadline_.NotifyAll();
  return std::move(deferred.handle);
}

JoinService::Job JoinService::TakeNextJobLocked() {
  SWIFT_CHECK(!pending_.empty());
  std::size_t pick = 0;
  if (options_.policy == SchedulingPolicy::kFairShare) {
    // Least-served tenant first (jobs running + completed), FCFS within a
    // tenant. The deque is arrival-ordered, so the first hit for the
    // minimal tenant is also that tenant's oldest request.
    std::size_t best_load = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      const std::string& tenant = pending_[i].tenant;
      const auto in_flight = in_flight_per_tenant_.find(tenant);
      const auto served = served_per_tenant_.find(tenant);
      const std::size_t load =
          (in_flight == in_flight_per_tenant_.end() ? 0 : in_flight->second) +
          (served == served_per_tenant_.end() ? 0 : served->second);
      if (load < best_load) {
        best_load = load;
        pick = i;
      }
    }
  }
  Job job = std::move(pending_[pick]);
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(pick));
  return job;
}

void JoinService::DispatcherLoop() {
  for (;;) {
    Job job;
    bool abandoned = false;
    bool expired_at_pickup = false;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && pending_.empty()) cv_job_.Wait(&mu_);
      if (pending_.empty()) return;  // stopping_ and nothing left to serve
      job = TakeNextJobLocked();
      ++running_;
      ++in_flight_per_tenant_[job.tenant];
      abandoned = job.cancel.cancelled();
      expired_at_pickup =
          !abandoned && job.has_deadline &&
          std::chrono::steady_clock::now() >= job.deadline_tp;
      if (!abandoned && !expired_at_pickup && job.has_deadline) {
        // Hand the running job to the watchdog before the join starts, so
        // there is no window where an expired deadline goes unenforced.
        running_deadlines_[job.sequence] =
            RunningDeadline{job.deadline_tp, job.cancel_with, job.degrade};
        cv_deadline_.NotifyAll();
      }
    }

    double job_seconds = 0;
    if (abandoned) {
      // The consumer gave up while the request queued: close the stream
      // without running the join.
      job.abandon(Status::Aborted("join cancelled mid-stream"));
    } else if (expired_at_pickup) {
      // The deadline passed while the request queued but before the
      // watchdog fired (or with no watchdog wakeup in between): same
      // outcome, the join never runs.
      job.abandon(Status::DeadlineExceeded("deadline expired while queued"));
    } else {
      const double start = NowSeconds();
      job.producer();  // blocking: runs the join, streams, closes
      job_seconds = NowSeconds() - start;
    }

    {
      MutexLock lock(&mu_);
      --running_;
      --in_flight_per_tenant_[job.tenant];
      if (abandoned) {
        // Never ran: not served, not completed -- charging it to the
        // tenant would let cancelled requests skew fair-share ordering.
        ++stats_.abandoned;
      } else if (expired_at_pickup) {
        ++stats_.expired_queued;
      } else {
        const auto rd = running_deadlines_.find(job.sequence);
        const bool expired_mid_run =
            job.has_deadline && rd == running_deadlines_.end();
        if (rd != running_deadlines_.end()) running_deadlines_.erase(rd);
        // The tenant consumed a dispatcher slot either way, so fair-share
        // charges it; but an expired run is not a completion -- its result
        // is a prefix (or nothing), and feeding its truncated duration to
        // the EWMA would teach admission that jobs are faster than they
        // are.
        ++served_per_tenant_[job.tenant];
        if (!expired_mid_run) {
          ++stats_.completed;
          completion_order_.push_back(job.tenant);
          // Feed the deadline-admission estimate. Alpha 0.3: reactive
          // enough to track load shifts, stable enough that one outlier
          // join does not swing admissions.
          if (have_measurement_) {
            ewma_job_seconds_ = 0.7 * ewma_job_seconds_ + 0.3 * job_seconds;
          } else {
            ewma_job_seconds_ = job_seconds;
            have_measurement_ = true;
          }
          last_completion_seconds_ = NowSeconds();
        }
      }
      // Under the lock: a Drain()er may tear the service down once it sees
      // the idle state, which must not overlap the notify call.
      cv_idle_.NotifyAll();
    }
  }
}

void JoinService::DeadlineLoop() {
  MutexLock lock(&mu_);
  for (;;) {
    if (stopping_) return;
    // Earliest deadline across queued and running jobs.
    auto earliest = std::chrono::steady_clock::time_point::max();
    bool have = false;
    for (const Job& job : pending_) {
      if (job.has_deadline && job.deadline_tp < earliest) {
        earliest = job.deadline_tp;
        have = true;
      }
    }
    for (const auto& [sequence, rd] : running_deadlines_) {
      if (rd.deadline_tp < earliest) {
        earliest = rd.deadline_tp;
        have = true;
      }
    }
    if (!have) {
      cv_deadline_.Wait(&mu_);
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now < earliest) {
      cv_deadline_.WaitUntil(&mu_, earliest);
      continue;
    }

    // Queued expirations: the join never runs. abandon() only touches the
    // stream's own mutex (never mu_), so calling it under the lock is safe
    // and keeps the removal + close atomic against dispatchers.
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->has_deadline && it->deadline_tp <= now) {
        Job job = std::move(*it);
        it = pending_.erase(it);
        ++stats_.expired_queued;
        job.abandon(
            Status::DeadlineExceeded("deadline expired while queued"));
      } else {
        ++it;
      }
    }
    // Mid-run expirations: cooperative cancellation with the right terminal
    // status. The producer keeps running until it observes the token; the
    // dispatcher sees the erased entry at completion and skips the
    // completed/EWMA accounting.
    for (auto it = running_deadlines_.begin();
         it != running_deadlines_.end();) {
      if (it->second.deadline_tp <= now) {
        ++stats_.expired_running;
        if (it->second.degrade) {
          ++stats_.degraded;
          it->second.cancel_with(Status::OK());
        } else {
          it->second.cancel_with(
              Status::DeadlineExceeded("deadline expired mid-run"));
        }
        it = running_deadlines_.erase(it);
      } else {
        ++it;
      }
    }
    cv_idle_.NotifyAll();
  }
}

double JoinService::NowSeconds() const {
  if (options_.clock_for_testing) return options_.clock_for_testing();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double JoinService::EffectiveJobSecondsLocked() const {
  if (!have_measurement_) return options_.initial_job_seconds_estimate;
  const double halflife = options_.ewma_idle_halflife_seconds;
  if (halflife <= 0) return ewma_job_seconds_;
  const double idle = NowSeconds() - last_completion_seconds_;
  if (idle <= 0) return ewma_job_seconds_;
  // Exponential idle decay: stale measurements stop vetoing admissions a
  // few half-lives after the load that produced them went away.
  return ewma_job_seconds_ * std::exp2(-idle / halflife);
}

double JoinService::EstimatedQueueWaitLocked() const {
  const double per_job = EffectiveJobSecondsLocked();
  const std::size_t slots = std::max<std::size_t>(1, options_.max_concurrent);
  // Jobs that must finish before a request submitted now can start: with a
  // free dispatcher slot the request runs immediately (zero queue wait),
  // so only the load beyond the remaining slot capacity queues ahead of it.
  const std::size_t load = pending_.size() + running_;
  const std::size_t ahead = load >= slots ? load - (slots - 1) : 0;
  return static_cast<double>(ahead) / static_cast<double>(slots) * per_job;
}

double JoinService::EstimatedQueueWaitSeconds() const {
  MutexLock lock(&mu_);
  return EstimatedQueueWaitLocked();
}

void JoinService::Drain() {
  MutexLock lock(&mu_);
  while (!pending_.empty() || running_ != 0) cv_idle_.Wait(&mu_);
}

JoinServiceStats JoinService::stats() const {
  JoinServiceStats snapshot;
  {
    MutexLock lock(&mu_);
    snapshot = stats_;
  }
  // Outside mu_: the registry has its own lock and must never nest inside
  // the service's.
  snapshot.plan_cache = registry_->plan_cache_stats();
  return snapshot;
}

std::vector<std::string> JoinService::completion_order() const {
  MutexLock lock(&mu_);
  return completion_order_;
}

}  // namespace swiftspatial::exec
