#include "exec/service.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace swiftspatial::exec {

const char* SchedulingPolicyToString(SchedulingPolicy p) {
  switch (p) {
    case SchedulingPolicy::kFcfs:
      return "fcfs";
    case SchedulingPolicy::kFairShare:
      return "fair-share";
  }
  return "unknown";
}

JoinService::JoinService(const JoinServiceOptions& options)
    : options_(options),
      pool_(std::max<std::size_t>(1, options.worker_threads)) {
  const std::size_t dispatchers =
      std::max<std::size_t>(1, options_.max_concurrent);
  dispatchers_.reserve(dispatchers);
  for (std::size_t i = 0; i < dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
}

JoinService::~JoinService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Queued requests never run; their consumers see a clean Aborted end.
    for (Job& job : pending_) {
      job.abandon(Status::Aborted("service shutting down"));
      ++stats_.abandoned;
    }
    pending_.clear();
  }
  cv_job_.notify_all();
  for (std::thread& d : dispatchers_) d.join();
}

Result<AsyncJoinHandle> JoinService::Submit(const std::string& tenant,
                                            const std::string& engine,
                                            const Dataset& r, const Dataset& s,
                                            const EngineConfig& config,
                                            const RequestOptions& request) {
  auto deferred =
      MakeJoinStream(engine, r, s, config, options_.stream, &pool_);
  if (!deferred.ok()) return deferred.status();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ++stats_.rejected;
      deferred->abandon(Status::Aborted("service shutting down"));
      return Status::Aborted("service shutting down");
    }
    if (pending_.size() >= options_.max_pending) {
      ++stats_.rejected;
      deferred->abandon(
          Status::Aborted("admission queue full (max_pending=" +
                          std::to_string(options_.max_pending) + ")"));
      return Status::Aborted("admission queue full (max_pending=" +
                             std::to_string(options_.max_pending) + ")");
    }
    if (request.deadline_seconds > 0) {
      const double wait = EstimatedQueueWaitLocked();
      if (wait > request.deadline_seconds) {
        ++stats_.rejected;
        ++stats_.rejected_deadline;
        const std::string msg =
            "estimated queue wait " + std::to_string(wait) +
            "s already exceeds the request deadline " +
            std::to_string(request.deadline_seconds) + "s";
        deferred->abandon(Status::DeadlineExceeded(msg));
        return Status::DeadlineExceeded(msg);
      }
    }
    Job job;
    job.sequence = next_sequence_++;
    job.tenant = tenant;
    job.producer = std::move(deferred->producer);
    job.abandon = std::move(deferred->abandon);
    job.cancel = deferred->cancel;
    pending_.push_back(std::move(job));
    ++stats_.admitted;
    stats_.max_pending_seen =
        std::max(stats_.max_pending_seen, pending_.size());
  }
  cv_job_.notify_one();
  return std::move(deferred->handle);
}

JoinService::Job JoinService::TakeNextJobLocked() {
  SWIFT_CHECK(!pending_.empty());
  std::size_t pick = 0;
  if (options_.policy == SchedulingPolicy::kFairShare) {
    // Least-served tenant first (jobs running + completed), FCFS within a
    // tenant. The deque is arrival-ordered, so the first hit for the
    // minimal tenant is also that tenant's oldest request.
    std::size_t best_load = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      const std::string& tenant = pending_[i].tenant;
      const auto in_flight = in_flight_per_tenant_.find(tenant);
      const auto served = served_per_tenant_.find(tenant);
      const std::size_t load =
          (in_flight == in_flight_per_tenant_.end() ? 0 : in_flight->second) +
          (served == served_per_tenant_.end() ? 0 : served->second);
      if (load < best_load) {
        best_load = load;
        pick = i;
      }
    }
  }
  Job job = std::move(pending_[pick]);
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(pick));
  return job;
}

void JoinService::DispatcherLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_job_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping_ and nothing left to serve
      job = TakeNextJobLocked();
      ++running_;
      ++in_flight_per_tenant_[job.tenant];
    }

    const bool abandoned = job.cancel.cancelled();
    double job_seconds = 0;
    if (abandoned) {
      // The consumer gave up while the request queued: close the stream
      // without running the join.
      job.abandon(Status::Aborted("join cancelled mid-stream"));
    } else {
      Stopwatch sw;
      job.producer();  // blocking: runs the join, streams, closes
      job_seconds = sw.ElapsedSeconds();
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      --in_flight_per_tenant_[job.tenant];
      if (abandoned) {
        // Never ran: not served, not completed -- charging it to the
        // tenant would let cancelled requests skew fair-share ordering.
        ++stats_.abandoned;
      } else {
        ++served_per_tenant_[job.tenant];
        ++stats_.completed;
        completion_order_.push_back(job.tenant);
        // Feed the deadline-admission estimate. Alpha 0.3: reactive enough
        // to track load shifts, stable enough that one outlier join does
        // not swing admissions.
        if (have_measurement_) {
          ewma_job_seconds_ = 0.7 * ewma_job_seconds_ + 0.3 * job_seconds;
        } else {
          ewma_job_seconds_ = job_seconds;
          have_measurement_ = true;
        }
      }
      // Under the lock: a Drain()er may tear the service down once it sees
      // the idle state, which must not overlap the notify call.
      cv_idle_.notify_all();
    }
  }
}

double JoinService::EstimatedQueueWaitLocked() const {
  const double per_job = have_measurement_
                             ? ewma_job_seconds_
                             : options_.initial_job_seconds_estimate;
  const std::size_t slots = std::max<std::size_t>(1, options_.max_concurrent);
  // Jobs that must finish before a request submitted now can start: with a
  // free dispatcher slot the request runs immediately (zero queue wait),
  // so only the load beyond the remaining slot capacity queues ahead of it.
  const std::size_t load = pending_.size() + running_;
  const std::size_t ahead = load >= slots ? load - (slots - 1) : 0;
  return static_cast<double>(ahead) / static_cast<double>(slots) * per_job;
}

double JoinService::EstimatedQueueWaitSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EstimatedQueueWaitLocked();
}

void JoinService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return pending_.empty() && running_ == 0; });
}

JoinServiceStats JoinService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<std::string> JoinService::completion_order() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completion_order_;
}

}  // namespace swiftspatial::exec
