// Streaming join execution: the asynchronous face of the JoinEngine API.
//
//   auto handle = exec::RunJoinAsync("partitioned", r, s, config);
//   if (!handle.ok()) ...;
//   exec::ResultChunk chunk;
//   while (handle->Next(&chunk)) Consume(chunk.pairs);   // backpressured
//   Status final = handle->Wait();
//
// Result pairs arrive as bounded-queue ResultChunks while the join is still
// running: the producer blocks once `queue_capacity` chunks are buffered
// (backpressure bounds memory no matter how large the join), and
// Cancel() cooperatively stops the join mid-stream -- chunks already
// delivered form a well-defined prefix (consecutive sequence numbers, every
// pair a genuine result, no duplicates) and Wait()/Collect() report
// Aborted.
//
// Four producer strategies sit behind one handle type:
//  - Partition-family engines ("partitioned", "simd", "async") stream
//    natively: the grid is split into row bands, each band's cell
//    assignment runs as a TaskGraph *plan task* that dynamically spawns
//    that band's cell-join tasks, so planning of band k+1 overlaps joining
//    of band k and the first chunks surface long before the last shard is
//    even partitioned.
//  - Accelerator engines ("accel-bfs", "accel-pbsm", "accel-pbsm-4x")
//    stream natively from the simulated device: each result-burst flush of
//    the write unit (BFS level / PBSM tile batch / multi-device shard)
//    becomes chunks while the simulated kernel still runs, so host-side
//    consumption overlaps device execution (join/accel_engine.h).
//  - Distributed engines ("dist-pbsm", "dist-accel") stream natively from
//    the simulated cluster: every shard the merge coordinator commits
//    surfaces as chunks while other nodes are still joining, and a
//    cancelled consumer stops the whole cluster mid-exchange
//    (dist/dist_engine.h).
//  - Every other registered engine runs Plan -> Execute synchronously on
//    the producer thread and streams the finished result out in chunks, so
//    the streaming contract (chunks, backpressure, cancellation, Collect)
//    is uniform across the whole registry.
//
// Collect() folds a stream back into a JoinRun, which is how the
// "async" engine (registered in EngineRegistry::Global()) proves the
// streaming path bit-identical to the synchronous one: the cross-algorithm
// equivalence oracle in tests/join/equivalence_test.cc covers it like any
// other engine.
#ifndef SWIFTSPATIAL_EXEC_STREAMING_H_
#define SWIFTSPATIAL_EXEC_STREAMING_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "datagen/dataset.h"
#include "exec/dataset_registry.h"
#include "exec/task_graph.h"
#include "join/engine.h"
#include "join/result.h"
#include "obs/metrics.h"
#include "obs/resource.h"

namespace swiftspatial::exec {

namespace internal {
class StreamState;
}  // namespace internal

/// One batch of result pairs. Sequence numbers are consecutive from 0 in
/// delivery order; a consumer that saw sequences 0..k holds a well-defined
/// prefix of the stream even if the join is cancelled afterwards.
struct ResultChunk {
  uint64_t sequence = 0;
  std::vector<ResultPair> pairs;
};

/// Streaming knobs, orthogonal to the join configuration (EngineConfig).
struct StreamOptions {
  /// Target pairs per chunk (chunks flush once they reach this size; the
  /// final chunk may be smaller).
  std::size_t chunk_pairs = 8192;
  /// Maximum buffered chunks before the producer blocks (backpressure).
  std::size_t queue_capacity = 8;
  /// Row bands for the native streaming planner; 0 = auto
  /// (min(grid rows, max(2, num_threads))). Ignored by the generic path.
  int num_shards = 0;
  /// Sink for the swiftspatial_stream_* series (per-engine plan/execute
  /// latency, chunk counts), observed once per stream after the producer
  /// closes it; nullptr selects obs::MetricsRegistry::Global().
  obs::MetricsRegistry* metrics = nullptr;
};

/// Everything Collect() reports: the final stream status, the collected
/// pairs folded into a JoinRun (the full join result iff status.ok(); the
/// delivered prefix under cancellation), and stream-level accounting.
struct StreamSummary {
  Status status;
  JoinRun run;
  std::size_t chunks = 0;
  /// High-water mark of buffered chunks -- bounded by queue_capacity, which
  /// tests assert to pin the backpressure contract.
  std::size_t max_queue_depth = 0;
};

class AsyncJoinHandle;
struct DeferredStream;
Result<AsyncJoinHandle> RunJoinAsync(const std::string& engine,
                                     const Dataset& r, const Dataset& s,
                                     const EngineConfig& config,
                                     const StreamOptions& stream);
Result<DeferredStream> MakeJoinStream(const std::string& engine,
                                      const Dataset& r, const Dataset& s,
                                      const EngineConfig& config,
                                      const StreamOptions& stream,
                                      ThreadPool* pool);
Result<DeferredStream> MakeRegisteredJoinStream(DatasetRegistry* registry,
                                                const std::string& engine,
                                                const std::string& r_name,
                                                const std::string& s_name,
                                                const EngineConfig& config,
                                                const StreamOptions& stream);
Result<AsyncJoinHandle> RunJoinAsync(DatasetRegistry& registry,
                                     const std::string& engine,
                                     const std::string& r_name,
                                     const std::string& s_name,
                                     const EngineConfig& config,
                                     const StreamOptions& stream);

/// Consumer handle for one asynchronous join. Movable, not copyable; the
/// destructor cancels and drains an unfinished stream, so dropping a handle
/// never leaks the producer. All methods are safe to call from one consumer
/// thread while the producer runs; Cancel() may be called from any thread.
class AsyncJoinHandle {
 public:
  AsyncJoinHandle(AsyncJoinHandle&&) noexcept = default;
  /// Tears down the current stream first (cancel, drain, join) -- a
  /// defaulted move-assign would std::terminate via std::thread when
  /// overwriting a handle whose producer still runs.
  AsyncJoinHandle& operator=(AsyncJoinHandle&& other) noexcept;
  AsyncJoinHandle(const AsyncJoinHandle&) = delete;
  AsyncJoinHandle& operator=(const AsyncJoinHandle&) = delete;
  ~AsyncJoinHandle();

  /// Pops the next chunk, blocking while the stream is open but empty.
  /// Returns false at end-of-stream (the join finished, failed, or was
  /// cancelled and every buffered chunk has been delivered) -- nodiscard:
  /// ignoring it means spinning past end-of-stream on stale chunk data.
  [[nodiscard]] bool Next(ResultChunk* out);

  /// Requests cooperative cancellation: unstarted tile tasks are skipped,
  /// blocked producers unblock, and the stream closes after the tasks
  /// already running retire. Idempotent.
  void Cancel();

  /// Discards any unconsumed chunks and blocks until the producer has fully
  /// retired, returning the final status: OK, Aborted after Cancel(), or
  /// the planning/execution error.
  Status Wait();

  /// Drains the remaining stream into a StreamSummary and waits for the
  /// producer. After Collect() the stream is exhausted.
  StreamSummary Collect();

  /// High-water mark of buffered chunks so far (see StreamSummary).
  std::size_t max_queue_depth() const;

 private:
  friend Result<AsyncJoinHandle> RunJoinAsync(const std::string&,
                                              const Dataset&, const Dataset&,
                                              const EngineConfig&,
                                              const StreamOptions&);
  friend Result<DeferredStream> MakeJoinStream(const std::string&,
                                               const Dataset&, const Dataset&,
                                               const EngineConfig&,
                                               const StreamOptions&,
                                               ThreadPool*);
  friend Result<DeferredStream> MakeRegisteredJoinStream(
      DatasetRegistry*, const std::string&, const std::string&,
      const std::string&, const EngineConfig&, const StreamOptions&);
  friend Result<AsyncJoinHandle> RunJoinAsync(DatasetRegistry&,
                                              const std::string&,
                                              const std::string&,
                                              const std::string&,
                                              const EngineConfig&,
                                              const StreamOptions&);

  AsyncJoinHandle(std::shared_ptr<internal::StreamState> state,
                  std::thread producer);

  /// Destructor body: cancel, drain, wait for close, join. Leaves the
  /// handle in the moved-from state.
  void Teardown();

  std::shared_ptr<internal::StreamState> state_;
  std::thread producer_;
};

/// Starts `engine` (a name in the global EngineRegistry) on (r, s)
/// asynchronously on a dedicated producer thread and returns the consumer
/// handle. Fails fast (NotFound / InvalidArgument) for unknown engines or
/// configurations rejectable without touching the data; data-dependent
/// planning errors surface through Wait()/Collect(). `r` and `s` must
/// outlive the stream.
Result<AsyncJoinHandle> RunJoinAsync(const std::string& engine,
                                     const Dataset& r, const Dataset& s,
                                     const EngineConfig& config = {},
                                     const StreamOptions& stream = {});

/// A stream whose producer has not been started: the serving layer
/// (exec::JoinService) admits requests by queueing the `producer` body and
/// running it on its own dispatcher threads against a shared worker pool.
struct DeferredStream {
  AsyncJoinHandle handle;
  /// Runs the join to completion (blocking) and closes the stream. Run
  /// exactly once, or not at all if `abandon` is called instead.
  std::function<void()> producer;
  /// Closes the stream with `status` without running the join (e.g. the
  /// request was cancelled or the service shut down while it queued).
  std::function<void(Status)> abandon;
  /// Cooperative mid-run cancellation that stamps the stream's terminal
  /// status: the join stops like Cancel(), but instead of the generic
  /// Aborted the stream closes with `status` -- DeadlineExceeded for
  /// deadline enforcement, or OK to degrade gracefully (the delivered
  /// prefix becomes the official, partial, result). First stamp wins;
  /// no-op once the stream already closed.
  std::function<void(Status)> cancel_with;
  /// Observes the handle's cancellation flag, letting a scheduler abandon
  /// queued work whose consumer already gave up.
  CancellationToken cancel;
  /// Per-request resource accounting, fed by the producer as it runs
  /// (task CPU/queue wait from the TaskGraph, chunks/pairs/bytes from the
  /// stream queue, wall time stamped at close) and read by the serving
  /// layer at completion. Aliases the stream's shared state, so it stays
  /// valid as long as any of the stream's closures or handles live.
  std::shared_ptr<obs::ResourceAccumulator> usage;
};

/// Like RunJoinAsync but defers producer execution to the caller and, when
/// `pool` is non-null, schedules the native path's tile tasks on that pool
/// instead of a private one (several streams may share one pool; each
/// stream's graph is tracked independently).
Result<DeferredStream> MakeJoinStream(const std::string& engine,
                                      const Dataset& r, const Dataset& s,
                                      const EngineConfig& config = {},
                                      const StreamOptions& stream = {},
                                      ThreadPool* pool = nullptr);

/// The warm-path variant of MakeJoinStream: `r_name`/`s_name` name datasets
/// resident in `registry` instead of shipping boxes. The producer fetches
/// the cached PreparedPlan (DatasetRegistry::GetOrPrepare) and streams
/// ExecutePrepared output -- on a cache hit the stream's plan_seconds is
/// just the cache lookup, effectively zero, which is the measurable
/// warm-serving win. Fails fast with NotFound for unknown engines or
/// unregistered dataset names. `registry` must outlive the stream.
Result<DeferredStream> MakeRegisteredJoinStream(
    DatasetRegistry* registry, const std::string& engine,
    const std::string& r_name, const std::string& s_name,
    const EngineConfig& config = {}, const StreamOptions& stream = {});

/// Warm-path RunJoinAsync: like the dataset-reference overload but over
/// registered datasets, skipping Plan on every cache hit.
Result<AsyncJoinHandle> RunJoinAsync(DatasetRegistry& registry,
                                     const std::string& engine,
                                     const std::string& r_name,
                                     const std::string& s_name,
                                     const EngineConfig& config = {},
                                     const StreamOptions& stream = {});

/// Factory behind the "async" engine registered in EngineRegistry::Global():
/// Execute() runs the native banded streaming path and Collect()s it, so the
/// equivalence oracle checks streaming output against every other engine.
std::unique_ptr<JoinEngine> MakeAsyncJoinEngine(const EngineConfig& config);

}  // namespace swiftspatial::exec

#endif  // SWIFTSPATIAL_EXEC_STREAMING_H_
