// TaskGraph: a dependency-counted task scheduler on top of ThreadPool, the
// foundation of the async execution subsystem (src/exec/). It is the CPU
// analogue of the SwiftSpatial hardware scheduler (§3.4): independent tile
// tasks stream onto the join units as soon as their inputs are ready, while
// downstream tasks (dedup, merge) wait only on the tasks they actually
// consume -- there is no global barrier between "plan" and "execute".
//
//   ThreadPool pool(8);
//   TaskGraph graph(&pool);
//   auto a = graph.Add([] { ... });              // ready immediately
//   auto b = graph.Add([] { ... });
//   graph.Add([] { merge(); }, {a, b});          // runs after a and b
//   graph.Wait();                                // drains the whole graph
//
// Tasks may Add() further tasks while running (dynamic growth): the parent
// is still outstanding while it adds, so Wait() covers every transitively
// spawned task. Cooperative cancellation: after CancellationSource::Cancel,
// tasks that have not started are *skipped* (completed without running,
// still releasing their dependents so Wait terminates); running tasks keep
// the token to bail out early at their own safe points.
#ifndef SWIFTSPATIAL_EXEC_TASK_GRAPH_H_
#define SWIFTSPATIAL_EXEC_TASK_GRAPH_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "common/thread_pool.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace swiftspatial::exec {

/// Read side of a cancellation flag. Default-constructed tokens are never
/// cancelled. Copies share the flag; checking is a relaxed atomic load.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Write side: owns the flag, hands out tokens. Cancel() is idempotent,
/// thread-safe, and purely cooperative -- it never interrupts a running
/// task, it only makes every token observe cancelled() == true.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }
  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

using TaskId = std::size_t;

/// Per-task wall-clock accounting, valid after Wait().
struct TaskTiming {
  /// Seconds between becoming ready (submitted to the pool) and starting.
  double queued_seconds = 0;
  /// Seconds spent running the task body (0 for skipped tasks).
  double run_seconds = 0;
  /// True when cancellation skipped the task before it started.
  bool skipped = false;
};

/// A dependency-counted task DAG executing on a (caller-owned, shareable)
/// ThreadPool. One graph instance is one wave of work: Add tasks (from any
/// thread, including from inside running tasks), then Wait() for the graph
/// to drain. The pool may concurrently serve other graphs; Wait() tracks
/// only this graph's tasks, unlike ThreadPool::Wait().
///
/// Add/Wait are thread-safe. Task bodies run exactly once (or are skipped
/// under cancellation). Dependencies must name tasks already added to this
/// graph (checked).
class TaskGraph {
 public:
  /// `trace`: when active, every executed task body is wrapped in a "task"
  /// span (child of the context's parent span, tracked per pool worker).
  /// Inactive by default -- untraced graphs pay one pointer test per task.
  /// `usage`: when non-null, each executed task adds its thread-CPU time
  /// (CLOCK_THREAD_CPUTIME_ID around the body) and pool queue wait to the
  /// accumulator -- the per-request cost accounting the serving layer
  /// reports. Must outlive the graph.
  explicit TaskGraph(ThreadPool* pool, CancellationToken cancel = {},
                     obs::TraceContext trace = {},
                     obs::ResourceAccumulator* usage = nullptr);

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Destruction drains the graph (Wait) so task closures never dangle.
  ~TaskGraph();

  /// Adds a task that runs once every task in `deps` has completed (or been
  /// skipped). Tasks with no deps are submitted to the pool immediately.
  TaskId Add(std::function<void()> fn, const std::vector<TaskId>& deps = {})
      EXCLUDES(mu_);

  /// Blocks until every task added so far -- including tasks added by
  /// running tasks while this call blocks -- has completed or been skipped.
  /// Must not be called from a task running on the underlying pool.
  void Wait() EXCLUDES(mu_);

  bool cancelled() const { return cancel_.cancelled(); }

  // Introspection. Safe to call mid-run (timings are stamped under the
  // graph lock as each task finishes); values are final once Wait() returns.
  std::size_t tasks_added() const EXCLUDES(mu_);
  std::size_t tasks_run() const EXCLUDES(mu_);
  std::size_t tasks_skipped() const EXCLUDES(mu_);
  /// Sum of run_seconds over all tasks (total work, not wall-clock).
  double total_task_seconds() const EXCLUDES(mu_);
  TaskTiming timing(TaskId id) const EXCLUDES(mu_);

 private:
  struct Node;

  void SubmitNode(std::size_t index);
  void RunNode(std::size_t index) EXCLUDES(mu_);
  void FinishNode(std::size_t index, bool skipped,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end) EXCLUDES(mu_);

  ThreadPool* pool_;
  CancellationToken cancel_;
  const obs::TraceContext trace_;
  obs::ResourceAccumulator* const usage_;

  mutable Mutex mu_;
  CondVar cv_drained_;
  // unique_ptr keeps nodes stable while tasks_ grows from running tasks:
  // mu_ guards the vector (indexing during reallocation), while a node's
  // fn runs outside the lock by design -- RunNode is the only writer of an
  // unfinished node's fn/timing between submit and FinishNode.
  std::vector<std::unique_ptr<Node>> tasks_ GUARDED_BY(mu_);
  std::size_t unfinished_ GUARDED_BY(mu_) = 0;
  std::size_t run_ GUARDED_BY(mu_) = 0;
  std::size_t skipped_ GUARDED_BY(mu_) = 0;
};

}  // namespace swiftspatial::exec

#endif  // SWIFTSPATIAL_EXEC_TASK_GRAPH_H_
