// JoinService: the request-serving layer of the async execution subsystem.
//
// Where faas/service.{h,cc} *models* a queueing system analytically (§4.2's
// Amdahl-style kernel simulation), JoinService actually serves: concurrent
// tenants Submit() joins, admission control bounds the pending queue, a
// fixed dispatcher budget runs at most `max_concurrent` joins at once on a
// shared worker pool, and each admitted request streams its results back
// through the same AsyncJoinHandle contract as exec::RunJoinAsync --
// chunked, backpressured, cancellable mid-stream.
//
//   JoinServiceOptions options;
//   options.worker_threads = 8;
//   options.max_concurrent = 2;
//   options.policy = SchedulingPolicy::kFairShare;
//   JoinService service(options);
//   auto handle = service.Submit("tenant-a", "partitioned", r, s, config);
//   if (!handle.ok()) ...;              // rejected (queue full) or bad config
//   StreamSummary out = handle->Collect();
//
// Scheduling policies:
//  - kFcfs: strict arrival order. Simple, but one tenant's burst of long
//    analytical joins starves everyone behind it.
//  - kFairShare: least-served tenant first (by jobs running + completed,
//    FCFS within a tenant) -- the CPU analogue of instantiating several
//    smaller FPGA kernels so interactive tenants stop queueing behind
//    analytical ones (§4.2).
//
// Lifetime: the datasets passed to Submit must stay alive until that
// request's stream closes. Destroying the service abandons queued requests
// (their handles report Aborted) and waits for running ones; consumers
// should drain or drop their handles promptly or the service will wait on
// their backpressure.
#ifndef SWIFTSPATIAL_EXEC_SERVICE_H_
#define SWIFTSPATIAL_EXEC_SERVICE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "datagen/dataset.h"
#include "exec/streaming.h"
#include "join/engine.h"

namespace swiftspatial::exec {

enum class SchedulingPolicy {
  kFcfs,
  kFairShare,
};

const char* SchedulingPolicyToString(SchedulingPolicy p);

struct JoinServiceOptions {
  /// Workers in the shared tile-task pool (the compute budget all running
  /// requests divide).
  std::size_t worker_threads = 4;
  /// Requests running at once; the rest queue. This is the serving-side
  /// analogue of the FPGA's kernel count.
  std::size_t max_concurrent = 2;
  /// Admission bound: Submit() rejects once this many requests queue.
  std::size_t max_pending = 16;
  SchedulingPolicy policy = SchedulingPolicy::kFcfs;
  /// Streaming knobs applied to every admitted request.
  StreamOptions stream;
  /// Seed for the per-job duration estimate that deadline-aware admission
  /// uses before any request has completed (see RequestOptions::
  /// deadline_seconds). Once jobs finish, an EWMA of measured durations
  /// takes over. 0 = optimistic: admit everything until measurements exist.
  double initial_job_seconds_estimate = 0;
};

/// Per-request knobs for Submit.
struct RequestOptions {
  /// Optional latency budget: the caller's tolerance for *queue wait*, in
  /// seconds from submission. Admission estimates the wait ahead of this
  /// request -- the queued+running load beyond the free dispatcher slots,
  /// over max_concurrent, times the EWMA job duration (zero while a slot
  /// is free: the request would start immediately) -- and rejects with
  /// DeadlineExceeded when the estimate already exceeds the budget, so
  /// hopeless requests fail in microseconds instead of timing out after
  /// queueing (the client retries elsewhere while its deadline is still
  /// live). <= 0 means no deadline. Admission control only: an admitted
  /// request is never killed mid-run.
  double deadline_seconds = 0;
};

struct JoinServiceStats {
  std::size_t admitted = 0;
  /// Submissions bounced by admission control (queue full / shutdown).
  std::size_t rejected = 0;
  /// Of the rejected: bounced because the estimated queue wait already
  /// exceeded the request's deadline.
  std::size_t rejected_deadline = 0;
  std::size_t completed = 0;
  /// Requests closed with Aborted without ever running the join: queued at
  /// service shutdown, or cancelled by their consumer while queued.
  std::size_t abandoned = 0;
  /// High-water mark of the pending queue; never exceeds max_pending.
  std::size_t max_pending_seen = 0;
};

/// A multi-tenant spatial-join server over the streaming executor. All
/// methods are thread-safe.
class JoinService {
 public:
  explicit JoinService(const JoinServiceOptions& options);
  JoinService(const JoinService&) = delete;
  JoinService& operator=(const JoinService&) = delete;
  ~JoinService();

  /// Admits a join request for `tenant` (any label; used for fair-share
  /// accounting). On admission the returned handle streams the join's
  /// result chunks once a dispatcher picks the request up; Cancel() works
  /// both while queued and mid-stream. Fails with Aborted when the pending
  /// queue is full or the service is shutting down, or with the underlying
  /// configuration error.
  Result<AsyncJoinHandle> Submit(const std::string& tenant,
                                 const std::string& engine, const Dataset& r,
                                 const Dataset& s,
                                 const EngineConfig& config = {},
                                 const RequestOptions& request = {});

  /// Estimated queue wait a request submitted now would see, in seconds:
  /// zero while a dispatcher slot is free, otherwise the load beyond the
  /// remaining slots over max_concurrent, times the EWMA of measured job
  /// durations (seeded by initial_job_seconds_estimate). The quantity
  /// deadline-aware admission compares against RequestOptions::
  /// deadline_seconds.
  double EstimatedQueueWaitSeconds() const;

  /// Blocks until every admitted request has completed.
  void Drain();

  JoinServiceStats stats() const;

  /// Tenant label of each completed request, in completion order. The
  /// fairness tests assert on this.
  std::vector<std::string> completion_order() const;

 private:
  struct Job {
    uint64_t sequence = 0;
    std::string tenant;
    std::function<void()> producer;
    std::function<void(Status)> abandon;
    CancellationToken cancel;
  };

  void DispatcherLoop();
  /// Picks and removes the next job per the scheduling policy. Requires
  /// mu_ held and pending_ non-empty.
  Job TakeNextJobLocked();
  /// EstimatedQueueWaitSeconds with mu_ held.
  double EstimatedQueueWaitLocked() const;

  const JoinServiceOptions options_;
  ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_job_;   // dispatchers: work available / stop
  std::condition_variable cv_idle_;  // Drain: all quiet
  std::deque<Job> pending_;
  std::map<std::string, std::size_t> in_flight_per_tenant_;
  std::map<std::string, std::size_t> served_per_tenant_;
  std::vector<std::string> completion_order_;
  JoinServiceStats stats_;
  uint64_t next_sequence_ = 0;
  std::size_t running_ = 0;
  bool stopping_ = false;
  /// EWMA of measured job durations (seconds); seeds from
  /// initial_job_seconds_estimate until the first completion.
  double ewma_job_seconds_ = 0;
  bool have_measurement_ = false;

  std::vector<std::thread> dispatchers_;
};

}  // namespace swiftspatial::exec

#endif  // SWIFTSPATIAL_EXEC_SERVICE_H_
