// JoinService: the request-serving layer of the async execution subsystem.
//
// Where faas/service.{h,cc} *models* a queueing system analytically (§4.2's
// Amdahl-style kernel simulation), JoinService actually serves: concurrent
// tenants Submit() joins, admission control bounds the pending queue, a
// fixed dispatcher budget runs at most `max_concurrent` joins at once on a
// shared worker pool, and each admitted request streams its results back
// through the same AsyncJoinHandle contract as exec::RunJoinAsync --
// chunked, backpressured, cancellable mid-stream.
//
//   JoinServiceOptions options;
//   options.worker_threads = 8;
//   options.max_concurrent = 2;
//   options.policy = SchedulingPolicy::kFairShare;
//   JoinService service(options);
//   auto handle = service.Submit("tenant-a", "partitioned", r, s, config);
//   if (!handle.ok()) ...;              // rejected (queue full) or bad config
//   StreamSummary out = handle->Collect();
//
// Warm serving: the service owns a DatasetRegistry (or shares one passed in
// options), so steady-state tenants register their datasets once and then
// submit by name --
//
//   service.RegisterDataset("buildings", std::move(buildings));
//   service.RegisterDataset("roads", std::move(roads));
//   auto warm = service.SubmitNamed("tenant-a", "partitioned",
//                                   "buildings", "roads", config);
//
// -- and every request after the first skips Plan entirely: the producer
// fetches the cached PreparedPlan (packed R-trees, grid assignments,
// ShardPlans) and goes straight to execution. Cache effectiveness shows up
// in stats().plan_cache.
//
// Scheduling policies:
//  - kFcfs: strict arrival order. Simple, but one tenant's burst of long
//    analytical joins starves everyone behind it.
//  - kFairShare: least-served tenant first (by jobs running + completed,
//    FCFS within a tenant) -- the CPU analogue of instantiating several
//    smaller FPGA kernels so interactive tenants stop queueing behind
//    analytical ones (§4.2).
//
// Deadlines are enforced end-to-end, not just at admission: a request whose
// estimated queue wait already exceeds its budget is rejected immediately;
// one that expires while still queued is abandoned with DeadlineExceeded;
// and one that expires mid-run is cooperatively cancelled -- its stream
// closes DeadlineExceeded, or, with degrade_on_deadline, OK with the
// delivered prefix as the official partial result.
//
// Lifetime: the datasets passed to Submit must stay alive until that
// request's stream closes (SubmitNamed requests pin their registered
// datasets automatically through the cached plan). Destroying the service
// abandons queued requests (their handles report Aborted) and waits for
// running ones; consumers should drain or drop their handles promptly or
// the service will wait on their backpressure.
#ifndef SWIFTSPATIAL_EXEC_SERVICE_H_
#define SWIFTSPATIAL_EXEC_SERVICE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "datagen/dataset.h"
#include "exec/dataset_registry.h"
#include "exec/streaming.h"
#include "join/engine.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"

namespace swiftspatial::exec {

enum class SchedulingPolicy {
  kFcfs,
  kFairShare,
};

const char* SchedulingPolicyToString(SchedulingPolicy p);

struct JoinServiceOptions {
  /// Workers in the shared tile-task pool (the compute budget all running
  /// requests divide).
  std::size_t worker_threads = 4;
  /// Requests running at once; the rest queue. This is the serving-side
  /// analogue of the FPGA's kernel count.
  std::size_t max_concurrent = 2;
  /// Admission bound: Submit() rejects once this many requests queue.
  std::size_t max_pending = 16;
  SchedulingPolicy policy = SchedulingPolicy::kFcfs;
  /// Streaming knobs applied to every admitted request.
  StreamOptions stream;
  /// Seed for the per-job duration estimate that deadline-aware admission
  /// uses before any request has completed (see RequestOptions::
  /// deadline_seconds). Once jobs finish, an EWMA of measured durations
  /// takes over. 0 = optimistic: admit everything until measurements exist.
  double initial_job_seconds_estimate = 0;
  /// Half-life, in seconds, of the EWMA job-duration estimate while the
  /// service is idle: after one half-life with no completions the estimate
  /// halves, so a burst of slow analytical joins stops poisoning
  /// deadline-aware admission long after the burst ended. 0 disables decay
  /// (the estimate holds its last value forever).
  double ewma_idle_halflife_seconds = 30;
  /// Resident-dataset store backing SubmitNamed; pass one to share plans
  /// across services, leave null and the service creates its own.
  std::shared_ptr<DatasetRegistry> registry;
  /// Test seam: replaces the monotonic clock used for *duration
  /// measurement* (job EWMA, idle decay). Deadlines always run on the real
  /// steady clock -- a fake clock must not stall the watchdog.
  std::function<double()> clock_for_testing;
  /// Metrics sink for the swiftspatial_service_* series (and the registry
  /// this service creates, when it creates one); nullptr selects
  /// obs::MetricsRegistry::Global().
  obs::MetricsRegistry* metrics = nullptr;
  /// Span sink enabling request-scoped tracing: each Submit/SubmitNamed
  /// mints a TraceContext, wraps the request in request/queued spans, and
  /// propagates the context through the producer (EngineConfig::trace).
  /// nullptr (the default) disables tracing entirely.
  obs::SpanBuffer* span_buffer = nullptr;
};

/// Per-request knobs for Submit / SubmitNamed.
struct RequestOptions {
  /// Optional latency budget in seconds from submission, enforced at every
  /// stage of a request's life:
  ///  - admission: the estimated queue wait (queued+running load beyond the
  ///    free dispatcher slots, over max_concurrent, times the EWMA job
  ///    duration) already exceeds the budget -> rejected with
  ///    DeadlineExceeded in microseconds, so hopeless requests fail fast
  ///    while the client's own deadline is still live;
  ///  - queued: the budget expires before a dispatcher picks the request up
  ///    -> abandoned, the stream closes DeadlineExceeded;
  ///  - running: the budget expires mid-join -> cooperative cancellation
  ///    through the stream's token, the stream closes DeadlineExceeded (or
  ///    OK, see degrade_on_deadline).
  /// <= 0 means no deadline.
  double deadline_seconds = 0;
  /// Degraded-results mode for streaming consumers: when the deadline
  /// expires *mid-run*, close the stream OK instead of DeadlineExceeded --
  /// the chunks already delivered (a well-defined prefix) become the
  /// official, partial, result. Admission rejection and queued expiry still
  /// report DeadlineExceeded (no results exist to degrade to).
  bool degrade_on_deadline = false;
};

struct JoinServiceStats {
  std::size_t admitted = 0;
  /// Submissions bounced by admission control (queue full / shutdown).
  std::size_t rejected = 0;
  /// Of the rejected: bounced because the estimated queue wait already
  /// exceeded the request's deadline.
  std::size_t rejected_deadline = 0;
  std::size_t completed = 0;
  /// Requests closed with Aborted without ever running the join: queued at
  /// service shutdown, or cancelled by their consumer while queued.
  std::size_t abandoned = 0;
  /// Admitted requests whose deadline expired before a dispatcher picked
  /// them up; their streams closed DeadlineExceeded without running.
  std::size_t expired_queued = 0;
  /// Requests cancelled mid-run by deadline expiry.
  std::size_t expired_running = 0;
  /// Of expired_running: closed OK with a partial result instead of
  /// DeadlineExceeded (RequestOptions::degrade_on_deadline).
  std::size_t degraded = 0;
  /// High-water mark of the pending queue; never exceeds max_pending.
  std::size_t max_pending_seen = 0;
  /// Plan-artifact cache counters from the backing DatasetRegistry: the
  /// warm-serving effectiveness signal (hits = requests that skipped Plan).
  PlanCacheStats plan_cache;
  /// Aggregate resource accounting over completed requests (including
  /// expired-mid-run ones -- their partial work was still paid for):
  /// summed wall/CPU/queue-wait seconds, tasks, chunks, pairs, bytes, and
  /// shard retries. Per-request distributions are on the
  /// swiftspatial_service_request_* series.
  obs::ResourceUsage resources;
};

/// A multi-tenant spatial-join server over the streaming executor. All
/// methods are thread-safe.
class JoinService {
 public:
  explicit JoinService(const JoinServiceOptions& options);
  JoinService(const JoinService&) = delete;
  JoinService& operator=(const JoinService&) = delete;
  ~JoinService();

  /// Admits a join request for `tenant` (any label; used for fair-share
  /// accounting). On admission the returned handle streams the join's
  /// result chunks once a dispatcher picks the request up; Cancel() works
  /// both while queued and mid-stream. Fails with Aborted when the pending
  /// queue is full or the service is shutting down, or with the underlying
  /// configuration error.
  Result<AsyncJoinHandle> Submit(const std::string& tenant,
                                 const std::string& engine, const Dataset& r,
                                 const Dataset& s,
                                 const EngineConfig& config = {},
                                 const RequestOptions& request = {})
      EXCLUDES(mu_);

  /// The warm path: like Submit, but `r_name`/`s_name` reference datasets
  /// registered through RegisterDataset (or directly on registry()) instead
  /// of shipping boxes. Repeat requests hit the plan cache and skip Plan
  /// entirely. Fails fast with NotFound for unknown engines or unregistered
  /// names.
  Result<AsyncJoinHandle> SubmitNamed(const std::string& tenant,
                                      const std::string& engine,
                                      const std::string& r_name,
                                      const std::string& s_name,
                                      const EngineConfig& config = {},
                                      const RequestOptions& request = {})
      EXCLUDES(mu_);

  /// Registers `dataset` in the backing registry (see DatasetRegistry::Put:
  /// re-registering bumps the version and invalidates cached plans).
  DatasetHandle RegisterDataset(std::string name, Dataset dataset);

  /// The backing resident-dataset store.
  DatasetRegistry& registry() { return *registry_; }

  /// Estimated queue wait a request submitted now would see, in seconds:
  /// zero while a dispatcher slot is free, otherwise the load beyond the
  /// remaining slots over max_concurrent, times the EWMA of measured job
  /// durations (seeded by initial_job_seconds_estimate, decayed while the
  /// service idles). The quantity deadline-aware admission compares against
  /// RequestOptions::deadline_seconds.
  double EstimatedQueueWaitSeconds() const EXCLUDES(mu_);

  /// Blocks until every admitted request has completed.
  void Drain() EXCLUDES(mu_);

  /// One consistent snapshot of the service counters AND the plan-cache
  /// counters: both reads happen while mu_ is held, so the pair cannot
  /// tear against a concurrent request (lock order: service mu_ before the
  /// registry's internal lock; the registry never locks back into the
  /// service, so the order is acyclic).
  JoinServiceStats Snapshot() const EXCLUDES(mu_);

  /// Deprecated: use Snapshot(). Kept as an alias for older callers; the
  /// piecemeal read it used to do (service counters and plan-cache counters
  /// under separate locks) could tear between the two.
  JoinServiceStats stats() const EXCLUDES(mu_) { return Snapshot(); }

  /// Prometheus text exposition of the backing MetricsRegistry, with the
  /// service's point-in-time gauges (pending, running, max_pending_seen)
  /// synced from Snapshot() first. The one-pane-of-glass endpoint.
  std::string MetricsText() const EXCLUDES(mu_);
  /// Same snapshot as JSON (MetricsRegistry::JsonSnapshot()).
  std::string MetricsJson() const EXCLUDES(mu_);

  /// Tenant label of each completed request, in completion order. The
  /// fairness tests assert on this.
  std::vector<std::string> completion_order() const EXCLUDES(mu_);

 private:
  struct Job {
    uint64_t sequence = 0;
    std::string tenant;
    std::function<void()> producer;
    std::function<void(Status)> abandon;
    std::function<void(Status)> cancel_with;
    CancellationToken cancel;
    bool has_deadline = false;
    bool degrade = false;
    /// Absolute expiry on the real steady clock (see clock_for_testing).
    std::chrono::steady_clock::time_point deadline_tp;
    /// NowSeconds() at admission; queue-wait latency = pickup - submit.
    double submit_seconds = 0;
    /// Per-tenant latency histograms, resolved once at admission.
    obs::Histogram* queue_wait_hist = nullptr;
    obs::Histogram* run_hist = nullptr;
    /// The stream's resource accounting (see DeferredStream::usage); read
    /// at completion for the aggregate stats and request-cost series.
    std::shared_ptr<obs::ResourceAccumulator> usage;
  };

  /// What the deadline watchdog needs to kill a running job: the expiry and
  /// the stream's status-stamping cancel hook.
  struct RunningDeadline {
    std::chrono::steady_clock::time_point deadline_tp;
    std::function<void(Status)> cancel_with;
    bool degrade = false;
  };

  /// Shared admission tail of Submit/SubmitNamed: runs admission control on
  /// the already-built stream and queues the job (or abandons it).
  /// `request_span` is the request's root span (null when tracing is off);
  /// it is kept open until the stream producer finishes or the request is
  /// abandoned, whichever ends the request.
  Result<AsyncJoinHandle> Admit(DeferredStream deferred,
                                const std::string& tenant,
                                const RequestOptions& request,
                                std::shared_ptr<obs::ScopedSpan> request_span)
      EXCLUDES(mu_);

  /// Mints the per-request root span (tagged tenant/engine), or null when
  /// options_.span_buffer is unset.
  std::shared_ptr<obs::ScopedSpan> StartRequestSpan(
      const std::string& tenant, const std::string& engine) const;

  /// Resolves (and caches) the per-tenant latency histograms.
  void TenantHistsLocked(const std::string& tenant, Job* job) REQUIRES(mu_);

  /// Pushes the point-in-time service gauges (pending/running/
  /// max_pending_seen) into the registry ahead of an exposition.
  void SyncServiceGauges() const EXCLUDES(mu_);

  void DispatcherLoop() EXCLUDES(mu_);
  /// Enforces deadlines after admission: sleeps until the earliest pending
  /// or running deadline, then abandons expired queued jobs and cancels
  /// expired running ones.
  void DeadlineLoop() EXCLUDES(mu_);
  /// Picks and removes the next job per the scheduling policy. Requires
  /// mu_ held and pending_ non-empty.
  Job TakeNextJobLocked() REQUIRES(mu_);
  /// EstimatedQueueWaitSeconds with mu_ held.
  double EstimatedQueueWaitLocked() const REQUIRES(mu_);
  /// The EWMA job-duration estimate with idle decay applied. Requires mu_.
  double EffectiveJobSecondsLocked() const REQUIRES(mu_);
  /// Monotonic seconds for duration measurement; clock_for_testing seam.
  double NowSeconds() const;

  const JoinServiceOptions options_;
  obs::MetricsRegistry* const metrics_;
  std::shared_ptr<DatasetRegistry> registry_;
  ThreadPool pool_;

  // Pre-resolved outcome counters (lock-free to bump; see obs/metrics.h).
  obs::Counter* const m_admitted_;
  obs::Counter* const m_rejected_;
  obs::Counter* const m_rejected_deadline_;
  obs::Counter* const m_completed_;
  obs::Counter* const m_abandoned_;
  obs::Counter* const m_expired_queued_;
  obs::Counter* const m_expired_running_;
  obs::Counter* const m_degraded_;
  // Request-cost series, fed from each finished request's ResourceUsage.
  obs::Histogram* const m_request_cpu_;
  obs::Counter* const m_result_pairs_;
  obs::Counter* const m_result_bytes_;
  obs::Counter* const m_tasks_;
  obs::Counter* const m_shard_retries_;

  mutable Mutex mu_;
  CondVar cv_job_;       // dispatchers: work available / stop
  CondVar cv_idle_;      // Drain: all quiet
  CondVar cv_deadline_;  // watchdog: deadlines changed / stop
  std::deque<Job> pending_ GUARDED_BY(mu_);
  /// Deadline + cancel hook of every running job that has a deadline, keyed
  /// by job sequence. The watchdog erases an entry when it fires; the
  /// dispatcher erases it on normal completion -- an absent entry at
  /// completion is how the dispatcher learns the job was expired.
  std::map<uint64_t, RunningDeadline> running_deadlines_ GUARDED_BY(mu_);
  std::map<std::string, std::size_t> in_flight_per_tenant_ GUARDED_BY(mu_);
  std::map<std::string, std::size_t> served_per_tenant_ GUARDED_BY(mu_);
  /// Cached per-tenant histogram handles (registration hashes; hot paths
  /// must not). Values are registry-owned and stable.
  std::map<std::string, std::pair<obs::Histogram*, obs::Histogram*>>
      tenant_hists_ GUARDED_BY(mu_);
  std::vector<std::string> completion_order_ GUARDED_BY(mu_);
  JoinServiceStats stats_ GUARDED_BY(mu_);
  uint64_t next_sequence_ GUARDED_BY(mu_) = 0;
  std::size_t running_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
  /// EWMA of measured job durations (seconds); seeds from
  /// initial_job_seconds_estimate until the first completion, decays toward
  /// zero while the service idles (ewma_idle_halflife_seconds).
  double ewma_job_seconds_ GUARDED_BY(mu_) = 0;
  bool have_measurement_ GUARDED_BY(mu_) = false;
  /// NowSeconds() at the last completion: the idle-decay anchor.
  double last_completion_seconds_ GUARDED_BY(mu_) = 0;

  std::vector<std::thread> dispatchers_;
  std::thread deadline_watchdog_;
};

}  // namespace swiftspatial::exec

#endif  // SWIFTSPATIAL_EXEC_SERVICE_H_
