#include "exec/streaming.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/sync.h"
#include "common/stopwatch.h"
#include "obs/log.h"
#include "dist/dist_engine.h"
#include "exec/task_graph.h"
#include "grid/uniform_grid.h"
#include "join/accel_engine.h"
#include "join/partitioned_driver.h"
#include "join/pbsm.h"

namespace swiftspatial::exec {

namespace internal {

// Bounded chunk queue plus the stream's terminal state. Producer side calls
// Push (blocking once `capacity` chunks are buffered) and finally Close;
// consumer side calls Pop until it returns false. Cancel unblocks both
// sides and makes every token observer stop cooperatively.
class StreamState {
 public:
  explicit StreamState(std::size_t capacity)
      : capacity_(std::max<std::size_t>(1, capacity)) {}

  CancellationToken token() const { return cancel_.token(); }
  bool cancelled() const { return cancel_.cancelled(); }

  enum class PushResult { kPushed, kFull, kCancelled };

  /// Enqueues one chunk, blocking while the queue is full. Returns false
  /// (dropping the chunk) once the stream is cancelled. Empty pair sets are
  /// not enqueued.
  bool Push(std::vector<ResultPair> pairs) EXCLUDES(mu_) {
    if (pairs.empty()) return !cancel_.cancelled();
    MutexLock lock(&mu_);
    while (queue_.size() >= capacity_ && !cancel_.cancelled()) {
      cv_space_.Wait(&mu_);
    }
    if (cancel_.cancelled()) return false;
    PushLocked(std::move(pairs));
    return true;
  }

  /// Non-blocking variant: kFull leaves the caller holding the pairs. Used
  /// by tile tasks on a *shared* pool, where blocking a worker on one
  /// stream's backpressure could starve (and with sequential consumers,
  /// deadlock) every other stream on the pool.
  PushResult TryPush(std::vector<ResultPair>* pairs) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (cancel_.cancelled()) return PushResult::kCancelled;
    if (pairs->empty()) return PushResult::kPushed;
    if (queue_.size() >= capacity_) return PushResult::kFull;
    PushLocked(std::move(*pairs));
    pairs->clear();
    return PushResult::kPushed;
  }

  /// Dequeues the next chunk; false at end-of-stream. Buffered chunks are
  /// still delivered after Close/Cancel -- the delivered prefix stays
  /// well-defined.
  bool Pop(ResultChunk* out) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (queue_.empty() && !closed_) cv_data_.Wait(&mu_);
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    cv_space_.NotifyOne();
    return true;
  }

  void Cancel() EXCLUDES(mu_) {
    cancel_.Cancel();
    MutexLock lock(&mu_);
    cv_space_.NotifyAll();
  }

  /// Cancel() that also stamps the terminal status: when the producer
  /// subsequently closes with the generic cancellation Aborted, the stamp
  /// replaces it -- DeadlineExceeded for deadline kills, OK for graceful
  /// degradation (the delivered prefix becomes the official result). First
  /// stamp wins; a stream that already closed is left untouched.
  void CancelWith(Status status) EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (!closed_ && !status_override_.has_value()) {
        status_override_ = std::move(status);
      }
    }
    Cancel();
  }

  /// Marks the stream finished. Called exactly once, by the producer (or by
  /// DeferredStream::abandon when the producer never ran).
  void Close(Status status, const JoinStats& stats,
             const StageTiming& timing) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    SWIFT_CHECK(!closed_);
    CloseLocked(std::move(status), stats, timing);
  }

  /// Safety-net variant for abandon paths that may race a normal Close.
  void CloseIfOpen(Status status) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (closed_) return;
    CloseLocked(std::move(status), JoinStats{}, StageTiming{});
  }

  void WaitClosed() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (!closed_) cv_closed_.Wait(&mu_);
  }

  Status status() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return status_;
  }
  JoinStats stats() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  StageTiming timing() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return timing_;
  }
  std::size_t max_depth() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return max_depth_;
  }
  /// Chunks pushed over the stream's lifetime (the sequence counter).
  uint64_t chunks_pushed() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return next_sequence_;
  }

  /// The stream's resource accounting; producers and the serving layer
  /// feed it, DeferredStream::usage exposes it (aliased to this state).
  obs::ResourceAccumulator* usage() { return &usage_; }

 private:
  void PushLocked(std::vector<ResultPair> pairs) REQUIRES(mu_) {
    ResultChunk chunk;
    chunk.sequence = next_sequence_++;
    chunk.pairs = std::move(pairs);
    usage_.AddChunk(chunk.pairs.size(),
                    chunk.pairs.size() * sizeof(ResultPair));
    queue_.push_back(std::move(chunk));
    max_depth_ = std::max(max_depth_, queue_.size());
    cv_data_.NotifyOne();
  }

  void CloseLocked(Status status, const JoinStats& stats,
                   const StageTiming& timing) REQUIRES(mu_) {
    closed_ = true;
    // A CancelWith stamp overrides the generic cancellation status (every
    // producer flavour closes a cancelled stream with kAborted). Genuine
    // errors and normal completion pass through untouched.
    if (status_override_.has_value() &&
        status.code() == StatusCode::kAborted) {
      status = std::move(*status_override_);
    }
    status_ = std::move(status);
    stats_ = stats;
    timing_ = timing;
    cv_data_.NotifyAll();
    cv_closed_.NotifyAll();
  }

  const std::size_t capacity_;
  CancellationSource cancel_;
  obs::ResourceAccumulator usage_;

  mutable Mutex mu_;
  CondVar cv_data_;    // consumer waits: data or closed
  CondVar cv_space_;   // producer waits: space or cancelled
  CondVar cv_closed_;  // Wait/Collect wait: closed
  std::deque<ResultChunk> queue_ GUARDED_BY(mu_);
  uint64_t next_sequence_ GUARDED_BY(mu_) = 0;
  std::size_t max_depth_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
  Status status_ GUARDED_BY(mu_);
  /// Terminal-status stamp from CancelWith; applied by CloseLocked when the
  /// producer closes with the generic cancellation kAborted.
  std::optional<Status> status_override_ GUARDED_BY(mu_);
  JoinStats stats_ GUARDED_BY(mu_);
  StageTiming timing_ GUARDED_BY(mu_);
};

}  // namespace internal

namespace {

using internal::StreamState;

// Per-worker chunk staging: each pool worker owns one slot and appends cell
// outputs there lock-free (one worker thread = one running task at a time,
// and slots belong to a single stream even when several streams share a
// pool). Full chunks are carved off the back -- O(chunk) with no front
// shifting; chunk order across workers is irrelevant, the result is a
// multiset -- and pushed to the bounded queue, where a full queue blocks
// only the pushing worker.
struct WorkerSlot {
  JoinResult buffer;
  JoinStats stats;
};

// Carves full chunks out of `slot` and ships them. Returns false once the
// stream is cancelled. With flush_tail, also ships the final partial chunk.
//
// may_block selects the backpressure mode. Streams on their own private
// pool (RunJoinAsync) block the pushing worker when the queue is full --
// the hard memory bound. Streams on a *shared* pool (JoinService) must
// never park a pool worker on one consumer's backpressure (with sequential
// consumers that deadlocks every stream on the pool), so a full queue
// leaves the pairs staged in the slot; the producer's final drain, which
// runs on a dispatcher thread and may safely block, ships the remainder.
bool FlushSlot(WorkerSlot* slot, StreamState* state, std::size_t chunk_pairs,
               bool flush_tail, bool may_block) {
  std::vector<ResultPair>& pairs = slot->buffer.mutable_pairs();
  for (;;) {
    if (pairs.size() < chunk_pairs && !(flush_tail && !pairs.empty())) {
      return true;
    }
    // Carve from the back: O(chunk), no front shifting; chunk order across
    // workers is irrelevant, the result is a multiset.
    std::vector<ResultPair> chunk;
    if (pairs.size() <= chunk_pairs) {
      chunk = std::move(pairs);
      pairs.clear();
    } else {
      chunk.assign(pairs.end() - chunk_pairs, pairs.end());
      pairs.resize(pairs.size() - chunk_pairs);
    }
    if (may_block) {
      if (!state->Push(std::move(chunk))) return false;
    } else {
      const auto result = state->TryPush(&chunk);
      if (result == StreamState::PushResult::kCancelled) return false;
      if (result == StreamState::PushResult::kFull) {
        // Restage and stop: a later flush or the final drain ships it.
        pairs.insert(pairs.end(), chunk.begin(), chunk.end());
        return true;
      }
    }
  }
}

// Id lists + dedup tile of one populated grid cell, shared with the task
// closure (std::function requires copyable captures).
struct CellWork {
  Box dedup_tile;
  std::vector<ObjectId> r_ids;
  std::vector<ObjectId> s_ids;
};

// An object with its precomputed grid tile range: TileRange runs once, in
// the bucketing prologue, and the per-band assignment reuses the stored
// range instead of re-deriving it.
struct PlacedObject {
  ObjectId id;
  int tx0, ty0, tx1, ty1;
};

// The native streaming producer: banded plan/execute overlap on a TaskGraph.
//
// Serial prologue (the only part ordered before everything): compute the
// extent, size the grid, and bucket both inputs into contiguous row bands by
// a row-range scan. Then each band becomes a *plan task* that builds the
// band's per-cell id lists and dynamically adds one join task per populated
// cell -- so while band k's cells are joining (and their chunks are already
// streaming out), band k+1 is still being partitioned. Dedup is the same
// reference-point rule against the same global grid tiles as the
// synchronous driver, which is why the output multiset is identical.
void RunNativeProducer(const Dataset& r, const Dataset& s, EngineConfig config,
                       TileJoin tile_join, StreamOptions opts,
                       ThreadPool* shared_pool,
                       std::shared_ptr<StreamState> state) {
  StageTiming timing;
  Stopwatch plan_sw;
  obs::ScopedSpan plan_span(config.trace, "plan");

  if (config.validate_inputs) {
    for (const Dataset* d : {&r, &s}) {
      Status st = d->ValidateBoxes();
      if (!st.ok()) {
        state->Close(std::move(st), JoinStats{}, timing);
        return;
      }
    }
  }
  // One shared grid decision (DeriveJoinGrid) keeps the banded streaming
  // shards identical to PartitionedDriver's and the dist ShardPlanner's.
  const JoinGridSpec spec =
      DeriveJoinGrid(r, s, config.grid_cols, config.grid_rows);
  if (!spec.has_grid) {
    state->Close(Status::OK(), JoinStats{}, timing);
    return;
  }
  const int cols = spec.cols;
  const int rows = spec.rows;
  const UniformGrid grid(spec.extent, cols, rows);

  const int shards =
      opts.num_shards > 0
          ? std::min(opts.num_shards, rows)
          : std::min<int>(rows,
                          std::max<int>(2, static_cast<int>(
                                               config.num_threads)));
  std::vector<int> band_begin(shards + 1);
  for (int b = 0; b <= shards; ++b) {
    band_begin[b] = static_cast<int>(
        static_cast<long long>(b) * rows / shards);
  }
  std::vector<int> row_band(rows);
  for (int b = 0; b < shards; ++b) {
    for (int y = band_begin[b]; y < band_begin[b + 1]; ++y) row_band[y] = b;
  }

  // Bucketing: the one serial O(n) pass. Each object's tile range is
  // computed exactly once (the same TileRange work the synchronous Plan
  // pays) and stored with the id, so the per-band plan tasks only
  // distribute ids into cells.
  std::vector<std::vector<PlacedObject>> band_r(shards), band_s(shards);
  const auto bucket = [&](const Dataset& d,
                          std::vector<std::vector<PlacedObject>>& bands) {
    for (auto& band : bands) band.reserve(d.size() / shards + 1);
    for (std::size_t i = 0; i < d.size(); ++i) {
      PlacedObject p;
      p.id = static_cast<ObjectId>(i);
      grid.TileRange(d.box(i), &p.tx0, &p.ty0, &p.tx1, &p.ty1);
      for (int b = row_band[p.ty0]; b <= row_band[p.ty1]; ++b) {
        bands[b].push_back(p);
      }
    }
  };
  bucket(r, band_r);
  bucket(s, band_s);
  timing.plan_seconds = plan_sw.ElapsedSeconds();
  plan_span.End();

  obs::ScopedSpan exec_span(config.trace, "execute");
  Stopwatch exec_sw;
  std::optional<ThreadPool> owned_pool;
  ThreadPool* pool = shared_pool;
  // Workers on an exclusive pool may block on backpressure (hard memory
  // bound); workers on a shared pool must not (see FlushSlot).
  const bool exclusive_pool = shared_pool == nullptr;
  if (pool == nullptr) {
    owned_pool.emplace(std::max<std::size_t>(1, config.num_threads));
    pool = &*owned_pool;
  }

  const std::size_t chunk_pairs = std::max<std::size_t>(1, opts.chunk_pairs);
  std::vector<WorkerSlot> slots(pool->num_threads());
  TaskGraph graph(pool, state->token(), exec_span.context(), state->usage());

  for (int b = 0; b < shards; ++b) {
    graph.Add([&, b] {
      const int row0 = band_begin[b];
      const int row1 = band_begin[b + 1];
      if (row0 >= row1) return;
      const int band_tiles = (row1 - row0) * cols;
      std::vector<std::vector<ObjectId>> r_cells(band_tiles);
      std::vector<std::vector<ObjectId>> s_cells(band_tiles);
      const auto assign = [&](const std::vector<PlacedObject>& placed,
                              std::vector<std::vector<ObjectId>>& cells) {
        for (const PlacedObject& p : placed) {
          for (int ty = std::max(p.ty0, row0);
               ty <= std::min(p.ty1, row1 - 1); ++ty) {
            for (int tx = p.tx0; tx <= p.tx1; ++tx) {
              cells[(ty - row0) * cols + tx].push_back(p.id);
            }
          }
        }
      };
      assign(band_r[b], r_cells);
      assign(band_s[b], s_cells);

      auto cells = std::make_shared<std::vector<CellWork>>();
      for (int t = 0; t < band_tiles; ++t) {
        if (r_cells[t].empty() || s_cells[t].empty()) continue;
        CellWork work;
        const int global_tile = (row0 + t / cols) * cols + t % cols;
        work.dedup_tile = grid.DedupTileByIndex(global_tile);
        work.r_ids = std::move(r_cells[t]);
        work.s_ids = std::move(s_cells[t]);
        cells->push_back(std::move(work));
      }
      if (cells->empty()) return;
      // Largest cells first, then strided groups: group g joins cells
      // g, g+G, g+2G, ... -- balanced batches that amortise per-task
      // dispatch over many (often tiny) cells. The per-wave group budget
      // (kCellTaskGroupsPerWorker * workers, shared with the sync driver)
      // is split across the bands so both paths dispatch at the same
      // granularity.
      std::sort(cells->begin(), cells->end(),
                [](const CellWork& a, const CellWork& b) {
                  return a.r_ids.size() * a.s_ids.size() >
                         b.r_ids.size() * b.s_ids.size();
                });
      const std::size_t groups = std::min(
          cells->size(),
          std::max<std::size_t>(
              1, kCellTaskGroupsPerWorker * pool->num_threads() /
                     static_cast<std::size_t>(shards)));
      for (std::size_t g = 0; g < groups; ++g) {
        graph.Add([&, cells, g, groups] {
          WorkerSlot& slot = slots[pool->CurrentWorkerIndex()];
          for (std::size_t i = g; i < cells->size(); i += groups) {
            const CellWork& work = (*cells)[i];
            RunTileJoin(tile_join, r, s, work.r_ids, work.s_ids,
                        &work.dedup_tile, &slot.buffer, &slot.stats);
            // Stream full chunks as soon as they exist; stop early if the
            // consumer cancelled.
            if (!FlushSlot(&slot, state.get(), chunk_pairs,
                           /*flush_tail=*/false, exclusive_pool)) {
              return;
            }
          }
          // Group boundary: ship the partial chunk too, so consumers see
          // results at cell-group granularity instead of only at the end.
          FlushSlot(&slot, state.get(), chunk_pairs, /*flush_tail=*/true,
                    exclusive_pool);
        });
      }
    });
  }
  graph.Wait();

  JoinStats stats;
  for (WorkerSlot& slot : slots) stats += slot.stats;
  if (state->cancelled()) {
    timing.execute_seconds = exec_sw.ElapsedSeconds();
    state->Close(Status::Aborted("join cancelled mid-stream"), stats, timing);
    return;
  }
  // Final drain runs on the producer thread (or a service dispatcher) --
  // never on a pool worker -- so it may block on backpressure in both
  // modes, shipping whatever the shared-pool mode left staged.
  for (WorkerSlot& slot : slots) {
    if (!FlushSlot(&slot, state.get(), chunk_pairs, /*flush_tail=*/true,
                   /*may_block=*/true)) {
      timing.execute_seconds = exec_sw.ElapsedSeconds();
      state->Close(Status::Aborted("join cancelled mid-stream"), stats,
                   timing);
      return;
    }
  }
  timing.execute_seconds = exec_sw.ElapsedSeconds();
  state->Close(Status::OK(), stats, timing);
}

// Coalesces arbitrary-size producer batches into bounded chunks for the
// stream queue: batches accumulate in a staging buffer and full chunks are
// carved from the back (order across chunks is irrelevant -- the result is
// a multiset; carving the front would shift the residue on every carve).
// Shared by the accelerator and cluster producers, whose native batch
// granularities (write-unit bursts, committed shards) are unbounded in
// both directions.
class ChunkStager {
 public:
  ChunkStager(std::size_t chunk_pairs, StreamState* state)
      : chunk_pairs_(std::max<std::size_t>(1, chunk_pairs)), state_(state) {}

  /// Adds one producer batch, shipping any full chunks. Batches are
  /// dropped once a push has failed (the consumer cancelled).
  void Add(std::vector<ResultPair> batch) {
    if (push_failed_) return;
    if (staged_.empty()) {
      staged_ = std::move(batch);
    } else {
      staged_.insert(staged_.end(), batch.begin(), batch.end());
    }
    while (!push_failed_ && staged_.size() >= chunk_pairs_) {
      std::vector<ResultPair> chunk(staged_.end() - chunk_pairs_,
                                    staged_.end());
      staged_.resize(staged_.size() - chunk_pairs_);
      if (!state_->Push(std::move(chunk))) push_failed_ = true;
    }
  }

  /// Ships the final partial chunk of a successful run. Returns false when
  /// any push failed (the stream should close Aborted).
  bool FlushTail() {
    if (!push_failed_ && !staged_.empty()) {
      if (!state_->Push(std::move(staged_))) push_failed_ = true;
    }
    return !push_failed_;
  }

  bool push_failed() const { return push_failed_; }

 private:
  const std::size_t chunk_pairs_;
  StreamState* state_;
  std::vector<ResultPair> staged_;
  bool push_failed_ = false;
};

// The accelerator producer: the simulated device streams natively. Plan
// builds the device images (trees / partitions) on the producer thread;
// Execute then runs the simulated kernel with a write-unit sink, so every
// result-burst flush (a BFS level's leaf pairs, a PBSM tile batch, a
// multi-device shard's deduplicated output) surfaces as bounded-queue
// chunks while the simulation is still running -- the host-side consumer
// overlaps with the device exactly as the paper's host/device split
// intends. Device flushes are coalesced up to chunk_pairs (join units flush
// partial bursts per task, so raw flushes can be tiny) and oversized
// batches are split, so chunk sizes stay bounded in both directions.
// Cancellation is cooperative at chunk granularity: the simulated kernel
// itself runs to completion, further pushes are dropped, and the stream
// closes Aborted.
void RunAccelProducer(const std::string& name, const Dataset& r,
                      const Dataset& s, const EngineConfig& config,
                      StreamOptions opts,
                      std::shared_ptr<StreamState> state) {
  StageTiming timing;
  Stopwatch sw;
  auto created = MakeAccelEngine(name, config);
  if (!created.ok()) {
    state->Close(created.status(), JoinStats{}, timing);
    return;
  }
  std::unique_ptr<AccelJoinEngine> engine = std::move(*created);
  obs::ScopedSpan plan_span(config.trace, "plan");
  Status st = engine->Plan(r, s);
  timing.plan_seconds = sw.ElapsedSeconds();
  plan_span.End();
  if (!st.ok()) {
    state->Close(std::move(st), JoinStats{}, timing);
    return;
  }
  if (state->cancelled()) {
    state->Close(Status::Aborted("join cancelled mid-stream"), JoinStats{},
                 timing);
    return;
  }
  obs::ScopedSpan exec_span(config.trace, "execute");
  sw.Reset();
  JoinStats stats;
  ChunkStager stager(opts.chunk_pairs, state.get());
  const AccelBatchSink sink = [&stager](std::vector<ResultPair> batch) {
    stager.Add(std::move(batch));
  };
  st = engine->ExecuteStreaming(sink, &stats);
  if (st.ok()) stager.FlushTail();
  timing.execute_seconds = sw.ElapsedSeconds();
  if (stager.push_failed() || state->cancelled()) {
    state->Close(Status::Aborted("join cancelled mid-stream"), stats, timing);
    return;
  }
  state->Close(std::move(st), stats, timing);
}

// The cluster producer: the distributed engines stream natively. Plan runs
// the ShardPlanner on the producer thread; ExecuteStreaming then spins the
// in-process cluster with a shard sink, so every shard the merge
// coordinator commits surfaces as bounded-queue chunks while other nodes
// are still joining. Committed shards are coalesced up to chunk_pairs and
// oversized shards split, bounding chunk sizes both ways. Cancellation is
// cooperative through the cluster itself (the stream's token reaches the
// exchange and node runtimes), so a cancelled consumer stops the whole
// cluster, not just the chunk delivery.
void RunDistProducer(const std::string& name, const Dataset& r,
                     const Dataset& s, const EngineConfig& config,
                     StreamOptions opts,
                     std::shared_ptr<StreamState> state) {
  StageTiming timing;
  Stopwatch sw;
  auto created = dist::MakeDistEngine(name, config);
  if (!created.ok()) {
    state->Close(created.status(), JoinStats{}, timing);
    return;
  }
  std::unique_ptr<dist::DistJoinEngine> engine = std::move(*created);
  obs::ScopedSpan plan_span(config.trace, "plan");
  Status st = engine->Plan(r, s);
  timing.plan_seconds = sw.ElapsedSeconds();
  plan_span.End();
  if (!st.ok()) {
    state->Close(std::move(st), JoinStats{}, timing);
    return;
  }
  if (state->cancelled()) {
    state->Close(Status::Aborted("join cancelled mid-stream"), JoinStats{},
                 timing);
    return;
  }
  // The execute span is a sibling of the coordinator's merge span (both
  // parented on the request): the engine froze its trace context at
  // creation, before this span existed.
  obs::ScopedSpan exec_span(config.trace, "execute");
  sw.Reset();
  JoinStats stats;
  ChunkStager stager(opts.chunk_pairs, state.get());
  const dist::ShardSink sink = [&stager](int, std::vector<ResultPair> batch) {
    stager.Add(std::move(batch));
  };
  st = engine->ExecuteStreaming(sink, &stats, state->token());
  if (st.ok()) stager.FlushTail();
  timing.execute_seconds = sw.ElapsedSeconds();
  // Shard retries are this request's fault-recovery cost; surface them in
  // the per-request accounting alongside CPU and bytes.
  state->usage()->AddRetries(
      static_cast<uint64_t>(engine->last_report().retried_shards));
  if (stager.push_failed() || state->cancelled()) {
    state->Close(Status::Aborted("join cancelled mid-stream"), stats, timing);
    return;
  }
  state->Close(std::move(st), stats, timing);
}

// The generic producer: any registered engine runs Plan -> Execute on the
// producer thread and the finished result streams out in chunks, giving the
// whole registry one uniform streaming contract.
void RunGenericProducer(std::shared_ptr<JoinEngine> engine, const Dataset& r,
                        const Dataset& s, obs::TraceContext trace,
                        StreamOptions opts,
                        std::shared_ptr<StreamState> state) {
  StageTiming timing;
  Stopwatch sw;
  obs::ScopedSpan plan_span(trace, "plan");
  Status st = engine->Plan(r, s);
  timing.plan_seconds = sw.ElapsedSeconds();
  plan_span.End();
  if (!st.ok()) {
    state->Close(std::move(st), JoinStats{}, timing);
    return;
  }
  if (state->cancelled()) {
    state->Close(Status::Aborted("join cancelled mid-stream"), JoinStats{},
                 timing);
    return;
  }
  obs::ScopedSpan exec_span(trace, "execute");
  sw.Reset();
  JoinResult result;
  JoinStats stats;
  st = engine->Execute(&result, &stats);
  timing.execute_seconds = sw.ElapsedSeconds();
  exec_span.End();
  if (!st.ok()) {
    state->Close(std::move(st), stats, timing);
    return;
  }
  const std::vector<ResultPair>& pairs = result.pairs();
  const std::size_t chunk_pairs = std::max<std::size_t>(1, opts.chunk_pairs);
  for (std::size_t off = 0; off < pairs.size(); off += chunk_pairs) {
    const std::size_t end = std::min(off + chunk_pairs, pairs.size());
    if (!state->Push({pairs.begin() + off, pairs.begin() + end})) {
      state->Close(Status::Aborted("join cancelled mid-stream"), stats,
                   timing);
      return;
    }
  }
  state->Close(Status::OK(), stats, timing);
}

// The warm-path producer: plan artifacts come from the registry's cache, so
// on a hit the "plan" stage is just the cache lookup (plan_seconds ~ 0) and
// execution starts immediately against the shared, immutable PreparedPlan.
// The finished result streams out in chunks like the generic path; the
// fetched plan pins its datasets for the whole execution, so a concurrent
// re-Put of either name cannot pull the data out from under the join.
void RunRegisteredProducer(DatasetRegistry* registry, std::string engine,
                           std::string r_name, std::string s_name,
                           EngineConfig config, StreamOptions opts,
                           std::shared_ptr<StreamState> state) {
  StageTiming timing;
  Stopwatch sw;
  obs::ScopedSpan plan_span(config.trace, "plan");
  auto prepared = registry->GetOrPrepare(engine, r_name, s_name, config);
  timing.plan_seconds = sw.ElapsedSeconds();
  plan_span.End();
  if (!prepared.ok()) {
    state->Close(prepared.status(), JoinStats{}, timing);
    return;
  }
  if (state->cancelled()) {
    state->Close(Status::Aborted("join cancelled mid-stream"), JoinStats{},
                 timing);
    return;
  }
  obs::ScopedSpan exec_span(config.trace, "execute");
  sw.Reset();
  auto created = EngineRegistry::Global().Create(engine, config);
  if (!created.ok()) {
    state->Close(created.status(), JoinStats{}, StageTiming{});
    return;
  }
  JoinResult result;
  JoinStats stats;
  Status st = (*created)->ExecutePrepared(**prepared, &result, &stats);
  timing.execute_seconds = sw.ElapsedSeconds();
  exec_span.End();
  if (!st.ok()) {
    state->Close(std::move(st), stats, timing);
    return;
  }
  const std::vector<ResultPair>& pairs = result.pairs();
  const std::size_t chunk_pairs = std::max<std::size_t>(1, opts.chunk_pairs);
  for (std::size_t off = 0; off < pairs.size(); off += chunk_pairs) {
    const std::size_t end = std::min(off + chunk_pairs, pairs.size());
    if (!state->Push({pairs.begin() + off, pairs.begin() + end})) {
      state->Close(Status::Aborted("join cancelled mid-stream"), stats,
                   timing);
      return;
    }
  }
  state->Close(Status::OK(), stats, timing);
}

bool IsNativeStreamingEngine(const std::string& name) {
  return name == kPartitionedEngine || name == kSimdEngine ||
         name == kAsyncEngine;
}

// Fault containment for every producer flavour: a producer that throws
// (misbehaving engine code, bad_alloc under pressure) must still close the
// stream with a non-OK status -- the alternative is an uncaught exception
// tearing the process down, or (if swallowed carelessly) consumers blocked
// in Next()/Wait() forever on a stream nobody will ever close.
std::function<void()> ContainFaults(std::function<void()> body,
                                    std::shared_ptr<StreamState> state) {
  return [body = std::move(body), state = std::move(state)] {
    try {
      body();
    } catch (const std::exception& e) {
      SWIFT_LOG(Error, "stream", "join producer threw")
          .With("what", e.what());
      state->CloseIfOpen(
          Status::Internal(std::string("join producer threw: ") + e.what()));
    } catch (...) {
      SWIFT_LOG(Error, "stream",
                "join producer threw a non-standard exception");
      state->CloseIfOpen(
          Status::Internal("join producer threw a non-standard exception"));
    }
  };
}

// Observes the per-engine swiftspatial_stream_* series once the producer
// has closed the stream: stage timings from the stream's own StageTiming
// (so the metrics agree with StreamSummary by construction) plus the chunk
// count. Runs on the producer thread after the close -- never on the hot
// chunk path -- so per-request registry lookups are fine here.
std::function<void()> InstrumentProducer(std::string engine,
                                         obs::MetricsRegistry* metrics,
                                         std::function<void()> body,
                                         std::shared_ptr<StreamState> state) {
  return [engine = std::move(engine), metrics, body = std::move(body),
          state = std::move(state)] {
    Stopwatch wall;
    body();
    // Producer wall time (dispatcher pickup / thread start to close): the
    // denominator for the request's CPU-vs-wall parallelism ratio.
    state->usage()->SetWallSeconds(wall.ElapsedSeconds());
    obs::MetricsRegistry& reg =
        metrics != nullptr ? *metrics : obs::MetricsRegistry::Global();
    const StageTiming timing = state->timing();
    reg.GetHistogram("swiftspatial_stream_plan_seconds", {{"engine", engine}}, {}, "Stream producer plan-stage wall time")->Observe(timing.plan_seconds);
    reg.GetHistogram("swiftspatial_stream_execute_seconds", {{"engine", engine}}, {}, "Stream producer execute-stage wall time")->Observe(timing.execute_seconds);
    reg.GetCounter("swiftspatial_stream_chunks_total", {{"engine", engine}}, "Chunks pushed to bounded stream queues")->Increment(state->chunks_pushed());
  };
}

// The same fail-fast grid checks PartitionedDriver::Plan applies, so
// RunJoinAsync rejects bad grids before spawning a producer and the
// sync/streaming paths cannot drift apart.
Status ValidateNativeConfig(const EngineConfig& config) {
  return ValidateGridConfig(config.grid_cols, config.grid_rows);
}

// The "async" registry entry: Plan validates, Execute runs the native
// streaming pipeline and Collect()s it. Registering this class is what puts
// the entire streaming machinery -- producer thread, banded TaskGraph,
// bounded chunk queue, Collect -- under the equivalence oracle.
class AsyncCollectEngine : public JoinEngine {
 public:
  explicit AsyncCollectEngine(const EngineConfig& config) : config_(config) {}

  const std::string& name() const override {
    static const std::string kName(kAsyncEngine);
    return kName;
  }

  Status Plan(const Dataset& r, const Dataset& s) override {
    if (config_.num_threads < 1) {
      return Status::InvalidArgument("num_threads must be >= 1");
    }
    SWIFT_RETURN_IF_ERROR(ValidateNativeConfig(config_));
    if (config_.validate_inputs) {
      SWIFT_RETURN_IF_ERROR(r.ValidateBoxes());
      SWIFT_RETURN_IF_ERROR(s.ValidateBoxes());
    }
    r_ = &r;
    s_ = &s;
    planned_ = true;
    // No index/partition build here: the banded planner runs inside
    // Execute, overlapped with the joins it feeds -- that overlap is the
    // engine's whole reason to exist.
    return Status::OK();
  }

  Status Execute(JoinResult* out, JoinStats* stats) override {
    if (!planned_) {
      return Status::Internal("Execute called before a successful Plan");
    }
    if (out == nullptr) {
      return Status::InvalidArgument("Execute requires a non-null result");
    }
    *out = JoinResult();
    if (r_->empty() || s_->empty()) return Status::OK();
    EngineConfig config = config_;
    config.validate_inputs = false;  // already validated at Plan
    auto handle = RunJoinAsync(kAsyncEngine, *r_, *s_, config);
    if (!handle.ok()) return handle.status();
    StreamSummary summary = handle->Collect();
    if (!summary.status.ok()) return summary.status;
    *out = std::move(summary.run.result);
    if (stats != nullptr) *stats += summary.run.stats;
    return Status::OK();
  }

 private:
  EngineConfig config_;
  const Dataset* r_ = nullptr;
  const Dataset* s_ = nullptr;
  bool planned_ = false;
};

}  // namespace

AsyncJoinHandle::AsyncJoinHandle(std::shared_ptr<internal::StreamState> state,
                                 std::thread producer)
    : state_(std::move(state)), producer_(std::move(producer)) {}

void AsyncJoinHandle::Teardown() {
  if (state_ == nullptr) return;  // moved-from
  // Cancel so a blocked producer unblocks, drain so buffered chunks free
  // their memory, then wait for the stream to close -- either our own
  // producer thread finishing, or the serving layer running/abandoning a
  // deferred job (every created stream is guaranteed one of the two; see
  // the abandon guard in MakeJoinStream).
  state_->Cancel();
  ResultChunk sink;
  while (state_->Pop(&sink)) {
  }
  state_->WaitClosed();
  if (producer_.joinable()) producer_.join();
  state_.reset();
}

AsyncJoinHandle::~AsyncJoinHandle() { Teardown(); }

AsyncJoinHandle& AsyncJoinHandle::operator=(AsyncJoinHandle&& other) noexcept {
  if (this != &other) {
    // Retire the stream this handle currently owns exactly as the
    // destructor would, then adopt the other's.
    Teardown();
    state_ = std::move(other.state_);
    producer_ = std::move(other.producer_);
  }
  return *this;
}

bool AsyncJoinHandle::Next(ResultChunk* out) { return state_->Pop(out); }

void AsyncJoinHandle::Cancel() { state_->Cancel(); }

Status AsyncJoinHandle::Wait() {
  ResultChunk sink;
  while (state_->Pop(&sink)) {
  }
  state_->WaitClosed();
  if (producer_.joinable()) producer_.join();
  return state_->status();
}

StreamSummary AsyncJoinHandle::Collect() {
  StreamSummary summary;
  ResultChunk chunk;
  while (state_->Pop(&chunk)) {
    ++summary.chunks;
    auto& pairs = summary.run.result.mutable_pairs();
    if (pairs.empty()) {
      pairs = std::move(chunk.pairs);
    } else {
      pairs.insert(pairs.end(), chunk.pairs.begin(), chunk.pairs.end());
    }
  }
  state_->WaitClosed();
  if (producer_.joinable()) producer_.join();
  summary.status = state_->status();
  summary.run.stats = state_->stats();
  summary.run.timing = state_->timing();
  summary.max_queue_depth = state_->max_depth();
  return summary;
}

std::size_t AsyncJoinHandle::max_queue_depth() const {
  return state_->max_depth();
}

Result<DeferredStream> MakeJoinStream(const std::string& engine,
                                      const Dataset& r, const Dataset& s,
                                      const EngineConfig& config,
                                      const StreamOptions& stream,
                                      ThreadPool* pool) {
  if (config.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  auto state = std::make_shared<StreamState>(stream.queue_capacity);
  // Safety net owned by the producer/abandon closures: if a caller drops
  // both without invoking either (an early-return error path), the last
  // closure's destruction closes the stream so consumers blocked in
  // Next()/Wait() -- including ~AsyncJoinHandle -- never hang.
  auto guard = std::shared_ptr<void>(nullptr, [state](void*) {
    state->CloseIfOpen(
        Status::Aborted("stream dropped without running the producer"));
  });
  std::function<void()> producer;
  if (IsNativeStreamingEngine(engine)) {
    SWIFT_RETURN_IF_ERROR(ValidateNativeConfig(config));
    const TileJoin tile_join =
        engine == kSimdEngine ? TileJoin::kSimd : config.tile_join;
    producer = [&r, &s, config, tile_join, stream, pool, state, guard] {
      RunNativeProducer(r, s, config, tile_join, stream, pool, state);
    };
  } else if (IsAccelEngine(engine)) {
    // The simulated device is single-threaded and ignores `pool`; its
    // chunks surface straight from the write unit (see RunAccelProducer).
    SWIFT_RETURN_IF_ERROR(ValidateAccelConfig(config));
    producer = [engine, &r, &s, config, stream, state, guard] {
      RunAccelProducer(engine, r, s, config, stream, state);
    };
  } else if (dist::IsDistEngine(engine)) {
    // The cluster owns its node pools and ignores `pool`; committed shards
    // surface straight from the merge coordinator (see RunDistProducer).
    SWIFT_RETURN_IF_ERROR(dist::ValidateDistConfig(config));
    producer = [engine, &r, &s, config, stream, state, guard] {
      RunDistProducer(engine, r, s, config, stream, state);
    };
  } else {
    auto created = EngineRegistry::Global().Create(engine, config);
    if (!created.ok()) return created.status();
    std::shared_ptr<JoinEngine> eng = std::move(*created);
    producer = [eng, &r, &s, trace = config.trace, stream, state, guard] {
      RunGenericProducer(eng, r, s, trace, stream, state);
    };
  }
  producer = InstrumentProducer(engine, stream.metrics,
                                ContainFaults(std::move(producer), state),
                                state);
  auto abandon = [state, guard](Status status) {
    state->CloseIfOpen(std::move(status));
  };
  // Deliberately does NOT co-own the abandon guard: a caller that drops the
  // producer and abandon closures must close the stream even while a
  // watchdog still holds cancel_with (cancelling a closed stream is a
  // no-op).
  auto cancel_with = [state](Status status) {
    state->CancelWith(std::move(status));
  };
  guard.reset();  // closures now co-own the safety net
  auto usage =
      std::shared_ptr<obs::ResourceAccumulator>(state, state->usage());
  return DeferredStream{AsyncJoinHandle(state, std::thread()),
                        std::move(producer), std::move(abandon),
                        std::move(cancel_with), state->token(),
                        std::move(usage)};
}

Result<AsyncJoinHandle> RunJoinAsync(const std::string& engine,
                                     const Dataset& r, const Dataset& s,
                                     const EngineConfig& config,
                                     const StreamOptions& stream) {
  auto deferred = MakeJoinStream(engine, r, s, config, stream,
                                 /*pool=*/nullptr);
  if (!deferred.ok()) return deferred.status();
  DeferredStream d = std::move(*deferred);
  d.handle.producer_ = std::thread(std::move(d.producer));
  return std::move(d.handle);
}

Result<DeferredStream> MakeRegisteredJoinStream(
    DatasetRegistry* registry, const std::string& engine,
    const std::string& r_name, const std::string& s_name,
    const EngineConfig& config, const StreamOptions& stream) {
  if (registry == nullptr) {
    return Status::InvalidArgument(
        "MakeRegisteredJoinStream requires a registry");
  }
  if (config.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  // Fail fast on unknown engines and unregistered names, so admission-time
  // callers (JoinService::SubmitNamed) can reject bad requests before
  // queueing them. The producer re-resolves at run time and uses whatever
  // version is then current.
  if (!EngineRegistry::Global().Contains(engine)) {
    return Status::NotFound("no registered engine: " + engine);
  }
  for (const std::string* name : {&r_name, &s_name}) {
    auto resident = registry->Get(*name);
    if (!resident.ok()) return resident.status();
  }
  auto state = std::make_shared<StreamState>(stream.queue_capacity);
  auto guard = std::shared_ptr<void>(nullptr, [state](void*) {
    state->CloseIfOpen(
        Status::Aborted("stream dropped without running the producer"));
  });
  std::function<void()> producer = [registry, engine, r_name, s_name, config,
                                    stream, state, guard] {
    RunRegisteredProducer(registry, engine, r_name, s_name, config, stream,
                          state);
  };
  producer = InstrumentProducer(engine, stream.metrics,
                                ContainFaults(std::move(producer), state),
                                state);
  auto abandon = [state, guard](Status status) {
    state->CloseIfOpen(std::move(status));
  };
  // Deliberately does NOT co-own the abandon guard: a caller that drops the
  // producer and abandon closures must close the stream even while a
  // watchdog still holds cancel_with (cancelling a closed stream is a
  // no-op).
  auto cancel_with = [state](Status status) {
    state->CancelWith(std::move(status));
  };
  guard.reset();  // closures now co-own the safety net
  auto usage =
      std::shared_ptr<obs::ResourceAccumulator>(state, state->usage());
  return DeferredStream{AsyncJoinHandle(state, std::thread()),
                        std::move(producer), std::move(abandon),
                        std::move(cancel_with), state->token(),
                        std::move(usage)};
}

Result<AsyncJoinHandle> RunJoinAsync(DatasetRegistry& registry,
                                     const std::string& engine,
                                     const std::string& r_name,
                                     const std::string& s_name,
                                     const EngineConfig& config,
                                     const StreamOptions& stream) {
  auto deferred =
      MakeRegisteredJoinStream(&registry, engine, r_name, s_name, config,
                               stream);
  if (!deferred.ok()) return deferred.status();
  DeferredStream d = std::move(*deferred);
  d.handle.producer_ = std::thread(std::move(d.producer));
  return std::move(d.handle);
}

std::unique_ptr<JoinEngine> MakeAsyncJoinEngine(const EngineConfig& config) {
  return std::make_unique<AsyncCollectEngine>(config);
}

}  // namespace swiftspatial::exec
