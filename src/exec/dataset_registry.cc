#include "exec/dataset_registry.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace swiftspatial::exec {

namespace {

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.count = dataset.size();
  stats.extent = dataset.Extent();
  if (dataset.empty()) return stats;
  double width_sum = 0, height_sum = 0;
  for (const Box& box : dataset.boxes()) {
    width_sum += box.max_x - box.min_x;
    height_sum += box.max_y - box.min_y;
  }
  stats.avg_width = width_sum / static_cast<double>(dataset.size());
  stats.avg_height = height_sum / static_cast<double>(dataset.size());
  return stats;
}

}  // namespace

namespace {
obs::MetricsRegistry& ResolveMetrics(const DatasetRegistryOptions& options) {
  return options.metrics != nullptr ? *options.metrics
                                    : obs::MetricsRegistry::Global();
}
}  // namespace

DatasetRegistry::DatasetRegistry(DatasetRegistryOptions options)
    : options_(options),
      m_hits_(ResolveMetrics(options).GetCounter("swiftspatial_cache_hits_total", {}, "Plan-cache hits")),
      m_misses_(ResolveMetrics(options).GetCounter("swiftspatial_cache_misses_total", {}, "Plan-cache misses")),
      m_evictions_(ResolveMetrics(options).GetCounter("swiftspatial_cache_evictions_total", {}, "Plan-cache LRU evictions")),
      m_invalidated_(ResolveMetrics(options).GetCounter("swiftspatial_cache_invalidated_total", {}, "Plan-cache entries dropped by dataset re-registration")),
      m_entries_(ResolveMetrics(options).GetGauge("swiftspatial_cache_entries", {}, "Resident plan-cache entries")),
      m_resident_bytes_(ResolveMetrics(options).GetGauge("swiftspatial_cache_resident_bytes", {}, "Bytes of resident plan artifacts")) {}

void DatasetRegistry::SyncGaugesLocked() {
  m_entries_->Set(static_cast<double>(stats_.entries));
  m_resident_bytes_->Set(static_cast<double>(stats_.resident_bytes));
}

DatasetHandle DatasetRegistry::Put(std::string name, Dataset dataset) {
  MutexLock lock(&mu_);
  Entry& entry = datasets_[name];
  entry.version += 1;
  entry.stats = ComputeStats(dataset);
  entry.dataset = std::make_shared<const Dataset>(std::move(dataset));

  // Invalidate every plan built over an older version of this dataset. The
  // new version's keys differ, so anything mentioning `name` at a version
  // other than the fresh one is unreachable -- drop it now rather than
  // letting dead artifacts squat on the byte budget.
  for (auto it = plans_.begin(); it != plans_.end();) {
    const auto& [r_name, r_version, s_name, s_version, engine, fingerprint] =
        it->first;
    (void)engine;
    (void)fingerprint;
    const bool stale = (r_name == name && r_version != entry.version) ||
                       (s_name == name && s_version != entry.version);
    if (stale) {
      stats_.resident_bytes -= it->second.bytes;
      ++stats_.invalidated;
      m_invalidated_->Increment();
      it = plans_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.entries = plans_.size();
  SyncGaugesLocked();
  return DatasetHandle{std::move(name), entry.version};
}

Result<ResidentDataset> DatasetRegistry::Get(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    std::string known;
    for (const auto& [n, e] : datasets_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::NotFound("no registered dataset \"" + name +
                            "\" (registered: " + known + ")");
  }
  ResidentDataset resident;
  resident.dataset = it->second.dataset;
  resident.version = it->second.version;
  resident.stats = it->second.stats;
  return resident;
}

std::vector<std::string> DatasetRegistry::Names() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, entry] : datasets_) names.push_back(name);
  return names;  // std::map iterates in sorted order
}

Result<std::shared_ptr<const PreparedPlan>> DatasetRegistry::GetOrPrepare(
    const std::string& engine, const std::string& r_name,
    const std::string& s_name, const EngineConfig& config) {
  const uint64_t fingerprint = ConfigFingerprint(config);

  std::shared_ptr<const Dataset> r, s;
  CacheKey key;
  {
    MutexLock lock(&mu_);
    const auto r_it = datasets_.find(r_name);
    const auto s_it = datasets_.find(s_name);
    if (r_it == datasets_.end() || s_it == datasets_.end()) {
      return Status::NotFound(
          "no registered dataset \"" +
          (r_it == datasets_.end() ? r_name : s_name) + "\"");
    }
    key = CacheKey(r_name, r_it->second.version, s_name, s_it->second.version,
                   engine, fingerprint);
    auto hit = plans_.find(key);
    if (hit != plans_.end()) {
      ++stats_.hits;
      m_hits_->Increment();
      hit->second.last_used = ++lru_tick_;
      return hit->second.plan;
    }
    ++stats_.misses;
    m_misses_->Increment();
    r = r_it->second.dataset;
    s = s_it->second.dataset;
  }

  // Cold: prepare outside the lock -- planning can be expensive, and warm
  // lookups of other keys must not queue behind it. Concurrent misses on
  // the same key may each prepare; the first insert wins below and later
  // ones adopt it, so every caller shares one plan.
  auto prepared = PrepareJoin(engine, std::move(r), std::move(s), config);
  if (!prepared.ok()) return prepared.status();
  std::shared_ptr<const PreparedPlan> plan = std::move(*prepared);

  MutexLock lock(&mu_);
  auto [it, inserted] = plans_.emplace(std::move(key), CacheEntry{});
  it->second.last_used = ++lru_tick_;  // before eviction: never the LRU pick
  if (!inserted) return it->second.plan;  // lost the race: share the winner
  it->second.plan = plan;
  it->second.bytes = plan->MemoryBytes();
  stats_.resident_bytes += it->second.bytes;
  // May evict other entries (ours is the newest); return the local handle
  // so even a pathologically small budget that drops everything is safe.
  EvictOverBudgetLocked();
  stats_.entries = plans_.size();
  SyncGaugesLocked();
  return plan;
}

void DatasetRegistry::EvictOverBudgetLocked() {
  if (options_.max_plan_bytes == 0) return;
  while (stats_.resident_bytes > options_.max_plan_bytes &&
         plans_.size() > 1) {
    auto victim = plans_.end();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (auto it = plans_.begin(); it != plans_.end(); ++it) {
      if (it->second.last_used < oldest) {
        oldest = it->second.last_used;
        victim = it;
      }
    }
    if (victim == plans_.end()) return;
    stats_.resident_bytes -= victim->second.bytes;
    ++stats_.evictions;
    m_evictions_->Increment();
    plans_.erase(victim);
  }
}

PlanCacheStats DatasetRegistry::plan_cache_stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace swiftspatial::exec
