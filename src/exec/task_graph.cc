#include "exec/task_graph.h"

#include <chrono>
#include <string>
#include <utility>

#include "common/logging.h"
#include "obs/log.h"

namespace swiftspatial::exec {

namespace {
using Clock = std::chrono::steady_clock;

// Per-task spans below this duration are elided from the trace buffer
// (accounting still balances); 100us keeps every timeline-visible task
// while bounding trace overhead on graphs with thousands of tiny cells.
constexpr double kTaskSpanFloorSeconds = 100e-6;

double SecondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

struct TaskGraph::Node {
  std::function<void()> fn;
  std::vector<std::size_t> dependents;
  std::size_t pending_deps = 0;
  bool finished = false;
  TaskTiming timing;
  Clock::time_point ready_at;
};

TaskGraph::TaskGraph(ThreadPool* pool, CancellationToken cancel,
                     obs::TraceContext trace, obs::ResourceAccumulator* usage)
    : pool_(pool), cancel_(std::move(cancel)), trace_(trace), usage_(usage) {
  SWIFT_CHECK(pool_ != nullptr);
}

TaskGraph::~TaskGraph() { Wait(); }

TaskId TaskGraph::Add(std::function<void()> fn,
                      const std::vector<TaskId>& deps) {
  std::size_t index;
  bool ready;
  {
    MutexLock lock(&mu_);
    index = tasks_.size();
    auto node = std::make_unique<Node>();
    node->fn = std::move(fn);
    for (const TaskId dep : deps) {
      SWIFT_CHECK_LT(dep, index);  // deps must already be in this graph
      Node& d = *tasks_[dep];
      if (!d.finished) {
        d.dependents.push_back(index);
        ++node->pending_deps;
      }
    }
    ready = node->pending_deps == 0;
    if (ready) node->ready_at = Clock::now();
    tasks_.push_back(std::move(node));
    ++unfinished_;
  }
  if (ready) SubmitNode(index);
  return index;
}

void TaskGraph::SubmitNode(std::size_t index) {
  pool_->Submit([this, index] { RunNode(index); });
}

void TaskGraph::RunNode(std::size_t index) {
  Node* node_ptr;
  {
    // tasks_ may be reallocating under a concurrent Add; the nodes
    // themselves are heap-stable, so only the indexing needs the lock.
    MutexLock lock(&mu_);
    node_ptr = tasks_[index].get();
  }
  Node& node = *node_ptr;
  if (cancel_.cancelled()) {
    FinishNode(index, /*skipped=*/true, {}, {});
    return;
  }
  const Clock::time_point start = Clock::now();
  // Thread-CPU accounting brackets exactly the task body: the difference
  // is this task's true compute cost no matter how many threads share the
  // core. ThreadCpuSeconds() compiles to `return 0` under OBS_OFF, so the
  // whole bracket folds away there.
  const double cpu0 = usage_ != nullptr ? obs::ThreadCpuSeconds() : 0;
  if (trace_.active()) {
    // One span per executed task, laned by pool worker so the Chrome trace
    // shows the actual parallelism of the wave. Graphs fan out to thousands
    // of sub-millisecond cell joins, so a duration floor elides the noise
    // tier: anything long enough to see on a timeline is still recorded,
    // and the hot path pays a clock read instead of the buffer lock.
    obs::ScopedSpan span(
        trace_, "task",
        static_cast<int>(pool_->CurrentWorkerIndex()) + 1);
    span.SetMinRecordSeconds(kTaskSpanFloorSeconds);
    span.AddAttr("task", std::to_string(index));
    // Records logged from inside the task body carry the request's trace
    // and this task's span id, joining worker-side log lines to the trace.
    obs::ScopedLogTrace log_trace(trace_.trace_id(), span.span_id());
    node.fn();
  } else {
    node.fn();
  }
  if (usage_ != nullptr) {
    usage_->AddCpuSeconds(obs::ThreadCpuSeconds() - cpu0);
  }
  FinishNode(index, /*skipped=*/false, start, Clock::now());
}

void TaskGraph::FinishNode(std::size_t index, bool skipped,
                           Clock::time_point start, Clock::time_point end) {
  std::vector<std::size_t> newly_ready;
  {
    MutexLock lock(&mu_);
    Node& node = *tasks_[index];
    node.finished = true;
    // Timing is stamped under mu_ so the locked getters
    // (timing()/total_task_seconds()) are safe even mid-run.
    node.timing.skipped = skipped;
    if (skipped) {
      ++skipped_;
    } else {
      node.timing.queued_seconds = SecondsBetween(node.ready_at, start);
      node.timing.run_seconds = SecondsBetween(start, end);
      ++run_;
      if (usage_ != nullptr) {
        usage_->AddTasks(1);
        usage_->AddQueueWaitSeconds(node.timing.queued_seconds);
      }
    }
    const Clock::time_point now = Clock::now();
    for (const std::size_t dep_index : node.dependents) {
      Node& d = *tasks_[dep_index];
      if (--d.pending_deps == 0) {
        d.ready_at = now;
        newly_ready.push_back(dep_index);
      }
    }
    node.dependents.clear();
    if (--unfinished_ == 0 && newly_ready.empty()) {
      // Notify while holding the lock: a Wait()er may destroy this graph
      // (cv included) the moment it observes the drain, which must not
      // overlap the notify call itself.
      cv_drained_.NotifyAll();
    }
  }
  for (const std::size_t r : newly_ready) SubmitNode(r);
}

void TaskGraph::Wait() {
  SWIFT_CHECK(pool_->CurrentWorkerIndex() == ThreadPool::kNotAWorker);
  MutexLock lock(&mu_);
  while (unfinished_ != 0) cv_drained_.Wait(&mu_);
}

std::size_t TaskGraph::tasks_added() const {
  MutexLock lock(&mu_);
  return tasks_.size();
}

std::size_t TaskGraph::tasks_run() const {
  MutexLock lock(&mu_);
  return run_;
}

std::size_t TaskGraph::tasks_skipped() const {
  MutexLock lock(&mu_);
  return skipped_;
}

double TaskGraph::total_task_seconds() const {
  MutexLock lock(&mu_);
  double total = 0;
  for (const auto& node : tasks_) total += node->timing.run_seconds;
  return total;
}

TaskTiming TaskGraph::timing(TaskId id) const {
  MutexLock lock(&mu_);
  SWIFT_CHECK_LT(id, tasks_.size());
  return tasks_[id]->timing;
}

}  // namespace swiftspatial::exec
