// DatasetRegistry: resident datasets + the plan-artifact cache -- the
// warm-serving state that lets steady-state requests skip Plan entirely.
//
// Serving reality is a few datasets hit by many requests: re-planning every
// request rebuilds the same packed R-trees, grid assignments, and
// ShardPlans millions of times. Instead, register a Dataset once under a
// name and it becomes resident:
//
//   DatasetRegistry registry;
//   registry.Put("buildings", std::move(buildings));
//   registry.Put("roads", std::move(roads));
//   auto plan = registry.GetOrPrepare("partitioned", "buildings", "roads",
//                                     config);   // cold: plans + caches
//   auto again = registry.GetOrPrepare(...);     // warm: cache hit, no Plan
//   auto run = RunPreparedJoin(**again, config); // bit-identical to cold
//
// Registering the same name again stores the new data under a bumped
// version; every plan cached for older versions is invalidated immediately
// (requests already executing against an old plan finish safely -- plans
// are shared_ptr-held and pin their datasets). The cache key is
// (r name@version, s name@version, engine, config fingerprint), so engines
// and configurations never share artifacts. All methods are thread-safe;
// plan construction runs outside the registry lock, so a slow cold Prepare
// never blocks warm lookups of other keys.
#ifndef SWIFTSPATIAL_EXEC_DATASET_REGISTRY_H_
#define SWIFTSPATIAL_EXEC_DATASET_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "datagen/dataset.h"
#include "geometry/box.h"
#include "join/engine.h"
#include "obs/metrics.h"

namespace swiftspatial::exec {

/// Names one registered dataset at one version. Version bumps on every
/// re-registration; artifacts are keyed by version, so a handle pins the
/// exact data a plan was built over.
struct DatasetHandle {
  std::string name;
  uint64_t version = 0;
};

/// Summary statistics computed once at registration -- the hook for
/// cost-model-driven engine selection over resident datasets (cardinality,
/// extent, and average MBR edge lengths are the standard cost-model
/// inputs).
struct DatasetStats {
  std::size_t count = 0;
  Box extent;
  double avg_width = 0;
  double avg_height = 0;
};

/// A resolved resident dataset: shared ownership of the data plus the
/// version and registration-time stats.
struct ResidentDataset {
  std::shared_ptr<const Dataset> dataset;
  uint64_t version = 0;
  DatasetStats stats;
};

/// Counters for the plan-artifact cache. `resident_bytes` covers the plan
/// artifacts (PreparedPlan::MemoryBytes), not the datasets.
struct PlanCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  /// Entries dropped by the byte-budget LRU policy.
  std::size_t evictions = 0;
  /// Entries dropped because their dataset was re-registered (version bump).
  std::size_t invalidated = 0;
  std::size_t entries = 0;
  std::size_t resident_bytes = 0;
};

struct DatasetRegistryOptions {
  /// Byte budget for cached plan artifacts; least-recently-used entries are
  /// evicted once the budget is exceeded. 0 = unbounded.
  std::size_t max_plan_bytes = 0;
  /// Metrics sink for the swiftspatial_cache_* series; nullptr selects
  /// obs::MetricsRegistry::Global().
  obs::MetricsRegistry* metrics = nullptr;
};

/// Thread-safe resident-dataset store + plan-artifact cache.
class DatasetRegistry {
 public:
  explicit DatasetRegistry(DatasetRegistryOptions options = {});
  DatasetRegistry(const DatasetRegistry&) = delete;
  DatasetRegistry& operator=(const DatasetRegistry&) = delete;

  /// Registers `dataset` under `name`, or updates an existing registration
  /// -- the version bumps and every plan cached for the old version is
  /// invalidated (in-flight executions against old plans finish safely).
  DatasetHandle Put(std::string name, Dataset dataset) EXCLUDES(mu_);

  /// Resolves a registered dataset, or NotFound listing the known names.
  Result<ResidentDataset> Get(const std::string& name) const EXCLUDES(mu_);

  /// Sorted names of all registered datasets.
  std::vector<std::string> Names() const EXCLUDES(mu_);

  /// The warm path: returns the cached PreparedPlan for (engine, r@current,
  /// s@current, config) or -- on a miss -- prepares one (PrepareJoin) and
  /// caches it. Concurrent misses on the same key may both prepare; the
  /// first insert wins and both callers share it. Plans returned here stay
  /// valid (and pin their datasets) for as long as the caller holds them,
  /// even across invalidation or eviction.
  Result<std::shared_ptr<const PreparedPlan>> GetOrPrepare(
      const std::string& engine, const std::string& r_name,
      const std::string& s_name, const EngineConfig& config = {})
      EXCLUDES(mu_);

  PlanCacheStats plan_cache_stats() const EXCLUDES(mu_);

 private:
  struct Entry {
    std::shared_ptr<const Dataset> dataset;
    uint64_t version = 0;
    DatasetStats stats;
  };

  /// Plan-cache key: both dataset names at exact versions, the engine, and
  /// the config fingerprint.
  using CacheKey = std::tuple<std::string, uint64_t, std::string, uint64_t,
                              std::string, uint64_t>;

  struct CacheEntry {
    std::shared_ptr<const PreparedPlan> plan;
    std::size_t bytes = 0;
    uint64_t last_used = 0;  // LRU tick
  };

  /// Drops LRU entries until resident_bytes fits the budget. Requires mu_.
  void EvictOverBudgetLocked() REQUIRES(mu_);

  /// Mirrors entries/resident_bytes into the exported gauges. Requires mu_.
  void SyncGaugesLocked() REQUIRES(mu_);

  const DatasetRegistryOptions options_;

  // Pre-resolved metric handles (lock-free to update; see obs/metrics.h).
  obs::Counter* const m_hits_;
  obs::Counter* const m_misses_;
  obs::Counter* const m_evictions_;
  obs::Counter* const m_invalidated_;
  obs::Gauge* const m_entries_;
  obs::Gauge* const m_resident_bytes_;

  mutable Mutex mu_;
  std::map<std::string, Entry> datasets_ GUARDED_BY(mu_);
  std::map<CacheKey, CacheEntry> plans_ GUARDED_BY(mu_);
  PlanCacheStats stats_ GUARDED_BY(mu_);
  uint64_t lru_tick_ GUARDED_BY(mu_) = 0;
};

}  // namespace swiftspatial::exec

#endif  // SWIFTSPATIAL_EXEC_DATASET_REGISTRY_H_
