#include "faas/service.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/percentile.h"

namespace swiftspatial::faas {

JoinRequest RequestFromJoinRun(const JoinRun& run, double arrival_seconds,
                               uint64_t serial_cycles_per_task,
                               uint64_t launch_cycles) {
  JoinRequest req;
  req.arrival_seconds = arrival_seconds;
  // One MBR predicate per join-unit cycle (§3.3): the filter work scales
  // across a kernel's units.
  req.parallel_unit_cycles = run.stats.predicate_evaluations;
  // Task dispatch and level barriers serialise on the scheduler.
  req.serial_cycles = launch_cycles + run.stats.tasks * serial_cycles_per_task;
  return req;
}

Result<JoinRequest> ProfileRequest(const std::string& engine, const Dataset& r,
                                   const Dataset& s, double arrival_seconds,
                                   const EngineConfig& config) {
  Result<JoinRun> run = RunJoin(engine, r, s, config);
  if (!run.ok()) return run.status();
  return RequestFromJoinRun(*run, arrival_seconds);
}

SpatialJoinService::SpatialJoinService(const FaasConfig& config)
    : config_(config) {
  SWIFT_CHECK_GE(config_.num_kernels, 1);
  SWIFT_CHECK_GE(config_.total_units, config_.num_kernels);
  units_per_kernel_ = config_.total_units / config_.num_kernels;
}

std::vector<RequestOutcome> SpatialJoinService::Process(
    std::vector<JoinRequest> requests) const {
  std::sort(requests.begin(), requests.end(),
            [](const JoinRequest& a, const JoinRequest& b) {
              return a.arrival_seconds < b.arrival_seconds;
            });

  std::vector<double> kernel_free(config_.num_kernels, 0.0);
  std::vector<RequestOutcome> outcomes;
  outcomes.reserve(requests.size());

  for (const JoinRequest& req : requests) {
    // FCFS: the earliest-free kernel takes the request.
    int best = 0;
    for (int k = 1; k < config_.num_kernels; ++k) {
      if (kernel_free[k] < kernel_free[best]) best = k;
    }
    const double service_cycles =
        static_cast<double>(req.serial_cycles) +
        static_cast<double>(req.parallel_unit_cycles) / units_per_kernel_;
    const double service = service_cycles / config_.clock_hz;
    const double start = std::max(req.arrival_seconds, kernel_free[best]);
    const double finish = start + service;
    kernel_free[best] = finish;

    RequestOutcome out;
    out.kernel = best;
    out.start_seconds = start;
    out.finish_seconds = finish;
    out.wait_seconds = start - req.arrival_seconds;
    out.latency_seconds = finish - req.arrival_seconds;
    outcomes.push_back(out);
  }
  return outcomes;
}

FaasMetrics SpatialJoinService::Summarize(
    const std::vector<RequestOutcome>& outcomes) {
  FaasMetrics m;
  if (outcomes.empty()) return m;
  std::vector<double> latencies;
  latencies.reserve(outcomes.size());
  for (const auto& o : outcomes) {
    m.makespan_seconds = std::max(m.makespan_seconds, o.finish_seconds);
    m.mean_latency_seconds += o.latency_seconds;
    m.mean_wait_seconds += o.wait_seconds;
    m.max_wait_seconds = std::max(m.max_wait_seconds, o.wait_seconds);
    latencies.push_back(o.latency_seconds);
  }
  m.mean_latency_seconds /= outcomes.size();
  m.mean_wait_seconds /= outcomes.size();
  m.p99_latency_seconds = Percentile(std::move(latencies), 0.99);
  return m;
}

}  // namespace swiftspatial::faas
