// FPGA-as-a-Service host model (§4.2): one FPGA's join units can be
// instantiated as a single large SwiftSpatial kernel or as several smaller
// ones. Total compute is identical (same resource budget); the trade-off is
// between per-query speed (large kernel) and fairness under concurrency
// (multiple kernels prevent one long join from monopolising the device).
//
// Requests are served FCFS by the next free kernel. A request's service
// time follows an Amdahl-style model: a serial portion (scheduler levels,
// launch, transfers) plus parallel work that divides across the kernel's
// join units. Work figures can be taken from real Accelerator runs or
// synthesized.
//
// This class is the *analytic* device model -- closed-form what-ifs at
// FPGA scale (bench/ext_faas_multitenancy). The serving layer that
// actually executes concurrent join requests on the CPU, with admission
// control, FCFS/fair-share scheduling, and streamed results, is
// exec::JoinService (src/exec/service.h); examples/faas_server runs on it.
#ifndef SWIFTSPATIAL_FAAS_SERVICE_H_
#define SWIFTSPATIAL_FAAS_SERVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/dataset.h"
#include "join/engine.h"

namespace swiftspatial::faas {

struct FaasConfig {
  /// Join units available on the device (resource budget).
  int total_units = 16;
  /// Kernels instantiated; each gets total_units / num_kernels units.
  int num_kernels = 1;
  double clock_hz = 200e6;
};

/// One spatial-join request submitted to the service.
struct JoinRequest {
  /// Arrival time in seconds.
  double arrival_seconds = 0;
  /// Parallelisable work: join-unit cycles summed over all tile tasks.
  uint64_t parallel_unit_cycles = 0;
  /// Serial overhead cycles (level barriers, dispatch) plus any host time.
  uint64_t serial_cycles = 0;
};

/// Sizes a FaaS request from a JoinEngine run (the unified engine API):
/// the engine's predicate evaluations become parallel unit-cycles (the join
/// unit evaluates exactly one MBR predicate per cycle, §3.3) and its task
/// count becomes dispatch overhead on the serial path
/// (`serial_cycles_per_task` each, plus a fixed `launch_cycles` floor for
/// scheduler levels / kernel launch / transfers).
JoinRequest RequestFromJoinRun(const JoinRun& run, double arrival_seconds,
                               uint64_t serial_cycles_per_task = 4,
                               uint64_t launch_cycles = 100000);

/// Convenience: runs `engine` (a name in the global EngineRegistry) on
/// (r, s) and converts the run into a request profile arriving at
/// `arrival_seconds`.
Result<JoinRequest> ProfileRequest(const std::string& engine, const Dataset& r,
                                   const Dataset& s, double arrival_seconds,
                                   const EngineConfig& config = {});

/// Per-request outcome.
struct RequestOutcome {
  int kernel = 0;
  double start_seconds = 0;
  double finish_seconds = 0;
  double wait_seconds = 0;     ///< queueing delay
  double latency_seconds = 0;  ///< finish - arrival
};

/// Aggregate service metrics.
struct FaasMetrics {
  double makespan_seconds = 0;
  double mean_latency_seconds = 0;
  double p99_latency_seconds = 0;
  double max_wait_seconds = 0;
  double mean_wait_seconds = 0;
};

/// The FaaS scheduler simulation.
class SpatialJoinService {
 public:
  explicit SpatialJoinService(const FaasConfig& config);

  int units_per_kernel() const { return units_per_kernel_; }

  /// Serves `requests` (any order; sorted by arrival internally) and
  /// returns per-request outcomes in the sorted order.
  std::vector<RequestOutcome> Process(std::vector<JoinRequest> requests) const;

  /// Summarises outcomes.
  static FaasMetrics Summarize(const std::vector<RequestOutcome>& outcomes);

 private:
  FaasConfig config_;
  int units_per_kernel_;
};

}  // namespace swiftspatial::faas

#endif  // SWIFTSPATIAL_FAAS_SERVICE_H_
