// R-tree bulk loading (§2.2, §5.9):
//  * Sort-Tile-Recursive (STR, Leutenegger et al. [48]) -- what the paper's
//    index-construction experiment (Table 2) implements, with a parallel
//    sort.
//  * Hilbert packing (Kamel & Faloutsos [41]) -- sorts objects by the
//    Hilbert value of their MBR center and packs sequential runs.
//
// Both produce a PackedRTree, the flat layout consumed by the CPU join
// baselines and the simulated accelerator alike.
#ifndef SWIFTSPATIAL_RTREE_BULK_LOAD_H_
#define SWIFTSPATIAL_RTREE_BULK_LOAD_H_

#include <cstddef>

#include "datagen/dataset.h"
#include "rtree/packed_rtree.h"

namespace swiftspatial {

struct BulkLoadOptions {
  /// Maximum entries per node (paper default 16, §5.2).
  int max_entries = 16;
  /// Worker threads for the sort phases.
  std::size_t num_threads = 1;
};

/// Bulk-loads `dataset` with Sort-Tile-Recursive. The same tiling is applied
/// recursively at each directory level.
PackedRTree StrBulkLoad(const Dataset& dataset, const BulkLoadOptions& options);

/// Bulk-loads `dataset` by Hilbert-curve ordering of MBR centers.
PackedRTree HilbertBulkLoad(const Dataset& dataset,
                            const BulkLoadOptions& options);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_RTREE_BULK_LOAD_H_
