// Dynamic R-tree (Guttman [30]): ChooseLeaf by least area enlargement,
// quadratic node split, tree condensation with re-insertion on delete.
//
// The paper's motivation for supporting R-tree synchronous traversal is that
// spatial systems already maintain dynamic R-trees (§3.2); this class plays
// that role. For joins, Pack() snapshots the tree into the flat PackedRTree
// layout shared by the CPU baselines and the simulated accelerator, which
// models the "up-to-date indexes are transferred to the accelerator" flow of
// §4.
#ifndef SWIFTSPATIAL_RTREE_RTREE_H_
#define SWIFTSPATIAL_RTREE_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "datagen/dataset.h"
#include "geometry/box.h"
#include "rtree/packed_rtree.h"

namespace swiftspatial {

/// Insertion algorithm for the dynamic tree (§2.2): Guttman's original
/// quadratic-split insertion [30], or the R*-tree refinements [11]
/// (overlap-minimising subtree choice, margin-driven splits, and forced
/// reinsertion at the leaf level), which trade insert cost for better
/// topology.
enum class InsertionPolicy {
  kGuttman,
  kRStar,
};

const char* InsertionPolicyToString(InsertionPolicy p);

struct RTreeOptions {
  /// Maximum entries per node (M). Paper default 16.
  int max_entries = 16;
  /// Minimum entries per node (m), 2 <= m <= M/2. 0 means M * 0.4 (a common
  /// default giving good splits).
  int min_entries = 0;
  InsertionPolicy policy = InsertionPolicy::kGuttman;
  /// R* forced-reinsertion share of a overflowing leaf (classic p = 30%).
  double reinsert_fraction = 0.3;
};

/// Dynamic R-tree over (ObjectId, Box) records.
class RTree {
 public:
  explicit RTree(const RTreeOptions& options = RTreeOptions());
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;

  /// Inserts one record. Multiple records may share an id (the tree does not
  /// enforce uniqueness); Delete removes one matching record.
  void Insert(ObjectId id, const Box& box);

  /// Removes one record matching (id, box) exactly. Returns NotFound if no
  /// such record exists.
  Status Delete(ObjectId id, const Box& box);

  /// All object ids whose MBR intersects `window`.
  std::vector<ObjectId> WindowQuery(const Box& window) const;

  std::size_t size() const { return size_; }
  /// Tree height in levels; 1 = the root is a leaf. 0 only when empty.
  int height() const;

  /// Checks Guttman invariants: entry bounds (except root), uniform leaf
  /// depth, covering directory MBRs, record count.
  Status Validate() const;

  /// Serialises the current tree into the flat accelerator layout.
  PackedRTree Pack() const;

  /// Convenience: bulk construction by repeated insertion (the "dynamic"
  /// construction of §2.2, as opposed to STR/Hilbert bulk loading).
  static RTree BuildByInsertion(const Dataset& dataset,
                                const RTreeOptions& options = RTreeOptions());

 private:
  struct Node;
  struct SplitResult;

  Node* ChooseLeaf(Node* node, const Box& box) const;
  void AdjustUpward(Node* node);
  void HandleOverflow(Node* node);
  void SplitNode(Node* node);
  void SplitNodeRStar(Node* node);
  void AttachSibling(Node* node, std::unique_ptr<Node> sibling);
  void CondenseTree(Node* leaf);
  Node* FindLeaf(Node* node, ObjectId id, const Box& box) const;
  void InsertRecord(ObjectId id, const Box& box, bool allow_reinsert);
  void ForcedReinsert(Node* leaf);

  RTreeOptions options_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  bool reinserting_ = false;  // prevents recursive forced reinsertion
};

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_RTREE_RTREE_H_
