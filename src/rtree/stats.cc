#include "rtree/stats.h"

#include <vector>

namespace swiftspatial {

TreeQualityStats ComputeTreeQuality(const PackedRTree& tree) {
  TreeQualityStats out;
  out.num_nodes = tree.num_nodes();
  out.num_leaves = tree.num_leaves();
  out.height = tree.height();

  std::vector<Box> leaf_mbrs;
  leaf_mbrs.reserve(tree.num_leaves());
  double fill = 0;
  for (std::size_t n = 0; n < tree.num_nodes(); ++n) {
    const NodeView nv = tree.node(static_cast<NodeIndex>(n));
    if (!nv.is_leaf()) continue;
    const Box mbr = nv.Mbr();
    leaf_mbrs.push_back(mbr);
    fill += static_cast<double>(nv.count()) / tree.max_entries();
    out.total_leaf_area += mbr.Area();
    out.total_leaf_perimeter += mbr.Perimeter();
  }
  if (!leaf_mbrs.empty()) {
    out.avg_leaf_fill = fill / static_cast<double>(leaf_mbrs.size());
  }
  for (std::size_t i = 0; i < leaf_mbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < leaf_mbrs.size(); ++j) {
      if (Intersects(leaf_mbrs[i], leaf_mbrs[j])) {
        out.leaf_overlap_area += Intersection(leaf_mbrs[i], leaf_mbrs[j]).Area();
      }
    }
  }
  return out;
}

std::vector<ObjectId> WindowQueryCounting(const PackedRTree& tree,
                                          const Box& window,
                                          std::size_t* nodes_visited) {
  std::vector<ObjectId> out;
  std::size_t visited = 0;
  if (tree.num_nodes() > 0) {
    std::vector<NodeIndex> stack = {tree.root()};
    while (!stack.empty()) {
      const NodeView nv = tree.node(stack.back());
      stack.pop_back();
      ++visited;
      const int n = nv.count();
      for (int i = 0; i < n; ++i) {
        const PackedEntry e = nv.entry(i);
        if (!Intersects(e.box, window)) continue;
        if (nv.is_leaf()) {
          out.push_back(e.id);
        } else {
          stack.push_back(e.id);
        }
      }
    }
  }
  if (nodes_visited != nullptr) *nodes_visited = visited;
  return out;
}

double AvgNodeAccesses(const PackedRTree& tree,
                       const std::vector<Box>& windows) {
  if (windows.empty()) return 0;
  std::size_t total = 0;
  for (const Box& w : windows) {
    std::size_t visited = 0;
    WindowQueryCounting(tree, w, &visited);
    total += visited;
  }
  return static_cast<double>(total) / static_cast<double>(windows.size());
}

}  // namespace swiftspatial
