// PackedRTree: an R-tree serialised into the flat, physically-addressed node
// layout the SwiftSpatial accelerator reads from DRAM (§3.5-3.6).
//
// Layout (little-endian):
//   node i occupies bytes [i * node_stride, (i+1) * node_stride)
//   node header (8 bytes): uint16 count | uint8 is_leaf | 5 bytes padding
//   followed by max_entries fixed 20-byte entries:
//     float32 min_x, min_y, max_x, max_y; int32 id
//   `id` is an object id in leaf nodes and a child node index in directory
//   nodes. node_stride is 8 + 20 * max_entries rounded up to 64 bytes (one
//   DDR4 burst).
//
// Both the CPU join baselines and the simulated accelerator traverse this
// same byte image, so algorithm comparisons are apples-to-apples.
#ifndef SWIFTSPATIAL_RTREE_PACKED_RTREE_H_
#define SWIFTSPATIAL_RTREE_PACKED_RTREE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "datagen/dataset.h"
#include "geometry/box.h"

namespace swiftspatial {

/// One node entry: an MBR plus an object id (leaf) or child index
/// (directory). Exactly the accelerator's 20-byte DRAM format.
struct PackedEntry {
  Box box;
  int32_t id = 0;
};
static_assert(sizeof(PackedEntry) == 20, "entry must match the DRAM layout");

/// Node index within a PackedRTree.
using NodeIndex = int32_t;

class PackedRTree;

/// Read-only view over one packed node. Cheap to copy; borrows the tree's
/// buffer.
class NodeView {
 public:
  uint16_t count() const;
  bool is_leaf() const;
  /// Entry i (i < count()).
  PackedEntry entry(int i) const;
  /// Union MBR of all entries.
  Box Mbr() const;

 private:
  friend class PackedRTree;
  explicit NodeView(const uint8_t* base) : base_(base) {}
  const uint8_t* base_;
};

/// Immutable packed R-tree (see file comment for the byte layout).
class PackedRTree {
 public:
  /// Node specification used during construction.
  struct BuildNode {
    bool is_leaf = true;
    std::vector<PackedEntry> entries;
  };

  /// Builds from levels ordered leaf-level first; `levels.back()` must hold
  /// exactly the root. Directory entries reference children by their index
  /// within the next-lower level; FromLevels rewrites them into global node
  /// indices.
  static PackedRTree FromLevels(std::vector<std::vector<BuildNode>> levels,
                                int max_entries);

  int max_entries() const { return max_entries_; }
  int height() const { return height_; }  ///< Levels; 1 = root is a leaf.
  NodeIndex root() const { return root_; }
  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_leaves() const { return num_leaves_; }
  std::size_t num_objects() const { return num_objects_; }
  std::size_t node_stride() const { return node_stride_; }

  /// Raw DRAM image (num_nodes * node_stride bytes).
  const std::vector<uint8_t>& bytes() const { return bytes_; }

  NodeView node(NodeIndex i) const {
    SWIFT_DCHECK(i >= 0 && static_cast<std::size_t>(i) < num_nodes_);
    return NodeView(bytes_.data() + static_cast<std::size_t>(i) * node_stride_);
  }

  /// Byte offset of node i within the image (the accelerator's node
  /// address, relative to the tree's base address).
  std::size_t NodeOffset(NodeIndex i) const {
    return static_cast<std::size_t>(i) * node_stride_;
  }

  /// All object ids whose MBR intersects `window`.
  std::vector<ObjectId> WindowQuery(const Box& window) const;

  /// Structural invariant check: entry counts within bounds, uniform leaf
  /// depth, directory MBRs containing child MBRs, every node reachable
  /// exactly once.
  Status Validate() const;

  /// Total number of objects referenced by leaves (recomputed).
  std::size_t CountObjects() const;

  /// Node stride in bytes for a given fan-out (shared with MemoryLayout).
  static std::size_t StrideFor(int max_entries) {
    const std::size_t raw = 8 + 20 * static_cast<std::size_t>(max_entries);
    return (raw + 63) / 64 * 64;
  }

 private:
  PackedRTree() = default;

  int max_entries_ = 0;
  int height_ = 0;
  NodeIndex root_ = 0;
  std::size_t num_nodes_ = 0;
  std::size_t num_leaves_ = 0;
  std::size_t num_objects_ = 0;
  std::size_t node_stride_ = 0;
  std::vector<uint8_t> bytes_;
};

inline uint16_t NodeView::count() const {
  uint16_t v;
  std::memcpy(&v, base_, sizeof(v));
  return v;
}

inline bool NodeView::is_leaf() const { return base_[2] != 0; }

inline PackedEntry NodeView::entry(int i) const {
  PackedEntry e;
  std::memcpy(&e, base_ + 8 + static_cast<std::size_t>(i) * sizeof(PackedEntry),
              sizeof(e));
  return e;
}

inline Box NodeView::Mbr() const {
  Box out = Box::Empty();
  const int n = count();
  for (int i = 0; i < n; ++i) out.Expand(entry(i).box);
  return out;
}

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_RTREE_PACKED_RTREE_H_
