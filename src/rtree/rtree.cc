#include "rtree/rtree.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/logging.h"

namespace swiftspatial {

const char* InsertionPolicyToString(InsertionPolicy p) {
  switch (p) {
    case InsertionPolicy::kGuttman:
      return "guttman";
    case InsertionPolicy::kRStar:
      return "r-star";
  }
  return "unknown";
}

namespace {

int DefaultMinEntries(int max_entries) {
  // 40% fill is the common dynamic R-tree default; never below 2, never
  // above M/2 (required for splits to succeed).
  return std::clamp(static_cast<int>(max_entries * 0.4), 2, max_entries / 2);
}

// Overlap area of `box` with every sibling MBR except index `skip`
// (R* ChooseSubtree metric).
template <typename Slots>
double OverlapWithSiblings(const Slots& slots, std::size_t skip,
                           const Box& box) {
  double overlap = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i == skip) continue;
    overlap += Intersection(box, slots[i].box).Area();
  }
  return overlap;
}

}  // namespace

struct RTree::Node {
  Node* parent = nullptr;
  bool is_leaf = true;
  struct Slot {
    Box box;
    ObjectId id = 0;                // valid when the node is a leaf
    std::unique_ptr<Node> child;    // valid when the node is a directory
  };
  std::vector<Slot> slots;

  Box Mbr() const {
    Box out = Box::Empty();
    for (const auto& s : slots) out.Expand(s.box);
    return out;
  }
};

RTree::RTree(const RTreeOptions& options) : options_(options) {
  SWIFT_CHECK_GE(options_.max_entries, 4);
  if (options_.min_entries == 0) {
    options_.min_entries = DefaultMinEntries(options_.max_entries);
  }
  SWIFT_CHECK_GE(options_.min_entries, 2);
  SWIFT_CHECK_LE(options_.min_entries, options_.max_entries / 2);
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

int RTree::height() const {
  if (!root_) return 0;
  int h = 1;
  const Node* n = root_.get();
  while (!n->is_leaf) {
    n = n->slots.front().child.get();
    ++h;
  }
  return h;
}

RTree::Node* RTree::ChooseLeaf(Node* node, const Box& box) const {
  while (!node->is_leaf) {
    Node::Slot* best = nullptr;
    const bool children_are_leaves = node->slots.front().child->is_leaf;
    if (options_.policy == InsertionPolicy::kRStar && children_are_leaves) {
      // R* ChooseSubtree at the leaf level: least overlap enlargement,
      // ties broken by area enlargement, then area.
      double best_overlap = std::numeric_limits<double>::infinity();
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < node->slots.size(); ++i) {
        auto& slot = node->slots[i];
        Box merged = slot.box;
        merged.Expand(box);
        const double overlap_delta =
            OverlapWithSiblings(node->slots, i, merged) -
            OverlapWithSiblings(node->slots, i, slot.box);
        const double enlargement = slot.box.Enlargement(box);
        const double area = slot.box.Area();
        const bool better =
            overlap_delta < best_overlap ||
            (overlap_delta == best_overlap &&
             (enlargement < best_enlargement ||
              (enlargement == best_enlargement && area < best_area)));
        if (better) {
          best = &slot;
          best_overlap = overlap_delta;
          best_enlargement = enlargement;
          best_area = area;
        }
      }
    } else {
      // Guttman (and R* at directory levels): least area enlargement.
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (auto& slot : node->slots) {
        const double enlargement = slot.box.Enlargement(box);
        const double area = slot.box.Area();
        if (enlargement < best_enlargement ||
            (enlargement == best_enlargement && area < best_area)) {
          best = &slot;
          best_enlargement = enlargement;
          best_area = area;
        }
      }
    }
    SWIFT_DCHECK(best != nullptr);
    node = best->child.get();
  }
  return node;
}

void RTree::AdjustUpward(Node* node) {
  // Refresh cached slot MBRs along the path to the root.
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    for (auto& slot : parent->slots) {
      if (slot.child.get() == node) {
        slot.box = node->Mbr();
        break;
      }
    }
    node = parent;
  }
}

void RTree::SplitNode(Node* node) {
  // Guttman's quadratic split on node->slots.
  const int m = options_.min_entries;
  auto slots = std::move(node->slots);
  node->slots.clear();

  // Seed selection: the pair wasting the most area if grouped together.
  std::size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    for (std::size_t j = i + 1; j < slots.size(); ++j) {
      Box merged = slots[i].box;
      merged.Expand(slots[j].box);
      const double waste =
          merged.Area() - slots[i].box.Area() - slots[j].box.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;

  Box mbr_a = slots[seed_a].box;
  Box mbr_b = slots[seed_b].box;
  std::vector<Node::Slot> rest;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (i == seed_a) {
      node->slots.push_back(std::move(slots[i]));
    } else if (i == seed_b) {
      sibling->slots.push_back(std::move(slots[i]));
    } else {
      rest.push_back(std::move(slots[i]));
    }
  }

  while (!rest.empty()) {
    // If one group must take all remaining entries to reach the minimum,
    // assign them wholesale.
    const std::size_t remaining = rest.size();
    if (node->slots.size() + remaining == static_cast<std::size_t>(m)) {
      for (auto& s : rest) {
        mbr_a.Expand(s.box);
        node->slots.push_back(std::move(s));
      }
      break;
    }
    if (sibling->slots.size() + remaining == static_cast<std::size_t>(m)) {
      for (auto& s : rest) {
        mbr_b.Expand(s.box);
        sibling->slots.push_back(std::move(s));
      }
      break;
    }
    // PickNext: entry with the greatest preference difference.
    std::size_t pick = 0;
    double best_diff = -1;
    double d_a_pick = 0, d_b_pick = 0;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      const double da = mbr_a.Enlargement(rest[i].box);
      const double db = mbr_b.Enlargement(rest[i].box);
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        d_a_pick = da;
        d_b_pick = db;
      }
    }
    Node::Slot slot = std::move(rest[pick]);
    rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(pick));
    bool to_a;
    if (d_a_pick != d_b_pick) {
      to_a = d_a_pick < d_b_pick;
    } else if (mbr_a.Area() != mbr_b.Area()) {
      to_a = mbr_a.Area() < mbr_b.Area();
    } else {
      to_a = node->slots.size() <= sibling->slots.size();
    }
    if (to_a) {
      mbr_a.Expand(slot.box);
      node->slots.push_back(std::move(slot));
    } else {
      mbr_b.Expand(slot.box);
      sibling->slots.push_back(std::move(slot));
    }
  }

  AttachSibling(node, std::move(sibling));
}

// R* split [11]: choose the split axis by minimum margin sum over all valid
// distributions, then the distribution on that axis with minimum overlap
// (ties: minimum total area).
void RTree::SplitNodeRStar(Node* node) {
  const int m = options_.min_entries;
  auto slots = std::move(node->slots);
  node->slots.clear();
  const int count = static_cast<int>(slots.size());

  // Index orders: {x-min, x-max, y-min, y-max}.
  std::array<std::vector<int>, 4> orders;
  for (auto& o : orders) {
    o.resize(count);
    for (int i = 0; i < count; ++i) o[i] = i;
  }
  auto key = [&slots](int axis_key, int i) -> Coord {
    const Box& b = slots[i].box;
    switch (axis_key) {
      case 0:
        return b.min_x;
      case 1:
        return b.max_x;
      case 2:
        return b.min_y;
      default:
        return b.max_y;
    }
  };
  for (int k = 0; k < 4; ++k) {
    std::sort(orders[k].begin(), orders[k].end(),
              [&](int a, int b) { return key(k, a) < key(k, b); });
  }

  // Prefix/suffix MBRs for one order; distributions split after position
  // k in [m, count - m].
  auto distributions = [&](const std::vector<int>& order,
                           const auto& visit) {
    std::vector<Box> prefix(count), suffix(count);
    Box acc = Box::Empty();
    for (int i = 0; i < count; ++i) {
      acc.Expand(slots[order[i]].box);
      prefix[i] = acc;
    }
    acc = Box::Empty();
    for (int i = count - 1; i >= 0; --i) {
      acc.Expand(slots[order[i]].box);
      suffix[i] = acc;
    }
    for (int k = m; k <= count - m; ++k) {
      visit(prefix[k - 1], suffix[k], k);
    }
  };

  // Axis choice by margin sum (orders 0-1 = x, 2-3 = y).
  double margin[2] = {0, 0};
  for (int k = 0; k < 4; ++k) {
    distributions(orders[k], [&](const Box& a, const Box& b, int) {
      margin[k / 2] += a.Perimeter() + b.Perimeter();
    });
  }
  const int axis = margin[0] <= margin[1] ? 0 : 1;

  // Distribution choice on the winning axis: min overlap, ties min area.
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  int best_order = 2 * axis;
  int best_k = m;
  for (int k = 2 * axis; k < 2 * axis + 2; ++k) {
    distributions(orders[k], [&](const Box& a, const Box& b, int cut) {
      const double overlap = Intersection(a, b).Area();
      const double area = a.Area() + b.Area();
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best_order = k;
        best_k = cut;
      }
    });
  }

  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  const std::vector<int>& order = orders[best_order];
  for (int i = 0; i < count; ++i) {
    auto& dst = i < best_k ? node->slots : sibling->slots;
    dst.push_back(std::move(slots[order[i]]));
  }
  AttachSibling(node, std::move(sibling));
}

void RTree::AttachSibling(Node* node, std::unique_ptr<Node> sibling) {
  // Fix parent pointers of moved children.
  if (!sibling->is_leaf) {
    for (auto& s : sibling->slots) s.child->parent = sibling.get();
  }

  if (node->parent == nullptr) {
    // Grow the tree: new root adopting both halves.
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    auto old_root = std::move(root_);
    old_root->parent = new_root.get();
    sibling->parent = new_root.get();
    new_root->slots.push_back(
        {old_root->Mbr(), 0, std::move(old_root)});
    new_root->slots.push_back({sibling->Mbr(), 0, std::move(sibling)});
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  sibling->parent = parent;
  // Update the slot covering `node`, then add the sibling.
  for (auto& slot : parent->slots) {
    if (slot.child.get() == node) {
      slot.box = node->Mbr();
      break;
    }
  }
  parent->slots.push_back({sibling->Mbr(), 0, std::move(sibling)});
  AdjustUpward(parent);
  if (parent->slots.size() > static_cast<std::size_t>(options_.max_entries)) {
    HandleOverflow(parent);
  }
}

void RTree::HandleOverflow(Node* node) {
  if (options_.policy == InsertionPolicy::kRStar) {
    SplitNodeRStar(node);
  } else {
    SplitNode(node);
  }
}

void RTree::Insert(ObjectId id, const Box& box) {
  InsertRecord(id, box,
               /*allow_reinsert=*/options_.policy == InsertionPolicy::kRStar);
}

void RTree::InsertRecord(ObjectId id, const Box& box, bool allow_reinsert) {
  if (!root_) {
    root_ = std::make_unique<Node>();
    root_->is_leaf = true;
  }
  Node* leaf = ChooseLeaf(root_.get(), box);
  leaf->slots.push_back({box, id, nullptr});
  AdjustUpward(leaf);
  ++size_;
  if (leaf->slots.size() > static_cast<std::size_t>(options_.max_entries)) {
    if (allow_reinsert && !reinserting_ && leaf != root_.get()) {
      ForcedReinsert(leaf);
    } else {
      HandleOverflow(leaf);
    }
  }
}

// R* forced reinsertion [11]: instead of splitting immediately, the p
// entries of the overflowing leaf whose centers lie furthest from the
// node's center are removed and re-inserted, letting them migrate to
// better-fitting nodes. Applied once per public Insert.
void RTree::ForcedReinsert(Node* leaf) {
  const std::size_t count = leaf->slots.size();
  std::size_t p = static_cast<std::size_t>(
      std::ceil(options_.reinsert_fraction * static_cast<double>(count)));
  p = std::clamp<std::size_t>(p, 1,
                              count -
                                  static_cast<std::size_t>(
                                      options_.min_entries));
  const Point center = leaf->Mbr().Center();
  std::sort(leaf->slots.begin(), leaf->slots.end(),
            [&center](const Node::Slot& a, const Node::Slot& b) {
              return Distance(a.box.Center(), center) <
                     Distance(b.box.Center(), center);
            });
  std::vector<std::pair<ObjectId, Box>> evicted;
  evicted.reserve(p);
  for (std::size_t i = count - p; i < count; ++i) {
    evicted.emplace_back(leaf->slots[i].id, leaf->slots[i].box);
  }
  leaf->slots.resize(count - p);
  AdjustUpward(leaf);
  size_ -= evicted.size();

  reinserting_ = true;
  // Re-insert closest-first (the classic "reinsert in increasing distance"
  // variant), allowing splits but no nested reinsertion.
  for (auto it = evicted.rbegin(); it != evicted.rend(); ++it) {
    InsertRecord(it->first, it->second, /*allow_reinsert=*/false);
  }
  reinserting_ = false;
}

RTree::Node* RTree::FindLeaf(Node* node, ObjectId id, const Box& box) const {
  if (node->is_leaf) {
    for (const auto& slot : node->slots) {
      if (slot.id == id && slot.box == box) return node;
    }
    return nullptr;
  }
  for (const auto& slot : node->slots) {
    if (Contains(slot.box, box)) {
      Node* found = FindLeaf(slot.child.get(), id, box);
      if (found != nullptr) return found;
    }
  }
  return nullptr;
}

void RTree::CondenseTree(Node* leaf) {
  // Walk upward removing underfull nodes; re-insert orphaned records.
  std::vector<std::unique_ptr<Node>> orphans;
  Node* node = leaf;
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    if (node->slots.size() < static_cast<std::size_t>(options_.min_entries)) {
      // Detach `node` from its parent.
      for (std::size_t i = 0; i < parent->slots.size(); ++i) {
        if (parent->slots[i].child.get() == node) {
          orphans.push_back(std::move(parent->slots[i].child));
          parent->slots.erase(parent->slots.begin() +
                              static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    } else {
      // Tighten the covering MBR.
      for (auto& slot : parent->slots) {
        if (slot.child.get() == node) {
          slot.box = node->Mbr();
          break;
        }
      }
    }
    node = parent;
  }

  // Shrink the root if it lost all but one child.
  if (!root_->is_leaf && root_->slots.size() == 1) {
    auto child = std::move(root_->slots.front().child);
    child->parent = nullptr;
    root_ = std::move(child);
  }
  if (root_->is_leaf && root_->slots.empty()) {
    root_.reset();
  }

  // Re-insert all records from orphaned subtrees.
  std::vector<std::pair<ObjectId, Box>> records;
  std::vector<Node*> stack;
  for (auto& o : orphans) stack.push_back(o.get());
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      for (const auto& s : n->slots) records.emplace_back(s.id, s.box);
    } else {
      for (const auto& s : n->slots) stack.push_back(s.child.get());
    }
  }
  size_ -= records.size();
  for (const auto& [id, box] : records) Insert(id, box);
}

Status RTree::Delete(ObjectId id, const Box& box) {
  if (!root_) return Status::NotFound("delete from empty tree");
  Node* leaf = FindLeaf(root_.get(), id, box);
  if (leaf == nullptr) {
    return Status::NotFound("record not found: id=" + std::to_string(id));
  }
  for (std::size_t i = 0; i < leaf->slots.size(); ++i) {
    if (leaf->slots[i].id == id && leaf->slots[i].box == box) {
      leaf->slots.erase(leaf->slots.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  --size_;
  CondenseTree(leaf);
  return Status::OK();
}

std::vector<ObjectId> RTree::WindowQuery(const Box& window) const {
  std::vector<ObjectId> out;
  if (!root_) return out;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    for (const auto& slot : n->slots) {
      if (!Intersects(slot.box, window)) continue;
      if (n->is_leaf) {
        out.push_back(slot.id);
      } else {
        stack.push_back(slot.child.get());
      }
    }
  }
  return out;
}

Status RTree::Validate() const {
  if (!root_) {
    if (size_ != 0) return Status::Corruption("empty tree with nonzero size");
    return Status::OK();
  }
  struct Item {
    const Node* node;
    int depth;
  };
  std::vector<Item> stack = {{root_.get(), 0}};
  int leaf_depth = -1;
  std::size_t records = 0;
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    const bool is_root = node == root_.get();
    const auto count = node->slots.size();
    if (!is_root && count < static_cast<std::size_t>(options_.min_entries)) {
      return Status::Corruption("node underflow");
    }
    if (count > static_cast<std::size_t>(options_.max_entries)) {
      return Status::Corruption("node overflow");
    }
    if (node->is_leaf) {
      if (leaf_depth == -1) leaf_depth = depth;
      if (leaf_depth != depth) {
        return Status::Corruption("leaves at different depths");
      }
      records += count;
    } else {
      if (is_root && count < 2) {
        return Status::Corruption("directory root with fewer than 2 children");
      }
      for (const auto& slot : node->slots) {
        if (slot.child->parent != node) {
          return Status::Corruption("broken parent pointer");
        }
        if (!Contains(slot.box, slot.child->Mbr())) {
          return Status::Corruption("slot MBR does not cover child");
        }
        stack.push_back({slot.child.get(), depth + 1});
      }
    }
  }
  if (records != size_) {
    return Status::Corruption("record count mismatch: " +
                              std::to_string(records) + " vs " +
                              std::to_string(size_));
  }
  return Status::OK();
}

PackedRTree RTree::Pack() const {
  SWIFT_CHECK(root_ != nullptr) << "cannot pack an empty tree";
  // Gather nodes per depth (root depth 0).
  std::vector<std::vector<const Node*>> by_depth;
  struct Item {
    const Node* node;
    int depth;
  };
  std::vector<Item> stack = {{root_.get(), 0}};
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    if (by_depth.size() <= static_cast<std::size_t>(depth)) {
      by_depth.resize(depth + 1);
    }
    by_depth[depth].push_back(node);
    if (!node->is_leaf) {
      for (const auto& slot : node->slots) {
        stack.push_back({slot.child.get(), depth + 1});
      }
    }
  }

  // Local index of each node within its level.
  std::vector<std::vector<PackedRTree::BuildNode>> levels(by_depth.size());
  // Level-local index of every node in the level below the current one.
  std::unordered_map<const Node*, int32_t> lower;

  for (std::size_t d = by_depth.size(); d-- > 0;) {
    std::unordered_map<const Node*, int32_t> current;
    current.reserve(by_depth[d].size());
    auto& level_out = levels[by_depth.size() - 1 - d];  // leaf-first ordering
    for (const Node* node : by_depth[d]) {
      current.emplace(node, static_cast<int32_t>(current.size()));
      PackedRTree::BuildNode bn;
      bn.is_leaf = node->is_leaf;
      for (const auto& slot : node->slots) {
        int32_t ref;
        if (node->is_leaf) {
          ref = slot.id;
        } else {
          auto it = lower.find(slot.child.get());
          SWIFT_CHECK(it != lower.end());
          ref = it->second;
        }
        bn.entries.push_back({slot.box, ref});
      }
      level_out.push_back(std::move(bn));
    }
    lower = std::move(current);
  }
  return PackedRTree::FromLevels(std::move(levels), options_.max_entries);
}

RTree RTree::BuildByInsertion(const Dataset& dataset,
                              const RTreeOptions& options) {
  RTree tree(options);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    tree.Insert(static_cast<ObjectId>(i), dataset.box(i));
  }
  return tree;
}

}  // namespace swiftspatial
