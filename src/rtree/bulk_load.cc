#include "rtree/bulk_load.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "geometry/hilbert.h"

namespace swiftspatial {

namespace {

// Sorts `items` with `cmp`, splitting into per-thread runs followed by
// pairwise merges. Parallel STL execution policies require TBB, so we roll a
// small merge sort on std::thread.
template <typename T, typename Cmp>
void ParallelSort(std::vector<T>* items, std::size_t num_threads, Cmp cmp) {
  const std::size_t n = items->size();
  if (num_threads <= 1 || n < 1u << 14) {
    std::sort(items->begin(), items->end(), cmp);
    return;
  }
  const std::size_t chunks = std::min(num_threads, n);
  std::vector<std::size_t> bounds(chunks + 1);
  for (std::size_t i = 0; i <= chunks; ++i) bounds[i] = n * i / chunks;

  std::vector<std::thread> workers;
  workers.reserve(chunks);
  for (std::size_t i = 0; i < chunks; ++i) {
    workers.emplace_back([items, &bounds, i, cmp] {
      std::sort(items->begin() + bounds[i], items->begin() + bounds[i + 1],
                cmp);
    });
  }
  for (auto& w : workers) w.join();

  // Pairwise in-place merges; log2(chunks) passes.
  std::vector<std::size_t> cuts(bounds.begin(), bounds.end());
  while (cuts.size() > 2) {
    std::vector<std::size_t> next_cuts;
    next_cuts.push_back(cuts.front());
    std::vector<std::thread> mergers;
    for (std::size_t i = 0; i + 2 < cuts.size(); i += 2) {
      const std::size_t lo = cuts[i], mid = cuts[i + 1], hi = cuts[i + 2];
      mergers.emplace_back([items, lo, mid, hi, cmp] {
        std::inplace_merge(items->begin() + lo, items->begin() + mid,
                           items->begin() + hi, cmp);
      });
      next_cuts.push_back(hi);
    }
    if (cuts.size() % 2 == 0) next_cuts.push_back(cuts.back());
    for (auto& m : mergers) m.join();
    cuts = std::move(next_cuts);
  }
}

// Packs a sorted run of entries into nodes of at most `max_entries`,
// balancing the last two nodes so no node underflows below half of
// max_entries (keeps m <= count <= M invariants for m = M/2, except when
// fewer than m objects exist in total).
std::vector<PackedRTree::BuildNode> PackRun(
    const std::vector<PackedEntry>& entries, bool is_leaf, int max_entries) {
  std::vector<PackedRTree::BuildNode> nodes;
  const std::size_t n = entries.size();
  const std::size_t m = static_cast<std::size_t>(max_entries);
  if (n == 0) return nodes;
  const std::size_t num_nodes = (n + m - 1) / m;
  nodes.reserve(num_nodes);
  // Distribute as evenly as possible: each node gets n/num_nodes or +1.
  const std::size_t base = n / num_nodes;
  const std::size_t rem = n % num_nodes;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < num_nodes; ++i) {
    const std::size_t take = base + (i < rem ? 1 : 0);
    PackedRTree::BuildNode node;
    node.is_leaf = is_leaf;
    node.entries.assign(entries.begin() + pos, entries.begin() + pos + take);
    pos += take;
    nodes.push_back(std::move(node));
  }
  SWIFT_CHECK_EQ(pos, n);
  return nodes;
}

// One STR tiling pass: entries -> one level of nodes.
std::vector<PackedRTree::BuildNode> StrTile(std::vector<PackedEntry> entries,
                                            bool is_leaf, int max_entries,
                                            std::size_t num_threads) {
  const std::size_t n = entries.size();
  const std::size_t cap = static_cast<std::size_t>(max_entries);
  if (n <= cap) {
    return PackRun(entries, is_leaf, max_entries);
  }
  const std::size_t num_nodes = (n + cap - 1) / cap;
  const std::size_t num_slabs = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_nodes))));
  const std::size_t slab_size = (n + num_slabs - 1) / num_slabs;

  auto by_cx = [](const PackedEntry& a, const PackedEntry& b) {
    const Coord ax = a.box.min_x + a.box.max_x;
    const Coord bx = b.box.min_x + b.box.max_x;
    if (ax != bx) return ax < bx;
    return a.id < b.id;
  };
  auto by_cy = [](const PackedEntry& a, const PackedEntry& b) {
    const Coord ay = a.box.min_y + a.box.max_y;
    const Coord by = b.box.min_y + b.box.max_y;
    if (ay != by) return ay < by;
    return a.id < b.id;
  };

  ParallelSort(&entries, num_threads, by_cx);

  std::vector<PackedRTree::BuildNode> level;
  for (std::size_t slab_begin = 0; slab_begin < n; slab_begin += slab_size) {
    const std::size_t slab_end = std::min(slab_begin + slab_size, n);
    std::vector<PackedEntry> slab(entries.begin() + slab_begin,
                                  entries.begin() + slab_end);
    ParallelSort(&slab, num_threads, by_cy);
    auto nodes = PackRun(slab, is_leaf, max_entries);
    for (auto& node : nodes) level.push_back(std::move(node));
  }
  return level;
}

// Builds directory levels above `level` until a single root remains, using
// `tile` to group one level into the next.
template <typename TileFn>
PackedRTree BuildUp(std::vector<PackedRTree::BuildNode> level, int max_entries,
                    TileFn tile) {
  std::vector<std::vector<PackedRTree::BuildNode>> levels;
  levels.push_back(std::move(level));
  while (levels.back().size() > 1) {
    const auto& below = levels.back();
    std::vector<PackedEntry> parents_entries;
    parents_entries.reserve(below.size());
    for (std::size_t i = 0; i < below.size(); ++i) {
      Box mbr = Box::Empty();
      for (const auto& e : below[i].entries) mbr.Expand(e.box);
      parents_entries.push_back({mbr, static_cast<int32_t>(i)});
    }
    levels.push_back(tile(std::move(parents_entries), /*is_leaf=*/false));
  }
  return PackedRTree::FromLevels(std::move(levels), max_entries);
}

std::vector<PackedEntry> DatasetEntries(const Dataset& dataset) {
  std::vector<PackedEntry> entries;
  entries.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    entries.push_back({dataset.box(i), static_cast<int32_t>(i)});
  }
  return entries;
}

}  // namespace

PackedRTree StrBulkLoad(const Dataset& dataset,
                        const BulkLoadOptions& options) {
  SWIFT_CHECK_GE(options.max_entries, 2);
  SWIFT_CHECK(!dataset.empty());
  auto tile = [&options](std::vector<PackedEntry> entries, bool is_leaf) {
    return StrTile(std::move(entries), is_leaf, options.max_entries,
                   options.num_threads);
  };
  auto leaves = tile(DatasetEntries(dataset), /*is_leaf=*/true);
  return BuildUp(std::move(leaves), options.max_entries, tile);
}

PackedRTree HilbertBulkLoad(const Dataset& dataset,
                            const BulkLoadOptions& options) {
  SWIFT_CHECK_GE(options.max_entries, 2);
  SWIFT_CHECK(!dataset.empty());
  const Box extent = dataset.Extent();
  constexpr uint32_t kOrder = 16;  // 65536 x 65536 Hilbert grid
  const double sx =
      extent.Width() > 0 ? ((1u << kOrder) - 1) / static_cast<double>(extent.Width())
                         : 0.0;
  const double sy =
      extent.Height() > 0
          ? ((1u << kOrder) - 1) / static_cast<double>(extent.Height())
          : 0.0;

  struct Keyed {
    uint64_t key;
    PackedEntry entry;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Box& b = dataset.box(i);
    const Point c = b.Center();
    const uint32_t gx =
        static_cast<uint32_t>((static_cast<double>(c.x) - extent.min_x) * sx);
    const uint32_t gy =
        static_cast<uint32_t>((static_cast<double>(c.y) - extent.min_y) * sy);
    keyed.push_back(
        {HilbertD2XYInverse(kOrder, gx, gy), {b, static_cast<int32_t>(i)}});
  }
  ParallelSort(&keyed, options.num_threads,
               [](const Keyed& a, const Keyed& b) {
                 if (a.key != b.key) return a.key < b.key;
                 return a.entry.id < b.entry.id;
               });
  std::vector<PackedEntry> sorted;
  sorted.reserve(keyed.size());
  for (const auto& k : keyed) sorted.push_back(k.entry);

  auto pack = [&options](std::vector<PackedEntry> entries, bool is_leaf) {
    return PackRun(entries, is_leaf, options.max_entries);
  };
  auto leaves = pack(std::move(sorted), /*is_leaf=*/true);
  return BuildUp(std::move(leaves), options.max_entries, pack);
}

}  // namespace swiftspatial
