#include "rtree/packed_rtree.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string>

#include "join/simd_filter.h"

namespace swiftspatial {

PackedRTree PackedRTree::FromLevels(
    std::vector<std::vector<BuildNode>> levels, int max_entries) {
  SWIFT_CHECK(!levels.empty());
  SWIFT_CHECK_GE(max_entries, 2);
  SWIFT_CHECK_EQ(levels.back().size(), 1u);  // single root

  PackedRTree tree;
  tree.max_entries_ = max_entries;
  tree.height_ = static_cast<int>(levels.size());
  tree.node_stride_ = StrideFor(max_entries);
  tree.num_leaves_ = levels.front().size();

  std::size_t total = 0;
  for (const auto& level : levels) total += level.size();
  tree.num_nodes_ = total;
  tree.bytes_.assign(total * tree.node_stride_, 0);

  // Assign global indices level by level, leaves first.
  std::vector<NodeIndex> level_base(levels.size());
  NodeIndex next = 0;
  for (std::size_t l = 0; l < levels.size(); ++l) {
    level_base[l] = next;
    next += static_cast<NodeIndex>(levels[l].size());
  }
  tree.root_ = level_base.back();

  std::size_t objects = 0;
  for (std::size_t l = 0; l < levels.size(); ++l) {
    for (std::size_t n = 0; n < levels[l].size(); ++n) {
      const BuildNode& src = levels[l][n];
      SWIFT_CHECK_LE(src.entries.size(),
                     static_cast<std::size_t>(max_entries));
      uint8_t* base =
          tree.bytes_.data() +
          static_cast<std::size_t>(level_base[l] + static_cast<NodeIndex>(n)) *
              tree.node_stride_;
      const uint16_t count = static_cast<uint16_t>(src.entries.size());
      std::memcpy(base, &count, sizeof(count));
      base[2] = src.is_leaf ? 1 : 0;
      for (std::size_t e = 0; e < src.entries.size(); ++e) {
        PackedEntry entry = src.entries[e];
        if (!src.is_leaf) {
          // Child references are level-local during construction; rewrite to
          // global node indices.
          SWIFT_CHECK_GT(l, 0u);
          SWIFT_CHECK(entry.id >= 0 &&
                      static_cast<std::size_t>(entry.id) < levels[l - 1].size());
          entry.id += level_base[l - 1];
        } else {
          ++objects;
        }
        std::memcpy(base + 8 + e * sizeof(PackedEntry), &entry, sizeof(entry));
      }
    }
  }
  tree.num_objects_ = objects;
  return tree;
}

std::vector<ObjectId> PackedRTree::WindowQuery(const Box& window) const {
  std::vector<ObjectId> out;
  if (num_nodes_ == 0) return out;
  // Node entries live in the accelerator's strided 20-byte AoS layout, so
  // each visited node is gathered into a small stack-resident SoA chunk and
  // scanned with the batched filter kernel instead of per-entry Intersects
  // calls. Matching entries are emitted in ascending entry order, identical
  // to the original scalar scan.
  constexpr int kChunk = 64;
  Coord min_x[kChunk], min_y[kChunk], max_x[kChunk], max_y[kChunk];
  int32_t ids[kChunk];
  std::vector<NodeIndex> stack = {root_};
  while (!stack.empty()) {
    const NodeView nv = node(stack.back());
    stack.pop_back();
    const int n = nv.count();
    const bool leaf = nv.is_leaf();
    for (int base = 0; base < n; base += kChunk) {
      const int m = std::min(kChunk, n - base);
      for (int i = 0; i < m; ++i) {
        const PackedEntry e = nv.entry(base + i);
        min_x[i] = e.box.min_x;
        min_y[i] = e.box.min_y;
        max_x[i] = e.box.max_x;
        max_y[i] = e.box.max_y;
        ids[i] = e.id;
      }
      uint64_t mask = 0;
      FilterSoA(window, min_x, min_y, max_x, max_y,
                static_cast<std::size_t>(m), &mask);
      while (mask != 0) {
        const int i = std::countr_zero(mask);
        mask &= mask - 1;
        if (leaf) {
          out.push_back(ids[i]);
        } else {
          stack.push_back(ids[i]);
        }
      }
    }
  }
  return out;
}

std::size_t PackedRTree::CountObjects() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    const NodeView nv = node(static_cast<NodeIndex>(i));
    if (nv.is_leaf()) total += nv.count();
  }
  return total;
}

Status PackedRTree::Validate() const {
  if (num_nodes_ == 0) return Status::OK();
  std::vector<int> visited(num_nodes_, 0);
  // (node, depth) DFS from the root.
  struct Item {
    NodeIndex idx;
    int depth;
  };
  std::vector<Item> stack = {{root_, 0}};
  int leaf_depth = -1;
  std::size_t reached = 0;
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    if (item.idx < 0 || static_cast<std::size_t>(item.idx) >= num_nodes_) {
      return Status::Corruption("child index out of range: " +
                                std::to_string(item.idx));
    }
    if (visited[item.idx]++) {
      return Status::Corruption("node visited twice: " +
                                std::to_string(item.idx));
    }
    ++reached;
    const NodeView nv = node(item.idx);
    const int n = nv.count();
    if (n == 0 && num_objects_ > 0) {
      return Status::Corruption("empty node: " + std::to_string(item.idx));
    }
    if (n > max_entries_) {
      return Status::Corruption("node overflow: " + std::to_string(item.idx));
    }
    if (nv.is_leaf()) {
      if (leaf_depth == -1) leaf_depth = item.depth;
      if (leaf_depth != item.depth) {
        return Status::Corruption("leaves at different depths");
      }
    } else {
      for (int i = 0; i < n; ++i) {
        const PackedEntry e = nv.entry(i);
        const NodeView child = node(e.id);
        if (!Contains(e.box, child.Mbr())) {
          return Status::Corruption("directory MBR does not cover child " +
                                    std::to_string(e.id));
        }
        stack.push_back({e.id, item.depth + 1});
      }
    }
  }
  if (reached != num_nodes_) {
    return Status::Corruption("unreachable nodes: " +
                              std::to_string(num_nodes_ - reached) +
                              " of " + std::to_string(num_nodes_));
  }
  if (CountObjects() != num_objects_) {
    return Status::Corruption("object count mismatch");
  }
  return Status::OK();
}

}  // namespace swiftspatial
