// R-tree topology quality metrics (§2.2: "Bulk-loading produces superior
// R-tree topologies compared to dynamically constructed R-trees, improving
// query performance"). Quality is quantified the classic way: leaf fill
// factor, total leaf area/perimeter, pairwise leaf overlap, and measured
// node accesses per window query.
#ifndef SWIFTSPATIAL_RTREE_STATS_H_
#define SWIFTSPATIAL_RTREE_STATS_H_

#include <cstddef>
#include <vector>

#include "datagen/dataset.h"
#include "rtree/packed_rtree.h"

namespace swiftspatial {

struct TreeQualityStats {
  std::size_t num_nodes = 0;
  std::size_t num_leaves = 0;
  int height = 0;
  /// Mean leaf entries / max_entries.
  double avg_leaf_fill = 0;
  /// Sum of leaf MBR areas (dead space indicator).
  double total_leaf_area = 0;
  /// Sum of leaf MBR perimeters (the R* split objective).
  double total_leaf_perimeter = 0;
  /// Sum of pairwise intersection areas between leaf MBRs; the main driver
  /// of wasted traversal work.
  double leaf_overlap_area = 0;
};

/// Computes topology metrics for a packed tree. Leaf overlap is O(L^2) in
/// the number of leaves; intended for analysis, not hot paths.
TreeQualityStats ComputeTreeQuality(const PackedRTree& tree);

/// Runs a window query and returns the ids, counting touched nodes.
std::vector<ObjectId> WindowQueryCounting(const PackedRTree& tree,
                                          const Box& window,
                                          std::size_t* nodes_visited);

/// Mean nodes visited over a batch of windows.
double AvgNodeAccesses(const PackedRTree& tree,
                       const std::vector<Box>& windows);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_RTREE_STATS_H_
