#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

#include "obs/log.h"

namespace swiftspatial::obs {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

namespace {

uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string JsonEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string FormatUint(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string FormatMicros(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

}  // namespace

TraceContext TraceContext::StartTrace(SpanBuffer* buffer) {
  TraceContext ctx;
#ifndef SWIFTSPATIAL_OBS_OFF
  if (buffer != nullptr) {
    ctx.buffer_ = buffer;
    ctx.trace_id_ = NextTraceId();
    ctx.parent_span_ = 0;
    TraceEpoch();  // pin the epoch no later than the first trace
  }
#else
  (void)buffer;
#endif
  return ctx;
}

ScopedSpan::ScopedSpan(const TraceContext& ctx, std::string name, int track) {
#ifndef SWIFTSPATIAL_OBS_OFF
  if (!ctx.active()) return;
  buffer_ = ctx.buffer();
  record_.trace_id = ctx.trace_id();
  record_.span_id = NextSpanId();
  record_.parent_id = ctx.parent_span();
  record_.name = std::move(name);
  record_.track = track;
  start_tp_ = std::chrono::steady_clock::now();
  record_.start_seconds =
      std::chrono::duration<double>(start_tp_ - TraceEpoch()).count();
  buffer_->NoteStarted();
#else
  (void)ctx;
  (void)name;
  (void)track;
#endif
}

ScopedSpan::ScopedSpan(ScopedSpan&& other) noexcept
    : buffer_(other.buffer_),
      record_(std::move(other.record_)),
      start_tp_(other.start_tp_),
      min_record_seconds_(other.min_record_seconds_) {
  other.buffer_ = nullptr;
}

ScopedSpan& ScopedSpan::operator=(ScopedSpan&& other) noexcept {
  if (this != &other) {
    End();
    buffer_ = other.buffer_;
    record_ = std::move(other.record_);
    start_tp_ = other.start_tp_;
    min_record_seconds_ = other.min_record_seconds_;
    other.buffer_ = nullptr;
  }
  return *this;
}

void ScopedSpan::AddAttr(std::string key, std::string value) {
#ifndef SWIFTSPATIAL_OBS_OFF
  if (buffer_ == nullptr) return;
  record_.attrs.emplace_back(std::move(key), std::move(value));
#else
  (void)key;
  (void)value;
#endif
}

void ScopedSpan::End() {
#ifndef SWIFTSPATIAL_OBS_OFF
  if (buffer_ == nullptr) return;
  record_.duration_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_tp_)
          .count();
  SpanBuffer* buffer = buffer_;
  buffer_ = nullptr;  // idempotence: further End()/dtor are no-ops
  if (record_.duration_seconds < min_record_seconds_) {
    buffer->NoteElided();
    return;
  }
  buffer->Record(std::move(record_));
#endif
}

TraceContext ScopedSpan::context() const {
  TraceContext ctx;
#ifndef SWIFTSPATIAL_OBS_OFF
  if (buffer_ == nullptr) return ctx;
  ctx.buffer_ = buffer_;
  ctx.trace_id_ = record_.trace_id;
  ctx.parent_span_ = record_.span_id;
#endif
  return ctx;
}

SpanBuffer& SpanBuffer::Global() {
  static SpanBuffer* instance = new SpanBuffer();
  return *instance;
}

void SpanBuffer::Record(SpanRecord span) {
  bool first_drop = false;
  {
    MutexLock lock(&mu_);
    if (spans_.size() >= capacity_) {
      spans_.pop_front();
      first_drop = dropped_.fetch_add(1, std::memory_order_relaxed) == 0;
    }
    spans_.push_back(std::move(span));
  }
  finished_.fetch_add(1, std::memory_order_acq_rel);
  // Rate-limited by construction -- only the 0 -> 1 transition of the drop
  // counter logs, so a sustained overflow storm emits exactly one warning
  // per buffer lifetime while swiftspatial_obs_spans_dropped (the exported
  // self-metric) carries the running count.
  if (first_drop) {
    SWIFT_LOG(Warn, "obs",
              "span buffer full; dropping oldest spans from here on")
        .With("capacity", capacity_);
  }
}

std::vector<SpanRecord> SpanBuffer::Snapshot() const {
  MutexLock lock(&mu_);
  return std::vector<SpanRecord>(spans_.begin(), spans_.end());
}

void SpanBuffer::Clear() {
  MutexLock lock(&mu_);
  spans_.clear();
}

std::size_t SpanBuffer::size() const {
  MutexLock lock(&mu_);
  return spans_.size();
}

std::string SpanBuffer::ChromeTraceJson() const {
  const std::vector<SpanRecord> spans = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscape(span.name) + "\"";
    out += ",\"cat\":\"swiftspatial\",\"ph\":\"X\"";
    out += ",\"ts\":" + FormatMicros(span.start_seconds);
    out += ",\"dur\":" + FormatMicros(span.duration_seconds);
    out += ",\"pid\":" + FormatUint(span.trace_id);
    out += ",\"tid\":" + FormatUint(static_cast<uint64_t>(span.track));
    out += ",\"args\":{\"span_id\":" + FormatUint(span.span_id);
    out += ",\"parent_id\":" + FormatUint(span.parent_id);
    for (const auto& [k, v] : span.attrs) {
      out += ",\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace swiftspatial::obs
