#include "obs/exposition_server.h"

#include <utility>

#ifndef SWIFTSPATIAL_OBS_OFF
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/self_metrics.h"
#endif

namespace swiftspatial::obs {

ExpositionServer::ExpositionServer(Options options)
    : options_(std::move(options)) {}

ExpositionServer::~ExpositionServer() { Stop(); }

#ifndef SWIFTSPATIAL_OBS_OFF

namespace {

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

// Writes the whole buffer, retrying on short writes and EINTR. Best-effort:
// a peer that hangs up mid-response is its own problem, not ours.
void WriteAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;
  }
}

}  // namespace

Status ExpositionServer::Start() {
  if (listen_fd_.load(std::memory_order_acquire) >= 0) {
    return Status::InvalidArgument("exposition server already started");
  }
  if (stopping_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("exposition server is not restartable");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket(): " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string msg = std::strerror(errno);
    ::close(fd);
    return Status::IOError("bind(port " + std::to_string(options_.port) +
                           "): " + msg);
  }
  if (::listen(fd, 16) != 0) {
    const std::string msg = std::strerror(errno);
    ::close(fd);
    return Status::IOError("listen(): " + msg);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string msg = std::strerror(errno);
    ::close(fd);
    return Status::IOError("getsockname(): " + msg);
  }
  port_.store(static_cast<int>(ntohs(bound.sin_port)),
              std::memory_order_release);
  listen_fd_.store(fd, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  SWIFT_LOG(Info, "obs", "exposition server listening").With("port", static_cast<uint64_t>(port()));
  return Status::OK();
}

void ExpositionServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // Unblocks the accept() in Serve(); the thread then observes stopping_.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (thread_.joinable()) thread_.join();
}

void ExpositionServer::Serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) break;
    const int conn = ::accept(lfd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;  // Listening socket was shut down (or a fatal socket error).
    }
    // One read is enough for a scrape request line; pipelining unsupported.
    char buf[2048];
    const ssize_t n = ::read(conn, buf, sizeof(buf) - 1);
    if (n > 0) {
      buf[n] = '\0';
      std::string path = "/";
      const char* sp = std::strchr(buf, ' ');
      if (sp != nullptr) {
        const char* end = std::strchr(sp + 1, ' ');
        if (end != nullptr) path.assign(sp + 1, end);
      }
      WriteAll(conn, HandleRequest(path));
      served_.fetch_add(1, std::memory_order_relaxed);
    }
    ::close(conn);
  }
}

std::string ExpositionServer::HandleRequest(const std::string& path) {
  if (path == "/metrics") {
    MetricsRegistry& reg = options_.registry != nullptr
                               ? *options_.registry
                               : MetricsRegistry::Global();
    ExportSelfMetrics(&reg, options_.spans);
    return HttpResponse(200, "OK", "text/plain; version=0.0.4",
                        reg.TextExposition());
  }
  if (path == "/healthz") {
    return HttpResponse(200, "OK", "text/plain", "ok\n");
  }
  if (path == "/readyz") {
    const bool ready = !options_.ready || options_.ready();
    return ready
               ? HttpResponse(200, "OK", "text/plain", "ready\n")
               : HttpResponse(503, "Service Unavailable", "text/plain",
                              "not ready\n");
  }
  return HttpResponse(404, "Not Found", "text/plain", "not found\n");
}

#else  // SWIFTSPATIAL_OBS_OFF

Status ExpositionServer::Start() {
  return Status::NotSupported(
      "exposition server compiled out (SWIFTSPATIAL_OBS_OFF)");
}

void ExpositionServer::Stop() {}

void ExpositionServer::Serve() {}

std::string ExpositionServer::HandleRequest(const std::string&) { return {}; }

#endif  // SWIFTSPATIAL_OBS_OFF

}  // namespace swiftspatial::obs
