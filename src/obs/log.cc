#include "obs/log.h"

#include <cinttypes>
#include <chrono>

#include "obs/trace.h"

namespace swiftspatial::obs {

namespace {

#ifndef SWIFTSPATIAL_OBS_OFF
thread_local LogTraceIds tls_log_trace;
#endif

std::string EscapeQuoted(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string FormatUint(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

// Bare-word values (ints, plain identifiers) stay unquoted in key=value
// output so the common numeric fields read naturally; anything else is
// quoted and escaped.
bool IsBareWord(const std::string& v) {
  if (v.empty()) return false;
  for (char c : v) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.' || c == '+';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

Logger& Logger::Global() {
  static Logger* instance = new Logger();
  return *instance;
}

void Logger::Log(LogRecord record) {
#ifndef SWIFTSPATIAL_OBS_OFF
  if (record.ts_seconds == 0) {
    record.ts_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - TraceEpoch())
                            .count();
  }
  if (record.trace_id == 0 && record.span_id == 0) {
    record.trace_id = tls_log_trace.trace_id;
    record.span_id = tls_log_trace.span_id;
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(&mu_);
  if (sink_ != nullptr) {
    const std::string line = sink_format_ == SinkFormat::kJsonLines
                                 ? FormatJsonLine(record)
                                 : FormatKeyValue(record);
    std::fprintf(sink_, "%s\n", line.c_str());
  }
  if (records_.size() >= capacity_) {
    records_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  records_.push_back(std::move(record));
#else
  (void)record;
#endif
}

void Logger::SetStreamSink(std::FILE* stream, SinkFormat format) {
#ifndef SWIFTSPATIAL_OBS_OFF
  MutexLock lock(&mu_);
  sink_ = stream;
  sink_format_ = format;
#else
  (void)stream;
  (void)format;
#endif
}

std::vector<LogRecord> Logger::Snapshot() const {
  MutexLock lock(&mu_);
  return std::vector<LogRecord>(records_.begin(), records_.end());
}

void Logger::Clear() {
  MutexLock lock(&mu_);
  records_.clear();
}

std::size_t Logger::size() const {
  MutexLock lock(&mu_);
  return records_.size();
}

std::string Logger::FormatKeyValue(const LogRecord& record) {
  char ts[48];
  std::snprintf(ts, sizeof(ts), "%.6f", record.ts_seconds);
  std::string out = "ts=";
  out += ts;
  out += " level=";
  out += LogLevelName(record.level);
  out += " component=";
  out += record.component;
  if (record.trace_id != 0) {
    out += " trace=" + FormatUint(record.trace_id);
    out += " span=" + FormatUint(record.span_id);
  }
  out += " msg=\"" + EscapeQuoted(record.message) + "\"";
  for (const auto& [k, v] : record.fields) {
    out += " " + k + "=";
    if (IsBareWord(v)) {
      out += v;
    } else {
      out += "\"" + EscapeQuoted(v) + "\"";
    }
  }
  return out;
}

std::string Logger::FormatJsonLine(const LogRecord& record) {
  char ts[48];
  std::snprintf(ts, sizeof(ts), "%.6f", record.ts_seconds);
  std::string out = "{\"ts\":";
  out += ts;
  out += ",\"level\":\"";
  out += LogLevelName(record.level);
  out += "\",\"component\":\"" + EscapeQuoted(record.component) + "\"";
  if (record.trace_id != 0) {
    out += ",\"trace\":" + FormatUint(record.trace_id);
    out += ",\"span\":" + FormatUint(record.span_id);
  }
  out += ",\"msg\":\"" + EscapeQuoted(record.message) + "\"";
  for (const auto& [k, v] : record.fields) {
    out += ",\"" + EscapeQuoted(k) + "\":\"" + EscapeQuoted(v) + "\"";
  }
  out += "}";
  return out;
}

LogTraceIds CurrentLogTrace() {
#ifndef SWIFTSPATIAL_OBS_OFF
  return tls_log_trace;
#else
  return LogTraceIds{};
#endif
}

ScopedLogTrace::ScopedLogTrace(uint64_t trace_id, uint64_t span_id)
#ifndef SWIFTSPATIAL_OBS_OFF
    : saved_(tls_log_trace) {
  tls_log_trace = LogTraceIds{trace_id, span_id};
}
#else
{
  (void)trace_id;
  (void)span_id;
}
#endif

ScopedLogTrace::~ScopedLogTrace() {
#ifndef SWIFTSPATIAL_OBS_OFF
  tls_log_trace = saved_;
#endif
}

LogEvent& LogEvent::With(std::string key, double value) {
#ifndef SWIFTSPATIAL_OBS_OFF
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return With(std::move(key), std::string(buf));
#else
  (void)value;
  return With(std::move(key), std::string());
#endif
}

}  // namespace swiftspatial::obs
