// Observability of the observability layer: exports the obs subsystem's
// own health counters -- span-buffer drops/elisions/open spans, metric
// family count, log ring emissions/drops -- as swiftspatial_obs_* gauges,
// so a scrape can tell whether the telemetry it is reading is itself
// truncated (a full span buffer or log ring silently keeps only the
// newest records; these series make that loss visible).
//
// Point-in-time sync, not streaming: call ExportSelfMetrics() right before
// rendering an exposition (JoinService::MetricsText, the /metrics endpoint
// of obs::ExpositionServer, examples). Gauges are used even for the
// monotonic quantities because the sync writes absolute snapshots.
#ifndef SWIFTSPATIAL_OBS_SELF_METRICS_H_
#define SWIFTSPATIAL_OBS_SELF_METRICS_H_

namespace swiftspatial::obs {

class Logger;
class MetricsRegistry;
class SpanBuffer;

/// Syncs the swiftspatial_obs_* self-metric gauges in `registry` from
/// `spans` and `logger`. Null arguments select the Global() instances.
/// Note: the self-metric families themselves count toward
/// swiftspatial_obs_metric_families (registration happens before the
/// sync reads family_count()).
void ExportSelfMetrics(MetricsRegistry* registry = nullptr,
                       const SpanBuffer* spans = nullptr,
                       const Logger* logger = nullptr);

}  // namespace swiftspatial::obs

#endif  // SWIFTSPATIAL_OBS_SELF_METRICS_H_
