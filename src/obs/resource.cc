#include "obs/resource.h"

#include <ctime>

namespace swiftspatial::obs {

double ThreadCpuSeconds() {
#if !defined(SWIFTSPATIAL_OBS_OFF) && defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return 0;
#endif
}

}  // namespace swiftspatial::obs
