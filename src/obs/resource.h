// Per-request resource accounting: the fourth pillar of src/obs/.
//
// A ResourceAccumulator rides along with one streaming request (it lives in
// the stream's shared state; exec::DeferredStream exposes it) and the
// execution layers feed it as the request runs:
//
//   - TaskGraph adds each executed task's thread-CPU time (measured with
//     clock_gettime(CLOCK_THREAD_CPUTIME_ID) around the task body) and its
//     pool queue wait, so cpu_seconds is the true compute cost summed
//     across every worker the request fanned out to -- on a multi-threaded
//     graph it exceeds wall time, which is exactly the signal.
//   - The stream state counts every chunk, pair, and byte pushed.
//   - The serving layer (exec::JoinService) adds service-level queue wait,
//     stamps wall time, and adds distributed shard retries.
//
// JoinService surfaces the aggregate in Snapshot() and as
// swiftspatial_service_* series, which is what makes a request's *cost*
// (not just its latency) visible -- the input any learned cost model or
// billing layer needs.
//
// All mutators are relaxed atomics: accumulation is contention-tolerant
// (many workers, one accumulator) and never locks. Building with
// -DSWIFTSPATIAL_OBS_OFF compiles every mutator and the clock reads to
// empty inline bodies.
#ifndef SWIFTSPATIAL_OBS_RESOURCE_H_
#define SWIFTSPATIAL_OBS_RESOURCE_H_

#include <atomic>
#include <cstdint>

namespace swiftspatial::obs {

/// What one request cost, as a plain value snapshot.
struct ResourceUsage {
  /// Producer wall time: dispatcher pickup to stream close.
  double wall_seconds = 0;
  /// Thread-CPU time summed over every task body the request ran; > wall
  /// on multi-threaded fan-out, ~wall single-threaded, < wall when the
  /// request mostly waited (backpressure, simulated device).
  double cpu_seconds = 0;
  /// Pool queue wait summed over tasks, plus the service admission queue
  /// wait -- time the request spent runnable but waiting for a slot.
  double queue_wait_seconds = 0;
  uint64_t tasks = 0;
  uint64_t chunks = 0;
  uint64_t pairs = 0;
  /// Result bytes shipped through the stream queue (pairs * sizeof pair).
  uint64_t bytes = 0;
  /// Distributed shard retries this request triggered (node failures).
  uint64_t retries = 0;
};

/// Thread-safe accumulator for one request's ResourceUsage. Mutators are
/// lock-free relaxed atomics; Snapshot() is a consistent-enough read of
/// each field (fields may be mutually unsynchronized mid-run, final once
/// the request's stream closes).
class ResourceAccumulator {
 public:
  ResourceAccumulator() = default;
  ResourceAccumulator(const ResourceAccumulator&) = delete;
  ResourceAccumulator& operator=(const ResourceAccumulator&) = delete;

  void AddCpuSeconds(double s) { AddDouble(&cpu_seconds_, s); }
  void AddQueueWaitSeconds(double s) { AddDouble(&queue_wait_seconds_, s); }
  void SetWallSeconds(double s) {
#ifndef SWIFTSPATIAL_OBS_OFF
    wall_seconds_.store(s, std::memory_order_relaxed);
#else
    (void)s;
#endif
  }
  void AddTasks(uint64_t n = 1) { AddUint(&tasks_, n); }
  void AddChunk(uint64_t pairs, uint64_t bytes) {
    AddUint(&chunks_, 1);
    AddUint(&pairs_, pairs);
    AddUint(&bytes_, bytes);
  }
  void AddRetries(uint64_t n) { AddUint(&retries_, n); }

  ResourceUsage Snapshot() const {
    ResourceUsage u;
#ifndef SWIFTSPATIAL_OBS_OFF
    u.wall_seconds = wall_seconds_.load(std::memory_order_relaxed);
    u.cpu_seconds = cpu_seconds_.load(std::memory_order_relaxed);
    u.queue_wait_seconds = queue_wait_seconds_.load(std::memory_order_relaxed);
    u.tasks = tasks_.load(std::memory_order_relaxed);
    u.chunks = chunks_.load(std::memory_order_relaxed);
    u.pairs = pairs_.load(std::memory_order_relaxed);
    u.bytes = bytes_.load(std::memory_order_relaxed);
    u.retries = retries_.load(std::memory_order_relaxed);
#endif
    return u;
  }

 private:
  static void AddDouble(std::atomic<double>* target, double delta) {
#ifndef SWIFTSPATIAL_OBS_OFF
    double cur = target->load(std::memory_order_relaxed);
    while (!target->compare_exchange_weak(cur, cur + delta,
                                          std::memory_order_relaxed)) {
    }
#else
    (void)target;
    (void)delta;
#endif
  }
  static void AddUint(std::atomic<uint64_t>* target, uint64_t n) {
#ifndef SWIFTSPATIAL_OBS_OFF
    target->fetch_add(n, std::memory_order_relaxed);
#else
    (void)target;
    (void)n;
#endif
  }

  std::atomic<double> wall_seconds_{0};
  std::atomic<double> cpu_seconds_{0};
  std::atomic<double> queue_wait_seconds_{0};
  std::atomic<uint64_t> tasks_{0};
  std::atomic<uint64_t> chunks_{0};
  std::atomic<uint64_t> pairs_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> retries_{0};
};

/// CPU time consumed by the CALLING THREAD since it started
/// (CLOCK_THREAD_CPUTIME_ID). Differences around a task body give that
/// task's true compute cost regardless of preemption or how many other
/// threads share the core. 0 under SWIFTSPATIAL_OBS_OFF (or when the clock
/// is unavailable), making accumulation a no-op rather than a lie.
double ThreadCpuSeconds();

}  // namespace swiftspatial::obs

#endif  // SWIFTSPATIAL_OBS_RESOURCE_H_
