#include "obs/self_metrics.h"

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace swiftspatial::obs {

void ExportSelfMetrics(MetricsRegistry* registry, const SpanBuffer* spans,
                       const Logger* logger) {
  MetricsRegistry& reg =
      registry != nullptr ? *registry : MetricsRegistry::Global();
  const SpanBuffer& sb = spans != nullptr ? *spans : SpanBuffer::Global();
  const Logger& log = logger != nullptr ? *logger : Logger::Global();

  reg.GetGauge("swiftspatial_obs_spans_dropped", {}, "Finished spans evicted from the bounded span buffer (oldest first)")->Set(static_cast<double>(sb.dropped()));
  reg.GetGauge("swiftspatial_obs_spans_elided", {}, "Spans finished below their duration floor and never buffered")->Set(static_cast<double>(sb.elided()));
  reg.GetGauge("swiftspatial_obs_spans_open", {}, "Spans started but not yet finished")->Set(static_cast<double>(sb.open_spans()));
  reg.GetGauge("swiftspatial_obs_spans_buffered", {}, "Finished spans currently held in the span buffer")->Set(static_cast<double>(sb.size()));
  reg.GetGauge("swiftspatial_obs_log_records_emitted", {}, "Log records accepted past the level gate since process start")->Set(static_cast<double>(log.emitted()));
  reg.GetGauge("swiftspatial_obs_log_records_dropped", {}, "Log records evicted from the bounded log ring (oldest first)")->Set(static_cast<double>(log.dropped()));
  reg.GetGauge("swiftspatial_obs_log_records_buffered", {}, "Log records currently held in the log ring")->Set(static_cast<double>(log.size()));
  // Registered last so the count covers the self-metric families too.
  Gauge* families = reg.GetGauge("swiftspatial_obs_metric_families", {}, "Metric families registered in this registry");
  families->Set(static_cast<double>(reg.family_count()));
}

}  // namespace swiftspatial::obs
