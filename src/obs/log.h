// Structured, leveled logging: the third pillar of src/obs/ (metrics,
// traces, logs). A LogRecord is key=value structured data, not a printf
// string: every record carries a level, a component tag, a message, an
// optional field list, and -- automatically, via the thread-local trace
// binding below -- the ids of the active trace and span, so a log line, a
// span, and a metric emitted for the same request are joinable after the
// fact.
//
//   SWIFT_LOG(Warn, "service", "admission queue full")
//       .With("tenant", tenant)
//       .With("pending", pending);
//
// The macro evaluates its message and field arguments ONLY when the level
// passes the logger's runtime threshold (the `if (!ShouldLog) {} else`
// idiom, same shape as SWIFT_CHECK), so a Debug record on a hot path costs
// one relaxed atomic load when Debug is off.
//
// Records land in a bounded drop-oldest ring (like obs::SpanBuffer): a
// long-lived service keeps the most recent records and counts what it
// dropped instead of growing without bound or blocking writers on I/O. An
// optional stream sink additionally writes each record to a FILE* as
// logfmt-style key=value text or JSON lines -- the ring is for programmatic
// access and tests, the sink is for operators.
//
// Thread safety: Log() takes the ring Mutex briefly (annotated; see
// common/sync.h); level checks and the drop/emit counters are atomics.
// Building with -DSWIFTSPATIAL_OBS_OFF compiles the whole subsystem out:
// ShouldLog() is constant false, the macro's else-branch is unreachable
// (arguments never evaluate), and Logger methods become empty inline
// bodies.
#ifndef SWIFTSPATIAL_OBS_LOG_H_
#define SWIFTSPATIAL_OBS_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace swiftspatial::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

/// One structured record, as stored in the logger's ring.
struct LogRecord {
  /// Seconds since the process trace epoch (the same anchor span start
  /// times use, so log and span timestamps are directly comparable).
  double ts_seconds = 0;
  LogLevel level = LogLevel::kInfo;
  /// Subsystem tag ("service", "dist", "stream", "obs", ...).
  std::string component;
  std::string message;
  /// Ids of the trace/span bound to the emitting thread (ScopedLogTrace);
  /// 0 when no binding was active.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  std::vector<std::pair<std::string, std::string>> fields;
};

/// Thread-safe leveled logger over a bounded drop-oldest ring.
/// Global() is the process-wide instance the SWIFT_LOG macro targets;
/// tests construct private loggers to isolate records and counters.
class Logger {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  enum class SinkFormat { kKeyValue, kJsonLines };

  explicit Logger(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  static Logger& Global();

  /// Runtime threshold: records below `level` are skipped before any
  /// argument evaluation (see the SWIFT_LOG macro).
  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }
  bool ShouldLog(LogLevel level) const {
#ifndef SWIFTSPATIAL_OBS_OFF
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
#else
    (void)level;
    return false;
#endif
  }

  /// Appends `record` to the ring (dropping the oldest record when full)
  /// and mirrors it to the stream sink when one is set. Stamps ts_seconds
  /// and the thread's trace binding if the caller left them zero.
  void Log(LogRecord record) EXCLUDES(mu_);

  /// Mirrors every subsequent record to `stream` (nullptr disables).
  /// The stream is written under the ring lock, so concurrent records
  /// never interleave mid-line; the logger does not own the FILE*.
  void SetStreamSink(std::FILE* stream,
                     SinkFormat format = SinkFormat::kKeyValue) EXCLUDES(mu_);

  std::vector<LogRecord> Snapshot() const EXCLUDES(mu_);
  /// Drops buffered records; emitted/dropped accounting is preserved.
  void Clear() EXCLUDES(mu_);
  std::size_t size() const EXCLUDES(mu_);
  std::size_t capacity() const { return capacity_; }
  /// Records accepted past the level gate (buffered, possibly later
  /// dropped by ring overflow).
  uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  /// Records evicted by ring overflow -- the ring keeps the newest.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// logfmt-ish single line:
  ///   ts=12.345678 level=warn component=service trace=7 span=9
  ///   msg="admission queue full" tenant="a" pending=16
  static std::string FormatKeyValue(const LogRecord& record);
  /// The same record as one JSON object per line.
  static std::string FormatJsonLine(const LogRecord& record);

 private:
  const std::size_t capacity_;
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> dropped_{0};
  mutable Mutex mu_;
  std::deque<LogRecord> records_ GUARDED_BY(mu_);
  std::FILE* sink_ GUARDED_BY(mu_) = nullptr;
  SinkFormat sink_format_ GUARDED_BY(mu_) = SinkFormat::kKeyValue;
};

/// The trace/span ids bound to the current thread (zeros when none).
struct LogTraceIds {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

LogTraceIds CurrentLogTrace();

/// Binds (trace_id, span_id) to the current thread for the scope's
/// lifetime; every record logged from this thread meanwhile carries the
/// ids. Nests: the previous binding is restored on destruction. The
/// execution layer installs these around traced task bodies and request
/// producers, which is how a worker's log lines join the request's spans.
class ScopedLogTrace {
 public:
  ScopedLogTrace(uint64_t trace_id, uint64_t span_id);
  ~ScopedLogTrace();
  ScopedLogTrace(const ScopedLogTrace&) = delete;
  ScopedLogTrace& operator=(const ScopedLogTrace&) = delete;

 private:
#ifndef SWIFTSPATIAL_OBS_OFF
  LogTraceIds saved_;
#endif
};

/// Builder behind SWIFT_LOG: accumulates fields, emits on destruction (end
/// of the full expression). Not for direct use outside the macro/tests.
class LogEvent {
 public:
  LogEvent(Logger* logger, LogLevel level, std::string component,
           std::string message)
#ifndef SWIFTSPATIAL_OBS_OFF
      : logger_(logger) {
    record_.level = level;
    record_.component = std::move(component);
    record_.message = std::move(message);
  }
#else
  {
    (void)logger;
    (void)level;
    (void)component;
    (void)message;
  }
#endif
  ~LogEvent() {
#ifndef SWIFTSPATIAL_OBS_OFF
    logger_->Log(std::move(record_));
#endif
  }
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& With(std::string key, std::string value) {
#ifndef SWIFTSPATIAL_OBS_OFF
    record_.fields.emplace_back(std::move(key), std::move(value));
#else
    (void)key;
    (void)value;
#endif
    return *this;
  }
  LogEvent& With(std::string key, const char* value) {
    return With(std::move(key), std::string(value));
  }
  LogEvent& With(std::string key, double value);
  LogEvent& With(std::string key, bool value) {
    return With(std::move(key), std::string(value ? "true" : "false"));
  }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  LogEvent& With(std::string key, T value) {
    return With(std::move(key), std::to_string(value));
  }

 private:
#ifndef SWIFTSPATIAL_OBS_OFF
  Logger* logger_;
  LogRecord record_;
#endif
};

}  // namespace swiftspatial::obs

/// SWIFT_LOG(Warn, "service", "msg").With("k", v)... -- level-gated
/// structured logging to Logger::Global(). The `if (!ShouldLog) {} else`
/// shape (same as SWIFT_CHECK) swallows a trailing semicolon, nests safely
/// in unbraced if/else, and -- the point -- skips ALL argument evaluation
/// when the level is filtered or the build is SWIFTSPATIAL_OBS_OFF.
#ifndef SWIFTSPATIAL_OBS_OFF
#define SWIFT_LOG(severity, component, message)                       \
  if (!::swiftspatial::obs::Logger::Global().ShouldLog(               \
          ::swiftspatial::obs::LogLevel::k##severity)) {              \
  } else                                                              \
    ::swiftspatial::obs::LogEvent(                                    \
        &::swiftspatial::obs::Logger::Global(),                       \
        ::swiftspatial::obs::LogLevel::k##severity, component, message)
#else
#define SWIFT_LOG(severity, component, message)                       \
  if (true) {                                                         \
  } else                                                              \
    ::swiftspatial::obs::LogEvent(                                    \
        &::swiftspatial::obs::Logger::Global(),                       \
        ::swiftspatial::obs::LogLevel::k##severity, component, message)
#endif

#endif  // SWIFTSPATIAL_OBS_LOG_H_
