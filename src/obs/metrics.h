// MetricsRegistry: the process-wide telemetry substrate -- named counters,
// gauges, and fixed-bucket latency histograms behind pre-resolved handles.
//
// Design targets, in order:
//
//   1. The hot path is lock-free. Instruments are plain structs of relaxed
//      atomics; Increment/Set/Observe never touch a mutex, never allocate,
//      and never hash. Handles are resolved ONCE (registration takes the
//      annotated registry Mutex, hashes the name + rendered label set) and
//      stay valid for the registry's lifetime -- instruments are
//      unique_ptr-held and never erased, so a cached `Counter*` in a
//      worker loop is always safe.
//   2. Labels are pre-resolved. A labelled series (`{tenant="analytics"}`)
//      is just another handle; hot loops pay the label cost at setup, not
//      per event.
//   3. Snapshots are consistent enough: TextExposition()/JsonSnapshot()
//      walk the families under the registry lock but read values with
//      relaxed atomic loads, so concurrent updates are fine -- counters
//      read during a storm are monotonic across successive snapshots
//      (atomic modification order), they just may not be mutually
//      synchronized within one snapshot.
//
// Naming convention (enforced by tools/lint.sh): metric names match
// `swiftspatial_<layer>_<name>` where <layer> is one of
// service | cache | stream | join | dist | obs, and <name> is lower_snake.
// Counters end in `_total`, latency histograms in `_seconds`.
//
// Two off switches:
//   - Runtime: MetricsRegistry::set_enabled(false) turns every mutation
//     into a relaxed-load-and-return (handles stay valid; snapshots still
//     render whatever was recorded).
//   - Compile time: building with -DSWIFTSPATIAL_OBS_OFF (CMake option of
//     the same name) compiles every mutation to an empty inline body, so
//     even the residual relaxed load disappears from instrumented loops.
#ifndef SWIFTSPATIAL_OBS_METRICS_H_
#define SWIFTSPATIAL_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace swiftspatial::obs {

/// Label set for one series, as (key, value) pairs. Order does not matter;
/// the registry canonicalizes (sorts by key) before keying the series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count. value() is exact once writers
/// quiesce; during a storm it is some value on the counter's modification
/// order (and therefore non-decreasing across repeated reads).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
#ifndef SWIFTSPATIAL_OBS_OFF
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, resident bytes,
/// seconds-of-wall gauges). Add() is a CAS loop because GCC has no native
/// atomic<double>::fetch_add.
class Gauge {
 public:
  void Set(double v) {
#ifndef SWIFTSPATIAL_OBS_OFF
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(double delta) {
#ifndef SWIFTSPATIAL_OBS_OFF
    if (!enabled_->load(std::memory_order_relaxed)) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
#else
    (void)delta;
#endif
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (Prometheus classic shape: cumulative `le`
/// buckets plus `_sum` and `_count`). Bucket bounds are fixed at
/// registration; Observe() is a linear scan over typically ~14 bounds plus
/// three relaxed atomic updates -- no locks, no allocation.
class Histogram {
 public:
  void Observe(double v) {
#ifndef SWIFTSPATIAL_OBS_OFF
    if (!enabled_->load(std::memory_order_relaxed)) return;
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Upper bounds, excluding the implicit +Inf bucket.
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket i (i == bounds().size() is +Inf).
  uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds)
      : enabled_(enabled),
        bounds_(std::move(bounds)),
        buckets_(std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() +
                                                           1)) {}
  const std::atomic<bool>* enabled_;
  const std::vector<double> bounds_;
  // bounds_.size() + 1 slots; the last is the +Inf overflow bucket.
  // Zero-initialized by make_unique's value-initialization.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Registry of metric families. Get*() registers on first use and returns
/// the existing handle afterwards; the returned pointer is stable for the
/// registry's lifetime. Re-registering a name with a different instrument
/// type (or a histogram with different bounds) is a programming error and
/// aborts via SWIFT_CHECK.
///
/// Global() is the process-wide instance every subsystem defaults to;
/// tests construct private registries to isolate counts.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = "") EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = "") EXCLUDES(mu_);
  /// `bounds` empty selects DefaultLatencyBuckets().
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          std::vector<double> bounds = {},
                          const std::string& help = "") EXCLUDES(mu_);

  /// 1us .. 100s, roughly logarithmic -- wide enough to cover both a warm
  /// cache hit and a multi-second distributed join with one bucket layout.
  static const std::vector<double>& DefaultLatencyBuckets();

  /// Runtime kill switch; affects every handle from this registry.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Prometheus text exposition format (HELP/TYPE + one line per series;
  /// histograms as cumulative `le` buckets + `_sum`/`_count`).
  std::string TextExposition() const EXCLUDES(mu_);
  /// The same snapshot as a JSON document:
  /// {"metrics":[{"name","type","help","series":[...]}]}.
  std::string JsonSnapshot() const EXCLUDES(mu_);

  /// Number of registered families (for tests).
  std::size_t family_count() const EXCLUDES(mu_);

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Family {
    Type type = Type::kCounter;
    std::string help;
    std::vector<double> bounds;  // histogram families only
    // Keyed by the canonical rendered label string ("" for unlabelled).
    // std::map keeps exposition output deterministic.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    // Parsed label sets, same keys as above, for the JSON snapshot.
    std::map<std::string, Labels> label_sets;
  };

  Family* FamilyLocked(const std::string& name, Type type,
                       const std::string& help) REQUIRES(mu_);

  std::atomic<bool> enabled_{true};
  mutable Mutex mu_;
  std::map<std::string, Family> families_ GUARDED_BY(mu_);
};

}  // namespace swiftspatial::obs

#endif  // SWIFTSPATIAL_OBS_METRICS_H_
