// Request-scoped tracing: TraceContext + ScopedSpan + SpanBuffer.
//
// A TraceContext is a tiny trivially-copyable token -- (SpanBuffer*,
// trace id, parent span id) -- created once per JoinService request and
// threaded through the existing seams by value: EngineConfig carries it
// into the streaming producers, TaskGraph carries it to pool tasks, dist
// Exchange Messages carry it across node boundaries. A default-constructed
// context is inactive and every operation on it is a no-op, so paths that
// never asked for tracing pay one pointer test.
//
// ScopedSpan is the RAII emitter: construction stamps the start time,
// End() (or the destructor) records a finished SpanRecord into the bounded
// SpanBuffer. span.context() yields a child context whose parent is this
// span, which is how the tree forms across threads and simulated nodes.
//
// The buffer counts started vs finished spans; open_spans() == 0 after a
// request drains is the invariant the cancellation tests assert (every
// span is closed even when a stream is torn down mid-flight).
//
// ChromeTraceJson() renders the buffer in the Chrome trace_event format:
// load the file in chrome://tracing or https://ui.perfetto.dev and the
// whole distributed join appears as one timeline -- the request/stream
// spans on track 0, each simulated node's shard executions on track
// node+1.
//
// Building with -DSWIFTSPATIAL_OBS_OFF compiles span construction and
// recording to empty bodies (contexts stay inactive), matching the
// metrics-side kill switch.
#ifndef SWIFTSPATIAL_OBS_TRACE_H_
#define SWIFTSPATIAL_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace swiftspatial::obs {

class SpanBuffer;

/// Process-wide steady anchor: span start times and log record timestamps
/// (obs/log.h) are offsets from the first trace operation, which keeps
/// Chrome-trace timestamps small and makes log and span times directly
/// comparable.
std::chrono::steady_clock::time_point TraceEpoch();

/// One finished span, as stored in the SpanBuffer.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  double start_seconds = 0;     // relative to the process trace epoch
  double duration_seconds = 0;
  int track = 0;  // Chrome "tid": 0 = request/coordinator, node id + 1
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Propagation token. Inactive (buffer == nullptr) by default; copy it
/// freely -- it is two pointers wide.
class TraceContext {
 public:
  TraceContext() = default;

  /// Mints a fresh trace id rooted at `buffer`. Spans created from the
  /// returned context are roots (parent 0).
  static TraceContext StartTrace(SpanBuffer* buffer);

  bool active() const { return buffer_ != nullptr; }
  SpanBuffer* buffer() const { return buffer_; }
  uint64_t trace_id() const { return trace_id_; }
  uint64_t parent_span() const { return parent_span_; }

  /// Same trace, different parent -- used by ScopedSpan::context().
  TraceContext WithParent(uint64_t span_id) const {
    TraceContext child = *this;
    child.parent_span_ = span_id;
    return child;
  }

 private:
  friend class ScopedSpan;  // builds child contexts from stored span ids
  SpanBuffer* buffer_ = nullptr;
  uint64_t trace_id_ = 0;
  uint64_t parent_span_ = 0;
};

/// RAII span. Movable, not copyable; End() is idempotent and the
/// destructor calls it, so every constructed span is eventually recorded
/// exactly once (the cancellation-safety property the tests pin down).
class ScopedSpan {
 public:
  ScopedSpan() = default;  // inactive
  ScopedSpan(const TraceContext& ctx, std::string name, int track = 0);
  ScopedSpan(ScopedSpan&& other) noexcept;
  ScopedSpan& operator=(ScopedSpan&& other) noexcept;
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { End(); }

  void AddAttr(std::string key, std::string value);
  /// Duration floor: spans that finish faster than `seconds` are elided --
  /// counted as finished (open_spans() still balances) but never pushed
  /// into the buffer. High-fan-out emitters (the per-task spans around
  /// thousands of sub-millisecond cell joins) use this so tracing costs a
  /// clock read, not a lock, on the hot path; anything slow enough to
  /// matter in a timeline still shows up.
  void SetMinRecordSeconds(double seconds) { min_record_seconds_ = seconds; }
  /// Records the span (first call only; later calls are no-ops).
  void End();
  bool active() const { return buffer_ != nullptr; }
  uint64_t span_id() const { return record_.span_id; }
  /// Context for children of this span. Inactive if the span is.
  TraceContext context() const;

 private:
  SpanBuffer* buffer_ = nullptr;  // null once ended or when inactive
  SpanRecord record_;
  std::chrono::steady_clock::time_point start_tp_{};
  double min_record_seconds_ = 0;
};

/// Bounded ring of finished spans. When full the OLDEST record is dropped
/// (and counted), so a long-lived service keeps the most recent traces.
class SpanBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 16384;

  explicit SpanBuffer(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  SpanBuffer(const SpanBuffer&) = delete;
  SpanBuffer& operator=(const SpanBuffer&) = delete;

  /// Process-wide buffer the examples write into.
  static SpanBuffer& Global();

  void Record(SpanRecord span) EXCLUDES(mu_);

  std::vector<SpanRecord> Snapshot() const EXCLUDES(mu_);
  /// Drops buffered spans; started/finished accounting is preserved.
  void Clear() EXCLUDES(mu_);

  std::size_t size() const EXCLUDES(mu_);
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Spans finished below a caller-set duration floor and never buffered.
  uint64_t elided() const { return elided_.load(std::memory_order_relaxed); }
  /// Spans constructed but not yet recorded. 0 once a request fully
  /// drains -- including after cancellation.
  uint64_t open_spans() const {
    // Read finished first: a concurrent span finishing between the two
    // loads can only make the result conservative (never negative).
    const uint64_t finished = finished_.load(std::memory_order_acquire);
    const uint64_t started = started_.load(std::memory_order_acquire);
    return started - finished;
  }

  /// Chrome trace_event JSON ({"traceEvents":[...]}): one complete ("X")
  /// event per span, pid = trace id, tid = track.
  std::string ChromeTraceJson() const EXCLUDES(mu_);

 private:
  friend class ScopedSpan;
  void NoteStarted() { started_.fetch_add(1, std::memory_order_acq_rel); }
  void NoteElided() {
    elided_.fetch_add(1, std::memory_order_relaxed);
    finished_.fetch_add(1, std::memory_order_acq_rel);
  }

  const std::size_t capacity_;
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> finished_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> elided_{0};
  mutable Mutex mu_;
  std::deque<SpanRecord> spans_ GUARDED_BY(mu_);
};

}  // namespace swiftspatial::obs

#endif  // SWIFTSPATIAL_OBS_TRACE_H_
