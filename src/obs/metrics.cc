#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>

#include "common/logging.h"

namespace swiftspatial::obs {
namespace {

// Renders a double the way Prometheus expects: shortest round-trippable
// decimal, no locale surprises.
std::string FormatDouble(double v) {
  char buf[64];
  // Integers render as integers ("10", not the equally-short "1e+01" the
  // precision probe below would settle on).
  if (v == static_cast<int64_t>(v) && v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    double back = 0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) return probe;
  }
  return buf;
}

std::string FormatUint(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

// Escapes a label value for the text exposition (backslash, quote,
// newline) -- same escaping works for JSON strings below.
std::string EscapeValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// Canonical series key: labels sorted by key, rendered as
// key="escaped",key2="escaped". "" for the unlabelled series.
std::string CanonicalLabelString(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) {
    if (!out.empty()) out += ',';
    out += k;
    out += "=\"";
    out += EscapeValue(v);
    out += '"';
  }
  return out;
}

// Renders `name{labels}` or `name{labels,extra}` (extra pre-rendered, used
// for the histogram `le` label).
std::string SeriesName(const std::string& name, const std::string& labelstr,
                       const std::string& extra = "") {
  std::string out = name;
  if (labelstr.empty() && extra.empty()) return out;
  out += '{';
  out += labelstr;
  if (!labelstr.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

void AppendJsonLabels(std::string* out, const Labels& labels) {
  *out += "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) *out += ',';
    first = false;
    *out += '"';
    *out += EscapeValue(k);
    *out += "\":\"";
    *out += EscapeValue(v);
    *out += '"';
  }
  *out += "}";
}

const char* TypeName(int type) {
  switch (type) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

const std::vector<double>& MetricsRegistry::DefaultLatencyBuckets() {
  static const std::vector<double>* buckets = new std::vector<double>{
      1e-6,   2.5e-6, 5e-6,  1e-5,   2.5e-5, 5e-5,  1e-4,   2.5e-4, 5e-4,
      1e-3,   2.5e-3, 5e-3,  1e-2,   2.5e-2, 5e-2,  1e-1,   2.5e-1, 5e-1,
      1.0,    2.5,    5.0,   10.0,   25.0,   100.0};
  return *buckets;
}

MetricsRegistry::Family* MetricsRegistry::FamilyLocked(
    const std::string& name, Type type, const std::string& help) {
  SWIFT_CHECK(!name.empty());
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.type = type;
    family.help = help;
  } else {
    // Re-registering under a different instrument type is a bug in the
    // caller, not a runtime condition.
    SWIFT_CHECK(family.type == type);
    if (family.help.empty() && !help.empty()) family.help = help;
  }
  return &family;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels,
                                     const std::string& help) {
  const std::string key = CanonicalLabelString(labels);
  MutexLock lock(&mu_);
  Family* family = FamilyLocked(name, Type::kCounter, help);
  auto it = family->counters.find(key);
  if (it == family->counters.end()) {
    it = family->counters
             .emplace(key, std::unique_ptr<Counter>(new Counter(&enabled_)))
             .first;
    family->label_sets.emplace(key, labels);
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const Labels& labels,
                                 const std::string& help) {
  const std::string key = CanonicalLabelString(labels);
  MutexLock lock(&mu_);
  Family* family = FamilyLocked(name, Type::kGauge, help);
  auto it = family->gauges.find(key);
  if (it == family->gauges.end()) {
    it = family->gauges
             .emplace(key, std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
    family->label_sets.emplace(key, labels);
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  if (bounds.empty()) bounds = DefaultLatencyBuckets();
  std::sort(bounds.begin(), bounds.end());
  const std::string key = CanonicalLabelString(labels);
  MutexLock lock(&mu_);
  Family* family = FamilyLocked(name, Type::kHistogram, help);
  if (family->bounds.empty()) {
    family->bounds = bounds;
  } else {
    // All series of one histogram family must share a bucket layout or the
    // exposition is meaningless.
    SWIFT_CHECK(family->bounds == bounds);
  }
  auto it = family->histograms.find(key);
  if (it == family->histograms.end()) {
    it = family->histograms
             .emplace(key, std::unique_ptr<Histogram>(
                               new Histogram(&enabled_, family->bounds)))
             .first;
    family->label_sets.emplace(key, labels);
  }
  return it->second.get();
}

std::string MetricsRegistry::TextExposition() const {
  std::string out;
  MutexLock lock(&mu_);
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " ";
    out += TypeName(static_cast<int>(family.type));
    out += "\n";
    switch (family.type) {
      case Type::kCounter:
        for (const auto& [labelstr, counter] : family.counters) {
          out += SeriesName(name, labelstr) + " " +
                 FormatUint(counter->value()) + "\n";
        }
        break;
      case Type::kGauge:
        for (const auto& [labelstr, gauge] : family.gauges) {
          out += SeriesName(name, labelstr) + " " +
                 FormatDouble(gauge->value()) + "\n";
        }
        break;
      case Type::kHistogram:
        for (const auto& [labelstr, hist] : family.histograms) {
          uint64_t cumulative = 0;
          for (std::size_t i = 0; i < hist->bounds().size(); ++i) {
            cumulative += hist->bucket_count(i);
            out += SeriesName(name + "_bucket", labelstr,
                              "le=\"" + FormatDouble(hist->bounds()[i]) +
                                  "\"") +
                   " " + FormatUint(cumulative) + "\n";
          }
          cumulative += hist->bucket_count(hist->bounds().size());
          out += SeriesName(name + "_bucket", labelstr, "le=\"+Inf\"") + " " +
                 FormatUint(cumulative) + "\n";
          out += SeriesName(name + "_sum", labelstr) + " " +
                 FormatDouble(hist->sum()) + "\n";
          out += SeriesName(name + "_count", labelstr) + " " +
                 FormatUint(hist->count()) + "\n";
        }
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::JsonSnapshot() const {
  std::string out = "{\"metrics\":[";
  MutexLock lock(&mu_);
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!first_family) out += ',';
    first_family = false;
    out += "{\"name\":\"" + EscapeValue(name) + "\",\"type\":\"";
    out += TypeName(static_cast<int>(family.type));
    out += "\",\"help\":\"" + EscapeValue(family.help) + "\",\"series\":[";
    bool first_series = true;
    auto series_prefix = [&](const std::string& labelstr) {
      if (!first_series) out += ',';
      first_series = false;
      out += "{\"labels\":";
      auto it = family.label_sets.find(labelstr);
      AppendJsonLabels(&out, it != family.label_sets.end() ? it->second
                                                           : Labels{});
    };
    switch (family.type) {
      case Type::kCounter:
        for (const auto& [labelstr, counter] : family.counters) {
          series_prefix(labelstr);
          out += ",\"value\":" + FormatUint(counter->value()) + "}";
        }
        break;
      case Type::kGauge:
        for (const auto& [labelstr, gauge] : family.gauges) {
          series_prefix(labelstr);
          out += ",\"value\":" + FormatDouble(gauge->value()) + "}";
        }
        break;
      case Type::kHistogram:
        for (const auto& [labelstr, hist] : family.histograms) {
          series_prefix(labelstr);
          out += ",\"count\":" + FormatUint(hist->count());
          out += ",\"sum\":" + FormatDouble(hist->sum());
          out += ",\"buckets\":[";
          for (std::size_t i = 0; i <= hist->bounds().size(); ++i) {
            if (i > 0) out += ',';
            out += "{\"le\":";
            out += i < hist->bounds().size()
                       ? FormatDouble(hist->bounds()[i])
                       : std::string("\"+Inf\"");
            out += ",\"count\":" + FormatUint(hist->bucket_count(i)) + "}";
          }
          out += "]}";
        }
        break;
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::size_t MetricsRegistry::family_count() const {
  MutexLock lock(&mu_);
  return families_.size();
}

}  // namespace swiftspatial::obs
