// Minimal blocking HTTP/1.1 exposition endpoint over raw POSIX sockets:
// serves the Prometheus-style text exposition at /metrics (with the
// swiftspatial_obs_* self-metrics synced per scrape), plus /healthz
// (liveness: 200 while the server thread runs) and /readyz (readiness:
// delegates to a caller-supplied probe, 503 until it returns true).
//
// One serving thread, one connection at a time, Connection: close -- this
// is a scrape target, not a web server. Port 0 binds an ephemeral port
// (reported by port()) so tests and multi-tenant examples never collide.
//
// Under SWIFTSPATIAL_OBS_OFF the server refuses to start
// (Status::NotSupported) and links to nothing else in the obs layer.
#ifndef SWIFTSPATIAL_OBS_EXPOSITION_SERVER_H_
#define SWIFTSPATIAL_OBS_EXPOSITION_SERVER_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"

namespace swiftspatial::obs {

class MetricsRegistry;
class SpanBuffer;

class ExpositionServer {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1. 0 picks an ephemeral port.
    int port = 0;
    /// Registry rendered at /metrics. Null selects MetricsRegistry::Global().
    MetricsRegistry* registry = nullptr;
    /// Span buffer whose health feeds the swiftspatial_obs_* self-metrics.
    /// Null selects SpanBuffer::Global().
    SpanBuffer* spans = nullptr;
    /// Readiness probe for /readyz; 503 while it returns false. Null means
    /// always ready.
    std::function<bool()> ready;
  };

  explicit ExpositionServer(Options options);
  ~ExpositionServer();

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Binds, listens, and spawns the serving thread. Not restartable after
  /// Stop().
  Status Start();

  /// Shuts the listening socket and joins the serving thread. Idempotent.
  void Stop();

  /// The bound port; meaningful after a successful Start() (resolves
  /// ephemeral port 0 to the kernel's choice).
  int port() const { return port_.load(std::memory_order_acquire); }

  /// Requests served since Start(); includes 404s.
  uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  std::string HandleRequest(const std::string& path);

  Options options_;
  std::atomic<int> port_{0};
  std::atomic<int> listen_fd_{-1};
  std::atomic<uint64_t> served_{0};
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace swiftspatial::obs

#endif  // SWIFTSPATIAL_OBS_EXPOSITION_SERVER_H_
