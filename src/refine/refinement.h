// Refinement phase (§2.1, §5.8): re-checks the filter's candidate pairs
// against actual geometries to remove MBR false positives. Geometries are
// materialised deterministically from (id, MBR) via MakeConvexPolygon, so
// the filter pipeline stays MBR-only -- exactly the paper's split where the
// FPGA filters on MBRs and the CPU refines. Each referenced object's polygon
// is materialised once per Refine call (not once per candidate pair it
// appears in) into a read-only cache shared by the parallel verifiers.
#ifndef SWIFTSPATIAL_REFINE_REFINEMENT_H_
#define SWIFTSPATIAL_REFINE_REFINEMENT_H_

#include <cstddef>

#include "datagen/dataset.h"
#include "join/result.h"

namespace swiftspatial {

/// What each dataset's MBRs stand for during refinement.
enum class GeometryKind {
  kPoint,    ///< degenerate boxes; the object is the point itself
  kPolygon,  ///< the object is a convex polygon inscribed in the MBR
};

struct RefinementOptions {
  std::size_t num_threads = 1;
  /// Vertices per materialised polygon (complexity knob; more vertices =
  /// costlier refinement, like real building footprints).
  int polygon_vertices = 8;
};

/// Statistics from a refinement run.
struct RefinementStats {
  std::size_t candidates = 0;
  std::size_t verified = 0;
  std::size_t false_positives = 0;
};

/// Verifies `candidates` (pairs of ids into `r` and `s`) with exact
/// geometry tests and returns the surviving pairs.
JoinResult Refine(const Dataset& r, GeometryKind r_kind, const Dataset& s,
                  GeometryKind s_kind, const std::vector<ResultPair>& candidates,
                  const RefinementOptions& options,
                  RefinementStats* stats = nullptr);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_REFINE_REFINEMENT_H_
