#include "refine/refinement.h"

#include <vector>

#include "common/thread_pool.h"
#include "geometry/polygon.h"

namespace swiftspatial {

namespace {

// Exact test for one candidate pair.
bool VerifyPair(const Dataset& r, GeometryKind r_kind, const Dataset& s,
                GeometryKind s_kind, ResultPair pair, int vertices) {
  const Box& rb = r.box(static_cast<std::size_t>(pair.r));
  const Box& sb = s.box(static_cast<std::size_t>(pair.s));

  if (r_kind == GeometryKind::kPoint && s_kind == GeometryKind::kPoint) {
    // Point-point: MBR test is already exact.
    return Intersects(rb, sb);
  }
  if (r_kind == GeometryKind::kPoint) {
    const Polygon sp = MakeConvexPolygon(static_cast<uint64_t>(pair.s), sb,
                                         vertices);
    return PointInPolygon(Point{rb.min_x, rb.min_y}, sp);
  }
  if (s_kind == GeometryKind::kPoint) {
    const Polygon rp = MakeConvexPolygon(static_cast<uint64_t>(pair.r), rb,
                                         vertices);
    return PointInPolygon(Point{sb.min_x, sb.min_y}, rp);
  }
  const Polygon rp =
      MakeConvexPolygon(static_cast<uint64_t>(pair.r), rb, vertices);
  const Polygon sp =
      MakeConvexPolygon(static_cast<uint64_t>(pair.s), sb, vertices);
  return PolygonsIntersect(rp, sp);
}

}  // namespace

JoinResult Refine(const Dataset& r, GeometryKind r_kind, const Dataset& s,
                  GeometryKind s_kind,
                  const std::vector<ResultPair>& candidates,
                  const RefinementOptions& options, RefinementStats* stats) {
  const std::size_t threads = std::max<std::size_t>(1, options.num_threads);
  std::vector<JoinResult> workers(threads);

  ParallelForWorker(
      candidates.size(), threads, Schedule::kDynamic,
      [&](std::size_t i, std::size_t w) {
        if (VerifyPair(r, r_kind, s, s_kind, candidates[i],
                       options.polygon_vertices)) {
          workers[w].Add(candidates[i].r, candidates[i].s);
        }
      },
      /*chunk=*/512);

  JoinResult out;
  for (auto& w : workers) out.Merge(std::move(w));
  if (stats != nullptr) {
    stats->candidates = candidates.size();
    stats->verified = out.size();
    stats->false_positives = candidates.size() - out.size();
  }
  return out;
}

}  // namespace swiftspatial
