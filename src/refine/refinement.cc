#include "refine/refinement.h"

#include <algorithm>
#include <vector>

#include "common/thread_pool.h"
#include "geometry/polygon.h"

namespace swiftspatial {

namespace {

// Materialised polygons for every object id a candidate list references on
// one (polygon-kind) side. An object appearing in k candidate pairs used to
// pay k MakeConvexPolygon calls; the cache pays exactly one. Built before
// the verify loop and read-only afterwards, so the parallel verifiers share
// it without synchronisation -- and because MakeConvexPolygon is a pure
// function of (id, MBR, vertex count), the cached geometry is bit-identical
// to the per-pair rematerialisation it replaces.
class PolygonCache {
 public:
  /// Gathers the unique ids selected by `id_of` from `candidates` and
  /// materialises their polygons in parallel.
  template <typename IdOf>
  void Build(const Dataset& d, const std::vector<ResultPair>& candidates,
             const IdOf& id_of, int vertices, std::size_t threads) {
    ids_.reserve(candidates.size());
    for (const ResultPair& pair : candidates) ids_.push_back(id_of(pair));
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
    polygons_.resize(ids_.size());
    ParallelForWorker(
        ids_.size(), threads, Schedule::kDynamic,
        [&](std::size_t i, std::size_t) {
          const ObjectId id = ids_[i];
          polygons_[i] = MakeConvexPolygon(
              static_cast<uint64_t>(id),
              d.box(static_cast<std::size_t>(id)), vertices);
        },
        /*chunk=*/256);
  }

  const Polygon& Get(ObjectId id) const {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    return polygons_[static_cast<std::size_t>(it - ids_.begin())];
  }

 private:
  std::vector<ObjectId> ids_;
  std::vector<Polygon> polygons_;
};

// Exact test for one candidate pair against the pre-materialised geometry.
bool VerifyPair(const Dataset& r, GeometryKind r_kind, const Dataset& s,
                GeometryKind s_kind, const PolygonCache& r_cache,
                const PolygonCache& s_cache, ResultPair pair) {
  const Box& rb = r.box(static_cast<std::size_t>(pair.r));
  const Box& sb = s.box(static_cast<std::size_t>(pair.s));

  if (r_kind == GeometryKind::kPoint && s_kind == GeometryKind::kPoint) {
    // Point-point: MBR test is already exact.
    return Intersects(rb, sb);
  }
  if (r_kind == GeometryKind::kPoint) {
    return PointInPolygon(Point{rb.min_x, rb.min_y}, s_cache.Get(pair.s));
  }
  if (s_kind == GeometryKind::kPoint) {
    return PointInPolygon(Point{sb.min_x, sb.min_y}, r_cache.Get(pair.r));
  }
  return PolygonsIntersect(r_cache.Get(pair.r), s_cache.Get(pair.s));
}

}  // namespace

JoinResult Refine(const Dataset& r, GeometryKind r_kind, const Dataset& s,
                  GeometryKind s_kind,
                  const std::vector<ResultPair>& candidates,
                  const RefinementOptions& options, RefinementStats* stats) {
  const std::size_t threads = std::max<std::size_t>(1, options.num_threads);

  PolygonCache r_cache, s_cache;
  if (r_kind == GeometryKind::kPolygon) {
    r_cache.Build(
        r, candidates, [](const ResultPair& p) { return p.r; },
        options.polygon_vertices, threads);
  }
  if (s_kind == GeometryKind::kPolygon) {
    s_cache.Build(
        s, candidates, [](const ResultPair& p) { return p.s; },
        options.polygon_vertices, threads);
  }

  std::vector<JoinResult> workers(threads);
  ParallelForWorker(
      candidates.size(), threads, Schedule::kDynamic,
      [&](std::size_t i, std::size_t w) {
        if (VerifyPair(r, r_kind, s, s_kind, r_cache, s_cache,
                       candidates[i])) {
          workers[w].Add(candidates[i].r, candidates[i].s);
        }
      },
      /*chunk=*/512);

  JoinResult out;
  for (auto& w : workers) out.Merge(std::move(w));
  if (stats != nullptr) {
    stats->candidates = candidates.size();
    stats->verified = out.size();
    stats->false_positives = candidates.size() - out.size();
  }
  return out;
}

}  // namespace swiftspatial
