#include "join/sync_traversal.h"

namespace swiftspatial {

void JoinNodePair(const PackedRTree& r, const PackedRTree& s,
                  NodeIndex r_node, NodeIndex s_node,
                  std::vector<NodePairTask>* next, JoinResult* out,
                  JoinStats* stats) {
  const NodeView rn = r.node(r_node);
  const NodeView sn = s.node(s_node);
  const int rc = rn.count();
  const int sc = sn.count();
  const std::size_t next_before = next->size();
  if (stats != nullptr) {
    stats->tasks += 1;
    stats->predicate_evaluations += static_cast<uint64_t>(rc) * sc;
  }

  if (rn.is_leaf() && sn.is_leaf()) {
    for (int i = 0; i < rc; ++i) {
      const PackedEntry re = rn.entry(i);
      for (int j = 0; j < sc; ++j) {
        const PackedEntry se = sn.entry(j);
        if (Intersects(re.box, se.box)) out->Add(re.id, se.id);
      }
    }
    return;
  }
  if (!rn.is_leaf() && !sn.is_leaf()) {
    for (int i = 0; i < rc; ++i) {
      const PackedEntry re = rn.entry(i);
      for (int j = 0; j < sc; ++j) {
        const PackedEntry se = sn.entry(j);
        if (Intersects(re.box, se.box)) next->push_back({re.id, se.id});
      }
    }
    if (stats != nullptr) {
      stats->intermediate_pairs += next->size() - next_before;
    }
    return;
  }
  // Mixed case: descend only the directory side (trees of differing
  // heights), keeping the leaf node fixed.
  if (rn.is_leaf()) {
    const Box r_mbr = rn.Mbr();
    for (int j = 0; j < sc; ++j) {
      const PackedEntry se = sn.entry(j);
      if (Intersects(r_mbr, se.box)) next->push_back({r_node, se.id});
    }
  } else {
    const Box s_mbr = sn.Mbr();
    for (int i = 0; i < rc; ++i) {
      const PackedEntry re = rn.entry(i);
      if (Intersects(re.box, s_mbr)) next->push_back({re.id, s_node});
    }
  }
  if (stats != nullptr) {
    stats->intermediate_pairs += next->size() - next_before;
  }
}

JoinResult SyncTraversalDfs(const PackedRTree& r, const PackedRTree& s,
                            JoinStats* stats) {
  JoinResult out;
  std::vector<NodePairTask> stack = {{r.root(), s.root()}};
  std::vector<NodePairTask> next;
  while (!stack.empty()) {
    const NodePairTask task = stack.back();
    stack.pop_back();
    next.clear();
    JoinNodePair(r, s, task.r, task.s, &next, &out, stats);
    stack.insert(stack.end(), next.begin(), next.end());
  }
  return out;
}

JoinResult SyncTraversalBfs(const PackedRTree& r, const PackedRTree& s,
                            JoinStats* stats,
                            std::vector<std::size_t>* level_sizes) {
  JoinResult out;
  std::vector<NodePairTask> frontier = {{r.root(), s.root()}};
  std::vector<NodePairTask> next;
  while (!frontier.empty()) {
    if (level_sizes != nullptr) level_sizes->push_back(frontier.size());
    next.clear();
    for (const NodePairTask& task : frontier) {
      JoinNodePair(r, s, task.r, task.s, &next, &out, stats);
    }
    frontier.swap(next);
  }
  return out;
}

}  // namespace swiftspatial
