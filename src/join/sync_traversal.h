// R-tree synchronous traversal (Brinkhoff, Kriegel & Seeger [13]):
// simultaneous traversal of two R-trees, pruning via directory MBRs.
//
//  * SyncTraversalDfs implements Algorithms 1-2 of the paper (depth-first).
//  * SyncTraversalBfs implements the breadth-first variant [33] that the
//    SwiftSpatial scheduler executes on chip (§3.4.1): the join proceeds
//    level by level, with all qualifying node pairs of a level materialised
//    as the next level's task list.
//
// Both operate on the flat PackedRTree layout shared with the simulated
// accelerator.
#ifndef SWIFTSPATIAL_JOIN_SYNC_TRAVERSAL_H_
#define SWIFTSPATIAL_JOIN_SYNC_TRAVERSAL_H_

#include <cstdint>
#include <vector>

#include "join/result.h"
#include "rtree/packed_rtree.h"

namespace swiftspatial {

/// A node-pair join task.
struct NodePairTask {
  NodeIndex r = 0;
  NodeIndex s = 0;
};

/// Joins one node pair: emits qualifying (object, object) pairs to `out`
/// when both nodes are leaves, qualifying next-level tasks to `next`
/// otherwise. Exactly the work one SwiftSpatial join unit performs per task
/// (Fig. 4); shared by the CPU implementations and the simulator's
/// functional model.
void JoinNodePair(const PackedRTree& r, const PackedRTree& s,
                  NodeIndex r_node, NodeIndex s_node,
                  std::vector<NodePairTask>* next, JoinResult* out,
                  JoinStats* stats);

/// Depth-first synchronous traversal (Algorithms 1-2).
JoinResult SyncTraversalDfs(const PackedRTree& r, const PackedRTree& s,
                            JoinStats* stats = nullptr);

/// Breadth-first synchronous traversal [33]; `level_sizes`, when non-null,
/// receives the number of tasks at each level (the accelerator's task-queue
/// occupancy trace).
JoinResult SyncTraversalBfs(const PackedRTree& r, const PackedRTree& s,
                            JoinStats* stats = nullptr,
                            std::vector<std::size_t>* level_sizes = nullptr);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_JOIN_SYNC_TRAVERSAL_H_
