#include "join/result.h"

#include <algorithm>

namespace swiftspatial {

void JoinResult::Merge(JoinResult&& other) {
  if (pairs_.empty()) {
    pairs_ = std::move(other.pairs_);
  } else {
    pairs_.insert(pairs_.end(), other.pairs_.begin(), other.pairs_.end());
  }
  other.pairs_.clear();
}

void JoinResult::Sort() { std::sort(pairs_.begin(), pairs_.end()); }

bool JoinResult::SameMultiset(JoinResult& a, JoinResult& b) {
  if (a.size() != b.size()) return false;
  a.Sort();
  b.Sort();
  return a.pairs_ == b.pairs_;
}

}  // namespace swiftspatial
