// Nested-loop joins: the all-pairs reference join used by tests, and the
// tile-level nested loop that the SwiftSpatial join unit implements in
// hardware (§3.3). The tile variant optionally applies the PBSM
// reference-point rule for duplicate avoidance.
#ifndef SWIFTSPATIAL_JOIN_NESTED_LOOP_H_
#define SWIFTSPATIAL_JOIN_NESTED_LOOP_H_

#include <vector>

#include "datagen/dataset.h"
#include "geometry/box.h"
#include "join/result.h"

namespace swiftspatial {

/// All-pairs reference join between two datasets (intersects predicate).
/// O(|r| * |s|); intended for correctness baselines on small inputs.
JoinResult BruteForceJoin(const Dataset& r, const Dataset& s,
                          JoinStats* stats = nullptr);

/// Joins the objects listed in `r_ids` x `s_ids`. If `dedup_tile` is
/// non-null, a qualifying pair is emitted only when the reference point of
/// its intersection lies inside the tile (PBSM duplicate avoidance).
void NestedLoopTileJoin(const Dataset& r, const Dataset& s,
                        const std::vector<ObjectId>& r_ids,
                        const std::vector<ObjectId>& s_ids,
                        const Box* dedup_tile, JoinResult* out,
                        JoinStats* stats = nullptr);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_JOIN_NESTED_LOOP_H_
