// The simulated SwiftSpatial device as first-class join engines: the
// host/device split of the paper (FPGA filters MBRs, CPU orchestrates)
// expressed through the same Plan -> Execute interface every CPU algorithm
// uses, so benchmarks, the equivalence oracle, and the async streaming layer
// all reach the accelerator by name:
//
//   auto run = RunJoin("accel-pbsm", r, s, config);          // sync
//   auto handle = exec::RunJoinAsync("accel-bfs", r, s);     // streaming
//
// Three engines are registered in EngineRegistry::Global():
//   accel-bfs      BFS R-tree synchronous traversal (§3.4.1). Plan
//                  bulk-loads both packed trees (the host-transfer image).
//   accel-pbsm     tile-pair join over a hierarchical partition (§3.4.2).
//                  Plan runs PartitionHierarchical.
//   accel-pbsm-4x  the §6 out-of-memory path: a 2x2 spatial grid shards the
//                  join across (up to) 4 concurrent devices, results
//                  deduplicated by the reference-point rule. The seed of
//                  multi-node sharding: each shard is an independent device.
//
// Beyond the JoinEngine contract, these engines expose ExecuteStreaming --
// result batches surface as the simulated write unit flushes them (per BFS
// level / per PBSM tile batch / per 4x partition), which is what lets
// exec::RunJoinAsync overlap simulated-kernel execution with host-side
// consumption -- and last_report(), the device performance model (kernel
// cycles, DRAM traffic, PCIe transfer) of the most recent Execute.
#ifndef SWIFTSPATIAL_JOIN_ACCEL_ENGINE_H_
#define SWIFTSPATIAL_JOIN_ACCEL_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "hw/accelerator.h"
#include "join/engine.h"

namespace swiftspatial {

/// Receives result batches as the device produces them (ExecuteStreaming).
/// Batches are non-empty; the concatenation over a successful run is exactly
/// the Execute result multiset.
using AccelBatchSink = std::function<void(std::vector<ResultPair>)>;

/// JoinEngine extended with the accelerator's streaming face and its
/// performance report. Lifecycle as JoinEngine: Plan once, then Execute /
/// ExecuteStreaming any number of times.
class AccelJoinEngine : public JoinEngine {
 public:
  /// Like Execute, but hands result batches to `sink` as the simulated
  /// write unit retires them instead of collecting one JoinResult. The
  /// simulated kernel runs to completion even if the consumer loses
  /// interest; `stats` (when non-null) accumulates as in Execute.
  virtual Status ExecuteStreaming(const AccelBatchSink& sink,
                                  JoinStats* stats) = 0;

  /// Device performance model of the last Execute/ExecuteStreaming
  /// (zeroed at the start of each). The multi-device engine aggregates:
  /// kernel cycles are the max over concurrent sub-joins, transfer bytes
  /// and work counters sum.
  const hw::AcceleratorReport& last_report() const { return report_; }

  /// Host bytes Plan's build products will ship over PCIe (tree images /
  /// serialized tile blocks + task table), i.e. the bytes_to_device the
  /// report will charge. 0 before Plan, for empty inputs, and for the
  /// multi-device engine (whose footprint-driven grid search builds the
  /// per-device images inside Execute).
  uint64_t planned_bytes_to_device() const { return planned_bytes_; }

 protected:
  hw::AcceleratorReport report_;
  uint64_t planned_bytes_ = 0;
};

/// True for the engine names backed by the simulated accelerator.
bool IsAccelEngine(const std::string& name);

/// Config checks shared by Plan and the streaming layer's fail-fast path
/// (data-independent: thread count, unit count, tile cap, device memory).
Status ValidateAccelConfig(const EngineConfig& config);

/// Instantiates one of the accelerator engines directly -- the typed handle
/// (ExecuteStreaming, last_report) that the plain registry interface
/// erases. NotFound for names IsAccelEngine rejects.
Result<std::unique_ptr<AccelJoinEngine>> MakeAccelEngine(
    const std::string& name, const EngineConfig& config);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_JOIN_ACCEL_ENGINE_H_
