// System-style CPU baselines standing in for the closed or JVM-based systems
// of §5 (PostGIS, Apache Sedona, SpatialSpark), which cannot run in this
// environment. Rather than insert artificial sleeps, each baseline
// re-implements the *mechanisms* the paper credits for those systems'
// slowness (see the substitution table in DESIGN.md):
//
//  * InterpretedEngineJoin (PostGIS-like): an index-nested-loop join over an
//    R-tree where every candidate pair is verified by an interpreted
//    expression tree (virtual dispatch per comparison) against generic
//    serialized tuples (field extraction per access) -- the abstraction
//    overhead of a tuple-at-a-time database executor.
//
//  * BigDataFrameworkJoin (Sedona/SpatialSpark-like): grid partitioning with
//    a materialised shuffle (rows serialized to per-partition byte buffers,
//    then deserialized into individually heap-allocated "boxed" row objects),
//    a per-partition index build at join time, per-partition joins, and a
//    final merge -- the shuffle/boxing/merge overhead of a distributed
//    dataflow engine on a single node.
#ifndef SWIFTSPATIAL_JOIN_ENGINE_BASELINES_H_
#define SWIFTSPATIAL_JOIN_ENGINE_BASELINES_H_

#include <cstddef>

#include "datagen/dataset.h"
#include "join/result.h"

namespace swiftspatial {

struct InterpretedEngineOptions {
  std::size_t num_threads = 1;  ///< max_parallel_workers analogue
  int index_max_entries = 16;
};

/// PostGIS-like join (see file comment). Index is built on `s`; `r` streams
/// through the executor.
JoinResult InterpretedEngineJoin(const Dataset& r, const Dataset& s,
                                 const InterpretedEngineOptions& options,
                                 JoinStats* stats = nullptr);

struct BigDataFrameworkOptions {
  /// Spatial partitions (the paper finds 64 optimal for SpatialSpark).
  int num_partitions = 64;
  std::size_t num_threads = 1;
  int index_max_entries = 16;
};

/// Sedona/SpatialSpark-like join (see file comment).
JoinResult BigDataFrameworkJoin(const Dataset& r, const Dataset& s,
                                const BigDataFrameworkOptions& options,
                                JoinStats* stats = nullptr);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_JOIN_ENGINE_BASELINES_H_
