// Multi-threaded synchronous traversal: the paper's optimized CPU baseline
// (§5.1). Two strategies are implemented:
//
//  * kBfs      -- pure level-by-level BFS; the node pairs of each level are
//                 the parallel tasks, results merged per level.
//  * kBfsDfs   -- hybrid: BFS until the frontier holds at least
//                 `dfs_switch_factor` x threads tasks, then each task is
//                 finished with a sequential DFS on its own thread.
//
// Both support static and dynamic OpenMP-style scheduling (Schedule).
// The paper reports BFS + dynamic scheduling as the best configuration in
// most experiments.
#ifndef SWIFTSPATIAL_JOIN_PARALLEL_SYNC_TRAVERSAL_H_
#define SWIFTSPATIAL_JOIN_PARALLEL_SYNC_TRAVERSAL_H_

#include <cstddef>

#include "common/thread_pool.h"
#include "join/result.h"
#include "rtree/packed_rtree.h"

namespace swiftspatial {

/// Traversal strategy for the parallel CPU baseline.
enum class TraversalStrategy {
  kBfs,
  kBfsDfs,
};

const char* TraversalStrategyToString(TraversalStrategy s);

struct ParallelSyncTraversalOptions {
  std::size_t num_threads = 1;
  TraversalStrategy strategy = TraversalStrategy::kBfs;
  Schedule schedule = Schedule::kDynamic;
  /// Switch to per-task DFS once the frontier has at least this many tasks
  /// per thread (the paper switches at 10x).
  std::size_t dfs_switch_factor = 10;
};

/// Multi-threaded synchronous traversal join.
JoinResult ParallelSyncTraversal(const PackedRTree& r, const PackedRTree& s,
                                 const ParallelSyncTraversalOptions& options,
                                 JoinStats* stats = nullptr);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_JOIN_PARALLEL_SYNC_TRAVERSAL_H_
