#include "join/predicates.h"

#include "join/sync_traversal.h"
#include "rtree/bulk_load.h"

namespace swiftspatial {

const char* SpatialPredicateToString(SpatialPredicate p) {
  switch (p) {
    case SpatialPredicate::kIntersects:
      return "intersects";
    case SpatialPredicate::kContains:
      return "contains";
    case SpatialPredicate::kWithin:
      return "within";
  }
  return "unknown";
}

JoinResult BruteForcePredicateJoin(const Dataset& r, const Dataset& s,
                                   SpatialPredicate predicate) {
  JoinResult out;
  for (std::size_t i = 0; i < r.size(); ++i) {
    for (std::size_t j = 0; j < s.size(); ++j) {
      if (EvaluatePredicate(predicate, r.box(i), s.box(j))) {
        out.Add(static_cast<ObjectId>(i), static_cast<ObjectId>(j));
      }
    }
  }
  return out;
}

JoinResult PredicateJoin(const Dataset& r, const Dataset& s,
                         SpatialPredicate predicate, JoinStats* stats) {
  if (r.empty() || s.empty()) return JoinResult();
  // Intersection candidates are a superset of contains/within results
  // (contained boxes necessarily intersect), so the standard filtering
  // machinery applies unchanged.
  BulkLoadOptions bl;
  const PackedRTree rt = StrBulkLoad(r, bl);
  const PackedRTree st = StrBulkLoad(s, bl);
  JoinResult candidates = SyncTraversalDfs(rt, st, stats);
  if (predicate == SpatialPredicate::kIntersects) return candidates;

  JoinResult out;
  for (const ResultPair& p : candidates.pairs()) {
    if (EvaluatePredicate(predicate, r.box(static_cast<std::size_t>(p.r)),
                          s.box(static_cast<std::size_t>(p.s)))) {
      out.Add(p.r, p.s);
    }
  }
  return out;
}

}  // namespace swiftspatial
