// Plane-sweep tile join (Algorithm 4 of the paper): sorts both inputs along
// x, sweeps a vertical line, and compares each arriving object only against
// the opposite active set. Used by the CPU PBSM baseline and by the
// nested-loop-vs-plane-sweep study (Fig. 14).
#ifndef SWIFTSPATIAL_JOIN_PLANE_SWEEP_H_
#define SWIFTSPATIAL_JOIN_PLANE_SWEEP_H_

#include <vector>

#include "datagen/dataset.h"
#include "geometry/box.h"
#include "join/result.h"

namespace swiftspatial {

/// Joins the objects listed in `r_ids` x `s_ids` by plane sweep along x.
/// `dedup_tile`, when non-null, applies the PBSM reference-point rule.
/// `stats->predicate_evaluations` counts the y-overlap checks performed
/// against active sets (the sweep's analogue of the NL predicate count).
void PlaneSweepTileJoin(const Dataset& r, const Dataset& s,
                        const std::vector<ObjectId>& r_ids,
                        const std::vector<ObjectId>& s_ids,
                        const Box* dedup_tile, JoinResult* out,
                        JoinStats* stats = nullptr);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_JOIN_PLANE_SWEEP_H_
