// Unified join-engine API: every join algorithm in the library is exposed as
// a JoinEngine -- a Plan -> Execute pipeline with per-stage wall-clock timing
// -- and registered by name in an EngineRegistry, so benchmarks, tests, the
// FaaS service, and examples all select algorithms through one interface.
//
//   auto run = RunJoin("parallel_sync_traversal", r, s, config);
//   if (!run.ok()) ...;
//   run->result   -- the qualifying (r, s) id pairs
//   run->stats    -- predicate counts / task counts
//   run->timing   -- plan (index/partition build) vs execute seconds
//
// Plan covers everything the paper's Table 2 prices separately from the join
// proper (bulk loads, partitioning); Execute is the join itself, i.e. the
// quantity Figures 8-12 plot. The registry is how the cross-algorithm
// equivalence oracle in tests/join/equivalence_test.cc enumerates every
// implementation without naming them individually.
#ifndef SWIFTSPATIAL_JOIN_ENGINE_H_
#define SWIFTSPATIAL_JOIN_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "datagen/dataset.h"
#include "dist/placement.h"
#include "grid/pbsm_partition.h"
#include "join/parallel_sync_traversal.h"
#include "join/pbsm.h"
#include "join/result.h"
#include "obs/trace.h"

namespace swiftspatial {

/// One configuration struct shared by every registered engine. Engines read
/// only the fields that apply to them and reject invalid values from Plan
/// with Status::InvalidArgument; unknown-to-them fields are ignored.
struct EngineConfig {
  // --- Shared across engines. ---
  std::size_t num_threads = 1;
  /// ParallelFor scheduling for pbsm and parallel_sync_traversal. The
  /// partitioned/simd/async drivers run as TaskGraph waves, which are
  /// inherently dynamic; they ignore this field.
  Schedule schedule = Schedule::kDynamic;
  /// Reject-at-ingest policy for malformed geometry: when true (the
  /// default), Plan fails with InvalidArgument if either dataset contains a
  /// box with a NaN/infinite coordinate or an inverted (min > max) extent.
  /// The predicate paths (geometry::Intersects and the SIMD filter kernel)
  /// agree on such inputs -- IEEE comparisons against NaN are false in both
  /// -- but engines must not rely on that quirk: indexes, partitioners, and
  /// the reference-point dedup rule all assume valid boxes. Disable only for
  /// experiments that guarantee validity out of band.
  bool validate_inputs = true;

  // --- R-tree engines (sync_traversal, parallel_sync_traversal). ---
  /// Maximum entries per R-tree node (paper optimum: 16).
  int node_capacity = 16;
  /// sync_traversal: traverse breadth-first [33] instead of depth-first.
  bool bfs = false;
  /// parallel_sync_traversal strategy.
  TraversalStrategy strategy = TraversalStrategy::kBfs;
  std::size_t dfs_switch_factor = 10;

  // --- Partition engines (pbsm, partitioned). ---
  /// pbsm: number of 1-D stripes.
  int num_partitions = 1024;
  Axis axis = Axis::kX;
  /// Tile-level join inside each stripe / grid cell.
  TileJoin tile_join = TileJoin::kPlaneSweep;
  /// partitioned: grid resolution; 0 = auto-sized from the input cardinality.
  int grid_cols = 0;
  int grid_rows = 0;

  // --- cuspatial_like. ---
  int quadtree_leaf_capacity = 128;
  std::size_t batch_size = 20000;

  // --- System-style baselines (interpreted_engine, big_data_framework). ---
  int index_max_entries = 16;

  // --- Simulated accelerator engines (accel-bfs, accel-pbsm,
  // accel-pbsm-4x; see join/accel_engine.h). ---
  /// Join units instantiated on the simulated device; 0 = the
  /// AcceleratorConfig default (the paper's 16).
  int accel_join_units = 0;
  /// Hierarchical-partition tile cap for the accel PBSM flows.
  int accel_tile_cap = 16;
  /// accel-pbsm-4x: per-device memory budget in bytes (the U250's 64 GB by
  /// default; small values force finer sharding).
  uint64_t accel_device_memory_bytes = 64ULL << 30;

  // --- Distributed cluster engines (dist-pbsm, dist-accel; see
  // dist/dist_engine.h). ---
  /// Cluster size (simulated in-process nodes).
  int dist_nodes = 4;
  /// Shard -> node placement policy.
  dist::PlacementPolicy dist_placement =
      dist::PlacementPolicy::kCostBalanced;
  /// Worker threads per node; 0 = split num_threads evenly across the
  /// cluster (at least 1 per node).
  std::size_t dist_node_threads = 0;

  // --- Observability (src/obs/). ---
  /// Request-scoped trace context: set by JoinService per request (or by
  /// callers invoking engines directly) and propagated through producers,
  /// TaskGraph tasks, and dist exchange messages. Deliberately EXCLUDED
  /// from ConfigFingerprint: two configs differing only in trace context
  /// plan identically and must share plan-cache entries.
  obs::TraceContext trace;
};

/// Per-stage wall-clock timings filled in by JoinEngine::Run.
struct StageTiming {
  /// Index builds / partitioning (Table 2's "construction" column).
  double plan_seconds = 0;
  /// The join itself (what Figures 8-12 plot).
  double execute_seconds = 0;

  double total_seconds() const { return plan_seconds + execute_seconds; }
};

/// Everything a finished join run reports.
struct JoinRun {
  JoinResult result;
  JoinStats stats;
  StageTiming timing;
};

/// The immutable output of planning, detached from the engine instance that
/// built it: packed R-trees, grid cell assignments, stripe partitions,
/// shard plans. A PreparedPlan pins the datasets it was planned over
/// (shared ownership), so a cached plan can outlive the request that built
/// it. Engines with native support expose plans that are safe to Execute
/// against from many threads at once; engines without it fall back to a
/// serialized generic wrapper (see PrepareJoin). This is the seam the
/// warm-serving plan cache (exec/dataset_registry) stores.
class PreparedPlan {
 public:
  PreparedPlan(std::string engine, std::shared_ptr<const Dataset> r,
               std::shared_ptr<const Dataset> s)
      : r_(std::move(r)), s_(std::move(s)), engine_(std::move(engine)) {}
  virtual ~PreparedPlan() = default;

  /// The engine name the plan was prepared for; ExecutePrepared on any
  /// other engine rejects it.
  const std::string& engine() const { return engine_; }
  const Dataset& r() const { return *r_; }
  const Dataset& s() const { return *s_; }
  const std::shared_ptr<const Dataset>& r_ptr() const { return r_; }
  const std::shared_ptr<const Dataset>& s_ptr() const { return s_; }

  /// Rough resident footprint of the planned artifacts (excluding the
  /// datasets themselves), for cache byte accounting.
  virtual std::size_t MemoryBytes() const = 0;

 private:
  // Declared first so every subclass's artifacts (which may reference the
  // datasets) are destroyed before the datasets are released.
  std::shared_ptr<const Dataset> r_;
  std::shared_ptr<const Dataset> s_;
  std::string engine_;
};

/// Wraps a stack- or caller-owned Dataset in a non-owning shared_ptr for
/// Prepare. The dataset must outlive every plan prepared over it.
inline std::shared_ptr<const Dataset> BorrowDataset(const Dataset& d) {
  return std::shared_ptr<const Dataset>(std::shared_ptr<const Dataset>(),
                                        &d);
}

/// Stable 64-bit fingerprint over every EngineConfig field, part of the
/// plan-cache key: two configs that could plan differently must fingerprint
/// differently. (New EngineConfig fields must be added to the hash -- see
/// the implementation's field list.)
uint64_t ConfigFingerprint(const EngineConfig& config);

/// A spatial-join algorithm behind the two-stage Plan -> Execute interface.
///
/// Lifecycle: create (via EngineRegistry::Create), Plan once, then Execute
/// one or more times -- each Execute re-runs the join against the planned
/// state, which is what lets benchmarks time the join proper without
/// re-paying index builds. Plan validates the configuration and builds any
/// auxiliary structures (R-trees, stripe partitions, grids). The datasets
/// passed to Plan must outlive the last Execute. Engines are not
/// thread-safe; internally they parallelise per `EngineConfig::num_threads`.
class JoinEngine {
 public:
  virtual ~JoinEngine() = default;

  /// The name the engine was registered under, e.g. "pbsm".
  virtual const std::string& name() const = 0;

  /// Validates config + inputs and builds indexes/partitions.
  virtual Status Plan(const Dataset& r, const Dataset& s) = 0;

  /// Runs the join. Must be called after a successful Plan. `*out` is
  /// overwritten; `*stats` (when non-null) accumulates across calls.
  virtual Status Execute(JoinResult* out, JoinStats* stats) = 0;

  /// Warm-serving seam: like Plan, but the planned artifacts come back as a
  /// detached immutable PreparedPlan instead of mutating engine state, so
  /// they can be cached and shared across requests. Engines with native
  /// support (partitioned/simd, the R-tree traversals, pbsm, the dist
  /// engines) return plans whose ExecutePrepared is safe from many threads
  /// at once; the default returns NotSupported, which PrepareJoin turns
  /// into the serialized generic fallback.
  virtual Result<std::shared_ptr<const PreparedPlan>> Prepare(
      std::shared_ptr<const Dataset> r, std::shared_ptr<const Dataset> s);

  /// Runs the join against a previously prepared plan, skipping Plan
  /// entirely -- the steady-state warm path. The plan must have been
  /// prepared for this engine name (InvalidArgument otherwise). Same
  /// output contract as Execute: `*out` is overwritten, `*stats`
  /// accumulates; results are bit-identical to a cold Plan + Execute.
  virtual Status ExecutePrepared(const PreparedPlan& plan, JoinResult* out,
                                 JoinStats* stats);

  /// Convenience: Plan + Execute with per-stage timing.
  Result<JoinRun> Run(const Dataset& r, const Dataset& s);
};

/// Factory invoked by the registry; receives the caller's configuration.
using EngineFactory =
    std::function<std::unique_ptr<JoinEngine>(const EngineConfig&)>;

/// Name -> factory registry. `Global()` returns the process-wide instance,
/// pre-populated with every built-in engine (see kBuiltinEngines). New
/// engines (plugins, experiments) register at startup:
///
///   EngineRegistry::Global().Register("my_join", [](const EngineConfig& c) {
///     return std::make_unique<MyJoin>(c);
///   });
class EngineRegistry {
 public:
  /// The process-wide registry with all built-in engines registered.
  static EngineRegistry& Global();

  /// Registers a factory. Fails with InvalidArgument on empty names or
  /// AlreadyExists-style collisions (reported as InvalidArgument).
  Status Register(const std::string& name, EngineFactory factory)
      EXCLUDES(mu_);

  bool Contains(const std::string& name) const EXCLUDES(mu_);

  /// Instantiates engine `name`, or NotFound listing the known engines.
  Result<std::unique_ptr<JoinEngine>> Create(
      const std::string& name, const EngineConfig& config = {}) const
      EXCLUDES(mu_);

  /// Sorted names of all registered engines.
  std::vector<std::string> Names() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, EngineFactory> factories_ GUARDED_BY(mu_);
};

/// One-call convenience: instantiate `engine` from the global registry, then
/// Plan + Execute with timing.
Result<JoinRun> RunJoin(const std::string& engine, const Dataset& r,
                        const Dataset& s, const EngineConfig& config = {});

/// Builds a PreparedPlan for `engine` (a global-registry name) over (r, s).
/// Engines with native prepared-plan support return shareable immutable
/// plans; for the rest this falls back to wrapping a planned engine
/// instance behind a mutex (correct, but warm executions serialize). The
/// returned plan holds shared ownership of both datasets.
Result<std::shared_ptr<const PreparedPlan>> PrepareJoin(
    const std::string& engine, std::shared_ptr<const Dataset> r,
    std::shared_ptr<const Dataset> s, const EngineConfig& config = {});

/// Warm-path convenience: instantiate the plan's engine from the global
/// registry and ExecutePrepared with timing. plan_seconds is what the warm
/// path saves -- it covers only engine instantiation, not planning, and is
/// ~0 for every engine.
Result<JoinRun> RunPreparedJoin(const PreparedPlan& plan,
                                const EngineConfig& config = {});

// Built-in engine names (all registered in EngineRegistry::Global()).
inline constexpr const char* kNestedLoopEngine = "nested_loop";
inline constexpr const char* kPlaneSweepEngine = "plane_sweep";
inline constexpr const char* kPbsmEngine = "pbsm";
inline constexpr const char* kCuSpatialLikeEngine = "cuspatial_like";
inline constexpr const char* kSyncTraversalEngine = "sync_traversal";
inline constexpr const char* kParallelSyncTraversalEngine =
    "parallel_sync_traversal";
inline constexpr const char* kPartitionedEngine = "partitioned";
inline constexpr const char* kSimdEngine = "simd";
/// The streaming executor collected back into a synchronous result: Execute
/// runs the banded async pipeline (exec/streaming.h) and Collect()s it, so
/// registering it here opts the whole streaming path into the equivalence
/// oracle.
inline constexpr const char* kAsyncEngine = "async";
inline constexpr const char* kInterpretedEngineBaseline = "interpreted_engine";
inline constexpr const char* kBigDataFrameworkBaseline = "big_data_framework";
/// The simulated accelerator behind the same Plan -> Execute interface:
/// BFS R-tree synchronous traversal (accel-bfs, §3.4.1), the tile-pair join
/// over a hierarchical partition (accel-pbsm, §3.4.2), and the sharded
/// multi-device PBSM variant (accel-pbsm-4x, §6). Declared in
/// join/accel_engine.h, which also exposes their streaming Execute.
inline constexpr const char* kAccelBfsEngine = "accel-bfs";
inline constexpr const char* kAccelPbsmEngine = "accel-pbsm";
inline constexpr const char* kAccelPbsmMultiEngine = "accel-pbsm-4x";
/// The in-process simulated cluster (src/dist/): grid shards placed on N
/// nodes, per-shard results streamed over bounded exchange links to a merge
/// coordinator, node failures recovered by shard re-execution. dist-pbsm
/// joins shards on CPU workers; dist-accel fronts one simulated device per
/// shard (accel-pbsm-4x generalised to N x M). Declared in
/// dist/dist_engine.h, which also exposes their streaming Execute.
inline constexpr const char* kDistPbsmEngine = "dist-pbsm";
inline constexpr const char* kDistAccelEngine = "dist-accel";

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_JOIN_ENGINE_H_
