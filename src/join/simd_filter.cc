#include "join/simd_filter.h"

#include <algorithm>
#include <bit>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace swiftspatial {

const char* SimdFilterBackend() {
#if defined(__AVX2__)
  return "avx2";
#else
  return "scalar";
#endif
}

void FilterSoA(const Box& probe, const Coord* min_x, const Coord* min_y,
               const Coord* max_x, const Coord* max_y, std::size_t n,
               uint64_t* mask) {
  std::fill_n(mask, FilterMaskWords(n), uint64_t{0});
  std::size_t i = 0;
#if defined(__AVX2__)
  // 8 candidates per iteration. _CMP_GE_OQ is the ordered-quiet >=: false
  // when either operand is NaN, exactly like the scalar `>=` below, so both
  // paths agree bit-for-bit on non-finite inputs.
  const __m256 p_max_x = _mm256_set1_ps(probe.max_x);
  const __m256 p_min_x = _mm256_set1_ps(probe.min_x);
  const __m256 p_max_y = _mm256_set1_ps(probe.max_y);
  const __m256 p_min_y = _mm256_set1_ps(probe.min_y);
  for (; i + 8 <= n; i += 8) {
    const __m256 hit_x = _mm256_and_ps(
        _mm256_cmp_ps(p_max_x, _mm256_loadu_ps(min_x + i), _CMP_GE_OQ),
        _mm256_cmp_ps(_mm256_loadu_ps(max_x + i), p_min_x, _CMP_GE_OQ));
    const __m256 hit_y = _mm256_and_ps(
        _mm256_cmp_ps(p_max_y, _mm256_loadu_ps(min_y + i), _CMP_GE_OQ),
        _mm256_cmp_ps(_mm256_loadu_ps(max_y + i), p_min_y, _CMP_GE_OQ));
    const auto bits = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_and_ps(hit_x, hit_y)));
    // i advances in steps of 8, so a lane group never straddles a word.
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
#endif
  // Scalar fallback: 64-candidate blocks. The comparisons write one byte
  // per candidate in a branchless elementwise loop the compiler
  // auto-vectorizes (a variable-shift OR into the mask word would defeat
  // it -- the pack is split out so only the cheap byte reduction stays
  // scalar). Without AVX2, i is 0 here; with it, fewer than 8 candidates
  // remain and the block loop is skipped, so i is always 64-aligned when a
  // block runs and whole-word assignment is safe.
  for (; i + 64 <= n; i += 64) {
    unsigned char hits[64];
    for (int b = 0; b < 64; ++b) {
      const std::size_t j = i + static_cast<std::size_t>(b);
      hits[b] = static_cast<unsigned char>(
          (probe.max_x >= min_x[j]) & (max_x[j] >= probe.min_x) &
          (probe.max_y >= min_y[j]) & (max_y[j] >= probe.min_y));
    }
    uint64_t word = 0;
    for (int b = 0; b < 64; ++b) {
      word |= static_cast<uint64_t>(hits[b]) << b;
    }
    mask[i >> 6] = word;
  }
  // Tail (and sub-8 AVX2 remainder): per-bit, at most 63 iterations.
  for (; i < n; ++i) {
    const bool hit = probe.max_x >= min_x[i] && max_x[i] >= probe.min_x &&
                     probe.max_y >= min_y[i] && max_y[i] >= probe.min_y;
    mask[i >> 6] |= static_cast<uint64_t>(hit) << (i & 63);
  }
}

void SimdTileJoin(const Dataset& r, const Dataset& s,
                  const std::vector<ObjectId>& r_ids,
                  const std::vector<ObjectId>& s_ids, const Box* dedup_tile,
                  JoinResult* out, JoinStats* stats) {
  const BoxBlock block = BoxBlock::FromSubset(s, s_ids);
  std::vector<uint64_t> mask(FilterMaskWords(block.size()));
  for (ObjectId ri : r_ids) {
    const Box& rb = r.box(static_cast<std::size_t>(ri));
    FilterBoxBlock(rb, block, mask.data());
    for (std::size_t w = 0; w < mask.size(); ++w) {
      uint64_t bits = mask[w];
      while (bits != 0) {
        const std::size_t j = (w << 6) + std::countr_zero(bits);
        bits &= bits - 1;
        // The candidate's coordinates come from the SoA arrays already in
        // cache, not a strided re-fetch from the Dataset.
        if (dedup_tile != nullptr &&
            !ReferencePointInTile(rb, block.BoxAt(j), *dedup_tile)) {
          continue;
        }
        out->Add(ri, block.id(j));
      }
    }
  }
  if (stats != nullptr) {
    stats->predicate_evaluations +=
        static_cast<uint64_t>(r_ids.size()) * s_ids.size();
    stats->tasks += 1;
  }
}

}  // namespace swiftspatial
