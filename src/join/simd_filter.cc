#include "join/simd_filter.h"

#include <algorithm>
#include <bit>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace swiftspatial {

const char* SimdFilterBackend() {
#if defined(__AVX2__)
  return "avx2";
#else
  return "scalar";
#endif
}

void FilterSoA(const Box& probe, const Coord* min_x, const Coord* min_y,
               const Coord* max_x, const Coord* max_y, std::size_t n,
               uint64_t* mask) {
  std::fill_n(mask, FilterMaskWords(n), uint64_t{0});
  std::size_t i = 0;
#if defined(__AVX2__)
  // 8 candidates per iteration. _CMP_GE_OQ is the ordered-quiet >=: false
  // when either operand is NaN, exactly like the scalar `>=` below, so both
  // paths agree bit-for-bit on non-finite inputs.
  const __m256 p_max_x = _mm256_set1_ps(probe.max_x);
  const __m256 p_min_x = _mm256_set1_ps(probe.min_x);
  const __m256 p_max_y = _mm256_set1_ps(probe.max_y);
  const __m256 p_min_y = _mm256_set1_ps(probe.min_y);
  for (; i + 8 <= n; i += 8) {
    const __m256 hit_x = _mm256_and_ps(
        _mm256_cmp_ps(p_max_x, _mm256_loadu_ps(min_x + i), _CMP_GE_OQ),
        _mm256_cmp_ps(_mm256_loadu_ps(max_x + i), p_min_x, _CMP_GE_OQ));
    const __m256 hit_y = _mm256_and_ps(
        _mm256_cmp_ps(p_max_y, _mm256_loadu_ps(min_y + i), _CMP_GE_OQ),
        _mm256_cmp_ps(_mm256_loadu_ps(max_y + i), p_min_y, _CMP_GE_OQ));
    const auto bits = static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_and_ps(hit_x, hit_y)));
    // i advances in steps of 8, so a lane group never straddles a word.
    mask[i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
  }
#endif
  // Scalar fallback: 64-candidate blocks. The comparisons write one byte
  // per candidate in a branchless elementwise loop the compiler
  // auto-vectorizes (a variable-shift OR into the mask word would defeat
  // it -- the pack is split out so only the cheap byte reduction stays
  // scalar). Without AVX2, i is 0 here; with it, fewer than 8 candidates
  // remain and the block loop is skipped, so i is always 64-aligned when a
  // block runs and whole-word assignment is safe.
  for (; i + 64 <= n; i += 64) {
    unsigned char hits[64];
    for (int b = 0; b < 64; ++b) {
      const std::size_t j = i + static_cast<std::size_t>(b);
      hits[b] = static_cast<unsigned char>(
          (probe.max_x >= min_x[j]) & (max_x[j] >= probe.min_x) &
          (probe.max_y >= min_y[j]) & (max_y[j] >= probe.min_y));
    }
    uint64_t word = 0;
    for (int b = 0; b < 64; ++b) {
      word |= static_cast<uint64_t>(hits[b]) << b;
    }
    mask[i >> 6] = word;
  }
  // Tail (and sub-8 AVX2 remainder): per-bit, at most 63 iterations.
  for (; i < n; ++i) {
    const bool hit = probe.max_x >= min_x[i] && max_x[i] >= probe.min_x &&
                     probe.max_y >= min_y[i] && max_y[i] >= probe.min_y;
    mask[i >> 6] |= static_cast<uint64_t>(hit) << (i & 63);
  }
}

void FilterSoAProbeBlock(const Coord* p_min_x, const Coord* p_min_y,
                         const Coord* p_max_x, const Coord* p_max_y,
                         std::size_t np, const Coord* min_x,
                         const Coord* min_y, const Coord* max_x,
                         const Coord* max_y, std::size_t n, uint64_t* masks) {
  const std::size_t words = FilterMaskWords(n);
  std::size_t p = 0;
#if defined(__AVX2__)
  // Probe quads over 8-candidate vectors: the four candidate loads are
  // amortised across four probes held broadcast in registers, quartering
  // the load traffic of the per-probe kernel.
  for (; p + 4 <= np; p += 4) {
    uint64_t* m[4];
    __m256 q_max_x[4], q_min_x[4], q_max_y[4], q_min_y[4];
    for (std::size_t b = 0; b < 4; ++b) {
      m[b] = masks + (p + b) * words;
      std::fill_n(m[b], words, uint64_t{0});
      q_max_x[b] = _mm256_set1_ps(p_max_x[p + b]);
      q_min_x[b] = _mm256_set1_ps(p_min_x[p + b]);
      q_max_y[b] = _mm256_set1_ps(p_max_y[p + b]);
      q_min_y[b] = _mm256_set1_ps(p_min_y[p + b]);
    }
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const __m256 c_min_x = _mm256_loadu_ps(min_x + i);
      const __m256 c_max_x = _mm256_loadu_ps(max_x + i);
      const __m256 c_min_y = _mm256_loadu_ps(min_y + i);
      const __m256 c_max_y = _mm256_loadu_ps(max_y + i);
      for (std::size_t b = 0; b < 4; ++b) {
        const __m256 hit_x = _mm256_and_ps(
            _mm256_cmp_ps(q_max_x[b], c_min_x, _CMP_GE_OQ),
            _mm256_cmp_ps(c_max_x, q_min_x[b], _CMP_GE_OQ));
        const __m256 hit_y = _mm256_and_ps(
            _mm256_cmp_ps(q_max_y[b], c_min_y, _CMP_GE_OQ),
            _mm256_cmp_ps(c_max_y, q_min_y[b], _CMP_GE_OQ));
        const auto bits = static_cast<uint32_t>(
            _mm256_movemask_ps(_mm256_and_ps(hit_x, hit_y)));
        m[b][i >> 6] |= static_cast<uint64_t>(bits) << (i & 63);
      }
    }
    // Candidate tail: per-bit, at most 7 per probe.
    for (std::size_t b = 0; b < 4; ++b) {
      for (std::size_t j = i; j < n; ++j) {
        const bool hit =
            p_max_x[p + b] >= min_x[j] && max_x[j] >= p_min_x[p + b] &&
            p_max_y[p + b] >= min_y[j] && max_y[j] >= p_min_y[p + b];
        m[b][j >> 6] |= static_cast<uint64_t>(hit) << (j & 63);
      }
    }
  }
#else
  // Scalar fallback, candidate-block-major: each 64-candidate chunk (1 KB
  // of SoA coordinates) is walked once per probe while it is L1-hot, so the
  // candidate arrays are streamed from memory once per *probe batch*
  // instead of once per probe. The per-probe inner loop keeps exactly the
  // elementwise-byte compare + separate pack shape of FilterSoA -- the form
  // compilers auto-vectorize; interleaving probes inside the candidate loop
  // would break it.
  for (std::size_t q = 0; q < np; ++q) {
    std::fill_n(masks + q * words, words, uint64_t{0});
  }
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    for (std::size_t q = 0; q < np; ++q) {
      const Coord qmxx = p_max_x[q], qmnx = p_min_x[q];
      const Coord qmxy = p_max_y[q], qmny = p_min_y[q];
      unsigned char hits[64];
      for (int c = 0; c < 64; ++c) {
        const std::size_t j = i + static_cast<std::size_t>(c);
        hits[c] = static_cast<unsigned char>(
            (qmxx >= min_x[j]) & (max_x[j] >= qmnx) & (qmxy >= min_y[j]) &
            (max_y[j] >= qmny));
      }
      uint64_t word = 0;
      for (int c = 0; c < 64; ++c) {
        word |= static_cast<uint64_t>(hits[c]) << c;
      }
      masks[q * words + (i >> 6)] = word;
    }
  }
  // Candidate tail: per-bit, at most 63 per probe.
  for (std::size_t q = 0; q < np; ++q) {
    for (std::size_t j = i; j < n; ++j) {
      const bool hit = p_max_x[q] >= min_x[j] && max_x[j] >= p_min_x[q] &&
                       p_max_y[q] >= min_y[j] && max_y[j] >= p_min_y[q];
      masks[q * words + (j >> 6)] |= static_cast<uint64_t>(hit) << (j & 63);
    }
  }
  p = np;  // the block handled every probe
#endif
  // Probe tail of the AVX2 quad path (< 4 remaining; no-op for the scalar
  // fallback): the per-probe kernel.
  for (; p < np; ++p) {
    FilterSoA(Box(p_min_x[p], p_min_y[p], p_max_x[p], p_max_y[p]), min_x,
              min_y, max_x, max_y, n, masks + p * words);
  }
}

void SimdTileJoin(const Dataset& r, const Dataset& s,
                  const std::vector<ObjectId>& r_ids,
                  const std::vector<ObjectId>& s_ids, const Box* dedup_tile,
                  JoinResult* out, JoinStats* stats) {
  const BoxBlock probes = BoxBlock::FromSubset(r, r_ids);
  const BoxBlock block = BoxBlock::FromSubset(s, s_ids);
  const std::size_t words = FilterMaskWords(block.size());
  // Probes per kernel call: a multiple of the quad so only the last call
  // takes the per-probe tail, small enough that the mask staging buffer
  // stays cache-resident even for large tiles.
  constexpr std::size_t kProbeTile = 16;
  std::vector<uint64_t> masks(kProbeTile * words);
  for (std::size_t p0 = 0; p0 < probes.size(); p0 += kProbeTile) {
    const std::size_t np = std::min(kProbeTile, probes.size() - p0);
    FilterSoAProbeBlock(probes.min_x() + p0, probes.min_y() + p0,
                        probes.max_x() + p0, probes.max_y() + p0, np,
                        block.min_x(), block.min_y(), block.max_x(),
                        block.max_y(), block.size(), masks.data());
    for (std::size_t b = 0; b < np; ++b) {
      const Box rb = probes.BoxAt(p0 + b);
      const ObjectId ri = probes.id(p0 + b);
      const uint64_t* mask = masks.data() + b * words;
      for (std::size_t w = 0; w < words; ++w) {
        uint64_t bits = mask[w];
        while (bits != 0) {
          const std::size_t j = (w << 6) + std::countr_zero(bits);
          bits &= bits - 1;
          // The candidate's coordinates come from the SoA arrays already in
          // cache, not a strided re-fetch from the Dataset.
          if (dedup_tile != nullptr &&
              !ReferencePointInTile(rb, block.BoxAt(j), *dedup_tile)) {
            continue;
          }
          out->Add(ri, block.id(j));
        }
      }
    }
  }
  if (stats != nullptr) {
    stats->predicate_evaluations +=
        static_cast<uint64_t>(r_ids.size()) * s_ids.size();
    stats->tasks += 1;
  }
}

}  // namespace swiftspatial
