// Batched MBR filter kernel: tests one probe box against N candidate boxes
// held in a structure-of-arrays BoxBlock and returns a match bitmask. This
// is the CPU-side counterpart of the SwiftSpatial join unit's parallel
// comparator banks (Fig. 3): instead of one Intersects call per pair, W
// candidates are compared per vector instruction.
//
// Two code paths share one set of semantics:
//   - an AVX2 path (compiled when the translation unit is built with
//     -mavx2 / -march=native, i.e. __AVX2__ is defined) doing 8 boxes per
//     iteration with _CMP_GE_OQ comparisons;
//   - a portable scalar fallback processing 64-candidate blocks: a
//     branchless elementwise compare loop writes one hit byte per candidate
//     (the form compilers auto-vectorize; OR-ing variable-shifted bits
//     directly into the mask word would defeat vectorization), then a
//     separate cheap pack loop folds the 64 bytes into the output word. A
//     per-bit loop handles the tail when N is not a multiple of the block.
//
// Comparison semantics are bit-identical to geometry::Intersects: closed
// boundaries (>=), so touching edges and corners match; any comparison
// against NaN is false in both paths (ordered-quiet vector compares mirror
// the scalar IEEE `>=`), so a box with a NaN coordinate matches nothing.
// Callers that must not depend on that quirk reject non-finite boxes at
// ingest instead (EngineConfig::validate_inputs). The regression suite in
// tests/join/simd_filter_test.cc diffs the kernel against the scalar
// predicate on adversarial inputs so these semantics cannot silently drift.
#ifndef SWIFTSPATIAL_JOIN_SIMD_FILTER_H_
#define SWIFTSPATIAL_JOIN_SIMD_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "datagen/dataset.h"
#include "geometry/box.h"
#include "geometry/box_block.h"
#include "join/result.h"

namespace swiftspatial {

/// Which kernel implementation this binary was compiled with: "avx2" or
/// "scalar" (the auto-vectorizable fallback).
const char* SimdFilterBackend();

/// Number of 64-bit mask words needed for an n-candidate filter call.
inline std::size_t FilterMaskWords(std::size_t n) { return (n + 63) / 64; }

/// Core kernel over raw SoA coordinate arrays: bit i of `mask` is set iff
/// `probe` intersects candidate i (closed boundaries, identical to
/// geometry::Intersects). `mask` must hold FilterMaskWords(n) words; all of
/// them are overwritten and bits at positions >= n are zero.
void FilterSoA(const Box& probe, const Coord* min_x, const Coord* min_y,
               const Coord* max_x, const Coord* max_y, std::size_t n,
               uint64_t* mask);

/// Convenience overload over a BoxBlock.
inline void FilterBoxBlock(const Box& probe, const BoxBlock& block,
                           uint64_t* mask) {
  FilterSoA(probe, block.min_x(), block.min_y(), block.max_x(), block.max_y(),
            block.size(), mask);
}

/// Probe-blocked kernel: filters `np` probes (their coordinates in SoA
/// arrays, exactly as a BoxBlock stores them) against the same n candidates
/// in one pass. Per-probe semantics identical to FilterSoA; the point is
/// bandwidth: the candidate arrays are streamed once per probe *quad*
/// instead of once per probe, with the four candidate loads serving four
/// probe comparisons from registers (the hardware analogue: SwiftSpatial's
/// join unit feeds one fetched S-tile to its comparator banks for a whole
/// block of R entries, not per R row). `masks` must hold
/// np * FilterMaskWords(n) words, probe-major: probe p's words start at
/// p * FilterMaskWords(n). All are overwritten.
void FilterSoAProbeBlock(const Coord* p_min_x, const Coord* p_min_y,
                         const Coord* p_max_x, const Coord* p_max_y,
                         std::size_t np, const Coord* min_x,
                         const Coord* min_y, const Coord* max_x,
                         const Coord* max_y, std::size_t n, uint64_t* masks);

/// Tile-level join through the batched kernel: probes from `r_ids` are
/// gathered into a BoxBlock alongside the `s_ids` candidates and filtered
/// through the probe-blocked kernel (FilterSoAProbeBlock), so both sides of
/// the all-pairs tile join are batched. Matches surviving the optional
/// reference-point dedup are appended to `out`. Drop-in equivalent of
/// NestedLoopTileJoin (same result multiset, same stats accounting);
/// selected in partition drivers with TileJoin::kSimd.
void SimdTileJoin(const Dataset& r, const Dataset& s,
                  const std::vector<ObjectId>& r_ids,
                  const std::vector<ObjectId>& s_ids, const Box* dedup_tile,
                  JoinResult* out, JoinStats* stats = nullptr);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_JOIN_SIMD_FILTER_H_
