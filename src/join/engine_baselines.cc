#include "join/engine_baselines.h"

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "grid/uniform_grid.h"
#include "rtree/bulk_load.h"
#include "rtree/packed_rtree.h"

namespace swiftspatial {

namespace {

// ---------------------------------------------------------------------------
// PostGIS-like machinery: generic serialized tuples + interpreted predicates.
// ---------------------------------------------------------------------------

// Row format: int32 id | float min_x | float min_y | float max_x | float max_y
constexpr std::size_t kRowBytes = sizeof(int32_t) + 4 * sizeof(float);

// A column-agnostic row store holding serialized tuples back to back.
class RowStore {
 public:
  explicit RowStore(const Dataset& d) {
    bytes_.resize(d.size() * kRowBytes);
    for (std::size_t i = 0; i < d.size(); ++i) {
      uint8_t* p = bytes_.data() + i * kRowBytes;
      const int32_t id = static_cast<int32_t>(i);
      std::memcpy(p, &id, sizeof(id));
      const Box& b = d.box(i);
      std::memcpy(p + 4, &b, sizeof(Box));
    }
  }
  const uint8_t* row(std::size_t i) const {
    return bytes_.data() + i * kRowBytes;
  }

 private:
  std::vector<uint8_t> bytes_;
};

// Field extraction "deserialises" on every access, as a generic executor
// reading from a heap tuple would.
float LoadField(const uint8_t* row, int field) {
  float v;
  std::memcpy(&v, row + 4 + field * sizeof(float), sizeof(v));
  return v;
}
int32_t LoadId(const uint8_t* row) {
  int32_t v;
  std::memcpy(&v, row, sizeof(v));
  return v;
}

// Interpreted boolean expression over a pair of rows.
class Expr {
 public:
  virtual ~Expr() = default;
  virtual bool Eval(const uint8_t* r, const uint8_t* s) const = 0;
};

// field_r on the left row >= field_s on the right row (or swapped).
class GeCompare : public Expr {
 public:
  GeCompare(bool left_is_r, int left_field, int right_field)
      : left_is_r_(left_is_r),
        left_field_(left_field),
        right_field_(right_field) {}
  bool Eval(const uint8_t* r, const uint8_t* s) const override {
    const uint8_t* left = left_is_r_ ? r : s;
    const uint8_t* right = left_is_r_ ? s : r;
    return LoadField(left, left_field_) >= LoadField(right, right_field_);
  }

 private:
  bool left_is_r_;
  int left_field_;
  int right_field_;
};

class AndExpr : public Expr {
 public:
  void Add(std::unique_ptr<Expr> child) { children_.push_back(std::move(child)); }
  bool Eval(const uint8_t* r, const uint8_t* s) const override {
    for (const auto& c : children_) {
      if (!c->Eval(r, s)) return false;
    }
    return true;
  }

 private:
  std::vector<std::unique_ptr<Expr>> children_;
};

// Builds the ST_Intersects-on-MBR expression:
//   r.max_x >= s.min_x AND s.max_x >= r.min_x AND
//   r.max_y >= s.min_y AND s.max_y >= r.min_y
// Field order: 0 = min_x, 1 = min_y, 2 = max_x, 3 = max_y.
std::unique_ptr<Expr> BuildIntersectsExpr() {
  auto root = std::make_unique<AndExpr>();
  root->Add(std::make_unique<GeCompare>(/*left_is_r=*/true, 2, 0));
  root->Add(std::make_unique<GeCompare>(/*left_is_r=*/false, 2, 0));
  root->Add(std::make_unique<GeCompare>(/*left_is_r=*/true, 3, 1));
  root->Add(std::make_unique<GeCompare>(/*left_is_r=*/false, 3, 1));
  return root;
}

// ---------------------------------------------------------------------------
// Big-data-framework machinery: shuffle materialisation and boxed rows.
// ---------------------------------------------------------------------------

// A heap-allocated row object with a vtable, standing in for a JVM object.
struct BoxedRow {
  virtual ~BoxedRow() = default;
  int32_t id = 0;
  Box box;
};

// Serialized shuffle block for one partition.
struct ShuffleBlock {
  std::vector<uint8_t> bytes;

  void Append(int32_t id, const Box& box) {
    const std::size_t off = bytes.size();
    bytes.resize(off + kRowBytes);
    std::memcpy(bytes.data() + off, &id, sizeof(id));
    std::memcpy(bytes.data() + off + 4, &box, sizeof(Box));
  }
  std::size_t rows() const { return bytes.size() / kRowBytes; }
};

std::vector<std::unique_ptr<BoxedRow>> Deserialize(const ShuffleBlock& block) {
  std::vector<std::unique_ptr<BoxedRow>> rows;
  rows.reserve(block.rows());
  for (std::size_t i = 0; i < block.rows(); ++i) {
    auto row = std::make_unique<BoxedRow>();
    const uint8_t* p = block.bytes.data() + i * kRowBytes;
    std::memcpy(&row->id, p, sizeof(row->id));
    std::memcpy(&row->box, p + 4, sizeof(Box));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

JoinResult InterpretedEngineJoin(const Dataset& r, const Dataset& s,
                                 const InterpretedEngineOptions& options,
                                 JoinStats* stats) {
  // Build phase: GiST-analogue index on the inner relation.
  BulkLoadOptions bl;
  bl.max_entries = options.index_max_entries;
  bl.num_threads = options.num_threads;
  const PackedRTree index = StrBulkLoad(s, bl);

  const RowStore r_rows(r);
  const RowStore s_rows(s);
  const auto predicate = BuildIntersectsExpr();

  const std::size_t threads = std::max<std::size_t>(1, options.num_threads);
  struct WorkerState {
    JoinResult result;
    uint64_t evals = 0;
  };
  std::vector<WorkerState> workers(threads);

  // Parallel scan of the outer relation, one window query per tuple.
  ParallelForWorker(
      r.size(), threads, Schedule::kDynamic,
      [&](std::size_t i, std::size_t w) {
        WorkerState& state = workers[w];
        const uint8_t* r_row = r_rows.row(i);
        // The index probe uses the row's (deserialized) geometry.
        const Box window(LoadField(r_row, 0), LoadField(r_row, 1),
                         LoadField(r_row, 2), LoadField(r_row, 3));
        for (ObjectId sid : index.WindowQuery(window)) {
          const uint8_t* s_row = s_rows.row(static_cast<std::size_t>(sid));
          ++state.evals;
          // Recheck through the interpreted executor expression, as the
          // engine re-evaluates the join qual on each candidate.
          if (predicate->Eval(r_row, s_row)) {
            state.result.Add(LoadId(r_row), LoadId(s_row));
          }
        }
      },
      /*chunk=*/256);

  JoinResult out;
  for (auto& w : workers) {
    out.Merge(std::move(w.result));
    if (stats != nullptr) stats->predicate_evaluations += w.evals;
  }
  if (stats != nullptr) stats->tasks += r.size();
  return out;
}

JoinResult BigDataFrameworkJoin(const Dataset& r, const Dataset& s,
                                const BigDataFrameworkOptions& options,
                                JoinStats* stats) {
  SWIFT_CHECK_GE(options.num_partitions, 1);
  // Square-ish grid with ~num_partitions tiles.
  const int cols = std::max(
      1, static_cast<int>(std::round(std::sqrt(options.num_partitions))));
  const int rows = (options.num_partitions + cols - 1) / cols;
  Box extent = r.Extent();
  extent.Expand(s.Extent());
  const UniformGrid grid(extent, cols, rows);

  // --- Shuffle phase: serialize every row into its partitions' blocks. ---
  const int tiles = grid.num_tiles();
  std::vector<ShuffleBlock> r_blocks(tiles), s_blocks(tiles);
  auto shuffle = [&grid](const Dataset& d, std::vector<ShuffleBlock>* blocks) {
    for (std::size_t i = 0; i < d.size(); ++i) {
      const Box& b = d.box(i);
      int tx0, ty0, tx1, ty1;
      grid.TileRange(b, &tx0, &ty0, &tx1, &ty1);
      for (int ty = ty0; ty <= ty1; ++ty) {
        for (int tx = tx0; tx <= tx1; ++tx) {
          if (Intersects(b, grid.TileBox(tx, ty))) {
            (*blocks)[ty * grid.cols() + tx].Append(static_cast<int32_t>(i), b);
          }
        }
      }
    }
  };
  shuffle(r, &r_blocks);
  shuffle(s, &s_blocks);

  // --- Per-partition join tasks. ---
  const std::size_t threads = std::max<std::size_t>(1, options.num_threads);
  struct WorkerState {
    JoinResult result;
    JoinStats stats;
  };
  std::vector<WorkerState> workers(threads);

  ParallelForWorker(
      static_cast<std::size_t>(tiles), threads, Schedule::kDynamic,
      [&](std::size_t t, std::size_t w) {
        if (r_blocks[t].rows() == 0 || s_blocks[t].rows() == 0) return;
        WorkerState& state = workers[w];
        const Box tile = grid.DedupTileByIndex(static_cast<int>(t));

        // Deserialize into boxed row objects.
        auto r_rows = Deserialize(r_blocks[t]);
        auto s_rows = Deserialize(s_blocks[t]);

        // Per-partition index build at join time (Sedona's RDD join path).
        std::vector<Box> s_boxes;
        s_boxes.reserve(s_rows.size());
        for (const auto& row : s_rows) s_boxes.push_back(row->box);
        Dataset s_part("part", std::move(s_boxes));
        BulkLoadOptions bl;
        bl.max_entries = options.index_max_entries;
        const PackedRTree index = StrBulkLoad(s_part, bl);

        state.stats.tasks += 1;
        for (const auto& r_row : r_rows) {
          for (ObjectId local : index.WindowQuery(r_row->box)) {
            const auto& s_row = s_rows[static_cast<std::size_t>(local)];
            ++state.stats.predicate_evaluations;
            if (!Intersects(r_row->box, s_row->box)) continue;
            if (!ReferencePointInTile(r_row->box, s_row->box, tile)) continue;
            state.result.Add(r_row->id, s_row->id);
          }
        }
      },
      /*chunk=*/1);

  // --- Merge phase: single-threaded result collection. ---
  JoinResult out;
  for (auto& w : workers) {
    out.Merge(std::move(w.result));
    if (stats != nullptr) *stats += w.stats;
  }
  return out;
}

}  // namespace swiftspatial
