// cuSpatial-like join (§5.1): the GPU library's algorithmic structure ported
// to CPU threads, since no GPU is available here (DESIGN.md substitution
// table). Structure preserved from cuSpatial:
//
//  * only the *point* dataset is indexed, with a quadtree (leaf size 128);
//  * polygons act as batched window queries (batch cap 20,000 -- the largest
//    batch the paper could run without GPU memory over-allocation);
//  * each batch runs two passes, first counting results per polygon to size
//    the output buffer, then writing pairs (GPUs cannot grow buffers
//    mid-kernel, §6 "Memory management").
//
// The within/intersects check at the MBR-filter level reduces to
// point-in-box tests against each polygon's MBR.
#ifndef SWIFTSPATIAL_JOIN_CUSPATIAL_LIKE_H_
#define SWIFTSPATIAL_JOIN_CUSPATIAL_LIKE_H_

#include <cstddef>

#include "datagen/dataset.h"
#include "join/result.h"

namespace swiftspatial {

struct CuSpatialLikeOptions {
  int quadtree_leaf_capacity = 128;  ///< tuned value from the paper
  std::size_t batch_size = 20000;    ///< polygon batch cap from the paper
  std::size_t num_threads = 1;       ///< thread-block analogue
};

/// Point-in-polygon-MBR join. Result pairs are (point id, polygon id):
/// `r` must be the point dataset, `s` the polygon (rectangle) dataset.
JoinResult CuSpatialLikeJoin(const Dataset& points, const Dataset& polygons,
                             const CuSpatialLikeOptions& options,
                             JoinStats* stats = nullptr);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_JOIN_CUSPATIAL_LIKE_H_
