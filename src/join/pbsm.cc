#include "join/pbsm.h"

#include <vector>

#include "join/nested_loop.h"
#include "join/plane_sweep.h"
#include "join/simd_filter.h"

namespace swiftspatial {

const char* TileJoinToString(TileJoin t) {
  switch (t) {
    case TileJoin::kPlaneSweep:
      return "plane-sweep";
    case TileJoin::kNestedLoop:
      return "nested-loop";
    case TileJoin::kSimd:
      return "simd";
  }
  return "unknown";
}

void RunTileJoin(TileJoin tile_join, const Dataset& r, const Dataset& s,
                 const std::vector<ObjectId>& r_ids,
                 const std::vector<ObjectId>& s_ids, const Box* dedup_tile,
                 JoinResult* out, JoinStats* stats) {
  switch (tile_join) {
    case TileJoin::kPlaneSweep:
      PlaneSweepTileJoin(r, s, r_ids, s_ids, dedup_tile, out, stats);
      break;
    case TileJoin::kNestedLoop:
      NestedLoopTileJoin(r, s, r_ids, s_ids, dedup_tile, out, stats);
      break;
    case TileJoin::kSimd:
      SimdTileJoin(r, s, r_ids, s_ids, dedup_tile, out, stats);
      break;
  }
}

StripePartition PbsmPartition(const Dataset& r, const Dataset& s,
                              const PbsmOptions& options) {
  return PartitionStripes(r, s, options.num_partitions, options.axis);
}

JoinResult PbsmJoin(const Dataset& r, const Dataset& s,
                    const StripePartition& partition,
                    const PbsmOptions& options, JoinStats* stats) {
  const std::size_t n = partition.stripes.size();
  const std::size_t threads = std::max<std::size_t>(1, options.num_threads);

  struct WorkerState {
    JoinResult result;
    JoinStats stats;
  };
  std::vector<WorkerState> workers(threads);

  ParallelForWorker(
      n, threads, options.schedule,
      [&](std::size_t i, std::size_t w) {
        const auto& r_ids = partition.r_parts[i];
        const auto& s_ids = partition.s_parts[i];
        if (r_ids.empty() || s_ids.empty()) return;
        const Box& tile = partition.stripes[i];
        WorkerState& state = workers[w];
        RunTileJoin(options.tile_join, r, s, r_ids, s_ids, &tile,
                    &state.result, &state.stats);
      },
      /*chunk=*/1);

  JoinResult out;
  for (auto& w : workers) {
    out.Merge(std::move(w.result));
    if (stats != nullptr) *stats += w.stats;
  }
  return out;
}

JoinResult PbsmSpatialJoin(const Dataset& r, const Dataset& s,
                           const PbsmOptions& options, JoinStats* stats) {
  const StripePartition partition = PbsmPartition(r, s, options);
  return PbsmJoin(r, s, partition, options, stats);
}

}  // namespace swiftspatial
