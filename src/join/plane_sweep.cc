#include "join/plane_sweep.h"

#include <algorithm>

namespace swiftspatial {

namespace {

// One dataset's sweep state: objects sorted by min_x plus the active set of
// objects whose extent still crosses the sweep line.
struct SweepSide {
  const Dataset* dataset;
  std::vector<ObjectId> sorted;  // by ascending min_x
  std::vector<ObjectId> active;
  std::size_t cursor = 0;

  const Box& BoxOf(ObjectId id) const {
    return dataset->box(static_cast<std::size_t>(id));
  }
  bool Exhausted() const { return cursor >= sorted.size(); }
  Coord FrontMinX() const { return BoxOf(sorted[cursor]).min_x; }

  // Drops active objects that ended before the sweep line (max_x < x).
  void RemoveInactive(Coord x) {
    std::size_t i = 0;
    while (i < active.size()) {
      if (BoxOf(active[i]).max_x < x) {
        active[i] = active.back();
        active.pop_back();
      } else {
        ++i;
      }
    }
  }
};

}  // namespace

void PlaneSweepTileJoin(const Dataset& r, const Dataset& s,
                        const std::vector<ObjectId>& r_ids,
                        const std::vector<ObjectId>& s_ids,
                        const Box* dedup_tile, JoinResult* out,
                        JoinStats* stats) {
  SweepSide rs{&r, r_ids, {}, 0};
  SweepSide ss{&s, s_ids, {}, 0};
  auto by_min_x = [](const Dataset& d) {
    return [&d](ObjectId a, ObjectId b) {
      const Coord ax = d.box(static_cast<std::size_t>(a)).min_x;
      const Coord bx = d.box(static_cast<std::size_t>(b)).min_x;
      if (ax != bx) return ax < bx;
      return a < b;
    };
  };
  std::sort(rs.sorted.begin(), rs.sorted.end(), by_min_x(r));
  std::sort(ss.sorted.begin(), ss.sorted.end(), by_min_x(s));

  uint64_t checks = 0;
  while (!rs.Exhausted() || !ss.Exhausted()) {
    const bool take_r =
        ss.Exhausted() || (!rs.Exhausted() && rs.FrontMinX() <= ss.FrontMinX());
    SweepSide& cur = take_r ? rs : ss;
    SweepSide& opp = take_r ? ss : rs;

    const ObjectId id = cur.sorted[cur.cursor++];
    const Box& b = cur.BoxOf(id);
    cur.active.push_back(id);
    opp.RemoveInactive(b.min_x);
    for (ObjectId oid : opp.active) {
      const Box& ob = opp.BoxOf(oid);
      ++checks;
      // x-overlap is implied: ob.min_x <= b.min_x (insertion order) and
      // ob.max_x >= b.min_x (RemoveInactive); only y must be tested.
      if (b.max_y >= ob.min_y && ob.max_y >= b.min_y) {
        const ObjectId rid = take_r ? id : oid;
        const ObjectId sid = take_r ? oid : id;
        if (dedup_tile != nullptr) {
          const Box& rb = r.box(static_cast<std::size_t>(rid));
          const Box& sb = s.box(static_cast<std::size_t>(sid));
          if (!ReferencePointInTile(rb, sb, *dedup_tile)) continue;
        }
        out->Add(rid, sid);
      }
    }
  }
  if (stats != nullptr) {
    stats->predicate_evaluations += checks;
    stats->tasks += 1;
  }
}

}  // namespace swiftspatial
