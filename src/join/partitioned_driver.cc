#include "join/partitioned_driver.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "exec/task_graph.h"

namespace swiftspatial {

int AutoGridSide(std::size_t total_objects,
                 std::size_t target_cell_population) {
  const double total = static_cast<double>(total_objects);
  const double cells =
      std::max(1.0, total / static_cast<double>(target_cell_population));
  const int side = static_cast<int>(std::ceil(std::sqrt(cells)));
  return std::clamp(side, 1, 1024);
}

PartitionedDriver::PartitionedDriver(PartitionedDriverOptions options)
    : options_(std::move(options)) {}

Status ValidateGridConfig(int grid_cols, int grid_rows) {
  if (grid_cols < 0 || grid_rows < 0) {
    return Status::InvalidArgument("grid dimensions must be >= 0 (0 = auto)");
  }
  // Cap explicit grids so cols * rows cannot overflow int (and absurd cell
  // counts fail fast instead of exhausting memory).
  constexpr int kMaxGridSide = 1 << 14;
  if (grid_cols > kMaxGridSide || grid_rows > kMaxGridSide) {
    return Status::InvalidArgument("grid dimensions must be <= 16384");
  }
  if ((grid_cols == 0) != (grid_rows == 0)) {
    return Status::InvalidArgument(
        "grid_cols and grid_rows must both be set or both be auto (0)");
  }
  return Status::OK();
}

JoinGridSpec DeriveJoinGrid(const Dataset& r, const Dataset& s, int grid_cols,
                            int grid_rows,
                            std::size_t target_cell_population) {
  JoinGridSpec spec;
  // Disjoint or empty inputs produce no grid; callers short-circuit to the
  // empty result.
  if (r.empty() || s.empty()) return spec;
  Box extent = r.Extent();
  extent.Expand(s.Extent());
  if (extent.IsEmpty()) return spec;
  spec.has_grid = true;
  spec.extent = extent;
  if (grid_cols > 0) {
    spec.cols = grid_cols;
    spec.rows = grid_rows;
  } else {
    spec.cols = spec.rows =
        AutoGridSide(r.size() + s.size(), target_cell_population);
  }
  return spec;
}

std::size_t PartitionedPlanState::MemoryBytes() const {
  std::size_t bytes = sizeof(*this) + cells.capacity() * sizeof(cells[0]);
  for (const PartitionedCell& cell : cells) {
    bytes += (cell.r_ids.capacity() + cell.s_ids.capacity()) *
             sizeof(ObjectId);
  }
  return bytes;
}

Result<std::shared_ptr<const PartitionedPlanState>> PlanPartitionedCells(
    const Dataset& r, const Dataset& s,
    const PartitionedDriverOptions& options) {
  if (options.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  SWIFT_RETURN_IF_ERROR(
      ValidateGridConfig(options.grid_cols, options.grid_rows));
  if (options.grid_cols == 0 && options.target_cell_population == 0) {
    return Status::InvalidArgument(
        "target_cell_population must be >= 1 for auto grid sizing");
  }

  auto plan = std::make_shared<PartitionedPlanState>();
  const JoinGridSpec spec =
      DeriveJoinGrid(r, s, options.grid_cols, options.grid_rows,
                     options.target_cell_population);
  if (!spec.has_grid) {
    return std::shared_ptr<const PartitionedPlanState>(std::move(plan));
  }
  plan->cols = spec.cols;
  plan->rows = spec.rows;

  const UniformGrid grid(spec.extent, plan->cols, plan->rows);
  std::vector<std::vector<ObjectId>> r_cells = grid.Assign(r);
  std::vector<std::vector<ObjectId>> s_cells = grid.Assign(s);

  plan->cells.reserve(grid.num_tiles());
  for (int t = 0; t < grid.num_tiles(); ++t) {
    if (r_cells[t].empty() || s_cells[t].empty()) continue;
    PartitionedCell cell;
    // Closing the last row/column of cells keeps reference points that land
    // exactly on the global boundary claimable (no cell beyond exists).
    cell.dedup_tile = grid.DedupTileByIndex(t);
    cell.r_ids = std::move(r_cells[t]);
    cell.s_ids = std::move(s_cells[t]);
    plan->cells.push_back(std::move(cell));
  }
  // Largest batches first: under dynamic scheduling the expensive cells
  // start early and the small ones backfill, tightening the makespan.
  std::sort(plan->cells.begin(), plan->cells.end(),
            [](const PartitionedCell& a, const PartitionedCell& b) {
              return a.r_ids.size() * a.s_ids.size() >
                     b.r_ids.size() * b.s_ids.size();
            });
  return std::shared_ptr<const PartitionedPlanState>(std::move(plan));
}

JoinResult ExecutePartitionedPlan(const PartitionedPlanState& plan,
                                  const Dataset& r, const Dataset& s,
                                  TileJoin tile_join, std::size_t num_threads,
                                  JoinStats* stats) {
  JoinResult merged;
  if (plan.cells.empty()) return merged;

  const std::size_t workers = std::max<std::size_t>(1, num_threads);
  std::vector<JoinStats> local_stats(workers);

  if (workers == 1) {
    // Inline on the calling thread; no pool, no graph.
    for (const PartitionedCell& cell : plan.cells) {
      RunTileJoin(tile_join, r, s, cell.r_ids, cell.s_ids, &cell.dedup_tile,
                  &merged, &local_stats[0]);
    }
  } else {
    // Cells run as one TaskGraph wave with the merge as a downstream task.
    // Cell joins can be tiny (sparse grids), so cells are batched into
    // strided groups -- group g joins cells g, g+G, g+2G, ... which keeps
    // the largest-first ordering balanced across groups -- to amortise the
    // per-task dispatch cost. Each worker appends into its own accumulator
    // (no shared state, no locks while joining); the merge concatenates the
    // per-worker buffers once. The resulting multiset is independent of
    // thread count and interleaving; only pair order varies (canonicalise
    // with JoinResult::Sort).
    std::vector<JoinResult> local_results(workers);
    ThreadPool pool(workers);
    exec::TaskGraph graph(&pool);
    const std::size_t groups =
        std::min(plan.cells.size(), workers * kCellTaskGroupsPerWorker);
    std::vector<exec::TaskId> cells;
    cells.reserve(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      cells.push_back(graph.Add([&plan, &r, &s, tile_join, g, groups, &pool,
                                 &local_results, &local_stats] {
        const std::size_t w = pool.CurrentWorkerIndex();
        for (std::size_t i = g; i < plan.cells.size(); i += groups) {
          const PartitionedCell& cell = plan.cells[i];
          RunTileJoin(tile_join, r, s, cell.r_ids, cell.s_ids,
                      &cell.dedup_tile, &local_results[w], &local_stats[w]);
        }
      }));
    }
    graph.Add(
        [&merged, &local_results] {
          std::size_t total = 0;
          for (const JoinResult& lr : local_results) total += lr.size();
          merged.Reserve(total);
          for (JoinResult& lr : local_results) merged.Merge(std::move(lr));
        },
        cells);
    graph.Wait();
  }

  if (stats != nullptr) {
    for (const JoinStats& ls : local_stats) *stats += ls;
  }
  return merged;
}

Status PartitionedDriver::Plan(const Dataset& r, const Dataset& s) {
  auto plan = PlanPartitionedCells(r, s, options_);
  if (!plan.ok()) return plan.status();
  plan_ = std::move(*plan);
  r_ = &r;
  s_ = &s;
  planned_ = true;
  return Status::OK();
}

JoinResult PartitionedDriver::Execute(JoinStats* stats) {
  if (!planned_ || plan_ == nullptr) return JoinResult();
  return ExecutePartitionedPlan(*plan_, *r_, *s_, options_.tile_join,
                                options_.num_threads, stats);
}

}  // namespace swiftspatial
