#include "join/partitioned_driver.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "exec/task_graph.h"

namespace swiftspatial {

int AutoGridSide(std::size_t total_objects,
                 std::size_t target_cell_population) {
  const double total = static_cast<double>(total_objects);
  const double cells =
      std::max(1.0, total / static_cast<double>(target_cell_population));
  const int side = static_cast<int>(std::ceil(std::sqrt(cells)));
  return std::clamp(side, 1, 1024);
}

PartitionedDriver::PartitionedDriver(PartitionedDriverOptions options)
    : options_(std::move(options)) {}

Status ValidateGridConfig(int grid_cols, int grid_rows) {
  if (grid_cols < 0 || grid_rows < 0) {
    return Status::InvalidArgument("grid dimensions must be >= 0 (0 = auto)");
  }
  // Cap explicit grids so cols * rows cannot overflow int (and absurd cell
  // counts fail fast instead of exhausting memory).
  constexpr int kMaxGridSide = 1 << 14;
  if (grid_cols > kMaxGridSide || grid_rows > kMaxGridSide) {
    return Status::InvalidArgument("grid dimensions must be <= 16384");
  }
  if ((grid_cols == 0) != (grid_rows == 0)) {
    return Status::InvalidArgument(
        "grid_cols and grid_rows must both be set or both be auto (0)");
  }
  return Status::OK();
}

Status PartitionedDriver::Plan(const Dataset& r, const Dataset& s) {
  if (options_.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  SWIFT_RETURN_IF_ERROR(
      ValidateGridConfig(options_.grid_cols, options_.grid_rows));
  if (options_.grid_cols == 0 && options_.target_cell_population == 0) {
    return Status::InvalidArgument(
        "target_cell_population must be >= 1 for auto grid sizing");
  }

  r_ = &r;
  s_ = &s;
  tasks_.clear();
  planned_ = true;

  // Disjoint or empty inputs produce no tasks; Execute returns empty.
  if (r.empty() || s.empty()) {
    cols_ = rows_ = 0;
    return Status::OK();
  }
  Box extent = r.Extent();
  extent.Expand(s.Extent());
  if (extent.IsEmpty()) {
    cols_ = rows_ = 0;
    return Status::OK();
  }

  if (options_.grid_cols > 0) {
    cols_ = options_.grid_cols;
    rows_ = options_.grid_rows;
  } else {
    cols_ = rows_ =
        AutoGridSide(r.size() + s.size(), options_.target_cell_population);
  }

  const UniformGrid grid(extent, cols_, rows_);
  std::vector<std::vector<ObjectId>> r_cells = grid.Assign(r);
  std::vector<std::vector<ObjectId>> s_cells = grid.Assign(s);

  tasks_.reserve(grid.num_tiles());
  for (int t = 0; t < grid.num_tiles(); ++t) {
    if (r_cells[t].empty() || s_cells[t].empty()) continue;
    CellTask task;
    // Closing the last row/column of cells keeps reference points that land
    // exactly on the global boundary claimable (no cell beyond exists).
    task.dedup_tile = grid.DedupTileByIndex(t);
    task.r_ids = std::move(r_cells[t]);
    task.s_ids = std::move(s_cells[t]);
    tasks_.push_back(std::move(task));
  }
  // Largest batches first: under dynamic scheduling the expensive cells
  // start early and the small ones backfill, tightening the makespan.
  std::sort(tasks_.begin(), tasks_.end(),
            [](const CellTask& a, const CellTask& b) {
              return a.r_ids.size() * a.s_ids.size() >
                     b.r_ids.size() * b.s_ids.size();
            });
  return Status::OK();
}

JoinResult PartitionedDriver::Execute(JoinStats* stats) {
  JoinResult merged;
  if (!planned_ || tasks_.empty()) return merged;

  const std::size_t workers = std::max<std::size_t>(1, options_.num_threads);
  std::vector<JoinStats> local_stats(workers);

  if (workers == 1) {
    // Inline on the calling thread; no pool, no graph.
    for (const CellTask& task : tasks_) {
      RunTileJoin(options_.tile_join, *r_, *s_, task.r_ids, task.s_ids,
                  &task.dedup_tile, &merged, &local_stats[0]);
    }
  } else {
    // Cells run as one TaskGraph wave with the merge as a downstream task.
    // Cell joins can be tiny (sparse grids), so cells are batched into
    // strided groups -- group g joins cells g, g+G, g+2G, ... which keeps
    // the largest-first ordering balanced across groups -- to amortise the
    // per-task dispatch cost. Each worker appends into its own accumulator
    // (no shared state, no locks while joining); the merge concatenates the
    // per-worker buffers once. The resulting multiset is independent of
    // thread count and interleaving; only pair order varies (canonicalise
    // with JoinResult::Sort).
    std::vector<JoinResult> local_results(workers);
    ThreadPool pool(workers);
    exec::TaskGraph graph(&pool);
    const std::size_t groups =
        std::min(tasks_.size(), workers * kCellTaskGroupsPerWorker);
    std::vector<exec::TaskId> cells;
    cells.reserve(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      cells.push_back(graph.Add([this, g, groups, &pool, &local_results,
                                 &local_stats] {
        const std::size_t w = pool.CurrentWorkerIndex();
        for (std::size_t i = g; i < tasks_.size(); i += groups) {
          const CellTask& task = tasks_[i];
          RunTileJoin(options_.tile_join, *r_, *s_, task.r_ids, task.s_ids,
                      &task.dedup_tile, &local_results[w], &local_stats[w]);
        }
      }));
    }
    graph.Add(
        [&merged, &local_results] {
          std::size_t total = 0;
          for (const JoinResult& lr : local_results) total += lr.size();
          merged.Reserve(total);
          for (JoinResult& lr : local_results) merged.Merge(std::move(lr));
        },
        cells);
    graph.Wait();
  }

  if (stats != nullptr) {
    for (const JoinStats& ls : local_stats) *stats += ls;
  }
  return merged;
}

}  // namespace swiftspatial
