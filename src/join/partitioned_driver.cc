#include "join/partitioned_driver.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "join/nested_loop.h"
#include "join/plane_sweep.h"
#include "join/simd_filter.h"

namespace swiftspatial {

PartitionedDriver::PartitionedDriver(PartitionedDriverOptions options)
    : options_(std::move(options)) {}

Status PartitionedDriver::Plan(const Dataset& r, const Dataset& s) {
  if (options_.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (options_.grid_cols < 0 || options_.grid_rows < 0) {
    return Status::InvalidArgument("grid dimensions must be >= 0 (0 = auto)");
  }
  // Cap explicit grids so cols * rows cannot overflow int (and absurd cell
  // counts fail fast instead of exhausting memory).
  constexpr int kMaxGridSide = 1 << 14;
  if (options_.grid_cols > kMaxGridSide || options_.grid_rows > kMaxGridSide) {
    return Status::InvalidArgument("grid dimensions must be <= 16384");
  }
  if ((options_.grid_cols == 0) != (options_.grid_rows == 0)) {
    return Status::InvalidArgument(
        "grid_cols and grid_rows must both be set or both be auto (0)");
  }
  if (options_.grid_cols == 0 && options_.target_cell_population == 0) {
    return Status::InvalidArgument(
        "target_cell_population must be >= 1 for auto grid sizing");
  }

  r_ = &r;
  s_ = &s;
  tasks_.clear();
  planned_ = true;

  // Disjoint or empty inputs produce no tasks; Execute returns empty.
  if (r.empty() || s.empty()) {
    cols_ = rows_ = 0;
    return Status::OK();
  }
  Box extent = r.Extent();
  extent.Expand(s.Extent());
  if (extent.IsEmpty()) {
    cols_ = rows_ = 0;
    return Status::OK();
  }

  if (options_.grid_cols > 0) {
    cols_ = options_.grid_cols;
    rows_ = options_.grid_rows;
  } else {
    // Square grid with ~target_cell_population objects per cell on average.
    const double total = static_cast<double>(r.size() + s.size());
    const double cells =
        std::max(1.0, total / static_cast<double>(
                                  options_.target_cell_population));
    const int side = static_cast<int>(std::ceil(std::sqrt(cells)));
    cols_ = rows_ = std::clamp(side, 1, 1024);
  }

  const UniformGrid grid(extent, cols_, rows_);
  std::vector<std::vector<ObjectId>> r_cells = grid.Assign(r);
  std::vector<std::vector<ObjectId>> s_cells = grid.Assign(s);

  tasks_.reserve(grid.num_tiles());
  for (int t = 0; t < grid.num_tiles(); ++t) {
    if (r_cells[t].empty() || s_cells[t].empty()) continue;
    CellTask task;
    // Closing the last row/column of cells keeps reference points that land
    // exactly on the global boundary claimable (no cell beyond exists).
    task.dedup_tile = grid.DedupTileByIndex(t);
    task.r_ids = std::move(r_cells[t]);
    task.s_ids = std::move(s_cells[t]);
    tasks_.push_back(std::move(task));
  }
  // Largest batches first: under dynamic scheduling the expensive cells
  // start early and the small ones backfill, tightening the makespan.
  std::sort(tasks_.begin(), tasks_.end(),
            [](const CellTask& a, const CellTask& b) {
              return a.r_ids.size() * a.s_ids.size() >
                     b.r_ids.size() * b.s_ids.size();
            });
  return Status::OK();
}

JoinResult PartitionedDriver::Execute(JoinStats* stats) {
  JoinResult merged;
  if (!planned_ || tasks_.empty()) return merged;

  const std::size_t workers = std::max<std::size_t>(1, options_.num_threads);
  // One accumulator per worker: no shared state (and no locks) while the
  // cell joins run; merging happens once, after the pool drains.
  std::vector<JoinResult> local_results(workers);
  std::vector<JoinStats> local_stats(workers);

  ParallelForWorker(
      tasks_.size(), workers, options_.schedule,
      [&](std::size_t task_index, std::size_t worker) {
        const CellTask& task = tasks_[task_index];
        switch (options_.tile_join) {
          case TileJoin::kPlaneSweep:
            PlaneSweepTileJoin(*r_, *s_, task.r_ids, task.s_ids,
                               &task.dedup_tile, &local_results[worker],
                               &local_stats[worker]);
            break;
          case TileJoin::kNestedLoop:
            NestedLoopTileJoin(*r_, *s_, task.r_ids, task.s_ids,
                               &task.dedup_tile, &local_results[worker],
                               &local_stats[worker]);
            break;
          case TileJoin::kSimd:
            SimdTileJoin(*r_, *s_, task.r_ids, task.s_ids, &task.dedup_tile,
                         &local_results[worker], &local_stats[worker]);
            break;
        }
      });

  std::size_t total = 0;
  for (const JoinResult& lr : local_results) total += lr.size();
  merged.Reserve(total);
  for (std::size_t w = 0; w < workers; ++w) {
    merged.Merge(std::move(local_results[w]));
    if (stats != nullptr) *stats += local_stats[w];
  }
  return merged;
}

}  // namespace swiftspatial
