#include "join/nested_loop.h"

#include "geometry/box_block.h"

namespace swiftspatial {

JoinResult BruteForceJoin(const Dataset& r, const Dataset& s,
                          JoinStats* stats) {
  // Deliberately the plain per-pair scalar predicate: this is the oracle the
  // equivalence suite diffs every other engine (including the SIMD kernel
  // paths) against, so it must not share code with them.
  JoinResult out;
  for (std::size_t i = 0; i < r.size(); ++i) {
    const Box& rb = r.box(i);
    for (std::size_t j = 0; j < s.size(); ++j) {
      if (Intersects(rb, s.box(j))) {
        out.Add(static_cast<ObjectId>(i), static_cast<ObjectId>(j));
      }
    }
  }
  if (stats != nullptr) {
    stats->predicate_evaluations += r.size() * s.size();
    stats->tasks += 1;
  }
  return out;
}

void NestedLoopTileJoin(const Dataset& r, const Dataset& s,
                        const std::vector<ObjectId>& r_ids,
                        const std::vector<ObjectId>& s_ids,
                        const Box* dedup_tile, JoinResult* out,
                        JoinStats* stats) {
  // The inner side is gathered once into a structure-of-arrays block so the
  // per-probe scan touches four contiguous coordinate streams instead of
  // strided Box structs. The comparisons stay hand-written scalar (not the
  // simd_filter kernel) so this path remains an independent cross-check of
  // TileJoin::kSimd in the partition drivers.
  const BoxBlock block = BoxBlock::FromSubset(s, s_ids);
  const std::size_t n = block.size();
  const Coord* s_min_x = block.min_x();
  const Coord* s_min_y = block.min_y();
  const Coord* s_max_x = block.max_x();
  const Coord* s_max_y = block.max_y();
  for (ObjectId ri : r_ids) {
    const Box& rb = r.box(static_cast<std::size_t>(ri));
    for (std::size_t j = 0; j < n; ++j) {
      if (rb.max_x >= s_min_x[j] && s_max_x[j] >= rb.min_x &&
          rb.max_y >= s_min_y[j] && s_max_y[j] >= rb.min_y) {
        if (dedup_tile != nullptr &&
            !ReferencePointInTile(rb, block.BoxAt(j), *dedup_tile)) {
          continue;
        }
        out->Add(ri, block.id(j));
      }
    }
  }
  if (stats != nullptr) {
    stats->predicate_evaluations +=
        static_cast<uint64_t>(r_ids.size()) * s_ids.size();
    stats->tasks += 1;
  }
}

}  // namespace swiftspatial
