#include "join/nested_loop.h"

namespace swiftspatial {

JoinResult BruteForceJoin(const Dataset& r, const Dataset& s,
                          JoinStats* stats) {
  JoinResult out;
  for (std::size_t i = 0; i < r.size(); ++i) {
    const Box& rb = r.box(i);
    for (std::size_t j = 0; j < s.size(); ++j) {
      if (Intersects(rb, s.box(j))) {
        out.Add(static_cast<ObjectId>(i), static_cast<ObjectId>(j));
      }
    }
  }
  if (stats != nullptr) {
    stats->predicate_evaluations += r.size() * s.size();
    stats->tasks += 1;
  }
  return out;
}

void NestedLoopTileJoin(const Dataset& r, const Dataset& s,
                        const std::vector<ObjectId>& r_ids,
                        const std::vector<ObjectId>& s_ids,
                        const Box* dedup_tile, JoinResult* out,
                        JoinStats* stats) {
  for (ObjectId ri : r_ids) {
    const Box& rb = r.box(static_cast<std::size_t>(ri));
    for (ObjectId si : s_ids) {
      const Box& sb = s.box(static_cast<std::size_t>(si));
      if (!Intersects(rb, sb)) continue;
      if (dedup_tile != nullptr && !ReferencePointInTile(rb, sb, *dedup_tile)) {
        continue;
      }
      out->Add(ri, si);
    }
  }
  if (stats != nullptr) {
    stats->predicate_evaluations +=
        static_cast<uint64_t>(r_ids.size()) * s_ids.size();
    stats->tasks += 1;
  }
}

}  // namespace swiftspatial
