#include "join/engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "dist/dist_engine.h"
#include "exec/streaming.h"
#include "join/accel_engine.h"
#include "join/cuspatial_like.h"
#include "join/engine_baselines.h"
#include "join/nested_loop.h"
#include "join/partitioned_driver.h"
#include "join/plane_sweep.h"
#include "obs/metrics.h"
#include "join/sync_traversal.h"
#include "rtree/bulk_load.h"

namespace swiftspatial {
namespace {

// Validation shared by every engine.
Status ValidateCommon(const EngineConfig& config) {
  if (config.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  return Status::OK();
}

// Shared by ExecutePrepared overrides: the output/name/type checks every
// native implementation needs before touching plan artifacts.
template <typename PlanT>
Result<const PlanT*> CheckPreparedPlan(const JoinEngine& engine,
                                       const PreparedPlan& plan,
                                       JoinResult* out) {
  if (out == nullptr) {
    return Status::InvalidArgument(
        "ExecutePrepared requires a non-null result");
  }
  if (plan.engine() != engine.name()) {
    return Status::InvalidArgument("prepared plan belongs to engine \"" +
                                   plan.engine() + "\", not \"" +
                                   engine.name() + "\"");
  }
  const auto* typed = dynamic_cast<const PlanT*>(&plan);
  if (typed == nullptr) {
    return Status::Internal("prepared plan type mismatch for engine " +
                            engine.name());
  }
  return typed;
}

// Base class factoring the Plan bookkeeping every adapter needs: common
// config validation, dataset capture, and the planned/empty-input guards.
// Subclasses override PlanImpl/ExecuteImpl.
class EngineBase : public JoinEngine {
 public:
  EngineBase(std::string name, const EngineConfig& config)
      : name_(std::move(name)), config_(config) {}

  const std::string& name() const override { return name_; }

  Status Plan(const Dataset& r, const Dataset& s) final {
    SWIFT_RETURN_IF_ERROR(PrepareChecks(r, s));
    r_ = &r;
    s_ = &s;
    // Empty inputs join to the empty set; skip index builds so every engine
    // (including ones whose underlying index assumes non-empty data) is
    // uniformly safe on the edge case.
    if (!r.empty() && !s.empty()) {
      SWIFT_RETURN_IF_ERROR(PlanImpl(r, s));
    }
    planned_ = true;
    return Status::OK();
  }

  Status Execute(JoinResult* out, JoinStats* stats) final {
    if (!planned_) {
      return Status::Internal("Execute called before a successful Plan");
    }
    if (out == nullptr) {
      return Status::InvalidArgument("Execute requires a non-null result");
    }
    // Execute overwrites *out (stats accumulate): repeated Execute calls
    // must yield identical results even for engines whose implementation
    // appends into the output (e.g. the tile-join based ones).
    *out = JoinResult();
    if (r_->empty() || s_->empty()) return Status::OK();
    return ExecuteImpl(*r_, *s_, out, stats);
  }

 protected:
  /// The validation Plan runs before building anything: common + engine
  /// config checks, then the reject-at-ingest geometry policy (NaN/inf
  /// coordinates, inverted boxes; see EngineConfig::validate_inputs).
  /// Prepare overrides run the same gauntlet so the warm path accepts
  /// exactly what the cold path accepts.
  Status PrepareChecks(const Dataset& r, const Dataset& s) {
    SWIFT_RETURN_IF_ERROR(ValidateCommon(config_));
    SWIFT_RETURN_IF_ERROR(Validate());
    if (config_.validate_inputs) {
      SWIFT_RETURN_IF_ERROR(r.ValidateBoxes());
      SWIFT_RETURN_IF_ERROR(s.ValidateBoxes());
    }
    return Status::OK();
  }

  /// Engine-specific config validation (beyond ValidateCommon).
  virtual Status Validate() { return Status::OK(); }
  /// Builds indexes/partitions. Only called for non-empty inputs.
  virtual Status PlanImpl(const Dataset& r, const Dataset& s) {
    (void)r;
    (void)s;
    return Status::OK();
  }
  virtual Status ExecuteImpl(const Dataset& r, const Dataset& s,
                             JoinResult* out, JoinStats* stats) = 0;

  const EngineConfig& config() const { return config_; }

 private:
  std::string name_;
  EngineConfig config_;
  const Dataset* r_ = nullptr;
  const Dataset* s_ = nullptr;
  bool planned_ = false;
};

// ---------------------------------------------------------------------------
// nested_loop: the all-pairs oracle.
// ---------------------------------------------------------------------------
class NestedLoopEngine : public EngineBase {
 public:
  using EngineBase::EngineBase;

 protected:
  Status ExecuteImpl(const Dataset& r, const Dataset& s, JoinResult* out,
                     JoinStats* stats) override {
    *out = BruteForceJoin(r, s, stats);
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// plane_sweep: one global sweep over both inputs (Algorithm 4).
// ---------------------------------------------------------------------------
class PlaneSweepEngine : public EngineBase {
 public:
  using EngineBase::EngineBase;

 protected:
  Status PlanImpl(const Dataset& r, const Dataset& s) override {
    r_ids_.resize(r.size());
    s_ids_.resize(s.size());
    for (std::size_t i = 0; i < r.size(); ++i) {
      r_ids_[i] = static_cast<ObjectId>(i);
    }
    for (std::size_t i = 0; i < s.size(); ++i) {
      s_ids_[i] = static_cast<ObjectId>(i);
    }
    return Status::OK();
  }

  Status ExecuteImpl(const Dataset& r, const Dataset& s, JoinResult* out,
                     JoinStats* stats) override {
    PlaneSweepTileJoin(r, s, r_ids_, s_ids_, /*dedup_tile=*/nullptr, out,
                       stats);
    return Status::OK();
  }

 private:
  std::vector<ObjectId> r_ids_;
  std::vector<ObjectId> s_ids_;
};

// ---------------------------------------------------------------------------
// pbsm: 1-D stripes + per-stripe tile joins (Algorithm 3).
// ---------------------------------------------------------------------------

// The cached artifact of pbsm planning: the immutable stripe partition plus
// the options it was built under. PbsmJoin reads the partition const, so
// one plan serves concurrent warm executions.
class PbsmPreparedPlan : public PreparedPlan {
 public:
  using PreparedPlan::PreparedPlan;

  std::size_t MemoryBytes() const override {
    std::size_t bytes = partition.stripes.capacity() * sizeof(Box);
    for (const auto& part : partition.r_parts) {
      bytes += part.capacity() * sizeof(ObjectId);
    }
    for (const auto& part : partition.s_parts) {
      bytes += part.capacity() * sizeof(ObjectId);
    }
    return bytes;
  }

  PbsmOptions options;
  StripePartition partition;
  bool built = false;  // false for empty inputs: nothing to join
};

class PbsmEngine : public EngineBase {
 public:
  using EngineBase::EngineBase;

  Result<std::shared_ptr<const PreparedPlan>> Prepare(
      std::shared_ptr<const Dataset> r,
      std::shared_ptr<const Dataset> s) override {
    SWIFT_RETURN_IF_ERROR(PrepareChecks(*r, *s));
    auto plan = std::make_shared<PbsmPreparedPlan>(name(), r, s);
    if (!r->empty() && !s->empty()) {
      plan->options = OptionsFromConfig();
      plan->partition = PbsmPartition(*r, *s, plan->options);
      plan->built = true;
    }
    return std::shared_ptr<const PreparedPlan>(std::move(plan));
  }

  Status ExecutePrepared(const PreparedPlan& plan, JoinResult* out,
                         JoinStats* stats) override {
    auto typed = CheckPreparedPlan<PbsmPreparedPlan>(*this, plan, out);
    if (!typed.ok()) return typed.status();
    *out = JoinResult();
    if (!(*typed)->built) return Status::OK();
    *out = PbsmJoin(plan.r(), plan.s(), (*typed)->partition,
                    (*typed)->options, stats);
    return Status::OK();
  }

 protected:
  Status Validate() override {
    if (config().num_partitions < 1) {
      return Status::InvalidArgument("num_partitions must be >= 1");
    }
    return Status::OK();
  }

  Status PlanImpl(const Dataset& r, const Dataset& s) override {
    options_ = OptionsFromConfig();
    partition_ = PbsmPartition(r, s, options_);
    return Status::OK();
  }

  Status ExecuteImpl(const Dataset& r, const Dataset& s, JoinResult* out,
                     JoinStats* stats) override {
    *out = PbsmJoin(r, s, partition_, options_, stats);
    return Status::OK();
  }

 private:
  PbsmOptions OptionsFromConfig() const {
    PbsmOptions options;
    options.num_partitions = config().num_partitions;
    options.axis = config().axis;
    options.num_threads = config().num_threads;
    options.schedule = config().schedule;
    options.tile_join = config().tile_join;
    return options;
  }

  PbsmOptions options_;
  StripePartition partition_;
};

// ---------------------------------------------------------------------------
// cuspatial_like: quadtree-indexed point-in-polygon-MBR join.
// ---------------------------------------------------------------------------
class CuSpatialLikeEngine : public EngineBase {
 public:
  using EngineBase::EngineBase;

 protected:
  Status Validate() override {
    if (config().quadtree_leaf_capacity < 1) {
      return Status::InvalidArgument("quadtree_leaf_capacity must be >= 1");
    }
    if (config().batch_size < 1) {
      return Status::InvalidArgument("batch_size must be >= 1");
    }
    return Status::OK();
  }

  Status PlanImpl(const Dataset& r, const Dataset& s) override {
    (void)s;
    if (!r.IsPointDataset()) {
      // NotSupported, not InvalidArgument: the input is well-formed, this
      // engine just does not apply to it. Harnesses key expected skips on
      // the distinction (bench::SkipRow).
      return Status::NotSupported(
          "cuspatial_like requires R to be a point dataset (point-polygon "
          "orientation)");
    }
    return Status::OK();
  }

  Status ExecuteImpl(const Dataset& r, const Dataset& s, JoinResult* out,
                     JoinStats* stats) override {
    CuSpatialLikeOptions options;
    options.quadtree_leaf_capacity = config().quadtree_leaf_capacity;
    options.batch_size = config().batch_size;
    options.num_threads = config().num_threads;
    *out = CuSpatialLikeJoin(r, s, options, stats);
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// sync_traversal / parallel_sync_traversal: R-tree engines. Plan bulk-loads
// both trees (STR, the paper's default).
// ---------------------------------------------------------------------------

// The cached artifact of R-tree planning: both packed trees. Traversals
// only read the DRAM images, so one plan serves concurrent warm executions.
class RTreePreparedPlan : public PreparedPlan {
 public:
  using PreparedPlan::PreparedPlan;

  std::size_t MemoryBytes() const override {
    std::size_t bytes = 0;
    if (r_tree) bytes += r_tree->bytes().capacity();
    if (s_tree) bytes += s_tree->bytes().capacity();
    return bytes;
  }

  std::optional<PackedRTree> r_tree;  // empty for empty inputs
  std::optional<PackedRTree> s_tree;
};

class RTreeEngineBase : public EngineBase {
 public:
  using EngineBase::EngineBase;

  Result<std::shared_ptr<const PreparedPlan>> Prepare(
      std::shared_ptr<const Dataset> r,
      std::shared_ptr<const Dataset> s) override {
    SWIFT_RETURN_IF_ERROR(PrepareChecks(*r, *s));
    auto plan = std::make_shared<RTreePreparedPlan>(name(), r, s);
    if (!r->empty() && !s->empty()) {
      BulkLoadOptions bl;
      bl.max_entries = config().node_capacity;
      bl.num_threads = config().num_threads;
      plan->r_tree.emplace(StrBulkLoad(*r, bl));
      plan->s_tree.emplace(StrBulkLoad(*s, bl));
    }
    return std::shared_ptr<const PreparedPlan>(std::move(plan));
  }

 protected:
  Status Validate() override {
    if (config().node_capacity < 2) {
      return Status::InvalidArgument("node_capacity must be >= 2");
    }
    return Status::OK();
  }

  Status PlanImpl(const Dataset& r, const Dataset& s) override {
    BulkLoadOptions bl;
    bl.max_entries = config().node_capacity;
    bl.num_threads = config().num_threads;
    r_tree_.emplace(StrBulkLoad(r, bl));
    s_tree_.emplace(StrBulkLoad(s, bl));
    return Status::OK();
  }

  std::optional<PackedRTree> r_tree_;
  std::optional<PackedRTree> s_tree_;
};

class SyncTraversalEngine : public RTreeEngineBase {
 public:
  using RTreeEngineBase::RTreeEngineBase;

  Status ExecutePrepared(const PreparedPlan& plan, JoinResult* out,
                         JoinStats* stats) override {
    auto typed = CheckPreparedPlan<RTreePreparedPlan>(*this, plan, out);
    if (!typed.ok()) return typed.status();
    *out = JoinResult();
    if (!(*typed)->r_tree.has_value()) return Status::OK();
    *out = config().bfs
               ? SyncTraversalBfs(*(*typed)->r_tree, *(*typed)->s_tree, stats)
               : SyncTraversalDfs(*(*typed)->r_tree, *(*typed)->s_tree,
                                  stats);
    return Status::OK();
  }

 protected:
  Status ExecuteImpl(const Dataset&, const Dataset&, JoinResult* out,
                     JoinStats* stats) override {
    *out = config().bfs ? SyncTraversalBfs(*r_tree_, *s_tree_, stats)
                        : SyncTraversalDfs(*r_tree_, *s_tree_, stats);
    return Status::OK();
  }
};

class ParallelSyncTraversalEngine : public RTreeEngineBase {
 public:
  using RTreeEngineBase::RTreeEngineBase;

  Status ExecutePrepared(const PreparedPlan& plan, JoinResult* out,
                         JoinStats* stats) override {
    auto typed = CheckPreparedPlan<RTreePreparedPlan>(*this, plan, out);
    if (!typed.ok()) return typed.status();
    *out = JoinResult();
    if (!(*typed)->r_tree.has_value()) return Status::OK();
    *out = ParallelSyncTraversal(*(*typed)->r_tree, *(*typed)->s_tree,
                                 TraversalOptions(), stats);
    return Status::OK();
  }

 protected:
  Status Validate() override {
    SWIFT_RETURN_IF_ERROR(RTreeEngineBase::Validate());
    if (config().dfs_switch_factor < 1) {
      return Status::InvalidArgument("dfs_switch_factor must be >= 1");
    }
    return Status::OK();
  }

  Status ExecuteImpl(const Dataset&, const Dataset&, JoinResult* out,
                     JoinStats* stats) override {
    *out = ParallelSyncTraversal(*r_tree_, *s_tree_, TraversalOptions(),
                                 stats);
    return Status::OK();
  }

 private:
  ParallelSyncTraversalOptions TraversalOptions() const {
    ParallelSyncTraversalOptions options;
    options.num_threads = config().num_threads;
    options.strategy = config().strategy;
    options.schedule = config().schedule;
    options.dfs_switch_factor = config().dfs_switch_factor;
    return options;
  }
};

// ---------------------------------------------------------------------------
// partitioned: the grid-sharded thread-pooled driver. The simd variant is
// the same driver locked to the batched SIMD filter kernel as its tile join,
// so the grid supplies thread scaling and the kernel supplies per-cell
// predicate throughput.
// ---------------------------------------------------------------------------
// The cached artifact of grid planning: the shared immutable cell plan
// (see PartitionedPlanState). ExecutePartitionedPlan reads it const with
// per-call accumulators, so one plan serves concurrent warm executions.
class PartitionedPreparedPlan : public PreparedPlan {
 public:
  using PreparedPlan::PreparedPlan;

  std::size_t MemoryBytes() const override {
    return state ? state->MemoryBytes() : 0;
  }

  std::shared_ptr<const PartitionedPlanState> state;  // null: empty inputs
};

class PartitionedEngine : public EngineBase {
 public:
  PartitionedEngine(std::string name, const EngineConfig& config)
      : EngineBase(std::move(name), config), tile_join_(config.tile_join) {}
  PartitionedEngine(std::string name, const EngineConfig& config,
                    TileJoin forced_tile_join)
      : EngineBase(std::move(name), config), tile_join_(forced_tile_join) {}

  Result<std::shared_ptr<const PreparedPlan>> Prepare(
      std::shared_ptr<const Dataset> r,
      std::shared_ptr<const Dataset> s) override {
    SWIFT_RETURN_IF_ERROR(PrepareChecks(*r, *s));
    auto plan = std::make_shared<PartitionedPreparedPlan>(name(), r, s);
    if (!r->empty() && !s->empty()) {
      auto state = PlanPartitionedCells(*r, *s, DriverOptions());
      if (!state.ok()) return state.status();
      plan->state = std::move(*state);
    }
    return std::shared_ptr<const PreparedPlan>(std::move(plan));
  }

  Status ExecutePrepared(const PreparedPlan& plan, JoinResult* out,
                         JoinStats* stats) override {
    auto typed = CheckPreparedPlan<PartitionedPreparedPlan>(*this, plan, out);
    if (!typed.ok()) return typed.status();
    *out = JoinResult();
    if ((*typed)->state == nullptr) return Status::OK();
    *out = ExecutePartitionedPlan(*(*typed)->state, plan.r(), plan.s(),
                                  tile_join_, config().num_threads, stats);
    return Status::OK();
  }

 protected:
  Status PlanImpl(const Dataset& r, const Dataset& s) override {
    driver_ = PartitionedDriver(DriverOptions());
    return driver_.Plan(r, s);
  }

  Status ExecuteImpl(const Dataset&, const Dataset&, JoinResult* out,
                     JoinStats* stats) override {
    *out = driver_.Execute(stats);
    return Status::OK();
  }

 private:
  PartitionedDriverOptions DriverOptions() const {
    PartitionedDriverOptions options;
    options.grid_cols = config().grid_cols;
    options.grid_rows = config().grid_rows;
    options.num_threads = config().num_threads;
    options.tile_join = tile_join_;
    return options;
  }

  TileJoin tile_join_;
  PartitionedDriver driver_;
};

// ---------------------------------------------------------------------------
// System-style baselines.
// ---------------------------------------------------------------------------
class InterpretedEngineAdapter : public EngineBase {
 public:
  using EngineBase::EngineBase;

 protected:
  Status Validate() override {
    if (config().index_max_entries < 2) {
      return Status::InvalidArgument("index_max_entries must be >= 2");
    }
    return Status::OK();
  }

  Status ExecuteImpl(const Dataset& r, const Dataset& s, JoinResult* out,
                     JoinStats* stats) override {
    InterpretedEngineOptions options;
    options.num_threads = config().num_threads;
    options.index_max_entries = config().index_max_entries;
    *out = InterpretedEngineJoin(r, s, options, stats);
    return Status::OK();
  }
};

class BigDataFrameworkAdapter : public EngineBase {
 public:
  using EngineBase::EngineBase;

 protected:
  Status Validate() override {
    if (config().num_partitions < 1) {
      return Status::InvalidArgument("num_partitions must be >= 1");
    }
    if (config().index_max_entries < 2) {
      return Status::InvalidArgument("index_max_entries must be >= 2");
    }
    return Status::OK();
  }

  Status ExecuteImpl(const Dataset& r, const Dataset& s, JoinResult* out,
                     JoinStats* stats) override {
    BigDataFrameworkOptions options;
    options.num_partitions = config().num_partitions;
    options.num_threads = config().num_threads;
    options.index_max_entries = config().index_max_entries;
    *out = BigDataFrameworkJoin(r, s, options, stats);
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// Generic prepared-plan fallback for engines without native support: the
// plan owns a fully planned engine instance and serializes warm executions
// behind a mutex. Correct for every engine (repeated-Execute idempotence is
// pinned by the registry tests), at the cost of no warm concurrency --
// engines that matter for serving override Prepare natively instead.
// ---------------------------------------------------------------------------
class GenericPreparedPlan : public PreparedPlan {
 public:
  GenericPreparedPlan(std::string engine, std::shared_ptr<const Dataset> r,
                      std::shared_ptr<const Dataset> s,
                      std::unique_ptr<JoinEngine> planned)
      : PreparedPlan(std::move(engine), std::move(r), std::move(s)),
        planned_(std::move(planned)) {}

  std::size_t MemoryBytes() const override {
    // The planned artifacts are opaque; estimate proportional to the inputs
    // (id lists, tree entries, and partitions are all O(n)).
    return (r().size() + s().size()) * sizeof(Box);
  }

  Status Execute(JoinResult* out, JoinStats* stats) const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return planned_->Execute(out, stats);
  }

 private:
  mutable Mutex mu_;
  std::unique_ptr<JoinEngine> planned_ PT_GUARDED_BY(mu_);
};

template <typename Engine>
EngineFactory MakeFactory(const char* name) {
  return [name](const EngineConfig& config) -> std::unique_ptr<JoinEngine> {
    return std::make_unique<Engine>(name, config);
  };
}

}  // namespace

Result<std::shared_ptr<const PreparedPlan>> JoinEngine::Prepare(
    std::shared_ptr<const Dataset> r, std::shared_ptr<const Dataset> s) {
  (void)r;
  (void)s;
  // PrepareJoin turns this into the serialized generic fallback.
  return Status::NotSupported("engine " + name() +
                              " has no native prepared-plan support");
}

Status JoinEngine::ExecutePrepared(const PreparedPlan& plan, JoinResult* out,
                                   JoinStats* stats) {
  auto generic = CheckPreparedPlan<GenericPreparedPlan>(*this, plan, out);
  if (!generic.ok()) return generic.status();
  *out = JoinResult();
  return (*generic)->Execute(out, stats);
}

uint64_t ConfigFingerprint(const EngineConfig& config) {
  // FNV-1a over every field. A new EngineConfig field MUST be mixed in here:
  // omitting one lets two configs that plan differently share a cache slot,
  // i.e. a stale-plan bug. Sole exception: `config.trace` is deliberately
  // NOT mixed -- it is request-scoped observability context, not a planning
  // input, and mixing it would defeat the plan cache (every request carries
  // a fresh trace id).
  uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  };
  mix(config.num_threads);
  mix(static_cast<uint64_t>(config.schedule));
  mix(config.validate_inputs ? 1 : 0);
  mix(static_cast<uint64_t>(config.node_capacity));
  mix(config.bfs ? 1 : 0);
  mix(static_cast<uint64_t>(config.strategy));
  mix(config.dfs_switch_factor);
  mix(static_cast<uint64_t>(config.num_partitions));
  mix(static_cast<uint64_t>(config.axis));
  mix(static_cast<uint64_t>(config.tile_join));
  mix(static_cast<uint64_t>(config.grid_cols));
  mix(static_cast<uint64_t>(config.grid_rows));
  mix(static_cast<uint64_t>(config.quadtree_leaf_capacity));
  mix(config.batch_size);
  mix(static_cast<uint64_t>(config.index_max_entries));
  mix(static_cast<uint64_t>(config.accel_join_units));
  mix(static_cast<uint64_t>(config.accel_tile_cap));
  mix(config.accel_device_memory_bytes);
  mix(static_cast<uint64_t>(config.dist_nodes));
  mix(static_cast<uint64_t>(config.dist_placement));
  mix(config.dist_node_threads);
  return hash;
}

Result<std::shared_ptr<const PreparedPlan>> PrepareJoin(
    const std::string& engine, std::shared_ptr<const Dataset> r,
    std::shared_ptr<const Dataset> s, const EngineConfig& config) {
  if (r == nullptr || s == nullptr) {
    return Status::InvalidArgument("PrepareJoin requires non-null datasets");
  }
  auto created = EngineRegistry::Global().Create(engine, config);
  if (!created.ok()) return created.status();
  auto prepared = (*created)->Prepare(r, s);
  if (prepared.ok()) return prepared;
  if (prepared.status().code() != StatusCode::kNotSupported) {
    return prepared.status();
  }
  // Generic fallback: plan a dedicated instance and serialize warm
  // executions against it. The plan's base holds the datasets, so the
  // planned engine's raw pointers into them stay valid for the plan's
  // lifetime (members are destroyed before the base releases them).
  SWIFT_RETURN_IF_ERROR((*created)->Plan(*r, *s));
  return std::shared_ptr<const PreparedPlan>(
      std::make_shared<GenericPreparedPlan>(engine, std::move(r),
                                            std::move(s),
                                            std::move(*created)));
}

Result<JoinRun> RunPreparedJoin(const PreparedPlan& plan,
                                const EngineConfig& config) {
  JoinRun run;
  Stopwatch sw;
  auto created = EngineRegistry::Global().Create(plan.engine(), config);
  if (!created.ok()) return created.status();
  // Engine instantiation is all the warm path pays before executing: the
  // planning the cold path bills here was done once, at Prepare.
  run.timing.plan_seconds = sw.ElapsedSeconds();
  sw.Reset();
  SWIFT_RETURN_IF_ERROR(
      (*created)->ExecutePrepared(plan, &run.result, &run.stats));
  run.timing.execute_seconds = sw.ElapsedSeconds();
  return run;
}

Result<JoinRun> JoinEngine::Run(const Dataset& r, const Dataset& s) {
  JoinRun run;
  Stopwatch sw;
  SWIFT_RETURN_IF_ERROR(Plan(r, s));
  run.timing.plan_seconds = sw.ElapsedSeconds();
  sw.Reset();
  SWIFT_RETURN_IF_ERROR(Execute(&run.result, &run.stats));
  run.timing.execute_seconds = sw.ElapsedSeconds();
  // Stage timing per engine; handles resolve through the registry lock once
  // per Run, which is noise next to a full Plan+Execute.
  auto& metrics = obs::MetricsRegistry::Global();
  metrics
      .GetHistogram("swiftspatial_join_plan_seconds", {{"engine", name()}},
                    {}, "Plan-stage wall seconds per JoinEngine::Run")
      ->Observe(run.timing.plan_seconds);
  metrics
      .GetHistogram("swiftspatial_join_execute_seconds", {{"engine", name()}},
                    {}, "Execute-stage wall seconds per JoinEngine::Run")
      ->Observe(run.timing.execute_seconds);
  return run;
}

EngineRegistry& EngineRegistry::Global() {
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    // A failed built-in registration (duplicate or empty name, null
    // factory) is a programmer error that would silently unlist an engine,
    // so it CHECK-fails rather than dropping the Status.
    const auto register_or_die = [r](const std::string& name,
                                     EngineFactory factory) {
      const Status st = r->Register(name, std::move(factory));
      SWIFT_CHECK(st.ok()) << "built-in engine registration failed: "
                           << st.ToString();
    };
    register_or_die(kNestedLoopEngine, MakeFactory<NestedLoopEngine>(
                                           kNestedLoopEngine));
    register_or_die(kPlaneSweepEngine, MakeFactory<PlaneSweepEngine>(
                                           kPlaneSweepEngine));
    register_or_die(kPbsmEngine, MakeFactory<PbsmEngine>(kPbsmEngine));
    register_or_die(kCuSpatialLikeEngine, MakeFactory<CuSpatialLikeEngine>(
                                              kCuSpatialLikeEngine));
    register_or_die(kSyncTraversalEngine, MakeFactory<SyncTraversalEngine>(
                                              kSyncTraversalEngine));
    register_or_die(kParallelSyncTraversalEngine,
                    MakeFactory<ParallelSyncTraversalEngine>(
                        kParallelSyncTraversalEngine));
    register_or_die(kPartitionedEngine, MakeFactory<PartitionedEngine>(
                                            kPartitionedEngine));
    register_or_die(
        kSimdEngine,
        [](const EngineConfig& config) -> std::unique_ptr<JoinEngine> {
          return std::make_unique<PartitionedEngine>(kSimdEngine, config,
                                                     TileJoin::kSimd);
        });
    register_or_die(kAsyncEngine, [](const EngineConfig& config) {
      return exec::MakeAsyncJoinEngine(config);
    });
    // The simulated accelerator (join/accel_engine.h). MakeAccelEngine only
    // fails for unknown names, so dereferencing here is safe; config errors
    // surface at Plan like every other engine.
    for (const char* accel : {kAccelBfsEngine, kAccelPbsmEngine,
                              kAccelPbsmMultiEngine}) {
      register_or_die(accel,
                      [accel](const EngineConfig& config)
                          -> std::unique_ptr<JoinEngine> {
                        return std::move(*MakeAccelEngine(accel, config));
                      });
    }
    // The simulated cluster (dist/dist_engine.h). As with the accelerator
    // engines, MakeDistEngine only fails for unknown names; config errors
    // surface at Plan.
    for (const char* dist_name : {kDistPbsmEngine, kDistAccelEngine}) {
      register_or_die(dist_name,
                      [dist_name](const EngineConfig& config)
                          -> std::unique_ptr<JoinEngine> {
                        return std::move(*dist::MakeDistEngine(dist_name,
                                                               config));
                      });
    }
    register_or_die(kInterpretedEngineBaseline,
                    MakeFactory<InterpretedEngineAdapter>(
                        kInterpretedEngineBaseline));
    register_or_die(kBigDataFrameworkBaseline,
                    MakeFactory<BigDataFrameworkAdapter>(
                        kBigDataFrameworkBaseline));
    return r;
  }();
  return *registry;
}

Status EngineRegistry::Register(const std::string& name,
                                EngineFactory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("engine name must be non-empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("engine factory must be non-null");
  }
  MutexLock lock(&mu_);
  if (!factories_.emplace(name, std::move(factory)).second) {
    return Status::InvalidArgument("engine already registered: " + name);
  }
  return Status::OK();
}

bool EngineRegistry::Contains(const std::string& name) const {
  MutexLock lock(&mu_);
  return factories_.count(name) > 0;
}

Result<std::unique_ptr<JoinEngine>> EngineRegistry::Create(
    const std::string& name, const EngineConfig& config) const {
  EngineFactory factory;
  {
    MutexLock lock(&mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::string known;
      for (const auto& [n, f] : factories_) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      return Status::NotFound("unknown join engine \"" + name +
                              "\" (registered: " + known + ")");
    }
    factory = it->second;
  }
  return factory(config);
}

std::vector<std::string> EngineRegistry::Names() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;  // std::map iterates in sorted order
}

Result<JoinRun> RunJoin(const std::string& engine, const Dataset& r,
                        const Dataset& s, const EngineConfig& config) {
  auto created = EngineRegistry::Global().Create(engine, config);
  if (!created.ok()) return created.status();
  return (*created)->Run(r, s);
}

}  // namespace swiftspatial
