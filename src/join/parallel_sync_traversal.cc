#include "join/parallel_sync_traversal.h"

#include <vector>

#include "common/logging.h"
#include "join/sync_traversal.h"

namespace swiftspatial {

const char* TraversalStrategyToString(TraversalStrategy s) {
  switch (s) {
    case TraversalStrategy::kBfs:
      return "BFS";
    case TraversalStrategy::kBfsDfs:
      return "BFS-DFS";
  }
  return "unknown";
}

namespace {

// Per-worker accumulation state, merged by a single thread at the end
// (mirroring the paper's "a single thread subsequently merging the
// results").
struct WorkerState {
  JoinResult result;
  std::vector<NodePairTask> next;
  JoinStats stats;
};

// Sequential DFS completing one subtree of tasks.
void DfsFrom(const PackedRTree& r, const PackedRTree& s, NodePairTask root,
             WorkerState* state) {
  std::vector<NodePairTask> stack = {root};
  std::vector<NodePairTask> next;
  while (!stack.empty()) {
    const NodePairTask task = stack.back();
    stack.pop_back();
    next.clear();
    JoinNodePair(r, s, task.r, task.s, &next, &state->result, &state->stats);
    stack.insert(stack.end(), next.begin(), next.end());
  }
}

}  // namespace

JoinResult ParallelSyncTraversal(const PackedRTree& r, const PackedRTree& s,
                                 const ParallelSyncTraversalOptions& options,
                                 JoinStats* stats) {
  const std::size_t threads = std::max<std::size_t>(1, options.num_threads);
  std::vector<NodePairTask> frontier = {{r.root(), s.root()}};

  JoinResult out;
  JoinStats total_stats;

  const std::size_t dfs_threshold =
      options.strategy == TraversalStrategy::kBfsDfs
          ? options.dfs_switch_factor * threads
          : static_cast<std::size_t>(-1);

  while (!frontier.empty()) {
    std::vector<WorkerState> workers(threads);
    const bool dfs_phase = frontier.size() >= dfs_threshold;

    ParallelForWorker(
        frontier.size(), threads, options.schedule,
        [&](std::size_t i, std::size_t w) {
          WorkerState& state = workers[w];
          if (dfs_phase) {
            DfsFrom(r, s, frontier[i], &state);
          } else {
            JoinNodePair(r, s, frontier[i].r, frontier[i].s, &state.next,
                         &state.result, &state.stats);
          }
        },
        /*chunk=*/1);

    std::vector<NodePairTask> next;
    for (auto& w : workers) {
      out.Merge(std::move(w.result));
      total_stats += w.stats;
      next.insert(next.end(), w.next.begin(), w.next.end());
    }
    if (dfs_phase) break;  // DFS drains every subtree; nothing remains.
    frontier.swap(next);
  }

  if (stats != nullptr) *stats += total_stats;
  return out;
}

}  // namespace swiftspatial
