// Partition-Based Spatial-Merge join (Patel & DeWitt [57], Algorithm 3):
// the CPU baseline of §5.1. Data is partitioned into 1-D stripes; each
// stripe is joined independently (plane sweep by default, nested loop as an
// ablation), with duplicate results suppressed by the reference-point rule.
//
// Partitioning and joining are deliberately separate entry points: the
// paper's end-to-end numbers assume pre-partitioned data, while Table 2
// reports the partitioning cost on its own.
#ifndef SWIFTSPATIAL_JOIN_PBSM_H_
#define SWIFTSPATIAL_JOIN_PBSM_H_

#include <cstddef>

#include "common/thread_pool.h"
#include "datagen/dataset.h"
#include "grid/pbsm_partition.h"
#include "join/result.h"

namespace swiftspatial {

/// Tile-level join algorithm within each stripe.
enum class TileJoin {
  kPlaneSweep,
  kNestedLoop,
  /// Batched SIMD MBR filter kernel (join/simd_filter.h).
  kSimd,
};

const char* TileJoinToString(TileJoin t);

/// Runs one tile-level join of (r_ids x s_ids) with algorithm `tile_join`,
/// appending qualifying pairs to `out` (duplicates suppressed against
/// `dedup_tile` when non-null). The single dispatch point shared by every
/// partition-based driver: PBSM stripes, the grid-sharded PartitionedDriver,
/// and the async streaming executor in exec/.
void RunTileJoin(TileJoin tile_join, const Dataset& r, const Dataset& s,
                 const std::vector<ObjectId>& r_ids,
                 const std::vector<ObjectId>& s_ids, const Box* dedup_tile,
                 JoinResult* out, JoinStats* stats);

struct PbsmOptions {
  /// Number of 1-D stripes. The paper sweeps 1e2..1e5 and reports the best.
  int num_partitions = 1024;
  /// Partition along x and sweep along y, or vice versa.
  Axis axis = Axis::kX;
  std::size_t num_threads = 1;
  Schedule schedule = Schedule::kDynamic;
  TileJoin tile_join = TileJoin::kPlaneSweep;
};

/// Phase 1: partition both datasets into stripes.
StripePartition PbsmPartition(const Dataset& r, const Dataset& s,
                              const PbsmOptions& options);

/// Phase 2: tile-wise join of a pre-built partition.
JoinResult PbsmJoin(const Dataset& r, const Dataset& s,
                    const StripePartition& partition,
                    const PbsmOptions& options, JoinStats* stats = nullptr);

/// Convenience: both phases.
JoinResult PbsmSpatialJoin(const Dataset& r, const Dataset& s,
                           const PbsmOptions& options,
                           JoinStats* stats = nullptr);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_JOIN_PBSM_H_
