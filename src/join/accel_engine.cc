#include "join/accel_engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "grid/hierarchical_partition.h"
#include "hw/multi_device.h"
#include "rtree/bulk_load.h"
#include "rtree/packed_rtree.h"

namespace swiftspatial {

namespace {

// Plan/Execute bookkeeping shared by the three device engines (the same
// contract engine.cc's EngineBase enforces for the CPU engines: config and
// geometry validation at Plan, planned/empty-input guards, *out overwritten
// per Execute). Subclasses implement PlanImpl and a single ExecuteImpl that
// serves both the collecting and the streaming entry points.
class AccelEngineBase : public AccelJoinEngine {
 public:
  AccelEngineBase(std::string name, const EngineConfig& config)
      : name_(std::move(name)), config_(config) {}

  const std::string& name() const override { return name_; }

  Status Plan(const Dataset& r, const Dataset& s) final {
    SWIFT_RETURN_IF_ERROR(ValidateAccelConfig(config_));
    SWIFT_RETURN_IF_ERROR(Validate());
    if (config_.validate_inputs) {
      SWIFT_RETURN_IF_ERROR(r.ValidateBoxes());
      SWIFT_RETURN_IF_ERROR(s.ValidateBoxes());
    }
    r_ = &r;
    s_ = &s;
    planned_bytes_ = 0;
    if (!r.empty() && !s.empty()) {
      SWIFT_RETURN_IF_ERROR(PlanImpl(r, s));
    }
    planned_ = true;
    return Status::OK();
  }

  Status Execute(JoinResult* out, JoinStats* stats) final {
    if (!planned_) {
      return Status::Internal("Execute called before a successful Plan");
    }
    if (out == nullptr) {
      return Status::InvalidArgument("Execute requires a non-null result");
    }
    *out = JoinResult();
    report_ = hw::AcceleratorReport{};
    if (r_->empty() || s_->empty()) return Status::OK();
    return ExecuteImpl(*r_, *s_, out, stats, nullptr);
  }

  Status ExecuteStreaming(const AccelBatchSink& sink,
                          JoinStats* stats) final {
    if (!planned_) {
      return Status::Internal(
          "ExecuteStreaming called before a successful Plan");
    }
    if (!sink) {
      return Status::InvalidArgument(
          "ExecuteStreaming requires a callable sink");
    }
    report_ = hw::AcceleratorReport{};
    if (r_->empty() || s_->empty()) return Status::OK();
    return ExecuteImpl(*r_, *s_, nullptr, stats, &sink);
  }

 protected:
  /// Engine-specific config validation beyond ValidateAccelConfig.
  virtual Status Validate() { return Status::OK(); }
  /// Builds the device images (trees / partitions). Non-empty inputs only.
  virtual Status PlanImpl(const Dataset& r, const Dataset& s) = 0;
  /// Runs the device. Exactly one of `out` (collecting) and `sink`
  /// (streaming) is non-null. Must fill report_.
  virtual Status ExecuteImpl(const Dataset& r, const Dataset& s,
                             JoinResult* out, JoinStats* stats,
                             const AccelBatchSink* sink) = 0;

  const EngineConfig& config() const { return config_; }

  hw::AcceleratorConfig DeviceConfig() const {
    hw::AcceleratorConfig acfg;
    if (config_.accel_join_units > 0) {
      acfg.num_join_units = config_.accel_join_units;
    }
    return acfg;
  }

  /// Bridges the write unit's burst granularity to the engine sink: each
  /// flushed result burst (a tile batch / a run of leaf pairs) becomes one
  /// host-visible batch.
  static hw::ResultSink BurstBridge(const AccelBatchSink& sink) {
    return [&sink](const std::vector<ResultPair>& pairs) {
      sink(std::vector<ResultPair>(pairs));
    };
  }

 private:
  std::string name_;
  EngineConfig config_;
  const Dataset* r_ = nullptr;
  const Dataset* s_ = nullptr;
  bool planned_ = false;
};

// ---------------------------------------------------------------------------
// accel-bfs: BFS synchronous R-tree traversal on the device (§3.4.1). Plan
// is the host's side of the bargain: bulk-load both packed trees -- the
// byte images PCIe will ship -- and price them in planned_bytes_to_device.
// ---------------------------------------------------------------------------
class AccelBfsEngine : public AccelEngineBase {
 public:
  using AccelEngineBase::AccelEngineBase;

 protected:
  Status Validate() override {
    if (config().node_capacity < 2) {
      return Status::InvalidArgument("node_capacity must be >= 2");
    }
    return Status::OK();
  }

  Status PlanImpl(const Dataset& r, const Dataset& s) override {
    BulkLoadOptions bl;
    bl.max_entries = config().node_capacity;
    bl.num_threads = config().num_threads;
    r_tree_.emplace(StrBulkLoad(r, bl));
    s_tree_.emplace(StrBulkLoad(s, bl));
    planned_bytes_ = r_tree_->bytes().size() + s_tree_->bytes().size();
    return Status::OK();
  }

  Status ExecuteImpl(const Dataset&, const Dataset&, JoinResult* out,
                     JoinStats* stats, const AccelBatchSink* sink) override {
    hw::Accelerator device(DeviceConfig());
    hw::ResultSink bridge;
    if (sink != nullptr) bridge = BurstBridge(*sink);
    report_ = device.RunSyncTraversal(*r_tree_, *s_tree_, out,
                                      sink != nullptr ? &bridge : nullptr);
    if (stats != nullptr) *stats += report_.stats;
    return Status::OK();
  }

 private:
  std::optional<PackedRTree> r_tree_;
  std::optional<PackedRTree> s_tree_;
};

// ---------------------------------------------------------------------------
// accel-pbsm: tile-pair join over a hierarchical partition (§3.4.2). Plan
// partitions; the serialized tile stores + task table are the transfer.
// ---------------------------------------------------------------------------
class AccelPbsmEngine : public AccelEngineBase {
 public:
  using AccelEngineBase::AccelEngineBase;

 protected:
  Status PlanImpl(const Dataset& r, const Dataset& s) override {
    HierarchicalPartitionOptions hp;
    hp.tile_cap = config().accel_tile_cap;
    partition_ = PartitionHierarchical(r, s, hp);
    planned_bytes_ = hw::PbsmDeviceImageBytes(partition_);
    return Status::OK();
  }

  Status ExecuteImpl(const Dataset& r, const Dataset& s, JoinResult* out,
                     JoinStats* stats, const AccelBatchSink* sink) override {
    hw::Accelerator device(DeviceConfig());
    hw::ResultSink bridge;
    if (sink != nullptr) bridge = BurstBridge(*sink);
    report_ = device.RunPbsm(r, s, partition_, out,
                             sink != nullptr ? &bridge : nullptr);
    if (stats != nullptr) *stats += report_.stats;
    return Status::OK();
  }

 private:
  HierarchicalPartition partition_;
};

// ---------------------------------------------------------------------------
// accel-pbsm-4x: the §6 larger-than-device-memory path as an engine. A 2x2
// spatial grid (min_grid = 2) shards the join across up to 4 concurrent
// simulated devices; per-shard results are deduplicated on the host by the
// reference-point rule against the outer grid's dedup tiles. Streaming
// flushes each shard's deduplicated global pairs as that device retires.
// ---------------------------------------------------------------------------
class AccelPbsmMultiEngine : public AccelEngineBase {
 public:
  using AccelEngineBase::AccelEngineBase;

 protected:
  Status PlanImpl(const Dataset&, const Dataset&) override {
    // The grid-resolution search is footprint-driven and may refine during
    // execution (§6), so the per-device images are built inside Execute;
    // Plan's job here is validation only.
    return Status::OK();
  }

  Status ExecuteImpl(const Dataset& r, const Dataset& s, JoinResult* out,
                     JoinStats* stats, const AccelBatchSink* sink) override {
    hw::MultiDeviceConfig mdc;
    mdc.device = DeviceConfig();
    mdc.device_memory_bytes = config().accel_device_memory_bytes;
    mdc.strategy = hw::OutOfMemoryStrategy::kMultipleDevices;
    mdc.tile_cap = config().accel_tile_cap;
    mdc.min_grid = 2;  // the "4x": 2x2 spatial shards, one device each
    if (sink != nullptr) {
      // The engine sink is shard-agnostic; the stable id matters to callers
      // that dedup retried shards (the dist/ fault-recovery path).
      mdc.partition_sink = [sink](int /*shard_id*/,
                                  std::vector<ResultPair> pairs) {
        (*sink)(std::move(pairs));
      };
    }
    auto mdr = hw::PartitionedJoin(r, s, mdc, out);
    if (!mdr.ok()) return mdr.status();

    // Aggregate the per-device reports into one device view: concurrent
    // shards overlap, so cycle-like quantities take the max; transferred
    // bytes and work counters sum.
    report_.num_results = mdr->num_results;
    report_.total_seconds = mdr->total_seconds;
    for (const hw::AcceleratorReport& sub : mdr->sub_reports) {
      report_.kernel_cycles = std::max(report_.kernel_cycles,
                                       sub.kernel_cycles);
      report_.kernel_seconds = std::max(report_.kernel_seconds,
                                        sub.kernel_seconds);
      report_.host_transfer_seconds = std::max(report_.host_transfer_seconds,
                                               sub.host_transfer_seconds);
      report_.launch_seconds = std::max(report_.launch_seconds,
                                        sub.launch_seconds);
      report_.bytes_to_device += sub.bytes_to_device;
      report_.bytes_from_device += sub.bytes_from_device;
      report_.device_bytes_used = std::max(report_.device_bytes_used,
                                           sub.device_bytes_used);
      report_.stats += sub.stats;
    }
    if (stats != nullptr) *stats += report_.stats;
    return Status::OK();
  }
};

}  // namespace

bool IsAccelEngine(const std::string& name) {
  return name == kAccelBfsEngine || name == kAccelPbsmEngine ||
         name == kAccelPbsmMultiEngine;
}

Status ValidateAccelConfig(const EngineConfig& config) {
  if (config.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (config.accel_join_units < 0) {
    return Status::InvalidArgument("accel_join_units must be >= 0");
  }
  if (config.accel_tile_cap < 1) {
    return Status::InvalidArgument("accel_tile_cap must be >= 1");
  }
  if (config.accel_device_memory_bytes == 0) {
    return Status::InvalidArgument("accel_device_memory_bytes must be > 0");
  }
  return Status::OK();
}

Result<std::unique_ptr<AccelJoinEngine>> MakeAccelEngine(
    const std::string& name, const EngineConfig& config) {
  if (name == kAccelBfsEngine) {
    return std::unique_ptr<AccelJoinEngine>(
        std::make_unique<AccelBfsEngine>(name, config));
  }
  if (name == kAccelPbsmEngine) {
    return std::unique_ptr<AccelJoinEngine>(
        std::make_unique<AccelPbsmEngine>(name, config));
  }
  if (name == kAccelPbsmMultiEngine) {
    return std::unique_ptr<AccelJoinEngine>(
        std::make_unique<AccelPbsmMultiEngine>(name, config));
  }
  return Status::NotFound("not an accelerator engine: " + name);
}

}  // namespace swiftspatial
