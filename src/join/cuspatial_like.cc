#include "join/cuspatial_like.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"
#include "quadtree/point_quadtree.h"

namespace swiftspatial {

JoinResult CuSpatialLikeJoin(const Dataset& points, const Dataset& polygons,
                             const CuSpatialLikeOptions& options,
                             JoinStats* stats) {
  QuadtreeOptions qt;
  qt.leaf_capacity = options.quadtree_leaf_capacity;
  const PointQuadtree index = PointQuadtree::Build(points, qt);

  const std::size_t threads = std::max<std::size_t>(1, options.num_threads);
  const std::size_t batch = std::max<std::size_t>(1, options.batch_size);

  JoinResult out;
  uint64_t evals = 0;

  for (std::size_t begin = 0; begin < polygons.size(); begin += batch) {
    const std::size_t end = std::min(begin + batch, polygons.size());
    const std::size_t n = end - begin;

    // Pass 1: count matches per polygon so the output buffer can be sized
    // up front (the GPU's fixed-allocation constraint).
    std::vector<uint32_t> counts(n, 0);
    ParallelFor(
        n, threads, Schedule::kStatic,
        [&](std::size_t i) {
          uint32_t c = 0;
          index.ForEachInWindow(polygons.box(begin + i),
                                [&c](ObjectId, const Point&) { ++c; });
          counts[i] = c;
        },
        /*chunk=*/64);

    // Exclusive prefix sum = per-polygon write offsets.
    std::vector<uint64_t> offsets(n + 1, 0);
    std::partial_sum(counts.begin(), counts.end(), offsets.begin() + 1);
    const uint64_t total = offsets[n];

    // Pass 2: re-run the same queries, writing into the reserved slots.
    std::vector<ResultPair> buffer(total);
    ParallelFor(
        n, threads, Schedule::kStatic,
        [&](std::size_t i) {
          uint64_t w = offsets[i];
          const ObjectId poly_id = static_cast<ObjectId>(begin + i);
          index.ForEachInWindow(polygons.box(begin + i),
                                [&](ObjectId point_id, const Point&) {
                                  buffer[w++] = {point_id, poly_id};
                                });
        },
        /*chunk=*/64);

    out.mutable_pairs().insert(out.mutable_pairs().end(), buffer.begin(),
                               buffer.end());
    // Both passes traverse the index; count each window evaluation.
    evals += 2ULL * total;
  }

  if (stats != nullptr) {
    stats->predicate_evaluations += evals;
    stats->tasks += (polygons.size() + batch - 1) / batch;
  }
  return out;
}

}  // namespace swiftspatial
