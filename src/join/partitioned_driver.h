// PartitionedDriver: the library's partition-parallel batched join driver.
//
// Both inputs are sharded onto a uniform grid (src/grid/uniform_grid.h,
// multi-assignment: an object lands in every cell its MBR overlaps); each
// cell with objects from both sides becomes one batched tile-join task
// (plane sweep or nested loop); tasks run as one exec::TaskGraph wave on a
// ThreadPool, with the final merge expressed as a downstream task depending
// on every cell (largest cells are added first, so they start earliest and
// the small ones backfill). Cross-cell duplicates -- a pair whose boxes
// co-occupy several cells -- are eliminated with the PBSM reference-point
// rule (Box::ReferencePointInTile): the pair is emitted only by the single
// cell containing the bottom-left corner of the pair's intersection.
//
// The merge is lock-free on the hot path: every worker appends into its own
// JoinResult/JoinStats accumulator (no shared state while joining), and the
// per-worker buffers are concatenated once, after the pool drains. The
// resulting multiset is therefore independent of the thread count and
// schedule; only the pair order varies (canonicalise with JoinResult::Sort).
#ifndef SWIFTSPATIAL_JOIN_PARTITIONED_DRIVER_H_
#define SWIFTSPATIAL_JOIN_PARTITIONED_DRIVER_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "datagen/dataset.h"
#include "geometry/box.h"
#include "grid/uniform_grid.h"
#include "join/pbsm.h"
#include "join/result.h"

namespace swiftspatial {

/// Default auto-sizing target: objects per grid cell (both sides combined).
/// Shared by PartitionedDriverOptions and the streaming executor so the
/// `partitioned` and `async` engines plan identical grids.
inline constexpr std::size_t kDefaultCellPopulation = 128;

/// Cell-task batching factor: cell joins are strided into at most
/// `workers * kCellTaskGroupsPerWorker` tasks per wave -- enough groups for
/// dynamic load balancing while amortising per-task dispatch over many
/// (often tiny) cells. Shared with the streaming executor so the sync and
/// async paths keep the same dispatch granularity.
inline constexpr std::size_t kCellTaskGroupsPerWorker = 8;

/// Side length of the auto-sized square grid: ~`target_cell_population`
/// objects per cell on average, clamped to [1, 1024]. Shared by the
/// synchronous driver and the banded streaming executor in exec/streaming
/// so both paths shard identically.
int AutoGridSide(std::size_t total_objects,
                 std::size_t target_cell_population);

/// Fail-fast validation of grid dimensions (0 = auto on both, bounded so
/// cols * rows cannot overflow int). One definition shared by the
/// synchronous driver and the streaming executor, so the `partitioned` and
/// `async` engines can never drift apart on which configurations they
/// accept.
Status ValidateGridConfig(int grid_cols, int grid_rows);

struct PartitionedDriverOptions {
  /// Grid resolution. 0 = auto-size so the average cell holds roughly
  /// `target_cell_population` objects.
  int grid_cols = 0;
  int grid_rows = 0;
  /// Target objects per cell for auto-sizing (both sides combined).
  std::size_t target_cell_population = kDefaultCellPopulation;
  std::size_t num_threads = 1;
  /// Tile-level join within each cell.
  TileJoin tile_join = TileJoin::kPlaneSweep;
  // Note: the driver has no Schedule knob. Execution is a TaskGraph wave --
  // idle workers pull the next ready group, i.e. inherently dynamic;
  // OpenMP-style static/dynamic selection remains on the ParallelFor-based
  // algorithms (pbsm, parallel_sync_traversal).
};

/// Two-stage partition-parallel join driver. Plan shards the inputs onto the
/// grid; Execute joins the populated cells on `num_threads` workers and
/// merges the per-worker results. Execute may be called repeatedly after one
/// Plan; the datasets given to Plan must outlive the last Execute.
class PartitionedDriver {
 public:
  explicit PartitionedDriver(PartitionedDriverOptions options = {});

  /// Validates options, derives the grid, and builds per-cell id lists.
  Status Plan(const Dataset& r, const Dataset& s);

  /// Joins all populated cells in parallel. `stats` may be null.
  JoinResult Execute(JoinStats* stats = nullptr);

  // Introspection (valid after Plan).
  int grid_cols() const { return cols_; }
  int grid_rows() const { return rows_; }
  /// Cells where both inputs are populated (the parallel task count).
  std::size_t num_tasks() const { return tasks_.size(); }

 private:
  struct CellTask {
    Box dedup_tile;  // cell box, closed at the extent max (half-open rule)
    std::vector<ObjectId> r_ids;
    std::vector<ObjectId> s_ids;
  };

  PartitionedDriverOptions options_;
  const Dataset* r_ = nullptr;
  const Dataset* s_ = nullptr;
  int cols_ = 0;
  int rows_ = 0;
  std::vector<CellTask> tasks_;
  bool planned_ = false;
};

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_JOIN_PARTITIONED_DRIVER_H_
