// PartitionedDriver: the library's partition-parallel batched join driver.
//
// Both inputs are sharded onto a uniform grid (src/grid/uniform_grid.h,
// multi-assignment: an object lands in every cell its MBR overlaps); each
// cell with objects from both sides becomes one batched tile-join task
// (plane sweep or nested loop); tasks run as one exec::TaskGraph wave on a
// ThreadPool, with the final merge expressed as a downstream task depending
// on every cell (largest cells are added first, so they start earliest and
// the small ones backfill). Cross-cell duplicates -- a pair whose boxes
// co-occupy several cells -- are eliminated with the PBSM reference-point
// rule (Box::ReferencePointInTile): the pair is emitted only by the single
// cell containing the bottom-left corner of the pair's intersection.
//
// The merge is lock-free on the hot path: every worker appends into its own
// JoinResult/JoinStats accumulator (no shared state while joining), and the
// per-worker buffers are concatenated once, after the pool drains. The
// resulting multiset is therefore independent of the thread count and
// schedule; only the pair order varies (canonicalise with JoinResult::Sort).
#ifndef SWIFTSPATIAL_JOIN_PARTITIONED_DRIVER_H_
#define SWIFTSPATIAL_JOIN_PARTITIONED_DRIVER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "datagen/dataset.h"
#include "geometry/box.h"
#include "grid/uniform_grid.h"
#include "join/pbsm.h"
#include "join/result.h"

namespace swiftspatial {

/// Default auto-sizing target: objects per grid cell (both sides combined).
/// Shared by PartitionedDriverOptions and the streaming executor so the
/// `partitioned` and `async` engines plan identical grids.
inline constexpr std::size_t kDefaultCellPopulation = 128;

/// Cell-task batching factor: cell joins are strided into at most
/// `workers * kCellTaskGroupsPerWorker` tasks per wave -- enough groups for
/// dynamic load balancing while amortising per-task dispatch over many
/// (often tiny) cells. Shared with the streaming executor so the sync and
/// async paths keep the same dispatch granularity.
inline constexpr std::size_t kCellTaskGroupsPerWorker = 8;

/// Side length of the auto-sized square grid: ~`target_cell_population`
/// objects per cell on average, clamped to [1, 1024]. Shared by the
/// synchronous driver and the banded streaming executor in exec/streaming
/// so both paths shard identically.
int AutoGridSide(std::size_t total_objects,
                 std::size_t target_cell_population);

/// Fail-fast validation of grid dimensions (0 = auto on both, bounded so
/// cols * rows cannot overflow int). One definition shared by the
/// synchronous driver and the streaming executor, so the `partitioned` and
/// `async` engines can never drift apart on which configurations they
/// accept.
Status ValidateGridConfig(int grid_cols, int grid_rows);

/// One grid decision for a join: the joint extent plus the derived (or
/// explicit) resolution.
struct JoinGridSpec {
  /// False when either input is empty or the joint extent is degenerate --
  /// there is nothing to grid (and no pairs to produce).
  bool has_grid = false;
  Box extent;
  int cols = 0;
  int rows = 0;
};

/// The single authority for sizing a join's uniform grid, shared by every
/// grid-sharding planner -- the synchronous PartitionedDriver, the banded
/// streaming executor (exec/streaming), and the distributed ShardPlanner
/// (dist/shard_planner). Cross-engine shard-id stability depends on all
/// three deriving the *same* grid for the same inputs; routing them through
/// one helper makes silent drift impossible. Explicit `grid_cols > 0` wins;
/// otherwise the grid is auto-sized via AutoGridSide over the combined
/// cardinality. Callers validate dimensions first (ValidateGridConfig).
JoinGridSpec DeriveJoinGrid(
    const Dataset& r, const Dataset& s, int grid_cols, int grid_rows,
    std::size_t target_cell_population = kDefaultCellPopulation);

struct PartitionedDriverOptions {
  /// Grid resolution. 0 = auto-size so the average cell holds roughly
  /// `target_cell_population` objects.
  int grid_cols = 0;
  int grid_rows = 0;
  /// Target objects per cell for auto-sizing (both sides combined).
  std::size_t target_cell_population = kDefaultCellPopulation;
  std::size_t num_threads = 1;
  /// Tile-level join within each cell.
  TileJoin tile_join = TileJoin::kPlaneSweep;
  // Note: the driver has no Schedule knob. Execution is a TaskGraph wave --
  // idle workers pull the next ready group, i.e. inherently dynamic;
  // OpenMP-style static/dynamic selection remains on the ParallelFor-based
  // algorithms (pbsm, parallel_sync_traversal).
};

/// One populated grid cell of a partitioned plan: the per-side id lists to
/// join plus the reference-point dedup tile (cell box, closed at the extent
/// max per the half-open rule).
struct PartitionedCell {
  Box dedup_tile;
  std::vector<ObjectId> r_ids;
  std::vector<ObjectId> s_ids;
};

/// The immutable output of partitioned planning: the derived grid and the
/// populated cells, largest first. Once built it is never mutated --
/// Execute reads it const -- so one plan may be shared (shared_ptr) across
/// threads and across repeated executions, which is what the warm-serving
/// plan cache (exec/dataset_registry) relies on.
struct PartitionedPlanState {
  int cols = 0;
  int rows = 0;
  std::vector<PartitionedCell> cells;

  /// Rough resident footprint, for cache accounting.
  std::size_t MemoryBytes() const;
};

/// Plans the grid join of (r, s): validates options, derives the grid
/// (DeriveJoinGrid), and builds the per-cell id lists. Empty/disjoint
/// inputs yield a plan with no cells.
Result<std::shared_ptr<const PartitionedPlanState>> PlanPartitionedCells(
    const Dataset& r, const Dataset& s,
    const PartitionedDriverOptions& options);

/// Joins every cell of a previously built plan. Thread-safe for concurrent
/// callers sharing one plan: all plan state is read const, each call owns
/// its accumulators. `r` and `s` must be the datasets the plan was built
/// from; `stats` may be null.
JoinResult ExecutePartitionedPlan(const PartitionedPlanState& plan,
                                  const Dataset& r, const Dataset& s,
                                  TileJoin tile_join, std::size_t num_threads,
                                  JoinStats* stats);

/// Two-stage partition-parallel join driver. Plan shards the inputs onto the
/// grid; Execute joins the populated cells on `num_threads` workers and
/// merges the per-worker results. Execute may be called repeatedly after one
/// Plan; the datasets given to Plan must outlive the last Execute.
class PartitionedDriver {
 public:
  explicit PartitionedDriver(PartitionedDriverOptions options = {});

  /// Validates options, derives the grid, and builds per-cell id lists.
  Status Plan(const Dataset& r, const Dataset& s);

  /// Joins all populated cells in parallel. `stats` may be null.
  JoinResult Execute(JoinStats* stats = nullptr);

  // Introspection (valid after Plan).
  int grid_cols() const { return plan_ ? plan_->cols : 0; }
  int grid_rows() const { return plan_ ? plan_->rows : 0; }
  /// Cells where both inputs are populated (the parallel task count).
  std::size_t num_tasks() const { return plan_ ? plan_->cells.size() : 0; }
  /// The immutable plan (valid after Plan); shareable beyond the driver.
  std::shared_ptr<const PartitionedPlanState> plan_state() const {
    return plan_;
  }

 private:
  PartitionedDriverOptions options_;
  const Dataset* r_ = nullptr;
  const Dataset* s_ = nullptr;
  std::shared_ptr<const PartitionedPlanState> plan_;
  bool planned_ = false;
};

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_JOIN_PARTITIONED_DRIVER_H_
