// Join result containers and statistics shared by every join implementation
// (CPU baselines and the simulated accelerator), plus helpers used by tests
// to compare result multisets across algorithms.
#ifndef SWIFTSPATIAL_JOIN_RESULT_H_
#define SWIFTSPATIAL_JOIN_RESULT_H_

#include <cstdint>
#include <vector>

#include "datagen/dataset.h"

namespace swiftspatial {

/// One qualifying pair: ids from datasets R and S. Matches the accelerator's
/// 8-byte result format (§3.5).
struct ResultPair {
  ObjectId r = 0;
  ObjectId s = 0;

  friend bool operator==(const ResultPair& a, const ResultPair& b) {
    return a.r == b.r && a.s == b.s;
  }
  friend bool operator<(const ResultPair& a, const ResultPair& b) {
    if (a.r != b.r) return a.r < b.r;
    return a.s < b.s;
  }
};
static_assert(sizeof(ResultPair) == 8, "pair must match the DRAM layout");

/// Accumulates join results. Multi-threaded joins give each worker its own
/// JoinResult and merge at the end.
class JoinResult {
 public:
  void Add(ObjectId r, ObjectId s) { pairs_.push_back({r, s}); }
  void Reserve(std::size_t n) { pairs_.reserve(n); }

  /// Appends and clears `other`.
  void Merge(JoinResult&& other);

  std::size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }
  const std::vector<ResultPair>& pairs() const { return pairs_; }
  std::vector<ResultPair>& mutable_pairs() { return pairs_; }

  /// Sorts pairs lexicographically (for comparisons and stable output).
  void Sort();

  /// True if both hold the same multiset of pairs. Both are sorted as a side
  /// effect.
  static bool SameMultiset(JoinResult& a, JoinResult& b);

 private:
  std::vector<ResultPair> pairs_;
};

/// Counters reported by join implementations.
struct JoinStats {
  /// MBR predicate evaluations (the unit of Fig. 13's cycles-per-predicate).
  uint64_t predicate_evaluations = 0;
  /// Node-pair or tile-pair join tasks executed.
  uint64_t tasks = 0;
  /// Intermediate (non-leaf) qualifying pairs produced, i.e. the task-queue
  /// traffic of synchronous traversal.
  uint64_t intermediate_pairs = 0;

  JoinStats& operator+=(const JoinStats& o) {
    predicate_evaluations += o.predicate_evaluations;
    tasks += o.tasks;
    intermediate_pairs += o.intermediate_pairs;
    return *this;
  }
};

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_JOIN_RESULT_H_
