#include "grid/pbsm_partition.h"

#include <algorithm>

#include "common/logging.h"
#include "grid/edge_snap.h"

namespace swiftspatial {

namespace {

// Assigns every object to the stripes its extent overlaps along the axis.
// The stripe index is estimated with double arithmetic and snapped to the
// stripes' float-rounded edges (grid/edge_snap.h) -- a fixed widening is
// not enough, because far from the origin MANY consecutive edges can
// collapse onto one float value and the owning stripe can be arbitrarily
// far from the double estimate.
void AssignToStripes(const Dataset& dataset, const std::vector<Box>& stripes,
                     const Box& extent, Axis axis,
                     std::vector<std::vector<ObjectId>>* parts) {
  const int num_partitions = static_cast<int>(stripes.size());
  const double lo = axis == Axis::kX ? extent.min_x : extent.min_y;
  const double hi = axis == Axis::kX ? extent.max_x : extent.max_y;
  const double width = (hi - lo) / num_partitions;
  // Rounded stripe boundary k (0..num_partitions): the min edge of stripe k
  // and the max edge of stripe k-1, read from the boxes the stripes actually
  // carry (the last stripe's max is closed to +inf for dedup, so boundary
  // `num_partitions` is the extent max instead).
  const Coord hi_edge = axis == Axis::kX ? extent.max_x : extent.max_y;
  auto edge = [&](int k) -> Coord {
    if (k >= num_partitions) return hi_edge;
    return axis == Axis::kX ? stripes[k].min_x : stripes[k].min_y;
  };
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Box& b = dataset.box(i);
    const Coord bmin = axis == Axis::kX ? b.min_x : b.min_y;
    const Coord bmax = axis == Axis::kX ? b.max_x : b.max_y;
    // A zero-width axis collapses every stripe onto the same line; the
    // single LAST stripe is used by convention, matching CloseLastTile.
    int p0 = num_partitions - 1;
    int p1 = num_partitions - 1;
    if (width > 0) {
      p0 = std::clamp(static_cast<int>((bmin - lo) / width), 0,
                      num_partitions - 1);
      p1 = std::clamp(static_cast<int>((bmax - lo) / width), 0,
                      num_partitions - 1);
      SnapIndexRangeToEdges(bmin, bmax, num_partitions, edge, &p0, &p1);
    }
    for (int p = p0; p <= p1; ++p) {
      if (Intersects(b, stripes[p])) {
        (*parts)[p].push_back(static_cast<ObjectId>(i));
      }
    }
  }
}

}  // namespace

StripePartition PartitionStripes(const Dataset& r, const Dataset& s,
                                 int num_partitions, Axis axis) {
  SWIFT_CHECK_GE(num_partitions, 1);
  Box extent = r.Extent();
  extent.Expand(s.Extent());
  SWIFT_CHECK(!extent.IsEmpty());

  StripePartition out;
  out.axis = axis;
  out.stripes.reserve(num_partitions);
  const double lo = axis == Axis::kX ? extent.min_x : extent.min_y;
  const double hi = axis == Axis::kX ? extent.max_x : extent.max_y;
  const double width = (hi - lo) / num_partitions;
  for (int p = 0; p < num_partitions; ++p) {
    const double a = lo + p * width;
    const double b = p + 1 == num_partitions ? hi : lo + (p + 1) * width;
    Box stripe;
    if (axis == Axis::kX) {
      stripe = Box(static_cast<Coord>(a), extent.min_y, static_cast<Coord>(b),
                   extent.max_y);
    } else {
      stripe = Box(extent.min_x, static_cast<Coord>(a), extent.max_x,
                   static_cast<Coord>(b));
    }
    // Stripes double as dedup tiles; keep the global boundary closed. Every
    // stripe is the last (only) tile along the non-partitioned axis.
    const bool last = p + 1 == num_partitions;
    out.stripes.push_back(CloseLastTile(stripe, axis == Axis::kX ? last : true,
                                        axis == Axis::kY ? last : true));
  }
  out.r_parts.resize(num_partitions);
  out.s_parts.resize(num_partitions);
  AssignToStripes(r, out.stripes, extent, axis, &out.r_parts);
  AssignToStripes(s, out.stripes, extent, axis, &out.s_parts);
  return out;
}

}  // namespace swiftspatial
