#include "grid/pbsm_partition.h"

#include <algorithm>

#include "common/logging.h"

namespace swiftspatial {

namespace {

// Assigns every object to the stripes its extent overlaps along the axis.
void AssignToStripes(const Dataset& dataset, const Box& extent, Axis axis,
                     int num_partitions,
                     std::vector<std::vector<ObjectId>>* parts) {
  const double lo = axis == Axis::kX ? extent.min_x : extent.min_y;
  const double hi = axis == Axis::kX ? extent.max_x : extent.max_y;
  const double width = (hi - lo) / num_partitions;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Box& b = dataset.box(i);
    const double bmin = axis == Axis::kX ? b.min_x : b.min_y;
    const double bmax = axis == Axis::kX ? b.max_x : b.max_y;
    int p0 = width > 0 ? static_cast<int>((bmin - lo) / width) : 0;
    int p1 = width > 0 ? static_cast<int>((bmax - lo) / width) : 0;
    p0 = std::clamp(p0, 0, num_partitions - 1);
    p1 = std::clamp(p1, 0, num_partitions - 1);
    for (int p = p0; p <= p1; ++p) {
      (*parts)[p].push_back(static_cast<ObjectId>(i));
    }
  }
}

}  // namespace

StripePartition PartitionStripes(const Dataset& r, const Dataset& s,
                                 int num_partitions, Axis axis) {
  SWIFT_CHECK_GE(num_partitions, 1);
  Box extent = r.Extent();
  extent.Expand(s.Extent());
  SWIFT_CHECK(!extent.IsEmpty());

  StripePartition out;
  out.axis = axis;
  out.stripes.reserve(num_partitions);
  const double lo = axis == Axis::kX ? extent.min_x : extent.min_y;
  const double hi = axis == Axis::kX ? extent.max_x : extent.max_y;
  const double width = (hi - lo) / num_partitions;
  for (int p = 0; p < num_partitions; ++p) {
    const double a = lo + p * width;
    const double b = p + 1 == num_partitions ? hi : lo + (p + 1) * width;
    Box stripe;
    if (axis == Axis::kX) {
      stripe = Box(static_cast<Coord>(a), extent.min_y, static_cast<Coord>(b),
                   extent.max_y);
    } else {
      stripe = Box(extent.min_x, static_cast<Coord>(a), extent.max_x,
                   static_cast<Coord>(b));
    }
    // Stripes double as dedup tiles; keep the global boundary closed.
    out.stripes.push_back(CloseTileAtExtentMax(stripe, extent));
  }
  out.r_parts.resize(num_partitions);
  out.s_parts.resize(num_partitions);
  AssignToStripes(r, extent, axis, num_partitions, &out.r_parts);
  AssignToStripes(s, extent, axis, num_partitions, &out.s_parts);
  return out;
}

}  // namespace swiftspatial
