#include "grid/hierarchical_partition.h"

#include <utility>

#include "common/logging.h"
#include "grid/uniform_grid.h"

namespace swiftspatial {

namespace {

struct Splitter {
  const Dataset& r;
  const Dataset& s;
  const HierarchicalPartitionOptions& options;
  HierarchicalPartition* out;

  // `last_x` / `last_y` track whether the tile is the globally right-/top-
  // most along its axis; the emitted dedup tile is closed to +inf exactly
  // there (CloseLastTile). Deciding by coordinate comparison against the
  // extent max instead would open EVERY tile whose rounded max edge
  // collides with the extent max -- overlapping half-open ranges that
  // double-claim pairs once multi-assignment places objects in all of them.
  void Emit(TileTask task, int depth, bool last_x, bool last_y) {
    const uint64_t work = static_cast<uint64_t>(task.r_objects.size()) *
                          task.s_objects.size();
    const uint64_t cap2 = static_cast<uint64_t>(options.tile_cap) *
                          static_cast<uint64_t>(options.tile_cap);
    if (task.r_objects.empty() || task.s_objects.empty()) return;
    if (work <= cap2) {
      // The emitted tile is the join's dedup tile; keep the global
      // boundary closed (splitting above used the raw geometry).
      task.tile = CloseLastTile(task.tile, last_x, last_y);
      out->tasks.push_back(std::move(task));
      return;
    }
    if (depth >= options.max_depth) {
      ++out->over_cap_tiles;
      task.tile = CloseLastTile(task.tile, last_x, last_y);
      out->tasks.push_back(std::move(task));
      return;
    }
    // Quarter the tile and re-assign its objects. Only the x-high halves of
    // a globally-rightmost tile stay rightmost (ditto y-high / topmost).
    const Point c = task.tile.Center();
    struct Quad {
      Box box;
      bool last_x;
      bool last_y;
    };
    const Quad quads[4] = {
        {Box(task.tile.min_x, task.tile.min_y, c.x, c.y), false, false},
        {Box(c.x, task.tile.min_y, task.tile.max_x, c.y), last_x, false},
        {Box(task.tile.min_x, c.y, c.x, task.tile.max_y), false, last_y},
        {Box(c.x, c.y, task.tile.max_x, task.tile.max_y), last_x, last_y},
    };
    for (const Quad& q : quads) {
      TileTask sub;
      sub.tile = q.box;
      for (ObjectId id : task.r_objects) {
        if (Intersects(r.box(static_cast<std::size_t>(id)), q.box)) {
          sub.r_objects.push_back(id);
        }
      }
      if (sub.r_objects.empty()) continue;
      for (ObjectId id : task.s_objects) {
        if (Intersects(s.box(static_cast<std::size_t>(id)), q.box)) {
          sub.s_objects.push_back(id);
        }
      }
      Emit(std::move(sub), depth + 1, q.last_x, q.last_y);
    }
  }
};

}  // namespace

HierarchicalPartition PartitionHierarchical(
    const Dataset& r, const Dataset& s,
    const HierarchicalPartitionOptions& options) {
  SWIFT_CHECK_GE(options.tile_cap, 1);
  SWIFT_CHECK_GE(options.initial_grid, 1);

  HierarchicalPartition out;
  out.tile_cap = options.tile_cap;
  Box extent = r.Extent();
  extent.Expand(s.Extent());
  if (extent.IsEmpty()) return out;

  const UniformGrid grid(extent, options.initial_grid, options.initial_grid);
  auto r_assign = grid.Assign(r);
  auto s_assign = grid.Assign(s);

  Splitter splitter{r, s, options, &out};
  for (int t = 0; t < grid.num_tiles(); ++t) {
    if (r_assign[t].empty() || s_assign[t].empty()) continue;
    TileTask task;
    task.tile = grid.TileBoxByIndex(t);
    task.r_objects = std::move(r_assign[t]);
    task.s_objects = std::move(s_assign[t]);
    splitter.Emit(std::move(task), 0, grid.IsLastCol(t), grid.IsLastRow(t));
  }
  return out;
}

}  // namespace swiftspatial
