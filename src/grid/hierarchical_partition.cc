#include "grid/hierarchical_partition.h"

#include <utility>

#include "common/logging.h"
#include "grid/uniform_grid.h"

namespace swiftspatial {

namespace {

struct Splitter {
  const Dataset& r;
  const Dataset& s;
  const HierarchicalPartitionOptions& options;
  const Box extent;
  HierarchicalPartition* out;

  void Emit(TileTask task, int depth) {
    const uint64_t work = static_cast<uint64_t>(task.r_objects.size()) *
                          task.s_objects.size();
    const uint64_t cap2 = static_cast<uint64_t>(options.tile_cap) *
                          static_cast<uint64_t>(options.tile_cap);
    if (task.r_objects.empty() || task.s_objects.empty()) return;
    if (work <= cap2) {
      // The emitted tile is the join's dedup tile; keep the global
      // boundary closed (splitting above used the raw geometry).
      task.tile = CloseTileAtExtentMax(task.tile, extent);
      out->tasks.push_back(std::move(task));
      return;
    }
    if (depth >= options.max_depth) {
      ++out->over_cap_tiles;
      task.tile = CloseTileAtExtentMax(task.tile, extent);
      out->tasks.push_back(std::move(task));
      return;
    }
    // Quarter the tile and re-assign its objects.
    const Point c = task.tile.Center();
    const Box quads[4] = {
        Box(task.tile.min_x, task.tile.min_y, c.x, c.y),
        Box(c.x, task.tile.min_y, task.tile.max_x, c.y),
        Box(task.tile.min_x, c.y, c.x, task.tile.max_y),
        Box(c.x, c.y, task.tile.max_x, task.tile.max_y),
    };
    for (const Box& q : quads) {
      TileTask sub;
      sub.tile = q;
      for (ObjectId id : task.r_objects) {
        if (Intersects(r.box(static_cast<std::size_t>(id)), q)) {
          sub.r_objects.push_back(id);
        }
      }
      if (sub.r_objects.empty()) continue;
      for (ObjectId id : task.s_objects) {
        if (Intersects(s.box(static_cast<std::size_t>(id)), q)) {
          sub.s_objects.push_back(id);
        }
      }
      Emit(std::move(sub), depth + 1);
    }
  }
};

}  // namespace

HierarchicalPartition PartitionHierarchical(
    const Dataset& r, const Dataset& s,
    const HierarchicalPartitionOptions& options) {
  SWIFT_CHECK_GE(options.tile_cap, 1);
  SWIFT_CHECK_GE(options.initial_grid, 1);

  HierarchicalPartition out;
  out.tile_cap = options.tile_cap;
  Box extent = r.Extent();
  extent.Expand(s.Extent());
  if (extent.IsEmpty()) return out;

  const UniformGrid grid(extent, options.initial_grid, options.initial_grid);
  auto r_assign = grid.Assign(r);
  auto s_assign = grid.Assign(s);

  Splitter splitter{r, s, options, extent, &out};
  for (int t = 0; t < grid.num_tiles(); ++t) {
    if (r_assign[t].empty() || s_assign[t].empty()) continue;
    TileTask task;
    task.tile = grid.TileBoxByIndex(t);
    task.r_objects = std::move(r_assign[t]);
    task.s_objects = std::move(s_assign[t]);
    splitter.Emit(std::move(task), 0);
  }
  return out;
}

}  // namespace swiftspatial
