#include "grid/uniform_grid.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "grid/edge_snap.h"

namespace swiftspatial {

UniformGrid::UniformGrid(const Box& extent, int cols, int rows)
    : extent_(extent), cols_(cols), rows_(rows) {
  SWIFT_CHECK_GE(cols, 1);
  SWIFT_CHECK_GE(rows, 1);
  SWIFT_CHECK(!extent.IsEmpty());
  tile_w_ = static_cast<double>(extent.Width()) / cols;
  tile_h_ = static_cast<double>(extent.Height()) / rows;
}

Coord UniformGrid::ColEdge(int k) const {
  if (k <= 0) return extent_.min_x;
  if (k >= cols_) return extent_.max_x;
  return static_cast<Coord>(extent_.min_x + k * tile_w_);
}

Coord UniformGrid::RowEdge(int k) const {
  if (k <= 0) return extent_.min_y;
  if (k >= rows_) return extent_.max_y;
  return static_cast<Coord>(extent_.min_y + k * tile_h_);
}

Box UniformGrid::TileBox(int tx, int ty) const {
  SWIFT_DCHECK(tx >= 0 && tx < cols_ && ty >= 0 && ty < rows_);
  return Box(ColEdge(tx), RowEdge(ty), ColEdge(tx + 1), RowEdge(ty + 1));
}

void UniformGrid::TileRange(const Box& b, int* tx0, int* ty0, int* tx1,
                            int* ty1) const {
  auto clamp_col = [this](double v) {
    return std::clamp(static_cast<int>(v), 0, cols_ - 1);
  };
  auto clamp_row = [this](double v) {
    return std::clamp(static_cast<int>(v), 0, rows_ - 1);
  };
  // A zero-width axis collapses every tile onto the same line; the single
  // LAST tile is used by convention, matching CloseLastTile (only the last
  // tile's half-open dedup range is non-empty there).
  *tx0 = tile_w_ > 0 ? clamp_col((b.min_x - extent_.min_x) / tile_w_)
                     : cols_ - 1;
  *tx1 = tile_w_ > 0 ? clamp_col((b.max_x - extent_.min_x) / tile_w_)
                     : cols_ - 1;
  *ty0 = tile_h_ > 0 ? clamp_row((b.min_y - extent_.min_y) / tile_h_)
                     : rows_ - 1;
  *ty1 = tile_h_ > 0 ? clamp_row((b.max_y - extent_.min_y) / tile_h_)
                     : rows_ - 1;

  // The estimates above divide in double, but tiles report float-rounded
  // edges (see grid/edge_snap.h): snap each bound to the actual edges so
  // the range covers every tile whose closed box touches `b`. Degenerate
  // extents (tile width 0) keep the single-last-column convention.
  if (tile_w_ > 0) {
    SnapIndexRangeToEdges(
        b.min_x, b.max_x, cols_, [this](int k) { return ColEdge(k); }, tx0,
        tx1);
  }
  if (tile_h_ > 0) {
    SnapIndexRangeToEdges(
        b.min_y, b.max_y, rows_, [this](int k) { return RowEdge(k); }, ty0,
        ty1);
  }
}

std::vector<std::vector<ObjectId>> UniformGrid::Assign(
    const Dataset& dataset) const {
  std::vector<std::vector<ObjectId>> assignment(num_tiles());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Box& b = dataset.box(i);
    int tx0, ty0, tx1, ty1;
    TileRange(b, &tx0, &ty0, &tx1, &ty1);
    for (int ty = ty0; ty <= ty1; ++ty) {
      for (int tx = tx0; tx <= tx1; ++tx) {
        // TileRange clamps; re-check true overlap so clamped-out objects are
        // not spuriously assigned to border tiles.
        if (Intersects(b, TileBox(tx, ty))) {
          assignment[ty * cols_ + tx].push_back(static_cast<ObjectId>(i));
        }
      }
    }
  }
  return assignment;
}

}  // namespace swiftspatial
