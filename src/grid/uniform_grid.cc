#include "grid/uniform_grid.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace swiftspatial {

UniformGrid::UniformGrid(const Box& extent, int cols, int rows)
    : extent_(extent), cols_(cols), rows_(rows) {
  SWIFT_CHECK_GE(cols, 1);
  SWIFT_CHECK_GE(rows, 1);
  SWIFT_CHECK(!extent.IsEmpty());
  tile_w_ = static_cast<double>(extent.Width()) / cols;
  tile_h_ = static_cast<double>(extent.Height()) / rows;
}

Box UniformGrid::TileBox(int tx, int ty) const {
  SWIFT_DCHECK(tx >= 0 && tx < cols_ && ty >= 0 && ty < rows_);
  return Box(static_cast<Coord>(extent_.min_x + tx * tile_w_),
             static_cast<Coord>(extent_.min_y + ty * tile_h_),
             static_cast<Coord>(tx + 1 == cols_ ? extent_.max_x
                                                : extent_.min_x + (tx + 1) * tile_w_),
             static_cast<Coord>(ty + 1 == rows_ ? extent_.max_y
                                                : extent_.min_y + (ty + 1) * tile_h_));
}

void UniformGrid::TileRange(const Box& b, int* tx0, int* ty0, int* tx1,
                            int* ty1) const {
  auto clamp_col = [this](double v) {
    return std::clamp(static_cast<int>(v), 0, cols_ - 1);
  };
  auto clamp_row = [this](double v) {
    return std::clamp(static_cast<int>(v), 0, rows_ - 1);
  };
  *tx0 = tile_w_ > 0 ? clamp_col((b.min_x - extent_.min_x) / tile_w_) : 0;
  *tx1 = tile_w_ > 0 ? clamp_col((b.max_x - extent_.min_x) / tile_w_) : 0;
  *ty0 = tile_h_ > 0 ? clamp_row((b.min_y - extent_.min_y) / tile_h_) : 0;
  *ty1 = tile_h_ > 0 ? clamp_row((b.max_y - extent_.min_y) / tile_h_) : 0;
}

std::vector<std::vector<ObjectId>> UniformGrid::Assign(
    const Dataset& dataset) const {
  std::vector<std::vector<ObjectId>> assignment(num_tiles());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Box& b = dataset.box(i);
    int tx0, ty0, tx1, ty1;
    TileRange(b, &tx0, &ty0, &tx1, &ty1);
    for (int ty = ty0; ty <= ty1; ++ty) {
      for (int tx = tx0; tx <= tx1; ++tx) {
        // TileRange clamps; re-check true overlap so clamped-out objects are
        // not spuriously assigned to border tiles.
        if (Intersects(b, TileBox(tx, ty))) {
          assignment[ty * cols_ + tx].push_back(static_cast<ObjectId>(i));
        }
      }
    }
  }
  return assignment;
}

}  // namespace swiftspatial
