// Hierarchical partitioning for the accelerator's PBSM path (§3.4.2): the
// join units run nested-loop joins, whose cost grows with the product of the
// tile populations, so tiles whose workload exceeds a cap are recursively
// quartered. The cap follows the paper's geometric-mean rule: with a cap of
// 16, at most 16 x 16 = 256 comparisons are performed per emitted tile pair.
#ifndef SWIFTSPATIAL_GRID_HIERARCHICAL_PARTITION_H_
#define SWIFTSPATIAL_GRID_HIERARCHICAL_PARTITION_H_

#include <cstdint>
#include <vector>

#include "datagen/dataset.h"
#include "geometry/box.h"

namespace swiftspatial {

/// One join task: a tile plus the ids of both datasets' objects in it.
struct TileTask {
  Box tile;
  std::vector<ObjectId> r_objects;
  std::vector<ObjectId> s_objects;
};

struct HierarchicalPartitionOptions {
  /// Geometric-mean tile population cap (paper: 16 or 32). A tile is split
  /// while |R_tile| * |S_tile| > cap^2.
  int tile_cap = 16;
  /// Initial uniform grid resolution per axis.
  int initial_grid = 32;
  /// Recursion limit (guards degenerate data where all objects coincide).
  int max_depth = 12;
};

/// Result of hierarchical partitioning: only tiles where both inputs are
/// non-empty are emitted (others cannot produce results).
struct HierarchicalPartition {
  std::vector<TileTask> tasks;
  /// Tiles that hit max_depth while still over the cap (0 in healthy runs).
  std::size_t over_cap_tiles = 0;
  /// The cap the partition was built with (consumers size blocks by it).
  int tile_cap = 0;
};

HierarchicalPartition PartitionHierarchical(
    const Dataset& r, const Dataset& s,
    const HierarchicalPartitionOptions& options = {});

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_GRID_HIERARCHICAL_PARTITION_H_
