// Shared 1-D index-range snapping for partitioners with float-rounded cell
// boundaries. Grid columns/rows and PBSM stripes all estimate which cells an
// interval [bmin, bmax] overlaps with double arithmetic, but the cells
// themselves (which double as reference-point dedup tiles) carry
// Coord-rounded edges: when a boundary is not float-representable the
// rounded edge can sit to either side of the double value -- and far from
// the origin runs of MANY consecutive boundaries collapse onto one float,
// putting the owning cell arbitrarily far from the estimate. Objects must be
// assigned to every cell whose closed rounded-edge interval touches theirs,
// or the dedup rule claims pairs for cells that never saw them and results
// are silently dropped. This helper is the single implementation of that
// snap; UniformGrid::TileRange (per axis) and pbsm's AssignToStripes both
// call it so the boundary semantics cannot drift apart.
#ifndef SWIFTSPATIAL_GRID_EDGE_SNAP_H_
#define SWIFTSPATIAL_GRID_EDGE_SNAP_H_

#include "geometry/point.h"

namespace swiftspatial {

/// Snaps an estimated inclusive cell range [*p0, *p1] (pre-seeded with the
/// clamped double-arithmetic estimates, both in [0, n-1]) to the actual
/// rounded edges: on return, [*p0, *p1] covers exactly the cells k whose
/// closed interval [edge(k), edge(k+1)] intersects [bmin, bmax], assuming
/// edges are non-decreasing. `edge(k)` for k in 0..n is boundary k -- the
/// min edge of cell k and the max edge of cell k-1 -- exactly as the
/// partitioner's cell boxes report it. Each loop runs once for ULP-sized
/// disagreements and walks through runs of collapsed (equal) edges.
template <typename EdgeFn>
inline void SnapIndexRangeToEdges(Coord bmin, Coord bmax, int n,
                                  const EdgeFn& edge, int* p0, int* p1) {
  while (*p0 > 0 && edge(*p0) >= bmin) --*p0;
  while (*p0 < n - 1 && edge(*p0 + 1) < bmin) ++*p0;
  while (*p1 < n - 1 && edge(*p1 + 1) <= bmax) ++*p1;
  while (*p1 > 0 && edge(*p1) > bmax) --*p1;
}

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_GRID_EDGE_SNAP_H_
