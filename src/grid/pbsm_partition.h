// One-dimensional PBSM partitioning for the CPU baseline (§5.1): "we adopt
// the one-dimensional PBSM, which partitions the data in one dimension and
// sweeps the data in the other dimension" [69]. Objects are assigned to
// every stripe they overlap; the tile-wise join plane-sweeps along the
// non-partitioned axis and deduplicates with the reference-point rule.
#ifndef SWIFTSPATIAL_GRID_PBSM_PARTITION_H_
#define SWIFTSPATIAL_GRID_PBSM_PARTITION_H_

#include <cstdint>
#include <vector>

#include "datagen/dataset.h"
#include "geometry/box.h"

namespace swiftspatial {

/// Partition axis.
enum class Axis { kX, kY };

/// Output of 1-D PBSM partitioning: per-stripe object id lists for both
/// inputs plus stripe geometry.
struct StripePartition {
  std::vector<Box> stripes;
  std::vector<std::vector<ObjectId>> r_parts;
  std::vector<std::vector<ObjectId>> s_parts;
  Axis axis = Axis::kX;
};

/// Partitions datasets `r` and `s` into `num_partitions` equal-width stripes
/// along `axis` over the union of their extents.
StripePartition PartitionStripes(const Dataset& r, const Dataset& s,
                                 int num_partitions, Axis axis);

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_GRID_PBSM_PARTITION_H_
