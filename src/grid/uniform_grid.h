// Uniform grid partitioning (§2.3): objects are assigned to every tile their
// MBR intersects; tile-wise joins then use the reference-point rule to avoid
// duplicate results.
#ifndef SWIFTSPATIAL_GRID_UNIFORM_GRID_H_
#define SWIFTSPATIAL_GRID_UNIFORM_GRID_H_

#include <cstdint>
#include <vector>

#include "datagen/dataset.h"
#include "geometry/box.h"

namespace swiftspatial {

/// A cols x rows uniform grid over an extent.
class UniformGrid {
 public:
  UniformGrid(const Box& extent, int cols, int rows);

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  int num_tiles() const { return cols_ * rows_; }
  const Box& extent() const { return extent_; }

  /// Geometric bounds of tile (tx, ty).
  Box TileBox(int tx, int ty) const;
  Box TileBoxByIndex(int tile) const {
    return TileBox(tile % cols_, tile / cols_);
  }

  /// True iff the tile index lies in the last column / last row.
  bool IsLastCol(int tile) const { return tile % cols_ == cols_ - 1; }
  bool IsLastRow(int tile) const { return tile / cols_ == rows_ - 1; }

  /// Reference-point dedup tile for a tile index: TileBoxByIndex with the
  /// global boundary closed (CloseLastTile pushes the last column's /
  /// row's max edge to +inf). The one place the index-to-boundary-flag
  /// convention lives -- every grid-based partitioner must claim pairs
  /// through this tile, or reference points on the extent max are dropped.
  Box DedupTileByIndex(int tile) const {
    return CloseLastTile(TileBoxByIndex(tile), IsLastCol(tile),
                         IsLastRow(tile));
  }

  /// Inclusive ranges of tiles whose (closed) boxes a box overlaps. Exact
  /// with respect to the float-rounded tile edges TileBox reports: the
  /// double-arithmetic index estimate is snapped to the actual edges, so an
  /// object sitting exactly on a rounded edge lands in both adjacent tiles
  /// -- the reference-point dedup rule relies on this agreement.
  void TileRange(const Box& b, int* tx0, int* ty0, int* tx1, int* ty1) const;

  /// Per-tile object id lists: assignment[tile] holds every object whose MBR
  /// intersects the tile (multi-assignment).
  std::vector<std::vector<ObjectId>> Assign(const Dataset& dataset) const;

 private:
  /// x coordinate of vertical grid line k (0..cols): the max edge of column
  /// k-1 and the min edge of column k, exactly as TileBox reports it.
  Coord ColEdge(int k) const;
  /// y coordinate of horizontal grid line k (0..rows).
  Coord RowEdge(int k) const;

  Box extent_;
  int cols_;
  int rows_;
  double tile_w_;
  double tile_h_;
};

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_GRID_UNIFORM_GRID_H_
