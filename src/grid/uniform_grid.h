// Uniform grid partitioning (§2.3): objects are assigned to every tile their
// MBR intersects; tile-wise joins then use the reference-point rule to avoid
// duplicate results.
#ifndef SWIFTSPATIAL_GRID_UNIFORM_GRID_H_
#define SWIFTSPATIAL_GRID_UNIFORM_GRID_H_

#include <cstdint>
#include <vector>

#include "datagen/dataset.h"
#include "geometry/box.h"

namespace swiftspatial {

/// A cols x rows uniform grid over an extent.
class UniformGrid {
 public:
  UniformGrid(const Box& extent, int cols, int rows);

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  int num_tiles() const { return cols_ * rows_; }
  const Box& extent() const { return extent_; }

  /// Geometric bounds of tile (tx, ty).
  Box TileBox(int tx, int ty) const;
  Box TileBoxByIndex(int tile) const {
    return TileBox(tile % cols_, tile / cols_);
  }

  /// Inclusive ranges of tiles a box overlaps.
  void TileRange(const Box& b, int* tx0, int* ty0, int* tx1, int* ty1) const;

  /// Per-tile object id lists: assignment[tile] holds every object whose MBR
  /// intersects the tile (multi-assignment).
  std::vector<std::vector<ObjectId>> Assign(const Dataset& dataset) const;

 private:
  Box extent_;
  int cols_;
  int rows_;
  double tile_w_;
  double tile_h_;
};

}  // namespace swiftspatial

#endif  // SWIFTSPATIAL_GRID_UNIFORM_GRID_H_
