// Umbrella header: the SwiftSpatial public API in one include.
//
//   #include "swiftspatial/swiftspatial.h"
//
// Typical flow (see examples/quickstart.cpp):
//   Dataset           -- datagen/: generate, or load from CSV / binary
//   PackedRTree       -- rtree/: STR/Hilbert bulk load, or RTree::Pack()
//   join algorithms   -- join/: every algorithm behind the JoinEngine
//                        registry (RunJoin("pbsm", r, s, config), ...)
//   exec::RunJoinAsync-- exec/: streaming execution + the JoinService
//   dist::DistributedJoin -- dist/: the simulated multi-node cluster
//   hw::Accelerator   -- hw/: the simulated SwiftSpatial device
//   Refine            -- refine/: exact-geometry verification
#ifndef SWIFTSPATIAL_SWIFTSPATIAL_H_
#define SWIFTSPATIAL_SWIFTSPATIAL_H_

#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"

#include "geometry/box.h"
#include "geometry/box_block.h"
#include "geometry/hilbert.h"
#include "geometry/point.h"
#include "geometry/polygon.h"

#include "datagen/csv_io.h"
#include "datagen/dataset.h"
#include "datagen/generator.h"

#include "rtree/bulk_load.h"
#include "rtree/packed_rtree.h"
#include "rtree/rtree.h"
#include "rtree/stats.h"

#include "quadtree/point_quadtree.h"

#include "grid/hierarchical_partition.h"
#include "grid/pbsm_partition.h"
#include "grid/uniform_grid.h"

#include "join/accel_engine.h"
#include "join/cuspatial_like.h"
#include "join/engine.h"
#include "join/engine_baselines.h"
#include "join/nested_loop.h"
#include "join/parallel_sync_traversal.h"
#include "join/partitioned_driver.h"
#include "join/pbsm.h"
#include "join/plane_sweep.h"
#include "join/predicates.h"
#include "join/result.h"
#include "join/simd_filter.h"
#include "join/sync_traversal.h"

#include "exec/service.h"
#include "exec/streaming.h"
#include "exec/task_graph.h"

#include "dist/dist_engine.h"
#include "dist/dist_join.h"
#include "dist/exchange.h"
#include "dist/shard_planner.h"

#include "refine/refinement.h"

#include "hw/accelerator.h"
#include "hw/multi_device.h"
#include "hw/power_model.h"
#include "hw/resource_model.h"

#include "faas/service.h"

#endif  // SWIFTSPATIAL_SWIFTSPATIAL_H_
