#include "refine/refinement.h"

#include <gtest/gtest.h>

#include "geometry/polygon.h"
#include "join/nested_loop.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

TEST(Refine, PointPointPassThrough) {
  const Dataset r = testutil::UniformPoints(200, 140);
  const Dataset s = testutil::UniformPoints(200, 141);
  JoinResult candidates = BruteForceJoin(r, s);
  RefinementStats stats;
  JoinResult refined = Refine(r, GeometryKind::kPoint, s, GeometryKind::kPoint,
                              candidates.pairs(), {}, &stats);
  // Point-point MBR intersection is already exact: nothing is filtered.
  EXPECT_EQ(refined.size(), candidates.size());
  EXPECT_EQ(stats.false_positives, 0u);
}

TEST(Refine, PolygonPolygonRemovesFalsePositives) {
  const Dataset r = testutil::Uniform(400, 142, 500.0, /*max_edge=*/25.0);
  const Dataset s = testutil::Uniform(400, 143, 500.0, /*max_edge=*/25.0);
  JoinResult candidates = BruteForceJoin(r, s);
  RefinementStats stats;
  JoinResult refined =
      Refine(r, GeometryKind::kPolygon, s, GeometryKind::kPolygon,
             candidates.pairs(), {}, &stats);
  EXPECT_EQ(stats.candidates, candidates.size());
  EXPECT_EQ(stats.verified, refined.size());
  EXPECT_LE(refined.size(), candidates.size());
  // MBR-overlapping random polygons sometimes miss: expect a nonzero
  // false-positive rate at this density.
  EXPECT_GT(stats.false_positives, 0u);
  // But the polygons are inscribed in their MBRs, so a clear majority of
  // candidates survive.
  EXPECT_GT(refined.size(), candidates.size() / 2);
}

TEST(Refine, VerifiedPairsActuallyIntersect) {
  const Dataset r = testutil::Uniform(150, 144, 300.0, /*max_edge=*/30.0);
  const Dataset s = testutil::Uniform(150, 145, 300.0, /*max_edge=*/30.0);
  JoinResult candidates = BruteForceJoin(r, s);
  RefinementOptions opt;
  opt.polygon_vertices = 8;
  JoinResult refined = Refine(r, GeometryKind::kPolygon, s,
                              GeometryKind::kPolygon, candidates.pairs(), opt);
  for (const ResultPair& p : refined.pairs()) {
    const Polygon rp = MakeConvexPolygon(
        static_cast<uint64_t>(p.r), r.box(static_cast<std::size_t>(p.r)), 8);
    const Polygon sp = MakeConvexPolygon(
        static_cast<uint64_t>(p.s), s.box(static_cast<std::size_t>(p.s)), 8);
    EXPECT_TRUE(PolygonsIntersect(rp, sp));
  }
}

TEST(Refine, PointInPolygonDirectionality) {
  // A point at an MBR corner is outside the inscribed polygon.
  Dataset polys("p", {Box(0, 0, 10, 10)});
  Dataset corner("c", {Box(0.05f, 0.05f, 0.05f, 0.05f)});
  Dataset center("m", {Box(5, 5, 5, 5)});
  const std::vector<ResultPair> pair = {{0, 0}};

  JoinResult corner_hit = Refine(corner, GeometryKind::kPoint, polys,
                                 GeometryKind::kPolygon, pair, {});
  EXPECT_TRUE(corner_hit.empty());
  JoinResult center_hit = Refine(center, GeometryKind::kPoint, polys,
                                 GeometryKind::kPolygon, pair, {});
  EXPECT_EQ(center_hit.size(), 1u);

  // Swapped sides: polygon on the left, point on the right.
  JoinResult swapped = Refine(polys, GeometryKind::kPolygon, center,
                              GeometryKind::kPoint, pair, {});
  EXPECT_EQ(swapped.size(), 1u);
}

TEST(Refine, ParallelAgreesWithSerial) {
  const Dataset r = testutil::Skewed(500, 146);
  const Dataset s = testutil::Skewed(500, 147);
  JoinResult candidates = BruteForceJoin(r, s);
  RefinementOptions serial, parallel;
  serial.num_threads = 1;
  parallel.num_threads = 4;
  JoinResult a = Refine(r, GeometryKind::kPolygon, s, GeometryKind::kPolygon,
                        candidates.pairs(), serial);
  JoinResult b = Refine(r, GeometryKind::kPolygon, s, GeometryKind::kPolygon,
                        candidates.pairs(), parallel);
  EXPECT_TRUE(JoinResult::SameMultiset(a, b));
}

TEST(Refine, MoreVerticesTighterFit) {
  // Higher vertex counts approximate the MBR-inscribed ellipse better, so
  // the survivor count should not decrease much and never exceed.
  const Dataset r = testutil::Uniform(300, 148, 400.0, /*max_edge=*/20.0);
  const Dataset s = testutil::Uniform(300, 149, 400.0, /*max_edge=*/20.0);
  JoinResult candidates = BruteForceJoin(r, s);
  RefinementOptions coarse, fine;
  coarse.polygon_vertices = 4;   // diamonds: smallest inscribed area
  fine.polygon_vertices = 32;    // near-ellipse
  JoinResult few = Refine(r, GeometryKind::kPolygon, s, GeometryKind::kPolygon,
                          candidates.pairs(), coarse);
  JoinResult many = Refine(r, GeometryKind::kPolygon, s,
                           GeometryKind::kPolygon, candidates.pairs(), fine);
  EXPECT_GE(many.size(), few.size());
}

TEST(Refine, EmptyCandidates) {
  const Dataset r = testutil::Uniform(10, 150);
  RefinementStats stats;
  JoinResult out = Refine(r, GeometryKind::kPolygon, r, GeometryKind::kPolygon,
                          {}, {}, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.candidates, 0u);
}

}  // namespace
}  // namespace swiftspatial
