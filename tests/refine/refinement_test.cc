#include "refine/refinement.h"

#include <gtest/gtest.h>

#include "geometry/polygon.h"
#include "join/nested_loop.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

TEST(Refine, PointPointPassThrough) {
  const Dataset r = testutil::UniformPoints(200, 140);
  const Dataset s = testutil::UniformPoints(200, 141);
  JoinResult candidates = BruteForceJoin(r, s);
  RefinementStats stats;
  JoinResult refined = Refine(r, GeometryKind::kPoint, s, GeometryKind::kPoint,
                              candidates.pairs(), {}, &stats);
  // Point-point MBR intersection is already exact: nothing is filtered.
  EXPECT_EQ(refined.size(), candidates.size());
  EXPECT_EQ(stats.false_positives, 0u);
}

TEST(Refine, PolygonPolygonRemovesFalsePositives) {
  const Dataset r = testutil::Uniform(400, 142, 500.0, /*max_edge=*/25.0);
  const Dataset s = testutil::Uniform(400, 143, 500.0, /*max_edge=*/25.0);
  JoinResult candidates = BruteForceJoin(r, s);
  RefinementStats stats;
  JoinResult refined =
      Refine(r, GeometryKind::kPolygon, s, GeometryKind::kPolygon,
             candidates.pairs(), {}, &stats);
  EXPECT_EQ(stats.candidates, candidates.size());
  EXPECT_EQ(stats.verified, refined.size());
  EXPECT_LE(refined.size(), candidates.size());
  // MBR-overlapping random polygons sometimes miss: expect a nonzero
  // false-positive rate at this density.
  EXPECT_GT(stats.false_positives, 0u);
  // But the polygons are inscribed in their MBRs, so a clear majority of
  // candidates survive.
  EXPECT_GT(refined.size(), candidates.size() / 2);
}

TEST(Refine, VerifiedPairsActuallyIntersect) {
  const Dataset r = testutil::Uniform(150, 144, 300.0, /*max_edge=*/30.0);
  const Dataset s = testutil::Uniform(150, 145, 300.0, /*max_edge=*/30.0);
  JoinResult candidates = BruteForceJoin(r, s);
  RefinementOptions opt;
  opt.polygon_vertices = 8;
  JoinResult refined = Refine(r, GeometryKind::kPolygon, s,
                              GeometryKind::kPolygon, candidates.pairs(), opt);
  for (const ResultPair& p : refined.pairs()) {
    const Polygon rp = MakeConvexPolygon(
        static_cast<uint64_t>(p.r), r.box(static_cast<std::size_t>(p.r)), 8);
    const Polygon sp = MakeConvexPolygon(
        static_cast<uint64_t>(p.s), s.box(static_cast<std::size_t>(p.s)), 8);
    EXPECT_TRUE(PolygonsIntersect(rp, sp));
  }
}

TEST(Refine, PointInPolygonDirectionality) {
  // A point at an MBR corner is outside the inscribed polygon.
  Dataset polys("p", {Box(0, 0, 10, 10)});
  Dataset corner("c", {Box(0.05f, 0.05f, 0.05f, 0.05f)});
  Dataset center("m", {Box(5, 5, 5, 5)});
  const std::vector<ResultPair> pair = {{0, 0}};

  JoinResult corner_hit = Refine(corner, GeometryKind::kPoint, polys,
                                 GeometryKind::kPolygon, pair, {});
  EXPECT_TRUE(corner_hit.empty());
  JoinResult center_hit = Refine(center, GeometryKind::kPoint, polys,
                                 GeometryKind::kPolygon, pair, {});
  EXPECT_EQ(center_hit.size(), 1u);

  // Swapped sides: polygon on the left, point on the right.
  JoinResult swapped = Refine(polys, GeometryKind::kPolygon, center,
                              GeometryKind::kPoint, pair, {});
  EXPECT_EQ(swapped.size(), 1u);
}

TEST(Refine, ParallelAgreesWithSerial) {
  const Dataset r = testutil::Skewed(500, 146);
  const Dataset s = testutil::Skewed(500, 147);
  JoinResult candidates = BruteForceJoin(r, s);
  RefinementOptions serial, parallel;
  serial.num_threads = 1;
  parallel.num_threads = 4;
  JoinResult a = Refine(r, GeometryKind::kPolygon, s, GeometryKind::kPolygon,
                        candidates.pairs(), serial);
  JoinResult b = Refine(r, GeometryKind::kPolygon, s, GeometryKind::kPolygon,
                        candidates.pairs(), parallel);
  EXPECT_TRUE(JoinResult::SameMultiset(a, b));
}

TEST(Refine, MoreVerticesTighterFit) {
  // Higher vertex counts approximate the MBR-inscribed ellipse better, so
  // the survivor count should not decrease much and never exceed.
  const Dataset r = testutil::Uniform(300, 148, 400.0, /*max_edge=*/20.0);
  const Dataset s = testutil::Uniform(300, 149, 400.0, /*max_edge=*/20.0);
  JoinResult candidates = BruteForceJoin(r, s);
  RefinementOptions coarse, fine;
  coarse.polygon_vertices = 4;   // diamonds: smallest inscribed area
  fine.polygon_vertices = 32;    // near-ellipse
  JoinResult few = Refine(r, GeometryKind::kPolygon, s, GeometryKind::kPolygon,
                          candidates.pairs(), coarse);
  JoinResult many = Refine(r, GeometryKind::kPolygon, s,
                           GeometryKind::kPolygon, candidates.pairs(), fine);
  EXPECT_GE(many.size(), few.size());
}

// --- Degenerate-candidate semantics: pinned, not incidental. -------------
// Zero-area MBRs materialise as point-like polygons, and boundary contact
// counts as intersection (closed-boundary semantics, matching
// geometry::Intersects). Each expectation below is cross-checked against
// the geometry primitives directly, so Refine can never silently diverge
// from them on edge cases.

TEST(Refine, ZeroAreaMbrAsPolygonBehavesAsPoint) {
  // A zero-area "polygon" collapses to its MBR's single point. Coincident
  // zero-area objects on both sides must survive refinement; a zero-area
  // object strictly inside a fat polygon survives iff the point is in it.
  const Box zero(5, 5, 5, 5);
  Dataset degenerate("z", {zero});
  Dataset fat("f", {Box(0, 0, 10, 10)});
  const std::vector<ResultPair> pair = {{0, 0}};

  JoinResult coincident =
      Refine(degenerate, GeometryKind::kPolygon, degenerate,
             GeometryKind::kPolygon, pair, {});
  EXPECT_EQ(coincident.size(), 1u)
      << "coincident zero-area polygons must intersect";

  RefinementOptions opt;
  JoinResult vs_fat = Refine(degenerate, GeometryKind::kPolygon, fat,
                             GeometryKind::kPolygon, pair, opt);
  const Polygon zp = MakeConvexPolygon(0, zero, opt.polygon_vertices);
  const Polygon fp =
      MakeConvexPolygon(0, Box(0, 0, 10, 10), opt.polygon_vertices);
  EXPECT_EQ(vs_fat.size() == 1u, PolygonsIntersect(zp, fp))
      << "Refine must agree with PolygonsIntersect on degenerate geometry";
  // And that primitive answer is "inside": the MBR centre is interior.
  EXPECT_TRUE(PolygonsIntersect(zp, fp));
}

TEST(Refine, ZeroWidthMbrAsPolygonIsASegment) {
  // A zero-width MBR materialises as a vertical-segment polygon. Against a
  // polygon whose MBR contains the segment, Refine must answer exactly what
  // the exact primitive answers.
  const Box segment(5, 2, 5, 8);
  const Box fat(0, 0, 10, 10);
  Dataset seg_d("seg", {segment});
  Dataset fat_d("fat", {fat});
  const std::vector<ResultPair> pair = {{0, 0}};
  RefinementOptions opt;
  JoinResult refined = Refine(seg_d, GeometryKind::kPolygon, fat_d,
                              GeometryKind::kPolygon, pair, opt);
  const bool exact = PolygonsIntersect(
      MakeConvexPolygon(0, segment, opt.polygon_vertices),
      MakeConvexPolygon(0, fat, opt.polygon_vertices));
  EXPECT_EQ(refined.size() == 1u, exact);
}

TEST(Refine, PointTouchingPolygonBoundaryIsInside) {
  // Closed-boundary semantics: a point-kind object exactly on the
  // polygon-kind object's boundary (a vertex, and an edge midpoint) is
  // verified, not filtered.
  const Box mbr(0, 0, 10, 10);
  RefinementOptions opt;
  const Polygon poly = MakeConvexPolygon(0, mbr, opt.polygon_vertices);
  ASSERT_GE(poly.size(), 3u);
  const Point vertex = poly.vertices()[0];
  const Point next = poly.vertices()[1];
  const Point mid{static_cast<Coord>((vertex.x + next.x) / 2),
                  static_cast<Coord>((vertex.y + next.y) / 2)};

  Dataset polys("p", {mbr});
  const std::vector<ResultPair> pair = {{0, 0}};
  for (const Point& p : {vertex, mid}) {
    Dataset pt("pt", {Box::FromPoint(p)});
    JoinResult hit = Refine(pt, GeometryKind::kPoint, polys,
                            GeometryKind::kPolygon, pair, opt);
    // Refine must answer exactly what the primitive answers (the float
    // midpoint of a chord may round an epsilon off the edge, so only
    // consistency is required of it).
    EXPECT_EQ(hit.size() == 1u, PointInPolygon(p, poly));
  }
  // The vertex itself lies exactly on the ring: closed-boundary semantics
  // make it inside, and Refine above verified it accordingly.
  EXPECT_TRUE(PointInPolygon(vertex, poly));
}

TEST(Refine, PointKindCoincidingWithZeroAreaPolygonKind) {
  // Point-kind vs a zero-area polygon-kind object: only exact coincidence
  // survives.
  const Box zero(7, 7, 7, 7);
  Dataset polys("p", {zero});
  const std::vector<ResultPair> pair = {{0, 0}};
  Dataset same("s", {Box(7, 7, 7, 7)});
  Dataset off("o", {Box(7.5f, 7, 7.5f, 7)});
  EXPECT_EQ(Refine(same, GeometryKind::kPoint, polys, GeometryKind::kPolygon,
                   pair, {})
                .size(),
            1u);
  EXPECT_TRUE(Refine(off, GeometryKind::kPoint, polys,
                     GeometryKind::kPolygon, pair, {})
                  .empty());
}

TEST(Refine, RepeatedObjectsHitTheCacheWithIdenticalOutput) {
  // Many candidates sharing few objects: the per-object polygon cache must
  // produce output identical to direct per-pair materialisation (the
  // pre-cache semantics), including duplicate candidate pairs.
  const Dataset r = testutil::Uniform(40, 151, 120.0, /*max_edge=*/25.0);
  const Dataset s = testutil::Uniform(40, 152, 120.0, /*max_edge=*/25.0);
  JoinResult base = BruteForceJoin(r, s);
  std::vector<ResultPair> candidates = base.pairs();
  // Duplicate every candidate so objects repeat heavily.
  candidates.insert(candidates.end(), base.pairs().begin(),
                    base.pairs().end());

  RefinementOptions opt;
  opt.num_threads = 4;
  JoinResult refined = Refine(r, GeometryKind::kPolygon, s,
                              GeometryKind::kPolygon, candidates, opt);

  JoinResult direct;
  for (const ResultPair& p : candidates) {
    const Polygon rp =
        MakeConvexPolygon(static_cast<uint64_t>(p.r),
                          r.box(static_cast<std::size_t>(p.r)),
                          opt.polygon_vertices);
    const Polygon sp =
        MakeConvexPolygon(static_cast<uint64_t>(p.s),
                          s.box(static_cast<std::size_t>(p.s)),
                          opt.polygon_vertices);
    if (PolygonsIntersect(rp, sp)) direct.Add(p.r, p.s);
  }
  EXPECT_TRUE(JoinResult::SameMultiset(direct, refined));
  ASSERT_FALSE(refined.empty());
}

TEST(Refine, EmptyCandidates) {
  const Dataset r = testutil::Uniform(10, 150);
  RefinementStats stats;
  JoinResult out = Refine(r, GeometryKind::kPolygon, r, GeometryKind::kPolygon,
                          {}, {}, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.candidates, 0u);
}

}  // namespace
}  // namespace swiftspatial
