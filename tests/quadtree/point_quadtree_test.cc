#include "quadtree/point_quadtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "tests/test_util.h"

namespace swiftspatial {
namespace {

TEST(PointQuadtree, EmptyDataset) {
  const Dataset d("empty", {});
  const PointQuadtree t = PointQuadtree::Build(d);
  EXPECT_EQ(t.num_points(), 0u);
  EXPECT_TRUE(t.WindowQuery(Box(0, 0, 1, 1)).empty());
}

TEST(PointQuadtree, SmallDatasetStaysLeaf) {
  const Dataset d = testutil::UniformPoints(50, 1);
  QuadtreeOptions opt;
  opt.leaf_capacity = 128;
  const PointQuadtree t = PointQuadtree::Build(d, opt);
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_EQ(t.height(), 1);
  EXPECT_EQ(t.WindowQuery(d.Extent()).size(), 50u);
}

class QuadtreeQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(QuadtreeQueryTest, WindowQueryMatchesBruteForce) {
  const int leaf_capacity = GetParam();
  const Dataset d = testutil::UniformPoints(5000, 2);
  QuadtreeOptions opt;
  opt.leaf_capacity = leaf_capacity;
  const PointQuadtree t = PointQuadtree::Build(d, opt);
  EXPECT_EQ(t.num_points(), d.size());

  Rng rng(3);
  for (int q = 0; q < 40; ++q) {
    const Coord x = static_cast<Coord>(rng.Uniform(0, 900));
    const Coord y = static_cast<Coord>(rng.Uniform(0, 900));
    const Box w(x, y, x + 70, y + 70);
    auto got = t.WindowQuery(w);
    std::sort(got.begin(), got.end());
    std::vector<ObjectId> expected;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (Intersects(d.box(i), w)) expected.push_back(static_cast<ObjectId>(i));
    }
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(LeafCapacities, QuadtreeQueryTest,
                         ::testing::Values(4, 16, 128, 1024));

TEST(PointQuadtree, SkewedDataSplitsDeep) {
  const Dataset skew = testutil::Skewed(5000, 4);
  // Use the point version of the same centers.
  std::vector<Box> pts;
  for (const Box& b : skew.boxes()) {
    const Point c = b.Center();
    pts.push_back(Box::FromPoint(c));
  }
  const Dataset d("pts", std::move(pts));
  QuadtreeOptions opt;
  opt.leaf_capacity = 16;
  const PointQuadtree t = PointQuadtree::Build(d, opt);
  EXPECT_GT(t.height(), 4);
  EXPECT_EQ(t.WindowQuery(d.Extent()).size(), d.size());
}

TEST(PointQuadtree, CoincidentPointsRespectMaxDepth) {
  // 1000 identical points can never split below the leaf capacity; the
  // max_depth guard must terminate the build.
  std::vector<Box> pts(1000, Box(5, 5, 5, 5));
  const Dataset d("same", std::move(pts));
  QuadtreeOptions opt;
  opt.leaf_capacity = 4;
  opt.max_depth = 6;
  const PointQuadtree t = PointQuadtree::Build(d, opt);
  EXPECT_LE(t.height(), 6);
  EXPECT_EQ(t.WindowQuery(Box(4, 4, 6, 6)).size(), 1000u);
}

TEST(PointQuadtree, BoundaryPointsFoundByTouchingWindows) {
  std::vector<Box> pts = {Box(10, 10, 10, 10)};
  const Dataset d("one", std::move(pts));
  const PointQuadtree t = PointQuadtree::Build(d);
  EXPECT_EQ(t.WindowQuery(Box(0, 0, 10, 10)).size(), 1u);
  EXPECT_EQ(t.WindowQuery(Box(10, 10, 20, 20)).size(), 1u);
  EXPECT_TRUE(t.WindowQuery(Box(10.5, 10.5, 20, 20)).empty());
}

TEST(PointQuadtree, ForEachDeliversCoordinates) {
  const Dataset d = testutil::UniformPoints(200, 5);
  const PointQuadtree t = PointQuadtree::Build(d);
  t.ForEachInWindow(d.Extent(), [&d](ObjectId id, const Point& p) {
    EXPECT_EQ(p.x, d.box(static_cast<std::size_t>(id)).min_x);
    EXPECT_EQ(p.y, d.box(static_cast<std::size_t>(id)).min_y);
  });
}

}  // namespace
}  // namespace swiftspatial
