// Unit tests for the memory-path function units: read unit, task queue
// manager (writer + reader), and result write unit, driven directly through
// their FIFOs (the same harness style as join_unit_test).
#include <gtest/gtest.h>

#include <cstring>

#include "hw/config.h"
#include "hw/memory_layout.h"
#include "hw/messages.h"
#include "hw/read_unit.h"
#include "hw/sim/fifo.h"
#include "hw/task_queue_manager.h"
#include "hw/write_unit.h"
#include "rtree/packed_rtree.h"

namespace swiftspatial::hw {
namespace {

// Serialises one leaf node image.
std::vector<uint8_t> OneNode(int count, bool leaf, int max_entries) {
  std::vector<uint8_t> bytes(PackedRTree::StrideFor(max_entries), 0);
  const uint16_t c = static_cast<uint16_t>(count);
  std::memcpy(bytes.data(), &c, sizeof(c));
  bytes[2] = leaf ? 1 : 0;
  for (int i = 0; i < count; ++i) {
    const PackedEntry e{Box(static_cast<Coord>(i), 0,
                            static_cast<Coord>(i + 1), 1),
                        100 + i};
    std::memcpy(bytes.data() + 8 + i * sizeof(PackedEntry), &e, sizeof(e));
  }
  return bytes;
}

TEST(ReadUnitTest, FetchesParsesAndRoutes) {
  AcceleratorConfig config;
  config.num_join_units = 2;
  sim::Simulator simulator;
  sim::Dram dram(&simulator, config.dram);
  MemoryLayout mem;
  const uint64_t base = mem.AddRegion("nodes", OneNode(5, true, 8));
  const uint32_t stride = static_cast<uint32_t>(PackedRTree::StrideFor(8));

  sim::Fifo<ReadCommand> commands(&simulator, 4);
  sim::Fifo<NodePairData> unit0(&simulator, 4), unit1(&simulator, 4);
  ReadUnit read_unit(&simulator, &dram, &mem, &config, &commands,
                     {&unit0, &unit1});

  auto driver = [](sim::Fifo<ReadCommand>* cmds, uint64_t addr,
                   uint32_t bytes) -> sim::Process {
    ReadCommand cmd;
    cmd.unit = 1;  // route to the second unit
    cmd.r_index = 0;
    cmd.s_index = 0;
    cmd.r_addr = addr;
    cmd.s_addr = addr;
    cmd.r_bytes = bytes;
    cmd.s_bytes = bytes;
    co_await cmds->Push(std::move(cmd));
    ReadCommand fin;
    fin.kind = ReadCommand::Kind::kFinish;
    co_await cmds->Push(std::move(fin));
  };
  simulator.Spawn(read_unit.Run());
  simulator.Spawn(driver(&commands, base, stride));
  simulator.Run();

  // Unit 1 received the parsed pair plus the finish broadcast; unit 0 only
  // the finish.
  ASSERT_EQ(unit1.size(), 2u);
  NodePairData d;
  ASSERT_TRUE(unit1.TryPop(&d));
  EXPECT_FALSE(d.finish);
  EXPECT_TRUE(d.r_leaf);
  ASSERT_EQ(d.r_entries.size(), 5u);
  EXPECT_EQ(d.r_entries[3].id, 103);
  EXPECT_GT(d.ready_at, 0u);  // DRAM latency charged
  ASSERT_TRUE(unit1.TryPop(&d));
  EXPECT_TRUE(d.finish);
  ASSERT_EQ(unit0.size(), 1u);
  ASSERT_TRUE(unit0.TryPop(&d));
  EXPECT_TRUE(d.finish);
  EXPECT_EQ(read_unit.nodes_fetched(), 2u);
}

struct TqmHarness {
  AcceleratorConfig config;
  sim::Simulator simulator;
  sim::Dram dram{&simulator, config.dram};
  MemoryLayout mem;
  sim::Fifo<TaskStreamItem> stream{&simulator, 16};
  sim::Fifo<SyncResponse> sync{&simulator, 1};
  sim::Fifo<TaskFetchRequest> fetch_req{&simulator, 1};
  sim::Fifo<TaskFetchResponse> fetch_resp{&simulator, 1};
  TaskQueueManager tqm{&simulator, &dram,      &mem,       &config,
                       &stream,    &sync,      &fetch_req, &fetch_resp};
};

TEST(TaskQueueManagerTest, WriterPersistsBurstsAndCounts) {
  TqmHarness h;
  const uint64_t region = h.mem.AddRegion("tasks");

  auto driver = [](TqmHarness* t, uint64_t base,
                   SyncResponse* out) -> sim::Process {
    TaskStreamItem start;
    start.kind = TaskStreamItem::Kind::kLevelStart;
    start.write_base = base;
    co_await t->stream.Push(std::move(start));

    TaskStreamItem burst;
    burst.kind = TaskStreamItem::Kind::kBurst;
    burst.tasks = {{1, 2}, {3, 4}, {5, 6}};
    co_await t->stream.Push(std::move(burst));
    TaskStreamItem burst2;
    burst2.kind = TaskStreamItem::Kind::kBurst;
    burst2.tasks = {{7, 8}};
    co_await t->stream.Push(std::move(burst2));

    TaskStreamItem sync;
    sync.kind = TaskStreamItem::Kind::kSync;
    co_await t->stream.Push(std::move(sync));
    *out = co_await t->sync.Pop();

    TaskStreamItem fin;
    fin.kind = TaskStreamItem::Kind::kFinish;
    co_await t->stream.Push(std::move(fin));
  };
  SyncResponse resp;
  h.simulator.Spawn(h.tqm.RunWriter());
  h.simulator.Spawn(driver(&h, region, &resp));
  h.simulator.Run();

  EXPECT_EQ(resp.pairs_written, 4u);
  EXPECT_EQ(h.tqm.bursts_written(), 2u);
  // The bytes really landed, in order.
  NodePairTask t3;
  h.mem.Read(region + 3 * sizeof(NodePairTask), &t3, sizeof(t3));
  EXPECT_EQ(t3.r, 7);
  EXPECT_EQ(t3.s, 8);
  EXPECT_GT(h.dram.stats().bytes_written, 0u);
}

TEST(TaskQueueManagerTest, LevelStartResetsCursorAndCount) {
  TqmHarness h;
  const uint64_t region_a = h.mem.AddRegion("a");
  const uint64_t region_b = h.mem.AddRegion("b");

  auto driver = [](TqmHarness* t, uint64_t a, uint64_t b,
                   SyncResponse* first, SyncResponse* second) -> sim::Process {
    for (const auto& [base, tasks, out] :
         {std::tuple{a, 2, first}, std::tuple{b, 1, second}}) {
      TaskStreamItem start;
      start.kind = TaskStreamItem::Kind::kLevelStart;
      start.write_base = base;
      co_await t->stream.Push(std::move(start));
      TaskStreamItem burst;
      burst.kind = TaskStreamItem::Kind::kBurst;
      for (int i = 0; i < tasks; ++i) burst.tasks.push_back({i, i});
      co_await t->stream.Push(std::move(burst));
      TaskStreamItem sync;
      sync.kind = TaskStreamItem::Kind::kSync;
      co_await t->stream.Push(std::move(sync));
      *out = co_await t->sync.Pop();
    }
    TaskStreamItem fin;
    fin.kind = TaskStreamItem::Kind::kFinish;
    co_await t->stream.Push(std::move(fin));
  };
  SyncResponse first, second;
  h.simulator.Spawn(h.tqm.RunWriter());
  h.simulator.Spawn(driver(&h, region_a, region_b, &first, &second));
  h.simulator.Run();

  EXPECT_EQ(first.pairs_written, 2u);
  EXPECT_EQ(second.pairs_written, 1u);  // reset by the second level start
  EXPECT_EQ(h.mem.RegionSize(region_a), 2 * sizeof(NodePairTask));
  EXPECT_EQ(h.mem.RegionSize(region_b), 1 * sizeof(NodePairTask));
}

TEST(TaskQueueManagerTest, ReaderReturnsBytesWithTiming) {
  TqmHarness h;
  std::vector<uint8_t> payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i);
  }
  const uint64_t region = h.mem.AddRegion("queue", payload);

  auto driver = [](TqmHarness* t, uint64_t addr,
                   TaskFetchResponse* out) -> sim::Process {
    TaskFetchRequest req;
    req.addr = addr + 8;
    req.bytes = 16;
    co_await t->fetch_req.Push(std::move(req));
    *out = co_await t->fetch_resp.Pop();
    TaskFetchRequest fin;
    fin.kind = TaskFetchRequest::Kind::kFinish;
    co_await t->fetch_req.Push(std::move(fin));
  };
  TaskFetchResponse resp;
  h.simulator.Spawn(h.tqm.RunReader());
  h.simulator.Spawn(driver(&h, region, &resp));
  h.simulator.Run();

  ASSERT_EQ(resp.bytes.size(), 16u);
  EXPECT_EQ(resp.bytes[0], 8);
  EXPECT_EQ(resp.bytes[15], 23);
  EXPECT_GT(resp.ready_at, 0u);
}

TEST(WriteUnitTest, SelfIncrementingCursorAndSync) {
  AcceleratorConfig config;
  sim::Simulator simulator;
  sim::Dram dram(&simulator, config.dram);
  MemoryLayout mem;
  const uint64_t results = mem.AddRegion("results");
  sim::Fifo<ResultStreamItem> stream(&simulator, 8);
  sim::Fifo<SyncResponse> sync(&simulator, 1);
  WriteUnit unit(&simulator, &dram, &mem, &config, results, &stream, &sync);

  auto driver = [](sim::Fifo<ResultStreamItem>* s,
                   sim::Fifo<SyncResponse>* y,
                   SyncResponse* out) -> sim::Process {
    for (int b = 0; b < 3; ++b) {
      ResultStreamItem burst;
      burst.kind = ResultStreamItem::Kind::kBurst;
      for (int i = 0; i < 4; ++i) burst.pairs.push_back({b, i});
      co_await s->Push(std::move(burst));
    }
    ResultStreamItem rsync;
    rsync.kind = ResultStreamItem::Kind::kSync;
    co_await s->Push(std::move(rsync));
    *out = co_await y->Pop();
    ResultStreamItem fin;
    fin.kind = ResultStreamItem::Kind::kFinish;
    co_await s->Push(std::move(fin));
  };
  SyncResponse resp;
  simulator.Spawn(unit.Run());
  simulator.Spawn(driver(&stream, &sync, &resp));
  simulator.Run();

  EXPECT_EQ(resp.pairs_written, 12u);
  EXPECT_EQ(unit.bursts_written(), 3u);
  EXPECT_EQ(mem.RegionSize(results), 12 * sizeof(ResultPair));
  // Bursts landed back to back: pair 5 is {1, 1}.
  ResultPair p;
  mem.Read(results + 5 * sizeof(ResultPair), &p, sizeof(p));
  EXPECT_EQ(p.r, 1);
  EXPECT_EQ(p.s, 1);
}

}  // namespace
}  // namespace swiftspatial::hw
