#include "hw/sim/dram.h"

#include <gtest/gtest.h>

namespace swiftspatial::hw::sim {
namespace {

DramConfig OneChannel() {
  DramConfig cfg;
  cfg.num_channels = 1;
  cfg.bytes_per_cycle_per_channel = 64.0;
  cfg.request_overhead_cycles = 10;
  cfg.extra_latency_cycles = 5;
  cfg.interleave_bytes = 4096;
  return cfg;
}

TEST(Dram, SingleRequestTiming) {
  Simulator sim;
  Dram dram(&sim, OneChannel());
  // 128 bytes at 64 B/cycle = 2 transfer cycles + 10 overhead + 5 latency.
  const Cycle done = dram.Issue(0, 128, false);
  EXPECT_EQ(done, 17u);
  EXPECT_EQ(dram.stats().num_reads, 1u);
  EXPECT_EQ(dram.stats().bytes_read, 128u);
}

TEST(Dram, BackToBackRequestsQueueOnChannel) {
  Simulator sim;
  Dram dram(&sim, OneChannel());
  const Cycle first = dram.Issue(0, 64, false);    // busy [0, 11), done 16
  const Cycle second = dram.Issue(100, 64, false); // busy [11, 22), done 27
  EXPECT_EQ(first, 16u);
  EXPECT_EQ(second, 27u);
}

TEST(Dram, ChannelsServeInParallel) {
  DramConfig cfg = OneChannel();
  cfg.num_channels = 4;
  Simulator sim;
  Dram dram(&sim, cfg);
  // Addresses in different interleave lines land on different channels.
  const Cycle a = dram.Issue(0 * 4096, 64, false);
  const Cycle b = dram.Issue(1 * 4096, 64, false);
  const Cycle c = dram.Issue(2 * 4096, 64, false);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(Dram, LargeRequestSplitsAcrossChannels) {
  DramConfig cfg = OneChannel();
  cfg.num_channels = 4;
  Simulator sim;
  Dram dram(&sim, cfg);
  // 16 KB spanning 4 interleave lines: each channel transfers 4 KB (64
  // cycles + 10 overhead), all in parallel -> done ~= 74 + 5.
  const Cycle done = dram.Issue(0, 16384, false);
  EXPECT_EQ(done, 79u);
  // Bursting beats 4 separate sequential same-channel requests by far.
  Simulator sim2;
  Dram dram2(&sim2, OneChannel());
  Cycle serial_done = 0;
  for (int i = 0; i < 4; ++i) serial_done = dram2.Issue(0, 4096, false);
  EXPECT_GT(serial_done, done);
}

TEST(Dram, SmallRequestsAreOverheadBound) {
  // The mechanism behind the paper's small-node memory boundedness: an
  // 8-byte write costs almost the same channel time as a 512-byte burst.
  Simulator sim;
  Dram dram(&sim, OneChannel());
  const Cycle tiny = dram.Issue(0, 8, true);
  Simulator sim2;
  Dram dram2(&sim2, OneChannel());
  const Cycle burst = dram2.Issue(0, 512, true);
  EXPECT_GE(static_cast<double>(burst) / tiny, 1.0);
  EXPECT_LE(static_cast<double>(burst) / tiny, 2.0);
}

TEST(Dram, SequentialContinuationIsRowHit) {
  Simulator sim;
  Dram dram(&sim, OneChannel());
  // First request: random (10 overhead + 1 transfer). Second continues at
  // the exact next address: open-row hit (sequential overhead 4 + 1).
  const Cycle first = dram.Issue(0, 64, false);
  const Cycle second = dram.Issue(64, 64, false);
  EXPECT_EQ(first, 16u);                 // 11 busy + 5 latency
  EXPECT_EQ(second, 11u + 5u + 5u);      // starts at 11, +5 busy, +5 latency
  EXPECT_EQ(dram.stats().row_hits, 1u);
  EXPECT_EQ(dram.stats().row_misses, 1u);
  // A jump breaks the streak.
  dram.Issue(4096ull * 50, 64, false);
  EXPECT_EQ(dram.stats().row_misses, 2u);
}

TEST(Dram, InterleavedStreamsOnOneChannelMiss) {
  // Two interleaved 8-byte streams at distant addresses never hit: the
  // mechanism that makes unbursted result writes expensive.
  Simulator sim;
  Dram dram(&sim, OneChannel());
  for (int i = 0; i < 4; ++i) {
    dram.Issue(static_cast<uint64_t>(i) * 16, 8, true);
    dram.Issue(2048 + static_cast<uint64_t>(i) * 16, 8, true);
  }
  EXPECT_EQ(dram.stats().row_hits, 0u);
}

TEST(Dram, RequestsAtLaterSimTimeStartLater) {
  Simulator sim;
  Dram dram(&sim, OneChannel());
  Cycle done_early = dram.Issue(0, 64, false);
  Cycle done_late = 0;
  sim.Schedule(1000, [&] { done_late = dram.Issue(0, 64, false); });
  sim.Run();
  EXPECT_EQ(done_early, 16u);
  EXPECT_EQ(done_late, 1016u);
}

TEST(Dram, StatsAccumulate) {
  Simulator sim;
  Dram dram(&sim, OneChannel());
  dram.Issue(0, 100, false);
  dram.Issue(0, 200, true);
  dram.Issue(0, 300, true);
  EXPECT_EQ(dram.stats().num_reads, 1u);
  EXPECT_EQ(dram.stats().num_writes, 2u);
  EXPECT_EQ(dram.stats().bytes_read, 100u);
  EXPECT_EQ(dram.stats().bytes_written, 500u);
  EXPECT_GT(dram.stats().busy_cycles, 0u);
}

TEST(Dram, UtilizationBounded) {
  Simulator sim;
  Dram dram(&sim, OneChannel());
  for (int i = 0; i < 10; ++i) dram.Issue(0, 4096, false);
  sim.Schedule(2000, [] {});
  sim.Run();
  const double u = dram.Utilization();
  EXPECT_GT(u, 0.0);
  EXPECT_LE(u, 1.0);
}

}  // namespace
}  // namespace swiftspatial::hw::sim
