#include "hw/sim/fifo.h"

#include <gtest/gtest.h>

#include <vector>

namespace swiftspatial::hw::sim {
namespace {

TEST(Fifo, ProducerConsumerPreservesOrder) {
  Simulator sim;
  Fifo<int> fifo(&sim, 4);
  std::vector<int> received;

  auto producer = [](Simulator* s, Fifo<int>* f) -> Process {
    for (int i = 0; i < 20; ++i) {
      co_await f->Push(i);
      co_await s->Delay(1);
    }
  };
  auto consumer = [](Fifo<int>* f, std::vector<int>* out) -> Process {
    for (int i = 0; i < 20; ++i) {
      out->push_back(co_await f->Pop());
    }
  };
  sim.Spawn(producer(&sim, &fifo));
  sim.Spawn(consumer(&fifo, &received));
  sim.Run();
  ASSERT_EQ(received.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(received[i], i);
}

TEST(Fifo, BackPressureBlocksProducer) {
  Simulator sim;
  Fifo<int> fifo(&sim, 2);
  std::vector<Cycle> push_times;

  // Producer pushes 4 items instantly; consumer pops one every 10 cycles.
  auto producer = [](Simulator* s, Fifo<int>* f,
                     std::vector<Cycle>* times) -> Process {
    for (int i = 0; i < 4; ++i) {
      co_await f->Push(i);
      times->push_back(s->now());
    }
  };
  auto consumer = [](Simulator* s, Fifo<int>* f) -> Process {
    for (int i = 0; i < 4; ++i) {
      co_await s->Delay(10);
      (void)co_await f->Pop();
    }
  };
  sim.Spawn(producer(&sim, &fifo, &push_times));
  sim.Spawn(consumer(&sim, &fifo));
  sim.Run();
  ASSERT_EQ(push_times.size(), 4u);
  // First two fit immediately; the rest wait for pops at t=10, 20.
  EXPECT_EQ(push_times[0], 0u);
  EXPECT_EQ(push_times[1], 0u);
  EXPECT_EQ(push_times[2], 10u);
  EXPECT_EQ(push_times[3], 20u);
}

TEST(Fifo, PopBlocksUntilPush) {
  Simulator sim;
  Fifo<int> fifo(&sim, 1);
  Cycle got_at = 0;
  int got = 0;

  auto consumer = [](Simulator* s, Fifo<int>* f, Cycle* when,
                     int* value) -> Process {
    *value = co_await f->Pop();
    *when = s->now();
  };
  auto producer = [](Simulator* s, Fifo<int>* f) -> Process {
    co_await s->Delay(42);
    co_await f->Push(7);
  };
  sim.Spawn(consumer(&sim, &fifo, &got_at, &got));
  sim.Spawn(producer(&sim, &fifo));
  sim.Run();
  EXPECT_EQ(got, 7);
  EXPECT_EQ(got_at, 42u);
}

TEST(Fifo, TryPopNonSuspending) {
  Simulator sim;
  Fifo<int> fifo(&sim, 4);
  int out = -1;
  EXPECT_FALSE(fifo.TryPop(&out));

  auto producer = [](Fifo<int>* f) -> Process {
    co_await f->Push(5);
    co_await f->Push(6);
  };
  sim.Spawn(producer(&fifo));
  sim.Run();
  EXPECT_TRUE(fifo.TryPop(&out));
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(fifo.TryPop(&out));
  EXPECT_EQ(out, 6);
  EXPECT_FALSE(fifo.TryPop(&out));
}

TEST(Fifo, TryPopWakesBlockedPusher) {
  Simulator sim;
  Fifo<int> fifo(&sim, 1);
  std::vector<Cycle> push_times;
  auto producer = [](Simulator* s, Fifo<int>* f,
                     std::vector<Cycle>* times) -> Process {
    co_await f->Push(1);
    times->push_back(s->now());
    co_await f->Push(2);  // blocks: capacity 1
    times->push_back(s->now());
  };
  auto drainer = [](Simulator* s, Fifo<int>* f) -> Process {
    co_await s->Delay(10);
    int v;
    EXPECT_TRUE(f->TryPop(&v));
    EXPECT_EQ(v, 1);
  };
  sim.Spawn(producer(&sim, &fifo, &push_times));
  sim.Spawn(drainer(&sim, &fifo));
  sim.Run();
  ASSERT_EQ(push_times.size(), 2u);
  EXPECT_EQ(push_times[1], 10u);
  EXPECT_EQ(fifo.size(), 1u);  // the second item now buffered
}

TEST(Fifo, MultipleProducersSingleConsumer) {
  Simulator sim;
  Fifo<int> fifo(&sim, 2);
  std::vector<int> received;
  auto producer = [](Simulator* s, Fifo<int>* f, int base) -> Process {
    for (int i = 0; i < 5; ++i) {
      co_await s->Delay(3);
      co_await f->Push(base + i);
    }
  };
  auto consumer = [](Fifo<int>* f, std::vector<int>* out) -> Process {
    for (int i = 0; i < 10; ++i) out->push_back(co_await f->Pop());
  };
  sim.Spawn(producer(&sim, &fifo, 100));
  sim.Spawn(producer(&sim, &fifo, 200));
  sim.Spawn(consumer(&fifo, &received));
  sim.Run();
  EXPECT_EQ(received.size(), 10u);
  // Per-producer ordering is preserved even if interleaved.
  std::vector<int> from_a, from_b;
  for (int v : received) {
    (v < 200 ? from_a : from_b).push_back(v);
  }
  EXPECT_EQ(from_a, (std::vector<int>{100, 101, 102, 103, 104}));
  EXPECT_EQ(from_b, (std::vector<int>{200, 201, 202, 203, 204}));
}

TEST(Fifo, MaxOccupancyTracked) {
  Simulator sim;
  Fifo<int> fifo(&sim, 8);
  auto producer = [](Fifo<int>* f) -> Process {
    for (int i = 0; i < 5; ++i) co_await f->Push(i);
  };
  sim.Spawn(producer(&fifo));
  sim.Run();
  EXPECT_EQ(fifo.max_occupancy(), 5u);
}

TEST(Fifo, UnboundedNeverBlocks) {
  Simulator sim;
  Fifo<int> fifo(&sim, Fifo<int>::kUnbounded);
  auto producer = [](Simulator* s, Fifo<int>* f) -> Process {
    for (int i = 0; i < 10000; ++i) co_await f->Push(i);
    EXPECT_EQ(s->now(), 0u);  // no suspension ever advanced time
  };
  sim.Spawn(producer(&sim, &fifo));
  sim.Run();
  EXPECT_EQ(fifo.size(), 10000u);
}

}  // namespace
}  // namespace swiftspatial::hw::sim
