#include "hw/multi_device.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "join/nested_loop.h"
#include "tests/test_util.h"

namespace swiftspatial::hw {
namespace {

MultiDeviceConfig SmallDeviceConfig(uint64_t memory_bytes,
                                    OutOfMemoryStrategy strategy) {
  MultiDeviceConfig cfg;
  cfg.device.num_join_units = 4;
  cfg.device_memory_bytes = memory_bytes;
  cfg.strategy = strategy;
  return cfg;
}

TEST(PartitionedJoin, FitsWithoutPartitioningWhenMemoryLarge) {
  const Dataset r = testutil::Uniform(800, 300);
  const Dataset s = testutil::Uniform(800, 301);
  JoinResult got;
  auto report = PartitionedJoin(
      r, s, SmallDeviceConfig(1ULL << 30, OutOfMemoryStrategy::kMultipleDevices),
      &got);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->grid_resolution, 1);
  EXPECT_EQ(report->partitions, 1u);

  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

class PartitionedJoinStrategyTest
    : public ::testing::TestWithParam<OutOfMemoryStrategy> {};

TEST_P(PartitionedJoinStrategyTest, ConstrainedMemoryStillExact) {
  const Dataset r = testutil::Uniform(2000, 302, 1000.0, /*max_edge=*/15.0);
  const Dataset s = testutil::Uniform(2000, 303, 1000.0, /*max_edge=*/15.0);
  // ~256 KB forces several grid refinements.
  JoinResult got;
  auto report =
      PartitionedJoin(r, s, SmallDeviceConfig(256 << 10, GetParam()), &got);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->grid_resolution, 1);
  EXPECT_GT(report->partitions, 1u);
  EXPECT_LE(report->max_partition_bytes, 256u << 10);

  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
  EXPECT_EQ(report->num_results, expected.size());
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PartitionedJoinStrategyTest,
    ::testing::Values(OutOfMemoryStrategy::kMultipleDevices,
                      OutOfMemoryStrategy::kSingleDeviceIterative));

TEST(PartitionedJoin, ObjectsSpanningPartitionBoundaries) {
  // Objects a good fraction of a partition tile wide: many straddle tile
  // boundaries, get multi-assigned, and stress the cross-partition dedup.
  const Dataset r = testutil::Uniform(1500, 304, 1000.0, /*max_edge=*/40.0);
  const Dataset s = testutil::Uniform(1500, 305, 1000.0, /*max_edge=*/40.0);
  MultiDeviceConfig cfg =
      SmallDeviceConfig(128 << 10, OutOfMemoryStrategy::kMultipleDevices);
  cfg.max_grid = 16;
  JoinResult got;
  auto report = PartitionedJoin(r, s, cfg, &got);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_GT(report->partitions, 1u);
  JoinResult expected = BruteForceJoin(r, s);
  EXPECT_TRUE(JoinResult::SameMultiset(expected, got));
}

TEST(PartitionedJoin, IterativeSumsTimeMultiDeviceTakesMax) {
  const Dataset r = testutil::Skewed(1500, 306);
  const Dataset s = testutil::Skewed(1500, 307);
  auto multi = PartitionedJoin(
      r, s,
      SmallDeviceConfig(128 << 10, OutOfMemoryStrategy::kMultipleDevices));
  auto iter = PartitionedJoin(
      r, s,
      SmallDeviceConfig(128 << 10,
                        OutOfMemoryStrategy::kSingleDeviceIterative));
  ASSERT_TRUE(multi.ok());
  ASSERT_TRUE(iter.ok());
  ASSERT_GT(multi->partitions, 1u);
  EXPECT_EQ(multi->partitions, iter->partitions);
  EXPECT_EQ(multi->num_results, iter->num_results);
  EXPECT_EQ(multi->devices, multi->partitions);
  EXPECT_EQ(iter->devices, 1u);
  // Concurrent sub-joins finish no later than sequential ones.
  EXPECT_LT(multi->total_seconds, iter->total_seconds);
  double sum = 0;
  for (const auto& sub : iter->sub_reports) sum += sub.total_seconds;
  EXPECT_DOUBLE_EQ(iter->total_seconds, sum);
}

TEST(PartitionedJoin, ImpossibleCapacityFails) {
  const Dataset r = testutil::Uniform(5000, 308);
  const Dataset s = testutil::Uniform(5000, 309);
  MultiDeviceConfig cfg =
      SmallDeviceConfig(1 << 10, OutOfMemoryStrategy::kMultipleDevices);
  cfg.max_grid = 4;  // far too coarse for a 1 KB device
  auto report = PartitionedJoin(r, s, cfg);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

// partition_sink identifies every partition by its outer grid tile index --
// a pure function of the grid geometry, not the enumeration order of
// populated partitions -- so a shard re-executed later (the dist/
// fault-recovery path) reports the same id and its output can be matched to
// the original deterministically. Two identical runs must deliver an
// identical shard-id -> result-multiset map, with ids inside the grid.
TEST(PartitionedJoin, PartitionSinkShardIdsAreStableAcrossRuns) {
  const Dataset r = testutil::Uniform(300, 411);
  const Dataset s = testutil::Uniform(300, 412);

  using ShardMap = std::map<int, std::vector<ResultPair>>;
  const auto run = [&](ShardMap* by_shard, int* grid_res) {
    MultiDeviceConfig cfg;
    cfg.device.num_join_units = 2;
    cfg.min_grid = 4;  // force a 4x4 outer grid: several populated shards
    cfg.max_grid = 4;
    cfg.partition_sink = [by_shard](int shard,
                                    std::vector<ResultPair> pairs) {
      auto& dst = (*by_shard)[shard];
      dst.insert(dst.end(), pairs.begin(), pairs.end());
    };
    auto report = PartitionedJoin(r, s, cfg);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    *grid_res = report->grid_resolution;
  };

  ShardMap first, second;
  int grid_first = 0, grid_second = 0;
  run(&first, &grid_first);
  run(&second, &grid_second);

  EXPECT_EQ(grid_first, grid_second);
  EXPECT_GT(first.size(), 1u);  // genuinely multi-shard
  ASSERT_EQ(first.size(), second.size());
  for (auto& [shard, pairs] : first) {
    ASSERT_TRUE(second.count(shard)) << "shard " << shard;
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, grid_first * grid_first);
    auto& other = second[shard];
    std::sort(pairs.begin(), pairs.end());
    std::sort(other.begin(), other.end());
    EXPECT_EQ(pairs, other) << "shard " << shard;
  }
}

TEST(PartitionedJoin, EmptyInputs) {
  const Dataset none("none", {});
  const Dataset some = testutil::Uniform(10, 310);
  auto report = PartitionedJoin(
      none, some,
      SmallDeviceConfig(1 << 20, OutOfMemoryStrategy::kMultipleDevices));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_results, 0u);
  EXPECT_EQ(report->partitions, 0u);
}

}  // namespace
}  // namespace swiftspatial::hw
