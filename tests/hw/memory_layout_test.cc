#include "hw/memory_layout.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace swiftspatial::hw {
namespace {

TEST(MemoryLayout, RegionsGetDistinctBases) {
  MemoryLayout mem;
  const uint64_t a = mem.AddRegion("a");
  const uint64_t b = mem.AddRegion("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(b - a, MemoryLayout::kRegionStride + MemoryLayout::kChannelStagger);
  EXPECT_EQ(mem.num_regions(), 2u);
  EXPECT_EQ(mem.RegionName(0), "a");
}

TEST(MemoryLayout, PreloadedRegionReadable) {
  MemoryLayout mem;
  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  const uint64_t base = mem.AddRegion("tree", data);
  uint8_t out[5];
  mem.Read(base, out, 5);
  EXPECT_EQ(0, std::memcmp(out, data.data(), 5));
  EXPECT_EQ(mem.RegionSize(base), 5u);
}

TEST(MemoryLayout, WriteReadRoundTripAtOffset) {
  MemoryLayout mem;
  const uint64_t base = mem.AddRegion("results");
  const uint64_t value = 0xdeadbeefcafef00dULL;
  mem.Write(base + 1024, &value, sizeof(value));
  uint64_t out = 0;
  mem.Read(base + 1024, &out, sizeof(out));
  EXPECT_EQ(out, value);
  EXPECT_EQ(mem.RegionSize(base), 1024 + sizeof(value));
}

TEST(MemoryLayout, RegionsGrowIndependently) {
  MemoryLayout mem;
  const uint64_t a = mem.AddRegion("a");
  const uint64_t b = mem.AddRegion("b");
  const int x = 42;
  mem.Write(a + 100, &x, sizeof(x));
  mem.Write(b, &x, sizeof(x));
  EXPECT_EQ(mem.RegionSize(a), 104u);
  EXPECT_EQ(mem.RegionSize(b), 4u);
  EXPECT_EQ(mem.TotalBytes(), 108u);
}

TEST(MemoryLayout, SequentialAppendPattern) {
  // The write units' self-incrementing counter pattern.
  MemoryLayout mem;
  const uint64_t base = mem.AddRegion("results");
  uint64_t cursor = base;
  for (uint32_t i = 0; i < 100; ++i) {
    mem.Write(cursor, &i, sizeof(i));
    cursor += sizeof(i);
  }
  for (uint32_t i = 0; i < 100; ++i) {
    uint32_t v;
    mem.Read(base + i * sizeof(uint32_t), &v, sizeof(v));
    EXPECT_EQ(v, i);
  }
}

TEST(MemoryLayoutDeath, ReadOfUnwrittenMemoryAborts) {
  MemoryLayout mem;
  const uint64_t base = mem.AddRegion("a");
  uint8_t out;
  EXPECT_DEATH(mem.Read(base + 10, &out, 1), "unwritten");
}

TEST(MemoryLayoutDeath, AddressOutsideRegionsAborts) {
  MemoryLayout mem;
  mem.AddRegion("only");
  uint8_t out;
  EXPECT_DEATH(mem.Read(0, &out, 1), "outside");
}

}  // namespace
}  // namespace swiftspatial::hw
